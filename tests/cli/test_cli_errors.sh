#!/bin/sh
# Error-path regression test for dpnet_cli: malformed inputs must produce
# ONE sanitized "error:" line on stderr and a nonzero exit — no crashes,
# no stack traces, no record contents in the diagnostic.
# Usage: test_cli_errors.sh <path-to-dpnet_cli>
set -eu

CLI="$1"
WORK="$(mktemp -d)"
trap 'rm -rf "$WORK"' EXIT

# expect_error <expected-substring> <cli args...>
# Runs the CLI, asserts exit 1, exactly one stderr line, and that the
# line starts with "error:" and mentions the expected substring.
expect_error() {
  want="$1"
  shift
  rc=0
  "$CLI" "$@" >"$WORK/out" 2>"$WORK/err" || rc=$?
  if [ "$rc" -eq 0 ]; then
    echo "expected failure: $CLI $*" >&2
    exit 1
  fi
  lines=$(wc -l <"$WORK/err")
  if [ "$lines" -ne 1 ]; then
    echo "expected one stderr line for: $CLI $* (got $lines)" >&2
    cat "$WORK/err" >&2
    exit 1
  fi
  grep -q "^error: " "$WORK/err" || {
    echo "stderr not sanitized one-liner for: $CLI $*" >&2
    cat "$WORK/err" >&2
    exit 1
  }
  grep -q "$want" "$WORK/err" || {
    echo "stderr missing '$want' for: $CLI $*" >&2
    cat "$WORK/err" >&2
    exit 1
  }
}

echo "== json fed as a trace container =="
printf '{"packets": [1, 2, 3], "oops": "not a trace"}\n' >"$WORK/bogus.dpnt"
expect_error "magic" stats "$WORK/bogus.dpnt"
# The secret-looking JSON content must not leak into the diagnostic.
if grep -q "packets" "$WORK/err"; then
  echo "diagnostic leaked input contents" >&2
  exit 1
fi

echo "== truncated container =="
"$CLI" gen "$WORK/t.dpnt" --seed 7 >/dev/null
size=$(wc -c <"$WORK/t.dpnt")
head -c "$((size - 11))" "$WORK/t.dpnt" >"$WORK/cut.dpnt"
expect_error "record" stats "$WORK/cut.dpnt"

echo "== bit-flipped container =="
python3 -c "
import sys
data = bytearray(open('$WORK/t.dpnt', 'rb').read())
data[len(data) // 2] ^= 0x40
open('$WORK/flip.dpnt', 'wb').write(bytes(data))
" 2>/dev/null || {
  # No python: overwrite a mid-file byte with dd instead.
  cp "$WORK/t.dpnt" "$WORK/flip.dpnt"
  printf '\377' | dd of="$WORK/flip.dpnt" bs=1 seek="$((size / 2))" \
    conv=notrunc 2>/dev/null
}
expect_error "error:" stats "$WORK/flip.dpnt"

echo "== missing file =="
expect_error "cannot open" stats "$WORK/does-not-exist.dpnt"

echo "== malformed numeric flags exit 2 =="
rc=0
"$CLI" gen "$WORK/x.dpnt" --seed banana 2>"$WORK/err" || rc=$?
[ "$rc" -eq 2 ] || { echo "expected exit 2 for bad --seed" >&2; exit 1; }
grep -q "unsigned integer" "$WORK/err"

rc=0
"$CLI" analyze "$WORK/t.dpnt" count --eps "1.0x" 2>"$WORK/err" || rc=$?
[ "$rc" -eq 2 ] || { echo "expected exit 2 for bad --eps" >&2; exit 1; }
grep -q "expects a number" "$WORK/err"

echo "== analyze on corrupt input is contained too =="
expect_error "error:" analyze "$WORK/cut.dpnt" count --eps 0.5

echo "== robustness metrics are listed =="
"$CLI" metrics "$WORK/t.dpnt" --eps 0.5 | grep -q "queries.aborted"
"$CLI" metrics "$WORK/t.dpnt" --eps 0.5 | grep -q "records.quarantined"
"$CLI" metrics "$WORK/t.dpnt" --eps 0.5 --json | grep -q "deadline.exceeded"
"$CLI" metrics "$WORK/t.dpnt" --eps 0.5 --json | grep -q "faults.injected"

echo "== metrics machine-readable modes =="
# --json: stdout is exactly one JSON document (starts with '{'), with the
# percentile fields present.
"$CLI" metrics "$WORK/t.dpnt" --eps 0.5 --json >"$WORK/m.json"
head -c 1 "$WORK/m.json" | grep -q '{' || {
  echo "metrics --json stdout is not a pure JSON document" >&2
  exit 1
}
grep -q '"p50"' "$WORK/m.json"
grep -q '"p99"' "$WORK/m.json"
# --prometheus: pure text exposition — every line is a comment or
# `name value`, with TYPE declarations and histogram series present.
"$CLI" metrics "$WORK/t.dpnt" --eps 0.5 --prometheus >"$WORK/m.prom"
grep -q '^# TYPE dpnet_queries_executed counter$' "$WORK/m.prom"
grep -q '^# TYPE dpnet_query_wall_ms histogram$' "$WORK/m.prom"
grep -q '^dpnet_query_wall_ms_bucket{le="+Inf"} ' "$WORK/m.prom"
grep -q '^dpnet_query_wall_ms_count ' "$WORK/m.prom"
grep -q '^dpnet_op_wall_ms_noisy_count_sum ' "$WORK/m.prom"
if grep -vE '^(#.*|[a-zA-Z_:][a-zA-Z0-9_:]*(\{[^}]*\})? -?[0-9+].*)$' \
    "$WORK/m.prom" | grep -q .; then
  echo "metrics --prometheus emitted a non-exposition line" >&2
  exit 1
fi

echo "== unknown metrics flags are rejected, not ignored =="
rc=0
"$CLI" metrics "$WORK/t.dpnt" --prometheous 2>"$WORK/err" || rc=$?
[ "$rc" -eq 2 ] || { echo "expected exit 2 for unknown flag" >&2; exit 1; }
grep -q "unknown flag" "$WORK/err"
rc=0
"$CLI" metrics "$WORK/t.dpnt" --json --prometheus 2>"$WORK/err" || rc=$?
[ "$rc" -eq 2 ] || {
  echo "expected exit 2 for --json + --prometheus" >&2
  exit 1
}
grep -q "mutually exclusive" "$WORK/err"

echo "== trace --chrome writes a loadable trace_event file =="
"$CLI" trace "$WORK/t.dpnt" service-mix --eps 0.1 --threads 4 \
  --chrome "$WORK/t.chrome.json" >/dev/null
grep -q '"traceEvents"' "$WORK/t.chrome.json"
grep -q '"ph":"X"' "$WORK/t.chrome.json"
grep -q '"name":"analyst"' "$WORK/t.chrome.json"
# Which workers pick up tasks is scheduler-dependent (a single-core host
# can drain every part on one worker), but some worker lane must exist.
grep -q '"name":"worker ' "$WORK/t.chrome.json"
rc=0
"$CLI" trace "$WORK/t.dpnt" count --chrom typo.json 2>"$WORK/err" || rc=$?
[ "$rc" -eq 2 ] || { echo "expected exit 2 for unknown trace flag" >&2; exit 1; }

echo "== audit journal error paths =="
"$CLI" trace "$WORK/t.dpnt" count --eps 0.5 --journal "$WORK/j.jsonl" \
  >/dev/null

# Unknown flags are rejected with exit 2, not silently ignored.
rc=0
"$CLI" audit verify "$WORK/j.jsonl" --frobnicate 2>"$WORK/err" || rc=$?
[ "$rc" -eq 2 ] || { echo "expected exit 2 for unknown audit flag" >&2; exit 1; }
grep -q "unknown flag" "$WORK/err"
rc=0
"$CLI" audit tail "$WORK/j.jsonl" --laste 3 2>"$WORK/err" || rc=$?
[ "$rc" -eq 2 ] || { echo "expected exit 2 for unknown tail flag" >&2; exit 1; }
grep -q "unknown flag" "$WORK/err"

# Missing journal files are a sanitized one-liner.
expect_error "cannot open" audit verify "$WORK/no-such-journal.jsonl"
expect_error "cannot open" audit tail "$WORK/no-such-journal.jsonl"

# A bit-flipped journal breaks the hash chain.
python3 -c "
import sys
data = bytearray(open('$WORK/j.jsonl', 'rb').read())
data[len(data) // 2] ^= 0x40
open('$WORK/j.flip.jsonl', 'wb').write(bytes(data))
" 2>/dev/null || {
  cp "$WORK/j.jsonl" "$WORK/j.flip.jsonl"
  jsize=$(wc -c <"$WORK/j.jsonl")
  printf '\377' | dd of="$WORK/j.flip.jsonl" bs=1 seek="$((jsize / 2))" \
    conv=notrunc 2>/dev/null
}
expect_error "j.flip.jsonl" audit verify "$WORK/j.flip.jsonl"

# A truncated journal is caught too (cut mid-record).
jsize=$(wc -c <"$WORK/j.jsonl")
head -c "$((jsize - 7))" "$WORK/j.jsonl" >"$WORK/j.cut.jsonl"
expect_error "j.cut.jsonl" audit verify "$WORK/j.cut.jsonl"

# Reconciliation against a different session's ledger fails exactly.
"$CLI" trace "$WORK/t.dpnt" count --eps 0.25 --json >"$WORK/other.json"
expect_error "ledger eps" audit verify "$WORK/j.jsonl" \
  --audit "$WORK/other.json"
expect_error "trace eps" audit verify "$WORK/j.jsonl" \
  --trace "$WORK/other.json"

echo "== serve numeric flags share the uniform validation =="
# The hoisted numeric-flag helper: malformed values exit 2 with the same
# `error: --flag expects ...` shape everywhere, serve included.
for bad in "--threads two" "--queue -3" "--deadline-ms soon" \
    "--max-sessions 1.5" "--seed 0x2a" "--journal-capacity lots"; do
  rc=0
  # shellcheck disable=SC2086  # word-splitting the pair is intended
  "$CLI" serve "$WORK/t.dpnt" $bad </dev/null 2>"$WORK/err" || rc=$?
  [ "$rc" -eq 2 ] || {
    echo "expected exit 2 for serve $bad (got $rc)" >&2
    cat "$WORK/err" >&2
    exit 1
  }
  grep -q "^error: .* expects an unsigned integer" "$WORK/err"
done
rc=0
"$CLI" serve "$WORK/t.dpnt" --budget lots </dev/null 2>"$WORK/err" || rc=$?
[ "$rc" -eq 2 ] || { echo "expected exit 2 for bad --budget" >&2; exit 1; }
grep -q "^error: --budget expects a number" "$WORK/err"
rc=0
"$CLI" serve "$WORK/t.dpnt" --cap "0.5kg" </dev/null 2>"$WORK/err" || rc=$?
[ "$rc" -eq 2 ] || { echo "expected exit 2 for bad --cap" >&2; exit 1; }
grep -q "^error: --cap expects a number" "$WORK/err"

echo "== unknown serve flags are rejected, not ignored =="
rc=0
"$CLI" serve "$WORK/t.dpnt" --jurnal j.jsonl </dev/null 2>"$WORK/err" || rc=$?
[ "$rc" -eq 2 ] || { echo "expected exit 2 for unknown serve flag" >&2; exit 1; }
grep -q "unknown flag" "$WORK/err"

echo "== untouched server ops gauges stay out of prometheus =="
# No server ran in this process, so the registered-but-untouched serve.*
# series are suppressed from the exposition (scrapes of engine-only
# processes stay clean) while the JSON snapshot still lists the full
# ops vocabulary.
"$CLI" metrics "$WORK/t.dpnt" --eps 0.5 --prometheus >"$WORK/m2.prom"
if grep -q '^dpnet_serve_' "$WORK/m2.prom"; then
  echo "untouched serve.* series leaked into the exposition" >&2
  grep '^dpnet_serve_' "$WORK/m2.prom" >&2
  exit 1
fi
"$CLI" metrics "$WORK/t.dpnt" --eps 0.5 --json | grep -q "serve.sessions.active"
"$CLI" metrics "$WORK/t.dpnt" --eps 0.5 --json | grep -q "serve.queue.depth"
# journal.events.dropped: the silent-drop counter is a first-class
# metric now (engine runs never drop, so it reads zero here).
"$CLI" metrics "$WORK/t.dpnt" --eps 0.5 --json \
  | grep -q "journal.events.dropped"

echo "== audit exit-code contract: 0 ok / 1 failure / 2 usage =="
rc=0
"$CLI" audit verify "$WORK/j.jsonl" >/dev/null 2>&1 || rc=$?
[ "$rc" -eq 0 ] || { echo "expected exit 0 for clean verify" >&2; exit 1; }
rc=0
"$CLI" audit tail "$WORK/j.jsonl" --last 2 >/dev/null 2>&1 || rc=$?
[ "$rc" -eq 0 ] || { echo "expected exit 0 for clean tail" >&2; exit 1; }
rc=0
"$CLI" audit verify "$WORK/j.flip.jsonl" >/dev/null 2>&1 || rc=$?
[ "$rc" -eq 1 ] || {
  echo "expected exit 1 for broken hash chain (got $rc)" >&2
  exit 1
}
rc=0
"$CLI" audit verify "$WORK/j.jsonl" --audit "$WORK/other.json" \
  >/dev/null 2>&1 || rc=$?
[ "$rc" -eq 1 ] || {
  echo "expected exit 1 for ledger mismatch (got $rc)" >&2
  exit 1
}
rc=0
"$CLI" audit verify "$WORK/no-such-journal.jsonl" >/dev/null 2>&1 || rc=$?
[ "$rc" -eq 1 ] || {
  echo "expected exit 1 for unreadable journal (got $rc)" >&2
  exit 1
}
rc=0
"$CLI" audit >/dev/null 2>&1 || rc=$?
[ "$rc" -eq 2 ] || { echo "expected usage exit 2 (got $rc)" >&2; exit 1; }
rc=0
"$CLI" audit frobnicate "$WORK/j.jsonl" >/dev/null 2>&1 || rc=$?
[ "$rc" -eq 2 ] || {
  echo "expected exit 2 for unknown audit mode (got $rc)" >&2
  exit 1
}

echo "CLI-ERRORS-OK"
