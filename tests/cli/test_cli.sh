#!/bin/sh
# Smoke test for the dpnet_cli tool: generate, convert, stats, anonymize,
# and analyze must all succeed and produce sane output.
# Usage: test_cli.sh <path-to-dpnet_cli>
set -eu

CLI="$1"
WORK="$(mktemp -d)"
trap 'rm -rf "$WORK"' EXIT

echo "== gen =="
"$CLI" gen "$WORK/t.pcap" --seed 9 | grep -q "wrote"

echo "== stats =="
"$CLI" stats "$WORK/t.pcap" | grep -q "^packets:"

echo "== convert =="
"$CLI" convert "$WORK/t.pcap" "$WORK/t.dpnt" | grep -q "converted"
"$CLI" stats "$WORK/t.dpnt" | grep -q "^packets:"

echo "== anonymize =="
"$CLI" anonymize "$WORK/t.dpnt" "$WORK/anon.dpnt" | grep -q "anonymized"

echo "== analyze count =="
"$CLI" analyze "$WORK/t.dpnt" count --eps 0.5 | grep -q "noisy packet count"

echo "== analyze length-cdf =="
"$CLI" analyze "$WORK/t.dpnt" length-cdf --eps 1 | grep -q "privacy spent"

echo "== analyze service-mix =="
"$CLI" analyze "$WORK/t.dpnt" service-mix --eps 1 | grep -q "web"

echo "== budget enforcement =="
if "$CLI" analyze "$WORK/t.dpnt" count --eps 5 --budget 1 2>/dev/null; then
  echo "expected over-budget analyze to fail" >&2
  exit 1
fi

echo "== trace =="
"$CLI" trace "$WORK/t.dpnt" count --eps 0.5 | grep -q "query trace"
"$CLI" trace "$WORK/t.dpnt" count --eps 0.5 | grep -q "noisy_count"
"$CLI" trace "$WORK/t.dpnt" count --eps 0.5 --json | grep -q '"spans"'
"$CLI" trace "$WORK/t.dpnt" service-mix --eps 0.5 | grep -q "partition"

echo "== audit journal round-trip =="
"$CLI" trace "$WORK/t.dpnt" count --eps 0.5 --journal "$WORK/j.jsonl" \
  | grep -q "wrote event journal"
"$CLI" audit verify "$WORK/j.jsonl" | grep -q "journal ok"
# Reconcile against the ledger and trace of the same query (the composite
# `trace --json` document carries both); eps sums must match exactly.
"$CLI" trace "$WORK/t.dpnt" count --eps 0.5 --json >"$WORK/tj.json"
"$CLI" audit verify "$WORK/j.jsonl" --audit "$WORK/tj.json" \
  --trace "$WORK/tj.json" >"$WORK/verify.out"
grep -q "journal ok" "$WORK/verify.out"
grep -q "reconciled: journal eps == ledger eps == trace eps (exact)" \
  "$WORK/verify.out"
"$CLI" audit tail "$WORK/j.jsonl" --last 5 | grep -q "charge"
"$CLI" audit tail "$WORK/j.jsonl" --json | grep -q '"kind":"charge"'

echo "== metrics =="
"$CLI" metrics "$WORK/t.dpnt" --eps 0.5 | grep -q "queries.executed"
"$CLI" metrics "$WORK/t.dpnt" --eps 0.5 --json | grep -q '"counters"'

echo "== help =="
"$CLI" --help | grep -q "commands:"
"$CLI" help | grep -q "commands:"
"$CLI" help trace | grep -q "usage: dpnet_cli trace"
"$CLI" help audit | grep -q "usage: dpnet_cli audit"
"$CLI" trace --help | grep -q "query-plan trace"
"$CLI" analyze -h | grep -q "usage: dpnet_cli analyze"

echo "== bad usage exits nonzero =="
if "$CLI" frobnicate 2>/dev/null; then
  echo "expected unknown command to fail" >&2
  exit 1
fi

echo "CLI-SMOKE-OK"
