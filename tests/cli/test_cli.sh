#!/bin/sh
# Smoke test for the dpnet_cli tool: generate, convert, stats, anonymize,
# and analyze must all succeed and produce sane output.
# Usage: test_cli.sh <path-to-dpnet_cli>
set -eu

CLI="$1"
WORK="$(mktemp -d)"
trap 'rm -rf "$WORK"' EXIT

echo "== gen =="
"$CLI" gen "$WORK/t.pcap" --seed 9 | grep -q "wrote"

echo "== stats =="
"$CLI" stats "$WORK/t.pcap" | grep -q "^packets:"

echo "== convert =="
"$CLI" convert "$WORK/t.pcap" "$WORK/t.dpnt" | grep -q "converted"
"$CLI" stats "$WORK/t.dpnt" | grep -q "^packets:"

echo "== anonymize =="
"$CLI" anonymize "$WORK/t.dpnt" "$WORK/anon.dpnt" | grep -q "anonymized"

echo "== analyze count =="
"$CLI" analyze "$WORK/t.dpnt" count --eps 0.5 | grep -q "noisy packet count"

echo "== analyze length-cdf =="
"$CLI" analyze "$WORK/t.dpnt" length-cdf --eps 1 | grep -q "privacy spent"

echo "== analyze service-mix =="
"$CLI" analyze "$WORK/t.dpnt" service-mix --eps 1 | grep -q "web"

echo "== budget enforcement =="
if "$CLI" analyze "$WORK/t.dpnt" count --eps 5 --budget 1 2>/dev/null; then
  echo "expected over-budget analyze to fail" >&2
  exit 1
fi

echo "== bad usage exits nonzero =="
if "$CLI" frobnicate 2>/dev/null; then
  echo "expected unknown command to fail" >&2
  exit 1
fi

echo "CLI-SMOKE-OK"
