#!/bin/sh
# Smoke test for `dpnet_cli top`: a serve run publishes a dpnet.ops.v1
# snapshot, top renders it (one-shot and --json), --json round-trips the
# exact on-disk document, and the error paths are sanitized one-liners
# with the documented exit codes (1 unreadable/invalid snapshot, 2
# usage).
# Usage: test_top.sh <path-to-dpnet_cli>
set -eu

CLI="$1"
WORK="$(mktemp -d)"
trap 'rm -rf "$WORK"' EXIT

"$CLI" gen "$WORK/t.dpnt" --seed 7 >/dev/null

echo "== produce a live snapshot via serve =="
cat >"$WORK/req" <<'EOF'
{"id":1,"analyst":"alice","query":"count","eps":0.5}
{"id":2,"analyst":"bob","query":"count-tcp","eps":0.25}
EOF
"$CLI" serve "$WORK/t.dpnt" --cap 1 --threads 2 --seed 3 \
  --ops-snapshot "$WORK/ops.json" \
  <"$WORK/req" >/dev/null 2>/dev/null
grep -q '"schema":"dpnet.ops.v1"' "$WORK/ops.json"

echo "== one-shot render =="
"$CLI" top "$WORK/ops.json" >"$WORK/top.out"
grep -q "frames" "$WORK/top.out"
grep -q "alice" "$WORK/top.out"
grep -q "bob" "$WORK/top.out"
grep -q "dataset" "$WORK/top.out"

echo "== --json round-trips the snapshot document =="
"$CLI" top "$WORK/ops.json" --json >"$WORK/top.json"
[ "$(cat "$WORK/top.json")" = "$(cat "$WORK/ops.json")" ] || {
  echo "top --json must echo the parsed snapshot document" >&2
  exit 1
}

echo "== --watch --count renders repeatedly and terminates =="
"$CLI" top "$WORK/ops.json" --watch --interval-ms 10 --count 3 \
  >"$WORK/watch.out"
[ "$(grep -c "dataset" "$WORK/watch.out")" -eq 3 ]

echo "== error paths: missing file, bad schema, usage =="
rc=0
"$CLI" top "$WORK/nope.json" >/dev/null 2>"$WORK/err1" || rc=$?
[ "$rc" -eq 1 ] || { echo "expected exit 1 for missing file, got $rc" >&2; \
  exit 1; }
grep -q "^error: " "$WORK/err1"

printf '{"schema":"dpnet.bench.v1"}\n' >"$WORK/bad.json"
rc=0
"$CLI" top "$WORK/bad.json" >/dev/null 2>"$WORK/err2" || rc=$?
[ "$rc" -eq 1 ] || { echo "expected exit 1 for bad schema, got $rc" >&2; \
  exit 1; }
grep -q "not a dpnet.ops.v1 snapshot" "$WORK/err2"

printf 'not json at all\n' >"$WORK/torn.json"
rc=0
"$CLI" top "$WORK/torn.json" >/dev/null 2>/dev/null || rc=$?
[ "$rc" -eq 1 ] || { echo "expected exit 1 for torn file, got $rc" >&2; \
  exit 1; }

rc=0
"$CLI" top >/dev/null 2>/dev/null || rc=$?
[ "$rc" -eq 2 ] || { echo "expected usage exit 2, got $rc" >&2; exit 1; }
rc=0
"$CLI" top "$WORK/ops.json" --frobnicate >/dev/null 2>/dev/null || rc=$?
[ "$rc" -eq 2 ] || { echo "expected exit 2 for unknown flag, got $rc" >&2; \
  exit 1; }

echo "== help =="
"$CLI" help top | grep -q "usage: dpnet_cli top"

echo "CLI-TOP-OK"
