#!/bin/sh
# Protocol + recovery smoke test for `dpnet_cli serve`: a request stream
# on stdin gets one JSON response line per frame, malformed frames are
# answered with sanitized taxonomy codes, the shutdown artifacts
# reconcile through `audit verify`, and a clean restart against the same
# journal resumes every analyst's spend exactly.
# Usage: test_serve.sh <path-to-dpnet_cli>
set -eu

CLI="$1"
WORK="$(mktemp -d)"
trap 'rm -rf "$WORK"' EXIT

"$CLI" gen "$WORK/t.dpnt" --seed 11 >/dev/null

echo "== request stream: ok, refusal, malformed, unknown query =="
cat >"$WORK/req1" <<'EOF'
{"id":1,"analyst":"alice","query":"count","eps":0.5}
{"id":2,"analyst":"bob","query":"count-tcp","eps":0.25}
{"id":3,"analyst":"alice","query":"count","eps":0.75}
this is not json
{"id":4,"analyst":"alice","query":"haruspicy","eps":0.125}
{"id":5,"analyst":"al!ce","query":"count","eps":0.125}
EOF
"$CLI" serve "$WORK/t.dpnt" --cap 1 --threads 2 --seed 3 \
  --journal "$WORK/j.jsonl" --ledger "$WORK/ledger.json" \
  --trace-out "$WORK/trace.json" \
  --flight "$WORK/flight.jsonl" --ops-log "$WORK/ops.jsonl" \
  --ops-snapshot "$WORK/ops.json" --log-level debug \
  <"$WORK/req1" >"$WORK/resp1" 2>"$WORK/err1"

[ "$(wc -l <"$WORK/resp1")" -eq 6 ] || {
  echo "expected 6 response lines" >&2
  cat "$WORK/resp1" >&2
  exit 1
}
grep -q '"id":1,"status":"ok"' "$WORK/resp1"
grep -q '"id":2,"status":"ok"' "$WORK/resp1"
# Request 3 would push alice past her 1.0 cap: refused, retryable.
grep '"id":3' "$WORK/resp1" | grep -q '"error":"budget-exhausted"'
grep '"id":3' "$WORK/resp1" | grep -q '"retryable":true'
grep -q '"error":"malformed-frame"' "$WORK/resp1"
grep '"id":4' "$WORK/resp1" | grep -q '"error":"invalid-query"'
# A parseable frame with a bad analyst charset keeps its id on the
# error (correlation survives), but no analyst is echoed back.
grep '"id":5' "$WORK/resp1" | grep -q '"error":"invalid-query"'
grep '"id":5' "$WORK/resp1" | grep -q '"analyst":""'
# The old stderr narration is now the structured ops log: one
# dpnet.log.v1 JSONL line per lifecycle transition (file sink here via
# --ops-log; stderr is the default sink and stays silent with a file).
[ ! -s "$WORK/err1" ] || { echo "stderr not empty with --ops-log" >&2; exit 1; }
head -1 "$WORK/ops.jsonl" | grep -q '"schema":"dpnet.log.v1"'
grep '"kind":"serve.started"' "$WORK/ops.jsonl" | grep -q '"level":"info"'
grep '"kind":"serve.stopped"' "$WORK/ops.jsonl" \
  | grep '"detail":"frames=6 sessions=2"' | grep -q '"eps":0.75'
# At debug level every admission decision is witnessed with its label
# and requested epsilon; refusals log at warn.
grep '"kind":"serve.admit"' "$WORK/ops.jsonl" \
  | grep '"label":"alice"' | grep -q '"eps":0.5'
grep '"kind":"serve.reject"' "$WORK/ops.jsonl" | grep -q '"level":"warn"'

echo "== flight dump and ops snapshot survive shutdown =="
head -1 "$WORK/flight.jsonl" | grep -q '"schema":"dpnet.flight.v1"'
# The black box mirrors every journal-witnessed charge: two ok frames.
[ "$(grep -c '"kind":"charge"' "$WORK/flight.jsonl")" -eq 2 ]
grep -q '"schema":"dpnet.ops.v1"' "$WORK/ops.json"
grep -q '"analysts"' "$WORK/ops.json"

echo "== shutdown artifacts reconcile exactly =="
"$CLI" audit verify "$WORK/j.jsonl" --audit "$WORK/ledger.json" \
  --trace "$WORK/trace.json" >"$WORK/verify.out"
grep -q "journal ok" "$WORK/verify.out"
grep -q "reconciled: journal eps == ledger eps == trace eps (exact)" \
  "$WORK/verify.out"
"$CLI" audit tail "$WORK/j.jsonl" --json | grep -q '"kind":"refusal"'

echo "== responses never carry record contents =="
# Telemetry and the wire protocol carry accounting metadata only; the
# trace payloads must not surface anywhere in the server's output.
for f in resp1 j.jsonl ledger.json trace.json flight.jsonl ops.jsonl \
         ops.json; do
  if grep -qE '"(payload|src_ip|dst_ip)"' "$WORK/$f"; then
    echo "record contents leaked into $f" >&2
    exit 1
  fi
done

echo "== restart resumes spend; crash never refunds =="
cat >"$WORK/req2" <<'EOF'
{"id":10,"analyst":"alice","query":"count","eps":0.75}
{"id":11,"analyst":"alice","query":"count-udp","eps":0.5}
{"id":12,"analyst":"carol","query":"count","eps":0.25}
EOF
"$CLI" serve "$WORK/t.dpnt" --cap 1 --threads 2 --seed 3 \
  --journal "$WORK/j.jsonl" \
  <"$WORK/req2" >"$WORK/resp2" 2>"$WORK/err2"
grep '"kind":"serve.recovered"' "$WORK/err2" \
  | grep '"label":"alice"' | grep -q '"eps":0.5'
grep '"kind":"serve.recovered"' "$WORK/err2" \
  | grep '"label":"bob"' | grep -q '"eps":0.25'
# Recovered 0.5 + 0.75 would breach alice's cap: the crash refunded
# nothing.
grep '"id":10' "$WORK/resp2" | grep -q '"error":"budget-exhausted"'
# An exact fit against the recovered spend still succeeds.
grep '"id":11' "$WORK/resp2" | grep -q '"status":"ok"'
grep '"id":12' "$WORK/resp2" | grep -q '"status":"ok"'
grep '"kind":"serve.stopped"' "$WORK/err2" | grep -q '"eps":1.5'
"$CLI" audit verify "$WORK/j.jsonl" | grep -q "journal ok"

echo "== a tampered journal refuses startup =="
python3 -c "
data = bytearray(open('$WORK/j.jsonl', 'rb').read())
data[len(data) // 2] ^= 0x40
open('$WORK/j.flip.jsonl', 'wb').write(bytes(data))
" 2>/dev/null || {
  cp "$WORK/j.jsonl" "$WORK/j.flip.jsonl"
  jsize=$(wc -c <"$WORK/j.jsonl")
  printf '\377' | dd of="$WORK/j.flip.jsonl" bs=1 seek="$((jsize / 2))" \
    conv=notrunc 2>/dev/null
}
rc=0
"$CLI" serve "$WORK/t.dpnt" --journal "$WORK/j.flip.jsonl" \
  </dev/null >/dev/null 2>"$WORK/err3" || rc=$?
[ "$rc" -eq 1 ] || { echo "expected refused startup, got $rc" >&2; exit 1; }
grep -q "^error: " "$WORK/err3"

echo "== serve help =="
"$CLI" help serve | grep -q "usage: dpnet_cli serve"

echo "CLI-SERVE-OK"
