#!/bin/sh
# Soak + crash drill for `dpnet_cli serve`:
#
#   phase 1  every dispatch faulted (DPNET_FAILPOINTS) — the server
#            answers each frame with a sanitized "internal" error,
#            charges nothing, and keeps serving;
#   phase 2  every response write faulted — responses are dropped but
#            the charges stand (the flush-before-write contract);
#   phase 3  kill -9 mid-session, then restart against the surviving
#            journal — every observed response's charge is recovered
#            exactly, the books still reconcile through
#            `dpnet_cli audit verify` (the hard gate), and the flight
#            recorder's on-disk black box is complete, schema-valid,
#            and mirrors every charge the journal witnessed.
#
# Usage: test_serve_soak.sh <path-to-dpnet_cli> \
#          [path-to-bench_schema_check] [artifact-dir]
# With bench_schema_check, the surviving flight dump, ops log, and
# snapshot are hard-gated against their schemas.  With an artifact dir,
# the drill's journal/ledger/trace/flight/ops-log survive for the
# offline `dpnet_cli audit verify` gate (the serve-chaos CI job).
set -eu

CLI="$1"
SCHEMA_CHECK="${2:-}"
ARTIFACTS="${3:-}"
WORK="$(mktemp -d)"
SERVER_PID=""
cleanup() {
  [ -n "$SERVER_PID" ] && kill -9 "$SERVER_PID" 2>/dev/null
  rm -rf "$WORK"
}
trap cleanup EXIT

"$CLI" gen "$WORK/t.dpnt" --seed 5 >/dev/null

req() {
  printf '{"id":%d,"analyst":"%s","query":"count","eps":%s}\n' "$1" "$2" "$3"
}

echo "== phase 1: dispatch faults — sanitized errors, zero charge =="
{
  i=1
  while [ "$i" -le 20 ]; do
    req "$i" "analyst$((i % 4))" 0.125
    i=$((i + 1))
  done
} >"$WORK/soak.req"
DPNET_FAILPOINTS="serve.dispatch=throw" \
  "$CLI" serve "$WORK/t.dpnt" --threads 4 \
  <"$WORK/soak.req" >"$WORK/soak.resp" 2>"$WORK/soak.err"
[ "$(wc -l <"$WORK/soak.resp")" -eq 20 ] || {
  echo "expected 20 soak responses" >&2
  exit 1
}
[ "$(grep -c '"error":"internal"' "$WORK/soak.resp")" -eq 20 ] || {
  echo "faulted dispatches must all answer internal" >&2
  cat "$WORK/soak.resp" >&2
  exit 1
}
grep '"kind":"serve.stopped"' "$WORK/soak.err" | grep -q '"eps":0,'

echo "== phase 2: write faults — responses dropped, charges stand =="
{ req 1 alice 0.25; req 2 bob 0.25; } >"$WORK/w.req"
DPNET_FAILPOINTS="serve.session.write=throw" \
  "$CLI" serve "$WORK/t.dpnt" --threads 2 \
  <"$WORK/w.req" >"$WORK/w.resp" 2>"$WORK/w.err"
[ ! -s "$WORK/w.resp" ] || {
  echo "faulted writes must drop responses" >&2
  exit 1
}
grep '"kind":"serve.stopped"' "$WORK/w.err" | grep -q '"eps":0.5'

echo "== phase 3: kill -9 mid-session, restart, reconcile =="
mkfifo "$WORK/req.pipe"
"$CLI" serve "$WORK/t.dpnt" --cap 1 --threads 2 \
  --journal "$WORK/j.jsonl" \
  --flight "$WORK/flight.jsonl" --ops-log "$WORK/ops.jsonl" \
  --ops-snapshot "$WORK/ops.json" --log-level debug \
  --ops-snapshot-interval-ms 0 \
  <"$WORK/req.pipe" >"$WORK/resp" 2>"$WORK/err" &
SERVER_PID=$!
exec 3>"$WORK/req.pipe"

req 1 alice 0.25 >&3
req 2 bob 0.25 >&3
req 3 alice 0.25 >&3
# The journal is flushed before each response is written, so once all
# three responses are observed their charges are durable — whatever
# happens to the process next.
tries=0
while [ "$(wc -l <"$WORK/resp")" -lt 3 ]; do
  tries=$((tries + 1))
  [ "$tries" -le 100 ] || {
    echo "timed out waiting for responses" >&2
    cat "$WORK/err" >&2
    exit 1
  }
  sleep 0.1
done
kill -9 "$SERVER_PID"
wait "$SERVER_PID" 2>/dev/null || true
SERVER_PID=""
exec 3>&-
[ "$(grep -c '"status":"ok"' "$WORK/resp")" -eq 3 ]

echo "== the black box survives SIGKILL and mirrors the journal =="
# The flight dump rides the journal flush cadence, so even an uncatchable
# kill leaves a complete dpnet.flight.v1 document whose charge moments
# are exactly the charges the surviving journal witnessed.
head -1 "$WORK/flight.jsonl" | grep -q '"schema":"dpnet.flight.v1"'
flight_charges="$(grep -c '"kind":"charge"' "$WORK/flight.jsonl")"
journal_charges="$(grep -c '"kind":"charge"' "$WORK/j.jsonl")"
[ "$flight_charges" -eq "$journal_charges" ] || {
  echo "flight dump ($flight_charges charges) disagrees with" \
       "journal ($journal_charges)" >&2
  exit 1
}
# The snapshot is published by atomic rename: whatever instant the kill
# landed, the file on disk is a complete dpnet.ops.v1 document, and no
# orphaned temp file means a publish was torn mid-rename.
grep -q '"schema":"dpnet.ops.v1"' "$WORK/ops.json"
grep -q '"analysts"' "$WORK/ops.json"
head -1 "$WORK/ops.jsonl" | grep -q '"schema":"dpnet.log.v1"'
grep '"kind":"serve.admit"' "$WORK/ops.jsonl" | grep -q '"label":"alice"'
if [ -n "$SCHEMA_CHECK" ]; then
  "$SCHEMA_CHECK" "$WORK/flight.jsonl" "$WORK/ops.json" "$WORK/ops.jsonl"
fi

{
  req 10 alice 0.75   # 0.5 recovered + 0.75 breaches the cap: refused
  req 11 alice 0.5    # exact fit against the recovered spend
  req 12 carol 0.25
} >"$WORK/req2"
"$CLI" serve "$WORK/t.dpnt" --cap 1 --threads 2 \
  --journal "$WORK/j.jsonl" --ledger "$WORK/ledger.json" \
  --trace-out "$WORK/trace.json" \
  <"$WORK/req2" >"$WORK/resp2" 2>"$WORK/err2"
grep '"kind":"serve.recovered"' "$WORK/err2" \
  | grep '"label":"alice"' | grep -q '"eps":0.5'
grep '"kind":"serve.recovered"' "$WORK/err2" \
  | grep '"label":"bob"' | grep -q '"eps":0.25'
grep '"id":10' "$WORK/resp2" | grep -q '"error":"budget-exhausted"'
grep '"id":11' "$WORK/resp2" | grep -q '"status":"ok"'
grep '"id":12' "$WORK/resp2" | grep -q '"status":"ok"'
grep '"kind":"serve.stopped"' "$WORK/err2" | grep -q '"eps":1.5'

# The hard gate: the post-crash journal, ledger, and trace agree on
# every epsilon — exactly.
"$CLI" audit verify "$WORK/j.jsonl" --audit "$WORK/ledger.json" \
  --trace "$WORK/trace.json" >"$WORK/verify.out"
grep -q "journal ok" "$WORK/verify.out"
grep -q "reconciled: journal eps == ledger eps == trace eps (exact)" \
  "$WORK/verify.out"

if [ -n "$ARTIFACTS" ]; then
  mkdir -p "$ARTIFACTS"
  cp "$WORK/j.jsonl" "$ARTIFACTS/journal.jsonl"
  cp "$WORK/ledger.json" "$WORK/trace.json" "$ARTIFACTS/"
  # The incident bundle from the killed server: black box, ops log, and
  # the last published snapshot ride along for offline forensics.
  cp "$WORK/flight.jsonl" "$ARTIFACTS/flight.jsonl"
  cp "$WORK/ops.jsonl" "$ARTIFACTS/ops-log.jsonl"
  cp "$WORK/ops.json" "$ARTIFACTS/ops-snapshot.json"
fi

echo "CLI-SERVE-SOAK-OK"
