#!/bin/sh
# Soak + crash drill for `dpnet_cli serve`:
#
#   phase 1  every dispatch faulted (DPNET_FAILPOINTS) — the server
#            answers each frame with a sanitized "internal" error,
#            charges nothing, and keeps serving;
#   phase 2  every response write faulted — responses are dropped but
#            the charges stand (the flush-before-write contract);
#   phase 3  kill -9 mid-session, then restart against the surviving
#            journal — every observed response's charge is recovered
#            exactly, and the books still reconcile through
#            `dpnet_cli audit verify` (the hard gate).
#
# Usage: test_serve_soak.sh <path-to-dpnet_cli> [artifact-dir]
# With an artifact dir, the drill's journal/ledger/trace survive for an
# offline `dpnet_cli audit verify` gate (the serve-chaos CI job).
set -eu

CLI="$1"
ARTIFACTS="${2:-}"
WORK="$(mktemp -d)"
SERVER_PID=""
cleanup() {
  [ -n "$SERVER_PID" ] && kill -9 "$SERVER_PID" 2>/dev/null
  rm -rf "$WORK"
}
trap cleanup EXIT

"$CLI" gen "$WORK/t.dpnt" --seed 5 >/dev/null

req() {
  printf '{"id":%d,"analyst":"%s","query":"count","eps":%s}\n' "$1" "$2" "$3"
}

echo "== phase 1: dispatch faults — sanitized errors, zero charge =="
{
  i=1
  while [ "$i" -le 20 ]; do
    req "$i" "analyst$((i % 4))" 0.125
    i=$((i + 1))
  done
} >"$WORK/soak.req"
DPNET_FAILPOINTS="serve.dispatch=throw" \
  "$CLI" serve "$WORK/t.dpnt" --threads 4 \
  <"$WORK/soak.req" >"$WORK/soak.resp" 2>"$WORK/soak.err"
[ "$(wc -l <"$WORK/soak.resp")" -eq 20 ] || {
  echo "expected 20 soak responses" >&2
  exit 1
}
[ "$(grep -c '"error":"internal"' "$WORK/soak.resp")" -eq 20 ] || {
  echo "faulted dispatches must all answer internal" >&2
  cat "$WORK/soak.resp" >&2
  exit 1
}
grep -q "dataset eps spent 0\$" "$WORK/soak.err"

echo "== phase 2: write faults — responses dropped, charges stand =="
{ req 1 alice 0.25; req 2 bob 0.25; } >"$WORK/w.req"
DPNET_FAILPOINTS="serve.session.write=throw" \
  "$CLI" serve "$WORK/t.dpnt" --threads 2 \
  <"$WORK/w.req" >"$WORK/w.resp" 2>"$WORK/w.err"
[ ! -s "$WORK/w.resp" ] || {
  echo "faulted writes must drop responses" >&2
  exit 1
}
grep -q "dataset eps spent 0.5" "$WORK/w.err"

echo "== phase 3: kill -9 mid-session, restart, reconcile =="
mkfifo "$WORK/req.pipe"
"$CLI" serve "$WORK/t.dpnt" --cap 1 --threads 2 \
  --journal "$WORK/j.jsonl" \
  <"$WORK/req.pipe" >"$WORK/resp" 2>"$WORK/err" &
SERVER_PID=$!
exec 3>"$WORK/req.pipe"

req 1 alice 0.25 >&3
req 2 bob 0.25 >&3
req 3 alice 0.25 >&3
# The journal is flushed before each response is written, so once all
# three responses are observed their charges are durable — whatever
# happens to the process next.
tries=0
while [ "$(wc -l <"$WORK/resp")" -lt 3 ]; do
  tries=$((tries + 1))
  [ "$tries" -le 100 ] || {
    echo "timed out waiting for responses" >&2
    cat "$WORK/err" >&2
    exit 1
  }
  sleep 0.1
done
kill -9 "$SERVER_PID"
wait "$SERVER_PID" 2>/dev/null || true
SERVER_PID=""
exec 3>&-
[ "$(grep -c '"status":"ok"' "$WORK/resp")" -eq 3 ]

{
  req 10 alice 0.75   # 0.5 recovered + 0.75 breaches the cap: refused
  req 11 alice 0.5    # exact fit against the recovered spend
  req 12 carol 0.25
} >"$WORK/req2"
"$CLI" serve "$WORK/t.dpnt" --cap 1 --threads 2 \
  --journal "$WORK/j.jsonl" --ledger "$WORK/ledger.json" \
  --trace-out "$WORK/trace.json" \
  <"$WORK/req2" >"$WORK/resp2" 2>"$WORK/err2"
grep -q "recovered: alice spent 0.5" "$WORK/err2"
grep -q "recovered: bob spent 0.25" "$WORK/err2"
grep '"id":10' "$WORK/resp2" | grep -q '"error":"budget-exhausted"'
grep '"id":11' "$WORK/resp2" | grep -q '"status":"ok"'
grep '"id":12' "$WORK/resp2" | grep -q '"status":"ok"'
grep -q "dataset eps spent 1.5" "$WORK/err2"

# The hard gate: the post-crash journal, ledger, and trace agree on
# every epsilon — exactly.
"$CLI" audit verify "$WORK/j.jsonl" --audit "$WORK/ledger.json" \
  --trace "$WORK/trace.json" >"$WORK/verify.out"
grep -q "journal ok" "$WORK/verify.out"
grep -q "reconciled: journal eps == ledger eps == trace eps (exact)" \
  "$WORK/verify.out"

if [ -n "$ARTIFACTS" ]; then
  mkdir -p "$ARTIFACTS"
  cp "$WORK/j.jsonl" "$ARTIFACTS/journal.jsonl"
  cp "$WORK/ledger.json" "$WORK/trace.json" "$ARTIFACTS/"
fi

echo "CLI-SERVE-SOAK-OK"
