#include "stats/metrics.hpp"

#include <gtest/gtest.h>

#include <cmath>
#include <vector>

namespace dpnet::stats {
namespace {

TEST(RelativeRmse, ZeroWhenIdentical) {
  const std::vector<double> v = {1.0, 2.0, 3.0};
  EXPECT_DOUBLE_EQ(relative_rmse(v, v), 0.0);
}

TEST(RelativeRmse, MatchesHandComputedValue) {
  const std::vector<double> noisy = {110.0, 90.0};
  const std::vector<double> exact = {100.0, 100.0};
  // Both ratios off by 0.1 -> RMSE 0.1.
  EXPECT_NEAR(relative_rmse(noisy, exact), 0.1, 1e-12);
}

TEST(RelativeRmse, SkipsZeroDenominators) {
  const std::vector<double> noisy = {5.0, 110.0};
  const std::vector<double> exact = {0.0, 100.0};
  EXPECT_NEAR(relative_rmse(noisy, exact), 0.1, 1e-12);
}

TEST(RelativeRmse, AllZeroDenominatorsGiveZero) {
  const std::vector<double> noisy = {5.0};
  const std::vector<double> exact = {0.0};
  EXPECT_DOUBLE_EQ(relative_rmse(noisy, exact), 0.0);
}

TEST(RelativeRmse, RejectsLengthMismatch) {
  const std::vector<double> a = {1.0};
  const std::vector<double> b = {1.0, 2.0};
  EXPECT_THROW(relative_rmse(a, b), std::invalid_argument);
}

TEST(Rmse, MatchesHandComputedValue) {
  const std::vector<double> a = {0.0, 0.0};
  const std::vector<double> b = {3.0, 4.0};
  EXPECT_NEAR(rmse(a, b), std::sqrt(12.5), 1e-12);
}

TEST(Rmse, EmptyIsZero) {
  EXPECT_DOUBLE_EQ(rmse({}, {}), 0.0);
}

TEST(MeanAbsError, MatchesHandComputedValue) {
  const std::vector<double> a = {1.0, 2.0, 3.0};
  const std::vector<double> b = {2.0, 0.0, 3.0};
  EXPECT_NEAR(mean_abs_error(a, b), 1.0, 1e-12);
}

TEST(MaxAbsError, PicksTheWorstIndex) {
  const std::vector<double> a = {1.0, 2.0, 3.0};
  const std::vector<double> b = {1.5, -2.0, 3.1};
  EXPECT_DOUBLE_EQ(max_abs_error(a, b), 4.0);
}

TEST(Summarize, ComputesMomentsAndExtrema) {
  const std::vector<double> v = {2.0, 4.0, 4.0, 4.0, 5.0, 5.0, 7.0, 9.0};
  const Summary s = summarize(v);
  EXPECT_EQ(s.count, 8u);
  EXPECT_DOUBLE_EQ(s.mean, 5.0);
  EXPECT_DOUBLE_EQ(s.stddev, 2.0);
  EXPECT_DOUBLE_EQ(s.min, 2.0);
  EXPECT_DOUBLE_EQ(s.max, 9.0);
}

TEST(Summarize, EmptyInputIsAllZero) {
  const Summary s = summarize({});
  EXPECT_EQ(s.count, 0u);
  EXPECT_DOUBLE_EQ(s.mean, 0.0);
}

TEST(Quantile, InterpolatesLinearly) {
  std::vector<double> v = {10.0, 20.0, 30.0, 40.0};
  EXPECT_DOUBLE_EQ(quantile(v, 0.0), 10.0);
  EXPECT_DOUBLE_EQ(quantile(v, 1.0), 40.0);
  EXPECT_DOUBLE_EQ(quantile(v, 0.5), 25.0);
}

TEST(Quantile, RejectsBadInputs) {
  EXPECT_THROW(quantile({}, 0.5), std::invalid_argument);
  EXPECT_THROW(quantile({1.0}, 1.5), std::invalid_argument);
  EXPECT_THROW(quantile({1.0}, -0.5), std::invalid_argument);
}

}  // namespace
}  // namespace dpnet::stats
