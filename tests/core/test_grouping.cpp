// The grouping engine (core/grouping): the tag-byte table itself, and
// reference agreement for every operator rewired onto it.  Each rewired
// operator is compared against the historical unordered_map/set idiom it
// replaced — outputs must match exactly, values and order both, because
// the determinism contract pins first-occurrence order.
#include "core/grouping/table.hpp"

#include <gtest/gtest.h>

#include <cstdint>
#include <memory>
#include <random>
#include <string>
#include <unordered_map>
#include <unordered_set>
#include <utility>
#include <vector>

#include "core/grouping/builder.hpp"
#include "core/queryable.hpp"
#include "core/streaming.hpp"
#include "toolkit/frequent_strings.hpp"
#include "toolkit/itemsets.hpp"

namespace dpnet::core {
namespace {

// ---------------------------------------------------------------------
// GroupTable unit tests
// ---------------------------------------------------------------------

TEST(GroupTable, AssignsDenseSlotsInFirstOccurrenceOrder) {
  grouping::GroupTable<std::string> table;
  EXPECT_TRUE(table.empty());
  EXPECT_EQ(table.acquire("tcp"), (std::pair<std::uint32_t, bool>{0, true}));
  EXPECT_EQ(table.acquire("udp"), (std::pair<std::uint32_t, bool>{1, true}));
  EXPECT_EQ(table.acquire("tcp"), (std::pair<std::uint32_t, bool>{0, false}));
  EXPECT_EQ(table.acquire("icmp"), (std::pair<std::uint32_t, bool>{2, true}));
  EXPECT_EQ(table.size(), 3u);
  EXPECT_EQ(table.keys(), (std::vector<std::string>{"tcp", "udp", "icmp"}));
  EXPECT_EQ(table.find("udp"), 1u);
  EXPECT_EQ(table.find("gre"), grouping::kNoSlot);
  EXPECT_TRUE(table.contains("icmp"));
  EXPECT_FALSE(table.contains(""));
}

TEST(GroupTable, EmptyTableFindsNothing) {
  const grouping::GroupTable<int> table;
  EXPECT_EQ(table.find(7), grouping::kNoSlot);
  EXPECT_EQ(table.size(), 0u);
}

// Growth path: every key inserted before, during, and after several
// incremental rehash generations must stay findable at its original
// slot, and the insertion log must never reorder.
TEST(GroupTable, RehashUnderGrowthKeepsEverySlotStable) {
  grouping::GroupTable<std::uint64_t> table;
  constexpr std::uint64_t kKeys = 50'000;
  for (std::uint64_t k = 0; k < kKeys; ++k) {
    const auto [slot, inserted] = table.acquire(k * 2654435761ULL);
    ASSERT_TRUE(inserted);
    ASSERT_EQ(slot, k);
    // Re-probe a sliding window of older keys mid-growth, where probes
    // must consult both the new and the not-yet-drained old arrays.
    if (k % 97 == 0) {
      for (std::uint64_t back = 0; back <= k; back += 1 + k / 13) {
        ASSERT_EQ(table.find(back * 2654435761ULL), back)
            << "key " << back << " lost after " << k << " inserts";
      }
    }
  }
  EXPECT_EQ(table.size(), kKeys);
  for (std::uint64_t k = 0; k < kKeys; ++k) {
    ASSERT_EQ(table.find(k * 2654435761ULL), k);
    ASSERT_EQ(table.key_at(static_cast<std::uint32_t>(k)),
              k * 2654435761ULL);
  }
  // Duplicate acquires after the dust settles still hit the old slots.
  EXPECT_EQ(table.acquire(0).first, 0u);
  EXPECT_FALSE(table.acquire(0).second);
}

TEST(GroupTable, ReservePresizesWithoutDisturbingSemantics) {
  grouping::GroupTable<int> table;
  table.reserve(10'000);
  for (int k = 0; k < 10'000; ++k) {
    ASSERT_EQ(table.acquire(k).first, static_cast<std::uint32_t>(k));
  }
  EXPECT_EQ(table.size(), 10'000u);
  EXPECT_EQ(table.find(9'999), 9'999u);
}

/// Adversarial hasher: every key collides into one bucket chain, so the
/// table degenerates to bucket-linear probing with identical tags — the
/// worst case for both probing and growth.
struct ColliderHash {
  std::size_t operator()(int) const { return 42; }
};

TEST(GroupTable, SurvivesCollisionHeavyAdversarialKeys) {
  grouping::GroupTable<int, ColliderHash> table;
  constexpr int kKeys = 3'000;
  for (int k = 0; k < kKeys; ++k) {
    const auto [slot, inserted] = table.acquire(k);
    ASSERT_TRUE(inserted);
    ASSERT_EQ(slot, static_cast<std::uint32_t>(k));
  }
  for (int k = 0; k < kKeys; ++k) {
    ASSERT_EQ(table.find(k), static_cast<std::uint32_t>(k));
    ASSERT_FALSE(table.acquire(k).second);
  }
  EXPECT_EQ(table.find(kKeys + 1), grouping::kNoSlot);
  EXPECT_EQ(table.size(), static_cast<std::size_t>(kKeys));
}

// ---------------------------------------------------------------------
// GroupBuilder unit tests
// ---------------------------------------------------------------------

TEST(GroupBuilder, GroupByKeepsOneOpenGroupPerKey) {
  grouping::GroupBuilder<int, int> builder;
  for (int x : {3, 1, 3, 2, 1, 3}) builder.add(x % 10, x);
  const auto groups = builder.take();
  ASSERT_EQ(groups.size(), 3u);
  EXPECT_EQ(groups[0].key, 3);
  EXPECT_EQ(groups[0].items, (std::vector<int>{3, 3, 3}));
  EXPECT_EQ(groups[1].key, 1);
  EXPECT_EQ(groups[1].items, (std::vector<int>{1, 1}));
  EXPECT_EQ(groups[2].key, 2);
  EXPECT_EQ(groups[2].items, (std::vector<int>{2}));
}

TEST(GroupBuilder, SpanPredicateSkippedOnAKeysFirstRecord) {
  grouping::GroupBuilder<int, int> builder;
  int predicate_calls = 0;
  const auto always_split = [&predicate_calls] {
    ++predicate_calls;
    return true;
  };
  builder.add_span(7, 1, always_split);
  EXPECT_EQ(predicate_calls, 0);  // first record of key 7: not consulted
  builder.add_span(7, 2, always_split);
  EXPECT_EQ(predicate_calls, 1);
  const auto groups = builder.take();
  ASSERT_EQ(groups.size(), 2u);
  EXPECT_EQ(groups[0].items, (std::vector<int>{1}));
  EXPECT_EQ(groups[1].items, (std::vector<int>{2}));
}

// ---------------------------------------------------------------------
// Reference agreement: every rewired operator vs the historical idiom
// ---------------------------------------------------------------------

std::vector<int> clustered_values(std::size_t n, int spread,
                                  std::uint32_t seed) {
  std::mt19937 rng(seed);
  std::uniform_int_distribution<int> dist(0, spread - 1);
  std::vector<int> out(n);
  for (auto& x : out) x = dist(rng);
  return out;
}

Queryable<int> protect(std::vector<int> data, std::uint64_t seed = 5) {
  return Queryable<int>(std::move(data), std::make_shared<RootBudget>(1e9),
                        std::make_shared<NoiseSource>(seed));
}

TEST(GroupingAgreement, DistinctMatchesUnorderedSetReference) {
  const auto data = clustered_values(5'000, 128, 101);
  // Historical idiom: unordered_set membership, first occurrence kept.
  std::vector<int> expected;
  std::unordered_set<int> seen;
  for (int x : data) {
    if (seen.insert(x).second) expected.push_back(x);
  }
  EXPECT_EQ(protect(data).distinct().data_unsafe(), expected);
}

TEST(GroupingAgreement, GroupByMatchesUnorderedMapReference) {
  const auto data = clustered_values(5'000, 77, 102);
  const auto key = [](int x) { return x % 19; };
  // Historical idiom: key -> group index map.
  std::vector<Group<int, int>> expected;
  std::unordered_map<int, std::size_t> index;
  for (int x : data) {
    int k = key(x);
    auto [it, inserted] = index.emplace(k, expected.size());
    if (inserted) expected.push_back(Group<int, int>{k, {}});
    expected[it->second].items.push_back(x);
  }
  const auto groups = protect(data).group_by(key).data_unsafe();
  ASSERT_EQ(groups.size(), expected.size());
  for (std::size_t g = 0; g < expected.size(); ++g) {
    EXPECT_EQ(groups[g].key, expected[g].key) << "group " << g;
    EXPECT_EQ(groups[g].items, expected[g].items) << "group " << g;
  }
}

// Regression: a bool key makes every key store in the grouping layer a
// std::vector<bool>, whose proxy operator[] once turned key_at() into a
// dangling reference (crashed the block-scan group_by path).
TEST(GroupingAgreement, GroupByHandlesProxyVectorBoolKeys) {
  const auto data = clustered_values(5'000, 16, 104);
  const auto key = [](int x) { return x % 2 == 0; };
  std::vector<Group<bool, int>> expected;
  std::unordered_map<bool, std::size_t> index;
  for (int x : data) {
    const bool k = key(x);
    auto [it, inserted] = index.emplace(k, expected.size());
    if (inserted) expected.push_back(Group<bool, int>{k, {}});
    expected[it->second].items.push_back(x);
  }
  const auto groups = protect(data).group_by(key).data_unsafe();
  ASSERT_EQ(groups.size(), expected.size());
  for (std::size_t g = 0; g < expected.size(); ++g) {
    EXPECT_EQ(groups[g].key, expected[g].key) << "group " << g;
    EXPECT_EQ(groups[g].items, expected[g].items) << "group " << g;
  }
}

TEST(GroupingAgreement, GroupBySpansMatchesHistoricalReference) {
  const auto data = clustered_values(5'000, 64, 103);
  const auto key = [](int x) { return x % 7; };
  const auto boundary = [](int x) { return x % 13 == 0; };
  // Historical idiom: open-group map with in-place span splits.
  std::vector<Group<int, int>> expected;
  std::unordered_map<int, std::size_t> open;
  for (int x : data) {
    int k = key(x);
    auto it = open.find(k);
    if (it == open.end() || boundary(x)) {
      const std::size_t index = expected.size();
      expected.push_back(Group<int, int>{k, {}});
      if (it == open.end()) {
        open.emplace(k, index);
      } else {
        it->second = index;
      }
      expected.back().items.push_back(x);
    } else {
      expected[it->second].items.push_back(x);
    }
  }
  const auto groups =
      protect(data).group_by_spans(key, boundary).data_unsafe();
  ASSERT_EQ(groups.size(), expected.size());
  for (std::size_t g = 0; g < expected.size(); ++g) {
    EXPECT_EQ(groups[g].key, expected[g].key) << "group " << g;
    EXPECT_EQ(groups[g].items, expected[g].items) << "group " << g;
  }
}

TEST(GroupingAgreement, JoinMatchesUnorderedMapReference) {
  const auto left = clustered_values(2'000, 40, 104);
  const auto right = clustered_values(2'000, 40, 105);
  const auto lkey = [](int x) { return x % 11; };
  const auto rkey = [](int y) { return (y + 3) % 11; };
  const auto zip = [](int x, int y) { return std::pair<int, int>{x, y}; };
  // Historical idiom: key -> pointer-group map plus per-key used cursor.
  std::unordered_map<int, std::vector<const int*>> by_key;
  for (const int& y : right) by_key[rkey(y)].push_back(&y);
  std::unordered_map<int, std::size_t> used;
  std::vector<std::pair<int, int>> expected;
  for (const int& x : left) {
    const int k = lkey(x);
    auto it = by_key.find(k);
    if (it == by_key.end()) continue;
    std::size_t& u = used[k];
    if (u >= it->second.size()) continue;
    expected.push_back(zip(x, *it->second[u]));
    ++u;
  }
  const auto joined =
      protect(left, 5).join(protect(right, 6), lkey, rkey, zip);
  EXPECT_EQ(joined.data_unsafe(), expected);
}

TEST(GroupingAgreement, SetOpsMatchUnorderedSetReferences) {
  const auto a = clustered_values(3'000, 90, 106);
  const auto b = clustered_values(3'000, 90, 107);
  std::vector<int> union_ref;
  {
    std::unordered_set<int> emitted;
    for (int x : a) {
      if (emitted.insert(x).second) union_ref.push_back(x);
    }
    for (int x : b) {
      if (emitted.insert(x).second) union_ref.push_back(x);
    }
  }
  std::vector<int> except_ref;
  {
    const std::unordered_set<int> removed(b.begin(), b.end());
    std::unordered_set<int> emitted;
    for (int x : a) {
      if (!removed.count(x) && emitted.insert(x).second) {
        except_ref.push_back(x);
      }
    }
  }
  std::vector<int> intersect_ref;
  {
    const std::unordered_set<int> in_right(b.begin(), b.end());
    std::unordered_set<int> emitted;
    for (int x : a) {
      if (in_right.count(x) && emitted.insert(x).second) {
        intersect_ref.push_back(x);
      }
    }
  }
  EXPECT_EQ(protect(a, 5).set_union(protect(b, 6)).data_unsafe(), union_ref);
  EXPECT_EQ(protect(a, 5).except(protect(b, 6)).data_unsafe(), except_ref);
  EXPECT_EQ(protect(a, 5).intersect(protect(b, 6)).data_unsafe(),
            intersect_ref);
}

TEST(GroupingAgreement, PartitionMatchesBucketedReference) {
  const auto data = clustered_values(4'000, 256, 108);
  std::vector<int> keys;
  for (int k = 0; k < 16; ++k) keys.push_back(k);
  const auto key = [](int x) { return x % 23; };  // some keys unlisted
  std::unordered_map<int, std::vector<int>> expected;
  for (int k : keys) expected.emplace(k, std::vector<int>{});
  for (int x : data) {
    auto it = expected.find(key(x));
    if (it != expected.end()) it->second.push_back(x);
  }
  auto parts = protect(data).partition(keys, key);
  ASSERT_EQ(parts.size(), keys.size());
  for (int k : keys) {
    EXPECT_EQ(parts.at(k).data_unsafe(), expected.at(k)) << "key " << k;
  }
}

TEST(GroupingAgreement, PartitionStillRejectsDuplicateKeys) {
  EXPECT_THROW(
      protect(clustered_values(10, 4, 109))
          .partition(std::vector<int>{1, 2, 1}, [](int x) { return x; }),
      InvalidQueryError);
}

TEST(GroupingAgreement, StreamingHistogramMatchesUnorderedMapReference) {
  const auto data = clustered_values(20'000, 48, 110);
  std::vector<int> cells;
  for (int c = 0; c < 32; ++c) cells.push_back(c);  // cells 32..47 dropped
  StreamingHistogram<int> hist(cells, std::make_shared<RootBudget>(1e9),
                               std::make_shared<NoiseSource>(9));
  std::unordered_map<int, double> expected;
  for (int c : cells) expected.emplace(c, 0.0);
  for (int x : data) {
    hist.feed(x);
    auto it = expected.find(x);
    if (it != expected.end()) it->second += 1.0;
  }
  EXPECT_EQ(hist.records_seen(), data.size());
  EXPECT_EQ(hist.cells(), cells);
  // At huge epsilon the Laplace draws vanish: released counts are the
  // exact reference counts.
  const auto released = hist.release(1e9);
  ASSERT_EQ(released.size(), expected.size());
  for (int c : cells) {
    EXPECT_NEAR(released.at(c), expected.at(c), 1e-3) << "cell " << c;
  }
}

TEST(GroupingAgreement, ExactMinersMatchTheirHistoricalOutputs) {
  // exact_frequent_strings against the unordered_map idiom it replaced.
  std::mt19937 rng(111);
  std::uniform_int_distribution<int> byte(0, 3);
  std::vector<std::string> strings;
  for (int i = 0; i < 4'000; ++i) {
    std::string s;
    for (int j = 0; j < 4; ++j) {
      s.push_back(static_cast<char>('a' + byte(rng)));
    }
    strings.push_back(std::move(s));
  }
  std::unordered_map<std::string, std::size_t> counts;
  for (const auto& s : strings) {
    if (s.size() >= 2) ++counts[s.substr(0, 2)];
  }
  const auto mined = toolkit::exact_frequent_strings(strings, 2, 100.0);
  std::size_t expected_over = 0;
  for (const auto& [value, count] : counts) {
    if (static_cast<double>(count) > 100.0) ++expected_over;
  }
  ASSERT_EQ(mined.size(), expected_over);
  for (const auto& f : mined) {
    ASSERT_TRUE(counts.count(f.value)) << f.value;
    EXPECT_EQ(f.estimated_count,
              static_cast<double>(counts.at(f.value)));
  }
}

TEST(GroupingAgreement, ExactItemsetsMatchTheMapBasedReference) {
  std::mt19937 rng(112);
  std::uniform_int_distribution<int> item(0, 9);
  std::vector<std::vector<int>> data;
  for (int i = 0; i < 800; ++i) {
    std::vector<int> record;
    for (int j = 0; j < 5; ++j) record.push_back(item(rng));
    std::sort(record.begin(), record.end());
    record.erase(std::unique(record.begin(), record.end()), record.end());
    data.push_back(std::move(record));
  }
  std::vector<int> universe;
  for (int i = 0; i < 10; ++i) universe.push_back(i);
  auto mined = toolkit::exact_frequent_itemsets(data, universe, 2, 120.0);
  // The dense-count rewrite must find exactly the sets the naive
  // brute-force count finds (order normalized: the final sort's
  // tie-breaking was always unspecified).
  std::vector<toolkit::FrequentItemset> expected;
  {
    std::vector<std::vector<int>> level1;
    for (int i : universe) level1.push_back({i});
    for (const auto& cand : level1) {
      std::size_t support = 0;
      for (const auto& record : data) {
        if (std::includes(record.begin(), record.end(), cand.begin(),
                          cand.end())) {
          ++support;
        }
      }
      if (support != 0 && static_cast<double>(support) > 120.0) {
        expected.push_back(
            toolkit::FrequentItemset{cand, static_cast<double>(support)});
      }
    }
  }
  const auto only_singletons = [](const toolkit::FrequentItemset& f) {
    return f.items.size() == 1;
  };
  std::vector<toolkit::FrequentItemset> mined1;
  for (const auto& f : mined) {
    if (only_singletons(f)) mined1.push_back(f);
  }
  const auto by_items = [](const toolkit::FrequentItemset& a,
                           const toolkit::FrequentItemset& b) {
    return a.items < b.items;
  };
  std::sort(mined1.begin(), mined1.end(), by_items);
  std::sort(expected.begin(), expected.end(), by_items);
  ASSERT_EQ(mined1.size(), expected.size());
  for (std::size_t i = 0; i < expected.size(); ++i) {
    EXPECT_EQ(mined1[i].items, expected[i].items);
    EXPECT_EQ(mined1[i].estimated_count, expected[i].estimated_count);
  }
}

}  // namespace
}  // namespace dpnet::core
