#include "core/mechanisms.hpp"

#include <gtest/gtest.h>

#include <algorithm>
#include <array>
#include <cmath>
#include <vector>

#include "core/errors.hpp"
#include <tuple>

namespace dpnet::core {
namespace {

TEST(LaplaceMechanism, ZeroSensitivityReturnsExactValue) {
  NoiseSource noise(1);
  EXPECT_DOUBLE_EQ(laplace_mechanism(42.0, 0.0, 0.1, noise), 42.0);
}

TEST(LaplaceMechanism, RejectsInvalidParameters) {
  NoiseSource noise(1);
  EXPECT_THROW(std::ignore = laplace_mechanism(1.0, 1.0, 0.0, noise), InvalidEpsilonError);
  EXPECT_THROW(std::ignore = laplace_mechanism(1.0, 1.0, -1.0, noise), InvalidEpsilonError);
  EXPECT_THROW(std::ignore = laplace_mechanism(1.0, -1.0, 0.5, noise),
               std::invalid_argument);
}

class LaplaceMechanismNoiseTest
    : public ::testing::TestWithParam<std::pair<double, double>> {};

TEST_P(LaplaceMechanismNoiseTest, ErrorStddevIsSqrtTwoSensitivityOverEps) {
  const auto [sensitivity, eps] = GetParam();
  NoiseSource noise(13);
  const int n = 100000;
  double sum_sq = 0.0;
  for (int i = 0; i < n; ++i) {
    const double err = laplace_mechanism(0.0, sensitivity, eps, noise);
    sum_sq += err * err;
  }
  const double expected = std::sqrt(2.0) * sensitivity / eps;
  EXPECT_NEAR(std::sqrt(sum_sq / n), expected, 0.05 * expected);
}

INSTANTIATE_TEST_SUITE_P(
    Table1, LaplaceMechanismNoiseTest,
    ::testing::Values(std::pair{1.0, 0.1}, std::pair{1.0, 1.0},
                      std::pair{2.0, 1.0}, std::pair{1.0, 10.0}));

TEST(GeometricMechanism, ProducesIntegersAroundTruth) {
  NoiseSource noise(3);
  const int n = 50000;
  double sum = 0.0;
  for (int i = 0; i < n; ++i) {
    sum += static_cast<double>(geometric_mechanism(100, 1.0, 1.0, noise));
  }
  EXPECT_NEAR(sum / n, 100.0, 0.1);
}

TEST(GeometricMechanism, RejectsInvalidParameters) {
  NoiseSource noise(1);
  EXPECT_THROW(std::ignore = geometric_mechanism(1, 1.0, 0.0, noise), InvalidEpsilonError);
  EXPECT_THROW(std::ignore = geometric_mechanism(1, 0.0, 1.0, noise),
               std::invalid_argument);
}

TEST(ExponentialMechanism, StronglyPrefersTheBestCandidateAtHighEps) {
  NoiseSource noise(5);
  const std::array<double, 4> scores = {1.0, 5.0, 2.0, 4.9};
  int best_picked = 0;
  for (int i = 0; i < 1000; ++i) {
    if (exponential_mechanism(scores, 1000.0, 1.0, noise) == 1) {
      ++best_picked;
    }
  }
  EXPECT_GT(best_picked, 990);
}

TEST(ExponentialMechanism, SamplesProportionallyToExpScores) {
  NoiseSource noise(17);
  // With eps = 2 and sensitivity 1, P(i) ~ exp(scores[i]).
  const std::array<double, 2> scores = {0.0, std::log(3.0)};
  int second = 0;
  const int n = 60000;
  for (int i = 0; i < n; ++i) {
    if (exponential_mechanism(scores, 2.0, 1.0, noise) == 1) ++second;
  }
  EXPECT_NEAR(static_cast<double>(second) / n, 0.75, 0.02);
}

TEST(ExponentialMechanism, RejectsDegenerateInputs) {
  NoiseSource noise(1);
  const std::array<double, 2> scores = {0.0, 1.0};
  EXPECT_THROW(std::ignore = exponential_mechanism({}, 1.0, 1.0, noise),
               std::invalid_argument);
  EXPECT_THROW(std::ignore = exponential_mechanism(scores, 0.0, 1.0, noise),
               InvalidEpsilonError);
  EXPECT_THROW(std::ignore = exponential_mechanism(scores, 1.0, 0.0, noise),
               std::invalid_argument);
}

TEST(ExponentialMedian, EmptyInputReturnsDefault) {
  NoiseSource noise(1);
  EXPECT_DOUBLE_EQ(exponential_median({}, 1.0, noise), 0.0);
}

TEST(ExponentialMedian, FindsTheMedianAtHighEps) {
  NoiseSource noise(1);
  std::vector<double> values;
  for (int i = 1; i <= 101; ++i) values.push_back(i);
  for (int trial = 0; trial < 20; ++trial) {
    EXPECT_NEAR(exponential_median(values, 1000.0, noise), 51.0, 1.0);
  }
}

TEST(ExponentialMedian, RankErrorShrinksWithEps) {
  NoiseSource noise(23);
  std::vector<double> values;
  for (int i = 0; i < 1000; ++i) values.push_back(i);
  auto mean_abs_rank_error = [&](double eps) {
    double total = 0.0;
    const int trials = 300;
    for (int t = 0; t < trials; ++t) {
      total += std::abs(exponential_median(values, eps, noise) - 499.5);
    }
    return total / trials;
  };
  const double loose = mean_abs_rank_error(0.05);
  const double tight = mean_abs_rank_error(5.0);
  EXPECT_LT(tight, loose / 5.0);
  EXPECT_LT(tight, 5.0);  // ~sqrt(2)/eps at eps=5
}

TEST(ExponentialQuantile, HitsTheTargetRankAtHighEps) {
  NoiseSource noise(29);
  std::vector<double> values;
  for (int i = 0; i <= 100; ++i) values.push_back(i);
  EXPECT_NEAR(exponential_quantile(values, 0.0, 1000.0, noise), 0.0, 1.0);
  EXPECT_NEAR(exponential_quantile(values, 0.25, 1000.0, noise), 25.0, 1.0);
  EXPECT_NEAR(exponential_quantile(values, 0.9, 1000.0, noise), 90.0, 1.0);
  EXPECT_NEAR(exponential_quantile(values, 1.0, 1000.0, noise), 100.0, 1.0);
}

TEST(ExponentialQuantile, RejectsOutOfRangeQ) {
  NoiseSource noise(30);
  std::vector<double> values = {1.0, 2.0};
  EXPECT_THROW(std::ignore = exponential_quantile(values, -0.1, 1.0, noise),
               std::invalid_argument);
  EXPECT_THROW(std::ignore = exponential_quantile(values, 1.1, 1.0, noise),
               std::invalid_argument);
}

TEST(ExponentialQuantile, EmptyInputReturnsDefault) {
  NoiseSource noise(32);
  EXPECT_DOUBLE_EQ(exponential_quantile({}, 0.5, 1.0, noise), 0.0);
}

TEST(ClampUnit, ClampsToSymmetricUnitInterval) {
  EXPECT_DOUBLE_EQ(clamp_unit(0.5), 0.5);
  EXPECT_DOUBLE_EQ(clamp_unit(2.5), 1.0);
  EXPECT_DOUBLE_EQ(clamp_unit(-7.0), -1.0);
}

}  // namespace
}  // namespace dpnet::core
