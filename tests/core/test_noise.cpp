#include "core/noise.hpp"

#include <gtest/gtest.h>

#include <cmath>
#include <vector>

namespace dpnet::core {
namespace {

TEST(NoiseSource, UniformStaysInUnitInterval) {
  NoiseSource noise(1);
  for (int i = 0; i < 10000; ++i) {
    const double u = noise.uniform();
    EXPECT_GE(u, 0.0);
    EXPECT_LT(u, 1.0);
  }
}

TEST(NoiseSource, UniformRangeRespectsBounds) {
  NoiseSource noise(2);
  for (int i = 0; i < 10000; ++i) {
    const double u = noise.uniform(-3.0, 7.0);
    EXPECT_GE(u, -3.0);
    EXPECT_LT(u, 7.0);
  }
}

TEST(NoiseSource, SameSeedSameStream) {
  NoiseSource a(42);
  NoiseSource b(42);
  for (int i = 0; i < 100; ++i) {
    EXPECT_EQ(a.uniform(), b.uniform());
  }
}

TEST(NoiseSource, DifferentSeedsDiverge) {
  NoiseSource a(1);
  NoiseSource b(2);
  int equal = 0;
  for (int i = 0; i < 100; ++i) {
    if (a.uniform() == b.uniform()) ++equal;
  }
  EXPECT_LT(equal, 5);
}

TEST(NoiseSource, LaplaceRejectsNonPositiveScale) {
  NoiseSource noise(1);
  EXPECT_THROW(noise.laplace(0.0), std::invalid_argument);
  EXPECT_THROW(noise.laplace(-1.0), std::invalid_argument);
}

class LaplaceMomentsTest : public ::testing::TestWithParam<double> {};

TEST_P(LaplaceMomentsTest, MeanZeroAndStddevMatchesTheory) {
  const double scale = GetParam();
  NoiseSource noise(7);
  const int n = 200000;
  double sum = 0.0, sum_sq = 0.0;
  for (int i = 0; i < n; ++i) {
    const double x = noise.laplace(scale);
    sum += x;
    sum_sq += x * x;
  }
  const double mean = sum / n;
  const double stddev = std::sqrt(sum_sq / n - mean * mean);
  const double expected = std::sqrt(2.0) * scale;
  EXPECT_NEAR(mean, 0.0, 0.05 * expected);
  EXPECT_NEAR(stddev, expected, 0.05 * expected);
}

INSTANTIATE_TEST_SUITE_P(Scales, LaplaceMomentsTest,
                         ::testing::Values(0.1, 1.0, 10.0, 100.0));

class GeometricMomentsTest : public ::testing::TestWithParam<double> {};

TEST_P(GeometricMomentsTest, MatchesDiscreteLaplaceDistribution) {
  const double eps = GetParam();
  const double alpha = std::exp(-eps);
  NoiseSource noise(11);
  const int n = 200000;
  double sum = 0.0, sum_sq = 0.0;
  int zeros = 0;
  for (int i = 0; i < n; ++i) {
    const auto k = static_cast<double>(noise.two_sided_geometric(eps));
    sum += k;
    sum_sq += k * k;
    if (k == 0.0) ++zeros;
  }
  const double mean = sum / n;
  // Var of two-sided geometric: 2 alpha / (1 - alpha)^2.
  const double expected_var = 2.0 * alpha / ((1 - alpha) * (1 - alpha));
  const double expected_p0 = (1 - alpha) / (1 + alpha);
  EXPECT_NEAR(mean, 0.0, 0.05 * std::sqrt(expected_var) + 0.01);
  EXPECT_NEAR(sum_sq / n - mean * mean, expected_var, 0.08 * expected_var);
  EXPECT_NEAR(static_cast<double>(zeros) / n, expected_p0,
              0.05 * expected_p0 + 0.005);
}

INSTANTIATE_TEST_SUITE_P(Epsilons, GeometricMomentsTest,
                         ::testing::Values(0.1, 0.5, 1.0, 2.0));

TEST(NoiseSource, GeometricRejectsNonPositiveEpsilon) {
  NoiseSource noise(1);
  EXPECT_THROW(noise.two_sided_geometric(0.0), std::invalid_argument);
  EXPECT_THROW(noise.two_sided_geometric(-2.0), std::invalid_argument);
}

TEST(NoiseSource, GumbelHasExpectedMean) {
  NoiseSource noise(3);
  const int n = 200000;
  double sum = 0.0;
  for (int i = 0; i < n; ++i) sum += noise.gumbel();
  // Mean of the standard Gumbel is the Euler-Mascheroni constant.
  EXPECT_NEAR(sum / n, 0.5772, 0.02);
}

TEST(NoiseSource, GaussianMatchesMoments) {
  NoiseSource noise(5);
  const int n = 100000;
  double sum = 0.0, sum_sq = 0.0;
  for (int i = 0; i < n; ++i) {
    const double x = noise.gaussian(3.0, 2.0);
    sum += x;
    sum_sq += x * x;
  }
  const double mean = sum / n;
  EXPECT_NEAR(mean, 3.0, 0.05);
  EXPECT_NEAR(std::sqrt(sum_sq / n - mean * mean), 2.0, 0.05);
}

TEST(NoiseSource, NextIndexStaysInRangeAndRejectsZero) {
  NoiseSource noise(9);
  for (int i = 0; i < 1000; ++i) {
    EXPECT_LT(noise.next_index(17), 17u);
  }
  EXPECT_THROW(noise.next_index(0), std::invalid_argument);
}

}  // namespace
}  // namespace dpnet::core
