// Radix-partitioned two-phase parallel grouping: output must be
// byte-identical to the sequential path at any thread count — group
// order, item order, key values, and every noisy release downstream.
// Thread counts 1/4/8 are pinned for every rewired operator.
#include "core/exec/group_aggregate.hpp"

#include <gtest/gtest.h>

#include <cstdint>
#include <memory>
#include <random>
#include <utility>
#include <vector>

#include "core/exec/executor.hpp"
#include "core/exec/stream_feed.hpp"
#include "core/queryable.hpp"
#include "core/streaming.hpp"

namespace dpnet::core {
namespace {

const std::vector<std::size_t> kThreadCounts = {1, 4, 8};

std::vector<std::pair<int, int>> flow_like_rows(std::size_t n,
                                                std::uint32_t seed) {
  std::mt19937 rng(seed);
  std::uniform_int_distribution<int> hot(0, 30);     // heavy keys
  std::uniform_int_distribution<int> cold(0, 5000);  // long tail
  std::uniform_int_distribution<int> payload(0, 1 << 20);
  std::vector<std::pair<int, int>> rows(n);
  for (std::size_t i = 0; i < n; ++i) {
    const int key = (i % 4 == 0) ? cold(rng) : hot(rng);
    rows[i] = {key, payload(rng)};
  }
  return rows;
}

template <typename K, typename V>
void expect_same_groups(const std::vector<Group<K, V>>& got,
                        const std::vector<Group<K, V>>& want) {
  ASSERT_EQ(got.size(), want.size());
  for (std::size_t g = 0; g < want.size(); ++g) {
    EXPECT_EQ(got[g].key, want[g].key) << "group " << g;
    EXPECT_EQ(got[g].items, want[g].items) << "group " << g;
  }
}

TEST(ParallelGroupBy, ByteIdenticalToSequentialAtEveryThreadCount) {
  const auto rows = flow_like_rows(40'000, 77);
  const auto key = [](const std::pair<int, int>& r) { return r.first; };
  const auto sequential =
      exec::parallel_group_by(exec::ExecPolicy{1}, rows, key);
  for (const std::size_t threads : kThreadCounts) {
    const auto parallel =
        exec::parallel_group_by(exec::ExecPolicy{threads}, rows, key);
    expect_same_groups(parallel, sequential);
  }
}

TEST(ParallelGroupBy, EdgeShapesStayIdentical) {
  const auto key = [](const std::pair<int, int>& r) { return r.first; };
  const std::vector<std::vector<std::pair<int, int>>> shapes = {
      {},                                  // empty input
      {{3, 9}},                            // single row
      {{1, 1}, {1, 2}, {1, 3}, {1, 4}},    // one group
      flow_like_rows(7, 5),                // fewer rows than threads
  };
  for (const auto& rows : shapes) {
    const auto sequential =
        exec::parallel_group_by(exec::ExecPolicy{1}, rows, key);
    for (const std::size_t threads : kThreadCounts) {
      const auto parallel =
          exec::parallel_group_by(exec::ExecPolicy{threads}, rows, key);
      expect_same_groups(parallel, sequential);
    }
  }
}

Queryable<std::pair<int, int>> protect_rows(std::uint64_t seed) {
  return Queryable<std::pair<int, int>>(
      flow_like_rows(6'000, 13), std::make_shared<RootBudget>(1e6),
      std::make_shared<NoiseSource>(seed));
}

TEST(ParallelGroupBy, QueryableOverloadMatchesSequentialNoiseExactly) {
  const auto key = [](const std::pair<int, int>& r) { return r.first % 64; };
  // Fresh queryables per run: plan-node child ordinals must line up.
  const double sequential =
      protect_rows(21).group_by(key).noisy_count(0.5);
  for (const std::size_t threads : kThreadCounts) {
    const double parallel =
        protect_rows(21).group_by(key, exec::ExecPolicy{threads})
            .noisy_count(0.5);
    // Bitwise equality: same plan-node id, same noise draw, same count.
    EXPECT_EQ(parallel, sequential) << "threads=" << threads;
  }
  // And the grouped rows themselves are identical.
  const auto want = protect_rows(21).group_by(key).data_unsafe();
  for (const std::size_t threads : kThreadCounts) {
    expect_same_groups(
        protect_rows(21).group_by(key, exec::ExecPolicy{threads})
            .data_unsafe(),
        want);
  }
}

/// Fans a pipeline out over a 12-way partition under `threads` workers
/// and returns one noisy number per part.  Every rewired operator is
/// exercised inside the fan-out, so this pins parallel-vs-sequential
/// byte-identity for each of them.
std::vector<double> rewired_operator_pipeline(std::size_t threads,
                                              std::uint64_t seed) {
  auto q = protect_rows(seed);
  std::vector<int> keys;
  for (int k = 0; k < 12; ++k) keys.push_back(k);
  auto parts = q.partition(
      keys, [](const std::pair<int, int>& r) { return r.first % 12; });
  return exec::map_parts(
      exec::ExecPolicy{threads}, keys, parts,
      [](int, const Queryable<std::pair<int, int>>& part) {
        using Row = std::pair<int, int>;
        const auto key = [](const Row& r) { return r.second % 9; };
        double acc = 0.0;
        acc += part.distinct().noisy_count(0.25);
        acc += part.group_by(key).noisy_count(0.25);
        acc += part.group_by_spans(key, [](const Row& r) {
                     return r.second % 31 == 0;
                   })
                   .noisy_count(0.25);
        acc += part.set_union(part.where([](const Row& r) {
                     return r.second % 2 == 0;
                   }))
                   .noisy_count(0.125);
        acc += part.except(part.where([](const Row& r) {
                     return r.second % 3 == 0;
                   }))
                   .noisy_count(0.125);
        acc += part.intersect(part.where([](const Row& r) {
                     return r.second % 5 != 0;
                   }))
                   .noisy_count(0.125);
        acc += part.join(
                       part.select([](const Row& r) { return r.second; }),
                       [](const Row& r) { return r.first % 6; },
                       [](int y) { return y % 6; },
                       [](const Row& r, int y) { return r.second + y; })
                   .noisy_count(0.125);
        return acc;
      });
}

TEST(ParallelGroupBy, RewiredOperatorsByteIdenticalUnderExecutorFanOut) {
  const auto sequential = rewired_operator_pipeline(1, 31);
  ASSERT_EQ(sequential.size(), 12u);
  for (const std::size_t threads : kThreadCounts) {
    const auto parallel = rewired_operator_pipeline(threads, 31);
    ASSERT_EQ(parallel.size(), sequential.size());
    for (std::size_t i = 0; i < sequential.size(); ++i) {
      EXPECT_EQ(parallel[i], sequential[i])
          << "part " << i << " diverged at threads=" << threads;
    }
  }
}

TEST(ParallelStreamFeed, ReleaseByteIdenticalAcrossThreadCounts) {
  const auto rows = flow_like_rows(50'000, 99);
  std::vector<int> cells;
  for (int c = 0; c < 40; ++c) cells.push_back(c);
  const auto cell_of = [](const std::pair<int, int>& r) {
    return r.first % 48;  // cells 40..47 fall outside the universe
  };
  auto run = [&](std::size_t threads) {
    StreamingHistogram<int> hist(cells, std::make_shared<RootBudget>(1e6),
                                 std::make_shared<NoiseSource>(7));
    exec::parallel_feed_histogram(exec::ExecPolicy{threads}, hist, rows,
                                  cell_of);
    EXPECT_EQ(hist.records_seen(), rows.size());
    return hist.release(0.5);
  };
  const auto sequential = run(1);
  for (const std::size_t threads : kThreadCounts) {
    const auto parallel = run(threads);
    ASSERT_EQ(parallel.size(), sequential.size());
    for (const auto& [cell, value] : sequential) {
      // Bitwise: identical counts and identical per-release noise fork.
      EXPECT_EQ(parallel.at(cell), value) << "cell " << cell;
    }
  }
}

}  // namespace
}  // namespace dpnet::core
