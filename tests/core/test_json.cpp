// JsonWriter escaping / misuse detection and parse_json round-trips.
#include "core/json.hpp"

#include <gtest/gtest.h>

#include <cmath>
#include <limits>
#include <string>
#include <tuple>

namespace dpnet::core {
namespace {

TEST(JsonWriter, EscapesControlAndQuoteCharacters) {
  JsonWriter w;
  w.begin_object();
  w.key("k").value("a\"b\\c\nd\te\x01"
                   "f");
  w.end_object();
  EXPECT_EQ(w.str(), "{\"k\":\"a\\\"b\\\\c\\nd\\te\\u0001f\"}");
}

TEST(JsonWriter, EscapeHelperMatchesWriter) {
  EXPECT_EQ(JsonWriter::escape("x\r\b\fy"), "x\\r\\b\\fy");
  EXPECT_EQ(JsonWriter::escape("plain"), "plain");
}

TEST(JsonWriter, NonFiniteDoublesBecomeNull) {
  JsonWriter w;
  w.begin_array();
  w.value(std::numeric_limits<double>::quiet_NaN());
  w.value(std::numeric_limits<double>::infinity());
  w.value(1.5);
  w.end_array();
  EXPECT_EQ(w.str(), "[null,null,1.5]");
}

TEST(JsonWriter, MisuseThrows) {
  {
    JsonWriter w;
    w.begin_array();
    EXPECT_THROW(w.key("k"), InvalidQueryError);  // key outside object
  }
  {
    JsonWriter w;
    w.begin_object();
    EXPECT_THROW(w.value(1.0), InvalidQueryError);  // value without key
  }
  {
    JsonWriter w;
    w.begin_object();
    EXPECT_THROW(w.end_array(), InvalidQueryError);  // unbalanced close
  }
}

TEST(JsonWriter, RawSplicesSubDocuments) {
  JsonWriter inner;
  inner.begin_object();
  inner.key("a").value(std::int64_t{1});
  inner.end_object();
  JsonWriter w;
  w.begin_object();
  w.key("sub").raw(inner.str());
  w.key("b").value(true);
  w.end_object();
  EXPECT_EQ(w.str(), "{\"sub\":{\"a\":1},\"b\":true}");
  const JsonValue doc = parse_json(w.str());
  EXPECT_DOUBLE_EQ(doc.at("sub").at("a").number, 1.0);
}

TEST(JsonRoundTrip, WriterOutputParsesBackExactly) {
  JsonWriter w;
  w.begin_object();
  w.key("name").value("q\"uote\\slash\n");
  w.key("tenth").value(0.1);
  w.key("big").value(std::int64_t{-1234567890123});
  w.key("flag").value(false);
  w.key("nothing").null();
  w.key("list").begin_array();
  w.value(std::uint64_t{7}).value("x");
  w.end_array();
  w.end_object();

  const JsonValue doc = parse_json(w.str());
  EXPECT_EQ(doc.at("name").string, "q\"uote\\slash\n");
  // %.17g guarantees doubles survive the text round-trip bit-exactly.
  EXPECT_EQ(doc.at("tenth").number, 0.1);
  EXPECT_EQ(doc.at("big").number, -1234567890123.0);
  EXPECT_FALSE(doc.at("flag").boolean);
  EXPECT_TRUE(doc.at("nothing").is_null());
  ASSERT_EQ(doc.at("list").array.size(), 2u);
  EXPECT_DOUBLE_EQ(doc.at("list").array[0].number, 7.0);
  EXPECT_EQ(doc.at("list").array[1].string, "x");
}

TEST(JsonParser, UnicodeEscapesDecodeToUtf8) {
  const JsonValue doc = parse_json("\"a\\u00e9\\u0416b\"");
  EXPECT_EQ(doc.string, "a\xc3\xa9\xd0\x96"
                        "b");
}

TEST(JsonParser, PreservesObjectOrderAndDuplicateLookup) {
  const JsonValue doc = parse_json("{\"z\":1,\"a\":2}");
  ASSERT_EQ(doc.object.size(), 2u);
  EXPECT_EQ(doc.object[0].first, "z");
  EXPECT_EQ(doc.object[1].first, "a");
  EXPECT_EQ(doc.find("missing"), nullptr);
  EXPECT_THROW(std::ignore = doc.at("missing"), JsonParseError);
}

TEST(JsonParser, RejectsMalformedInput) {
  EXPECT_THROW(parse_json(""), JsonParseError);
  EXPECT_THROW(parse_json("{"), JsonParseError);
  EXPECT_THROW(parse_json("{\"a\":1} trailing"), JsonParseError);
  EXPECT_THROW(parse_json("\"unterminated"), JsonParseError);
  EXPECT_THROW(parse_json("\"bad\\q\""), JsonParseError);
  EXPECT_THROW(parse_json("01x"), JsonParseError);
  EXPECT_THROW(parse_json("troo"), JsonParseError);
}

}  // namespace
}  // namespace dpnet::core
