#include "core/streaming.hpp"

#include <gtest/gtest.h>

#include "tracegen/isp_traffic.hpp"

namespace dpnet::core {
namespace {

StreamingHistogram<int> make_histogram(std::vector<int> cells,
                                       double budget_total = 1e12,
                                       std::uint64_t seed = 33) {
  return {std::move(cells), std::make_shared<RootBudget>(budget_total),
          std::make_shared<NoiseSource>(seed)};
}

TEST(StreamingHistogram, CountsFedRecordsPerCell) {
  auto hist = make_histogram({0, 1, 2});
  for (int i = 0; i < 90; ++i) hist.feed(i % 3);
  const auto released = hist.release(1e7);
  EXPECT_NEAR(released.at(0), 30.0, 0.01);
  EXPECT_NEAR(released.at(1), 30.0, 0.01);
  EXPECT_NEAR(released.at(2), 30.0, 0.01);
  EXPECT_EQ(hist.records_seen(), 90u);
}

TEST(StreamingHistogram, UnlistedCellsAreDropped) {
  auto hist = make_histogram({0, 1});
  hist.feed(0);
  hist.feed(5);  // not a cell
  const auto released = hist.release(1e7);
  EXPECT_NEAR(released.at(0), 1.0, 0.01);
  EXPECT_NEAR(released.at(1), 0.0, 0.01);
}

TEST(StreamingHistogram, ReleaseChargesOneEpsilonForAllCells) {
  auto budget = std::make_shared<RootBudget>(1.0);
  StreamingHistogram<int> hist({0, 1, 2, 3, 4},
                               budget, std::make_shared<NoiseSource>(1));
  for (int i = 0; i < 100; ++i) hist.feed(i % 5);
  static_cast<void>(hist.release(0.25));
  EXPECT_DOUBLE_EQ(budget->spent(), 0.25);
}

TEST(StreamingHistogram, RepeatedReleasesChargeAgainWithFreshNoise) {
  auto budget = std::make_shared<RootBudget>(1.0);
  StreamingHistogram<int> hist({0}, budget,
                               std::make_shared<NoiseSource>(2));
  for (int i = 0; i < 1000; ++i) hist.feed(0);
  const auto first = hist.release(0.3);
  const auto second = hist.release(0.3);
  EXPECT_DOUBLE_EQ(budget->spent(), 0.6);
  EXPECT_NE(first.at(0), second.at(0));
}

TEST(StreamingHistogram, ReleaseRefusedWhenOverBudget) {
  auto budget = std::make_shared<RootBudget>(0.1);
  StreamingHistogram<int> hist({0}, budget,
                               std::make_shared<NoiseSource>(3));
  hist.feed(0);
  EXPECT_THROW(hist.release(0.5), BudgetExhaustedError);
  EXPECT_DOUBLE_EQ(budget->spent(), 0.0);
}

TEST(StreamingHistogram, RejectsBadConstruction) {
  auto budget = std::make_shared<RootBudget>(1.0);
  auto noise = std::make_shared<NoiseSource>(4);
  EXPECT_THROW(StreamingHistogram<int>({0, 0}, budget, noise),
               InvalidQueryError);
  EXPECT_THROW(StreamingHistogram<int>({0}, nullptr, noise),
               InvalidQueryError);
  EXPECT_THROW(StreamingHistogram<int>({0}, budget, nullptr),
               InvalidQueryError);
}

TEST(StreamingHistogram, RejectsNonPositiveEps) {
  auto hist = make_histogram({0});
  EXPECT_THROW(hist.release(0.0), InvalidEpsilonError);
}

TEST(StreamingHistogram, NoiseMatchesLaplaceScale) {
  // Empirical stddev of release noise at eps=1 is sqrt(2).
  double sum_sq = 0.0;
  const int trials = 5000;
  auto hist = make_histogram({0}, 1e12, 55);
  for (int i = 0; i < 100; ++i) hist.feed(0);
  for (int t = 0; t < trials; ++t) {
    const double err = hist.release(1.0).at(0) - 100.0;
    sum_sq += err * err;
  }
  EXPECT_NEAR(std::sqrt(sum_sq / trials), std::sqrt(2.0), 0.1);
}

TEST(StreamingIspTraffic, StreamAgreesWithMaterializedGenerate) {
  tracegen::IspConfig cfg = tracegen::IspConfig::small();
  tracegen::IspTrafficGenerator gen_a(cfg);
  const auto records = gen_a.generate();

  tracegen::IspTrafficGenerator gen_b(cfg);
  std::size_t streamed = 0;
  std::vector<std::vector<double>> observed(
      static_cast<std::size_t>(cfg.links),
      std::vector<double>(static_cast<std::size_t>(cfg.windows), 0.0));
  gen_b.stream([&](const net::LinkPacket& r) {
    ++streamed;
    observed[static_cast<std::size_t>(r.link)]
            [static_cast<std::size_t>(r.window)] += 1.0;
  });
  EXPECT_EQ(streamed, records.size());
  EXPECT_EQ(observed, gen_b.true_counts());
  EXPECT_EQ(gen_a.true_counts(), gen_b.true_counts());
}

}  // namespace
}  // namespace dpnet::core
