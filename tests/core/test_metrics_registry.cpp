// MetricsRegistry: counter/gauge/histogram semantics, built-in metric
// maintenance by the engine, and thread-safety under concurrent streaming
// releases (run under tsan via the sanitizer preset).
#include "core/metrics.hpp"

#include <gtest/gtest.h>

#include <memory>
#include <thread>
#include <tuple>
#include <vector>

#include "core/json.hpp"
#include "core/queryable.hpp"
#include "core/streaming.hpp"

namespace dpnet::core {
namespace {

TEST(Metrics, CounterGaugeHistogramBasics) {
  Counter c;
  c.increment();
  c.increment(4);
  EXPECT_EQ(c.value(), 5u);
  c.reset();
  EXPECT_EQ(c.value(), 0u);

  Gauge g;
  g.set(2.5);
  g.add(0.5);
  EXPECT_DOUBLE_EQ(g.value(), 3.0);

  Histogram h({1.0, 10.0});
  h.observe(0.5);
  h.observe(5.0);
  h.observe(50.0);
  EXPECT_EQ(h.count(), 3u);
  EXPECT_DOUBLE_EQ(h.sum(), 55.5);
  EXPECT_EQ(h.bucket(0), 1u);
  EXPECT_EQ(h.bucket(1), 1u);
  EXPECT_EQ(h.bucket(2), 1u);  // overflow
}

TEST(Metrics, RegistryReturnsStableReferences) {
  MetricsRegistry registry;
  Counter& a = registry.counter("x");
  Counter& b = registry.counter("x");
  EXPECT_EQ(&a, &b);
  a.increment();
  EXPECT_EQ(b.value(), 1u);
  Histogram& h = registry.histogram("h", {1.0, 2.0});
  EXPECT_EQ(&h, &registry.histogram("h", {1.0, 2.0}));
  EXPECT_THROW(registry.histogram("h", {1.0, 3.0}), InvalidQueryError);
}

TEST(Metrics, SnapshotSerializesEveryKind) {
  MetricsRegistry registry;
  registry.counter("c").increment(2);
  registry.gauge("g").set(1.5);
  registry.histogram("h", {1.0}).observe(0.5);
  const JsonValue doc = parse_json(registry.to_json());
  EXPECT_EQ(doc.at("counters").at("c").number, 2.0);
  EXPECT_EQ(doc.at("gauges").at("g").number, 1.5);
  const JsonValue& h = doc.at("histograms").at("h");
  EXPECT_EQ(h.at("count").number, 1.0);
  ASSERT_EQ(h.at("buckets").array.size(), 2u);
  EXPECT_EQ(h.at("buckets").array[0].at("upper_bound").number, 1.0);
  EXPECT_TRUE(h.at("buckets").array[1].at("upper_bound").is_null());
  EXPECT_NE(registry.pretty().find("c"), std::string::npos);
}

TEST(Metrics, JsonHistogramsCarryPercentiles) {
  MetricsRegistry registry;
  Histogram& h = registry.histogram("lat", {1.0, 10.0, 100.0});
  for (int i = 0; i < 100; ++i) h.observe(5.0);
  const JsonValue doc = parse_json(registry.to_json());
  const JsonValue& j = doc.at("histograms").at("lat");
  EXPECT_EQ(j.at("count").number, 100.0);
  const double p50 = j.at("p50").number;
  const double p95 = j.at("p95").number;
  const double p99 = j.at("p99").number;
  EXPECT_LE(p50, p95);
  EXPECT_LE(p95, p99);
  // Every observation sits in the (1, 10] bucket, so the interpolated
  // percentiles cannot leave it.
  EXPECT_GT(p50, 1.0);
  EXPECT_LE(p99, 10.0);
}

TEST(Metrics, PrometheusExpositionFormat) {
  MetricsRegistry registry;
  registry.counter("queries.executed").increment(3);
  registry.gauge("eps.charged.laplace").set(1.25);
  Histogram& h = registry.histogram("query.wall_ms", {1.0, 10.0});
  h.observe(0.5);
  h.observe(5.0);
  h.observe(500.0);
  const std::string text = registry.to_prometheus();

  // Names are sanitized ('.' -> '_') and prefixed; each sample is
  // `name value` with a TYPE declaration.
  EXPECT_NE(text.find("# TYPE dpnet_queries_executed counter\n"),
            std::string::npos);
  EXPECT_NE(text.find("dpnet_queries_executed 3\n"), std::string::npos);
  EXPECT_NE(text.find("# TYPE dpnet_eps_charged_laplace gauge\n"),
            std::string::npos);
  EXPECT_NE(text.find("dpnet_eps_charged_laplace 1.25\n"),
            std::string::npos);
  // Histogram buckets are cumulative and close with +Inf == _count.
  EXPECT_NE(text.find("# TYPE dpnet_query_wall_ms histogram\n"),
            std::string::npos);
  EXPECT_NE(text.find("dpnet_query_wall_ms_bucket{le=\"1\"} 1\n"),
            std::string::npos);
  EXPECT_NE(text.find("dpnet_query_wall_ms_bucket{le=\"10\"} 2\n"),
            std::string::npos);
  EXPECT_NE(text.find("dpnet_query_wall_ms_bucket{le=\"+Inf\"} 3\n"),
            std::string::npos);
  EXPECT_NE(text.find("dpnet_query_wall_ms_count 3\n"), std::string::npos);
  EXPECT_NE(text.find("dpnet_query_wall_ms_sum 505.5\n"),
            std::string::npos);
}

TEST(Metrics, EngineMaintainsBuiltins) {
  const std::uint64_t queries_before = builtin_metrics::queries_executed().value();
  const std::uint64_t refused_before = builtin_metrics::refused_charges().value();
  const std::uint64_t draws_before = builtin_metrics::noise_draws().value();
  const double laplace_before = builtin_metrics::eps_charged("laplace").value();

  Queryable<int> q(std::vector<int>{1, 2, 3},
                   std::make_shared<RootBudget>(1.0),
                   std::make_shared<NoiseSource>(3));
  std::ignore = q.noisy_count(0.25);
  EXPECT_EQ(builtin_metrics::queries_executed().value(), queries_before + 1);
  EXPECT_GE(builtin_metrics::noise_draws().value(), draws_before + 1);
  EXPECT_DOUBLE_EQ(builtin_metrics::eps_charged("laplace").value(),
                   laplace_before + 0.25);

  EXPECT_THROW(std::ignore = q.noisy_count(10.0), BudgetExhaustedError);
  EXPECT_EQ(builtin_metrics::refused_charges().value(), refused_before + 1);
  EXPECT_EQ(builtin_metrics::queries_executed().value(), queries_before + 1);
}

// Eight threads, each driving its own streaming histogram to release
// repeatedly, all updating the shared global metrics concurrently.  The
// counters must come out exact (no lost updates).
TEST(Metrics, ThreadSafeUnderConcurrentStreaming) {
  constexpr int kThreads = 8;
  constexpr int kReleases = 50;
  const std::uint64_t queries_before = builtin_metrics::queries_executed().value();
  const double laplace_before = builtin_metrics::eps_charged("laplace").value();

  std::vector<std::thread> workers;  // dpnet-lint: suppress(R7)
  workers.reserve(kThreads);
  for (int t = 0; t < kThreads; ++t) {
    workers.emplace_back([t] {
      StreamingHistogram<int> hist(
          {0, 1, 2}, std::make_shared<RootBudget>(1e6),
          std::make_shared<NoiseSource>(static_cast<std::uint64_t>(t) + 1));
      for (int i = 0; i < 90; ++i) hist.feed(i % 3);
      for (int r = 0; r < kReleases; ++r) {
        // eps = 0.25 is a binary fraction, so the concurrent gauge adds
        // must reassemble to an exact total in any interleaving.
        std::ignore = hist.release(0.25);
      }
    });
  }
  for (auto& w : workers) w.join();

  EXPECT_EQ(builtin_metrics::queries_executed().value(),
            queries_before + kThreads * kReleases);
  EXPECT_DOUBLE_EQ(builtin_metrics::eps_charged("laplace").value(),
                   laplace_before + 0.25 * kThreads * kReleases);
}

// Concurrent registration of fresh names must not invalidate references
// handed out to other threads.
TEST(Metrics, ConcurrentRegistrationIsSafe) {
  MetricsRegistry registry;
  constexpr int kThreads = 8;
  std::vector<std::thread> workers;  // dpnet-lint: suppress(R7)
  workers.reserve(kThreads);
  for (int t = 0; t < kThreads; ++t) {
    workers.emplace_back([&registry, t] {
      Counter& mine = registry.counter("worker." + std::to_string(t));
      Counter& shared = registry.counter("shared");
      for (int i = 0; i < 1000; ++i) {
        mine.increment();
        shared.increment();
      }
    });
  }
  for (auto& w : workers) w.join();
  EXPECT_EQ(registry.counter("shared").value(), 8000u);
  for (int t = 0; t < kThreads; ++t) {
    EXPECT_EQ(registry.counter("worker." + std::to_string(t)).value(), 1000u);
  }
}

}  // namespace
}  // namespace dpnet::core
