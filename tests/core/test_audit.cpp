#include "core/audit.hpp"

#include <gtest/gtest.h>

#include "core/queryable.hpp"
#include <tuple>

namespace dpnet::core {
namespace {

TEST(AuditingBudget, RecordsSuccessfulCharges) {
  auto audit = std::make_shared<AuditingBudget>(
      std::make_shared<RootBudget>(1.0));
  audit->charge(0.2);
  audit->charge(0.3);
  ASSERT_EQ(audit->entries().size(), 2u);
  EXPECT_DOUBLE_EQ(audit->entries()[0].eps, 0.2);
  EXPECT_DOUBLE_EQ(audit->entries()[1].eps, 0.3);
  EXPECT_DOUBLE_EQ(audit->spent(), 0.5);
}

TEST(AuditingBudget, RefusalsAreNotLogged) {
  auto audit = std::make_shared<AuditingBudget>(
      std::make_shared<RootBudget>(0.1));
  EXPECT_THROW(audit->charge(0.5), BudgetExhaustedError);
  EXPECT_TRUE(audit->entries().empty());
  EXPECT_FALSE(audit->can_charge(0.5));
  EXPECT_TRUE(audit->can_charge(0.1));
}

TEST(AuditingBudget, LabelsTagCharges) {
  auto audit = std::make_shared<AuditingBudget>(
      std::make_shared<RootBudget>(10.0));
  audit->set_label("warmup");
  audit->charge(0.1);
  {
    ScopedAuditLabel scope(*audit, "rtt-cdf");
    audit->charge(0.2);
    audit->charge(0.3);
  }
  audit->charge(0.4);  // back to "warmup"
  const auto totals = audit->totals_by_label();
  EXPECT_DOUBLE_EQ(totals.at("warmup"), 0.5);
  EXPECT_DOUBLE_EQ(totals.at("rtt-cdf"), 0.5);
}

TEST(ScopedAuditLabel, NestsAndRestores) {
  AuditingBudget audit(std::make_shared<RootBudget>(10.0));
  {
    ScopedAuditLabel outer(audit, "outer");
    EXPECT_EQ(audit.label(), "outer");
    {
      ScopedAuditLabel inner(audit, "inner");
      EXPECT_EQ(audit.label(), "inner");
    }
    EXPECT_EQ(audit.label(), "outer");
  }
  EXPECT_EQ(audit.label(), "");
}

TEST(AuditingBudget, RejectsNullInner) {
  EXPECT_THROW(AuditingBudget(nullptr), InvalidQueryError);
}

TEST(AuditingBudget, WorksAsAQueryableBudget) {
  auto audit = std::make_shared<AuditingBudget>(
      std::make_shared<RootBudget>(1.0));
  Queryable<int> q(std::vector<int>{1, 2, 3}, audit,
                   std::make_shared<NoiseSource>(1));
  {
    ScopedAuditLabel scope(*audit, "count-evens");
    std::ignore = q.where([](int x) { return x % 2 == 0; }).noisy_count(0.25);
  }
  ASSERT_EQ(audit->entries().size(), 1u);
  EXPECT_EQ(audit->entries()[0].label, "count-evens");
  EXPECT_DOUBLE_EQ(audit->entries()[0].eps, 0.25);
}

TEST(AuditingBudget, GroupByChargeShowsAmplifiedCost) {
  auto audit = std::make_shared<AuditingBudget>(
      std::make_shared<RootBudget>(1.0));
  Queryable<int> q(std::vector<int>{1, 2, 3, 4}, audit,
                   std::make_shared<NoiseSource>(2));
  std::ignore = q.group_by([](int x) { return x % 2; }).noisy_count(0.1);
  ASSERT_EQ(audit->entries().size(), 1u);
  EXPECT_DOUBLE_EQ(audit->entries()[0].eps, 0.2);  // stability 2 x 0.1
}

// Pins the charge() exception-safety ordering documented in audit.hpp:
// the inner charge runs first, so a refusal leaves the ledger untouched
// and later successes append cleanly.  Telemetry reconciliation (trace
// span sums vs ledger) depends on this never drifting.
TEST(AuditingBudget, ChargeOrderingKeepsLedgerConsistentAcrossRefusals) {
  auto inner = std::make_shared<RootBudget>(0.5);
  AuditingBudget audit(inner);
  audit.charge(0.3);
  EXPECT_THROW(audit.charge(0.3), BudgetExhaustedError);  // inner refused
  ASSERT_EQ(audit.entries().size(), 1u);
  EXPECT_DOUBLE_EQ(inner->spent(), 0.3);  // refusal charged nothing
  audit.charge(0.2);
  ASSERT_EQ(audit.entries().size(), 2u);
  double ledger_sum = 0.0;
  for (const auto& e : audit.entries()) ledger_sum += e.eps;
  EXPECT_DOUBLE_EQ(ledger_sum, audit.spent());
}

TEST(AuditingBudget, ClearDropsEntriesButNotSpend) {
  AuditingBudget audit(std::make_shared<RootBudget>(1.0));
  audit.charge(0.4);
  audit.clear();
  EXPECT_TRUE(audit.entries().empty());
  EXPECT_DOUBLE_EQ(audit.spent(), 0.4);  // the ledger is not the budget
  audit.charge(0.1);
  ASSERT_EQ(audit.entries().size(), 1u);
  EXPECT_DOUBLE_EQ(audit.entries()[0].eps, 0.1);
}

TEST(AuditingBudget, SerializesLedgerAsJson) {
  AuditingBudget audit(std::make_shared<RootBudget>(10.0));
  {
    ScopedAuditLabel scope(audit, "a");
    audit.charge(0.25);
    audit.charge(0.25);
  }
  {
    ScopedAuditLabel scope(audit, "b");
    audit.charge(0.5);
  }
  const JsonValue doc = parse_json(audit.to_json());
  EXPECT_DOUBLE_EQ(doc.at("spent").number, 1.0);
  ASSERT_EQ(doc.at("entries").array.size(), 3u);
  EXPECT_EQ(doc.at("entries").array[0].at("label").string, "a");
  EXPECT_DOUBLE_EQ(doc.at("entries").array[2].at("eps").number, 0.5);
  EXPECT_DOUBLE_EQ(doc.at("totals_by_label").at("a").number, 0.5);
  EXPECT_DOUBLE_EQ(doc.at("totals_by_label").at("b").number, 0.5);
}

TEST(AuditingBudget, ComposesWithTheLedger) {
  BudgetLedger ledger(1.0);
  auto audit = std::make_shared<AuditingBudget>(
      ledger.analyst("alice", 0.5));
  audit->charge(0.3);
  EXPECT_DOUBLE_EQ(ledger.dataset_spent(), 0.3);
  EXPECT_THROW(audit->charge(0.3), BudgetExhaustedError);
  EXPECT_EQ(audit->entries().size(), 1u);
}

}  // namespace
}  // namespace dpnet::core
