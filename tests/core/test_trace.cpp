// Query-plan tracing: span nesting across lazy materialization, partition
// per-branch visibility vs the max-cost charge, epsilon reconciliation
// against the audit ledger, and the disabled paths.
#include "core/trace.hpp"

#include <gtest/gtest.h>

#include <algorithm>
#include <memory>
#include <set>
#include <tuple>
#include <vector>

#include "core/audit.hpp"
#include "core/exec/executor.hpp"
#include "core/json.hpp"
#include "core/queryable.hpp"

namespace dpnet::core {
namespace {

Queryable<int> protect(std::vector<int> data,
                       std::shared_ptr<PrivacyBudget> budget) {
  return Queryable<int>(std::move(data), std::move(budget),
                        std::make_shared<NoiseSource>(7));
}

TEST(QueryTrace, NoSessionRecordsNothing) {
  EXPECT_EQ(active_trace(), nullptr);
  auto q = protect({1, 2, 3}, std::make_shared<RootBudget>(10.0));
  std::ignore = q.where([](int x) { return x > 1; }).noisy_count(0.5);
  // Nothing observable: no session was installed anywhere.
  QueryTrace trace;
  EXPECT_TRUE(trace.empty());
}

TEST(QueryTrace, AggregationSpanNestsUpstreamOperators) {
  auto q = protect({1, 2, 3, 4, 5, 6}, std::make_shared<RootBudget>(10.0));
  QueryTrace trace;
  {
    TraceSession session(trace);
    std::ignore = q.where([](int x) { return x % 2 == 0; })
                      .group_by([](int x) { return x % 3; })
                      .noisy_count(0.25);
  }
  ASSERT_EQ(trace.roots().size(), 1u);
  const TraceSpan& agg = trace.roots()[0];
  EXPECT_EQ(agg.op, "noisy_count");
  EXPECT_EQ(agg.mechanism, "laplace");
  EXPECT_DOUBLE_EQ(agg.eps_requested, 0.25);
  EXPECT_DOUBLE_EQ(agg.eps_charged, 0.5);  // group_by stability 2
  EXPECT_DOUBLE_EQ(agg.stability, 2.0);
  EXPECT_EQ(agg.output_rows, 1);

  // Materialization is demand-driven, so the group_by ran inside the
  // aggregation and the where ran inside the group_by.
  ASSERT_EQ(agg.children.size(), 1u);
  const TraceSpan& grouped = agg.children[0];
  EXPECT_EQ(grouped.op, "group_by");
  EXPECT_DOUBLE_EQ(grouped.stability, 2.0);
  EXPECT_EQ(grouped.input_rows, 3);
  EXPECT_EQ(grouped.output_rows, 3);  // 2,4,6 land in classes 2,1,0

  ASSERT_EQ(grouped.children.size(), 1u);
  const TraceSpan& filtered = grouped.children[0];
  EXPECT_EQ(filtered.op, "where");
  EXPECT_DOUBLE_EQ(filtered.stability, 1.0);
  EXPECT_EQ(filtered.input_rows, 6);
  EXPECT_EQ(filtered.output_rows, 3);
  EXPECT_TRUE(filtered.children.empty());
}

TEST(QueryTrace, MemoizedNodesAreNotReRecorded) {
  auto q = protect({1, 2, 3}, std::make_shared<RootBudget>(10.0));
  auto filtered = q.where([](int x) { return x > 0; });
  QueryTrace trace;
  {
    TraceSession session(trace);
    std::ignore = filtered.noisy_count(0.5);
    std::ignore = filtered.noisy_count(0.5);
  }
  ASSERT_EQ(trace.roots().size(), 2u);
  EXPECT_EQ(trace.roots()[0].children.size(), 1u);  // first run materializes
  EXPECT_TRUE(trace.roots()[1].children.empty());   // second reuses the node
}

TEST(QueryTrace, AnalystScopeGroupsSubqueries) {
  auto q = protect({1, 2, 3}, std::make_shared<RootBudget>(10.0));
  QueryTrace trace;
  {
    TraceSession session(trace);
    TraceScope phase("phase:warmup");
    std::ignore = q.noisy_count(0.5);
    std::ignore = q.noisy_count(0.5);
  }
  ASSERT_EQ(trace.roots().size(), 1u);
  EXPECT_EQ(trace.roots()[0].op, "phase:warmup");
  ASSERT_EQ(trace.roots()[0].children.size(), 2u);
  EXPECT_EQ(trace.roots()[0].children[0].op, "noisy_count");
}

TEST(QueryTrace, PartitionShowsPerBranchChargesBehindMaxCost) {
  auto root = std::make_shared<RootBudget>(10.0);
  auto q = protect({0, 1, 2, 3, 4, 5}, root);
  QueryTrace trace;
  {
    TraceSession session(trace);
    auto parts = q.partition(std::vector<int>{0, 1},
                             [](int x) { return x % 2; });
    std::ignore = parts.at(0).noisy_count(0.5);
    std::ignore = parts.at(1).noisy_count(0.25);
    std::ignore = parts.at(1).noisy_count(0.25);
  }
  // Max-cost rule: the parent pays the most expensive branch, not the sum.
  EXPECT_DOUBLE_EQ(root->spent(), 0.5);

  ASSERT_EQ(trace.roots().size(), 4u);
  EXPECT_EQ(trace.roots()[0].op, "partition");
  EXPECT_EQ(trace.roots()[0].input_rows, 6);
  EXPECT_EQ(trace.roots()[0].output_rows, 2);

  // The per-branch spans carry the part key, making the gap between the
  // branch charges (1.0 total) and the max-cost spend (0.5) auditable.
  EXPECT_EQ(trace.roots()[1].detail, "partition[0]");
  EXPECT_DOUBLE_EQ(trace.roots()[1].eps_charged, 0.5);
  EXPECT_EQ(trace.roots()[2].detail, "partition[1]");
  EXPECT_DOUBLE_EQ(trace.roots()[2].eps_charged, 0.25);
  EXPECT_EQ(trace.roots()[3].detail, "partition[1]");
  EXPECT_DOUBLE_EQ(trace.total_eps_charged(), 1.0);
}

TEST(QueryTrace, EpsSumsReconcileWithAuditLedger) {
  auto audit = std::make_shared<AuditingBudget>(
      std::make_shared<RootBudget>(10.0));
  auto q = protect({1, 2, 3, 4}, audit);
  QueryTrace trace;
  {
    TraceSession session(trace);
    std::ignore = q.noisy_count(0.5);
    std::ignore =
        q.group_by([](int x) { return x % 2; }).noisy_count(0.125);
    std::ignore =
        q.noisy_sum(0.25, [](int x) { return static_cast<double>(x); });
  }
  double ledger_sum = 0.0;
  for (const auto& e : audit->entries()) ledger_sum += e.eps;
  // Exact equality: a span's eps_charged is the very quantity the ledger
  // entry recorded, in the same order.
  EXPECT_EQ(trace.total_eps_charged(), ledger_sum);
  EXPECT_EQ(trace.total_eps_charged(), audit->spent());
  const auto by_op = trace.eps_by_op();
  EXPECT_DOUBLE_EQ(by_op.at("noisy_count"), 0.75);  // 0.5 + 2 x 0.125
  EXPECT_DOUBLE_EQ(by_op.at("noisy_sum"), 0.25);
}

TEST(QueryTrace, RefusedChargeMarksSpanAndChargesNothing) {
  auto q = protect({1, 2, 3}, std::make_shared<RootBudget>(0.1));
  QueryTrace trace;
  {
    TraceSession session(trace);
    EXPECT_THROW(std::ignore = q.noisy_count(0.5), BudgetExhaustedError);
  }
  ASSERT_EQ(trace.roots().size(), 1u);
  EXPECT_EQ(trace.roots()[0].detail, "refused");
  EXPECT_DOUBLE_EQ(trace.roots()[0].eps_charged, 0.0);
  EXPECT_DOUBLE_EQ(trace.total_eps_charged(), 0.0);
}

TEST(QueryTrace, DisarmedPipelinesSkipOperatorSpans) {
  set_tracing_armed(false);
  auto q = protect({1, 2, 3}, std::make_shared<RootBudget>(10.0));
  auto filtered = q.where([](int x) { return x > 1; });
  set_tracing_armed(true);
  QueryTrace trace;
  {
    TraceSession session(trace);
    std::ignore = filtered.noisy_count(0.5);
  }
  // The aggregation span still records (it checks at call time), but the
  // operator built while disarmed carries no instrumentation at all.
  ASSERT_EQ(trace.roots().size(), 1u);
  EXPECT_EQ(trace.roots()[0].op, "noisy_count");
  EXPECT_TRUE(trace.roots()[0].children.empty());
}

TEST(QueryTrace, SessionsNestAndRestore) {
  auto q = protect({1, 2, 3}, std::make_shared<RootBudget>(10.0));
  QueryTrace outer;
  QueryTrace inner;
  {
    TraceSession outer_session(outer);
    std::ignore = q.noisy_count(0.5);
    {
      TraceSession inner_session(inner);
      std::ignore = q.noisy_count(0.5);
    }
    std::ignore = q.noisy_count(0.5);
  }
  EXPECT_EQ(outer.roots().size(), 2u);
  EXPECT_EQ(inner.roots().size(), 1u);
  EXPECT_EQ(active_trace(), nullptr);
}

TEST(QueryTrace, ClearRefusesUnderOpenScopes) {
  QueryTrace trace;
  TraceSession session(trace);
  {
    TraceScope open("outer");
    trace.clear();  // must be a no-op: a span pointer is live on the stack
    TraceScope child("child");
  }
  ASSERT_EQ(trace.roots().size(), 1u);
  EXPECT_EQ(trace.roots()[0].children.size(), 1u);
  trace.clear();
  EXPECT_TRUE(trace.empty());
}

TEST(QueryTrace, JsonSerializationRoundTrips) {
  auto q = protect({1, 2, 3, 4}, std::make_shared<RootBudget>(10.0));
  QueryTrace trace;
  {
    TraceSession session(trace);
    std::ignore =
        q.where([](int x) { return x > 1; }).noisy_count(0.5);
  }
  const JsonValue doc = parse_json(trace.to_json());
  const JsonValue& spans = doc.at("spans");
  ASSERT_EQ(spans.array.size(), 1u);
  const JsonValue& agg = spans.array[0];
  EXPECT_EQ(agg.at("op").string, "noisy_count");
  EXPECT_EQ(agg.at("mechanism").string, "laplace");
  EXPECT_EQ(agg.at("eps_charged").number, 0.5);
  ASSERT_EQ(agg.at("children").array.size(), 1u);
  EXPECT_EQ(agg.at("children").array[0].at("op").string, "where");
  EXPECT_GE(agg.at("wall_ms").number, 0.0);

  EXPECT_NE(trace.pretty().find("noisy_count"), std::string::npos);
  EXPECT_NE(trace.pretty().find("where"), std::string::npos);
}

TEST(QueryTrace, SpansCarryTimelineStamps) {
  auto q = protect({1, 2, 3, 4}, std::make_shared<RootBudget>(10.0));
  QueryTrace trace;
  {
    TraceSession session(trace);
    std::ignore = q.where([](int x) { return x > 1; }).noisy_count(0.5);
  }
  ASSERT_EQ(trace.roots().size(), 1u);
  const TraceSpan& agg = trace.roots()[0];
  EXPECT_GE(agg.ts_us, 0);
  EXPECT_GE(agg.dur_us, 0);
  EXPECT_EQ(agg.worker, -1);  // recorded on the calling (analyst) thread
  ASSERT_EQ(agg.children.size(), 1u);
  const TraceSpan& child = agg.children[0];
  // The nested materialization began no earlier than its parent and fits
  // inside it (with 1 µs slack for truncation at each stamp).
  EXPECT_GE(child.ts_us, agg.ts_us);
  EXPECT_LE(child.ts_us + child.dur_us, agg.ts_us + agg.dur_us + 1);

  // The span JSON carries the stamps for bench artifacts / CLI output.
  const JsonValue doc = parse_json(trace.to_json());
  const JsonValue& span = doc.at("spans").array[0];
  EXPECT_GE(span.at("ts_us").number, 0.0);
  EXPECT_GE(span.at("dur_us").number, 0.0);
  EXPECT_EQ(span.at("worker").number, -1.0);
}

TEST(QueryTrace, ChromeExportIsCompleteEventsPlusLaneMetadata) {
  auto q = protect({1, 2, 3, 4}, std::make_shared<RootBudget>(10.0));
  QueryTrace trace;
  {
    TraceSession session(trace);
    std::ignore = q.where([](int x) { return x > 1; }).noisy_count(0.5);
  }
  const JsonValue doc = parse_json(trace.to_chrome_json());
  EXPECT_EQ(doc.at("displayTimeUnit").string, "ms");
  const JsonValue& events = doc.at("traceEvents");
  ASSERT_TRUE(events.is_array());

  std::size_t metadata = 0, complete = 0;
  for (const JsonValue& ev : events.array) {
    const std::string& ph = ev.at("ph").string;
    if (ph == "M") {
      ++metadata;
      EXPECT_EQ(ev.at("name").string, "thread_name");
      EXPECT_EQ(ev.at("args").at("name").string, "analyst");
    } else {
      ASSERT_EQ(ph, "X");  // complete events only: nothing half-open
      ++complete;
      EXPECT_GE(ev.at("ts").number, 0.0);
      EXPECT_GE(ev.at("dur").number, 0.0);
      EXPECT_EQ(ev.at("tid").number, 0.0);  // analyst lane
      EXPECT_EQ(ev.at("cat").string, "dpnet");
    }
  }
  EXPECT_EQ(metadata, 1u);  // single-threaded run: one lane
  EXPECT_EQ(complete, 2u);  // noisy_count + where
  // The aggregation event carries accounting args, never record contents.
  bool saw_charge = false;
  for (const JsonValue& ev : events.array) {
    if (ev.at("ph").string == "X" && ev.at("name").string == "noisy_count") {
      EXPECT_DOUBLE_EQ(ev.at("args").at("eps_charged").number, 0.5);
      saw_charge = true;
    }
  }
  EXPECT_TRUE(saw_charge);
}

TEST(QueryTrace, ParallelFanOutRendersPerWorkerLanes) {
  auto q = protect({0, 1, 2, 3, 4, 5, 6, 7, 8, 9, 10, 11},
                   std::make_shared<RootBudget>(100.0));
  std::vector<int> keys{0, 1, 2, 3};
  auto parts = q.partition(keys, [](int x) { return x % 4; });
  QueryTrace trace;
  {
    TraceSession session(trace);
    std::ignore = exec::map_parts(
        exec::ExecPolicy{4}, keys, parts,
        [](int, const Queryable<int>& part) {
          return part.noisy_count(0.5);
        });
  }
  // Worker-recorded spans carry their pool index; with 4 threads no task
  // runs on the calling thread.
  std::set<int> workers;
  for (const TraceSpan& root : trace.roots()) {
    workers.insert(root.worker);
  }
  EXPECT_TRUE(workers.count(-1) == 0);
  for (const int w : workers) {
    EXPECT_GE(w, 0);
    EXPECT_LT(w, 4);
  }

  // The Chrome export names each worker lane distinctly.
  const std::string chrome = trace.to_chrome_json();
  for (const int w : workers) {
    const std::string lane = "\"name\":\"worker " + std::to_string(w) + "\"";
    EXPECT_NE(chrome.find(lane), std::string::npos) << lane;
  }
  EXPECT_EQ(chrome.find("\"name\":\"analyst\""), std::string::npos);
}

}  // namespace
}  // namespace dpnet::core
