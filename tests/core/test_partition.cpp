#include <gtest/gtest.h>

#include <numeric>
#include <string>
#include <vector>

#include "core/queryable.hpp"
#include <tuple>

namespace dpnet::core {
namespace {

constexpr double kExactEps = 1e7;

struct Env {
  std::shared_ptr<RootBudget> budget;
  std::shared_ptr<NoiseSource> noise;

  explicit Env(double total = 1e12, std::uint64_t seed = 2)
      : budget(std::make_shared<RootBudget>(total)),
        noise(std::make_shared<NoiseSource>(seed)) {}

  template <typename T>
  Queryable<T> wrap(std::vector<T> data) const {
    return Queryable<T>(std::move(data), budget, noise);
  }
};

TEST(Partition, SplitsRecordsByKey) {
  Env env;
  std::vector<int> data(100);
  std::iota(data.begin(), data.end(), 0);
  auto parts = env.wrap(std::move(data)).partition(
      std::vector<int>{0, 1, 2}, [](int x) { return x % 3; });
  ASSERT_EQ(parts.size(), 3u);
  EXPECT_NEAR(parts.at(0).noisy_count(kExactEps), 34.0, 0.01);
  EXPECT_NEAR(parts.at(1).noisy_count(kExactEps), 33.0, 0.01);
  EXPECT_NEAR(parts.at(2).noisy_count(kExactEps), 33.0, 0.01);
}

TEST(Partition, DropsRecordsWithUnlistedKeys) {
  Env env;
  auto parts = env.wrap(std::vector<int>{1, 2, 3, 4, 5})
                   .partition(std::vector<int>{0},
                              [](int x) { return x % 2; });
  EXPECT_NEAR(parts.at(0).noisy_count(kExactEps), 2.0, 0.01);  // 2 and 4
}

TEST(Partition, EmptyPartsExistForAllKeys) {
  Env env;
  auto parts = env.wrap(std::vector<int>{1}).partition(
      std::vector<int>{0, 1, 2}, [](int x) { return x; });
  ASSERT_EQ(parts.size(), 3u);
  EXPECT_NEAR(parts.at(2).noisy_count(kExactEps), 0.0, 0.01);
}

TEST(Partition, RejectsDuplicateKeys) {
  Env env;
  auto q = env.wrap(std::vector<int>{1, 2});
  EXPECT_THROW(
      q.partition(std::vector<int>{0, 0}, [](int x) { return x; }),
      InvalidQueryError);
}

TEST(Partition, SourcePaysOnlyTheMaximumOverParts) {
  Env env;
  std::vector<int> data(60);
  std::iota(data.begin(), data.end(), 0);
  auto parts = env.wrap(std::move(data)).partition(
      std::vector<int>{0, 1, 2}, [](int x) { return x % 3; });
  std::ignore = parts.at(0).noisy_count(0.2);
  std::ignore = parts.at(1).noisy_count(0.5);
  std::ignore = parts.at(2).noisy_count(0.3);
  EXPECT_DOUBLE_EQ(env.budget->spent(), 0.5);
  // A second query on part 0 raises it to 0.6, above the old maximum.
  std::ignore = parts.at(0).noisy_count(0.4);
  EXPECT_DOUBLE_EQ(env.budget->spent(), 0.6);
}

TEST(Partition, StringKeysWork) {
  Env env;
  auto parts = env.wrap(std::vector<std::string>{"cat", "cow", "dog"})
                   .partition(std::vector<std::string>{"c", "d"},
                              [](const std::string& s) {
                                return s.substr(0, 1);
                              });
  EXPECT_NEAR(parts.at("c").noisy_count(kExactEps), 2.0, 0.01);
  EXPECT_NEAR(parts.at("d").noisy_count(kExactEps), 1.0, 0.01);
}

TEST(Partition, NestedPartitionsChargeMaxOfMax) {
  Env env;
  std::vector<int> data(100);
  std::iota(data.begin(), data.end(), 0);
  auto outer = env.wrap(std::move(data)).partition(
      std::vector<int>{0, 1}, [](int x) { return x % 2; });
  auto inner0 = outer.at(0).partition(std::vector<int>{0, 1},
                                      [](int x) { return (x / 2) % 2; });
  auto inner1 = outer.at(1).partition(std::vector<int>{0, 1},
                                      [](int x) { return (x / 2) % 2; });
  // Every leaf counted at the same epsilon: the root pays just epsilon.
  std::ignore = inner0.at(0).noisy_count(0.25);
  std::ignore = inner0.at(1).noisy_count(0.25);
  std::ignore = inner1.at(0).noisy_count(0.25);
  std::ignore = inner1.at(1).noisy_count(0.25);
  EXPECT_DOUBLE_EQ(env.budget->spent(), 0.25);
}

TEST(Partition, PartsInheritStability) {
  Env env;
  std::vector<int> data(30);
  std::iota(data.begin(), data.end(), 0);
  auto grouped = env.wrap(std::move(data))
                     .group_by([](int x) { return x % 10; });
  auto parts = grouped.partition(
      std::vector<int>{0, 1},
      [](const Group<int, int>& g) { return g.key % 2; });
  EXPECT_DOUBLE_EQ(parts.at(0).total_stability(), 2.0);
  std::ignore = parts.at(0).noisy_count(0.1);
  EXPECT_DOUBLE_EQ(env.budget->spent(), 0.2);  // stability 2 x eps 0.1
}

TEST(Partition, TransformationsInsidePartsStayAccounted) {
  Env env;
  std::vector<int> data(40);
  std::iota(data.begin(), data.end(), 0);
  auto parts = env.wrap(std::move(data)).partition(
      std::vector<int>{0, 1}, [](int x) { return x % 2; });
  auto grouped = parts.at(0).group_by([](int x) { return x % 5; });
  std::ignore = grouped.noisy_count(0.1);  // stability 2 -> part pays 0.2
  EXPECT_DOUBLE_EQ(env.budget->spent(), 0.2);
  std::ignore = parts.at(1).noisy_count(0.15);  // below the 0.2 maximum
  EXPECT_DOUBLE_EQ(env.budget->spent(), 0.2);
}

TEST(Partition, JoinAcrossSiblingPartsChargesBoth) {
  Env env;
  std::vector<int> data(20);
  std::iota(data.begin(), data.end(), 0);
  auto parts = env.wrap(std::move(data)).partition(
      std::vector<int>{0, 1}, [](int x) { return x % 2; });
  auto joined = parts.at(0).join(
      parts.at(1), [](int x) { return x / 2; }, [](int y) { return y / 2; },
      [](int x, int) { return x; });
  EXPECT_EQ(joined.budget_count(), 2u);
  std::ignore = joined.noisy_count(0.3);
  // Each sibling paid 0.3, and the parent pays the maximum: 0.3.
  EXPECT_DOUBLE_EQ(env.budget->spent(), 0.3);
}

TEST(Partition, ExhaustionInsideAPartSurfacesAsBudgetError) {
  auto budget = std::make_shared<RootBudget>(0.5);
  auto noise = std::make_shared<NoiseSource>(6);
  Queryable<int> q(std::vector<int>{1, 2, 3, 4}, budget, noise);
  auto parts =
      q.partition(std::vector<int>{0, 1}, [](int x) { return x % 2; });
  std::ignore = parts.at(0).noisy_count(0.4);
  EXPECT_THROW(std::ignore = parts.at(1).noisy_count(0.6), BudgetExhaustedError);
  // 0.4 of the parent is already pledged to the maximum; 0.1 headroom.
  EXPECT_NO_THROW(std::ignore = parts.at(1).noisy_count(0.5));
  EXPECT_DOUBLE_EQ(budget->spent(), 0.5);
}

}  // namespace
}  // namespace dpnet::core
