#include "core/budget.hpp"

#include <gtest/gtest.h>

#include <memory>

namespace dpnet::core {
namespace {

TEST(RootBudget, TracksSpending) {
  RootBudget budget(1.0);
  EXPECT_DOUBLE_EQ(budget.total(), 1.0);
  EXPECT_DOUBLE_EQ(budget.spent(), 0.0);
  budget.charge(0.3);
  EXPECT_DOUBLE_EQ(budget.spent(), 0.3);
  EXPECT_DOUBLE_EQ(budget.remaining(), 0.7);
}

TEST(RootBudget, ThrowsWhenExhausted) {
  RootBudget budget(0.5);
  budget.charge(0.4);
  EXPECT_THROW(budget.charge(0.2), BudgetExhaustedError);
  // A failed charge leaves the budget unchanged.
  EXPECT_DOUBLE_EQ(budget.spent(), 0.4);
  budget.charge(0.1);
  EXPECT_DOUBLE_EQ(budget.spent(), 0.5);
}

TEST(RootBudget, AdmitsExactExhaustionDespiteFloatRounding) {
  RootBudget budget(1.0);
  for (int i = 0; i < 10; ++i) budget.charge(0.1);
  EXPECT_NEAR(budget.spent(), 1.0, 1e-12);
}

TEST(RootBudget, RejectsNegativeCharge) {
  RootBudget budget(1.0);
  EXPECT_THROW(budget.charge(-0.1), InvalidEpsilonError);
}

TEST(RootBudget, RejectsNegativeTotal) {
  EXPECT_THROW(RootBudget(-1.0), InvalidEpsilonError);
}

TEST(RootBudget, CanChargeReflectsRemaining) {
  RootBudget budget(1.0);
  EXPECT_TRUE(budget.can_charge(1.0));
  EXPECT_FALSE(budget.can_charge(1.1));
  budget.charge(0.6);
  EXPECT_TRUE(budget.can_charge(0.4));
  EXPECT_FALSE(budget.can_charge(0.5));
  EXPECT_FALSE(budget.can_charge(-0.1));
}

TEST(PartitionBudget, ParentPaysMaximumOfChildren) {
  auto root = std::make_shared<RootBudget>(10.0);
  auto group = std::make_shared<PartitionGroup>(root);
  PartitionBudget a(group);
  PartitionBudget b(group);

  a.charge(0.3);
  EXPECT_DOUBLE_EQ(root->spent(), 0.3);
  b.charge(0.5);
  EXPECT_DOUBLE_EQ(root->spent(), 0.5);  // max(0.3, 0.5), not the sum
  a.charge(0.1);
  EXPECT_DOUBLE_EQ(root->spent(), 0.5);  // a is at 0.4, still below max
  a.charge(0.3);
  EXPECT_DOUBLE_EQ(root->spent(), 0.7);  // a is now the max at 0.7
  EXPECT_DOUBLE_EQ(a.spent(), 0.7);
  EXPECT_DOUBLE_EQ(b.spent(), 0.5);
}

TEST(PartitionBudget, ChildChargeFailsWhenParentCannotPay) {
  auto root = std::make_shared<RootBudget>(1.0);
  auto group = std::make_shared<PartitionGroup>(root);
  PartitionBudget child(group);
  child.charge(0.8);
  EXPECT_THROW(child.charge(0.3), BudgetExhaustedError);
  EXPECT_DOUBLE_EQ(child.spent(), 0.8);
  EXPECT_DOUBLE_EQ(root->spent(), 0.8);
}

TEST(PartitionBudget, CanChargeConsultsParentDelta) {
  auto root = std::make_shared<RootBudget>(1.0);
  auto group = std::make_shared<PartitionGroup>(root);
  PartitionBudget a(group);
  PartitionBudget b(group);
  a.charge(0.9);
  // b can rise all the way to the existing maximum for free.
  EXPECT_TRUE(b.can_charge(0.9));
  EXPECT_TRUE(b.can_charge(1.0));
  EXPECT_FALSE(b.can_charge(1.2));
}

TEST(PartitionBudget, NestedPartitionsComposeMaxSemantics) {
  auto root = std::make_shared<RootBudget>(10.0);
  auto outer = std::make_shared<PartitionGroup>(root);
  auto part1 = std::make_shared<PartitionBudget>(outer);
  auto part2 = std::make_shared<PartitionBudget>(outer);
  auto inner = std::make_shared<PartitionGroup>(part1);
  PartitionBudget leaf_a(inner);
  PartitionBudget leaf_b(inner);

  leaf_a.charge(0.2);
  leaf_b.charge(0.4);
  part2->charge(0.1);
  // part1 pays max(0.2, 0.4) = 0.4; root pays max(0.4, 0.1) = 0.4.
  EXPECT_DOUBLE_EQ(part1->spent(), 0.4);
  EXPECT_DOUBLE_EQ(root->spent(), 0.4);
}

TEST(CappedBudget, EnforcesOwnCapAndChargesParent) {
  auto root = std::make_shared<RootBudget>(10.0);
  CappedBudget capped(0.5, root);
  capped.charge(0.4);
  EXPECT_DOUBLE_EQ(root->spent(), 0.4);
  EXPECT_THROW(capped.charge(0.2), BudgetExhaustedError);
  EXPECT_DOUBLE_EQ(capped.spent(), 0.4);
  EXPECT_DOUBLE_EQ(root->spent(), 0.4);
}

TEST(CappedBudget, ParentExhaustionBlocksEvenUnderCap) {
  auto root = std::make_shared<RootBudget>(0.3);
  CappedBudget capped(5.0, root);
  capped.charge(0.25);
  EXPECT_FALSE(capped.can_charge(0.1));
  EXPECT_THROW(capped.charge(0.1), BudgetExhaustedError);
}

TEST(BudgetLedger, AnalystsShareTheDatasetBudget) {
  BudgetLedger ledger(1.0);
  auto alice = ledger.analyst("alice", 0.6);
  auto bob = ledger.analyst("bob", 0.6);
  alice->charge(0.5);
  bob->charge(0.4);
  EXPECT_DOUBLE_EQ(ledger.dataset_spent(), 0.9);
  // Bob is under his cap but the dataset has only 0.1 left.
  EXPECT_THROW(bob->charge(0.2), BudgetExhaustedError);
  bob->charge(0.1);
  EXPECT_NEAR(ledger.dataset_remaining(), 0.0, 1e-12);
}

TEST(BudgetLedger, ReturnsSameAccountantForRepeatCalls) {
  BudgetLedger ledger(2.0);
  auto first = ledger.analyst("carol", 1.0);
  auto second = ledger.analyst("carol", 1.0);
  EXPECT_EQ(first, second);
  EXPECT_THROW(ledger.analyst("carol", 0.5), InvalidQueryError);
}

}  // namespace
}  // namespace dpnet::core
