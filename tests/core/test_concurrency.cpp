// Concurrency: a data owner serving several analyst threads against one
// protected dataset must get atomic budget accounting, race-free noise
// draws, and exactly-once materialization.
#include <gtest/gtest.h>

#include <atomic>
#include <numeric>
#include <thread>
#include <vector>

#include "core/queryable.hpp"
#include <tuple>

namespace dpnet::core {
namespace {

std::vector<int> iota_vec(int n) {
  std::vector<int> v(static_cast<std::size_t>(n));
  std::iota(v.begin(), v.end(), 0);
  return v;
}

TEST(Concurrency, ParallelChargesNeverOverdrawTheBudget) {
  auto budget = std::make_shared<RootBudget>(1.0);
  std::atomic<int> succeeded{0};
  std::vector<std::thread> threads;  // dpnet-lint: suppress(R7)
  for (int t = 0; t < 8; ++t) {
    threads.emplace_back([&budget, &succeeded] {
      for (int i = 0; i < 100; ++i) {
        try {
          budget->charge(0.01);
          succeeded.fetch_add(1);
        } catch (const BudgetExhaustedError&) {
          // expected once the pool drains
        }
      }
    });
  }
  for (auto& th : threads) th.join();
  // Exactly 100 charges of 0.01 fit into 1.0 (kSlack admits the boundary).
  EXPECT_EQ(succeeded.load(), 100);
  EXPECT_NEAR(budget->spent(), 1.0, 1e-9);
}

TEST(Concurrency, ParallelAggregationsAccountExactly) {
  auto budget = std::make_shared<RootBudget>(1e6);
  auto noise = std::make_shared<NoiseSource>(5);
  Queryable<int> q(iota_vec(1000), budget, noise);
  std::vector<std::thread> threads;  // dpnet-lint: suppress(R7)
  for (int t = 0; t < 6; ++t) {
    threads.emplace_back([&q] {
      for (int i = 0; i < 200; ++i) {
        const double v = q.noisy_count(1.0);
        EXPECT_GT(v, 0.0);  // 1000 +/- small noise
      }
    });
  }
  for (auto& th : threads) th.join();
  EXPECT_NEAR(budget->spent(), 1200.0, 1e-6);
}

TEST(Concurrency, SharedDerivedQueryableMaterializesOnce) {
  auto budget = std::make_shared<RootBudget>(1e12);
  auto noise = std::make_shared<NoiseSource>(6);
  Queryable<int> q(iota_vec(100000), budget, noise);
  std::atomic<int> evaluations{0};
  auto filtered = q.where([&evaluations](int x) {
    if (x == 0) evaluations.fetch_add(1);
    return x % 2 == 0;
  });
  std::vector<std::thread> threads;  // dpnet-lint: suppress(R7)
  for (int t = 0; t < 8; ++t) {
    threads.emplace_back([&filtered] {
      EXPECT_NEAR(filtered.noisy_count(1e7), 50000.0, 1.0);
    });
  }
  for (auto& th : threads) th.join();
  EXPECT_EQ(evaluations.load(), 1);  // the predicate ran one pass only
}

TEST(Concurrency, PartitionMaxAccountingHoldsUnderContention) {
  auto budget = std::make_shared<RootBudget>(1e6);
  auto noise = std::make_shared<NoiseSource>(7);
  Queryable<int> q(iota_vec(900), budget, noise);
  auto parts = q.partition(std::vector<int>{0, 1, 2},
                           [](int x) { return x % 3; });
  std::vector<std::thread> threads;  // dpnet-lint: suppress(R7)
  for (int part = 0; part < 3; ++part) {
    threads.emplace_back([&parts, part] {
      for (int i = 0; i < 50; ++i) {
        std::ignore = parts.at(part).noisy_count(0.1);
      }
    });
  }
  for (auto& th : threads) th.join();
  // Every part charged exactly 5.0; the root pays the maximum.
  EXPECT_NEAR(budget->spent(), 5.0, 1e-9);
}

TEST(Concurrency, NoiseDrawsAreRaceFreeAndStillRandom) {
  auto noise = std::make_shared<NoiseSource>(8);
  std::vector<std::vector<double>> draws(4);
  std::vector<std::thread> threads;  // dpnet-lint: suppress(R7)
  for (int t = 0; t < 4; ++t) {
    threads.emplace_back([&noise, &draws, t] {
      for (int i = 0; i < 5000; ++i) {
        draws[static_cast<std::size_t>(t)].push_back(noise->laplace(1.0));
      }
    });
  }
  for (auto& th : threads) th.join();
  // Pooled draws still look like Laplace(1): stddev ~ sqrt(2).
  double sum = 0.0, sum_sq = 0.0;
  std::size_t n = 0;
  for (const auto& d : draws) {
    for (double x : d) {
      sum += x;
      sum_sq += x * x;
      ++n;
    }
  }
  const double mean = sum / static_cast<double>(n);
  const double stddev =
      std::sqrt(sum_sq / static_cast<double>(n) - mean * mean);
  EXPECT_NEAR(stddev, std::sqrt(2.0), 0.1);
}

}  // namespace
}  // namespace dpnet::core
