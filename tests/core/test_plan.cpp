// Logical-plan IR: hash-chained node ids are a pure function of the root
// noise stream and derivation order (never of execution schedule), the DAG
// records operator structure, and partition tags stay readable for opaque
// key types.
#include "core/plan.hpp"

#include <gtest/gtest.h>

#include <memory>
#include <string>
#include <tuple>
#include <utility>
#include <vector>

#include "core/queryable.hpp"
#include "core/trace.hpp"

namespace {

// A partition key that is neither arithmetic nor string-convertible, so
// key_to_tag has no readable rendering for it.
struct OpaqueKey {
  int v = 0;
  bool operator==(const OpaqueKey&) const = default;
};

}  // namespace

template <>
struct std::hash<OpaqueKey> {
  std::size_t operator()(const OpaqueKey& k) const noexcept {
    return std::hash<int>{}(k.v);
  }
};

namespace dpnet::core {
namespace {

Queryable<int> protect(std::vector<int> data, std::uint64_t seed,
                       double budget = 100.0) {
  return Queryable<int>(std::move(data), std::make_shared<RootBudget>(budget),
                        std::make_shared<NoiseSource>(seed));
}

TEST(Plan, RootIdIsDeterministicPerSeed) {
  auto a = protect({1, 2, 3}, 42);
  auto b = protect({1, 2, 3}, 42);
  auto c = protect({1, 2, 3}, 43);
  EXPECT_EQ(a.plan_node().id(), b.plan_node().id());
  EXPECT_NE(a.plan_node().id(), c.plan_node().id());
}

TEST(Plan, DerivedIdsReplayAcrossIdenticalPipelines) {
  // Build the same pipeline twice from identically-seeded roots: every
  // node id must replay, because release noise is seeded from them.
  auto build = [] {
    auto q = protect({1, 2, 3, 4, 5, 6}, 7);
    auto filtered = q.where([](int x) { return x > 1; });
    auto mapped = filtered.select([](int x) { return x * 2; });
    return std::vector<std::uint64_t>{q.plan_node().id(),
                                      filtered.plan_node().id(),
                                      mapped.plan_node().id()};
  };
  EXPECT_EQ(build(), build());
}

TEST(Plan, SiblingDerivationsGetDistinctIds) {
  auto q = protect({1, 2, 3}, 7);
  auto first = q.where([](int x) { return x > 0; });
  auto second = q.where([](int x) { return x > 0; });
  EXPECT_NE(first.plan_node().id(), second.plan_node().id());
  EXPECT_NE(first.plan_node().id(), q.plan_node().id());
}

TEST(Plan, DagRecordsOperatorAndInputs) {
  auto q = protect({1, 2, 3}, 7);
  auto filtered = q.where([](int x) { return x > 1; });
  EXPECT_EQ(q.plan_node().op(), "source");
  EXPECT_EQ(filtered.plan_node().op(), "where");
  const auto inputs = filtered.plan_node().inputs();
  ASSERT_EQ(inputs.size(), 1u);
  EXPECT_EQ(inputs[0]->id(), q.plan_node().id());
}

TEST(Plan, BinaryOperatorsRecordBothInputs) {
  auto left = protect({1, 2}, 7);
  auto right = protect({3, 4}, 8);
  auto merged = left.concat(right);
  const auto inputs = merged.plan_node().inputs();
  ASSERT_EQ(inputs.size(), 2u);
  EXPECT_EQ(inputs[0]->id(), left.plan_node().id());
  EXPECT_EQ(inputs[1]->id(), right.plan_node().id());
}

TEST(Plan, DescribeRendersTheDagWithMaterializationMarks) {
  auto q = protect({1, 2, 3}, 7);
  auto filtered = q.where([](int x) { return x > 1; });
  const std::string before = filtered.plan_node().describe();
  EXPECT_NE(before.find("where"), std::string::npos);
  EXPECT_NE(before.find("source"), std::string::npos);

  std::ignore = filtered.noisy_count(1.0);
  const std::string after = filtered.plan_node().describe();
  EXPECT_NE(after.find('*'), std::string::npos);  // now materialized
  EXPECT_TRUE(filtered.plan_node().materialized());
}

TEST(Plan, MaterializationIsDemandDriven) {
  auto q = protect({1, 2, 3}, 7);
  auto filtered = q.where([](int x) { return x > 1; });
  EXPECT_TRUE(q.plan_node().materialized());  // sources hold their rows
  EXPECT_FALSE(filtered.plan_node().materialized());
  std::ignore = filtered.noisy_count(1.0);
  EXPECT_TRUE(filtered.plan_node().materialized());
}

TEST(Plan, OpaquePartitionKeysGetIndexedTraceTags) {
  // Keys with no string/number rendering used to collapse to one "?" tag;
  // the index suffix keeps sibling branches distinguishable in traces.
  auto q = protect({0, 1, 2, 3}, 7);
  QueryTrace trace;
  {
    TraceSession session(trace);
    const std::vector<OpaqueKey> keys = {{0}, {1}};
    auto parts = q.partition(
        keys, [](int x) { return OpaqueKey{x % 2}; });
    std::ignore = parts.at(OpaqueKey{0}).noisy_count(0.5);
    std::ignore = parts.at(OpaqueKey{1}).noisy_count(0.5);
  }
  ASSERT_EQ(trace.roots().size(), 3u);
  EXPECT_EQ(trace.roots()[1].detail, "partition[?0]");
  EXPECT_EQ(trace.roots()[2].detail, "partition[?1]");
}

TEST(Plan, ReleaseSeedsDifferPerNodeAndPerRelease) {
  auto q = protect({1, 2, 3}, 7);
  auto a = q.where([](int x) { return x > 0; });
  auto b = q.where([](int x) { return x > 0; });
  const std::uint64_t stream = 99;
  const auto a0 = a.plan_node().next_release_seed(stream);
  const auto a1 = a.plan_node().next_release_seed(stream);
  const auto b0 = b.plan_node().next_release_seed(stream);
  EXPECT_NE(a0, a1);  // repeated releases on one node
  EXPECT_NE(a0, b0);  // sibling nodes
}

}  // namespace
}  // namespace dpnet::core
