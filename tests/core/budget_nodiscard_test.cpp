// Runtime guard for lint rule R3: [[nodiscard]] on aggregations is a
// compile-time courtesy, but the accounting contract is stronger — an
// aggregation charges the budget the moment it runs, whether or not the
// analyst looks at the result.  Discard-then-retry must never be a way to
// probe for free (docs/privacy_accounting.md).
#include <gtest/gtest.h>

#include <memory>
#include <tuple>
#include <vector>

#include "core/budget.hpp"
#include "core/noise.hpp"
#include "core/queryable.hpp"

namespace dpnet::core {
namespace {

struct Env {
  std::shared_ptr<RootBudget> budget = std::make_shared<RootBudget>(10.0);
  std::shared_ptr<NoiseSource> noise = std::make_shared<NoiseSource>(7);

  [[nodiscard]] Queryable<int> wrap(std::vector<int> data) const {
    return Queryable<int>(std::move(data), budget, noise);
  }
};

TEST(BudgetNodiscard, DiscardedCountStillCharges) {
  Env env;
  const auto q = env.wrap({1, 2, 3, 4});
  std::ignore = q.noisy_count(0.25);
  EXPECT_NEAR(env.budget->spent(), 0.25, 1e-12);
}

TEST(BudgetNodiscard, EveryAggregationChargesWhenDiscarded) {
  Env env;
  const auto q = env.wrap({1, 2, 3, 4, 5});
  const auto to_unit = [](int x) { return static_cast<double>(x) / 10.0; };
  std::ignore = q.noisy_count(0.5);
  std::ignore = q.noisy_count_geometric(0.5);
  std::ignore = q.noisy_sum(0.5, to_unit);
  std::ignore = q.noisy_average(0.5, to_unit);
  std::ignore = q.noisy_median(0.5, to_unit);
  std::ignore = q.noisy_quantile(0.5, 0.25, to_unit);
  EXPECT_NEAR(env.budget->spent(), 3.0, 1e-12);
}

TEST(BudgetNodiscard, DiscardedAggregationOnDerivedViewChargesStability) {
  Env env;
  const auto q = env.wrap({1, 2, 3, 4, 5, 6});
  // GroupBy doubles stability, so a discarded count at eps still costs
  // 2 * eps against the source budget (paper Table 1).
  const auto grouped = q.group_by([](int x) { return x % 2; });
  std::ignore = grouped.noisy_count(0.5);
  EXPECT_NEAR(env.budget->spent(), 1.0, 1e-12);
}

TEST(BudgetNodiscard, DiscardingCannotOverdrawEither) {
  Env env;
  const auto q = env.wrap({1, 2, 3});
  std::ignore = q.noisy_count(9.5);
  EXPECT_THROW(std::ignore = q.noisy_count(1.0), BudgetExhaustedError);
  EXPECT_NEAR(env.budget->spent(), 9.5, 1e-12);
}

}  // namespace
}  // namespace dpnet::core
