// Parallel executor: noisy releases must be byte-identical to the
// sequential schedule at any thread count (node-id-seeded noise forks),
// worker traces must merge back into the sequential tree shape, and
// budget accounting must stay exact under contention.
#include "core/exec/executor.hpp"

#include <gtest/gtest.h>

#include <atomic>
#include <functional>
#include <memory>
#include <numeric>
#include <stdexcept>
#include <tuple>
#include <vector>

#include "core/audit.hpp"
#include "core/metrics.hpp"
#include "core/queryable.hpp"
#include "core/trace.hpp"

namespace dpnet::core {
namespace {

constexpr int kParts = 24;

std::vector<int> many_values() {
  std::vector<int> v(600);
  std::iota(v.begin(), v.end(), 0);
  return v;
}

std::vector<int> part_keys() {
  std::vector<int> keys(kParts);
  std::iota(keys.begin(), keys.end(), 0);
  return keys;
}

/// The partition-heavy pipeline under test: one filtered count and one
/// sum per part, all independent branches.
std::vector<double> run_pipeline(const Queryable<int>& data,
                                 exec::ExecPolicy policy) {
  const auto keys = part_keys();
  auto parts = data.partition(keys, [](int x) { return x % kParts; });
  return exec::map_parts(
      policy, keys, parts, [](int, const Queryable<int>& part) {
        const double count =
            part.where([](int x) { return x % 5 != 0; }).noisy_count(0.25);
        const double sum = part.noisy_sum_scaled(
            0.25, [](int x) { return static_cast<double>(x % 10); }, 10.0);
        return count + sum;
      });
}

Queryable<int> protect(std::shared_ptr<PrivacyBudget> budget,
                       std::uint64_t seed) {
  return Queryable<int>(many_values(), std::move(budget),
                        std::make_shared<NoiseSource>(seed));
}

TEST(Exec, NoisyAggregatesAreByteIdenticalAcrossThreadCounts) {
  const auto sequential =
      run_pipeline(protect(std::make_shared<RootBudget>(1e6), 11),
                   exec::ExecPolicy{1});
  ASSERT_EQ(sequential.size(), static_cast<std::size_t>(kParts));
  for (const std::size_t threads : {std::size_t{2}, std::size_t{8}}) {
    const auto parallel =
        run_pipeline(protect(std::make_shared<RootBudget>(1e6), 11),
                     exec::ExecPolicy{threads});
    ASSERT_EQ(parallel.size(), sequential.size());
    for (std::size_t i = 0; i < sequential.size(); ++i) {
      // Bitwise equality, not tolerance: the noise must be the same draw.
      EXPECT_EQ(parallel[i], sequential[i])
          << "part " << i << " diverged at threads=" << threads;
    }
  }
}

TEST(Exec, DistinctSeedsStillProduceDistinctNoise) {
  const auto a = run_pipeline(protect(std::make_shared<RootBudget>(1e6), 11),
                              exec::ExecPolicy{4});
  const auto b = run_pipeline(protect(std::make_shared<RootBudget>(1e6), 12),
                              exec::ExecPolicy{4});
  EXPECT_NE(a, b);
}

void expect_same_shape(const TraceSpan& a, const TraceSpan& b) {
  EXPECT_EQ(a.op, b.op);
  EXPECT_EQ(a.detail, b.detail);
  EXPECT_DOUBLE_EQ(a.stability, b.stability);
  EXPECT_EQ(a.input_rows, b.input_rows);
  EXPECT_EQ(a.output_rows, b.output_rows);
  EXPECT_DOUBLE_EQ(a.eps_requested, b.eps_requested);
  EXPECT_DOUBLE_EQ(a.eps_charged, b.eps_charged);
  ASSERT_EQ(a.children.size(), b.children.size()) << "under op " << a.op;
  for (std::size_t i = 0; i < a.children.size(); ++i) {
    expect_same_shape(a.children[i], b.children[i]);
  }
}

TEST(Exec, WorkerTracesMergeIntoTheSequentialTreeShape) {
  auto traced_run = [](std::size_t threads) {
    QueryTrace trace;
    {
      TraceSession session(trace);
      std::ignore =
          run_pipeline(protect(std::make_shared<RootBudget>(1e6), 11),
                       exec::ExecPolicy{threads});
    }
    return trace;
  };
  const QueryTrace sequential = traced_run(1);
  const QueryTrace parallel = traced_run(8);
  ASSERT_FALSE(sequential.empty());
  ASSERT_EQ(parallel.roots().size(), sequential.roots().size());
  for (std::size_t i = 0; i < sequential.roots().size(); ++i) {
    expect_same_shape(parallel.roots()[i], sequential.roots()[i]);
  }
  EXPECT_DOUBLE_EQ(parallel.total_eps_charged(),
                   sequential.total_eps_charged());
}

TEST(Exec, CanonicalLedgerOrderIsScheduleIndependent) {
  auto audited_run = [](std::size_t threads) {
    auto audit = std::make_shared<AuditingBudget>(
        std::make_shared<RootBudget>(1e6));
    std::ignore = run_pipeline(protect(audit, 11), exec::ExecPolicy{threads});
    return audit->canonical_entries();
  };
  const auto sequential = audited_run(1);
  const auto parallel = audited_run(8);
  ASSERT_EQ(parallel.size(), sequential.size());
  for (std::size_t i = 0; i < sequential.size(); ++i) {
    EXPECT_EQ(parallel[i].node_id, sequential[i].node_id);
    EXPECT_DOUBLE_EQ(parallel[i].eps, sequential[i].eps);
  }
}

TEST(Exec, ParallelReleasesNeverOverspendAndRefusalsCountOnce) {
  // 40 releases race for a budget that admits exactly 10; the rest must
  // refuse, each counted exactly once, with the budget never overdrawn.
  auto budget = std::make_shared<RootBudget>(1.0);
  auto q = protect(budget, 21);
  const std::uint64_t refused_before =
      builtin_metrics::refused_charges().value();
  std::atomic<int> ok{0};
  std::atomic<int> refused{0};
  std::vector<std::function<void()>> tasks;
  for (int i = 0; i < 40; ++i) {
    tasks.push_back([&q, &ok, &refused] {
      try {
        std::ignore = q.noisy_count(0.1);
        ok.fetch_add(1);
      } catch (const BudgetExhaustedError&) {
        refused.fetch_add(1);
      }
    });
  }
  exec::Executor(exec::ExecPolicy{8}).run(std::move(tasks));
  EXPECT_EQ(ok.load(), 10);
  EXPECT_EQ(refused.load(), 30);
  EXPECT_NEAR(budget->spent(), 1.0, 1e-9);
  EXPECT_EQ(builtin_metrics::refused_charges().value() - refused_before,
            static_cast<std::uint64_t>(refused.load()));
}

TEST(Exec, MapPartsReturnsResultsInKeyOrder) {
  auto q = protect(std::make_shared<RootBudget>(1e9), 31);
  const auto keys = part_keys();
  auto parts = q.partition(keys, [](int x) { return x % kParts; });
  // At huge epsilon the counts are essentially exact: every part of the
  // 600-row iota holds 25 rows, but the sums identify the key.
  const auto sums = exec::map_parts(
      exec::ExecPolicy{8}, keys, parts, [](int, const Queryable<int>& part) {
        return part.noisy_sum_scaled(
            1e7, [](int x) { return static_cast<double>(x % kParts); },
            static_cast<double>(kParts));
      });
  ASSERT_EQ(sums.size(), keys.size());
  for (std::size_t i = 0; i < keys.size(); ++i) {
    EXPECT_NEAR(sums[i], 25.0 * static_cast<double>(keys[i]), 0.5);
  }
}

TEST(Exec, WorkerExceptionsPropagateToTheCaller) {
  std::vector<std::function<void()>> tasks;
  std::atomic<int> completed{0};
  for (int i = 0; i < 8; ++i) {
    tasks.push_back([i, &completed] {
      if (i == 3) throw std::runtime_error("task 3 boom");
      completed.fetch_add(1);
    });
  }
  EXPECT_THROW(exec::Executor(exec::ExecPolicy{4}).run(std::move(tasks)),
               std::runtime_error);
}

TEST(Exec, SingleThreadPolicyRunsInline) {
  std::vector<int> order;
  std::vector<std::function<void()>> tasks;
  for (int i = 0; i < 4; ++i) {
    tasks.push_back([i, &order] { order.push_back(i); });
  }
  exec::Executor(exec::ExecPolicy{1}).run(std::move(tasks));
  EXPECT_EQ(order, (std::vector<int>{0, 1, 2, 3}));
}

}  // namespace
}  // namespace dpnet::core
