#include "core/queryable.hpp"

#include <gtest/gtest.h>

#include <cmath>
#include <limits>
#include <numeric>
#include <string>
#include <vector>
#include <tuple>

namespace dpnet::core {
namespace {

// With a huge epsilon the Laplace scale is negligible, so aggregations are
// effectively exact and we can test transformation semantics through the
// privacy curtain.
constexpr double kExactEps = 1e7;

struct Env {
  std::shared_ptr<RootBudget> budget;
  std::shared_ptr<NoiseSource> noise;

  explicit Env(double total = 1e12, std::uint64_t seed = 1)
      : budget(std::make_shared<RootBudget>(total)),
        noise(std::make_shared<NoiseSource>(seed)) {}

  template <typename T>
  Queryable<T> wrap(std::vector<T> data) const {
    return Queryable<T>(std::move(data), budget, noise);
  }
};

std::vector<int> iota_vec(int n) {
  std::vector<int> v(static_cast<std::size_t>(n));
  std::iota(v.begin(), v.end(), 0);
  return v;
}

TEST(Queryable, NoisyCountIsNearTruthAtHighEps) {
  Env env;
  auto q = env.wrap(iota_vec(1000));
  EXPECT_NEAR(q.noisy_count(kExactEps), 1000.0, 0.01);
}

TEST(Queryable, WhereFilters) {
  Env env;
  auto q = env.wrap(iota_vec(100));
  const double count =
      q.where([](int x) { return x % 2 == 0; }).noisy_count(kExactEps);
  EXPECT_NEAR(count, 50.0, 0.01);
}

TEST(Queryable, SelectMapsValues) {
  Env env;
  auto q = env.wrap(std::vector<int>{1, 2, 3});
  const double sum = q.select([](int x) { return x / 10.0; })
                         .noisy_sum(kExactEps, [](double v) { return v; });
  EXPECT_NEAR(sum, 0.6, 0.01);
}

TEST(Queryable, DistinctRemovesDuplicates) {
  Env env;
  auto q = env.wrap(std::vector<int>{1, 1, 2, 2, 2, 3});
  EXPECT_NEAR(q.distinct().noisy_count(kExactEps), 3.0, 0.01);
}

TEST(Queryable, DistinctWorksOnStrings) {
  Env env;
  auto q = env.wrap(std::vector<std::string>{"a", "b", "a", "c", "b"});
  EXPECT_NEAR(q.distinct().noisy_count(kExactEps), 3.0, 0.01);
}

TEST(Queryable, GroupByGroupsAndKeepsInsertionOrder) {
  Env env;
  auto q = env.wrap(std::vector<int>{5, 3, 8, 6, 1});
  auto grouped = q.group_by([](int x) { return x % 2; });
  // Two groups: odd {5,3,1} first (5 arrives first), even {8,6}.
  EXPECT_NEAR(grouped.noisy_count(kExactEps), 2.0, 0.01);
  const auto& groups = grouped.data_unsafe();
  ASSERT_EQ(groups.size(), 2u);
  EXPECT_EQ(groups[0].key, 1);
  EXPECT_EQ(groups[0].items, (std::vector<int>{5, 3, 1}));
  EXPECT_EQ(groups[1].items, (std::vector<int>{8, 6}));
}

TEST(Queryable, GroupByDoublesStability) {
  Env env;
  auto q = env.wrap(iota_vec(10));
  auto grouped = q.group_by([](int x) { return x % 3; });
  EXPECT_DOUBLE_EQ(q.total_stability(), 1.0);
  EXPECT_DOUBLE_EQ(grouped.total_stability(), 2.0);
  const double before = env.budget->spent();
  std::ignore = grouped.noisy_count(0.5);
  EXPECT_DOUBLE_EQ(env.budget->spent() - before, 1.0);  // 2 * 0.5
}

TEST(Queryable, SelectManyTruncatesAndScalesStability) {
  Env env;
  auto q = env.wrap(std::vector<int>{1, 2, 3});
  auto expanded = q.select_many(
      [](int x) { return std::vector<int>{x, x * 10, x * 100, x * 1000}; },
      2);
  EXPECT_DOUBLE_EQ(expanded.total_stability(), 2.0);
  EXPECT_NEAR(expanded.noisy_count(kExactEps), 6.0, 0.01);  // 2 per record
  const auto& data = expanded.data_unsafe();
  EXPECT_EQ(data, (std::vector<int>{1, 10, 2, 20, 3, 30}));
}

TEST(Queryable, SelectManyRejectsZeroFanout) {
  Env env;
  auto q = env.wrap(std::vector<int>{1});
  EXPECT_THROW(
      q.select_many([](int x) { return std::vector<int>{x}; }, 0),
      InvalidQueryError);
}

TEST(Queryable, JoinZipsWithinMatchedKeyGroups) {
  Env env;
  auto left = env.wrap(std::vector<int>{1, 2, 2, 3});
  auto right = env.wrap(std::vector<int>{2, 2, 3, 4});
  auto joined = left.join(
      right, [](int x) { return x; }, [](int y) { return y; },
      [](int x, int y) { return x + y; });
  // Key 2 matches twice (zip of [2,2] with [2,2]); key 3 once; 1/4 unmatched.
  EXPECT_NEAR(joined.noisy_count(kExactEps), 3.0, 0.01);
  EXPECT_EQ(joined.data_unsafe(), (std::vector<int>{4, 4, 6}));
}

TEST(Queryable, JoinBoundsGroupFanout) {
  Env env;
  // Left has 5 records with key 0, right only 2: the zip stops at 2.
  auto left = env.wrap(std::vector<int>{0, 0, 0, 0, 0});
  auto right = env.wrap(std::vector<int>{0, 0});
  auto joined = left.join(
      right, [](int x) { return x; }, [](int y) { return y; },
      [](int, int) { return 1; });
  EXPECT_NEAR(joined.noisy_count(kExactEps), 2.0, 0.01);
}

TEST(Queryable, JoinOnSharedBudgetChargesBothPaths) {
  Env env;
  auto left = env.wrap(std::vector<int>{1, 2});
  auto right = env.wrap(std::vector<int>{2, 3});
  auto joined = left.join(
      right, [](int x) { return x; }, [](int y) { return y; },
      [](int x, int) { return x; });
  EXPECT_DOUBLE_EQ(joined.total_stability(), 2.0);
  const double before = env.budget->spent();
  std::ignore = joined.noisy_count(0.25);
  EXPECT_DOUBLE_EQ(env.budget->spent() - before, 0.5);
}

TEST(Queryable, ConcatAppendsAndSumsStability) {
  Env env;
  auto a = env.wrap(std::vector<int>{1, 2});
  auto b = env.wrap(std::vector<int>{3});
  auto both = a.concat(b);
  EXPECT_NEAR(both.noisy_count(kExactEps), 3.0, 0.01);
  EXPECT_DOUBLE_EQ(both.total_stability(), 2.0);
}

TEST(Queryable, SetUnionDeduplicatesAcrossInputs) {
  Env env;
  auto a = env.wrap(std::vector<int>{1, 2, 2, 3});
  auto b = env.wrap(std::vector<int>{3, 4, 4});
  auto u = a.set_union(b);
  EXPECT_EQ(u.data_unsafe(), (std::vector<int>{1, 2, 3, 4}));
  EXPECT_DOUBLE_EQ(u.total_stability(), 2.0);
}

TEST(Queryable, ExceptRemovesRightSideRecords) {
  Env env;
  auto a = env.wrap(std::vector<int>{1, 2, 2, 3, 4});
  auto b = env.wrap(std::vector<int>{2, 4, 9});
  auto diff = a.except(b);
  EXPECT_EQ(diff.data_unsafe(), (std::vector<int>{1, 3}));
  EXPECT_DOUBLE_EQ(diff.total_stability(), 2.0);
}

TEST(Queryable, ExceptAgainstEmptyIsDistinct) {
  Env env;
  auto a = env.wrap(std::vector<int>{5, 5, 6});
  auto b = env.wrap(std::vector<int>{});
  EXPECT_EQ(a.except(b).data_unsafe(), (std::vector<int>{5, 6}));
}

TEST(Queryable, IntersectIsSetIntersection) {
  Env env;
  auto a = env.wrap(std::vector<int>{1, 2, 2, 3, 4});
  auto b = env.wrap(std::vector<int>{2, 3, 3, 5});
  auto common = a.intersect(b);
  EXPECT_NEAR(common.noisy_count(kExactEps), 2.0, 0.01);
  EXPECT_EQ(common.data_unsafe(), (std::vector<int>{2, 3}));
}

TEST(Queryable, NoisySumClampsEachTerm) {
  Env env;
  auto q = env.wrap(std::vector<double>{0.5, 10.0, -10.0, 0.25});
  // 0.5 + 1 - 1 + 0.25
  EXPECT_NEAR(q.noisy_sum(kExactEps, [](double v) { return v; }), 0.75,
              0.01);
}

TEST(Queryable, NoisySumScaledUsesWiderClampAndScaledNoise) {
  Env env;
  auto q = env.wrap(std::vector<double>{100.0, 900.0, 2000.0});
  // Clamped at 1000: 100 + 900 + 1000.
  EXPECT_NEAR(q.noisy_sum_scaled(kExactEps, [](double v) { return v; },
                                 1000.0),
              2000.0, 1.0);
}

TEST(Queryable, NoisyAverageIsNearTruth) {
  Env env;
  std::vector<double> data(1000, 0.25);
  auto q = env.wrap(std::move(data));
  EXPECT_NEAR(q.noisy_average(kExactEps, [](double v) { return v; }), 0.25,
              0.001);
}

TEST(Queryable, NoisyAverageScaledRecoversWideRangeMean) {
  Env env;
  auto q = env.wrap(std::vector<double>{10.0, 20.0, 30.0});
  EXPECT_NEAR(q.noisy_average_scaled(kExactEps, [](double v) { return v; },
                                     64.0),
              20.0, 0.01);
}

TEST(Queryable, NoisyMedianFindsCentralValue) {
  Env env;
  std::vector<double> values;
  for (int i = 1; i <= 99; ++i) values.push_back(i);
  auto q = env.wrap(std::move(values));
  EXPECT_NEAR(q.noisy_median(1000.0, [](double v) { return v; }), 50.0, 2.0);
}

TEST(Queryable, NoisyQuantileFindsPercentiles) {
  Env env;
  std::vector<double> values;
  for (int i = 0; i <= 1000; ++i) values.push_back(i);
  auto q = env.wrap(std::move(values));
  EXPECT_NEAR(q.noisy_quantile(1000.0, 0.95, [](double v) { return v; }),
              950.0, 5.0);
  EXPECT_NEAR(q.noisy_quantile(1000.0, 0.10, [](double v) { return v; }),
              100.0, 5.0);
}

TEST(Queryable, NoisyQuantileChargesStabilityTimesEps) {
  Env env;
  auto q = env.wrap(std::vector<double>{1.0, 2.0, 3.0});
  auto grouped = q.group_by([](double v) { return v > 1.5; })
                    .select([](const Group<bool, double>& g) {
                      return static_cast<double>(g.items.size());
                    });
  const double before = env.budget->spent();
  std::ignore = grouped.noisy_quantile(0.1, 0.5, [](double v) { return v; });
  EXPECT_DOUBLE_EQ(env.budget->spent() - before, 0.2);
}

TEST(Queryable, CountGeometricReturnsInteger) {
  Env env;
  auto q = env.wrap(iota_vec(500));
  const std::int64_t c = q.noisy_count_geometric(kExactEps);
  EXPECT_NEAR(static_cast<double>(c), 500.0, 1.0);
}

TEST(Queryable, AggregationsRejectNonPositiveEpsilon) {
  Env env;
  auto q = env.wrap(iota_vec(5));
  EXPECT_THROW(std::ignore = q.noisy_count(0.0), InvalidEpsilonError);
  EXPECT_THROW(std::ignore = q.noisy_count(-1.0), InvalidEpsilonError);
  EXPECT_THROW(std::ignore = q.noisy_sum(0.0, [](int x) { return double(x); }),
               InvalidEpsilonError);
}

TEST(Queryable, AggregationsRejectNonFiniteEpsilon) {
  Env env;
  auto q = env.wrap(iota_vec(5));
  EXPECT_THROW(std::ignore = q.noisy_count(std::numeric_limits<double>::infinity()),
               InvalidEpsilonError);
  EXPECT_THROW(std::ignore = q.noisy_count(std::numeric_limits<double>::quiet_NaN()),
               InvalidEpsilonError);
}

TEST(Queryable, TransformationsAreFreeUntilAggregation) {
  Env env;
  auto q = env.wrap(iota_vec(100));
  auto chained = q.where([](int x) { return x > 10; })
                     .select([](int x) { return x * 2; })
                     .group_by([](int x) { return x % 5; });
  EXPECT_DOUBLE_EQ(env.budget->spent(), 0.0);
  std::ignore = chained.noisy_count(0.1);
  EXPECT_GT(env.budget->spent(), 0.0);
}

TEST(Queryable, BudgetExhaustionBlocksFurtherLargeQueries) {
  auto budget = std::make_shared<RootBudget>(1.0);
  auto noise = std::make_shared<NoiseSource>(4);
  Queryable<int> q(iota_vec(100), budget, noise);
  std::ignore = q.noisy_count(0.9);
  EXPECT_THROW(std::ignore = q.noisy_count(0.2), BudgetExhaustedError);
  // The failed query consumed nothing; a smaller one still fits.
  EXPECT_NO_THROW(std::ignore = q.noisy_count(0.1));
}

TEST(Queryable, RequiresBudgetAndNoise) {
  auto noise = std::make_shared<NoiseSource>(1);
  auto budget = std::make_shared<RootBudget>(1.0);
  EXPECT_THROW(Queryable<int>({1}, nullptr, noise), InvalidQueryError);
  EXPECT_THROW(Queryable<int>({1}, budget, nullptr), InvalidQueryError);
}

TEST(Queryable, MakeQueryableFactoryWorksEndToEnd) {
  auto q = make_queryable(iota_vec(10), 1.0, 5);
  EXPECT_NO_THROW(std::ignore = q.noisy_count(0.5));
  EXPECT_THROW(std::ignore = q.noisy_count(0.6), BudgetExhaustedError);
}

// Property sweep: the count error distribution matches Table 1's
// sqrt(2)/eps standard deviation.
class CountNoiseSweep : public ::testing::TestWithParam<double> {};

TEST_P(CountNoiseSweep, ErrorStddevTracksTable1) {
  const double eps = GetParam();
  Env env(1e12, 21);
  auto q = env.wrap(iota_vec(1000));
  const int trials = 20000;
  double sum_sq = 0.0;
  for (int t = 0; t < trials; ++t) {
    const double err = q.noisy_count(eps) - 1000.0;
    sum_sq += err * err;
  }
  const double expected = std::sqrt(2.0) / eps;
  EXPECT_NEAR(std::sqrt(sum_sq / trials), expected, 0.1 * expected);
}

INSTANTIATE_TEST_SUITE_P(Epsilons, CountNoiseSweep,
                         ::testing::Values(0.1, 1.0, 10.0));

TEST(Queryable, GroupBySpansSplitsAtBoundaries) {
  Env env;
  // Key = sign; boundary on value 0 within a key's sequence.
  struct Rec {
    int key;
    bool boundary;
    int id;
  };
  std::vector<Rec> data = {
      {1, true, 0},  {1, false, 1}, {2, true, 2},  {1, true, 3},
      {1, false, 4}, {2, false, 5}, {2, true, 6},
  };
  auto q = env.wrap(data);
  auto spans = q.group_by_spans([](const Rec& r) { return r.key; },
                                [](const Rec& r) { return r.boundary; });
  const auto& groups = spans.data_unsafe();
  // key 1: {0,1}, {3,4}; key 2: {2,5}, {6}.
  ASSERT_EQ(groups.size(), 4u);
  auto ids_of = [&](std::size_t g) {
    std::vector<int> ids;
    for (const auto& r : groups[g].items) ids.push_back(r.id);
    return ids;
  };
  EXPECT_EQ(ids_of(0), (std::vector<int>{0, 1}));
  EXPECT_EQ(ids_of(1), (std::vector<int>{2, 5}));
  EXPECT_EQ(ids_of(2), (std::vector<int>{3, 4}));
  EXPECT_EQ(ids_of(3), (std::vector<int>{6}));
}

TEST(Queryable, GroupBySpansFirstRecordOpensAGroupWithoutBoundary) {
  Env env;
  auto q = env.wrap(std::vector<int>{5, 6, 7});
  auto spans = q.group_by_spans([](int) { return 0; },
                                [](int) { return false; });
  ASSERT_EQ(spans.data_unsafe().size(), 1u);
  EXPECT_EQ(spans.data_unsafe()[0].items.size(), 3u);
}

TEST(Queryable, GroupBySpansTriplesStability) {
  Env env;
  auto q = env.wrap(std::vector<int>{1, 2, 3, 4});
  auto spans = q.group_by_spans([](int x) { return x % 2; },
                                [](int x) { return x > 2; });
  EXPECT_DOUBLE_EQ(spans.total_stability(), 3.0);
  const double before = env.budget->spent();
  std::ignore = spans.noisy_count(0.1);
  EXPECT_NEAR(env.budget->spent() - before, 0.3, 1e-12);
}

// Chained stabilities compose multiplicatively.
TEST(Queryable, StabilityComposesThroughChains) {
  Env env;
  auto q = env.wrap(iota_vec(20));
  auto chained =
      q.group_by([](int x) { return x % 2; })
          .select_many(
              [](const Group<int, int>& g) {
                return std::vector<int>(g.items.begin(), g.items.end());
              },
              3)
          .group_by([](int x) { return x % 4; });
  // 1 (source) * 2 (group) * 3 (select_many) * 2 (group) = 12.
  EXPECT_DOUBLE_EQ(chained.total_stability(), 12.0);
}

}  // namespace
}  // namespace dpnet::core
