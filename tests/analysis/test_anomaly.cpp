#include "analysis/anomaly.hpp"

#include <gtest/gtest.h>

#include "tracegen/isp_traffic.hpp"

namespace dpnet::analysis {
namespace {

using net::LinkPacket;

struct Env {
  std::shared_ptr<core::RootBudget> budget;
  std::shared_ptr<core::NoiseSource> noise;

  explicit Env(double total = 1e12, std::uint64_t seed = 18)
      : budget(std::make_shared<core::RootBudget>(total)),
        noise(std::make_shared<core::NoiseSource>(seed)) {}

  core::Queryable<LinkPacket> wrap(std::vector<LinkPacket> data) const {
    return {std::move(data), budget, noise};
  }
};

TEST(DpLinkTimeMatrix, HighEpsRecoversExactCounts) {
  tracegen::IspTrafficGenerator gen(tracegen::IspConfig::small());
  const auto records = gen.generate();
  Env env;
  AnomalyOptions opt;
  opt.links = gen.config().links;
  opt.windows = gen.config().windows;
  opt.eps = 1e7;
  const auto dp = dp_link_time_matrix(env.wrap(records), opt);
  const auto exact = exact_link_time_matrix(gen.true_counts());
  ASSERT_EQ(dp.rows(), exact.rows());
  ASSERT_EQ(dp.cols(), exact.cols());
  for (std::size_t l = 0; l < dp.rows(); ++l) {
    for (std::size_t w = 0; w < dp.cols(); ++w) {
      EXPECT_NEAR(dp(l, w), exact(l, w), 0.1);
    }
  }
}

TEST(DpLinkTimeMatrix, WholeMatrixCostsOneEps) {
  tracegen::IspConfig cfg = tracegen::IspConfig::small();
  tracegen::IspTrafficGenerator gen(cfg);
  const auto records = gen.generate();
  Env env;
  AnomalyOptions opt;
  opt.links = cfg.links;
  opt.windows = cfg.windows;
  opt.eps = 0.1;
  dp_link_time_matrix(env.wrap(records), opt);
  // links x windows counts, but nested Partition max-cost: just eps.
  EXPECT_NEAR(env.budget->spent(), 0.1, 1e-9);
}

TEST(DpLinkTimeMatrix, RejectsMissingDimensions) {
  Env env;
  AnomalyOptions opt;
  EXPECT_THROW(dp_link_time_matrix(env.wrap({}), opt),
               std::invalid_argument);
}

TEST(AnomalyNorms, SpikeAtEveryImplantedAnomaly) {
  tracegen::IspConfig cfg = tracegen::IspConfig::small();
  tracegen::IspTrafficGenerator gen(cfg);
  gen.generate();
  AnomalyOptions opt;
  opt.links = cfg.links;
  opt.windows = cfg.windows;
  const auto norms =
      anomaly_norms(exact_link_time_matrix(gen.true_counts()), opt);
  ASSERT_EQ(static_cast<int>(norms.size()), cfg.windows);

  double baseline = 0.0;
  int baseline_n = 0;
  for (int w = 0; w < cfg.windows; ++w) {
    bool anomalous = false;
    for (const auto& a : cfg.anomalies) {
      if (a.window == w) anomalous = true;
    }
    if (!anomalous) {
      baseline += norms[static_cast<std::size_t>(w)];
      ++baseline_n;
    }
  }
  baseline /= baseline_n;
  for (const auto& a : cfg.anomalies) {
    EXPECT_GT(norms[static_cast<std::size_t>(a.window)], 3.0 * baseline)
        << "anomaly at window " << a.window;
  }
}

TEST(AnomalyNorms, PrivateAndExactNormsAgreeAtMediumEps) {
  // The paper's Fig 4 claim: the residual norm is robust to the counting
  // noise even at strong privacy.
  tracegen::IspConfig cfg = tracegen::IspConfig::small();
  tracegen::IspTrafficGenerator gen(cfg);
  const auto records = gen.generate();
  Env env;
  AnomalyOptions opt;
  opt.links = cfg.links;
  opt.windows = cfg.windows;
  opt.eps = 1.0;
  const auto dp_norms =
      anomaly_norms(dp_link_time_matrix(env.wrap(records), opt), opt);
  const auto exact_norms =
      anomaly_norms(exact_link_time_matrix(gen.true_counts()), opt);
  // The top anomaly stands out in both and at the same window.
  auto argmax = [](const std::vector<double>& v) {
    std::size_t best = 0;
    for (std::size_t i = 1; i < v.size(); ++i) {
      if (v[i] > v[best]) best = i;
    }
    return best;
  };
  EXPECT_EQ(argmax(dp_norms), argmax(exact_norms));
}

TEST(ExactLinkTimeMatrix, RejectsRaggedOrEmptyInput) {
  EXPECT_THROW(exact_link_time_matrix({}), std::invalid_argument);
  EXPECT_THROW(exact_link_time_matrix({{1.0, 2.0}, {1.0}}),
               std::invalid_argument);
}

}  // namespace
}  // namespace dpnet::analysis
