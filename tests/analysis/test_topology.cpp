#include "analysis/topology.hpp"

#include <gtest/gtest.h>

#include "tracegen/ip_scatter.hpp"

namespace dpnet::analysis {
namespace {

using net::ScatterRecord;

struct Env {
  std::shared_ptr<core::RootBudget> budget;
  std::shared_ptr<core::NoiseSource> noise;

  explicit Env(double total = 1e12, std::uint64_t seed = 19)
      : budget(std::make_shared<core::RootBudget>(total)),
        noise(std::make_shared<core::NoiseSource>(seed)) {}

  core::Queryable<ScatterRecord> wrap(std::vector<ScatterRecord> data) const {
    return {std::move(data), budget, noise};
  }
};

TopologyOptions options_for(const tracegen::ScatterConfig& cfg) {
  TopologyOptions opt;
  opt.monitors = cfg.monitors;
  opt.clusters = cfg.clusters;
  opt.iterations = 6;
  return opt;
}

TEST(DpMonitorAverages, NearExactAtHighEps) {
  tracegen::ScatterConfig cfg = tracegen::ScatterConfig::small();
  tracegen::IpScatterGenerator gen(cfg);
  const auto records = gen.generate();
  Env env;
  TopologyOptions opt = options_for(cfg);
  opt.eps_averages = 1e7;
  const auto averages = dp_monitor_averages(env.wrap(records), opt);

  // Exact per-monitor means.
  std::vector<double> sums(static_cast<std::size_t>(cfg.monitors), 0.0);
  std::vector<double> counts(static_cast<std::size_t>(cfg.monitors), 0.0);
  for (const auto& r : records) {
    sums[static_cast<std::size_t>(r.monitor)] += r.hops;
    counts[static_cast<std::size_t>(r.monitor)] += 1.0;
  }
  for (int m = 0; m < cfg.monitors; ++m) {
    const auto i = static_cast<std::size_t>(m);
    EXPECT_NEAR(averages[i], sums[i] / counts[i], 0.05);
  }
}

TEST(DpMonitorAverages, CostsOneEpsViaPartition) {
  tracegen::IpScatterGenerator gen(tracegen::ScatterConfig::small());
  const auto records = gen.generate();
  Env env;
  TopologyOptions opt = options_for(gen.config());
  opt.eps_averages = 0.2;
  dp_monitor_averages(env.wrap(records), opt);
  EXPECT_NEAR(env.budget->spent(), 0.2, 1e-9);
}

TEST(DpMonitorAverages, RejectsMissingMonitorCount) {
  Env env;
  TopologyOptions opt;
  EXPECT_THROW(dp_monitor_averages(env.wrap({}), opt),
               std::invalid_argument);
}

TEST(ExactHopVectors, OneRowPerIpWithFilledCoordinates) {
  tracegen::ScatterConfig cfg = tracegen::ScatterConfig::small();
  tracegen::IpScatterGenerator gen(cfg);
  const auto records = gen.generate();
  const auto points = exact_hop_vectors(records, cfg.monitors);
  EXPECT_EQ(points.cols(), static_cast<std::size_t>(cfg.monitors));
  // One row per distinct IP observed.
  std::set<std::uint32_t> ips;
  for (const auto& r : records) ips.insert(r.ip);
  EXPECT_EQ(points.rows(), ips.size());
  // All coordinates are plausible hop counts (filled where missing).
  for (std::size_t p = 0; p < points.rows(); ++p) {
    for (std::size_t m = 0; m < points.cols(); ++m) {
      EXPECT_GE(points(p, m), 0.0);
      EXPECT_LE(points(p, m), 64.0);
    }
  }
}

TEST(ExactTopologyClustering, ObjectiveImprovesOverIterations) {
  tracegen::ScatterConfig cfg = tracegen::ScatterConfig::small();
  tracegen::IpScatterGenerator gen(cfg);
  const auto points = exact_hop_vectors(gen.generate(), cfg.monitors);
  const auto result = exact_topology_clustering(points, options_for(cfg));
  ASSERT_GE(result.objective_trace.size(), 2u);
  EXPECT_LT(result.objective_trace.back(), result.objective_trace.front());
}

TEST(DpTopologyClustering, HighEpsTracksTheExactObjective) {
  tracegen::ScatterConfig cfg = tracegen::ScatterConfig::small();
  tracegen::IpScatterGenerator gen(cfg);
  const auto records = gen.generate();
  const auto points = exact_hop_vectors(records, cfg.monitors);
  Env env;
  TopologyOptions opt = options_for(cfg);
  opt.eps_per_iteration = 1e7;
  opt.eps_averages = 1e7;
  const auto dp = dp_topology_clustering(env.wrap(records), opt, points);
  const auto exact = exact_topology_clustering(points, opt);
  ASSERT_EQ(dp.objective_trace.size(), exact.objective_trace.size());
  EXPECT_NEAR(dp.objective_trace.back(), exact.objective_trace.back(),
              0.15 * exact.objective_trace.back() + 0.05);
}

TEST(DpTopologyClustering, EachIterationCostsEps) {
  tracegen::ScatterConfig cfg = tracegen::ScatterConfig::small();
  tracegen::IpScatterGenerator gen(cfg);
  const auto records = gen.generate();
  const auto points = exact_hop_vectors(records, cfg.monitors);
  Env env;
  TopologyOptions opt = options_for(cfg);
  opt.iterations = 5;
  opt.eps_per_iteration = 0.1;
  opt.eps_averages = 0.05;
  dp_topology_clustering(env.wrap(records), opt, points);
  // 0.05 for the averages + 5 iterations x 0.1.
  EXPECT_NEAR(env.budget->spent(), 0.55, 1e-9);
}

TEST(DpTopologyClustering, StrongPrivacyDegradesTheObjective) {
  tracegen::ScatterConfig cfg = tracegen::ScatterConfig::small();
  tracegen::IpScatterGenerator gen(cfg);
  const auto records = gen.generate();
  const auto points = exact_hop_vectors(records, cfg.monitors);

  auto final_objective = [&](double eps) {
    Env env(1e12, 500);
    TopologyOptions opt = options_for(cfg);
    opt.eps_per_iteration = eps;
    opt.eps_averages = eps;
    return dp_topology_clustering(env.wrap(records), opt, points)
        .objective_trace.back();
  };
  // The paper's Fig 5 shape: weaker privacy is at least as good.
  EXPECT_LE(final_objective(10.0), final_objective(0.01) + 1.0);
}

}  // namespace
}  // namespace dpnet::analysis
