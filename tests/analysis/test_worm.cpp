#include "analysis/worm.hpp"

#include <gtest/gtest.h>

#include <vector>

namespace dpnet::analysis {
namespace {

using net::Ipv4;
using net::Packet;

struct Env {
  std::shared_ptr<core::RootBudget> budget;
  std::shared_ptr<core::NoiseSource> noise;

  explicit Env(double total = 1e12, std::uint64_t seed = 14)
      : budget(std::make_shared<core::RootBudget>(total)),
        noise(std::make_shared<core::NoiseSource>(seed)) {}

  core::Queryable<Packet> wrap(std::vector<Packet> data) const {
    return {std::move(data), budget, noise};
  }
};

Packet payload_packet(const std::string& payload, Ipv4 src, Ipv4 dst) {
  Packet p;
  p.src_ip = src;
  p.dst_ip = dst;
  p.payload = payload;
  p.length = 400;
  return p;
}

/// One dispersed "worm" payload (12 srcs x 12 dsts, 144 packets) and one
/// popular but concentrated payload (300 packets, 2 srcs, 2 dsts).
std::vector<Packet> worm_trace() {
  std::vector<Packet> trace;
  for (int s = 0; s < 12; ++s) {
    for (int d = 0; d < 12; ++d) {
      trace.push_back(payload_packet(
          "WORMWORM", Ipv4(203, 0, 0, static_cast<std::uint8_t>(s + 1)),
          Ipv4(192, 168, 0, static_cast<std::uint8_t>(d + 1))));
    }
  }
  for (int i = 0; i < 300; ++i) {
    trace.push_back(payload_packet(
        "POPULAR!", Ipv4(10, 0, 0, static_cast<std::uint8_t>(1 + i % 2)),
        Ipv4(198, 18, 0, static_cast<std::uint8_t>(1 + i % 2))));
  }
  return trace;
}

WormOptions exact_options() {
  WormOptions opt;
  opt.payload_len = 8;
  opt.src_threshold = 10;
  opt.dst_threshold = 10;
  opt.eps_group_count = 1e6;
  opt.eps_per_string_level = 1e6;
  opt.string_threshold = 100.0;
  opt.eps_dispersion = 1e6;
  return opt;
}

TEST(ExactWormPayloads, FlagsOnlyDispersedPayloads) {
  const auto payloads = exact_worm_payloads(worm_trace(), 8, 10, 10);
  ASSERT_EQ(payloads.size(), 1u);
  EXPECT_EQ(payloads[0], "WORMWORM");
}

TEST(ExactWormPayloads, ThresholdsAreStrict) {
  // Exactly 12 distinct srcs/dsts: a threshold of 12 ("> 12") excludes it.
  EXPECT_TRUE(exact_worm_payloads(worm_trace(), 8, 12, 12).empty());
  EXPECT_EQ(exact_worm_payloads(worm_trace(), 8, 11, 11).size(), 1u);
}

TEST(ExactWormPayloads, SortedByOccurrenceCount) {
  auto trace = worm_trace();
  // Add a second, rarer dispersed payload.
  for (int s = 0; s < 11; ++s) {
    for (int d = 0; d < 11; ++d) {
      trace.push_back(payload_packet(
          "WORM-TWO", Ipv4(203, 1, 0, static_cast<std::uint8_t>(s + 1)),
          Ipv4(192, 169, 0, static_cast<std::uint8_t>(d + 1))));
    }
  }
  const auto payloads = exact_worm_payloads(trace, 8, 10, 10);
  ASSERT_EQ(payloads.size(), 2u);
  EXPECT_EQ(payloads[0], "WORMWORM");  // 144 > 121
  EXPECT_EQ(payloads[1], "WORM-TWO");
}

TEST(DpWormFingerprint, FlagsTheWormAtHighEps) {
  Env env;
  const auto result =
      dp_worm_fingerprint(env.wrap(worm_trace()), exact_options());
  // Only WORMWORM has dispersion > 10 on both sides.
  EXPECT_NEAR(result.noisy_group_count, 1.0, 0.1);

  bool worm_flagged = false, popular_flagged = false;
  for (const auto& c : result.candidates) {
    if (c.payload == "WORMWORM") {
      worm_flagged = c.flagged;
      EXPECT_NEAR(c.noisy_distinct_srcs, 12.0, 0.1);
      EXPECT_NEAR(c.noisy_distinct_dsts, 12.0, 0.1);
    }
    if (c.payload == "POPULAR!") {
      popular_flagged = c.flagged;
      EXPECT_NEAR(c.noisy_distinct_srcs, 2.0, 0.1);
    }
  }
  EXPECT_TRUE(worm_flagged);
  EXPECT_FALSE(popular_flagged);
}

TEST(DpWormFingerprint, CandidatesComeFromFrequentStrings) {
  Env env;
  WormOptions opt = exact_options();
  opt.string_threshold = 200.0;  // only POPULAR! (300) clears this
  const auto result = dp_worm_fingerprint(env.wrap(worm_trace()), opt);
  ASSERT_EQ(result.candidates.size(), 1u);
  EXPECT_EQ(result.candidates[0].payload, "POPULAR!");
  EXPECT_FALSE(result.candidates[0].flagged);
}

TEST(DpWormFingerprint, ShortPayloadsAreIgnored) {
  Env env;
  std::vector<Packet> trace = worm_trace();
  for (int i = 0; i < 500; ++i) {
    trace.push_back(payload_packet("TINY", Ipv4(1, 1, 1, 1),
                                   Ipv4(2, 2, 2, 2)));  // 4 bytes < 8
  }
  const auto result =
      dp_worm_fingerprint(env.wrap(std::move(trace)), exact_options());
  for (const auto& c : result.candidates) {
    EXPECT_NE(c.payload.substr(0, 4), "TINY");
  }
}

TEST(DpWormFingerprint, EmptyCandidateSetIsHandled) {
  Env env;
  WormOptions opt = exact_options();
  opt.string_threshold = 1e9;
  const auto result = dp_worm_fingerprint(env.wrap(worm_trace()), opt);
  EXPECT_TRUE(result.candidates.empty());
}

TEST(DpWormFingerprint, PrivacyCostIsBounded) {
  Env env;
  WormOptions opt = exact_options();
  opt.eps_group_count = 0.05;
  opt.eps_per_string_level = 0.5;  // large enough to still find strings
  opt.eps_dispersion = 0.03;
  dp_worm_fingerprint(env.wrap(worm_trace()), opt);
  // group count: stability 2 x 0.05 = 0.1; string search: 8 x 0.5 = 4;
  // dispersion: one partition, two counts per part = 2 x 0.03 = 0.06.
  EXPECT_LE(env.budget->spent(), 0.1 + 8 * 0.5 + 0.06 + 1e-9);
  EXPECT_GT(env.budget->spent(), 4.0);
}

}  // namespace
}  // namespace dpnet::analysis
