#include "analysis/scan_detection.hpp"

#include <gtest/gtest.h>

#include <vector>

namespace dpnet::analysis {
namespace {

using net::Ipv4;
using net::Packet;

struct Env {
  std::shared_ptr<core::RootBudget> budget;
  std::shared_ptr<core::NoiseSource> noise;

  explicit Env(double total = 1e12, std::uint64_t seed = 61)
      : budget(std::make_shared<core::RootBudget>(total)),
        noise(std::make_shared<core::NoiseSource>(seed)) {}

  core::Queryable<Packet> wrap(std::vector<Packet> data) const {
    return {std::move(data), budget, noise};
  }
};

Packet probe(Ipv4 src, Ipv4 dst, std::uint16_t port) {
  Packet p;
  p.src_ip = src;
  p.dst_ip = dst;
  p.dst_port = port;
  p.length = 60;
  return p;
}

/// One scanner probing 30 distinct hosts on 445, one benign host talking
/// to 3, plus unrelated port-80 traffic.
std::vector<Packet> scan_trace() {
  std::vector<Packet> trace;
  const Ipv4 scanner(203, 0, 0, 1);
  for (int d = 0; d < 30; ++d) {
    trace.push_back(probe(scanner,
                          Ipv4(10, 0, 0, static_cast<std::uint8_t>(d + 1)),
                          445));
  }
  const Ipv4 benign(10, 0, 1, 1);
  for (int d = 0; d < 3; ++d) {
    for (int r = 0; r < 5; ++r) {  // repeated contact: still 3 distinct
      trace.push_back(probe(
          benign, Ipv4(10, 0, 2, static_cast<std::uint8_t>(d + 1)), 445));
    }
  }
  for (int d = 0; d < 100; ++d) {
    trace.push_back(probe(Ipv4(10, 9, 9, 9),
                          Ipv4(10, 0, 3, static_cast<std::uint8_t>(d % 20)),
                          80));
  }
  return trace;
}

TEST(ExactScanners, FindsOnlyTheFanningHost) {
  const auto scanners = exact_scanners(scan_trace(), 445, 20);
  ASSERT_EQ(scanners.size(), 1u);
  EXPECT_EQ(scanners[0].first, Ipv4(203, 0, 0, 1));
  EXPECT_EQ(scanners[0].second, 30u);
}

TEST(ExactScanners, ThresholdAndPortAreRespected) {
  EXPECT_EQ(exact_scanners(scan_trace(), 445, 2).size(), 2u);
  EXPECT_TRUE(exact_scanners(scan_trace(), 445, 40).empty());
  // Port 80 traffic has fan-out 20, threshold 19 catches it there.
  EXPECT_EQ(exact_scanners(scan_trace(), 80, 19).size(), 1u);
}

TEST(DpScanDetection, CountsScannersAtHighEps) {
  Env env;
  ScanDetectionOptions opt;
  opt.target_port = 445;
  opt.fanout_threshold = 20;
  opt.eps_count = 1e7;
  opt.eps_histogram = 1e7;
  const auto result = dp_scan_detection(env.wrap(scan_trace()), opt);
  EXPECT_NEAR(result.noisy_scanner_count, 1.0, 0.01);
}

TEST(DpScanDetection, FanoutCdfReflectsBothHosts) {
  Env env;
  ScanDetectionOptions opt;
  opt.eps_count = 1e7;
  opt.eps_histogram = 1e7;
  opt.histogram_max = 64;
  opt.histogram_bucket = 4;
  const auto result = dp_scan_detection(env.wrap(scan_trace()), opt);
  // Two hosts touch port 445: fan-outs 3 and 30.
  ASSERT_FALSE(result.fanout_cdf.empty());
  for (std::size_t i = 0; i < result.fanout_boundaries.size(); ++i) {
    if (result.fanout_boundaries[i] == 4) {
      EXPECT_NEAR(result.fanout_cdf[i], 1.0, 0.1);
    }
    if (result.fanout_boundaries[i] == 32) {
      EXPECT_NEAR(result.fanout_cdf[i], 2.0, 0.1);
    }
  }
}

TEST(DpScanDetection, PrivacyCostIsCountPlusHistogram) {
  Env env;
  ScanDetectionOptions opt;
  opt.eps_count = 0.1;
  opt.eps_histogram = 0.2;
  dp_scan_detection(env.wrap(scan_trace()), opt);
  // Both run on a GroupBy (stability 2): 2*0.1 + 2*0.2.
  EXPECT_NEAR(env.budget->spent(), 0.6, 1e-9);
}

TEST(DpScanDetection, EmptyTraceYieldsNoisyZero) {
  Env env;
  ScanDetectionOptions opt;
  opt.eps_count = 1e7;
  opt.eps_histogram = 1e7;
  const auto result = dp_scan_detection(env.wrap({}), opt);
  EXPECT_NEAR(result.noisy_scanner_count, 0.0, 0.01);
  EXPECT_NEAR(result.fanout_cdf.back(), 0.0, 0.01);
}

}  // namespace
}  // namespace dpnet::analysis
