#include "analysis/principal.hpp"

#include <gtest/gtest.h>

#include <vector>

namespace dpnet::analysis {
namespace {

using net::Ipv4;
using net::Packet;

constexpr double kExactEps = 1e7;

struct Env {
  std::shared_ptr<core::RootBudget> budget;
  std::shared_ptr<core::NoiseSource> noise;

  explicit Env(double total = 1e12, std::uint64_t seed = 26)
      : budget(std::make_shared<core::RootBudget>(total)),
        noise(std::make_shared<core::NoiseSource>(seed)) {}

  core::Queryable<HostRecord> wrap(std::vector<HostRecord> data) const {
    return {std::move(data), budget, noise};
  }
};

Packet packet(Ipv4 src, Ipv4 dst, std::uint16_t len) {
  Packet p;
  p.src_ip = src;
  p.dst_ip = dst;
  p.length = len;
  return p;
}

std::vector<Packet> two_host_trace() {
  const Ipv4 a(10, 0, 0, 1), b(10, 0, 0, 2), s(198, 18, 0, 1),
      t(198, 18, 0, 2);
  return {
      packet(a, s, 100), packet(b, s, 40),  packet(a, t, 200),
      packet(a, s, 300), packet(b, t, 50),
  };
}

TEST(AggregateByHost, OneRecordPerHostInFirstSeenOrder) {
  const auto hosts = aggregate_by_host(two_host_trace());
  ASSERT_EQ(hosts.size(), 2u);
  EXPECT_EQ(hosts[0].host, Ipv4(10, 0, 0, 1));
  EXPECT_EQ(hosts[0].packets.size(), 3u);
  EXPECT_EQ(hosts[1].host, Ipv4(10, 0, 0, 2));
  EXPECT_EQ(hosts[1].packets.size(), 2u);
}

TEST(AggregateByHost, EmptyTraceGivesNoHosts) {
  EXPECT_TRUE(aggregate_by_host({}).empty());
}

TEST(HostTotalBytes, SumsPerHost) {
  Env env;
  auto hosts = env.wrap(aggregate_by_host(two_host_trace()));
  const auto bytes = host_total_bytes(hosts).data_unsafe();
  EXPECT_EQ(bytes, (std::vector<std::int64_t>{600, 90}));
}

TEST(HostFanout, CountsDistinctDestinations) {
  Env env;
  auto hosts = env.wrap(aggregate_by_host(two_host_trace()));
  const auto fanout = host_fanout(hosts).data_unsafe();
  EXPECT_EQ(fanout, (std::vector<std::int64_t>{2, 2}));
}

TEST(HostPacketLengths, CapBoundsContributionAndStability) {
  Env env;
  auto hosts = env.wrap(aggregate_by_host(two_host_trace()));
  auto lengths = host_packet_lengths(hosts, 2);
  // Host A has 3 packets but contributes 2; host B contributes both.
  EXPECT_EQ(lengths.data_unsafe().size(), 4u);
  EXPECT_DOUBLE_EQ(lengths.total_stability(), 2.0);
}

TEST(HostPacketLengths, LargeCapKeepsEverything) {
  Env env;
  auto hosts = env.wrap(aggregate_by_host(two_host_trace()));
  auto lengths = host_packet_lengths(hosts, 100);
  EXPECT_EQ(lengths.data_unsafe().size(), 5u);
}

TEST(HostPrincipal, GuaranteeIsPerHostNotPerPacket) {
  // A host-level queryable charges stability-1 epsilon per aggregation:
  // removing the whole host (all its packets) changes the count by one.
  Env env;
  auto hosts = env.wrap(aggregate_by_host(two_host_trace()));
  const double before = env.budget->spent();
  const double count = hosts.noisy_count(kExactEps);
  EXPECT_NEAR(count, 2.0, 0.01);
  EXPECT_DOUBLE_EQ(env.budget->spent() - before, kExactEps);
}

TEST(HostPrincipal, FidelityDecreasesWithTighterCaps) {
  // The paper's §3 prediction: fewer records contributing -> coarser
  // statistics.  With cap 1 the length sample is one packet per host.
  Env env;
  auto hosts = env.wrap(aggregate_by_host(two_host_trace()));
  const auto strict = host_packet_lengths(hosts, 1).data_unsafe();
  EXPECT_EQ(strict.size(), 2u);
  const auto loose = host_packet_lengths(hosts, 3).data_unsafe();
  EXPECT_EQ(loose.size(), 5u);
}

}  // namespace
}  // namespace dpnet::analysis
