// Cross-analysis property: weaker privacy never hurts.  For each analysis
// we compare a strong-privacy and a weak-privacy run (averaged over a few
// seeds) and require the weak run to be at least as accurate — the
// ordering every figure of the paper exhibits.
#include <gtest/gtest.h>

#include <cmath>
#include <set>

#include "analysis/packet_dist.hpp"
#include "analysis/scan_detection.hpp"
#include "analysis/worm.hpp"
#include "stats/metrics.hpp"
#include "tracegen/hotspot.hpp"

namespace dpnet::analysis {
namespace {

using net::Packet;

const std::vector<Packet>& shared_trace() {
  static const std::vector<Packet> trace = [] {
    tracegen::HotspotGenerator gen(tracegen::HotspotConfig::small());
    return gen.generate();
  }();
  return trace;
}

core::Queryable<Packet> protect(std::uint64_t seed) {
  return {shared_trace(), std::make_shared<core::RootBudget>(1e9),
          std::make_shared<core::NoiseSource>(seed)};
}

TEST(EpsOrdering, PacketLengthCdf) {
  const auto exact = exact_packet_length_cdf(shared_trace(), 50);
  auto mean_err = [&](double eps, std::uint64_t base) {
    double total = 0.0;
    for (std::uint64_t s = 0; s < 4; ++s) {
      const auto dp = dp_packet_length_cdf(protect(base + s), eps, 50);
      total += stats::rmse(dp.values, exact.values);
    }
    return total / 4.0;
  };
  EXPECT_GT(mean_err(0.05, 10), mean_err(5.0, 20));
}

TEST(EpsOrdering, WormRecallNeverDropsWithWeakerPrivacy) {
  const auto& trace = shared_trace();
  const auto cfg = tracegen::HotspotConfig::small();
  const int dispersion = cfg.worm_dispersion_min - 1;
  const auto exact_set =
      exact_worm_payloads(trace, 8, dispersion, dispersion);
  const std::set<std::string> truth(exact_set.begin(), exact_set.end());
  ASSERT_FALSE(truth.empty());

  auto recall = [&](double eps, std::uint64_t seed) {
    WormOptions opt;
    opt.payload_len = 8;
    opt.src_threshold = dispersion;
    opt.dst_threshold = dispersion;
    opt.eps_group_count = eps;
    opt.eps_per_string_level = eps;
    opt.string_threshold = 25.0;
    opt.eps_dispersion = eps;
    const auto result = dp_worm_fingerprint(protect(seed), opt);
    std::size_t hits = 0;
    for (const auto& c : result.candidates) {
      if (c.flagged && truth.count(c.payload)) ++hits;
    }
    return static_cast<double>(hits) / static_cast<double>(truth.size());
  };
  double weak = 0.0, strong = 0.0;
  for (std::uint64_t s = 0; s < 3; ++s) {
    weak += recall(20.0, 30 + s);
    strong += recall(0.05, 40 + s);
  }
  EXPECT_GE(weak, strong);
  EXPECT_GT(weak / 3.0, 0.8);  // weak privacy finds most worms
}

TEST(EpsOrdering, ScannerCountErrorShrinks) {
  auto err = [&](double eps, std::uint64_t base) {
    const auto exact = exact_scanners(shared_trace(), 445, 8).size();
    double total = 0.0;
    for (std::uint64_t s = 0; s < 4; ++s) {
      ScanDetectionOptions opt;
      opt.fanout_threshold = 8;
      opt.eps_count = eps;
      opt.eps_histogram = 1e6;  // keep the histogram out of the comparison
      const auto r = dp_scan_detection(protect(base + s), opt);
      total += std::abs(r.noisy_scanner_count -
                        static_cast<double>(exact));
    }
    return total / 4.0;
  };
  EXPECT_GT(err(0.05, 50), err(5.0, 60));
}

}  // namespace
}  // namespace dpnet::analysis
