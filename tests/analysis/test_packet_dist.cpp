#include "analysis/packet_dist.hpp"

#include <gtest/gtest.h>

#include <vector>

namespace dpnet::analysis {
namespace {

using net::Ipv4;
using net::Packet;

constexpr double kExactEps = 1e7;

struct Env {
  std::shared_ptr<core::RootBudget> budget;
  std::shared_ptr<core::NoiseSource> noise;

  explicit Env(double total = 1e12, std::uint64_t seed = 12)
      : budget(std::make_shared<core::RootBudget>(total)),
        noise(std::make_shared<core::NoiseSource>(seed)) {}

  core::Queryable<Packet> wrap(std::vector<Packet> data) const {
    return {std::move(data), budget, noise};
  }
};

std::vector<Packet> sample_trace() {
  std::vector<Packet> trace;
  const std::uint16_t lengths[] = {40, 40, 40, 1492, 1492, 700, 320, 40};
  const std::uint16_t ports[] = {80, 80, 443, 22, 53, 80, 8080, 40000};
  for (int i = 0; i < 8; ++i) {
    Packet p;
    p.timestamp = i;
    p.src_ip = Ipv4(10, 0, 0, 1);
    p.dst_ip = Ipv4(198, 18, 0, 1);
    p.length = lengths[i];
    p.dst_port = ports[i];
    trace.push_back(p);
  }
  return trace;
}

TEST(PacketLengths, ExtractsLengthColumn) {
  Env env;
  auto lengths = packet_lengths(env.wrap(sample_trace()));
  EXPECT_EQ(lengths.data_unsafe(),
            (std::vector<std::int64_t>{40, 40, 40, 1492, 1492, 700, 320, 40}));
}

TEST(DstPorts, ExtractsPortColumn) {
  Env env;
  auto ports = dst_ports(env.wrap(sample_trace()));
  EXPECT_EQ(ports.data_unsafe()[0], 80);
  EXPECT_EQ(ports.data_unsafe()[7], 40000);
}

TEST(PacketLengthCdf, MatchesExactAtHighEps) {
  Env env;
  const auto trace = sample_trace();
  const auto exact = exact_packet_length_cdf(trace, 100);
  const auto dp = dp_packet_length_cdf(env.wrap(trace), kExactEps, 100);
  ASSERT_EQ(dp.values.size(), exact.values.size());
  for (std::size_t i = 0; i < exact.values.size(); ++i) {
    EXPECT_NEAR(dp.values[i], exact.values[i], 0.1);
  }
  // The final boundary covers every packet.
  EXPECT_NEAR(dp.values.back(), 8.0, 0.1);
}

TEST(PacketLengthCdf, CapturesTheTwoModes) {
  const auto exact = exact_packet_length_cdf(sample_trace(), 25);
  // Mass at <=50 is the four 40-byte packets.
  const auto& b = exact.boundaries;
  for (std::size_t i = 0; i < b.size(); ++i) {
    if (b[i] == 50) {
      EXPECT_DOUBLE_EQ(exact.values[i], 4.0);
    }
    if (b[i] == 1475) {
      EXPECT_DOUBLE_EQ(exact.values[i], 6.0);
    }
    if (b[i] == 1500) {
      EXPECT_DOUBLE_EQ(exact.values[i], 8.0);
    }
  }
}

TEST(PortCdf, MatchesExactAtHighEps) {
  Env env;
  const auto trace = sample_trace();
  const auto exact = exact_port_cdf(trace, 4096);
  const auto dp = dp_port_cdf(env.wrap(trace), kExactEps, 4096);
  ASSERT_EQ(dp.values.size(), exact.values.size());
  for (std::size_t i = 0; i < exact.values.size(); ++i) {
    EXPECT_NEAR(dp.values[i], exact.values[i], 0.1);
  }
}

TEST(PacketLengthCdf, CostsExactlyEps) {
  Env env;
  dp_packet_length_cdf(env.wrap(sample_trace()), 0.4, 100);
  EXPECT_NEAR(env.budget->spent(), 0.4, 1e-9);
}

TEST(PortCdf, CostsExactlyEps) {
  Env env;
  dp_port_cdf(env.wrap(sample_trace()), 0.3, 4096);
  EXPECT_NEAR(env.budget->spent(), 0.3, 1e-9);
}

TEST(PacketLengthCdf, ErrorGrowsAsEpsShrinks) {
  const auto trace = [] {
    std::vector<Packet> t;
    for (int i = 0; i < 2000; ++i) {
      Packet p;
      p.length = static_cast<std::uint16_t>(40 + (i % 1400));
      t.push_back(p);
    }
    return t;
  }();
  const auto exact = exact_packet_length_cdf(trace, 50);
  auto avg_err = [&](double eps) {
    double total = 0.0;
    for (std::uint64_t seed = 0; seed < 5; ++seed) {
      Env env(1e12, 40 + seed);
      const auto dp = dp_packet_length_cdf(env.wrap(trace), eps, 50);
      for (std::size_t i = 0; i < exact.values.size(); ++i) {
        total += std::abs(dp.values[i] - exact.values[i]);
      }
    }
    return total;
  };
  EXPECT_GT(avg_err(0.1), avg_err(10.0));
}

}  // namespace
}  // namespace dpnet::analysis
