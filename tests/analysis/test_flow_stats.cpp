#include "analysis/flow_stats.hpp"

#include <gtest/gtest.h>

#include <algorithm>
#include <vector>

#include "net/flow.hpp"

namespace dpnet::analysis {
namespace {

using net::Ipv4;
using net::Packet;
using net::TcpFlags;

constexpr double kExactEps = 1e7;

struct Env {
  std::shared_ptr<core::RootBudget> budget;
  std::shared_ptr<core::NoiseSource> noise;

  explicit Env(double total = 1e12, std::uint64_t seed = 15)
      : budget(std::make_shared<core::RootBudget>(total)),
        noise(std::make_shared<core::NoiseSource>(seed)) {}

  core::Queryable<Packet> wrap(std::vector<Packet> data) const {
    return {std::move(data), budget, noise};
  }
};

Packet tcp_packet(double t, Ipv4 src, Ipv4 dst, std::uint16_t sport,
                  std::uint16_t dport, TcpFlags flags, std::uint32_t seq,
                  std::uint32_t ack, std::uint16_t len) {
  Packet p;
  p.timestamp = t;
  p.src_ip = src;
  p.dst_ip = dst;
  p.src_port = sport;
  p.dst_port = dport;
  p.protocol = net::kProtoTcp;
  p.flags = flags;
  p.seq = seq;
  p.ack_no = ack;
  p.length = len;
  return p;
}

const Ipv4 kClient(10, 0, 0, 1);
const Ipv4 kServer(198, 18, 0, 1);
constexpr TcpFlags kSyn{.syn = true};
constexpr TcpFlags kSynAck{.syn = true, .ack = true};
constexpr TcpFlags kData{.ack = true, .psh = true};

/// Two handshakes with RTTs of 30 ms and 120 ms.
std::vector<Packet> handshake_trace() {
  return {
      tcp_packet(1.00, kClient, kServer, 1000, 80, kSyn, 100, 0, 40),
      tcp_packet(1.03, kServer, kClient, 80, 1000, kSynAck, 500, 101, 40),
      tcp_packet(2.00, kClient, kServer, 2000, 443, kSyn, 700, 0, 40),
      tcp_packet(2.12, kServer, kClient, 443, 2000, kSynAck, 900, 701, 40),
  };
}

TEST(HandshakeRttsMs, JoinRecoversBothRtts) {
  Env env;
  auto rtts = handshake_rtts_ms(env.wrap(handshake_trace()));
  auto values = rtts.data_unsafe();
  std::sort(values.begin(), values.end());
  EXPECT_EQ(values, (std::vector<std::int64_t>{30, 120}));
}

TEST(HandshakeRttsMs, AgreesWithExactReference) {
  Env env;
  auto values = handshake_rtts_ms(env.wrap(handshake_trace())).data_unsafe();
  auto exact = exact_rtts_ms(handshake_trace());
  std::sort(values.begin(), values.end());
  std::sort(exact.begin(), exact.end());
  EXPECT_EQ(values, exact);
}

TEST(HandshakeRttsMs, UnmatchedSynProducesNothing) {
  Env env;
  std::vector<Packet> trace = {
      tcp_packet(1.0, kClient, kServer, 1000, 80, kSyn, 100, 0, 40),
  };
  EXPECT_TRUE(handshake_rtts_ms(env.wrap(trace)).data_unsafe().empty());
}

TEST(FlowLossPermille, ComputesPerFlowRates) {
  Env env;
  std::vector<Packet> trace;
  // Flow with 12 data packets, 2 of them retransmissions -> 2/12 loss.
  for (int i = 0; i < 10; ++i) {
    trace.push_back(tcp_packet(i * 0.1, kClient, kServer, 1000, 80, kData,
                               static_cast<std::uint32_t>(100 * i), 0, 500));
  }
  trace.push_back(
      tcp_packet(1.5, kClient, kServer, 1000, 80, kData, 100, 0, 500));
  trace.push_back(
      tcp_packet(1.6, kClient, kServer, 1000, 80, kData, 200, 0, 500));
  const auto rates =
      flow_loss_permille(env.wrap(trace), 10).data_unsafe();
  ASSERT_EQ(rates.size(), 1u);
  EXPECT_EQ(rates[0], 167);  // 2/12 = 0.1667
}

TEST(FlowLossPermille, ShortFlowsAreExcluded) {
  Env env;
  std::vector<Packet> trace;
  for (int i = 0; i < 5; ++i) {
    trace.push_back(tcp_packet(i * 0.1, kClient, kServer, 1000, 80, kData,
                               static_cast<std::uint32_t>(i), 0, 500));
  }
  EXPECT_TRUE(flow_loss_permille(env.wrap(trace), 10).data_unsafe().empty());
}

TEST(FlowLossPermille, AgreesWithExactReference) {
  Env env;
  std::vector<Packet> trace;
  for (int f = 0; f < 3; ++f) {
    for (int i = 0; i < 15; ++i) {
      const auto seq = static_cast<std::uint32_t>(i % (15 - f));  // dups
      trace.push_back(tcp_packet(
          i * 0.1, kClient, kServer, static_cast<std::uint16_t>(1000 + f),
          80, kData, seq, 0, 500));
    }
  }
  auto dp = flow_loss_permille(env.wrap(trace), 10).data_unsafe();
  auto exact = exact_loss_permille(trace, 10);
  std::sort(dp.begin(), dp.end());
  std::sort(exact.begin(), exact.end());
  EXPECT_EQ(dp, exact);
}

TEST(OutOfOrderPermille, DetectsReordering) {
  Env env;
  std::vector<Packet> trace;
  const std::uint32_t seqs[] = {10, 20, 30, 40, 50, 45, 60, 70, 80, 90, 100,
                                110};
  for (int i = 0; i < 12; ++i) {
    trace.push_back(tcp_packet(i * 0.1, kClient, kServer, 1000, 80, kData,
                               seqs[i], 0, 500));
  }
  const auto rates =
      flow_out_of_order_permille(env.wrap(trace), 10).data_unsafe();
  ASSERT_EQ(rates.size(), 1u);
  EXPECT_EQ(rates[0], 83);  // 1 of 12
}

TEST(FlowCapacityKbps, MedianPairRatePerFlow) {
  Env env;
  std::vector<Packet> trace;
  // 12 in-order packets of 1000 bytes spaced 10 ms: 8*1000/(0.01*1000)
  // = 800 kbit/s per pair.
  for (int i = 0; i < 12; ++i) {
    trace.push_back(tcp_packet(1.0 + i * 0.010, kClient, kServer, 1000, 80,
                               kData, static_cast<std::uint32_t>(1000 * i),
                               0, 1000));
  }
  const auto caps = flow_capacity_kbps(env.wrap(trace), 10).data_unsafe();
  ASSERT_EQ(caps.size(), 1u);
  EXPECT_NEAR(static_cast<double>(caps[0]), 800.0, 1.0);
}

TEST(FlowCapacityKbps, IgnoresRetransmissionsAndShortFlows) {
  Env env;
  std::vector<Packet> trace;
  for (int i = 0; i < 12; ++i) {
    trace.push_back(tcp_packet(1.0 + i * 0.010, kClient, kServer, 1000, 80,
                               kData, static_cast<std::uint32_t>(1000 * i),
                               0, 1000));
  }
  // A retransmission (seq goes backwards) must not contribute a pair.
  trace.push_back(
      tcp_packet(1.5, kClient, kServer, 1000, 80, kData, 3000, 0, 1000));
  const auto caps = flow_capacity_kbps(env.wrap(trace), 10).data_unsafe();
  ASSERT_EQ(caps.size(), 1u);
  EXPECT_NEAR(static_cast<double>(caps[0]), 800.0, 1.0);
  // Short flows are excluded entirely.
  std::vector<Packet> short_flow(trace.begin(), trace.begin() + 5);
  EXPECT_TRUE(
      flow_capacity_kbps(env.wrap(short_flow), 10).data_unsafe().empty());
}

TEST(RetransmitDiffsMs, ExtractsPerFlowGaps) {
  Env env;
  std::vector<Packet> trace = {
      tcp_packet(1.0, kClient, kServer, 1000, 80, kData, 100, 0, 500),
      tcp_packet(1.2, kClient, kServer, 1000, 80, kData, 100, 0, 500),
      tcp_packet(2.0, kClient, kServer, 2000, 80, kData, 7, 0, 500),
      tcp_packet(2.05, kClient, kServer, 2000, 80, kData, 7, 0, 500),
  };
  auto diffs = retransmit_diffs_ms(env.wrap(trace), 8).data_unsafe();
  std::sort(diffs.begin(), diffs.end());
  EXPECT_EQ(diffs, (std::vector<std::int64_t>{50, 200}));
}

TEST(RetransmitDiffsMs, FanoutBoundTruncates) {
  Env env;
  std::vector<Packet> trace;
  // One flow with 5 retransmissions of the same segment.
  for (int i = 0; i < 6; ++i) {
    trace.push_back(tcp_packet(1.0 + i * 0.1, kClient, kServer, 1000, 80,
                               kData, 100, 0, 500));
  }
  EXPECT_EQ(retransmit_diffs_ms(env.wrap(trace), 2).data_unsafe().size(),
            2u);
}

TEST(PacketsPerConnection, SplitsFlowsAtClientSyns) {
  Env env;
  std::vector<Packet> trace = {
      tcp_packet(1.0, kClient, kServer, 1000, 80, kSyn, 1, 0, 40),
      tcp_packet(1.1, kClient, kServer, 1000, 80, kData, 2, 0, 500),
      tcp_packet(1.2, kClient, kServer, 1000, 80, kData, 3, 0, 500),
      tcp_packet(2.0, kClient, kServer, 1000, 80, kSyn, 50, 0, 40),
      tcp_packet(2.1, kClient, kServer, 1000, 80, kData, 51, 0, 500),
  };
  auto counts =
      packets_per_connection_column(env.wrap(trace)).data_unsafe();
  std::sort(counts.begin(), counts.end());
  EXPECT_EQ(counts, (std::vector<std::int64_t>{2, 3}));
}

TEST(PacketsPerConnection, ServerDirectionJoinsTheSameConnection) {
  Env env;
  std::vector<Packet> trace = {
      tcp_packet(1.0, kClient, kServer, 1000, 80, kSyn, 1, 0, 40),
      tcp_packet(1.05, kServer, kClient, 80, 1000, kSynAck, 9, 2, 40),
      tcp_packet(1.1, kClient, kServer, 1000, 80, kData, 2, 10, 500),
  };
  const auto counts =
      packets_per_connection_column(env.wrap(trace)).data_unsafe();
  ASSERT_EQ(counts.size(), 1u);
  EXPECT_EQ(counts[0], 3);
}

TEST(PacketsPerConnection, AgreesWithTrustedSidePreprocessing) {
  Env env;
  std::vector<Packet> trace;
  for (int c = 0; c < 4; ++c) {
    trace.push_back(tcp_packet(c * 10.0, kClient, kServer, 1000, 80, kSyn,
                               static_cast<std::uint32_t>(100 * c), 0, 40));
    for (int i = 1; i <= c + 1; ++i) {
      trace.push_back(tcp_packet(
          c * 10.0 + i * 0.1, kClient, kServer, 1000, 80, kData,
          static_cast<std::uint32_t>(100 * c + i), 0, 500));
    }
  }
  auto dp = packets_per_connection_column(env.wrap(trace)).data_unsafe();
  auto exact_sizes =
      net::packets_per_connection(net::assign_connection_ids(trace));
  std::vector<std::int64_t> exact(exact_sizes.begin(), exact_sizes.end());
  std::sort(dp.begin(), dp.end());
  std::sort(exact.begin(), exact.end());
  EXPECT_EQ(dp, exact);
}

TEST(DpRttCdf, CostsTwiceEpsBecauseBothJoinInputsPay) {
  Env env;
  dp_rtt_cdf(env.wrap(handshake_trace()), 0.25, 50);
  EXPECT_NEAR(env.budget->spent(), 0.5, 1e-9);
}

TEST(DpRttCdf, MatchesExactShapeAtHighEps) {
  Env env;
  const auto dp = dp_rtt_cdf(env.wrap(handshake_trace()), kExactEps, 10);
  // 30ms rtt is included by boundary 30; 120ms by 120.
  for (std::size_t i = 0; i < dp.boundaries.size(); ++i) {
    if (dp.boundaries[i] == 20) {
      EXPECT_NEAR(dp.values[i], 0.0, 0.1);
    }
    if (dp.boundaries[i] == 100) {
      EXPECT_NEAR(dp.values[i], 1.0, 0.1);
    }
    if (dp.boundaries[i] == 600) {
      EXPECT_NEAR(dp.values[i], 2.0, 0.1);
    }
  }
}

TEST(DpLossCdf, CostsTwiceEpsBecauseOfGrouping) {
  Env env;
  std::vector<Packet> trace;
  for (int i = 0; i < 15; ++i) {
    trace.push_back(tcp_packet(i * 0.1, kClient, kServer, 1000, 80, kData,
                               static_cast<std::uint32_t>(i), 0, 500));
  }
  dp_loss_cdf(env.wrap(trace), 0.25, 100);
  EXPECT_NEAR(env.budget->spent(), 0.5, 1e-9);
}

}  // namespace
}  // namespace dpnet::analysis
