#include "analysis/rules.hpp"

#include <gtest/gtest.h>

#include <vector>

namespace dpnet::analysis {
namespace {

struct Env {
  std::shared_ptr<core::RootBudget> budget;
  std::shared_ptr<core::NoiseSource> noise;

  explicit Env(double total = 1e12, std::uint64_t seed = 28)
      : budget(std::make_shared<core::RootBudget>(total)),
        noise(std::make_shared<core::NoiseSource>(seed)) {}

  core::Queryable<std::vector<int>> wrap(
      std::vector<std::vector<int>> data) const {
    return {std::move(data), budget, noise};
  }
};

/// Channel 0 implies channel 1 (always together); channel 2 independent.
std::vector<std::vector<int>> window_corpus() {
  std::vector<std::vector<int>> windows;
  for (int i = 0; i < 200; ++i) windows.push_back({0, 1});
  for (int i = 0; i < 100; ++i) windows.push_back({1});  // 1 without 0
  for (int i = 0; i < 150; ++i) windows.push_back({2});
  return windows;
}

const std::vector<int> kUniverse = {0, 1, 2};

TEST(ExactMineRules, ConfidenceMatchesSupportRatio) {
  const auto rules = exact_mine_rules(window_corpus(), kUniverse, 50.0, 0.5);
  // 0 => 1 has confidence 200/200 = 1.0; 1 => 0 has 200/300 = 0.667.
  bool found_0_1 = false, found_1_0 = false;
  for (const auto& r : rules) {
    if (r.lhs == 0 && r.rhs == 1) {
      found_0_1 = true;
      EXPECT_DOUBLE_EQ(r.confidence, 1.0);
      EXPECT_DOUBLE_EQ(r.support, 200.0);
    }
    if (r.lhs == 1 && r.rhs == 0) {
      found_1_0 = true;
      EXPECT_NEAR(r.confidence, 200.0 / 300.0, 1e-12);
    }
  }
  EXPECT_TRUE(found_0_1);
  EXPECT_TRUE(found_1_0);
}

TEST(ExactMineRules, MinConfidenceFilters) {
  const auto rules = exact_mine_rules(window_corpus(), kUniverse, 50.0, 0.9);
  for (const auto& r : rules) {
    EXPECT_GE(r.confidence, 0.9);
  }
  // 1 => 0 (0.667) must be gone.
  for (const auto& r : rules) {
    EXPECT_FALSE(r.lhs == 1 && r.rhs == 0);
  }
}

TEST(ExactMineRules, IndependentChannelProducesNoRules) {
  const auto rules = exact_mine_rules(window_corpus(), kUniverse, 50.0, 0.3);
  for (const auto& r : rules) {
    EXPECT_NE(r.lhs, 2);
    EXPECT_NE(r.rhs, 2);
  }
}

TEST(DpMineRules, RecoversTheImplantedRuleAtHighEps) {
  Env env;
  RuleMiningOptions opt;
  opt.eps_per_level = 1e6;
  opt.mining_support = 50.0;
  opt.min_support = 50.0;
  opt.min_confidence = 0.5;
  const auto rules = dp_mine_rules(env.wrap(window_corpus()), kUniverse, opt);
  ASSERT_FALSE(rules.empty());
  EXPECT_EQ(rules[0].lhs, 0);
  EXPECT_EQ(rules[0].rhs, 1);
  EXPECT_GT(rules[0].confidence, 0.9);
}

TEST(DpMineRules, PrivacyCostIsFourLevels) {
  Env env;
  RuleMiningOptions opt;
  opt.eps_per_level = 0.2;
  opt.mining_support = 50.0;
  opt.min_support = 50.0;
  dp_mine_rules(env.wrap(window_corpus()), kUniverse, opt);
  // Two apriori levels + the pair pass + the antecedent pass.
  EXPECT_NEAR(env.budget->spent(), 0.8, 1e-9);
}

TEST(DpMineRules, NoCandidatesMeansNoExtraCharges) {
  Env env;
  RuleMiningOptions opt;
  opt.eps_per_level = 0.2;
  opt.mining_support = 1e12;  // nothing survives mining
  EXPECT_TRUE(
      dp_mine_rules(env.wrap(window_corpus()), kUniverse, opt).empty());
  // Level 1 finds nothing, so level 2 and both measurement passes are
  // skipped: only one mining level is ever charged.
  EXPECT_NEAR(env.budget->spent(), 0.2, 1e-9);
}

TEST(DpMineRules, ConfidenceDenominatorsAreUnsplit) {
  // The 1 => 0 rule: exact confidence 200/300.  Without the dedicated
  // antecedent pass the partitioned support of {1} (~200) would inflate
  // it to ~1.0.
  Env env;
  RuleMiningOptions opt;
  opt.eps_per_level = 1e6;
  opt.mining_support = 50.0;
  opt.min_support = 50.0;
  opt.min_confidence = 0.1;
  const auto rules = dp_mine_rules(env.wrap(window_corpus()), kUniverse, opt);
  bool found = false;
  for (const auto& r : rules) {
    if (r.lhs == 1 && r.rhs == 0) {
      found = true;
      EXPECT_NEAR(r.confidence, 200.0 / 300.0, 0.02);
    }
  }
  EXPECT_TRUE(found);
}

TEST(DpMineRules, SupportsAndConfidencesMatchExactAtHighEps) {
  // Stage 2 re-measures true supports, so private rules mirror the exact
  // ones (unlike the diluted stage-1 mining counts).
  Env env;
  RuleMiningOptions opt;
  opt.eps_per_level = 1e6;
  opt.mining_support = 30.0;
  opt.min_support = 30.0;
  opt.min_confidence = 0.1;
  const auto dp = dp_mine_rules(env.wrap(window_corpus()), kUniverse, opt);
  const auto exact = exact_mine_rules(window_corpus(), kUniverse, 30.0, 0.1);
  std::size_t matched = 0;
  for (const auto& d : dp) {
    for (const auto& e : exact) {
      if (d.lhs == e.lhs && d.rhs == e.rhs) {
        ++matched;
        EXPECT_NEAR(d.confidence, e.confidence, 0.02);
        EXPECT_NEAR(d.support, e.support, 2.0);
      }
    }
  }
  EXPECT_GE(matched, 2u);
}

TEST(BuildActivityWindows, BucketsEventsByTime) {
  std::vector<std::vector<double>> events = {
      {0.1, 5.1},   // channel 0 in windows 0 and 5
      {0.9, 1.1},   // channel 1 in windows 0 and 1
  };
  const auto windows = build_activity_windows(events, 1.0, 6.0);
  ASSERT_EQ(windows.size(), 6u);
  EXPECT_EQ(windows[0], (std::vector<int>{0, 1}));
  EXPECT_EQ(windows[1], (std::vector<int>{1}));
  EXPECT_TRUE(windows[2].empty());
  EXPECT_EQ(windows[5], (std::vector<int>{0}));
}

TEST(BuildActivityWindows, DropsEventsOutsideRange) {
  std::vector<std::vector<double>> events = {{-0.5, 10.0, 2.0}};
  const auto windows = build_activity_windows(events, 1.0, 4.0);
  std::size_t total = 0;
  for (const auto& w : windows) total += w.size();
  EXPECT_EQ(total, 1u);
}

TEST(BuildActivityWindows, RejectsBadExtents) {
  std::vector<std::vector<double>> events;
  EXPECT_THROW(build_activity_windows(events, 0.0, 5.0),
               std::invalid_argument);
  EXPECT_THROW(build_activity_windows(events, 1.0, 0.0),
               std::invalid_argument);
}

}  // namespace
}  // namespace dpnet::analysis
