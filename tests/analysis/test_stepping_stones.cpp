#include "analysis/stepping_stones.hpp"

#include <gtest/gtest.h>

#include <algorithm>
#include <set>
#include <vector>

namespace dpnet::analysis {
namespace {

using net::Activation;
using net::FlowKey;
using net::Ipv4;
using net::Packet;

struct Env {
  std::shared_ptr<core::RootBudget> budget;
  std::shared_ptr<core::NoiseSource> noise;

  explicit Env(double total = 1e12, std::uint64_t seed = 16)
      : budget(std::make_shared<core::RootBudget>(total)),
        noise(std::make_shared<core::NoiseSource>(seed)) {}

  core::Queryable<Packet> wrap(std::vector<Packet> data) const {
    return {std::move(data), budget, noise};
  }
};

FlowKey make_flow(int i) {
  return FlowKey{Ipv4(172, 16, 1, static_cast<std::uint8_t>(i)),
                 Ipv4(172, 16, 2, static_cast<std::uint8_t>(i)),
                 static_cast<std::uint16_t>(3000 + i), 22, net::kProtoTcp};
}

Packet flow_packet(const FlowKey& f, double t) {
  Packet p;
  p.timestamp = t;
  p.src_ip = f.src_ip;
  p.dst_ip = f.dst_ip;
  p.src_port = f.src_port;
  p.dst_port = f.dst_port;
  p.protocol = f.protocol;
  p.length = 92;
  p.flags = net::TcpFlags{.ack = true, .psh = true};
  return p;
}

void add_bursts(std::vector<Packet>& trace, const FlowKey& f,
                const std::vector<double>& activation_times) {
  for (double t : activation_times) {
    trace.push_back(flow_packet(f, t));
    trace.push_back(flow_packet(f, t + 0.1));  // within t_idle: same burst
  }
}

std::vector<Packet> sorted_by_time(std::vector<Packet> trace) {
  std::sort(trace.begin(), trace.end(),
            [](const Packet& a, const Packet& b) {
              return a.timestamp < b.timestamp;
            });
  return trace;
}

TEST(DpActivations, MatchesExactExtractionOnBurstyFlows) {
  std::vector<Packet> trace;
  add_bursts(trace, make_flow(1), {1.0, 3.0, 5.5, 9.0});
  add_bursts(trace, make_flow(2), {2.0, 7.0});
  trace = sorted_by_time(std::move(trace));

  Env env;
  auto dp = dp_activations(env.wrap(trace), 0.5).data_unsafe();
  const auto exact = net::extract_activations(trace, 0.5);

  auto as_set = [](const std::vector<Activation>& acts) {
    std::set<std::pair<std::string, double>> s;
    for (const auto& a : acts) s.emplace(a.flow.to_string(), a.time);
    return s;
  };
  EXPECT_EQ(as_set(dp), as_set(exact));
}

TEST(DpActivations, NoDoubleCountingAcrossTheTwoPasses) {
  // Activations at bucket-aligned and mid-bucket instants.
  std::vector<Packet> trace;
  add_bursts(trace, make_flow(1), {0.0, 1.0, 1.5, 2.49, 4.0});
  trace = sorted_by_time(std::move(trace));
  Env env;
  auto dp = dp_activations(env.wrap(trace), 0.5).data_unsafe();
  // Exact count: gaps are 1.0-0.1=0.9, ... all gaps > 0.5 except 2.49
  // follows 1.6 by 0.89 -> all five are activations.
  EXPECT_EQ(dp.size(), net::extract_activations(trace, 0.5).size());
}

TEST(DpActivations, PacketsWithinIdleWindowAreNotActivations) {
  std::vector<Packet> trace;
  const FlowKey f = make_flow(1);
  trace.push_back(flow_packet(f, 1.0));
  trace.push_back(flow_packet(f, 1.3));
  trace.push_back(flow_packet(f, 1.6));
  Env env;
  auto dp = dp_activations(env.wrap(trace), 0.5).data_unsafe();
  ASSERT_EQ(dp.size(), 1u);
  EXPECT_DOUBLE_EQ(dp[0].time, 1.0);
}

TEST(ExactCorrelation, PerfectLockstepIsOne) {
  const std::vector<double> a = {1.0, 2.0, 3.0};
  const std::vector<double> b = {1.01, 2.02, 3.01};
  EXPECT_DOUBLE_EQ(exact_correlation(a, b, 0.04), 1.0);
}

TEST(ExactCorrelation, DisjointSchedulesAreZero) {
  const std::vector<double> a = {1.0, 2.0};
  const std::vector<double> b = {10.0, 20.0};
  EXPECT_DOUBLE_EQ(exact_correlation(a, b, 0.04), 0.0);
}

TEST(ExactCorrelation, PartialOverlapIsFractional) {
  const std::vector<double> a = {1.0, 2.0, 3.0, 4.0};
  const std::vector<double> b = {1.01, 2.01, 30.0, 40.0};
  // Matched: 2 of a, 2 of b -> 4 / 8.
  EXPECT_DOUBLE_EQ(exact_correlation(a, b, 0.04), 0.5);
}

TEST(ExactCorrelation, EmptyInputsAreZero) {
  EXPECT_DOUBLE_EQ(exact_correlation({}, {}, 0.04), 0.0);
}

class SteppingStonePipeline : public ::testing::Test {
 protected:
  void SetUp() override {
    // Two correlated pairs (1,2) and (3,4), one independent flow 5.
    std::vector<double> base1, base2;
    for (int k = 0; k < 120; ++k) {
      base1.push_back(5.0 + k * 2.0);
      base2.push_back(5.7 + k * 2.0);
    }
    std::vector<Packet> trace;
    add_bursts(trace, make_flow(1), base1);
    add_bursts(trace, make_flow(2), shifted(base1, 0.02));
    add_bursts(trace, make_flow(3), base2);
    add_bursts(trace, make_flow(4), shifted(base2, 0.015));
    std::vector<double> indep;
    for (int k = 0; k < 120; ++k) indep.push_back(6.3 + k * 2.0);
    add_bursts(trace, make_flow(5), indep);
    trace_ = sorted_by_time(std::move(trace));
    for (int i = 1; i <= 5; ++i) candidates_.push_back(make_flow(i));
  }

  static std::vector<double> shifted(std::vector<double> v, double d) {
    for (double& x : v) x += d;
    return v;
  }

  std::vector<Packet> trace_;
  std::vector<FlowKey> candidates_;
};

TEST_F(SteppingStonePipeline, ExactDetectorRanksTruePairsFirst) {
  const auto scores =
      exact_stepping_stones(trace_, candidates_, 0.5, 0.04);
  ASSERT_GE(scores.size(), 2u);
  auto is_true_pair = [](const ExactPairScore& s) {
    const auto a = s.a.src_ip.value & 0xff;
    const auto b = s.b.src_ip.value & 0xff;
    return (std::min(a, b) == 1 && std::max(a, b) == 2) ||
           (std::min(a, b) == 3 && std::max(a, b) == 4);
  };
  EXPECT_TRUE(is_true_pair(scores[0]));
  EXPECT_TRUE(is_true_pair(scores[1]));
  EXPECT_GT(scores[0].correlation, 0.9);
  EXPECT_LT(scores[2].correlation, 0.3);
}

TEST_F(SteppingStonePipeline, DpPipelineFindsTruePairsAtHighEps) {
  Env env;
  SteppingStoneOptions opt;
  opt.eps_itemset = 1e5;
  opt.eps_eval = 1e5;
  opt.itemset_threshold = 40.0;
  opt.top_k = 4;
  const auto scored =
      dp_stepping_stones(env.wrap(trace_), candidates_, opt);
  ASSERT_GE(scored.size(), 2u);
  auto is_true_pair = [](const StonePairScore& s) {
    const auto a = s.a.src_ip.value & 0xff;
    const auto b = s.b.src_ip.value & 0xff;
    return (std::min(a, b) == 1 && std::max(a, b) == 2) ||
           (std::min(a, b) == 3 && std::max(a, b) == 4);
  };
  EXPECT_TRUE(is_true_pair(scored[0]));
  EXPECT_TRUE(is_true_pair(scored[1]));
  EXPECT_GT(scored[0].noisy_correlation, 0.7);
}

TEST_F(SteppingStonePipeline, EmptyCandidateListYieldsNothing) {
  Env env;
  SteppingStoneOptions opt;
  opt.eps_itemset = 1e5;
  opt.eps_eval = 1e5;
  EXPECT_TRUE(dp_stepping_stones(env.wrap(trace_), {}, opt).empty());
}

TEST_F(SteppingStonePipeline, HighThresholdSuppressesAllPairs) {
  Env env;
  SteppingStoneOptions opt;
  opt.eps_itemset = 1e5;
  opt.eps_eval = 1e5;
  opt.itemset_threshold = 1e7;
  EXPECT_TRUE(dp_stepping_stones(env.wrap(trace_), candidates_, opt).empty());
}

}  // namespace
}  // namespace dpnet::analysis
