// Budget-policy integration (§7 of the paper): multiple analysts sharing
// one dataset budget, each individually capped.
#include <gtest/gtest.h>

#include <memory>
#include <tuple>

#include "analysis/packet_dist.hpp"
#include "core/queryable.hpp"
#include "tracegen/hotspot.hpp"

namespace dpnet {
namespace {

using net::Packet;

class BudgetPolicies : public ::testing::Test {
 protected:
  static void SetUpTestSuite() {
    tracegen::HotspotConfig cfg = tracegen::HotspotConfig::small();
    cfg.stone_pairs = 1;           // keep this fixture cheap
    cfg.noise_interactive_flows = 2;
    tracegen::HotspotGenerator gen(cfg);
    trace_ = std::make_unique<std::vector<Packet>>(gen.generate());
  }
  static void TearDownTestSuite() { trace_.reset(); }

  static std::unique_ptr<std::vector<Packet>> trace_;
};

std::unique_ptr<std::vector<Packet>> BudgetPolicies::trace_;

TEST_F(BudgetPolicies, AnalystCapLimitsQuerying) {
  core::BudgetLedger ledger(1.0);
  auto noise = std::make_shared<core::NoiseSource>(31);
  core::Queryable<Packet> alice_view(*trace_, ledger.analyst("alice", 0.25),
                                     noise);
  analysis::dp_packet_length_cdf(alice_view, 0.2, 100);
  EXPECT_THROW(analysis::dp_packet_length_cdf(alice_view, 0.2, 100),
               core::BudgetExhaustedError);
}

TEST_F(BudgetPolicies, AnalystsDrawDownTheSharedDatasetBudget) {
  core::BudgetLedger ledger(0.5);
  auto noise = std::make_shared<core::NoiseSource>(32);
  core::Queryable<Packet> alice(*trace_, ledger.analyst("alice", 0.4), noise);
  core::Queryable<Packet> bob(*trace_, ledger.analyst("bob", 0.4), noise);

  analysis::dp_packet_length_cdf(alice, 0.3, 100);
  EXPECT_NEAR(ledger.dataset_spent(), 0.3, 1e-9);
  // Bob has 0.4 of personal cap but the dataset only has 0.2 left.
  EXPECT_THROW(analysis::dp_packet_length_cdf(bob, 0.3, 100),
               core::BudgetExhaustedError);
  analysis::dp_packet_length_cdf(bob, 0.15, 100);
  EXPECT_NEAR(ledger.dataset_spent(), 0.45, 1e-9);
}

TEST_F(BudgetPolicies, SeparateViewsDoNotShareNoiseState) {
  // Two analysts with the same seed would see identical noise — the data
  // owner must give each an independent noise source.
  core::BudgetLedger ledger(10.0);
  core::Queryable<Packet> alice(*trace_, ledger.analyst("alice", 5.0),
                                std::make_shared<core::NoiseSource>(100));
  core::Queryable<Packet> bob(*trace_, ledger.analyst("bob", 5.0),
                              std::make_shared<core::NoiseSource>(200));
  const double a = alice.noisy_count(0.1);
  const double b = bob.noisy_count(0.1);
  EXPECT_NE(a, b);
  // Both are within sane error of the truth.
  const double truth = static_cast<double>(trace_->size());
  EXPECT_NEAR(a, truth, 200.0);
  EXPECT_NEAR(b, truth, 200.0);
}

TEST_F(BudgetPolicies, IncreasingBudgetOverTimePolicy) {
  // The §7 policy sketch: the owner can grant additional epsilon later by
  // issuing a fresh capped view against the same ledger.
  core::BudgetLedger ledger(1.0);
  auto noise = std::make_shared<core::NoiseSource>(33);
  auto early = ledger.analyst("carol", 0.2);
  core::Queryable<Packet> view(*trace_, early, noise);
  std::ignore = view.noisy_count(0.2);
  EXPECT_THROW(std::ignore = view.noisy_count(0.05), core::BudgetExhaustedError);

  // Later: a second tranche for the same analyst under a new label.
  core::Queryable<Packet> renewed(*trace_,
                                  ledger.analyst("carol/2", 0.3), noise);
  EXPECT_NO_THROW(std::ignore = renewed.noisy_count(0.25));
  EXPECT_NEAR(ledger.dataset_spent(), 0.45, 1e-9);
}

}  // namespace
}  // namespace dpnet
