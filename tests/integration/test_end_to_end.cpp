// End-to-end integration: run the paper's analyses against the synthetic
// Hotspot trace through the full private pipeline.
#include <gtest/gtest.h>

#include <algorithm>
#include <memory>
#include <set>
#include <unordered_map>

#include "analysis/flow_stats.hpp"
#include "analysis/packet_dist.hpp"
#include "analysis/worm.hpp"
#include "core/queryable.hpp"
#include "net/tcp.hpp"
#include "stats/metrics.hpp"
#include "toolkit/frequent_strings.hpp"
#include "toolkit/itemsets.hpp"
#include "tracegen/hotspot.hpp"

namespace dpnet {
namespace {

using core::Group;
using net::Packet;

class EndToEnd : public ::testing::Test {
 protected:
  static void SetUpTestSuite() {
    gen_ = std::make_unique<tracegen::HotspotGenerator>(
        tracegen::HotspotConfig::small());
    trace_ = std::make_unique<std::vector<Packet>>(gen_->generate());
  }
  static void TearDownTestSuite() {
    trace_.reset();
    gen_.reset();
  }

  core::Queryable<Packet> protect(double budget, std::uint64_t seed) const {
    return {*trace_, std::make_shared<core::RootBudget>(budget),
            std::make_shared<core::NoiseSource>(seed)};
  }

  static std::unique_ptr<tracegen::HotspotGenerator> gen_;
  static std::unique_ptr<std::vector<Packet>> trace_;
};

std::unique_ptr<tracegen::HotspotGenerator> EndToEnd::gen_;
std::unique_ptr<std::vector<Packet>> EndToEnd::trace_;

// The §2.3 example: distinct hosts sending more than 1024 bytes to port 80.
TEST_F(EndToEnd, Section23ExampleCountsWebHeavyHosts) {
  auto packets = protect(1.0, 77);
  const double count =
      packets
          .where([](const Packet& p) {
            return p.dst_port == 80 && p.protocol == net::kProtoTcp;
          })
          .group_by([](const Packet& p) { return p.src_ip; })
          .where([](const Group<net::Ipv4, Packet>& grp) {
            std::uint64_t bytes = 0;
            for (const Packet& p : grp.items) bytes += p.length;
            return bytes > 1024;
          })
          .noisy_count(0.1);
  // Expected error +/- sqrt(2)*2/0.1 ~ 28; the true answer is exact by
  // construction of the generator.
  EXPECT_NEAR(count, gen_->web_heavy_hosts(), 90.0);
}

TEST_F(EndToEnd, PacketLengthCdfHasLowRelativeError) {
  auto packets = protect(1.0, 78);
  const auto dp = analysis::dp_packet_length_cdf(packets, 1.0, 25);
  const auto exact = analysis::exact_packet_length_cdf(*trace_, 25);
  EXPECT_LT(stats::relative_rmse(dp.values, exact.values), 0.05);
}

TEST_F(EndToEnd, RttCdfMatchesExactShape) {
  auto packets = protect(10.0, 79);
  const auto dp = analysis::dp_rtt_cdf(packets, 1.0, 10);
  const auto exact = toolkit::exact_cdf(
      analysis::exact_rtts_ms(*trace_),
      toolkit::make_boundaries(0, 600, 10));
  ASSERT_EQ(dp.values.size(), exact.values.size());
  // The join's stability of 2 doubles the per-bucket noise; allow the
  // corresponding slack over the accumulated 60-bucket CDF.
  EXPECT_LT(stats::rmse(dp.values, exact.values),
            0.08 * exact.values.back() + 15.0);
}

TEST_F(EndToEnd, LossCdfMatchesExactShape) {
  auto packets = protect(10.0, 80);
  const auto dp = analysis::dp_loss_cdf(packets, 1.0, 20);
  const auto exact = toolkit::exact_cdf(
      analysis::exact_loss_permille(*trace_),
      toolkit::make_boundaries(0, 1000, 20));
  EXPECT_LT(stats::rmse(dp.values, exact.values),
            0.05 * exact.values.back() + 10.0);
}

TEST_F(EndToEnd, FrequentStringsRecoverTheDominantPayload) {
  auto packets = protect(10.0, 81);
  auto payloads =
      packets.select([](const Packet& p) { return p.payload; });
  toolkit::FrequentStringOptions opt;
  opt.length = 8;
  opt.eps_per_level = 1.0;
  opt.threshold = 60.0;
  const auto found = toolkit::frequent_strings(payloads, opt);
  ASSERT_FALSE(found.empty());
  // The exact most frequent 8-byte payload tops the list.
  const auto exact = toolkit::exact_frequent_strings(
      [&] {
        std::vector<std::string> all;
        for (const Packet& p : *trace_) all.push_back(p.payload);
        return all;
      }(),
      8, 60.0);
  ASSERT_FALSE(exact.empty());
  EXPECT_EQ(found[0].value, exact[0].value);
  EXPECT_NEAR(found[0].estimated_count, exact[0].estimated_count,
              0.1 * exact[0].estimated_count);
}

TEST_F(EndToEnd, WormRecallIsHighAtWeakPrivacyOnly) {
  const auto& cfg = gen_->config();
  const auto exact = analysis::exact_worm_payloads(
      *trace_, 8, cfg.worm_dispersion_min - 1, cfg.worm_dispersion_min - 1);
  ASSERT_FALSE(exact.empty());
  const std::set<std::string> truth(exact.begin(), exact.end());

  auto recall_at = [&](double eps, std::uint64_t seed) {
    auto packets = protect(1e9, seed);
    analysis::WormOptions opt;
    opt.payload_len = 8;
    opt.src_threshold = cfg.worm_dispersion_min - 1;
    opt.dst_threshold = cfg.worm_dispersion_min - 1;
    opt.eps_group_count = eps;
    opt.eps_per_string_level = eps;
    opt.string_threshold = 30.0;
    opt.eps_dispersion = eps;
    const auto result = analysis::dp_worm_fingerprint(packets, opt);
    std::size_t hits = 0;
    for (const auto& c : result.candidates) {
      if (c.flagged && truth.count(c.payload)) ++hits;
    }
    return static_cast<double>(hits) / static_cast<double>(truth.size());
  };
  const double weak = recall_at(10.0, 90);
  const double strong = recall_at(0.05, 91);
  EXPECT_GT(weak, 0.6);
  EXPECT_LE(strong, weak);
}

TEST_F(EndToEnd, PortItemsetsMatchTheImplantedProfiles) {
  auto packets = protect(1e9, 82);
  // Per-host destination port sets, restricted to client hosts.
  auto port_sets =
      packets
          .where([](const Packet& p) {
            return p.src_ip.in_subnet(net::Ipv4(10, 0, 0, 0), 8);
          })
          .group_by([](const Packet& p) { return p.src_ip; })
          .select([](const Group<net::Ipv4, Packet>& grp) {
            std::set<int> ports;
            for (const Packet& p : grp.items) ports.insert(p.dst_port);
            return std::vector<int>(ports.begin(), ports.end());
          });
  toolkit::ItemsetOptions opt;
  opt.max_size = 2;
  opt.eps_per_level = 1e5;
  opt.threshold = 5.0;
  const std::vector<int> universe = {22, 25, 80, 139, 443, 445, 993};
  const auto found = toolkit::frequent_itemsets(port_sets, universe, opt);
  // The (22,80) profile is the largest and must be among the pairs.
  bool pair_22_80 = false;
  for (const auto& r : found) {
    if (r.items == std::vector<int>{22, 80}) pair_22_80 = true;
  }
  EXPECT_TRUE(pair_22_80);
}

TEST_F(EndToEnd, RepeatedAnalysesDepleteTheBudget) {
  auto packets = protect(0.3, 83);
  analysis::dp_packet_length_cdf(packets, 0.1, 50);
  analysis::dp_packet_length_cdf(packets, 0.1, 50);
  analysis::dp_packet_length_cdf(packets, 0.1, 50);
  EXPECT_THROW(analysis::dp_packet_length_cdf(packets, 0.1, 50),
               core::BudgetExhaustedError);
}

}  // namespace
}  // namespace dpnet
