#!/bin/sh
# Regression-gate test for tools/bench_compare.  The baseline is
# self-generated from a synthetic dpnet.bench.v1 report so the test is
# deterministic and needs no bench run:
#   * identical report vs baseline          -> exit 0
#   * ~25% inflated wall-time row           -> nonzero (thresholded)
#   * drifted deterministic result row      -> nonzero (exact)
#   * missing baseline                      -> nonzero, names the refresh
#   * --update-baselines then compare       -> exit 0
# Usage: test_bench_compare.sh <bench_compare>
set -eu

COMPARE="$1"
WORK="$(mktemp -d)"
trap 'rm -rf "$WORK"' EXIT
mkdir "$WORK/baselines" "$WORK/run"

cat > "$WORK/run/BENCH_fake.json" <<'EOF'
{"schema":"dpnet.bench.v1","name":"fake","title":"Fake bench",
"reproduces":"gate test",
"results":[
{"section":"timing","key":"wall_ms at 4 threads","value":100.0},
{"section":"timing","key":"speedup at 4 threads","value":3.2},
{"section":"accuracy","key":"noisy record count (eps=0.5)","value":12345.678}
],
"trace":{"spans":[{"op":"noisy_count","stability":1.0,"input_rows":10,
"output_rows":1,"eps_requested":0.5,"eps_charged":0.5,"wall_ms":1.0,
"ts_us":0,"dur_us":1000,"worker":-1,"children":[]}]},
"audit":{"spent":0.5,"entries":[{"eps":0.5,"label":"gate"}],
"totals_by_label":{"gate":0.5}},
"metrics":{"counters":{},"gauges":{},"histograms":{}}}
EOF

echo "== identical run passes =="
cp "$WORK/run/BENCH_fake.json" "$WORK/baselines/BENCH_fake.json"
"$COMPARE" --baseline-dir "$WORK/baselines" "$WORK/run/BENCH_fake.json"

echo "== 25% wall-time inflation trips the gate =="
sed 's/"wall_ms at 4 threads","value":100.0/"wall_ms at 4 threads","value":125.0/' \
  "$WORK/run/BENCH_fake.json" > "$WORK/run/BENCH_slow.json"
cp "$WORK/run/BENCH_fake.json" "$WORK/baselines/BENCH_slow.json"
if "$COMPARE" --baseline-dir "$WORK/baselines" \
    "$WORK/run/BENCH_slow.json" 2>"$WORK/err"; then
  echo "expected inflated wall time to fail" >&2
  exit 1
fi
grep -q "regression" "$WORK/err"

echo "== but passes under a looser CI threshold =="
"$COMPARE" --time-threshold 0.5 --baseline-dir "$WORK/baselines" \
  "$WORK/run/BENCH_slow.json"

echo "== faster run does not trip the gate =="
sed 's/"wall_ms at 4 threads","value":100.0/"wall_ms at 4 threads","value":60.0/' \
  "$WORK/run/BENCH_fake.json" > "$WORK/run/BENCH_faster.json"
cp "$WORK/run/BENCH_fake.json" "$WORK/baselines/BENCH_faster.json"
"$COMPARE" --baseline-dir "$WORK/baselines" "$WORK/run/BENCH_faster.json"

echo "== speedup drop trips the gate =="
sed 's/"speedup at 4 threads","value":3.2/"speedup at 4 threads","value":1.1/' \
  "$WORK/run/BENCH_fake.json" > "$WORK/run/BENCH_noscale.json"
cp "$WORK/run/BENCH_fake.json" "$WORK/baselines/BENCH_noscale.json"
if "$COMPARE" --baseline-dir "$WORK/baselines" \
    "$WORK/run/BENCH_noscale.json" 2>"$WORK/err"; then
  echo "expected speedup drop to fail" >&2
  exit 1
fi
grep -q "regression" "$WORK/err"

echo "== deterministic result drift is exact, not thresholded =="
sed 's/"noisy record count (eps=0.5)","value":12345.678/"noisy record count (eps=0.5)","value":12345.679/' \
  "$WORK/run/BENCH_fake.json" > "$WORK/run/BENCH_drift.json"
cp "$WORK/run/BENCH_fake.json" "$WORK/baselines/BENCH_drift.json"
if "$COMPARE" --baseline-dir "$WORK/baselines" \
    "$WORK/run/BENCH_drift.json" 2>"$WORK/err"; then
  echo "expected deterministic drift to fail" >&2
  exit 1
fi
grep -q "result drift" "$WORK/err"

echo "== privacy-spend drift is exact too =="
sed 's/"spent":0.5/"spent":0.6/' \
  "$WORK/run/BENCH_fake.json" > "$WORK/run/BENCH_eps.json"
cp "$WORK/run/BENCH_fake.json" "$WORK/baselines/BENCH_eps.json"
if "$COMPARE" --baseline-dir "$WORK/baselines" \
    "$WORK/run/BENCH_eps.json" 2>"$WORK/err"; then
  echo "expected audit spend drift to fail" >&2
  exit 1
fi
grep -q "audit ledger" "$WORK/err"

echo "== missing baseline fails and names the refresh workflow =="
cp "$WORK/run/BENCH_fake.json" "$WORK/run/BENCH_new.json"
if "$COMPARE" --baseline-dir "$WORK/baselines" \
    "$WORK/run/BENCH_new.json" 2>"$WORK/err"; then
  echo "expected missing baseline to fail" >&2
  exit 1
fi
grep -q -- "--update-baselines" "$WORK/err"

echo "== --update-baselines seeds it, then the gate passes =="
"$COMPARE" --update-baselines --baseline-dir "$WORK/baselines" \
  "$WORK/run/BENCH_new.json"
"$COMPARE" --baseline-dir "$WORK/baselines" "$WORK/run/BENCH_new.json"

echo "== unknown flags exit 2 =="
rc=0
"$COMPARE" --basline-dir "$WORK/baselines" x.json 2>/dev/null || rc=$?
[ "$rc" -eq 2 ] || { echo "expected exit 2 for unknown flag" >&2; exit 1; }

echo "BENCH-COMPARE-OK"
