#!/bin/sh
# End-to-end gate for the grouping-engine bench: runs bench_micro_engine
# (google-benchmark bulk filtered down to one registration to keep the
# test fast), validates the BENCH json against dpnet.bench.v1, diffs it
# against the checked-in baseline with bench_compare, and replays the
# run's privacy event journal with `dpnet_cli audit verify` so
# journal == ledger == trace epsilon reconcile exactly.
#
# The wall-time band here is deliberately loose (100%): in-suite runs
# share the machine with the rest of ctest, so this test gates the
# *wiring* — schema, baseline coverage, exact accounting rows, journal
# chain — while the tight 50% performance band runs in the dedicated
# serial bench-regression CI job.
# Usage: test_micro_grouping.sh <bench_micro_engine> <bench_schema_check>
#        <bench_compare> <dpnet_cli> <baseline_dir>
set -eu

BENCH="$1"
CHECK="$2"
COMPARE="$3"
CLI="$4"
BASELINES="$5"
WORK="$(mktemp -d)"
trap 'rm -rf "$WORK"' EXIT
mkdir "$WORK/journal"

echo "== run bench =="
DPNET_BENCH_JSON_DIR="$WORK" DPNET_JOURNAL_DIR="$WORK/journal" \
  "$BENCH" --benchmark_filter=BM_LaplaceDraw > "$WORK/stdout.txt"
grep -q "grouping engine" "$WORK/stdout.txt"
test -f "$WORK/BENCH_bench_micro_engine.json"

echo "== schema + trace/ledger reconciliation =="
"$CHECK" "$WORK/BENCH_bench_micro_engine.json"

echo "== regression gate vs checked-in baseline =="
"$COMPARE" --time-threshold 1.0 --baseline-dir "$BASELINES" \
  "$WORK/BENCH_bench_micro_engine.json"

echo "== journal == ledger == trace =="
test -f "$WORK/journal/journal.jsonl"
"$CLI" audit verify "$WORK/journal/journal.jsonl" \
  --audit "$WORK/journal/ledger.json" \
  --trace "$WORK/journal/trace.json"

echo "MICRO-GROUPING-OK"
