#!/bin/sh
# End-to-end gate for the server bench: runs bench_serve, validates the
# BENCH json against dpnet.bench.v1, diffs it against the checked-in
# baseline with bench_compare, and replays the audited pass's privacy
# event journal with `dpnet_cli audit verify` so journal == ledger ==
# trace epsilon reconcile exactly.
#
# The wall-time band is deliberately loose (100%): in-suite runs share
# the machine with the rest of ctest, so this test gates the *wiring* —
# schema, baseline coverage, exact accounting rows, journal chain —
# while the tighter band runs in the serial bench-regression CI job.
# Usage: test_serve_bench.sh <bench_serve> <bench_schema_check>
#        <bench_compare> <dpnet_cli> <baseline_dir>
set -eu

BENCH="$1"
CHECK="$2"
COMPARE="$3"
CLI="$4"
BASELINES="$5"
WORK="$(mktemp -d)"
trap 'rm -rf "$WORK"' EXIT
mkdir "$WORK/journal"

echo "== run bench =="
DPNET_BENCH_JSON_DIR="$WORK" DPNET_JOURNAL_DIR="$WORK/journal" \
  "$BENCH" >"$WORK/stdout.txt"
grep -q "Mediated query server" "$WORK/stdout.txt"
test -f "$WORK/BENCH_bench_serve.json"

echo "== schema =="
"$CHECK" "$WORK/BENCH_bench_serve.json"

echo "== regression gate vs checked-in baseline =="
"$COMPARE" --time-threshold 1.0 --baseline-dir "$BASELINES" \
  "$WORK/BENCH_bench_serve.json"

echo "== journal == ledger == trace =="
test -f "$WORK/journal/journal.jsonl"
"$CLI" audit verify "$WORK/journal/journal.jsonl" \
  --audit "$WORK/journal/ledger.json" \
  --trace "$WORK/journal/trace.json"

echo "SERVE-BENCH-OK"
