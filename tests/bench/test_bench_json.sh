#!/bin/sh
# Runs the quickstart bench and validates the BENCH json it emits: schema
# dpnet.bench.v1, well-formed spans and ledger, and the trace-vs-audit
# epsilon reconciliation enforced by bench_schema_check.
# Usage: test_bench_json.sh <bench_quickstart_count> <bench_schema_check>
set -eu

BENCH="$1"
CHECK="$2"
WORK="$(mktemp -d)"
trap 'rm -rf "$WORK"' EXIT

echo "== run bench =="
DPNET_BENCH_JSON_DIR="$WORK" "$BENCH" > "$WORK/stdout.txt"
grep -q "bench json" "$WORK/stdout.txt"
test -f "$WORK/BENCH_bench_quickstart_count.json"

echo "== validate =="
"$CHECK" "$WORK/BENCH_bench_quickstart_count.json"

echo "== checker rejects corrupted reports =="
sed 's/dpnet.bench.v1/bogus.schema/' \
  "$WORK/BENCH_bench_quickstart_count.json" > "$WORK/bad_schema.json"
if "$CHECK" "$WORK/bad_schema.json" 2>/dev/null; then
  echo "expected bad schema to fail" >&2
  exit 1
fi

# Inflate the first span's eps_charged so the trace no longer matches the
# ledger (the document is one line, so an un-anchored s/// hits one span).
sed 's/"eps_charged":[0-9.e+-]*/"eps_charged":99/' \
  "$WORK/BENCH_bench_quickstart_count.json" > "$WORK/bad_eps.json"
if "$CHECK" "$WORK/bad_eps.json" 2>/dev/null; then
  echo "expected eps mismatch to fail" >&2
  exit 1
fi

echo "BENCH-JSON-OK"
