#!/bin/sh
# Runs the parallel-engine bench (which aborts on any noise divergence
# between thread counts) and validates its BENCH json: schema, the
# trace-vs-ledger epsilon reconciliation, and the parallelism telemetry
# fields "threads" / "speedup_vs_1thread".
# Usage: test_parallel_bench_json.sh <bench_parallel_engine> <bench_schema_check>
set -eu

BENCH="$1"
CHECK="$2"
WORK="$(mktemp -d)"
trap 'rm -rf "$WORK"' EXIT

echo "== run bench =="
DPNET_BENCH_JSON_DIR="$WORK" "$BENCH" > "$WORK/stdout.txt"
grep -q "byte-identical" "$WORK/stdout.txt"
JSON="$WORK/BENCH_bench_parallel_engine.json"
test -f "$JSON"

echo "== validate =="
"$CHECK" "$JSON"
grep -q '"threads":4' "$JSON"
grep -q '"speedup_vs_1thread":' "$JSON"

echo "== checker rejects a lone parallelism field =="
sed 's/"threads":4,//' "$JSON" > "$WORK/bad_pair.json"
if "$CHECK" "$WORK/bad_pair.json" 2>/dev/null; then
  echo "expected lone speedup_vs_1thread to fail" >&2
  exit 1
fi

echo "PARALLEL-BENCH-JSON-OK"
