// Corrupt-input corpus: every truncation boundary and every single-byte
// flip of a serialized trace container.  Strict reads must fail with a
// bounded TraceIoError (never crash, never spin, never read out of
// bounds — the suite runs under ASan in CI); quarantine reads must
// recover what is recoverable and stay bounded.
#include <gtest/gtest.h>

#include <algorithm>
#include <cstddef>
#include <cstdint>
#include <sstream>
#include <string>
#include <vector>

#include "core/metrics.hpp"
#include "net/trace_io.hpp"

namespace dpnet::net {
namespace {

// 14 bytes of container header: u32 magic, u16 version, u64 record count.
constexpr std::size_t kHeaderBytes = 14;

Packet tagged_packet(int i) {
  Packet p;
  p.timestamp = 0.25 * i;
  p.src_ip = Ipv4(10, 0, 0, static_cast<std::uint8_t>(i + 1));
  p.dst_ip = Ipv4(198, 18, 0, 1);
  p.src_port = static_cast<std::uint16_t>(1000 + i);
  p.dst_port = 80;
  p.protocol = kProtoTcp;
  p.flags = TcpFlags{.syn = i % 2 == 0, .ack = true};
  p.seq = static_cast<std::uint32_t>(100 * i);
  p.ack_no = static_cast<std::uint32_t>(7 * i);
  p.length = static_cast<std::uint16_t>(40 + i);
  p.payload = "pkt-" + std::to_string(i);
  return p;
}

std::vector<Packet> corpus_trace() {
  std::vector<Packet> trace;
  for (int i = 0; i < 20; ++i) trace.push_back(tagged_packet(i));
  return trace;
}

std::string serialized(const std::vector<Packet>& trace) {
  std::stringstream buffer;
  write_trace(buffer, trace);
  return buffer.str();
}

TEST(CorruptCorpus, EveryTruncationBoundaryFailsCleanlyInStrictMode) {
  const std::string full = serialized(corpus_trace());
  ASSERT_GT(full.size(), kHeaderBytes);
  for (std::size_t cut = 0; cut < full.size(); ++cut) {
    std::stringstream truncated(full.substr(0, cut));
    EXPECT_THROW(read_trace(truncated), TraceIoError) << "cut=" << cut;
  }
  // The untruncated container still reads back, of course.
  std::stringstream intact(full);
  EXPECT_EQ(read_trace(intact).size(), corpus_trace().size());
}

TEST(CorruptCorpus, EveryTruncationBoundaryIsBoundedInQuarantineMode) {
  const std::vector<Packet> trace = corpus_trace();
  const std::string full = serialized(trace);
  const TraceReadOptions quarantine{.quarantine = true};
  for (std::size_t cut = 0; cut < full.size(); ++cut) {
    std::stringstream truncated(full.substr(0, cut));
    if (cut < kHeaderBytes) {
      // No intact header: nothing to resync on; fail like strict mode.
      EXPECT_THROW(read_trace(truncated, quarantine), TraceIoError)
          << "cut=" << cut;
      continue;
    }
    // With a header, a truncated tail degrades to a strict prefix of the
    // original records — never garbage, never more than was written.
    const std::vector<Packet> got = read_trace(truncated, quarantine);
    ASSERT_LE(got.size(), trace.size()) << "cut=" << cut;
    for (std::size_t i = 0; i < got.size(); ++i) {
      EXPECT_EQ(got[i], trace[i]) << "cut=" << cut << " record " << i;
    }
  }
}

TEST(CorruptCorpus, EveryHeaderByteFlipIsAFormatError) {
  const std::string full = serialized(corpus_trace());
  for (std::size_t pos = 0; pos < kHeaderBytes; ++pos) {
    std::string bytes = full;
    bytes[pos] = static_cast<char>(bytes[pos] ^ 0xFF);
    std::stringstream corrupted(bytes);
    EXPECT_THROW(read_trace(corrupted), TraceFormatError) << "byte " << pos;
  }
}

TEST(CorruptCorpus, EveryBodyByteFlipIsDetectedInStrictMode) {
  const std::string full = serialized(corpus_trace());
  // Frame markers, lengths, checksums, and bodies: a single flipped byte
  // anywhere past the header must surface as a bounded error (the CRC
  // catches body flips; the marker and length checks catch the framing).
  for (std::size_t pos = kHeaderBytes; pos < full.size(); ++pos) {
    std::string bytes = full;
    bytes[pos] = static_cast<char>(bytes[pos] ^ 0xFF);
    std::stringstream corrupted(bytes);
    EXPECT_THROW(read_trace(corrupted), TraceIoError) << "byte " << pos;
  }
}

TEST(CorruptCorpus, EveryBodyByteFlipStaysBoundedInQuarantineMode) {
  const std::vector<Packet> trace = corpus_trace();
  const std::string full = serialized(trace);
  const TraceReadOptions quarantine{.quarantine = true};
  for (std::size_t pos = kHeaderBytes; pos < full.size(); ++pos) {
    std::string bytes = full;
    bytes[pos] = static_cast<char>(bytes[pos] ^ 0xFF);
    std::stringstream corrupted(bytes);
    // One flipped byte costs at most a couple of records; everything the
    // reader does return is a genuine record from the original trace.
    std::vector<Packet> got;
    try {
      got = read_trace(corrupted, quarantine);
    } catch (const TraceIoError&) {
      continue;  // bounded failure is acceptable; crashing is not
    }
    EXPECT_LE(got.size(), trace.size()) << "byte " << pos;
    EXPECT_GE(got.size(), trace.size() - 3) << "byte " << pos;
    for (const Packet& p : got) {
      EXPECT_NE(std::find(trace.begin(), trace.end(), p), trace.end())
          << "fabricated record at byte " << pos;
    }
  }
}

TEST(CorruptCorpus, QuarantinedRecordsAreCountedInTheMetric) {
  std::string bytes = serialized(corpus_trace());
  const std::size_t pos = bytes.find("pkt-7");
  ASSERT_NE(pos, std::string::npos);
  bytes[pos] ^= 0x40;
  const std::uint64_t before =
      core::builtin_metrics::records_quarantined().value();
  std::stringstream corrupted(bytes);
  const auto got = read_trace(corrupted, TraceReadOptions{.quarantine = true});
  EXPECT_EQ(got.size(), corpus_trace().size() - 1);
  EXPECT_EQ(core::builtin_metrics::records_quarantined().value(), before + 1);
}

TEST(CorruptCorpus, GarbageBuffersAreRejectedWithoutCrashing) {
  const std::vector<std::string> garbage = {
      std::string(),                      // empty
      std::string(1, '\x00'),             // single byte
      std::string(4096, '\x00'),          // all zeros
      std::string(4096, '\xFF'),          // all ones
      std::string(4096, '\x5A'),          // marker-low-byte spam
      [] {                                // marker spam after no header
        std::string s;
        for (int i = 0; i < 2048; ++i) s += "\x5A\xA5";
        return s;
      }(),
  };
  for (std::size_t i = 0; i < garbage.size(); ++i) {
    std::stringstream in(garbage[i]);
    EXPECT_THROW(read_trace(in), TraceIoError) << "buffer " << i;
    std::stringstream in_q(garbage[i]);
    EXPECT_THROW(read_trace(in_q, TraceReadOptions{.quarantine = true}),
                 TraceIoError)
        << "buffer " << i;
  }
}

// A forged header announcing far more records than the stream holds must
// fail on truncation, not allocate for the announced count.
TEST(CorruptCorpus, HugeAnnouncedCountDoesNotPreallocate) {
  std::string bytes = serialized({tagged_packet(0)});
  // Patch the u64 record count (bytes 6..13) to a preposterous value.
  for (std::size_t i = 6; i < kHeaderBytes; ++i) {
    bytes[i] = static_cast<char>(0xFF);
  }
  std::stringstream forged(bytes);
  EXPECT_THROW(read_trace(forged), TraceIoError);
}

}  // namespace
}  // namespace dpnet::net
