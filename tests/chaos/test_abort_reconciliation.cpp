// Fault/ledger reconciliation: after any injected fault — an analyst UDF
// throw, a worker fault, an aborted or refused release — the books must
// balance exactly.  The budget's spent(), the audit ledger, and the trace
// spans all tell the same story, at any thread count.
//
// All epsilons in this file are dyadic rationals (0.5, 0.25, 0.125) so
// every sum below is exact in binary floating point and the assertions
// can demand bitwise equality, not tolerances.
#include <gtest/gtest.h>

#include <algorithm>
#include <atomic>
#include <functional>
#include <map>
#include <memory>
#include <numeric>
#include <stdexcept>
#include <string>
#include <string_view>
#include <tuple>
#include <vector>

#include "core/audit.hpp"
#include "core/exec/executor.hpp"
#include "core/failpoint.hpp"
#include "core/guard.hpp"
#include "core/queryable.hpp"
#include "core/trace.hpp"

namespace dpnet::core {
namespace {

constexpr int kParts = 24;

std::vector<int> many_values() {
  std::vector<int> v(600);
  std::iota(v.begin(), v.end(), 0);
  return v;
}

double ledger_sum(const std::vector<AuditingBudget::Entry>& entries) {
  double s = 0.0;
  for (const auto& e : entries) s += e.eps;
  return s;
}

/// The exact-reconciliation invariant for direct (non-partition) budgets:
/// every epsilon the trace says was released is in the ledger, and the
/// ledger sums to precisely what the accountant consumed.
void expect_reconciled(const AuditingBudget& audit, const QueryTrace& trace) {
  EXPECT_DOUBLE_EQ(ledger_sum(audit.canonical_entries()), audit.spent());
  EXPECT_DOUBLE_EQ(trace.total_eps_charged(), audit.spent());
}

/// Sums eps_charged per span detail tag ("partition[k]" for part
/// releases), so partitioned charges can be reconciled against the
/// max-cost rule.
void sum_eps_by_detail(const TraceSpan& span,
                       std::map<std::string, double>& by_detail) {
  if (span.eps_charged > 0.0 && !span.detail.empty()) {
    by_detail[span.detail] += span.eps_charged;
  }
  for (const TraceSpan& child : span.children) {
    sum_eps_by_detail(child, by_detail);
  }
}

// A deterministic branch fault (record 137 lives in partition bucket
// 137 % 24 = 17, regardless of schedule) aborts exactly one branch; the
// other 23 complete.  The source budget must reflect the max-cost rule
// over the *surviving* branches, the ledger must sum to it, and the trace
// must show the faulted branch released nothing — at every thread count.
TEST(Reconciliation, FaultedPartitionBranchBalancesAtAnyThreadCount) {
  for (const std::size_t threads :
       {std::size_t{1}, std::size_t{4}, std::size_t{8}}) {
    auto audit =
        std::make_shared<AuditingBudget>(std::make_shared<RootBudget>(1e6));
    Queryable<int> q(many_values(), audit, std::make_shared<NoiseSource>(17));
    std::vector<int> keys(kParts);
    std::iota(keys.begin(), keys.end(), 0);
    QueryTrace trace;
    {
      TraceSession session(trace);
      auto parts = q.partition(keys, [](int x) { return x % kParts; });
      EXPECT_THROW(
          std::ignore = exec::map_parts(
              exec::ExecPolicy{threads}, keys, parts,
              [](int, const Queryable<int>& part) {
                const double count =
                    part.where([](int x) {
                          if (x == 137) {
                            throw std::runtime_error("poisoned record");
                          }
                          return x % 5 != 0;
                        })
                        .noisy_count(0.25);
                const double sum = part.noisy_sum(
                    0.25, [](int x) { return (x % 2 == 0) ? 1.0 : -1.0; });
                return count + sum;
              }),
          AnalystCodeError);
    }
    // Ledger vs accountant: exact at any schedule.
    EXPECT_DOUBLE_EQ(ledger_sum(audit->canonical_entries()), audit->spent())
        << "threads=" << threads;
    // Max-cost rule over surviving branches: 23 parts released
    // 0.25 + 0.25 each, the faulted one nothing.
    EXPECT_DOUBLE_EQ(audit->spent(), 0.5) << "threads=" << threads;
    std::map<std::string, double> by_part;
    for (const TraceSpan& root : trace.roots()) {
      sum_eps_by_detail(root, by_part);
    }
    EXPECT_EQ(by_part.size(), static_cast<std::size_t>(kParts - 1));
    EXPECT_EQ(by_part.count("partition[17]"), 0u) << "faulted branch charged";
    double max_part = 0.0;
    for (const auto& [detail, eps] : by_part) {
      EXPECT_DOUBLE_EQ(eps, 0.5) << detail;
      max_part = std::max(max_part, eps);
    }
    EXPECT_DOUBLE_EQ(max_part, audit->spent()) << "threads=" << threads;
  }
}

// Independent branches over one shared accountant, one branch faulting
// deterministically: the canonical ledger (node id, eps) must be
// identical between the sequential and parallel schedules.
TEST(Reconciliation, ParallelFaultLedgerMatchesSequential) {
  auto run = [](std::size_t threads) {
    auto audit =
        std::make_shared<AuditingBudget>(std::make_shared<RootBudget>(1e6));
    std::vector<Queryable<int>> branches;
    for (std::uint64_t i = 0; i < 8; ++i) {
      branches.push_back(Queryable<int>(
          many_values(), audit, std::make_shared<NoiseSource>(100 + i)));
    }
    std::vector<std::function<void()>> tasks;
    for (std::size_t i = 0; i < branches.size(); ++i) {
      tasks.push_back([&branches, i] {
        if (i == 3) {
          std::ignore = branches[i]
                            .where([](int) -> bool {
                              throw std::runtime_error("branch fault");
                            })
                            .noisy_count(0.5);
        } else {
          std::ignore = branches[i].noisy_count(
              0.125 * static_cast<double>(i + 1));
        }
      });
    }
    EXPECT_THROW(exec::Executor(exec::ExecPolicy{threads}).run(std::move(tasks)),
                 AnalystCodeError);
    return audit;
  };
  const auto sequential = run(1);
  const auto parallel = run(8);
  EXPECT_DOUBLE_EQ(parallel->spent(), sequential->spent());
  const auto seq_entries = sequential->canonical_entries();
  const auto par_entries = parallel->canonical_entries();
  ASSERT_EQ(par_entries.size(), seq_entries.size());
  for (std::size_t i = 0; i < seq_entries.size(); ++i) {
    EXPECT_EQ(par_entries[i].node_id, seq_entries[i].node_id) << "entry " << i;
    EXPECT_DOUBLE_EQ(par_entries[i].eps, seq_entries[i].eps) << "entry " << i;
  }
}

// Injects a materialization fault into every operator type in turn; each
// time, the charge that preceded the fault stays on the books, the fault
// itself charges nothing, and ledger == trace == spent exactly.
TEST(Reconciliation, FaultAtEveryNodeTypeReconciles) {
  const std::vector<std::string> ops = {
      "where",  "select",    "select_many", "distinct",  "group_by",
      "group_by_spans", "join", "concat",   "set_union", "except",
      "intersect"};
  auto force = [](const std::string& op, Queryable<int>& base,
                  Queryable<int>& other) -> double {
    if (op == "where") {
      return base.where([](int) { return true; }).noisy_count(0.25);
    }
    if (op == "select") {
      return base.select([](const int& x) { return x; }).noisy_count(0.25);
    }
    if (op == "select_many") {
      return base.select_many(
                     [](const int& x) { return std::vector<int>{x}; }, 1)
          .noisy_count(0.25);
    }
    if (op == "distinct") return base.distinct().noisy_count(0.25);
    if (op == "group_by") {
      return base.group_by([](const int& x) { return x % 3; })
          .noisy_count(0.25);
    }
    if (op == "group_by_spans") {
      return base.group_by_spans([](const int& x) { return x % 3; },
                                 [](const int&) { return false; })
          .noisy_count(0.25);
    }
    if (op == "join") {
      return base.join(other, [](const int& x) { return x; },
                       [](const int& y) { return y; },
                       [](const int& x, const int&) { return x; })
          .noisy_count(0.25);
    }
    if (op == "concat") return base.concat(other).noisy_count(0.25);
    if (op == "set_union") return base.set_union(other).noisy_count(0.25);
    if (op == "except") return base.except(other).noisy_count(0.25);
    return base.intersect(other).noisy_count(0.25);
  };
  for (const std::string& op : ops) {
    auto audit =
        std::make_shared<AuditingBudget>(std::make_shared<RootBudget>(1e6));
    Queryable<int> base({1, 2, 3, 4, 5, 6}, audit,
                        std::make_shared<NoiseSource>(41));
    Queryable<int> other({4, 5, 6, 7, 8, 9}, audit,
                         std::make_shared<NoiseSource>(42));
    QueryTrace trace;
    {
      TraceSession session(trace);
      std::ignore = base.noisy_count(0.5);  // a successful charge first
      failpoint::ScopedFailpoint fp(
          "plan.materialize", [&op](std::string_view detail) {
            if (detail == op) throw std::runtime_error("injected");
          });
      EXPECT_THROW(std::ignore = force(op, base, other), AnalystCodeError)
          << op;
    }
    expect_reconciled(*audit, trace);
    EXPECT_DOUBLE_EQ(audit->spent(), 0.5) << op;
  }
}

// A worker-level fault (exec.worker_task failpoint) kills exactly one
// task; the executor still drains the rest, so the surviving releases are
// all on the books.  With equal per-task epsilons the total is
// schedule-independent even though *which* task faults is not.
TEST(Reconciliation, InjectedWorkerFaultStillDrainsAllOtherTasks) {
  for (const std::size_t threads : {std::size_t{1}, std::size_t{4}}) {
    auto audit =
        std::make_shared<AuditingBudget>(std::make_shared<RootBudget>(1e6));
    std::vector<Queryable<int>> branches;
    for (std::uint64_t i = 0; i < 8; ++i) {
      branches.push_back(Queryable<int>(
          many_values(), audit, std::make_shared<NoiseSource>(200 + i)));
    }
    std::vector<std::function<void()>> tasks;
    for (std::size_t i = 0; i < branches.size(); ++i) {
      tasks.push_back(
          [&branches, i] { std::ignore = branches[i].noisy_count(0.125); });
    }
    std::atomic<int> hits{0};
    failpoint::ScopedFailpoint fp(
        "exec.worker_task", [&hits](std::string_view) {
          if (hits.fetch_add(1) == 0) {
            throw std::runtime_error("injected worker fault");
          }
        });
    EXPECT_THROW(
        exec::Executor(exec::ExecPolicy{threads}).run(std::move(tasks)),
        std::runtime_error);
    EXPECT_DOUBLE_EQ(audit->spent(), 0.875) << "threads=" << threads;
    EXPECT_DOUBLE_EQ(ledger_sum(audit->canonical_entries()), audit->spent());
  }
}

// Guard aborts and budget refusals interleaved with successful releases:
// only the successes appear anywhere — accountant, ledger, and trace all
// agree, and the aborted/refused spans carry zero charged epsilon.
TEST(Reconciliation, AbortedAndRefusedReleasesLeaveBalancedBooks) {
  auto audit =
      std::make_shared<AuditingBudget>(std::make_shared<RootBudget>(1.0));
  Queryable<int> q(many_values(), audit, std::make_shared<NoiseSource>(51));
  QueryTrace trace;
  {
    TraceSession session(trace);
    EXPECT_NO_THROW(std::ignore = q.noisy_count(0.5));
    {
      // Work quota trips while materializing the filter: aborted before
      // any charge.
      QueryGuard guard(QueryGuard::Options{.max_total_rows = 10});
      GuardScope scope(guard);
      EXPECT_THROW(std::ignore = q.where([](int x) { return x > 0; })
                                     .noisy_count(0.25),
                   QueryAbortedError);
    }
    // 0.5 + 0.75 > 1.0: refused, charging nothing.
    EXPECT_THROW(std::ignore = q.noisy_count(0.75), BudgetExhaustedError);
    // The headroom is intact, so this exact-fit release still lands.
    EXPECT_NO_THROW(std::ignore = q.noisy_count(0.5));
  }
  EXPECT_DOUBLE_EQ(audit->spent(), 1.0);
  expect_reconciled(*audit, trace);
}

// A fault injected *inside* the release path, between the guard
// checkpoint and the charge: the charge-before-release invariant says
// nothing may have been committed.
TEST(Reconciliation, FaultInsideReleasePathChargesNothing) {
  auto audit =
      std::make_shared<AuditingBudget>(std::make_shared<RootBudget>(1e6));
  Queryable<int> q(many_values(), audit, std::make_shared<NoiseSource>(61));
  QueryTrace trace;
  {
    TraceSession session(trace);
    EXPECT_NO_THROW(std::ignore = q.noisy_count(0.5));
    failpoint::ScopedFailpoint fp(
        "core.release.charge", [](std::string_view mechanism) {
          EXPECT_EQ(mechanism, "laplace");
          throw BudgetExhaustedError("injected refusal");
        });
    EXPECT_THROW(std::ignore = q.noisy_count(0.25), BudgetExhaustedError);
  }
  EXPECT_DOUBLE_EQ(audit->spent(), 0.5);
  expect_reconciled(*audit, trace);
  // The refused release's span is visible and marked, with zero charge.
  bool saw_refused = false;
  std::function<void(const TraceSpan&)> walk = [&](const TraceSpan& s) {
    if (s.op == "noisy_count" && s.detail == "refused") {
      saw_refused = true;
      EXPECT_DOUBLE_EQ(s.eps_charged, 0.0);
    }
    for (const TraceSpan& c : s.children) walk(c);
  };
  for (const TraceSpan& root : trace.roots()) walk(root);
  EXPECT_TRUE(saw_refused);
}

}  // namespace
}  // namespace dpnet::core
