// Server chaos: the mediated query server must survive hostile wire
// input, degrade through its documented ladder (admit -> queue ->
// backpressure -> shed -> abort), charge nothing for aborted releases,
// and keep all four books — budget, ledger, journal, trace — in exact
// agreement at any thread count (docs/robustness.md, "The server
// degradation ladder").
//
// All epsilons are dyadic rationals (multiples of 0.125) so sums are
// exact in binary floating point and the assertions demand equality.
#include <gtest/gtest.h>

#include <chrono>
#include <condition_variable>
#include <map>
#include <mutex>
#include <string>
#include <string_view>
#include <thread>
#include <vector>

#include "core/errors.hpp"
#include "core/failpoint.hpp"
#include "core/json.hpp"
#include "core/metrics.hpp"
#include "core/obs/journal.hpp"
#include "net/packet.hpp"
#include "serve/protocol.hpp"
#include "serve/server.hpp"

namespace dpnet::serve {
namespace {

// A small trace with payloads that must NEVER appear in any response or
// artifact — the canary for the telemetry privacy stance.
constexpr const char* kCanary = "payload-canary-3f2a";

std::vector<net::Packet> canary_trace() {
  std::vector<net::Packet> trace(64);
  for (std::size_t i = 0; i < trace.size(); ++i) {
    net::Packet& p = trace[i];
    p.timestamp = static_cast<double>(i) * 0.001;
    p.protocol = (i % 2 == 0) ? net::kProtoTcp : net::kProtoUdp;
    p.src_port = static_cast<std::uint16_t>(1024 + i);
    p.dst_port = (i % 4 == 0) ? 80 : 443;
    p.length = 64;
    p.payload = kCanary;
  }
  return trace;
}

/// Collects responses from worker threads, keyed by frame id.
struct ResponseLog {
  std::mutex mu;
  std::vector<std::string> lines;

  QueryServer::ResponseSink sink() {
    return [this](const std::string& line) {
      const std::lock_guard<std::mutex> lock(mu);
      lines.push_back(line);
    };
  }

  [[nodiscard]] std::map<std::uint64_t, std::string> by_id() {
    const std::lock_guard<std::mutex> lock(mu);
    std::map<std::uint64_t, std::string> out;
    for (const std::string& line : lines) {
      const core::JsonValue doc = core::parse_json(line);
      out[static_cast<std::uint64_t>(doc.find("id")->number)] = line;
    }
    return out;
  }

  [[nodiscard]] std::size_t size() {
    const std::lock_guard<std::mutex> lock(mu);
    return lines.size();
  }
};

std::string error_code(const std::string& line) {
  const core::JsonValue doc = core::parse_json(line);
  const core::JsonValue* status = doc.find("status");
  if (status == nullptr || status->string != "error") return "";
  return doc.find("error")->string;
}

std::string request_line(std::uint64_t id, const std::string& analyst,
                         const std::string& query, double eps) {
  core::JsonWriter w;
  w.begin_object();
  w.key("id").value(id);
  w.key("analyst").value(analyst);
  w.key("query").value(query);
  w.key("eps").value(eps);
  w.end_object();
  return w.str();
}

// --- hostile wire input --------------------------------------------------

// Every truncation of a valid frame at every byte boundary, every
// single-byte flip, an oversized frame, and byte garbage: each gets
// exactly one sanitized error-or-ok response, no response ever carries
// record contents, and the server keeps serving afterwards.
TEST(ServeRobustness, CorruptFrameCorpusGetsSanitizedAnswers) {
  ServerConfig cfg;
  cfg.dataset_budget = 1024.0;
  cfg.analyst_cap = 1024.0;
  cfg.threads = 2;
  cfg.max_sessions = 4096;  // flipped analyst bytes mint new principals
  QueryServer server(canary_trace(), cfg);

  const std::string valid = request_line(7, "alice", "count", 0.125);
  std::vector<std::string> corpus;
  for (std::size_t cut = 0; cut < valid.size(); ++cut) {
    corpus.push_back(valid.substr(0, cut));  // truncation at every boundary
  }
  for (std::size_t i = 0; i < valid.size(); ++i) {
    std::string flipped = valid;
    flipped[i] = static_cast<char>(flipped[i] ^ 0x20);  // single-byte flip
    corpus.push_back(flipped);
  }
  // Oversized frame: structurally fine JSON past the frame ceiling.
  std::string oversized = "{\"id\":1,\"analyst\":\"alice\",\"query\":\"";
  oversized.append(protocol::kMaxFrameBytes, 'x');
  oversized += "\",\"eps\":0.125}";
  corpus.push_back(oversized);
  corpus.emplace_back("\x01\x02\xff\xfe binary garbage");
  corpus.emplace_back("[1,2,3]");                      // not an object
  corpus.emplace_back("{\"analyst\":\"alice\"}");      // missing fields
  corpus.emplace_back(
      "{\"id\":1,\"analyst\":\"../etc\",\"query\":\"count\",\"eps\":1}");

  for (const std::string& frame : corpus) {
    ResponseLog log;
    server.submit_frame(frame, log.sink());
    server.drain();
    ASSERT_EQ(log.size(), 1u) << "frame: " << frame.substr(0, 60);
    const std::string& response = log.lines.front();
    EXPECT_EQ(response.find(kCanary), std::string::npos)
        << "record contents leaked into a response";
    // The response parses, and an error response names only a taxonomy
    // code (never free-form exception text).
    const core::JsonValue doc = core::parse_json(response);
    ASSERT_NE(doc.find("status"), nullptr);
  }
  EXPECT_EQ(
      error_code(
          [&] {
            ResponseLog log;
            server.submit_frame(oversized, log.sink());
            server.drain();
            return log.lines.front();
          }()),
      "invalid-query");

  // Still serving: a well-formed request after the whole corpus works.
  ResponseLog log;
  server.submit_frame(valid, log.sink());
  server.drain();
  ASSERT_EQ(log.size(), 1u);
  EXPECT_NE(log.lines.front().find("\"status\":\"ok\""), std::string::npos);
}

// --- the degradation ladder ----------------------------------------------

// With dispatch blocked, the per-analyst FIFO fills to "backpressure"
// and the server-wide queue fills to "overloaded" (shed); both refusals
// are counted, charge nothing, and every *admitted* request is answered
// once dispatch resumes.
TEST(ServeRobustness, BackpressureThenShedThenRecovers) {
  ServerConfig cfg;
  cfg.dataset_budget = 64.0;
  cfg.analyst_cap = 8.0;
  cfg.threads = 1;
  cfg.queue_capacity = 4;
  cfg.analyst_queue_capacity = 2;
  QueryServer server(canary_trace(), cfg);

  std::mutex gate_mu;
  std::condition_variable gate_cv;
  bool entered = false;
  bool released = false;
  core::failpoint::ScopedFailpoint block_dispatch(
      "serve.dispatch", [&](std::string_view) {
        std::unique_lock<std::mutex> lock(gate_mu);
        entered = true;
        gate_cv.notify_all();
        gate_cv.wait(lock, [&] { return released; });
      });

  const std::uint64_t rejected_before =
      core::builtin_metrics::serve_requests_rejected().value();
  const std::uint64_t shed_before =
      core::builtin_metrics::serve_requests_shed().value();

  ResponseLog log;
  std::uint64_t id = 0;
  // Request 1 is dequeued and blocks inside serve.dispatch (wait for it
  // to get there), so it occupies no queue slot; alice may then queue 2
  // more.
  server.submit_frame(request_line(++id, "alice", "count", 0.125),
                      log.sink());
  {
    std::unique_lock<std::mutex> lock(gate_mu);
    gate_cv.wait(lock, [&] { return entered; });
  }
  server.submit_frame(request_line(++id, "alice", "count", 0.125),
                      log.sink());
  server.submit_frame(request_line(++id, "alice", "count", 0.125),
                      log.sink());
  // Alice's FIFO (capacity 2) is full: backpressure, answered inline.
  server.submit_frame(request_line(++id, "alice", "count", 0.125),
                      log.sink());
  EXPECT_EQ(error_code(log.by_id().at(id)), "backpressure");
  // Other analysts fill the server-wide queue (capacity 4: alice's 2 +
  // these 2)...
  server.submit_frame(request_line(++id, "bob", "count", 0.125),
                      log.sink());
  server.submit_frame(request_line(++id, "carol", "count", 0.125),
                      log.sink());
  // ...so the next arrival anywhere is shed.
  server.submit_frame(request_line(++id, "dave", "count", 0.125),
                      log.sink());
  EXPECT_EQ(error_code(log.by_id().at(id)), "overloaded");

  EXPECT_EQ(core::builtin_metrics::serve_requests_rejected().value(),
            rejected_before + 1);
  EXPECT_EQ(core::builtin_metrics::serve_requests_shed().value(),
            shed_before + 1);

  {
    const std::lock_guard<std::mutex> lock(gate_mu);
    released = true;
  }
  gate_cv.notify_all();
  server.drain();

  // All 7 frames answered exactly once; the 5 admitted ones are ok.
  const auto by_id = log.by_id();
  ASSERT_EQ(by_id.size(), 7u);
  std::size_t ok = 0;
  for (const auto& [frame_id, line] : by_id) {
    if (line.find("\"status\":\"ok\"") != std::string::npos) ++ok;
  }
  EXPECT_EQ(ok, 5u);
  // Refused admissions charged nothing: 5 admitted * 0.125 each.
  EXPECT_DOUBLE_EQ(server.dataset_spent(), 0.625);
}

// --- aborted releases charge nothing -------------------------------------

// A request killed mid-query (abort injected at the release/charge
// boundary) answers "aborted:cancelled" and charges nothing, while the
// charges of earlier and later releases stand untouched — the server-side
// face of the charge-before-release invariant.
TEST(ServeRobustness, AbortedReleaseChargesNothingEarlierChargesStand) {
  ServerConfig cfg;
  cfg.dataset_budget = 8.0;
  cfg.analyst_cap = 2.0;
  cfg.threads = 4;
  QueryServer server(canary_trace(), cfg);

  ResponseLog log;
  server.submit_frame(request_line(1, "alice", "count", 0.25), log.sink());
  server.drain();
  EXPECT_DOUBLE_EQ(server.analyst_spent("alice"), 0.25);

  {
    core::failpoint::ScopedFailpoint kill(
        "core.release.charge", [](std::string_view) {
          throw core::QueryAbortedError(core::AbortReason::kCancelled,
                                        "injected mid-query kill", 0);
        });
    server.submit_frame(request_line(2, "alice", "count", 0.5), log.sink());
    server.drain();
  }
  EXPECT_EQ(error_code(log.by_id().at(2)), "aborted:cancelled");
  // The aborted release charged nothing...
  EXPECT_DOUBLE_EQ(server.analyst_spent("alice"), 0.25);

  server.submit_frame(request_line(3, "alice", "count", 0.125), log.sink());
  server.drain();
  // ...and the books pick up exactly where they left off.
  EXPECT_DOUBLE_EQ(server.analyst_spent("alice"), 0.375);
  const core::obs::JournalVerification v = core::obs::verify_journal_text(
      core::obs::EventJournal::global().to_jsonl(true));
  ASSERT_TRUE(v.ok) << v.error;
  EXPECT_EQ(v.charges, 2u);
  // The injected kill fired the armed failpoint once; the guard itself
  // never tripped, so no abort event — the journal still shows exactly
  // which release died and that it charged nothing.
  EXPECT_EQ(v.faults, 1u);
  EXPECT_EQ(v.aborts, 0u);
  EXPECT_DOUBLE_EQ(v.charged_eps, 0.375);
}

// --- multi-analyst reconciliation at 1/4/8 threads -----------------------

struct WorkloadResult {
  std::map<std::uint64_t, std::string> responses;
  std::string jsonl;       // canonical journal flush
  std::string ledger_json;
  double dataset_spent = 0.0;
};

double ledger_sum(const std::string& ledger_json) {
  const core::JsonValue doc = core::parse_json(ledger_json);
  double sum = 0.0;
  for (const core::JsonValue& e : doc.find("entries")->array) {
    sum += e.find("eps")->number;
  }
  return sum;
}

double trace_sum(const core::JsonValue& span) {
  double total = 0.0;
  if (const core::JsonValue* eps = span.find("eps_charged");
      eps != nullptr && eps->is_number()) {
    total += eps->number;
  }
  if (const core::JsonValue* children = span.find("children");
      children != nullptr) {
    for (const core::JsonValue& child : children->array) {
      total += trace_sum(child);
    }
  }
  return total;
}

double trace_sum_json(const std::string& trace_json) {
  const core::JsonValue doc = core::parse_json(trace_json);
  double total = 0.0;
  for (const core::JsonValue& span : doc.find("spans")->array) {
    total += trace_sum(span);
  }
  return total;
}

/// Three analysts, interleaved queries, one genuine per-analyst cap
/// refusal, one exact-fit release.  Per-analyst sequences are fixed, so
/// responses must be byte-identical at any thread count.
WorkloadResult run_workload(std::size_t threads) {
  ServerConfig cfg;
  cfg.dataset_budget = 4.0;
  cfg.analyst_cap = 1.0;
  cfg.threads = threads;
  QueryServer server(canary_trace(), cfg);

  ResponseLog log;
  std::uint64_t id = 0;
  const std::vector<std::string> analysts = {"alice", "bob", "carol"};
  // Each analyst: 0.5 + 0.375 spent, a 0.25 attempt refused at the 1.0
  // cap (0.875 + 0.25 > 1), then 0.125 fits exactly.
  for (const double eps : {0.5, 0.375, 0.25, 0.125}) {
    for (const std::string& analyst : analysts) {
      const std::string query =
          eps == 0.375 ? "count-tcp" : (eps == 0.125 ? "count-udp" : "count");
      server.submit_frame(request_line(++id, analyst, query, eps),
                          log.sink());
    }
  }
  server.drain();

  WorkloadResult r;
  r.responses = log.by_id();
  r.jsonl = core::obs::EventJournal::global().to_jsonl(true);
  r.ledger_json = server.ledger_json();
  r.dataset_spent = server.dataset_spent();

  // Trace reconciliation while the server is alive: recovery spans plus
  // one root span per executed request.
  const double trace_eps = trace_sum_json(server.trace_json());
  EXPECT_DOUBLE_EQ(trace_eps, r.dataset_spent) << "threads=" << threads;
  return r;
}

TEST(ServeRobustness, MultiAnalystBooksReconcileAcrossThreadCounts) {
  const WorkloadResult sequential = run_workload(1);
  // 3 analysts * (0.5 + 0.375 + 0.125) spent, the 0.25 attempts refused.
  EXPECT_DOUBLE_EQ(sequential.dataset_spent, 3.0);
  const core::obs::JournalVerification v =
      core::obs::verify_journal_text(sequential.jsonl);
  ASSERT_TRUE(v.ok) << v.error;
  EXPECT_EQ(v.charges, 9u);
  EXPECT_EQ(v.refusals, 3u);
  EXPECT_DOUBLE_EQ(v.charged_eps, 3.0);
  EXPECT_DOUBLE_EQ(v.refused_eps, 0.75);
  for (const std::string analyst : {"alice", "bob", "carol"}) {
    EXPECT_DOUBLE_EQ(v.charged_eps_by_label.at(analyst), 1.0);
  }
  EXPECT_DOUBLE_EQ(ledger_sum(sequential.ledger_json), v.charged_eps);
  EXPECT_EQ(sequential.jsonl.find("payload-canary"), std::string::npos);

  for (const std::size_t threads : {std::size_t{4}, std::size_t{8}}) {
    const WorkloadResult parallel = run_workload(threads);
    // Byte-identical responses: per-analyst serial dispatch keeps plan
    // derivations and release ordinals in request order, so the noise is
    // the same at any thread count.
    EXPECT_EQ(parallel.responses, sequential.responses)
        << "threads=" << threads;
    // Byte-identical canonical journal and ledger, same as the engine's
    // determinism contract.
    EXPECT_EQ(parallel.jsonl, sequential.jsonl) << "threads=" << threads;
    EXPECT_EQ(parallel.ledger_json, sequential.ledger_json);
  }
}

// --- injected dispatch/write faults --------------------------------------

// An injected fault at serve.dispatch answers "internal" (sanitized, no
// failpoint text) and the server keeps serving; an injected fault at
// serve.session.write drops the response but the charge stands.
TEST(ServeRobustness, DispatchAndWriteFaultsDegradeCleanly) {
  ServerConfig cfg;
  cfg.dataset_budget = 8.0;
  cfg.analyst_cap = 4.0;
  QueryServer server(canary_trace(), cfg);

  ResponseLog log;
  {
    core::failpoint::ScopedFailpoint fp(
        "serve.dispatch",
        [](std::string_view) { throw std::runtime_error(kCanary); });
    server.submit_frame(request_line(1, "alice", "count", 0.25), log.sink());
    server.drain();
  }
  ASSERT_EQ(log.size(), 1u);
  EXPECT_EQ(error_code(log.lines.front()), "internal");
  EXPECT_EQ(log.lines.front().find(kCanary), std::string::npos)
      << "injected exception text crossed the privacy boundary";
  EXPECT_DOUBLE_EQ(server.analyst_spent("alice"), 0.0);

  {
    core::failpoint::ScopedFailpoint fp(
        "serve.session.write",
        [](std::string_view) { throw std::runtime_error("broken pipe"); });
    server.submit_frame(request_line(2, "alice", "count", 0.25), log.sink());
    server.drain();
  }
  // The response was dropped on the floor...
  EXPECT_EQ(log.size(), 1u);
  // ...but the charge stands (charged epsilon is never refunded).
  EXPECT_DOUBLE_EQ(server.analyst_spent("alice"), 0.25);

  server.submit_frame(request_line(3, "alice", "count", 0.25), log.sink());
  server.drain();
  EXPECT_EQ(log.size(), 2u);
  EXPECT_NE(log.by_id().at(3).find("\"status\":\"ok\""), std::string::npos);
  EXPECT_DOUBLE_EQ(server.analyst_spent("alice"), 0.5);
}

// --- hostile numeric wire fields -----------------------------------------

// Every integral wire field is bounded BEFORE its double -> uint64 cast:
// a hostile {"id":1e300} (or deadline_ms/port) must be a sanitized
// refusal, never undefined behavior on the cast (the repo gates on
// UBSan).
TEST(ServeRobustness, HostileNumericFieldsAreBoundedBeforeCast) {
  EXPECT_THROW(
      protocol::parse_request(
          "{\"id\":1e300,\"analyst\":\"a\",\"query\":\"count\",\"eps\":1}"),
      core::InvalidQueryError);
  EXPECT_THROW(protocol::parse_request(
                   "{\"id\":1,\"analyst\":\"a\",\"query\":\"count\","
                   "\"eps\":1,\"deadline_ms\":1e300}"),
               core::InvalidQueryError);
  // deadline_ms has a field max (one day) so the server's chrono
  // arithmetic stays far from overflow.
  EXPECT_THROW(protocol::parse_request(
                   "{\"id\":1,\"analyst\":\"a\",\"query\":\"count\","
                   "\"eps\":1,\"deadline_ms\":86400001}"),
               core::InvalidQueryError);
  EXPECT_THROW(protocol::parse_request(
                   "{\"id\":1,\"analyst\":\"a\",\"query\":\"count\","
                   "\"eps\":1,\"port\":70000}"),
               core::InvalidQueryError);
  // 2^53 — the largest exactly-representable JSON integer — is the
  // inclusive ceiling for unconstrained fields like id; 2^54 is out.
  EXPECT_EQ(protocol::parse_request(
                "{\"id\":9007199254740992,\"analyst\":\"a\","
                "\"query\":\"count\",\"eps\":1}")
                .id,
            std::uint64_t{1} << 53);
  EXPECT_THROW(protocol::parse_request(
                   "{\"id\":18014398509481984,\"analyst\":\"a\","
                   "\"query\":\"count\",\"eps\":1}"),
               core::InvalidQueryError);

  // On the wire the refusal is a sanitized invalid-query (the bogus id
  // is not recoverable, so it echoes as 0) and the server keeps serving.
  QueryServer server(canary_trace(), ServerConfig{});
  ResponseLog log;
  server.submit_frame(
      "{\"id\":1e300,\"analyst\":\"alice\",\"query\":\"count\",\"eps\":1}",
      log.sink());
  server.drain();
  ASSERT_EQ(log.size(), 1u);
  EXPECT_EQ(error_code(log.lines.front()), "invalid-query");
  server.submit_frame(request_line(2, "alice", "count", 0.125), log.sink());
  server.drain();
  EXPECT_NE(log.by_id().at(2).find("\"status\":\"ok\""), std::string::npos);
}

// --- journal ring headroom ------------------------------------------------

// When the journal ring lacks headroom for another request's events,
// dispatch refuses with "journal-full" instead of letting an append
// overwrite history: the ring never drops, so a long-lived server's
// flushed journal stays replayable forever (no availability cliff whose
// only escape would refund budget).
TEST(ServeRobustness, JournalFullRefusesDispatchBeforeRingDrops) {
  ServerConfig cfg;
  cfg.threads = 1;
  QueryServer server(canary_trace(), cfg);  // clears the ring

  core::obs::EventJournal& journal = core::obs::EventJournal::global();
  const std::uint64_t dropped_before = journal.dropped();
  // Fill the ring until less than one request's headroom remains
  // (journal_headroom() is 8 + 8 * threads = 16 here).
  while (journal.capacity() - journal.size() >= 16) {
    core::obs::emit_task_begin(0);
  }

  ResponseLog log;
  server.submit_frame(request_line(1, "alice", "count", 0.25), log.sink());
  server.drain();
  EXPECT_EQ(error_code(log.by_id().at(1)), "journal-full");
  // The refusal charged nothing and — the point — the ring never
  // dropped an event.
  EXPECT_DOUBLE_EQ(server.dataset_spent(), 0.0);
  EXPECT_EQ(journal.dropped(), dropped_before);
  journal.clear();  // don't leave a full ring for later tests
}

// --- the deadline covers queue wait ---------------------------------------

// The deadline clock starts at admission, so time spent before execution
// (queue wait under backpressure; here a stalled dispatch stands in for
// it deterministically) counts: a request that overstays its deadline
// waiting is aborted at the guard's first checkpoint and charges
// nothing.
TEST(ServeRobustness, DeadlineCountsTimeQueuedBeforeExecution) {
  ServerConfig cfg;
  cfg.threads = 1;
  QueryServer server(canary_trace(), cfg);

  core::failpoint::ScopedFailpoint stall(
      "serve.dispatch", [](std::string_view) {
        std::this_thread::sleep_for(std::chrono::milliseconds(50));
      });
  ResponseLog log;
  server.submit_frame(
      "{\"id\":1,\"analyst\":\"late\",\"query\":\"count\",\"eps\":0.25,"
      "\"deadline_ms\":5}",
      log.sink());
  server.drain();
  EXPECT_EQ(error_code(log.by_id().at(1)), "aborted:deadline");
  EXPECT_DOUBLE_EQ(server.analyst_spent("late"), 0.0);
}

// Session-limit refusals are explicit and sanitized.
TEST(ServeRobustness, SessionLimitAnswersExplicitly) {
  ServerConfig cfg;
  cfg.max_sessions = 2;
  QueryServer server(canary_trace(), cfg);

  ResponseLog log;
  server.submit_frame(request_line(1, "alice", "count", 0.125), log.sink());
  server.submit_frame(request_line(2, "bob", "count", 0.125), log.sink());
  server.submit_frame(request_line(3, "mallory", "count", 0.125),
                      log.sink());
  server.drain();
  EXPECT_EQ(error_code(log.by_id().at(3)), "session-limit");
  EXPECT_EQ(server.sessions(), 2u);
}

}  // namespace
}  // namespace dpnet::serve
