// QueryGuard: deadlines, cooperative cancellation, row/work quotas, and
// the charge-before-release invariant (an aborted query charges nothing;
// charged epsilon is never refunded).
#include "core/guard.hpp"

#include <gtest/gtest.h>

#include <chrono>
#include <memory>
#include <numeric>
#include <tuple>
#include <vector>

#include "core/exec/executor.hpp"
#include "core/metrics.hpp"
#include "core/queryable.hpp"

namespace dpnet::core {
namespace {

using std::chrono::milliseconds;

Queryable<int> protect(double budget_eps, std::uint64_t seed = 5) {
  std::vector<int> v(400);
  std::iota(v.begin(), v.end(), 0);
  return Queryable<int>(std::move(v), std::make_shared<RootBudget>(budget_eps),
                       std::make_shared<NoiseSource>(seed));
}

TEST(Guard, CheckpointPassesUntilTripped) {
  QueryGuard guard;
  EXPECT_NO_THROW(guard.checkpoint("test"));
  EXPECT_FALSE(guard.aborted());
}

TEST(Guard, CancellationIsStickyAndTyped) {
  QueryGuard guard;
  guard.cancel();
  EXPECT_TRUE(guard.aborted());
  EXPECT_EQ(guard.reason(), AbortReason::kCancelled);
  for (int i = 0; i < 3; ++i) {
    try {
      guard.checkpoint("somewhere", 0x1234);
      FAIL() << "tripped guard must keep throwing";
    } catch (const QueryAbortedError& e) {
      EXPECT_EQ(e.reason(), AbortReason::kCancelled);
      EXPECT_EQ(e.where(), "somewhere");
      EXPECT_EQ(e.node_id(), 0x1234u);
    }
  }
}

TEST(Guard, ExpiredDeadlineTripsAtTheNextCheckpoint) {
  const std::uint64_t aborted_before =
      builtin_metrics::queries_aborted().value();
  const std::uint64_t deadline_before =
      builtin_metrics::deadline_exceeded().value();
  QueryGuard guard(QueryGuard::Options{.timeout = milliseconds(0)});
  try {
    guard.checkpoint("op");
    FAIL() << "deadline should have expired";
  } catch (const QueryAbortedError& e) {
    EXPECT_EQ(e.reason(), AbortReason::kDeadline);
  }
  EXPECT_EQ(builtin_metrics::queries_aborted().value(), aborted_before + 1);
  EXPECT_EQ(builtin_metrics::deadline_exceeded().value(),
            deadline_before + 1);
}

TEST(Guard, OutputQuotaTripsOnOversizedOperator) {
  QueryGuard guard(QueryGuard::Options{.max_node_rows = 10});
  EXPECT_NO_THROW(guard.charge_rows(10, "ok"));
  try {
    guard.charge_rows(11, "too-big");
    FAIL() << "output quota should have tripped";
  } catch (const QueryAbortedError& e) {
    EXPECT_EQ(e.reason(), AbortReason::kOutputQuota);
  }
}

TEST(Guard, WorkQuotaIsCumulative) {
  QueryGuard guard(QueryGuard::Options{.max_total_rows = 25});
  EXPECT_NO_THROW(guard.charge_rows(10, "a"));
  EXPECT_NO_THROW(guard.charge_rows(10, "b"));
  try {
    guard.charge_rows(10, "c");  // 30 > 25
    FAIL() << "work quota should have tripped";
  } catch (const QueryAbortedError& e) {
    EXPECT_EQ(e.reason(), AbortReason::kWorkQuota);
  }
  EXPECT_EQ(guard.total_rows(), 30u);
}

TEST(Guard, ScopesInstallAndNest) {
  EXPECT_EQ(active_guard(), nullptr);
  QueryGuard outer, inner;
  {
    GuardScope a(outer);
    EXPECT_EQ(active_guard(), &outer);
    {
      GuardScope b(inner);
      EXPECT_EQ(active_guard(), &inner);
    }
    EXPECT_EQ(active_guard(), &outer);
  }
  EXPECT_EQ(active_guard(), nullptr);
  // No active guard: helpers are no-ops.
  EXPECT_NO_THROW(guard_checkpoint("anywhere"));
  EXPECT_NO_THROW(guard_charge_rows(1u << 30, "anywhere"));
}

TEST(Guard, AbortedQueryChargesNothing) {
  auto budget = std::make_shared<RootBudget>(10.0);
  Queryable<int> q({1, 2, 3, 4, 5}, budget,
                   std::make_shared<NoiseSource>(7));
  QueryGuard guard(QueryGuard::Options{.max_total_rows = 2});
  GuardScope scope(guard);
  EXPECT_THROW(std::ignore = q.where([](int) { return true; })
                                 .noisy_count(1.0),
               QueryAbortedError);
  EXPECT_DOUBLE_EQ(budget->spent(), 0.0);  // charge-before-release: no leak
}

TEST(Guard, EarlierChargesAreNeverRefundedByALaterAbort) {
  auto budget = std::make_shared<RootBudget>(10.0);
  Queryable<int> q({1, 2, 3, 4, 5, 6, 7, 8}, budget,
                   std::make_shared<NoiseSource>(7));
  QueryGuard guard;
  GuardScope scope(guard);
  std::ignore = q.noisy_count(1.0);  // completes, charges 1.0
  guard.cancel();
  EXPECT_THROW(std::ignore = q.noisy_count(1.0), QueryAbortedError);
  EXPECT_DOUBLE_EQ(budget->spent(), 1.0);  // kept, not refunded
}

TEST(Guard, CancellationFromInsideAnalystCodeAbortsBeforeRelease) {
  auto budget = std::make_shared<RootBudget>(10.0);
  std::vector<int> v(100);
  std::iota(v.begin(), v.end(), 0);
  Queryable<int> q(std::move(v), budget, std::make_shared<NoiseSource>(3));
  QueryGuard guard;
  GuardScope scope(guard);
  // The predicate requests cancellation partway through the scan; the
  // operator finishes its batch (cooperative granularity is one
  // operator), then the next checkpoint aborts — before any charge.
  EXPECT_THROW(std::ignore = q.where([](int x) {
                                if (x == 50 && active_guard() != nullptr) {
                                  active_guard()->cancel();
                                }
                                return true;
                              })
                                 .noisy_count(1.0),
               QueryAbortedError);
  EXPECT_DOUBLE_EQ(budget->spent(), 0.0);
}

TEST(Guard, DeadlineAbortsParallelFanOutWithinGracePeriod) {
  // A parallel fan-out under an already-expired deadline must abort every
  // branch promptly (each task aborts at its start checkpoint) and leave
  // the process healthy.  The wall-clock bound is generous for CI noise;
  // the point is it does not run the full 24-branch workload.
  for (const std::size_t threads : {std::size_t{1}, std::size_t{4},
                                    std::size_t{8}}) {
    auto q = protect(1e6, 11 + threads);
    const std::vector<int> keys = [] {
      std::vector<int> k(24);
      std::iota(k.begin(), k.end(), 0);
      return k;
    }();
    auto parts = q.partition(keys, [](int x) { return x % 24; });
    exec::ExecPolicy policy(
        threads,
        std::make_shared<QueryGuard>(
            QueryGuard::Options{.timeout = milliseconds(0)}));
    const auto start = std::chrono::steady_clock::now();
    EXPECT_THROW(
        std::ignore = exec::map_parts(policy, keys, parts,
                                      [](int, const Queryable<int>& part) {
                                        return part.noisy_count(0.5);
                                      }),
        QueryAbortedError);
    const auto wall = std::chrono::steady_clock::now() - start;
    EXPECT_LT(wall, std::chrono::seconds(10)) << "threads=" << threads;
  }
  // Process alive: a fresh unguarded query still works.
  auto q = protect(1e6, 99);
  EXPECT_NO_THROW(std::ignore = q.noisy_count(0.5));
}

TEST(Guard, PolicyGuardGovernsWorkersAtAnyThreadCount) {
  for (const std::size_t threads :
       {std::size_t{1}, std::size_t{2}, std::size_t{8}}) {
    auto guard = std::make_shared<QueryGuard>();
    auto q = protect(1e6, 21);
    const std::vector<int> keys = {0, 1, 2, 3, 4, 5, 6, 7};
    auto parts = q.partition(keys, [](int x) { return x % 8; });
    guard->cancel();  // trip before the fan-out even starts
    exec::ExecPolicy policy(threads, guard);
    EXPECT_THROW(
        std::ignore = exec::map_parts(policy, keys, parts,
                                      [](int, const Queryable<int>& part) {
                                        return part.noisy_count(0.5);
                                      }),
        QueryAbortedError);
  }
}

}  // namespace
}  // namespace dpnet::core
