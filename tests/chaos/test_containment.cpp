// Analyst-UDF exception containment: a throwing analyst callback in any
// operator must surface as a sanitized AnalystCodeError naming only the
// operator and plan-node id — the analyst exception's text (which could
// interpolate record contents) must never cross the privacy boundary.
#include <gtest/gtest.h>

#include <functional>
#include <memory>
#include <stdexcept>
#include <string>
#include <tuple>
#include <vector>

#include "core/failpoint.hpp"
#include "core/queryable.hpp"

namespace dpnet::core {
namespace {

// Marker text standing in for record contents leaked into an exception
// message; no sanitized error may contain it.
constexpr char kSecret[] = "SECRET-RECORD-7";

[[noreturn]] void leak() {
  throw std::runtime_error(std::string("analyst UDF saw ") + kSecret);
}

Queryable<int> ten() {
  return make_queryable(std::vector<int>{0, 1, 2, 3, 4, 5, 6, 7, 8, 9}, 1e6,
                        3);
}

// Runs `body`, expecting a contained AnalystCodeError whose op() matches
// and whose message carries neither the secret nor any what() text.
void expect_contained(const char* op, const std::function<void()>& body) {
  try {
    body();
    FAIL() << op << ": expected AnalystCodeError";
  } catch (const AnalystCodeError& e) {
    EXPECT_EQ(e.op(), op);
    const std::string text = e.what();
    EXPECT_EQ(text.find(kSecret), std::string::npos) << text;
    EXPECT_NE(text.find(op), std::string::npos) << text;
    EXPECT_NE(text.find("withheld"), std::string::npos) << text;
  }
}

TEST(Containment, WherePredicate) {
  expect_contained("where", [] {
    std::ignore =
        ten().where([](int) -> bool { leak(); }).noisy_count(1.0);
  });
}

TEST(Containment, SelectMapper) {
  expect_contained("select", [] {
    std::ignore =
        ten().select([](const int&) -> int { leak(); }).noisy_count(1.0);
  });
}

TEST(Containment, SelectManyExpander) {
  expect_contained("select_many", [] {
    std::ignore = ten()
                      .select_many(
                          [](const int&) -> std::vector<int> { leak(); }, 2)
                      .noisy_count(1.0);
  });
}

TEST(Containment, GroupByKeySelector) {
  expect_contained("group_by", [] {
    std::ignore =
        ten().group_by([](const int&) -> int { leak(); }).noisy_count(1.0);
  });
}

TEST(Containment, GroupBySpansKeyAndBoundary) {
  expect_contained("group_by_spans", [] {
    std::ignore = ten()
                      .group_by_spans([](const int&) -> int { leak(); },
                                      [](const int&) { return false; })
                      .noisy_count(1.0);
  });
  expect_contained("group_by_spans", [] {
    std::ignore = ten()
                      .group_by_spans([](const int& x) { return x % 2; },
                                      [](const int&) -> bool { leak(); })
                      .noisy_count(1.0);
  });
}

TEST(Containment, JoinKeySelectorsAndResult) {
  expect_contained("join", [] {
    auto left = ten();
    auto right = ten();
    std::ignore = left.join(
                          right, [](const int&) -> int { leak(); },
                          [](const int& y) { return y; },
                          [](const int& x, const int&) { return x; })
                      .noisy_count(1.0);
  });
  expect_contained("join", [] {
    auto left = ten();
    auto right = ten();
    std::ignore = left.join(
                          right, [](const int& x) { return x; },
                          [](const int&) -> int { leak(); },
                          [](const int& x, const int&) { return x; })
                      .noisy_count(1.0);
  });
  expect_contained("join", [] {
    auto left = ten();
    auto right = ten();
    std::ignore = left.join(
                          right, [](const int& x) { return x; },
                          [](const int& y) { return y; },
                          [](const int&, const int&) -> int { leak(); })
                      .noisy_count(1.0);
  });
}

TEST(Containment, PartitionKeyFunction) {
  expect_contained("partition", [] {
    auto q = ten();
    std::ignore = q.partition(std::vector<int>{0, 1},
                              [](const int&) -> int { leak(); });
  });
}

TEST(Containment, AggregationFunctors) {
  expect_contained("noisy_sum", [] {
    std::ignore = ten().noisy_sum(1.0, [](const int&) -> double { leak(); });
  });
  expect_contained("noisy_average", [] {
    std::ignore =
        ten().noisy_average(1.0, [](const int&) -> double { leak(); });
  });
  expect_contained("noisy_quantile", [] {
    std::ignore =
        ten().noisy_quantile(1.0, 0.5, [](const int&) -> double { leak(); });
  });
}

TEST(Containment, ContainedFaultChargesNothing) {
  auto budget = std::make_shared<RootBudget>(10.0);
  Queryable<int> q({1, 2, 3}, budget, std::make_shared<NoiseSource>(5));
  EXPECT_THROW(
      std::ignore = q.noisy_sum(1.0, [](const int&) -> double { leak(); }),
      AnalystCodeError);
  EXPECT_DOUBLE_EQ(budget->spent(), 0.0);
}

// Operators without analyst UDFs (distinct, concat, set ops) still run
// inside the containment boundary; the plan.materialize failpoint injects
// a fault indistinguishable from a throwing UDF into each one.
TEST(Containment, InjectedFaultsInUdfLessOperators) {
  const std::vector<std::string> ops = {"distinct", "concat", "set_union",
                                        "except", "intersect"};
  for (const std::string& op : ops) {
    failpoint::ScopedFailpoint fp(
        "plan.materialize", [&op](std::string_view detail) {
          if (detail == op) leak();
        });
    expect_contained(op.c_str(), [&op] {
      auto left = ten();
      auto right = ten();
      Queryable<int> derived =
          op == "distinct"    ? left.distinct()
          : op == "concat"    ? left.concat(right)
          : op == "set_union" ? left.set_union(right)
          : op == "except"    ? left.except(right)
                              : left.intersect(right);
      std::ignore = derived.noisy_count(1.0);
    });
  }
}

// A contained error from an upstream operator passes through downstream
// containment untouched: the analyst sees the *originating* operator, and
// the error is never double-wrapped.
TEST(Containment, UpstreamErrorIsNotRewrapped) {
  expect_contained("where", [] {
    std::ignore = ten()
                      .where([](int) -> bool { leak(); })
                      .select([](const int& x) { return x * 2; })
                      .distinct()
                      .noisy_count(1.0);
  });
}

// Engine errors are not analyst faults: they pass the boundary as-is.
TEST(Containment, EngineErrorsPassThrough) {
  auto tiny = make_queryable(std::vector<int>{1, 2, 3}, 0.5, 9);
  EXPECT_THROW(std::ignore = tiny.noisy_count(1.0), BudgetExhaustedError);
  EXPECT_THROW(std::ignore = ten().noisy_count(-1.0), InvalidEpsilonError);
}

// After every contained fault above, the process must remain usable.
TEST(Containment, ProcessStaysUsableAfterFaults) {
  auto q = ten();
  EXPECT_THROW(
      std::ignore = q.where([](int) -> bool { leak(); }).noisy_count(1.0),
      AnalystCodeError);
  EXPECT_NO_THROW(std::ignore = q.noisy_count(1.0));
  EXPECT_NO_THROW(std::ignore =
                      q.where([](int x) { return x > 4; }).noisy_count(1.0));
}

}  // namespace
}  // namespace dpnet::core
