// Crash-safe budget recovery: the journal is flushed before every
// response, so a server killed at ANY point can be restarted against
// the flushed journal and reconstruct each analyst's spent epsilon
// exactly — a crash can never refund budget (docs/robustness.md,
// "Crash-safe budget recovery").
//
// The "crash" here is in-process: the first server is destroyed without
// ceremony and the global journal ring is cleared (a new process starts
// with an empty ring), leaving the flushed journal file as the only
// surviving record — exactly what a real restart sees.  The CLI soak
// test (tests/cli/test_serve_soak.sh) does the same drill across real
// processes with kill -9.
#include <gtest/gtest.h>

#include <cstdio>
#include <fstream>
#include <map>
#include <memory>
#include <mutex>
#include <stdexcept>
#include <string>
#include <string_view>
#include <vector>

#include "core/errors.hpp"
#include "core/failpoint.hpp"
#include "core/json.hpp"
#include "core/obs/journal.hpp"
#include "net/packet.hpp"
#include "serve/server.hpp"

namespace dpnet::serve {
namespace {

std::vector<net::Packet> small_trace() {
  std::vector<net::Packet> trace(32);
  for (std::size_t i = 0; i < trace.size(); ++i) {
    trace[i].timestamp = static_cast<double>(i);
    trace[i].protocol = net::kProtoTcp;
    trace[i].length = 64;
  }
  return trace;
}

std::string request_line(std::uint64_t id, const std::string& analyst,
                         double eps) {
  core::JsonWriter w;
  w.begin_object();
  w.key("id").value(id);
  w.key("analyst").value(analyst);
  w.key("query").value("count");
  w.key("eps").value(eps);
  w.end_object();
  return w.str();
}

/// Synchronous submit-and-wait; returns the response line ("" if the
/// response was dropped).
std::string ask(QueryServer& server, std::uint64_t id,
                const std::string& analyst, double eps) {
  std::mutex mu;
  std::string response;
  server.submit_frame(request_line(id, analyst, eps),
                      [&](const std::string& line) {
                        const std::lock_guard<std::mutex> lock(mu);
                        response = line;
                      });
  server.drain();
  return response;
}

ServerConfig journal_config(const std::string& path, std::size_t threads) {
  ServerConfig cfg;
  cfg.dataset_budget = 4.0;
  cfg.analyst_cap = 1.0;
  cfg.threads = threads;
  cfg.journal_path = path;
  return cfg;
}

// Budget == ledger == journal == trace must survive a crash + restart:
// the restarted server replays per-analyst spend exactly, refuses what
// no longer fits, and its own journal keeps reconciling — at 1, 4, and
// 8 threads.
TEST(ServeRecovery, ReplaysPerAnalystSpendExactlyAcrossRestart) {
  for (const std::size_t threads :
       {std::size_t{1}, std::size_t{4}, std::size_t{8}}) {
    const std::string path = ::testing::TempDir() + "/serve_recovery_" +
                             std::to_string(threads) + ".jsonl";
    std::remove(path.c_str());

    {
      QueryServer first(small_trace(), journal_config(path, threads));
      EXPECT_NE(ask(first, 1, "alice", 0.5).find("\"status\":\"ok\""),
                std::string::npos);
      EXPECT_NE(ask(first, 2, "bob", 0.25).find("\"status\":\"ok\""),
                std::string::npos);
      EXPECT_NE(ask(first, 3, "alice", 0.375).find("\"status\":\"ok\""),
                std::string::npos);
      // A genuine cap refusal: journaled as a refusal, charges nothing.
      EXPECT_NE(ask(first, 4, "alice", 0.5).find("budget-exhausted"),
                std::string::npos);
      EXPECT_DOUBLE_EQ(first.analyst_spent("alice"), 0.875);
      EXPECT_DOUBLE_EQ(first.analyst_spent("bob"), 0.25);
      // Crash: no shutdown flush, no artifacts — the per-response
      // flushes are all that survive.
    }
    core::obs::EventJournal::global().clear();  // fresh-process analog

    QueryServer second(small_trace(), journal_config(path, threads));
    ASSERT_EQ(second.recovered().size(), 2u);
    EXPECT_EQ(second.recovered()[0].analyst, "alice");
    EXPECT_DOUBLE_EQ(second.recovered()[0].eps, 0.875);
    EXPECT_EQ(second.recovered()[1].analyst, "bob");
    EXPECT_DOUBLE_EQ(second.recovered()[1].eps, 0.25);
    EXPECT_DOUBLE_EQ(second.analyst_spent("alice"), 0.875);
    EXPECT_DOUBLE_EQ(second.analyst_spent("bob"), 0.25);
    EXPECT_DOUBLE_EQ(second.dataset_spent(), 1.125);

    // No refunds: alice's recovered 0.875 stands, so 0.25 no longer
    // fits her 1.0 cap...
    EXPECT_NE(ask(second, 5, "alice", 0.25).find("budget-exhausted"),
              std::string::npos);
    // ...while 0.125 fits exactly.
    EXPECT_NE(ask(second, 6, "alice", 0.125).find("\"status\":\"ok\""),
              std::string::npos);
    EXPECT_DOUBLE_EQ(second.analyst_spent("alice"), 1.0);

    // The restarted server's journal (recovery charges + new charges)
    // reconciles with its ledger: the books balance by induction.
    const core::obs::JournalVerification v =
        core::obs::verify_journal_file(path);
    ASSERT_TRUE(v.ok) << v.error << " (threads=" << threads << ")";
    EXPECT_DOUBLE_EQ(v.charged_eps_by_label.at("alice"), 1.0);
    EXPECT_DOUBLE_EQ(v.charged_eps_by_label.at("bob"), 0.25);
    EXPECT_DOUBLE_EQ(v.charged_eps, second.dataset_spent());
    EXPECT_EQ(v.refusals, 1u);  // request 5; request 4 died with run 1
  }
}

// Chained restarts: recovery charges are themselves journaled, so a
// second crash recovers the same totals — restart is idempotent.
TEST(ServeRecovery, RestartIsIdempotentAcrossChainedCrashes) {
  const std::string path =
      ::testing::TempDir() + "/serve_recovery_chain.jsonl";
  std::remove(path.c_str());

  {
    QueryServer first(small_trace(), journal_config(path, 2));
    EXPECT_NE(ask(first, 1, "alice", 0.5).find("\"status\":\"ok\""),
              std::string::npos);
  }
  core::obs::EventJournal::global().clear();
  {
    QueryServer second(small_trace(), journal_config(path, 2));
    EXPECT_DOUBLE_EQ(second.analyst_spent("alice"), 0.5);
    // Crash again immediately: the only journal content on disk is
    // still run 1's — run 2 never answered a request, so it never
    // flushed.
  }
  core::obs::EventJournal::global().clear();
  QueryServer third(small_trace(), journal_config(path, 2));
  EXPECT_DOUBLE_EQ(third.analyst_spent("alice"), 0.5);
  EXPECT_DOUBLE_EQ(third.dataset_spent(), 0.5);
}

// A tampered journal must refuse startup outright: budgets cannot be
// reconstructed from a record that fails its hash chain.
TEST(ServeRecovery, TamperedJournalRefusesStartup) {
  const std::string path =
      ::testing::TempDir() + "/serve_recovery_tampered.jsonl";
  std::remove(path.c_str());
  {
    QueryServer first(small_trace(), journal_config(path, 2));
    EXPECT_NE(ask(first, 1, "alice", 0.5).find("\"status\":\"ok\""),
              std::string::npos);
  }
  core::obs::EventJournal::global().clear();

  std::string text;
  {
    std::ifstream in(path, std::ios::binary);
    ASSERT_TRUE(in.good());
    text.assign(std::istreambuf_iterator<char>(in),
                std::istreambuf_iterator<char>());
  }
  text[text.size() / 2] = static_cast<char>(text[text.size() / 2] ^ 0x1);
  {
    std::ofstream out(path, std::ios::binary | std::ios::trunc);
    out << text;
  }
  EXPECT_THROW(QueryServer(small_trace(), journal_config(path, 2)),
               core::DpError);
}

// A recovered spend that no longer fits a (shrunk) cap refuses startup:
// silently truncating it would refund budget.
TEST(ServeRecovery, ShrunkCapRefusesStartup) {
  const std::string path =
      ::testing::TempDir() + "/serve_recovery_shrunk.jsonl";
  std::remove(path.c_str());
  {
    QueryServer first(small_trace(), journal_config(path, 2));
    EXPECT_NE(ask(first, 1, "alice", 0.5).find("\"status\":\"ok\""),
              std::string::npos);
  }
  core::obs::EventJournal::global().clear();

  ServerConfig shrunk = journal_config(path, 2);
  shrunk.analyst_cap = 0.25;  // less than alice's recovered 0.5
  EXPECT_THROW(QueryServer(small_trace(), shrunk), core::DpError);
}

// A crash inside the flush window — after the temp journal is durable,
// before the rename publishes it — must leave the PREVIOUS complete
// journal on disk.  flush_to_file never truncates the journal in place,
// so a kill -9 mid-flush can neither strand the restart (a truncated
// file refuses verification) nor force the operator to delete the
// journal (which would refund every spent epsilon).
TEST(ServeRecovery, CrashMidFlushLeavesPreviousJournalReplayable) {
  const std::string path =
      ::testing::TempDir() + "/serve_recovery_midflush.jsonl";
  std::remove(path.c_str());
  {
    QueryServer first(small_trace(), journal_config(path, 2));
    EXPECT_NE(ask(first, 1, "alice", 0.5).find("\"status\":\"ok\""),
              std::string::npos);
    // Crash in the window the atomic temp+fsync+rename protects.
    core::failpoint::ScopedFailpoint crash(
        "obs.journal.flush", [](std::string_view) {
          throw std::runtime_error("injected crash mid-flush");
        });
    // The failed flush withholds the value: the charge was never made
    // durable, so no answer may acknowledge it.
    EXPECT_NE(ask(first, 2, "alice", 0.25).find("\"error\":\"internal\""),
              std::string::npos);
  }
  core::obs::EventJournal::global().clear();  // fresh-process analog

  // On disk: run 1's first complete flush, not a truncated hybrid.
  const core::obs::JournalVerification v =
      core::obs::verify_journal_file(path);
  ASSERT_TRUE(v.ok) << v.error;
  EXPECT_EQ(v.charges, 1u);

  // Restart replays exactly the witnessed spend; serving resumes, and a
  // successful flush leaves no temp residue behind.
  QueryServer second(small_trace(), journal_config(path, 2));
  ASSERT_EQ(second.recovered().size(), 1u);
  EXPECT_DOUBLE_EQ(second.analyst_spent("alice"), 0.5);
  EXPECT_NE(ask(second, 3, "alice", 0.125).find("\"status\":\"ok\""),
            std::string::npos);
  EXPECT_DOUBLE_EQ(second.analyst_spent("alice"), 0.625);
  EXPECT_FALSE(std::ifstream(path + ".tmp").good());
}

// A missing journal file is a first boot, not an error.
TEST(ServeRecovery, MissingJournalIsFirstBoot) {
  const std::string path =
      ::testing::TempDir() + "/serve_recovery_absent.jsonl";
  std::remove(path.c_str());
  QueryServer server(small_trace(), journal_config(path, 2));
  EXPECT_TRUE(server.recovered().empty());
  EXPECT_DOUBLE_EQ(server.dataset_spent(), 0.0);
}

}  // namespace
}  // namespace dpnet::serve
