// Chaos coverage for the trace timeline stamps: spans cut short by an
// injected materialization fault, a guard abort, or a budget refusal must
// still close with real begin/duration stamps, and the Chrome export
// built from such a trace must contain only complete ("X") events — a
// half-open span would render as an unterminated bar and break the
// timeline viewer.
#include <gtest/gtest.h>

#include <memory>
#include <stdexcept>
#include <string>
#include <tuple>
#include <vector>

#include "core/errors.hpp"
#include "core/failpoint.hpp"
#include "core/guard.hpp"
#include "core/json.hpp"
#include "core/queryable.hpp"
#include "core/trace.hpp"

namespace dpnet::core {
namespace {

Queryable<int> protect(std::vector<int> data, double budget = 100.0) {
  return Queryable<int>(std::move(data),
                        std::make_shared<RootBudget>(budget),
                        std::make_shared<NoiseSource>(13));
}

void assert_closed(const TraceSpan& span) {
  EXPECT_GE(span.ts_us, 0) << span.op;
  EXPECT_GE(span.dur_us, 0) << span.op;
  for (const TraceSpan& child : span.children) assert_closed(child);
}

/// Every event in a Chrome export must be a complete "X" span or an "M"
/// metadata record with non-negative ts/dur — nothing half-open.
void assert_chrome_complete(const std::string& chrome) {
  const JsonValue doc = parse_json(chrome);
  const JsonValue& events = doc.at("traceEvents");
  ASSERT_TRUE(events.is_array());
  ASSERT_FALSE(events.array.empty());
  for (const JsonValue& ev : events.array) {
    const std::string& ph = ev.at("ph").string;
    ASSERT_TRUE(ph == "X" || ph == "M") << "unexpected phase " << ph;
    if (ph == "X") {
      EXPECT_GE(ev.at("ts").number, 0.0);
      EXPECT_GE(ev.at("dur").number, 0.0);
    }
  }
}

TEST(TraceTimelineChaos, InjectedMaterializationFaultClosesSpans) {
  auto q = protect({1, 2, 3, 4, 5});
  auto filtered = q.where([](int x) { return x > 1; });
  QueryTrace trace;
  {
    TraceSession session(trace);
    failpoint::ScopedFailpoint fp("plan.materialize", [](std::string_view) {
      throw std::runtime_error("injected mid-materialization");
    });
    EXPECT_THROW(std::ignore = filtered.noisy_count(0.5), AnalystCodeError);
  }
  // The aggregation span and the aborted where-span both unwound through
  // TraceScope's destructor, so every span carries timeline stamps.
  ASSERT_FALSE(trace.roots().empty());
  for (const TraceSpan& root : trace.roots()) assert_closed(root);
  assert_chrome_complete(trace.to_chrome_json());
}

TEST(TraceTimelineChaos, GuardAbortLeavesCompleteChromeEvents) {
  auto q = protect({1, 2, 3, 4, 5});
  auto filtered = q.where([](int x) { return x >= 0; });
  QueryGuard::Options opt;
  opt.max_node_rows = 2;  // trips when the filter produces 5 rows
  QueryGuard guard(opt);
  QueryTrace trace;
  {
    TraceSession session(trace);
    GuardScope scope(guard);
    EXPECT_THROW(std::ignore = filtered.noisy_count(0.5),
                 QueryAbortedError);
  }
  ASSERT_FALSE(trace.roots().empty());
  for (const TraceSpan& root : trace.roots()) assert_closed(root);
  assert_chrome_complete(trace.to_chrome_json());
}

TEST(TraceTimelineChaos, BudgetRefusalStillStampsTheRefusedSpan) {
  auto q = protect({1, 2, 3}, /*budget=*/0.1);
  QueryTrace trace;
  {
    TraceSession session(trace);
    EXPECT_THROW(std::ignore = q.noisy_count(0.5), BudgetExhaustedError);
  }
  ASSERT_EQ(trace.roots().size(), 1u);
  EXPECT_EQ(trace.roots()[0].detail, "refused");
  assert_closed(trace.roots()[0]);
  assert_chrome_complete(trace.to_chrome_json());
}

TEST(TraceTimelineChaos, ChargeFailpointAbortReconcilesWithTimeline) {
  auto q = protect({1, 2, 3, 4});
  QueryTrace trace;
  {
    TraceSession session(trace);
    failpoint::ScopedFailpoint fp(
        "core.release.charge", [](std::string_view) {
          throw QueryAbortedError(AbortReason::kCancelled, "injected", 0);
        });
    EXPECT_THROW(std::ignore = q.noisy_count(0.5), QueryAbortedError);
  }
  // Charge-before-release: the abort landed before charge_all, so the
  // span shows zero charged — and it still closed with stamps.
  ASSERT_EQ(trace.roots().size(), 1u);
  EXPECT_DOUBLE_EQ(trace.roots()[0].eps_charged, 0.0);
  assert_closed(trace.roots()[0]);
  assert_chrome_complete(trace.to_chrome_json());
}

}  // namespace
}  // namespace dpnet::core
