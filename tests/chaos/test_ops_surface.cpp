// Chaos coverage for the live ops surface (docs/observability.md,
// "Operating the server"): the flight-recorder dump and the ops-snapshot
// publish are diagnostic side channels, so faulting either one
// (obs.flight.dump / obs.snapshot.publish) must never fail a request,
// never charge or refund epsilon, and never leave a torn document on
// disk — the atomic temp+rename publish means the last good file
// survives any mid-publish fault.  After every drill the books (budget,
// journal) still reconcile exactly.
#include <gtest/gtest.h>

#include <cstdio>
#include <fstream>
#include <sstream>
#include <stdexcept>
#include <string>
#include <vector>

#include "core/failpoint.hpp"
#include "core/json.hpp"
#include "core/obs/journal.hpp"
#include "core/obs/recorder.hpp"
#include "net/packet.hpp"
#include "serve/server.hpp"

namespace dpnet::serve {
namespace {

std::vector<net::Packet> small_trace() {
  std::vector<net::Packet> trace(32);
  for (std::size_t i = 0; i < trace.size(); ++i) {
    net::Packet& p = trace[i];
    p.timestamp = static_cast<double>(i) * 0.001;
    p.protocol = (i % 2 == 0) ? net::kProtoTcp : net::kProtoUdp;
    p.length = 64;
  }
  return trace;
}

std::string request_line(std::uint64_t id, const std::string& analyst,
                         double eps) {
  core::JsonWriter w;
  w.begin_object();
  w.key("id").value(id);
  w.key("analyst").value(analyst);
  w.key("query").value("count");
  w.key("eps").value(eps);
  w.end_object();
  return w.str();
}

std::string submit_one(QueryServer& server, const std::string& frame) {
  std::string response;
  server.submit_frame(frame,
                      [&response](const std::string& line) { response = line; });
  server.drain();
  return response;
}

std::string read_file(const std::string& path) {
  std::ifstream in(path, std::ios::binary);
  std::ostringstream buf;
  buf << in.rdbuf();
  return buf.str();
}

// A faulted flight dump is degradation, not failure: the request that
// triggered the dump still answers ok, its charge stands in budget and
// journal, and once the fault clears the next dump publishes a complete
// document mirroring every journal-witnessed charge.
TEST(OpsSurfaceChaos, FlightDumpFaultNeverFailsARequest) {
  const char* dump_path = "chaos_ops_flight_tmp.jsonl";
  std::remove(dump_path);
  ServerConfig cfg;
  cfg.threads = 2;
  cfg.flight_path = dump_path;
  QueryServer server(small_trace(), cfg);
  {
    core::failpoint::ScopedFailpoint fp(
        "obs.flight.dump",
        [](std::string_view) { throw std::runtime_error("injected"); });
    const std::string response =
        submit_one(server, request_line(1, "alice", 0.125));
    EXPECT_NE(response.find("\"status\":\"ok\""), std::string::npos);
  }
  EXPECT_DOUBLE_EQ(server.dataset_spent(), 0.125);
  // The fault landed after the temp file but before the rename: no dump
  // was published, and no charge was lost.
  const std::string response =
      submit_one(server, request_line(2, "bob", 0.125));
  EXPECT_NE(response.find("\"status\":\"ok\""), std::string::npos);
  EXPECT_DOUBLE_EQ(server.dataset_spent(), 0.25);
  // Fault cleared: the dump after the second response is complete and
  // mirrors both journal charges.
  const std::string doc = read_file(dump_path);
  ASSERT_FALSE(doc.empty());
  std::istringstream lines(doc);
  std::string line;
  ASSERT_TRUE(std::getline(lines, line));
  EXPECT_EQ(core::parse_json(line).at("schema").string, "dpnet.flight.v1");
  std::size_t charges = 0;
  while (std::getline(lines, line)) {
    if (line.find("\"kind\":\"charge\"") != std::string::npos) ++charges;
  }
  EXPECT_EQ(charges, 2u);
  // The journal agrees with the budget exactly.
  const core::obs::JournalVerification v = core::obs::verify_journal_text(
      core::obs::EventJournal::global().to_jsonl(/*canonical=*/false));
  ASSERT_TRUE(v.ok) << v.error;
  EXPECT_EQ(v.charges, 2u);
  EXPECT_DOUBLE_EQ(v.charged_eps, server.dataset_spent());
  std::remove(dump_path);
}

// A faulted snapshot publish leaves the previous document intact: the
// rename never happened, so `dpnet_cli top` keeps reading the last good
// dpnet.ops.v1 snapshot — never a torn one.
TEST(OpsSurfaceChaos, SnapshotPublishFaultLeavesLastGoodDocument) {
  const char* snap_path = "chaos_ops_snapshot_tmp.json";
  std::remove(snap_path);
  ServerConfig cfg;
  cfg.threads = 2;
  cfg.ops_snapshot_path = snap_path;
  cfg.ops_snapshot_interval_ms = 0;  // publish on every drained response
  QueryServer server(small_trace(), cfg);
  // Construction force-published an initial snapshot.
  const std::string initial = read_file(snap_path);
  EXPECT_EQ(core::parse_json(initial).at("schema").string, "dpnet.ops.v1");
  {
    core::failpoint::ScopedFailpoint fp(
        "obs.snapshot.publish",
        [](std::string_view) { throw std::runtime_error("injected"); });
    const std::string response =
        submit_one(server, request_line(1, "alice", 0.125));
    EXPECT_NE(response.find("\"status\":\"ok\""), std::string::npos);
    // The on-disk snapshot is byte-identical to the pre-fault publish.
    EXPECT_EQ(read_file(snap_path), initial);
  }
  EXPECT_DOUBLE_EQ(server.dataset_spent(), 0.125);
  // Fault cleared: the next response publishes a fresh document that
  // reflects the spend.
  submit_one(server, request_line(2, "alice", 0.125));
  const std::string fresh = read_file(snap_path);
  const core::JsonValue doc = core::parse_json(fresh);
  EXPECT_EQ(doc.at("schema").string, "dpnet.ops.v1");
  EXPECT_DOUBLE_EQ(doc.at("dataset").at("spent").number, 0.25);
  std::remove(snap_path);
  std::remove((std::string(snap_path) + ".tmp").c_str());
}

}  // namespace
}  // namespace dpnet::serve
