// Journal/audit chaos: a pipeline with an injected release-path fault
// must flush a tamper-evident event journal whose epsilon sums reconcile
// *exactly* with the audit ledger and the query trace — at any thread
// count, with a byte-identical canonical flush.  This is the in-process
// half of the `dpnet_cli audit verify` gate; when DPNET_JOURNAL_DIR is
// set (the CI chaos job), the faulted run's journal/ledger/trace
// artifacts are written there and the CLI re-verifies them offline.
//
// All epsilons are dyadic rationals (multiples of 0.125) so every sum is
// exact in binary floating point and the assertions demand equality.
//
// Determinism note: the workload deliberately uses only charge, refusal,
// task-lifecycle, and core.release.charge fault events — their causal
// keys (plan-node ids, salted task indices) are schedule-independent.
// exec.worker_task faults and guard aborts carry key 0 and *which* hit
// fires is schedule-dependent, so they have no place in a byte-identity
// test (they are covered by test_abort_reconciliation.cpp).
#include <gtest/gtest.h>

#include <cstdlib>
#include <fstream>
#include <functional>
#include <memory>
#include <numeric>
#include <string>
#include <string_view>
#include <tuple>
#include <vector>

#include "core/audit.hpp"
#include "core/exec/executor.hpp"
#include "core/failpoint.hpp"
#include "core/obs/journal.hpp"
#include "core/queryable.hpp"
#include "core/trace.hpp"

namespace dpnet::core {
namespace {

// Root headroom: the seven surviving branches charge 4.0, the post-run
// exact-fit release takes the last 0.5, and the 0.75 attempt in between
// is refused.
constexpr double kRootEps = 4.5;

std::vector<int> many_values() {
  std::vector<int> v(600);
  std::iota(v.begin(), v.end(), 0);
  return v;
}

double ledger_sum(const std::vector<AuditingBudget::Entry>& entries) {
  double s = 0.0;
  for (const auto& e : entries) s += e.eps;
  return s;
}

std::vector<Queryable<int>> make_branches(
    const std::shared_ptr<AuditingBudget>& audit) {
  std::vector<Queryable<int>> branches;
  for (std::uint64_t i = 0; i < 8; ++i) {
    branches.push_back(Queryable<int>(many_values(), audit,
                                      std::make_shared<NoiseSource>(100 + i)));
  }
  return branches;
}

/// The plan node that charges for branch 3's release, discovered by a
/// fault-free dry run.  Node ids derive from the plan shape, not global
/// state (docs/architecture.md), so the id is identical in the faulted
/// runs below — which makes "fault exactly branch 3's release"
/// expressible as a deterministic failpoint predicate.
std::uint64_t faulted_node_id() {
  auto audit =
      std::make_shared<AuditingBudget>(std::make_shared<RootBudget>(1e6));
  auto branches = make_branches(audit);
  std::ignore = branches[3].noisy_count(0.5);
  if (audit->entries().size() != 1) {
    ADD_FAILURE() << "dry run expected exactly one ledger entry";
    return 0;
  }
  return audit->entries().front().node_id;
}

struct RunResult {
  std::shared_ptr<AuditingBudget> audit;
  std::shared_ptr<QueryTrace> trace;
  std::string jsonl;  // canonical flush of the run's journal
};

/// Runs the faulted workload: 8 independent branches over one shared
/// accountant, a core.release.charge failpoint refusing exactly branch
/// 3's charge, then (sequentially) one genuine budget refusal and one
/// exact-fit release.  Returns the canonical journal flush alongside the
/// ledger and trace for reconciliation.
RunResult run_faulted(std::size_t threads, std::uint64_t target) {
  obs::set_journal_armed(true);
  obs::EventJournal::global().clear();
  RunResult r;
  r.audit =
      std::make_shared<AuditingBudget>(std::make_shared<RootBudget>(kRootEps));
  r.trace = std::make_shared<QueryTrace>();
  auto branches = make_branches(r.audit);
  failpoint::ScopedFailpoint fp(
      "core.release.charge", [target](std::string_view) {
        if (ScopedChargeNode::current() == target) {
          throw BudgetExhaustedError("injected refusal");
        }
      });
  {
    TraceSession session(*r.trace);
    std::vector<std::function<void()>> tasks;
    for (std::size_t i = 0; i < branches.size(); ++i) {
      tasks.push_back([&branches, i] {
        std::ignore =
            branches[i].noisy_count(0.125 * static_cast<double>(i + 1));
      });
    }
    EXPECT_THROW(
        exec::Executor(exec::ExecPolicy{threads}).run(std::move(tasks)),
        BudgetExhaustedError);
    // 4.0 of 4.5 is spent: a 0.75 attempt is refused by the real budget
    // (journaled as a refusal, charging nothing), then 0.5 fits exactly.
    EXPECT_THROW(std::ignore = branches[0].noisy_count(0.75),
                 BudgetExhaustedError);
    EXPECT_NO_THROW(std::ignore = branches[0].noisy_count(0.5));
  }
  r.jsonl = obs::EventJournal::global().to_jsonl(true);
  return r;
}

// The canonical flush is the journal's determinism contract: same
// pipeline, same fault, any thread count => the same bytes.
TEST(JournalAudit, CanonicalFlushIsByteIdenticalAcrossThreadCounts) {
  const std::uint64_t target = faulted_node_id();
  const RunResult sequential = run_faulted(1, target);
  ASSERT_FALSE(sequential.jsonl.empty());
  for (const std::size_t threads : {std::size_t{4}, std::size_t{8}}) {
    const RunResult parallel = run_faulted(threads, target);
    EXPECT_EQ(parallel.jsonl, sequential.jsonl) << "threads=" << threads;
  }
}

// Replaying the flushed journal must balance the books exactly: the
// journal's charge sum equals the ledger's, equals the accountant's,
// equals the trace's — and the faulted release appears in none of them.
TEST(JournalAudit, VerifiedJournalReconcilesWithLedgerAndTrace) {
  const std::uint64_t target = faulted_node_id();
  for (const std::size_t threads :
       {std::size_t{1}, std::size_t{4}, std::size_t{8}}) {
    const RunResult r = run_faulted(threads, target);
    const obs::JournalVerification v = obs::verify_journal_text(r.jsonl);
    ASSERT_TRUE(v.ok) << v.error << " (threads=" << threads << ")";
    EXPECT_EQ(v.dropped, 0u);
    // 7 surviving branch releases + the post-run exact-fit release.
    EXPECT_EQ(v.charges, 8u) << "threads=" << threads;
    EXPECT_EQ(v.refusals, 1u);
    EXPECT_EQ(v.tasks, 8u);
    // Every release hit the armed failpoint once: 8 in the executor run
    // (including the one whose charge was then refused) + 2 after it.
    EXPECT_EQ(v.faults, 10u);
    EXPECT_EQ(v.aborts, 0u);
    EXPECT_EQ(v.quarantined, 0u);
    // Exact reconciliation, all four books: journal == ledger ==
    // accountant == trace.  The faulted branch's 0.5 and the refused
    // 0.75 are absent from every charged sum.
    EXPECT_DOUBLE_EQ(v.charged_eps, kRootEps) << "threads=" << threads;
    EXPECT_DOUBLE_EQ(ledger_sum(r.audit->canonical_entries()), v.charged_eps);
    EXPECT_DOUBLE_EQ(r.audit->spent(), v.charged_eps);
    EXPECT_DOUBLE_EQ(r.trace->total_eps_charged(), v.charged_eps);
    EXPECT_DOUBLE_EQ(v.refused_eps, 0.75);
    for (const auto& entry : r.audit->canonical_entries()) {
      EXPECT_NE(entry.node_id, target) << "faulted branch reached the ledger";
    }
  }
}

// Tamper evidence: flipping ANY single byte of a flushed journal — in
// the header, a record body, a chain link, or a newline — must fail
// verification, as must truncating trailing records.
TEST(JournalAudit, AnySingleFlippedByteBreaksVerification) {
  const std::uint64_t target = faulted_node_id();
  const RunResult r = run_faulted(1, target);
  ASSERT_TRUE(obs::verify_journal_text(r.jsonl).ok);
  for (std::size_t i = 0; i < r.jsonl.size(); ++i) {
    std::string tampered = r.jsonl;
    tampered[i] = static_cast<char>(tampered[i] ^ 0x1);
    EXPECT_FALSE(obs::verify_journal_text(tampered).ok)
        << "flip at byte " << i << " went undetected";
  }
  // Truncation: drop the final record line (keeping a well-formed tail).
  std::string truncated = r.jsonl;
  truncated.pop_back();  // trailing '\n'
  truncated.resize(truncated.rfind('\n') + 1);
  const obs::JournalVerification v = obs::verify_journal_text(truncated);
  EXPECT_FALSE(v.ok);
  EXPECT_NE(v.error.find("truncated"), std::string::npos) << v.error;
}

// File round-trip for the offline gate: flush_to_file output verifies via
// verify_journal_file, and a flipped byte on disk is caught the same way.
TEST(JournalAudit, FlushedFileVerifiesAndDetectsOnDiskTampering) {
  const std::uint64_t target = faulted_node_id();
  const RunResult r = run_faulted(4, target);
  const std::string path = ::testing::TempDir() + "/dpnet_journal.jsonl";
  obs::EventJournal::global().flush_to_file(path);
  const obs::JournalVerification clean = obs::verify_journal_file(path);
  ASSERT_TRUE(clean.ok) << clean.error;
  EXPECT_DOUBLE_EQ(clean.charged_eps, r.audit->spent());

  std::string tampered = r.jsonl;
  tampered[tampered.size() / 2] =
      static_cast<char>(tampered[tampered.size() / 2] ^ 0x1);
  {
    std::ofstream out(path, std::ios::binary | std::ios::trunc);
    out << tampered;
  }
  EXPECT_FALSE(obs::verify_journal_file(path).ok);
}

// CI artifact drop: when DPNET_JOURNAL_DIR is set (the chaos job in
// .github/workflows/ci.yml), write the faulted run's journal, ledger,
// and trace there so `dpnet_cli audit verify` can re-reconcile them as a
// hard gate — and as an uploadable incident-forensics artifact.
TEST(JournalAudit, WritesVerifiableArtifactsWhenJournalDirSet) {
  const char* dir = std::getenv("DPNET_JOURNAL_DIR");
  if (dir == nullptr || *dir == '\0') {
    GTEST_SKIP() << "DPNET_JOURNAL_DIR not set";
  }
  const std::uint64_t target = faulted_node_id();
  const RunResult r = run_faulted(8, target);
  const std::string base = std::string(dir) + "/";
  obs::EventJournal::global().flush_to_file(base + "journal.jsonl");
  {
    std::ofstream ledger(base + "ledger.json", std::ios::binary);
    ASSERT_TRUE(ledger.good()) << base;
    ledger << r.audit->to_json(/*canonical=*/true);
  }
  {
    std::ofstream trace(base + "trace.json", std::ios::binary);
    ASSERT_TRUE(trace.good()) << base;
    trace << r.trace->to_json();
  }
  const obs::JournalVerification v =
      obs::verify_journal_file(base + "journal.jsonl");
  ASSERT_TRUE(v.ok) << v.error;
  EXPECT_DOUBLE_EQ(v.charged_eps, r.audit->spent());
}

}  // namespace
}  // namespace dpnet::core
