// Failpoint registry: zero-cost when disarmed, precise dispatch when
// armed, RAII scoping, and the faults.injected accounting.
#include "core/failpoint.hpp"

#include <gtest/gtest.h>

#include <stdexcept>
#include <string>

#include "core/metrics.hpp"

namespace dpnet::core::failpoint {
namespace {

TEST(Failpoint, DisarmedHitIsANoop) {
  const std::uint64_t before = fired_count();
  hit("chaos.test.never_armed");
  hit("chaos.test.never_armed", "detail");
  EXPECT_EQ(fired_count(), before);
}

TEST(Failpoint, ArmedActionReceivesDetailAndCounts) {
  const std::uint64_t fired_before = fired_count();
  const std::uint64_t metric_before =
      builtin_metrics::faults_injected().value();
  std::string seen;
  arm("chaos.test.basic", [&seen](std::string_view detail) {
    seen = std::string(detail);
  });
  hit("chaos.test.basic", "from-test");
  disarm("chaos.test.basic");
  EXPECT_EQ(seen, "from-test");
  EXPECT_EQ(fired_count(), fired_before + 1);
  EXPECT_EQ(builtin_metrics::faults_injected().value(), metric_before + 1);
}

TEST(Failpoint, OnlyTheNamedFailpointFires) {
  int fires = 0;
  arm("chaos.test.a", [&fires](std::string_view) { ++fires; });
  hit("chaos.test.b");  // armed registry, different name: no dispatch
  hit("chaos.test.a");
  disarm("chaos.test.a");
  EXPECT_EQ(fires, 1);
}

TEST(Failpoint, ActionsMayThrowThroughTheHit) {
  ScopedFailpoint fp("chaos.test.throws", [](std::string_view) {
    throw std::runtime_error("injected");
  });
  EXPECT_THROW(hit("chaos.test.throws"), std::runtime_error);
}

TEST(Failpoint, ScopedFailpointDisarmsOnExit) {
  int fires = 0;
  {
    ScopedFailpoint fp("chaos.test.scoped",
                       [&fires](std::string_view) { ++fires; });
    hit("chaos.test.scoped");
  }
  hit("chaos.test.scoped");  // out of scope: disarmed
  EXPECT_EQ(fires, 1);
}

TEST(Failpoint, DisarmAllClearsEverything) {
  int fires = 0;
  arm("chaos.test.all1", [&fires](std::string_view) { ++fires; });
  arm("chaos.test.all2", [&fires](std::string_view) { ++fires; });
  disarm_all();
  hit("chaos.test.all1");
  hit("chaos.test.all2");
  EXPECT_EQ(fires, 0);
}

TEST(Failpoint, RearmingReplacesTheAction) {
  int first = 0, second = 0;
  arm("chaos.test.rearm", [&first](std::string_view) { ++first; });
  arm("chaos.test.rearm", [&second](std::string_view) { ++second; });
  hit("chaos.test.rearm");
  disarm("chaos.test.rearm");
  EXPECT_EQ(first, 0);
  EXPECT_EQ(second, 1);
}

}  // namespace
}  // namespace dpnet::core::failpoint
