#include "net/trace_io.hpp"

#include <gtest/gtest.h>

#include <sstream>
#include <vector>

namespace dpnet::net {
namespace {

Packet sample_packet(int i) {
  Packet p;
  p.timestamp = 0.5 * i;
  p.src_ip = Ipv4(10, 0, 0, static_cast<std::uint8_t>(i + 1));
  p.dst_ip = Ipv4(198, 18, 0, 1);
  p.src_port = static_cast<std::uint16_t>(1000 + i);
  p.dst_port = 80;
  p.protocol = kProtoTcp;
  p.flags = TcpFlags{.syn = i % 2 == 0, .ack = true};
  p.seq = static_cast<std::uint32_t>(100 * i);
  p.ack_no = static_cast<std::uint32_t>(7 * i);
  p.length = static_cast<std::uint16_t>(40 + i);
  if (i % 3 == 0) p.payload = "payload-" + std::to_string(i);
  return p;
}

TEST(TraceIo, RoundTripsPackets) {
  std::vector<Packet> trace;
  for (int i = 0; i < 50; ++i) trace.push_back(sample_packet(i));
  std::stringstream buffer;
  write_trace(buffer, trace);
  const auto back = read_trace(buffer);
  EXPECT_EQ(back, trace);
}

TEST(TraceIo, RoundTripsEmptyTrace) {
  std::stringstream buffer;
  write_trace(buffer, {});
  EXPECT_TRUE(read_trace(buffer).empty());
}

TEST(TraceIo, RoundTripsBinaryPayloads) {
  Packet p = sample_packet(1);
  p.payload = std::string("\x00\xff\x7f\x01\x00", 5);
  std::stringstream buffer;
  write_trace(buffer, std::vector<Packet>{p});
  const auto back = read_trace(buffer);
  ASSERT_EQ(back.size(), 1u);
  EXPECT_EQ(back[0].payload.size(), 5u);
  EXPECT_EQ(back[0], p);
}

TEST(TraceIo, RejectsBadMagic) {
  std::stringstream buffer;
  buffer << "not a trace at all";
  EXPECT_THROW(read_trace(buffer), TraceIoError);
}

TEST(TraceIo, RejectsTruncatedStream) {
  std::vector<Packet> trace = {sample_packet(0), sample_packet(1)};
  std::stringstream buffer;
  write_trace(buffer, trace);
  const std::string full = buffer.str();
  std::stringstream cut(full.substr(0, full.size() - 10));
  EXPECT_THROW(read_trace(cut), TraceIoError);
}

TEST(TraceIo, StreamingWriterAndReaderAgree) {
  std::stringstream buffer;
  {
    TraceWriter writer(buffer);
    for (int i = 0; i < 10; ++i) writer.write(sample_packet(i));
    writer.finish();
  }
  TraceReader reader(buffer);
  EXPECT_EQ(reader.total(), 10u);
  Packet p;
  int count = 0;
  while (reader.next(p)) {
    EXPECT_EQ(p, sample_packet(count));
    ++count;
  }
  EXPECT_EQ(count, 10);
  EXPECT_EQ(reader.remaining(), 0u);
}

TEST(TraceIo, WriteAfterFinishThrows) {
  std::stringstream buffer;
  TraceWriter writer(buffer);
  writer.write(sample_packet(0));
  writer.finish();
  EXPECT_THROW(writer.write(sample_packet(1)), TraceIoError);
}

TEST(TraceIo, FileRoundTrip) {
  const std::string path = ::testing::TempDir() + "/dpnt_roundtrip.trace";
  std::vector<Packet> trace;
  for (int i = 0; i < 20; ++i) trace.push_back(sample_packet(i));
  write_trace_file(path, trace);
  EXPECT_EQ(read_trace_file(path), trace);
}

TEST(TraceIo, MissingFileThrows) {
  EXPECT_THROW(read_trace_file("/nonexistent/dir/trace.bin"), TraceIoError);
}

}  // namespace
}  // namespace dpnet::net
