#include "net/trace_io.hpp"

#include <gtest/gtest.h>

#include <chrono>
#include <cstdint>
#include <fstream>
#include <sstream>
#include <string>
#include <vector>

#include "core/failpoint.hpp"

namespace dpnet::net {
namespace {

Packet sample_packet(int i) {
  Packet p;
  p.timestamp = 0.5 * i;
  p.src_ip = Ipv4(10, 0, 0, static_cast<std::uint8_t>(i + 1));
  p.dst_ip = Ipv4(198, 18, 0, 1);
  p.src_port = static_cast<std::uint16_t>(1000 + i);
  p.dst_port = 80;
  p.protocol = kProtoTcp;
  p.flags = TcpFlags{.syn = i % 2 == 0, .ack = true};
  p.seq = static_cast<std::uint32_t>(100 * i);
  p.ack_no = static_cast<std::uint32_t>(7 * i);
  p.length = static_cast<std::uint16_t>(40 + i);
  if (i % 3 == 0) p.payload = "payload-" + std::to_string(i);
  return p;
}

TEST(TraceIo, RoundTripsPackets) {
  std::vector<Packet> trace;
  for (int i = 0; i < 50; ++i) trace.push_back(sample_packet(i));
  std::stringstream buffer;
  write_trace(buffer, trace);
  const auto back = read_trace(buffer);
  EXPECT_EQ(back, trace);
}

TEST(TraceIo, RoundTripsEmptyTrace) {
  std::stringstream buffer;
  write_trace(buffer, {});
  EXPECT_TRUE(read_trace(buffer).empty());
}

TEST(TraceIo, RoundTripsBinaryPayloads) {
  Packet p = sample_packet(1);
  p.payload = std::string("\x00\xff\x7f\x01\x00", 5);
  std::stringstream buffer;
  write_trace(buffer, std::vector<Packet>{p});
  const auto back = read_trace(buffer);
  ASSERT_EQ(back.size(), 1u);
  EXPECT_EQ(back[0].payload.size(), 5u);
  EXPECT_EQ(back[0], p);
}

TEST(TraceIo, RejectsBadMagic) {
  std::stringstream buffer;
  buffer << "not a trace at all";
  EXPECT_THROW(read_trace(buffer), TraceIoError);
}

TEST(TraceIo, RejectsTruncatedStream) {
  std::vector<Packet> trace = {sample_packet(0), sample_packet(1)};
  std::stringstream buffer;
  write_trace(buffer, trace);
  const std::string full = buffer.str();
  std::stringstream cut(full.substr(0, full.size() - 10));
  EXPECT_THROW(read_trace(cut), TraceIoError);
}

TEST(TraceIo, StreamingWriterAndReaderAgree) {
  std::stringstream buffer;
  {
    TraceWriter writer(buffer);
    for (int i = 0; i < 10; ++i) writer.write(sample_packet(i));
    writer.finish();
  }
  TraceReader reader(buffer);
  EXPECT_EQ(reader.total(), 10u);
  Packet p;
  int count = 0;
  while (reader.next(p)) {
    EXPECT_EQ(p, sample_packet(count));
    ++count;
  }
  EXPECT_EQ(count, 10);
  EXPECT_EQ(reader.remaining(), 0u);
}

TEST(TraceIo, WriteAfterFinishThrows) {
  std::stringstream buffer;
  TraceWriter writer(buffer);
  writer.write(sample_packet(0));
  writer.finish();
  EXPECT_THROW(writer.write(sample_packet(1)), TraceIoError);
}

TEST(TraceIo, FileRoundTrip) {
  const std::string path = ::testing::TempDir() + "/dpnt_roundtrip.trace";
  std::vector<Packet> trace;
  for (int i = 0; i < 20; ++i) trace.push_back(sample_packet(i));
  write_trace_file(path, trace);
  EXPECT_EQ(read_trace_file(path), trace);
}

TEST(TraceIo, MissingFileThrows) {
  EXPECT_THROW(read_trace_file("/nonexistent/dir/trace.bin"), TraceIoError);
}

// ---------------------------------------------------------------------
// Robustness: v2 framing, corruption detection, degraded mode, retry.
// ---------------------------------------------------------------------

template <typename T>
void put_raw(std::ostream& out, T value) {
  out.write(reinterpret_cast<const char*>(&value), sizeof(value));
}

/// Hand-writes a version-1 (unframed) container, byte-for-byte the
/// pre-v2 writer's output, so the legacy read path stays covered.
void write_legacy_trace(std::ostream& out, const std::vector<Packet>& trace) {
  put_raw(out, kTraceMagic);
  put_raw(out, kTraceVersionLegacy);
  put_raw(out, static_cast<std::uint64_t>(trace.size()));
  for (const Packet& p : trace) {
    put_raw(out, p.timestamp);
    put_raw(out, p.src_ip.value);
    put_raw(out, p.dst_ip.value);
    put_raw(out, p.src_port);
    put_raw(out, p.dst_port);
    put_raw(out, p.protocol);
    put_raw(out, p.flags.to_byte());
    put_raw(out, p.seq);
    put_raw(out, p.ack_no);
    put_raw(out, p.length);
    put_raw(out, static_cast<std::uint32_t>(p.payload.size()));
    out.write(p.payload.data(),
              static_cast<std::streamsize>(p.payload.size()));
  }
}

/// Packets with distinctive payloads so tests can corrupt a specific
/// record by locating its payload bytes in the serialized buffer.
Packet tagged_packet(int i) {
  Packet p = sample_packet(i);
  p.payload = "pkt-" + std::to_string(i);
  return p;
}

std::string serialized(const std::vector<Packet>& trace) {
  std::stringstream buffer;
  write_trace(buffer, trace);
  return buffer.str();
}

TEST(TraceIo, WritesVersionTwo) {
  std::stringstream buffer;
  write_trace(buffer, std::vector<Packet>{sample_packet(0)});
  TraceReader reader(buffer);
  EXPECT_EQ(reader.version(), kTraceVersion);
  EXPECT_EQ(reader.total(), 1u);
}

TEST(TraceIo, ReadsLegacyV1Containers) {
  std::vector<Packet> trace;
  for (int i = 0; i < 8; ++i) trace.push_back(sample_packet(i));
  std::stringstream buffer;
  write_legacy_trace(buffer, trace);
  EXPECT_EQ(read_trace(buffer), trace);
}

TEST(TraceIo, LegacyTruncationIsFormatError) {
  std::stringstream buffer;
  write_legacy_trace(buffer, {sample_packet(0), sample_packet(1)});
  const std::string full = buffer.str();
  std::stringstream cut(full.substr(0, full.size() - 5));
  EXPECT_THROW(read_trace(cut), TraceFormatError);
}

TEST(TraceIo, BitFlipIsDetectedByChecksum) {
  std::string bytes = serialized({tagged_packet(0), tagged_packet(1)});
  const std::size_t pos = bytes.find("pkt-0");
  ASSERT_NE(pos, std::string::npos);
  bytes[pos] ^= 0x20;
  std::stringstream corrupted(bytes);
  try {
    read_trace(corrupted);
    FAIL() << "corruption not detected";
  } catch (const TraceFormatError& e) {
    EXPECT_EQ(e.record_index(), 0u);
    EXPECT_NE(std::string(e.what()).find("checksum"), std::string::npos);
  }
}

TEST(TraceIo, FormatErrorCarriesRecordIndex) {
  std::string bytes =
      serialized({tagged_packet(0), tagged_packet(1), tagged_packet(2)});
  const std::size_t pos = bytes.find("pkt-1");
  ASSERT_NE(pos, std::string::npos);
  bytes[pos] ^= 0x01;
  std::stringstream corrupted(bytes);
  try {
    read_trace(corrupted);
    FAIL() << "corruption not detected";
  } catch (const TraceFormatError& e) {
    EXPECT_EQ(e.record_index(), 1u);
  }
}

TEST(TraceIo, QuarantineSkipsCorruptRecordAndResyncs) {
  std::vector<Packet> trace;
  for (int i = 0; i < 5; ++i) trace.push_back(tagged_packet(i));
  std::string bytes = serialized(trace);
  const std::size_t pos = bytes.find("pkt-2");
  ASSERT_NE(pos, std::string::npos);
  bytes[pos] ^= 0x40;

  std::stringstream corrupted(bytes);
  TraceReader reader(corrupted, TraceReadOptions{.quarantine = true});
  std::vector<Packet> got;
  Packet p;
  while (reader.next(p)) got.push_back(p);
  const std::vector<Packet> expected = {trace[0], trace[1], trace[3],
                                        trace[4]};
  EXPECT_EQ(got, expected);
  EXPECT_EQ(reader.quarantined(), 1u);
}

TEST(TraceIo, QuarantineToleratesTruncatedTail) {
  std::vector<Packet> trace = {tagged_packet(0), tagged_packet(1),
                               tagged_packet(2)};
  const std::string full = serialized(trace);
  std::stringstream cut(full.substr(0, full.size() - 6));
  TraceReader reader(cut, TraceReadOptions{.quarantine = true});
  std::vector<Packet> got;
  Packet p;
  while (reader.next(p)) got.push_back(p);
  const std::vector<Packet> expected = {trace[0], trace[1]};
  EXPECT_EQ(got, expected);
  EXPECT_EQ(reader.quarantined(), 1u);
  EXPECT_EQ(reader.remaining(), 0u);
}

TEST(TraceIo, QuarantineLimitStillBoundsCorruption) {
  std::string bytes = serialized({tagged_packet(0), tagged_packet(1)});
  const std::size_t pos = bytes.find("pkt-0");
  ASSERT_NE(pos, std::string::npos);
  bytes[pos] ^= 0x40;
  std::stringstream corrupted(bytes);
  TraceReader reader(
      corrupted, TraceReadOptions{.quarantine = true, .max_quarantined = 0});
  Packet p;
  EXPECT_THROW(
      {
        while (reader.next(p)) {
        }
      },
      TraceFormatError);
}

TEST(TraceIo, TransientFaultsRetryDeterministically) {
  const std::string path = ::testing::TempDir() + "/dpnt_retry.trace";
  write_trace_file(path, std::vector<Packet>{sample_packet(0)});

  int failures_left = 2;
  core::failpoint::ScopedFailpoint fp(
      "net.trace_io.read", [&failures_left](std::string_view) {
        if (failures_left > 0) {
          --failures_left;
          throw TransientIoError("injected transient fault");
        }
      });
  TraceReadOptions options;
  options.max_retries = 2;
  options.retry_backoff = std::chrono::milliseconds(0);
  EXPECT_EQ(read_trace_file(path, options).size(), 1u);
  EXPECT_EQ(failures_left, 0);
}

TEST(TraceIo, TransientRetriesAreBounded) {
  const std::string path = ::testing::TempDir() + "/dpnt_retry_fail.trace";
  write_trace_file(path, std::vector<Packet>{sample_packet(0)});

  int attempts = 0;
  core::failpoint::ScopedFailpoint fp("net.trace_io.read",
                                      [&attempts](std::string_view) {
                                        ++attempts;
                                        throw TransientIoError("injected");
                                      });
  TraceReadOptions options;
  options.max_retries = 3;
  options.retry_backoff = std::chrono::milliseconds(0);
  EXPECT_THROW(read_trace_file(path, options), TransientIoError);
  EXPECT_EQ(attempts, 4);  // first try + 3 retries, then give up
}

}  // namespace
}  // namespace dpnet::net
