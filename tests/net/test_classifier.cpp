#include "net/classifier.hpp"

#include <gtest/gtest.h>

namespace dpnet::net {
namespace {

Packet packet(std::uint16_t dst_port, std::uint8_t proto = kProtoTcp,
              std::uint16_t length = 100) {
  Packet p;
  p.dst_port = dst_port;
  p.protocol = proto;
  p.length = length;
  p.src_ip = Ipv4(10, 0, 0, 1);
  p.dst_ip = Ipv4(198, 18, 0, 1);
  return p;
}

TEST(PacketClassifier, ServiceMixLabelsCommonPorts) {
  const auto clf = PacketClassifier::service_mix();
  EXPECT_EQ(clf.classify(packet(80)), "web");
  EXPECT_EQ(clf.classify(packet(8080)), "web");
  EXPECT_EQ(clf.classify(packet(443)), "tls");
  EXPECT_EQ(clf.classify(packet(25)), "mail");
  EXPECT_EQ(clf.classify(packet(993)), "mail");
  EXPECT_EQ(clf.classify(packet(22)), "ssh");
  EXPECT_EQ(clf.classify(packet(445)), "smb");
  EXPECT_EQ(clf.classify(packet(53, kProtoUdp)), "dns");
}

TEST(PacketClassifier, UnmatchedTrafficGetsDefaultLabel) {
  const auto clf = PacketClassifier::service_mix();
  EXPECT_EQ(clf.classify(packet(31337)), "other");
  // TCP port 53 does not match the UDP-only DNS rule.
  EXPECT_EQ(clf.classify(packet(53, kProtoTcp)), "other");
}

TEST(PacketClassifier, IndexAgreesWithLabel) {
  const auto clf = PacketClassifier::service_mix();
  const Packet p = packet(443);
  EXPECT_EQ(clf.labels()[static_cast<std::size_t>(clf.classify_index(p))],
            clf.classify(p));
}

TEST(PacketClassifier, DefaultLabelIsLastInLabels) {
  const auto clf = PacketClassifier::service_mix();
  EXPECT_EQ(clf.labels().back(), "other");
}

TEST(PacketClassifier, PriorityDecidesOverlaps) {
  std::vector<ClassifierRule> rules;
  ClassifierRule broad;
  broad.label = "any-low-port";
  broad.priority = 20;
  broad.dst_port_lo = 0;
  broad.dst_port_hi = 1023;
  ClassifierRule narrow;
  narrow.label = "http";
  narrow.priority = 5;
  narrow.dst_port_lo = 80;
  narrow.dst_port_hi = 80;
  rules.push_back(broad);
  rules.push_back(narrow);
  PacketClassifier clf(rules);
  EXPECT_EQ(clf.classify(packet(80)), "http");
  EXPECT_EQ(clf.classify(packet(81)), "any-low-port");
}

TEST(PacketClassifier, PrefixRulesRestrictAddresses) {
  ClassifierRule internal;
  internal.label = "internal";
  internal.src_prefix = Ipv4(10, 0, 0, 0);
  internal.src_prefix_len = 8;
  PacketClassifier clf({internal});
  Packet inside = packet(80);
  EXPECT_EQ(clf.classify(inside), "internal");
  Packet outside = packet(80);
  outside.src_ip = Ipv4(203, 0, 0, 1);
  EXPECT_EQ(clf.classify(outside), "other");
}

TEST(PacketClassifier, MinLengthFiltersSmallPackets) {
  ClassifierRule bulky;
  bulky.label = "bulk";
  bulky.min_length = 1000;
  PacketClassifier clf({bulky});
  EXPECT_EQ(clf.classify(packet(80, kProtoTcp, 1400)), "bulk");
  EXPECT_EQ(clf.classify(packet(80, kProtoTcp, 40)), "other");
}

TEST(PacketClassifier, RejectsMalformedRules) {
  ClassifierRule unnamed;
  EXPECT_THROW(PacketClassifier({unnamed}), std::invalid_argument);
  ClassifierRule inverted;
  inverted.label = "x";
  inverted.dst_port_lo = 100;
  inverted.dst_port_hi = 50;
  EXPECT_THROW(PacketClassifier({inverted}), std::invalid_argument);
}

TEST(PacketClassifier, SharedLabelAcrossRulesCollapses) {
  const auto clf = PacketClassifier::service_mix();
  // "web" appears for both 80 and 8080 but is one label.
  int count = 0;
  for (const auto& l : clf.labels()) {
    if (l == "web") ++count;
  }
  EXPECT_EQ(count, 1);
}

}  // namespace
}  // namespace dpnet::net
