#include "net/tcp.hpp"

#include <gtest/gtest.h>

#include <vector>

namespace dpnet::net {
namespace {

Packet packet(double t, Ipv4 src, Ipv4 dst, std::uint16_t sport,
              std::uint16_t dport, TcpFlags flags, std::uint32_t seq,
              std::uint32_t ack, std::uint16_t len) {
  Packet p;
  p.timestamp = t;
  p.src_ip = src;
  p.dst_ip = dst;
  p.src_port = sport;
  p.dst_port = dport;
  p.protocol = kProtoTcp;
  p.flags = flags;
  p.seq = seq;
  p.ack_no = ack;
  p.length = len;
  return p;
}

const Ipv4 kClient(10, 0, 0, 1);
const Ipv4 kServer(198, 18, 0, 1);
constexpr TcpFlags kSyn{.syn = true};
constexpr TcpFlags kSynAck{.syn = true, .ack = true};
constexpr TcpFlags kData{.ack = true, .psh = true};

TEST(HandshakeRtts, MatchesSynWithSynAck) {
  std::vector<Packet> trace = {
      packet(1.0, kClient, kServer, 1000, 80, kSyn, 500, 0, 40),
      packet(1.05, kServer, kClient, 80, 1000, kSynAck, 900, 501, 40),
  };
  const auto rtts = handshake_rtts(trace);
  ASSERT_EQ(rtts.size(), 1u);
  EXPECT_NEAR(rtts[0].rtt_s, 0.05, 1e-9);
  EXPECT_EQ(rtts[0].flow.src_ip, kClient);
}

TEST(HandshakeRtts, IgnoresMismatchedAckNumbers) {
  std::vector<Packet> trace = {
      packet(1.0, kClient, kServer, 1000, 80, kSyn, 500, 0, 40),
      packet(1.05, kServer, kClient, 80, 1000, kSynAck, 900, 777, 40),
  };
  EXPECT_TRUE(handshake_rtts(trace).empty());
}

TEST(HandshakeRtts, MatchesEachSynAtMostOnce) {
  std::vector<Packet> trace = {
      packet(1.0, kClient, kServer, 1000, 80, kSyn, 500, 0, 40),
      packet(1.05, kServer, kClient, 80, 1000, kSynAck, 900, 501, 40),
      packet(1.30, kServer, kClient, 80, 1000, kSynAck, 900, 501, 40),
  };
  EXPECT_EQ(handshake_rtts(trace).size(), 1u);
}

TEST(HandshakeRtts, SynAckOnDifferentFlowIgnored) {
  std::vector<Packet> trace = {
      packet(1.0, kClient, kServer, 1000, 80, kSyn, 500, 0, 40),
      packet(1.05, kServer, kClient, 80, 2000, kSynAck, 900, 501, 40),
  };
  EXPECT_TRUE(handshake_rtts(trace).empty());
}

TEST(RetransmitDiffs, DetectsRepeatedSequenceNumbers) {
  std::vector<Packet> trace = {
      packet(1.0, kClient, kServer, 1000, 80, kData, 100, 0, 500),
      packet(1.2, kClient, kServer, 1000, 80, kData, 100, 0, 500),
  };
  const auto diffs = retransmit_time_diffs_ms(trace);
  ASSERT_EQ(diffs.size(), 1u);
  EXPECT_NEAR(diffs[0], 200.0, 1e-6);
}

TEST(RetransmitDiffs, MeasuresFromMostRecentTransmission) {
  std::vector<Packet> trace = {
      packet(1.0, kClient, kServer, 1000, 80, kData, 100, 0, 500),
      packet(1.2, kClient, kServer, 1000, 80, kData, 100, 0, 500),
      packet(1.5, kClient, kServer, 1000, 80, kData, 100, 0, 500),
  };
  const auto diffs = retransmit_time_diffs_ms(trace);
  ASSERT_EQ(diffs.size(), 2u);
  EXPECT_NEAR(diffs[0], 200.0, 1e-6);
  EXPECT_NEAR(diffs[1], 300.0, 1e-6);
}

TEST(RetransmitDiffs, IgnoresPureAcksAndSyns) {
  std::vector<Packet> trace = {
      packet(1.0, kClient, kServer, 1000, 80, kSyn, 100, 0, 40),
      packet(1.2, kClient, kServer, 1000, 80, kSyn, 100, 0, 40),
      packet(1.4, kClient, kServer, 1000, 80, TcpFlags{.ack = true}, 101, 5,
             40),
      packet(1.6, kClient, kServer, 1000, 80, TcpFlags{.ack = true}, 101, 5,
             40),
  };
  EXPECT_TRUE(retransmit_time_diffs_ms(trace).empty());
}

TEST(RetransmitDiffs, SeparatesFlows) {
  std::vector<Packet> trace = {
      packet(1.0, kClient, kServer, 1000, 80, kData, 100, 0, 500),
      packet(1.5, kClient, kServer, 2000, 80, kData, 100, 0, 500),
  };
  EXPECT_TRUE(retransmit_time_diffs_ms(trace).empty());
}

TEST(FlowLossRate, ZeroWhenAllSequencesDistinct) {
  std::vector<Packet> flow = {
      packet(1.0, kClient, kServer, 1000, 80, kData, 100, 0, 500),
      packet(1.1, kClient, kServer, 1000, 80, kData, 200, 0, 500),
  };
  EXPECT_DOUBLE_EQ(flow_loss_rate(flow), 0.0);
}

TEST(FlowLossRate, CountsDuplicatesAsLoss) {
  std::vector<Packet> flow = {
      packet(1.0, kClient, kServer, 1000, 80, kData, 100, 0, 500),
      packet(1.1, kClient, kServer, 1000, 80, kData, 100, 0, 500),
      packet(1.2, kClient, kServer, 1000, 80, kData, 200, 0, 500),
      packet(1.3, kClient, kServer, 1000, 80, kData, 300, 0, 500),
  };
  EXPECT_DOUBLE_EQ(flow_loss_rate(flow), 0.25);
}

TEST(FlowLossRate, EmptyFlowIsZero) {
  EXPECT_DOUBLE_EQ(flow_loss_rate({}), 0.0);
}

TEST(OutOfOrder, CountsReorderingButNotRetransmissions) {
  std::vector<Packet> flow = {
      packet(1.0, kClient, kServer, 1000, 80, kData, 100, 0, 500),
      packet(1.1, kClient, kServer, 1000, 80, kData, 300, 0, 500),
      packet(1.2, kClient, kServer, 1000, 80, kData, 200, 0, 500),  // ooo
      packet(1.3, kClient, kServer, 1000, 80, kData, 300, 0, 500),  // retx
  };
  EXPECT_EQ(out_of_order_count(flow), 1u);
}

TEST(Activations, FirstPacketIsAnActivation) {
  std::vector<Packet> trace = {
      packet(1.0, kClient, kServer, 1000, 22, kData, 1, 0, 92),
  };
  const auto acts = extract_activations(trace, 0.5);
  ASSERT_EQ(acts.size(), 1u);
  EXPECT_DOUBLE_EQ(acts[0].time, 1.0);
}

TEST(Activations, GapBeyondIdleTimeoutStartsNewActivation) {
  std::vector<Packet> trace = {
      packet(1.0, kClient, kServer, 1000, 22, kData, 1, 0, 92),
      packet(1.3, kClient, kServer, 1000, 22, kData, 2, 0, 92),  // active
      packet(2.5, kClient, kServer, 1000, 22, kData, 3, 0, 92),  // idle gap
  };
  const auto acts = extract_activations(trace, 0.5);
  ASSERT_EQ(acts.size(), 2u);
  EXPECT_DOUBLE_EQ(acts[0].time, 1.0);
  EXPECT_DOUBLE_EQ(acts[1].time, 2.5);
}

TEST(Activations, FlowsAreIndependent) {
  std::vector<Packet> trace = {
      packet(1.0, kClient, kServer, 1000, 22, kData, 1, 0, 92),
      packet(1.1, kClient, kServer, 2000, 22, kData, 1, 0, 92),
  };
  EXPECT_EQ(extract_activations(trace, 0.5).size(), 2u);
}

TEST(GroupFlows, PreservesPerFlowOrder) {
  std::vector<Packet> trace = {
      packet(1.0, kClient, kServer, 1000, 80, kData, 1, 0, 100),
      packet(1.1, kClient, kServer, 2000, 80, kData, 2, 0, 100),
      packet(1.2, kClient, kServer, 1000, 80, kData, 3, 0, 100),
  };
  const auto flows = group_flows(trace);
  ASSERT_EQ(flows.size(), 2u);
  const auto& f = flows.at(flow_of(trace[0]));
  ASSERT_EQ(f.size(), 2u);
  EXPECT_EQ(f[0].seq, 1u);
  EXPECT_EQ(f[1].seq, 3u);
}

}  // namespace
}  // namespace dpnet::net
