#include "net/pcap.hpp"

#include <gtest/gtest.h>

#include <sstream>

namespace dpnet::net {
namespace {

Packet tcp_packet(int i) {
  Packet p;
  p.timestamp = 100.0 + i * 0.25;
  p.src_ip = Ipv4(10, 0, 0, static_cast<std::uint8_t>(i + 1));
  p.dst_ip = Ipv4(198, 18, 0, 1);
  p.src_port = static_cast<std::uint16_t>(4000 + i);
  p.dst_port = 80;
  p.protocol = kProtoTcp;
  p.flags = TcpFlags{.syn = i % 2 == 0, .ack = true, .psh = i % 3 == 0};
  p.seq = static_cast<std::uint32_t>(1000 * i);
  p.ack_no = static_cast<std::uint32_t>(77 * i);
  p.payload = i % 2 == 0 ? "" : "GET /i" + std::to_string(i);
  p.length = static_cast<std::uint16_t>(60 + p.payload.size());
  return p;
}

Packet udp_packet() {
  Packet p;
  p.timestamp = 5.5;
  p.src_ip = Ipv4(10, 0, 0, 9);
  p.dst_ip = Ipv4(8, 8, 8, 8);
  p.src_port = 5353;
  p.dst_port = 53;
  p.protocol = kProtoUdp;
  p.payload = "dns?";
  p.length = 46;
  return p;
}

TEST(Pcap, RoundTripsTcpFields) {
  std::vector<Packet> trace;
  for (int i = 0; i < 8; ++i) trace.push_back(tcp_packet(i));
  std::stringstream buffer;
  write_pcap(buffer, trace);
  const auto result = read_pcap(buffer);
  EXPECT_EQ(result.skipped, 0u);
  ASSERT_EQ(result.packets.size(), trace.size());
  for (std::size_t i = 0; i < trace.size(); ++i) {
    const Packet& a = trace[i];
    const Packet& b = result.packets[i];
    EXPECT_NEAR(b.timestamp, a.timestamp, 2e-6);
    EXPECT_EQ(b.src_ip, a.src_ip);
    EXPECT_EQ(b.dst_ip, a.dst_ip);
    EXPECT_EQ(b.src_port, a.src_port);
    EXPECT_EQ(b.dst_port, a.dst_port);
    EXPECT_EQ(b.protocol, a.protocol);
    EXPECT_EQ(b.flags, a.flags);
    EXPECT_EQ(b.seq, a.seq);
    EXPECT_EQ(b.ack_no, a.ack_no);
    EXPECT_EQ(b.payload, a.payload);
  }
}

TEST(Pcap, RoundTripsUdp) {
  std::stringstream buffer;
  write_pcap(buffer, std::vector<Packet>{udp_packet()});
  const auto result = read_pcap(buffer);
  ASSERT_EQ(result.packets.size(), 1u);
  EXPECT_EQ(result.packets[0].protocol, kProtoUdp);
  EXPECT_EQ(result.packets[0].dst_port, 53);
  EXPECT_EQ(result.packets[0].payload, "dns?");
}

TEST(Pcap, OriginalLengthIsPreservedWhenLarger) {
  Packet p = tcp_packet(1);
  p.payload.clear();
  p.length = 1492;  // on-wire length larger than the captured frame
  std::stringstream buffer;
  write_pcap(buffer, std::vector<Packet>{p});
  const auto result = read_pcap(buffer);
  ASSERT_EQ(result.packets.size(), 1u);
  EXPECT_EQ(result.packets[0].length, 1492);
}

TEST(Pcap, RejectsGarbage) {
  std::stringstream buffer;
  buffer << "this is not a capture";
  EXPECT_THROW(read_pcap(buffer), PcapError);
}

TEST(Pcap, RejectsEmptyStream) {
  std::stringstream buffer;
  EXPECT_THROW(read_pcap(buffer), PcapError);
}

TEST(Pcap, RejectsTruncatedRecord) {
  std::stringstream buffer;
  write_pcap(buffer, std::vector<Packet>{tcp_packet(0)});
  const std::string full = buffer.str();
  std::stringstream cut(full.substr(0, full.size() - 5));
  EXPECT_THROW(read_pcap(cut), PcapError);
}

TEST(Pcap, EmptyCaptureRoundTrips) {
  std::stringstream buffer;
  write_pcap(buffer, {});
  const auto result = read_pcap(buffer);
  EXPECT_TRUE(result.packets.empty());
  EXPECT_EQ(result.skipped, 0u);
}

TEST(Pcap, SkipsNonIpv4FramesWithoutFailing) {
  // Hand-craft a capture with one ARP frame (ethertype 0x0806).
  std::stringstream buffer;
  write_pcap(buffer, std::vector<Packet>{tcp_packet(0)});
  std::string bytes = buffer.str();
  // Append a record header (host order) + a tiny ARP frame.
  auto put32 = [&bytes](std::uint32_t v) {
    bytes.append(reinterpret_cast<const char*>(&v), 4);
  };
  put32(0);   // ts_sec
  put32(0);   // ts_usec
  put32(16);  // incl_len
  put32(16);  // orig_len
  std::string arp(16, '\0');
  arp[12] = 0x08;
  arp[13] = 0x06;
  bytes += arp;

  std::stringstream combined(bytes);
  const auto result = read_pcap(combined);
  EXPECT_EQ(result.packets.size(), 1u);
  EXPECT_EQ(result.skipped, 1u);
}

TEST(Pcap, FileRoundTrip) {
  const std::string path = ::testing::TempDir() + "/dpnet_test.pcap";
  std::vector<Packet> trace;
  for (int i = 0; i < 5; ++i) trace.push_back(tcp_packet(i));
  write_pcap_file(path, trace);
  const auto result = read_pcap_file(path);
  EXPECT_EQ(result.packets.size(), trace.size());
}

TEST(Pcap, MissingFileThrows) {
  EXPECT_THROW(read_pcap_file("/nonexistent/file.pcap"), PcapError);
}

}  // namespace
}  // namespace dpnet::net
