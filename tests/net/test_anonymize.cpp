#include "net/anonymize.hpp"

#include <gtest/gtest.h>

#include <random>
#include <unordered_set>

namespace dpnet::net {
namespace {

TEST(CommonPrefixLen, HandComputedCases) {
  EXPECT_EQ(common_prefix_len(Ipv4(10, 0, 0, 1), Ipv4(10, 0, 0, 1)), 32);
  EXPECT_EQ(common_prefix_len(Ipv4(10, 0, 0, 0), Ipv4(10, 0, 0, 1)), 31);
  EXPECT_EQ(common_prefix_len(Ipv4(10, 0, 0, 0), Ipv4(10, 128, 0, 0)), 8);
  EXPECT_EQ(common_prefix_len(Ipv4(0, 0, 0, 0), Ipv4(128, 0, 0, 0)), 0);
}

TEST(AnonymizeIp, DeterministicUnderSameKey) {
  const Ipv4 ip(192, 168, 1, 77);
  EXPECT_EQ(anonymize_ip(ip, 42).value, anonymize_ip(ip, 42).value);
  EXPECT_NE(anonymize_ip(ip, 42).value, anonymize_ip(ip, 43).value);
}

TEST(AnonymizeIp, IsInjectivePerKey) {
  std::unordered_set<std::uint32_t> outputs;
  for (std::uint32_t i = 0; i < 5000; ++i) {
    outputs.insert(anonymize_ip(Ipv4((10u << 24) + i * 7919u), 9).value);
  }
  EXPECT_EQ(outputs.size(), 5000u);
}

TEST(AnonymizeIp, PreservesPrefixLengthsExactly) {
  std::mt19937_64 rng(3);
  for (int trial = 0; trial < 2000; ++trial) {
    const Ipv4 a(static_cast<std::uint32_t>(rng()));
    const Ipv4 b(static_cast<std::uint32_t>(rng()));
    const int before = common_prefix_len(a, b);
    const int after =
        common_prefix_len(anonymize_ip(a, 77), anonymize_ip(b, 77));
    EXPECT_EQ(before, after) << a.to_string() << " vs " << b.to_string();
  }
}

TEST(AnonymizeIp, ActuallyChangesMostAddresses) {
  int unchanged = 0;
  for (std::uint32_t i = 0; i < 1000; ++i) {
    const Ipv4 ip((172u << 24) + i);
    if (anonymize_ip(ip, 123).value == ip.value) ++unchanged;
  }
  EXPECT_LT(unchanged, 10);
}

TEST(AnonymizeTrace, RewritesEndpointsAndStripsPayloads) {
  Packet p;
  p.src_ip = Ipv4(10, 0, 0, 1);
  p.dst_ip = Ipv4(198, 18, 0, 1);
  p.payload = "secret";
  p.length = 100;
  const auto out = anonymize_trace(std::vector<Packet>{p});
  ASSERT_EQ(out.size(), 1u);
  EXPECT_NE(out[0].src_ip, p.src_ip);
  EXPECT_NE(out[0].dst_ip, p.dst_ip);
  EXPECT_TRUE(out[0].payload.empty());
  EXPECT_EQ(out[0].length, 100);  // structure preserved
}

TEST(AnonymizeTrace, KeepsPayloadsWhenAskedTo) {
  Packet p;
  p.payload = "body";
  AnonymizeOptions opt;
  opt.strip_payloads = false;
  const auto out = anonymize_trace(std::vector<Packet>{p}, opt);
  EXPECT_EQ(out[0].payload, "body");
}

TEST(AnonymizeTrace, SameHostMapsConsistentlyAcrossPackets) {
  std::vector<Packet> trace(3);
  for (auto& p : trace) {
    p.src_ip = Ipv4(10, 1, 2, 3);
    p.dst_ip = Ipv4(8, 8, 8, 8);
  }
  const auto out = anonymize_trace(trace);
  EXPECT_EQ(out[0].src_ip, out[1].src_ip);
  EXPECT_EQ(out[1].src_ip, out[2].src_ip);
}

TEST(AnonymizeTrace, ZeroTimestampsRebasesToTraceStart) {
  std::vector<Packet> trace(2);
  trace[0].timestamp = 100.5;
  trace[1].timestamp = 101.25;
  AnonymizeOptions opt;
  opt.zero_timestamps = true;
  const auto out = anonymize_trace(trace, opt);
  EXPECT_DOUBLE_EQ(out[0].timestamp, 0.0);
  EXPECT_DOUBLE_EQ(out[1].timestamp, 0.75);
}

TEST(AnonymizeTrace, SubnetStructureSurvives) {
  // Hosts in one /24 stay in one (different) /24 — the property that both
  // keeps research value and enables the fingerprinting attacks of §6.
  std::vector<Packet> trace(10);
  for (int i = 0; i < 10; ++i) {
    trace[static_cast<std::size_t>(i)].src_ip =
        Ipv4(10, 5, 5, static_cast<std::uint8_t>(i + 1));
  }
  const auto out = anonymize_trace(trace);
  for (std::size_t i = 1; i < out.size(); ++i) {
    EXPECT_GE(common_prefix_len(out[0].src_ip, out[i].src_ip), 24);
  }
}

}  // namespace
}  // namespace dpnet::net
