#include "net/packet.hpp"

#include <gtest/gtest.h>

#include <unordered_set>

namespace dpnet::net {
namespace {

TEST(TcpFlags, ByteRoundTrip) {
  TcpFlags f;
  f.syn = true;
  f.ack = true;
  f.psh = true;
  const TcpFlags back = TcpFlags::from_byte(f.to_byte());
  EXPECT_EQ(back, f);
}

TEST(TcpFlags, AllFlagBitsAreIndependent) {
  for (int bits = 0; bits < 32; ++bits) {
    TcpFlags f;
    f.fin = bits & 1;
    f.syn = bits & 2;
    f.rst = bits & 4;
    f.psh = bits & 8;
    f.ack = bits & 16;
    EXPECT_EQ(TcpFlags::from_byte(f.to_byte()), f);
  }
}

TEST(FlowKey, FlowOfExtractsFiveTuple) {
  Packet p;
  p.src_ip = Ipv4(10, 0, 0, 1);
  p.dst_ip = Ipv4(10, 0, 0, 2);
  p.src_port = 1234;
  p.dst_port = 80;
  p.protocol = kProtoTcp;
  const FlowKey k = flow_of(p);
  EXPECT_EQ(k.src_ip, p.src_ip);
  EXPECT_EQ(k.dst_ip, p.dst_ip);
  EXPECT_EQ(k.src_port, 1234);
  EXPECT_EQ(k.dst_port, 80);
  EXPECT_EQ(k.protocol, kProtoTcp);
}

TEST(FlowKey, ReversedSwapsEndpoints) {
  const FlowKey k{Ipv4(1, 1, 1, 1), Ipv4(2, 2, 2, 2), 10, 20, kProtoTcp};
  const FlowKey r = k.reversed();
  EXPECT_EQ(r.src_ip, k.dst_ip);
  EXPECT_EQ(r.dst_ip, k.src_ip);
  EXPECT_EQ(r.src_port, k.dst_port);
  EXPECT_EQ(r.dst_port, k.src_port);
  EXPECT_EQ(r.reversed(), k);
}

TEST(FlowKey, CanonicalIsDirectionInsensitive) {
  const FlowKey k{Ipv4(9, 9, 9, 9), Ipv4(2, 2, 2, 2), 10, 20, kProtoTcp};
  EXPECT_EQ(k.canonical(), k.reversed().canonical());
  // Canonicalizing twice is stable.
  EXPECT_EQ(k.canonical(), k.canonical().canonical());
}

TEST(FlowKey, HashEqualsForEqualKeys) {
  const FlowKey a{Ipv4(1, 2, 3, 4), Ipv4(5, 6, 7, 8), 1, 2, kProtoTcp};
  const FlowKey b = a;
  EXPECT_EQ(std::hash<FlowKey>{}(a), std::hash<FlowKey>{}(b));
  std::unordered_set<FlowKey> set{a, b};
  EXPECT_EQ(set.size(), 1u);
}

TEST(FlowKey, ToStringIsHumanReadable) {
  const FlowKey k{Ipv4(10, 0, 0, 1), Ipv4(10, 0, 0, 2), 1234, 80, kProtoTcp};
  EXPECT_EQ(k.to_string(), "10.0.0.1:1234->10.0.0.2:80/6");
}

}  // namespace
}  // namespace dpnet::net
