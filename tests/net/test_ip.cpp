#include "net/ip.hpp"

#include <gtest/gtest.h>

#include <unordered_set>

namespace dpnet::net {
namespace {

TEST(Ipv4, OctetConstructorLaysOutBigEndian) {
  const Ipv4 ip(10, 0, 1, 2);
  EXPECT_EQ(ip.value, 0x0A000102u);
}

TEST(Ipv4, ToStringRendersDottedQuad) {
  EXPECT_EQ(Ipv4(192, 168, 0, 1).to_string(), "192.168.0.1");
  EXPECT_EQ(Ipv4(0, 0, 0, 0).to_string(), "0.0.0.0");
  EXPECT_EQ(Ipv4(255, 255, 255, 255).to_string(), "255.255.255.255");
}

TEST(Ipv4, FromStringRoundTrips) {
  for (const char* text : {"1.2.3.4", "10.0.0.1", "203.0.113.7"}) {
    EXPECT_EQ(Ipv4::from_string(text).to_string(), text);
  }
}

TEST(Ipv4, FromStringRejectsMalformedInput) {
  EXPECT_THROW(Ipv4::from_string("1.2.3"), std::invalid_argument);
  EXPECT_THROW(Ipv4::from_string("1.2.3.4.5"), std::invalid_argument);
  EXPECT_THROW(Ipv4::from_string("256.1.1.1"), std::invalid_argument);
  EXPECT_THROW(Ipv4::from_string("a.b.c.d"), std::invalid_argument);
  EXPECT_THROW(Ipv4::from_string(""), std::invalid_argument);
}

TEST(Ipv4, ComparesByValue) {
  EXPECT_EQ(Ipv4(1, 2, 3, 4), Ipv4(1, 2, 3, 4));
  EXPECT_LT(Ipv4(1, 2, 3, 4), Ipv4(1, 2, 3, 5));
  EXPECT_LT(Ipv4(9, 255, 255, 255), Ipv4(10, 0, 0, 0));
}

TEST(Ipv4, SubnetMembership) {
  const Ipv4 ip(10, 1, 2, 3);
  EXPECT_TRUE(ip.in_subnet(Ipv4(10, 0, 0, 0), 8));
  EXPECT_FALSE(ip.in_subnet(Ipv4(10, 0, 0, 0), 16));
  EXPECT_TRUE(ip.in_subnet(Ipv4(10, 1, 0, 0), 16));
  EXPECT_TRUE(ip.in_subnet(Ipv4(0, 0, 0, 0), 0));
  EXPECT_FALSE(ip.in_subnet(Ipv4(10, 1, 2, 4), 32));
  EXPECT_TRUE(ip.in_subnet(ip, 32));
  EXPECT_THROW(static_cast<void>(ip.in_subnet(ip, 33)),
               std::invalid_argument);
  EXPECT_THROW(static_cast<void>(ip.in_subnet(ip, -1)),
               std::invalid_argument);
}

TEST(Ipv4, HashableInUnorderedContainers) {
  std::unordered_set<Ipv4> set;
  set.insert(Ipv4(1, 1, 1, 1));
  set.insert(Ipv4(1, 1, 1, 1));
  set.insert(Ipv4(2, 2, 2, 2));
  EXPECT_EQ(set.size(), 2u);
}

}  // namespace
}  // namespace dpnet::net
