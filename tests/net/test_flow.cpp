#include "net/flow.hpp"

#include <gtest/gtest.h>

#include <vector>

namespace dpnet::net {
namespace {

Packet packet(double t, std::uint16_t sport, TcpFlags flags,
              std::uint32_t seq, std::uint16_t len) {
  Packet p;
  p.timestamp = t;
  p.src_ip = Ipv4(10, 0, 0, 1);
  p.dst_ip = Ipv4(198, 18, 0, 1);
  p.src_port = sport;
  p.dst_port = 80;
  p.protocol = kProtoTcp;
  p.flags = flags;
  p.seq = seq;
  p.length = len;
  return p;
}

constexpr TcpFlags kSyn{.syn = true};
constexpr TcpFlags kData{.ack = true, .psh = true};

TEST(FlowStats, AggregatesBytesPacketsAndDuration) {
  std::vector<Packet> trace = {
      packet(1.0, 1000, kData, 1, 100),
      packet(3.0, 1000, kData, 2, 200),
      packet(2.0, 2000, kData, 1, 50),
  };
  auto stats = compute_flow_stats(trace);
  ASSERT_EQ(stats.size(), 2u);
  const auto& big = stats[0].packets == 2 ? stats[0] : stats[1];
  EXPECT_EQ(big.packets, 2u);
  EXPECT_EQ(big.bytes, 300u);
  EXPECT_DOUBLE_EQ(big.duration(), 2.0);
}

TEST(FlowStats, CountsConnectionsBySyn) {
  std::vector<Packet> trace = {
      packet(1.0, 1000, kSyn, 1, 40),   packet(1.1, 1000, kData, 2, 100),
      packet(2.0, 1000, kSyn, 50, 40),  packet(2.1, 1000, kData, 51, 100),
      packet(3.0, 1000, kSyn, 90, 40),
  };
  auto stats = compute_flow_stats(trace);
  ASSERT_EQ(stats.size(), 1u);
  EXPECT_EQ(stats[0].connections, 3u);
}

TEST(ConnectionIds, NewSynStartsNewConnection) {
  std::vector<Packet> trace = {
      packet(1.0, 1000, kSyn, 1, 40),
      packet(1.1, 1000, kData, 2, 100),
      packet(2.0, 1000, kSyn, 50, 40),
      packet(2.1, 1000, kData, 51, 100),
  };
  auto tagged = assign_connection_ids(trace);
  ASSERT_EQ(tagged.size(), 4u);
  EXPECT_EQ(tagged[0].connection_id, tagged[1].connection_id);
  EXPECT_EQ(tagged[2].connection_id, tagged[3].connection_id);
  EXPECT_NE(tagged[0].connection_id, tagged[2].connection_id);
}

TEST(ConnectionIds, PacketsBeforeFirstSynShareAConnection) {
  std::vector<Packet> trace = {
      packet(1.0, 1000, kData, 1, 100),
      packet(1.1, 1000, kData, 2, 100),
  };
  auto tagged = assign_connection_ids(trace);
  EXPECT_EQ(tagged[0].connection_id, tagged[1].connection_id);
}

TEST(ConnectionIds, DifferentFlowsGetDifferentConnections) {
  std::vector<Packet> trace = {
      packet(1.0, 1000, kSyn, 1, 40),
      packet(1.0, 2000, kSyn, 1, 40),
  };
  auto tagged = assign_connection_ids(trace);
  EXPECT_NE(tagged[0].connection_id, tagged[1].connection_id);
}

TEST(ConnectionIds, BothDirectionsShareTheConnection) {
  Packet forward = packet(1.0, 1000, kSyn, 1, 40);
  Packet reverse = forward;
  std::swap(reverse.src_ip, reverse.dst_ip);
  std::swap(reverse.src_port, reverse.dst_port);
  reverse.flags = TcpFlags{.syn = true, .ack = true};
  reverse.timestamp = 1.05;
  auto tagged = assign_connection_ids(std::vector<Packet>{forward, reverse});
  EXPECT_EQ(tagged[0].connection_id, tagged[1].connection_id);
}

TEST(PacketsPerConnection, CountsEachConnection) {
  std::vector<Packet> trace = {
      packet(1.0, 1000, kSyn, 1, 40),  packet(1.1, 1000, kData, 2, 100),
      packet(1.2, 1000, kData, 3, 100),
      packet(2.0, 1000, kSyn, 50, 40), packet(2.1, 1000, kData, 51, 100),
  };
  const auto counts = packets_per_connection(assign_connection_ids(trace));
  ASSERT_EQ(counts.size(), 2u);
  EXPECT_EQ(counts[0], 3u);
  EXPECT_EQ(counts[1], 2u);
}

}  // namespace
}  // namespace dpnet::net
