// Robustness: randomly corrupted containers must fail cleanly (typed
// exceptions), never crash, hang, or allocate absurdly — the reader sits
// on the data owner's trust boundary.
#include <gtest/gtest.h>

#include <random>
#include <sstream>

#include "net/pcap.hpp"
#include "net/trace_io.hpp"
#include "tracegen/hotspot.hpp"

namespace dpnet::net {
namespace {

std::string serialized_trace() {
  tracegen::HotspotConfig cfg = tracegen::HotspotConfig::small();
  cfg.num_hosts = 40;
  cfg.num_servers = 8;
  cfg.content_servers = 4;
  cfg.stone_pairs = 1;
  cfg.noise_interactive_flows = 1;
  cfg.activations_min = 20;
  cfg.activations_max = 30;
  cfg.num_worms = 2;
  cfg.worm_dispersion_min = 4;
  cfg.worm_dispersion_max = 8;
  cfg.worm_count_min = 10;
  cfg.worm_count_max = 40;
  cfg.background_dispersed_payloads = 4;
  tracegen::HotspotGenerator gen(cfg);
  const auto trace = gen.generate();
  std::stringstream out;
  write_trace(out, trace);
  return out.str();
}

std::string serialized_pcap() {
  tracegen::HotspotGenerator gen([] {
    tracegen::HotspotConfig cfg = tracegen::HotspotConfig::small();
    cfg.num_hosts = 40;
    cfg.num_servers = 8;
    cfg.content_servers = 4;
    return cfg;
  }());
  const auto trace = gen.generate();
  std::stringstream out;
  write_pcap(out, trace);
  return out.str();
}

class FormatFuzz : public ::testing::TestWithParam<std::uint64_t> {};

TEST_P(FormatFuzz, CorruptedDpntNeverCrashes) {
  static const std::string pristine = serialized_trace();
  std::mt19937_64 rng(GetParam());
  for (int round = 0; round < 60; ++round) {
    std::string bytes = pristine;
    // Flip a handful of random bytes.
    const int flips = 1 + static_cast<int>(rng() % 8);
    for (int f = 0; f < flips; ++f) {
      bytes[rng() % bytes.size()] =
          static_cast<char>(rng() & 0xff);
    }
    std::stringstream in(bytes);
    try {
      const auto packets = read_trace(in);
      EXPECT_LE(packets.size(), 10'000'000u);  // no absurd allocation
    } catch (const TraceIoError&) {
      // clean failure is the expected outcome
    } catch (const std::bad_alloc&) {
      FAIL() << "corrupted length field caused unbounded allocation";
    }
  }
}

TEST_P(FormatFuzz, TruncatedDpntNeverCrashes) {
  static const std::string pristine = serialized_trace();
  std::mt19937_64 rng(GetParam() + 100);
  for (int round = 0; round < 60; ++round) {
    const std::size_t cut = rng() % pristine.size();
    std::stringstream in(pristine.substr(0, cut));
    try {
      read_trace(in);
    } catch (const TraceIoError&) {
    }
  }
}

TEST_P(FormatFuzz, CorruptedPcapNeverCrashes) {
  static const std::string pristine = serialized_pcap();
  std::mt19937_64 rng(GetParam() + 200);
  for (int round = 0; round < 60; ++round) {
    std::string bytes = pristine;
    const int flips = 1 + static_cast<int>(rng() % 8);
    for (int f = 0; f < flips; ++f) {
      bytes[rng() % bytes.size()] =
          static_cast<char>(rng() & 0xff);
    }
    std::stringstream in(bytes);
    try {
      const auto result = read_pcap(in);
      EXPECT_LE(result.packets.size(), 10'000'000u);
    } catch (const PcapError&) {
    }
  }
}

TEST_P(FormatFuzz, TruncatedPcapNeverCrashes) {
  static const std::string pristine = serialized_pcap();
  std::mt19937_64 rng(GetParam() + 300);
  for (int round = 0; round < 60; ++round) {
    const std::size_t cut = rng() % pristine.size();
    std::stringstream in(pristine.substr(0, cut));
    try {
      read_pcap(in);
    } catch (const PcapError&) {
    }
  }
}

INSTANTIATE_TEST_SUITE_P(Seeds, FormatFuzz, ::testing::Values(1u, 2u, 3u));

}  // namespace
}  // namespace dpnet::net
