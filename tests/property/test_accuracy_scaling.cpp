// Property tests: accuracy must move the right way as epsilon, data
// volume, and resolution change — the qualitative laws every figure of
// the paper rests on.
#include <gtest/gtest.h>

#include <cmath>
#include <numeric>

#include "stats/metrics.hpp"
#include "toolkit/cdf.hpp"

namespace dpnet::toolkit {
namespace {

core::Queryable<std::int64_t> wrap(const std::vector<std::int64_t>& data,
                                   std::uint64_t seed) {
  return {data, std::make_shared<core::RootBudget>(1e12),
          std::make_shared<core::NoiseSource>(seed)};
}

std::vector<std::int64_t> ramp(int n, std::int64_t range) {
  std::vector<std::int64_t> v(static_cast<std::size_t>(n));
  for (int i = 0; i < n; ++i) v[static_cast<std::size_t>(i)] = i % range;
  return v;
}

double mean_cdf_error(const std::vector<std::int64_t>& data, double eps,
                      int repeats, std::uint64_t seed_base) {
  const auto bounds = make_boundaries(0, 199, 5);
  const auto exact = exact_cdf(data, bounds);
  double total = 0.0;
  for (int r = 0; r < repeats; ++r) {
    const auto est =
        cdf_partition(wrap(data, seed_base + static_cast<std::uint64_t>(r)),
                      bounds, eps);
    total += stats::rmse(est.values, exact.values);
  }
  return total / repeats;
}

TEST(AccuracyScaling, ErrorDecreasesMonotonicallyInEpsilon) {
  const auto data = ramp(20000, 200);
  const double e_strong = mean_cdf_error(data, 0.1, 8, 100);
  const double e_medium = mean_cdf_error(data, 1.0, 8, 200);
  const double e_weak = mean_cdf_error(data, 10.0, 8, 300);
  EXPECT_GT(e_strong, 2.0 * e_medium);
  EXPECT_GT(e_medium, 2.0 * e_weak);
}

TEST(AccuracyScaling, AbsoluteErrorIsIndependentOfDataVolume) {
  // DP noise is absolute: tenfold data does not change the absolute
  // error, which is exactly why relative error improves with volume
  // (the paper's 1/10th-of-the-data experiment).
  const auto small = ramp(2000, 200);
  const auto big = ramp(20000, 200);
  const double e_small = mean_cdf_error(small, 1.0, 10, 400);
  const double e_big = mean_cdf_error(big, 1.0, 10, 500);
  EXPECT_NEAR(e_small, e_big, 0.6 * std::max(e_small, e_big));
}

TEST(AccuracyScaling, RelativeErrorImprovesWithDataVolume) {
  const auto bounds = make_boundaries(0, 199, 5);
  auto rel_err = [&](int n, std::uint64_t seed) {
    const auto data = ramp(n, 200);
    const auto exact = exact_cdf(data, bounds);
    const auto est = cdf_partition(wrap(data, seed), bounds, 0.5);
    return stats::relative_rmse(est.values, exact.values);
  };
  double small = 0.0, big = 0.0;
  for (std::uint64_t r = 0; r < 6; ++r) {
    small += rel_err(1000, 600 + r);
    big += rel_err(50000, 700 + r);
  }
  EXPECT_GT(small, 5.0 * big);
}

TEST(AccuracyScaling, CountErrorMatchesTheoreticalScaleAcrossEps) {
  // stddev of count error = sqrt(2)/eps within sampling tolerance,
  // uniformly over a sweep of epsilons.
  const std::vector<std::int64_t> data = ramp(500, 100);
  for (double eps : {0.05, 0.2, 0.8, 3.2}) {
    auto q = wrap(data, static_cast<std::uint64_t>(eps * 1000));
    double sum_sq = 0.0;
    const int trials = 4000;
    for (int t = 0; t < trials; ++t) {
      const double err = q.noisy_count(eps) - 500.0;
      sum_sq += err * err;
    }
    const double expected = std::sqrt(2.0) / eps;
    EXPECT_NEAR(std::sqrt(sum_sq / trials), expected, 0.15 * expected)
        << "eps " << eps;
  }
}

TEST(AccuracyScaling, FinerResolutionCostsAccuracyAtFixedBudget) {
  const auto data = ramp(20000, 200);
  auto err_at = [&](std::int64_t step, std::uint64_t seed) {
    const auto bounds = make_boundaries(step - 1, 199, step);
    const auto exact = exact_cdf(data, bounds);
    double total = 0.0;
    for (std::uint64_t r = 0; r < 6; ++r) {
      total += stats::rmse(
          cdf_prefix_counts(wrap(data, seed + r), bounds, 1.0).values,
          exact.values);
    }
    return total / 6.0;
  };
  const double coarse = err_at(40, 800);  // 5 buckets
  const double fine = err_at(5, 900);     // 40 buckets
  EXPECT_GT(fine, 3.0 * coarse);
}

}  // namespace
}  // namespace dpnet::toolkit
