// Empirical differential-privacy verification.
//
// The engine's correctness claim is Pr[M(A) in S] <= Pr[M(B) in S] * e^eps
// for neighboring datasets A, B.  These tests estimate both sides from
// many mechanism runs over interval events S and check the ratio bound
// (with statistical slack).  They cannot *prove* privacy, but they catch
// the classic implementation bugs: mis-scaled noise, un-counted
// stability, sensitivity-free code paths.
#include <gtest/gtest.h>

#include <cmath>
#include <numeric>
#include <vector>

#include "core/queryable.hpp"

namespace dpnet::core {
namespace {

/// Histogram of mechanism outputs over fixed bins.
std::vector<double> output_histogram(const std::vector<int>& data,
                                     double eps, int trials,
                                     std::uint64_t seed, double bin_width,
                                     double lo, std::size_t bins,
                                     double stability_eps_factor = 1.0) {
  auto budget = std::make_shared<RootBudget>(1e12);
  auto noise = std::make_shared<NoiseSource>(seed);
  Queryable<int> q(data, budget, noise);
  std::vector<double> hist(bins, 0.0);
  for (int t = 0; t < trials; ++t) {
    const double v = q.noisy_count(eps / stability_eps_factor);
    const auto b = static_cast<std::ptrdiff_t>((v - lo) / bin_width);
    if (b >= 0 && static_cast<std::size_t>(b) < bins) {
      hist[static_cast<std::size_t>(b)] += 1.0;
    }
  }
  return hist;
}

/// Max over well-populated bins of ln(PA/PB) — the empirical privacy loss.
double empirical_epsilon(const std::vector<double>& ha,
                         const std::vector<double>& hb, double min_mass) {
  double worst = 0.0;
  for (std::size_t i = 0; i < ha.size(); ++i) {
    if (ha[i] < min_mass || hb[i] < min_mass) continue;
    worst = std::max(worst, std::abs(std::log(ha[i] / hb[i])));
  }
  return worst;
}

class DpGuarantee : public ::testing::TestWithParam<double> {};

TEST_P(DpGuarantee, CountRespectsEpsilonOnNeighbors) {
  const double eps = GetParam();
  std::vector<int> a(100, 1);
  std::vector<int> b = a;
  b.push_back(1);  // neighbor: one extra record

  const int trials = 150000;
  const double bin = 0.5 / eps;  // scale bins to the noise
  const auto ha = output_histogram(a, eps, trials, 11, bin, 80.0, 160);
  const auto hb = output_histogram(b, eps, trials, 12, bin, 80.0, 160);
  const double measured = empirical_epsilon(ha, hb, 200.0);
  // The per-bin loss must not exceed eps by more than sampling slack.
  EXPECT_LE(measured, eps * 1.35 + 0.05)
      << "empirical privacy loss " << measured << " for eps " << eps;
  // And the mechanism must actually be using the budget: the loss should
  // not be vanishingly small either (it is a real count difference).
  EXPECT_GT(measured, eps * 0.3);
}

INSTANTIATE_TEST_SUITE_P(Epsilons, DpGuarantee,
                         ::testing::Values(0.25, 0.5, 1.0));

TEST(DpGuarantee, GroupByAmplifiedQueriesStayWithinBudgetEpsilon) {
  // A grouped count at query-epsilon eps/2 charges eps and must satisfy
  // eps-DP even though one record can move two groups.
  const double eps = 1.0;
  auto run = [eps](const std::vector<int>& data, std::uint64_t seed) {
    auto budget = std::make_shared<RootBudget>(1e12);
    auto noise = std::make_shared<NoiseSource>(seed);
    Queryable<int> q(data, budget, noise);
    auto grouped = q.group_by([](int x) { return x; });
    std::vector<double> hist(160, 0.0);
    for (int t = 0; t < 150000; ++t) {
      const double v = grouped.noisy_count(eps / 2.0);
      const auto b = static_cast<std::ptrdiff_t>((v - 20.0) / 0.5);
      if (b >= 0 && static_cast<std::size_t>(b) < hist.size()) {
        hist[static_cast<std::size_t>(b)] += 1.0;
      }
    }
    return hist;
  };
  // Neighbors that differ in one record, where that record moves the
  // group count by one (value 999 appears once).
  std::vector<int> a(50);
  std::iota(a.begin(), a.end(), 0);
  std::vector<int> b = a;
  b.push_back(999);
  const double measured = empirical_epsilon(run(a, 21), run(b, 22), 200.0);
  EXPECT_LE(measured, eps * 1.35 + 0.05);
}

TEST(DpGuarantee, LaplaceTailsAreHeavyEnough) {
  // Pr[|noise| > t] for Laplace(1/eps) is exp(-eps*t): spot-check at two
  // deviations — too-light tails would mean an under-noised mechanism.
  NoiseSource noise(31);
  const double eps = 1.0;
  const int trials = 200000;
  int beyond2 = 0, beyond4 = 0;
  for (int t = 0; t < trials; ++t) {
    const double x = std::abs(noise.laplace(1.0 / eps));
    if (x > 2.0) ++beyond2;
    if (x > 4.0) ++beyond4;
  }
  EXPECT_NEAR(static_cast<double>(beyond2) / trials, std::exp(-2.0), 0.01);
  EXPECT_NEAR(static_cast<double>(beyond4) / trials, std::exp(-4.0), 0.005);
}

TEST(DpGuarantee, SumClampBoundsWorstCaseInfluence) {
  // However extreme a record's value, a clamped sum moves by at most 1
  // between neighbors — the clamp is what makes the noise scale valid.
  auto budget = std::make_shared<RootBudget>(1e12);
  auto noise = std::make_shared<NoiseSource>(41);
  std::vector<double> base(100, 0.5);
  std::vector<double> spiked = base;
  spiked.push_back(1e18);  // adversarial record
  Queryable<double> qa(base, budget, noise);
  Queryable<double> qb(spiked, budget, noise);
  const double sa = qa.noisy_sum(1e7, [](double v) { return v; });
  const double sb = qb.noisy_sum(1e7, [](double v) { return v; });
  EXPECT_NEAR(sb - sa, 1.0, 0.01);
}

}  // namespace
}  // namespace dpnet::core
