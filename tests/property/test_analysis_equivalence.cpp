// Property tests: the DP pipelines' *transformations* agree with the
// trusted-side reference implementations on randomized inputs (the noise
// enters only at aggregation, so at huge epsilon the two must coincide).
#include <gtest/gtest.h>

#include <algorithm>
#include <random>
#include <set>

#include "analysis/flow_stats.hpp"
#include "analysis/stepping_stones.hpp"
#include "net/tcp.hpp"

namespace dpnet::analysis {
namespace {

using net::FlowKey;
using net::Ipv4;
using net::Packet;

struct Env {
  std::shared_ptr<core::RootBudget> budget;
  std::shared_ptr<core::NoiseSource> noise;

  explicit Env(std::uint64_t seed)
      : budget(std::make_shared<core::RootBudget>(1e12)),
        noise(std::make_shared<core::NoiseSource>(seed)) {}

  core::Queryable<Packet> wrap(std::vector<Packet> data) const {
    return {std::move(data), budget, noise};
  }
};

/// Random bursty multi-flow trace: a handful of flows, each an arrival
/// process with heavy-tailed gaps, data packets with occasional repeats.
std::vector<Packet> random_trace(std::uint64_t seed) {
  std::mt19937_64 rng(seed);
  std::uniform_int_distribution<int> flows(2, 6);
  std::uniform_real_distribution<double> gap(0.01, 2.0);
  std::uniform_int_distribution<int> repeat(0, 9);
  std::vector<Packet> trace;
  const int num_flows = flows(rng);
  for (int f = 0; f < num_flows; ++f) {
    double t = gap(rng);
    std::uint32_t seq = static_cast<std::uint32_t>(rng());
    const int packets = 30 + static_cast<int>(rng() % 40);
    for (int i = 0; i < packets; ++i) {
      Packet p;
      p.timestamp = t;
      p.src_ip = Ipv4(10, 0, 0, static_cast<std::uint8_t>(f + 1));
      p.dst_ip = Ipv4(198, 18, 0, 1);
      p.src_port = static_cast<std::uint16_t>(1000 + f);
      p.dst_port = 80;
      p.protocol = net::kProtoTcp;
      p.flags = net::TcpFlags{.ack = true, .psh = true};
      p.length = 500;
      p.seq = seq;
      if (repeat(rng) != 0) seq += 500;  // else: a retransmission follows
      trace.push_back(p);
      t += gap(rng);
    }
  }
  std::sort(trace.begin(), trace.end(),
            [](const Packet& a, const Packet& b) {
              return a.timestamp < b.timestamp;
            });
  return trace;
}

class AnalysisEquivalence : public ::testing::TestWithParam<std::uint64_t> {};

TEST_P(AnalysisEquivalence, DpActivationsEqualExactActivations) {
  const auto trace = random_trace(GetParam());
  Env env(GetParam());
  for (double t_idle : {0.25, 0.5, 1.0}) {
    auto dp = dp_activations(env.wrap(trace), t_idle).data_unsafe();
    const auto exact = net::extract_activations(trace, t_idle);
    auto key_set = [](const std::vector<net::Activation>& acts) {
      std::multiset<std::pair<std::string, double>> s;
      for (const auto& a : acts) s.emplace(a.flow.to_string(), a.time);
      return s;
    };
    EXPECT_EQ(key_set(dp), key_set(exact)) << "t_idle " << t_idle;
  }
}

TEST_P(AnalysisEquivalence, LossColumnEqualsExactReference) {
  const auto trace = random_trace(GetParam() + 100);
  Env env(GetParam() + 100);
  auto dp = flow_loss_permille(env.wrap(trace), 10).data_unsafe();
  auto exact = exact_loss_permille(trace, 10);
  std::sort(dp.begin(), dp.end());
  std::sort(exact.begin(), exact.end());
  EXPECT_EQ(dp, exact);
}

TEST_P(AnalysisEquivalence, RetransmitColumnMatchesReferenceUpToFanout) {
  const auto trace = random_trace(GetParam() + 200);
  Env env(GetParam() + 200);
  // With a huge fan-out bound nothing is truncated, so the multiset of
  // diffs must equal the trusted-side extraction.
  auto dp = retransmit_diffs_ms(env.wrap(trace), 1 << 20).data_unsafe();
  std::vector<std::int64_t> exact;
  for (double d : net::retransmit_time_diffs_ms(trace)) {
    exact.push_back(static_cast<std::int64_t>(std::llround(d)));
  }
  std::sort(dp.begin(), dp.end());
  std::sort(exact.begin(), exact.end());
  EXPECT_EQ(dp, exact);
}

TEST_P(AnalysisEquivalence, ExactCorrelationIsSymmetricAndBounded) {
  std::mt19937_64 rng(GetParam() + 300);
  std::uniform_real_distribution<double> t(0.0, 100.0);
  std::vector<double> a, b;
  for (int i = 0; i < 50; ++i) a.push_back(t(rng));
  for (int i = 0; i < 70; ++i) b.push_back(t(rng));
  std::sort(a.begin(), a.end());
  std::sort(b.begin(), b.end());
  for (double delta : {0.01, 0.1, 1.0}) {
    const double ab = exact_correlation(a, b, delta);
    const double ba = exact_correlation(b, a, delta);
    EXPECT_DOUBLE_EQ(ab, ba);
    EXPECT_GE(ab, 0.0);
    EXPECT_LE(ab, 1.0);
  }
  //

  // Self-correlation is 1 for any delta.
  EXPECT_DOUBLE_EQ(exact_correlation(a, a, 0.001), 1.0);
}

INSTANTIATE_TEST_SUITE_P(Seeds, AnalysisEquivalence,
                         ::testing::Values(7u, 8u, 9u, 10u));

}  // namespace
}  // namespace dpnet::analysis
