// Property tests: algebraic laws of the query operators over randomized
// data.  These pin down semantics the unit tests only spot-check.
#include <gtest/gtest.h>

#include <algorithm>
#include <random>
#include <set>

#include "core/queryable.hpp"

namespace dpnet::core {
namespace {

struct Env {
  std::shared_ptr<RootBudget> budget;
  std::shared_ptr<NoiseSource> noise;

  explicit Env(std::uint64_t seed)
      : budget(std::make_shared<RootBudget>(1e12)),
        noise(std::make_shared<NoiseSource>(seed)) {}

  template <typename T>
  Queryable<T> wrap(std::vector<T> data) const {
    return Queryable<T>(std::move(data), budget, noise);
  }
};

std::vector<int> random_data(std::uint64_t seed, int n, int range) {
  std::mt19937_64 rng(seed);
  std::uniform_int_distribution<int> dist(0, range - 1);
  std::vector<int> out(static_cast<std::size_t>(n));
  for (auto& x : out) x = dist(rng);
  return out;
}

class QueryableLaws : public ::testing::TestWithParam<std::uint64_t> {};

TEST_P(QueryableLaws, WhereFusion) {
  Env env(GetParam());
  const auto data = random_data(GetParam(), 500, 100);
  auto chained = env.wrap(data)
                     .where([](int x) { return x % 2 == 0; })
                     .where([](int x) { return x > 10; });
  auto fused = env.wrap(data).where(
      [](int x) { return x % 2 == 0 && x > 10; });
  EXPECT_EQ(chained.data_unsafe(), fused.data_unsafe());
  EXPECT_DOUBLE_EQ(chained.total_stability(), fused.total_stability());
}

TEST_P(QueryableLaws, SelectComposition) {
  Env env(GetParam());
  const auto data = random_data(GetParam() + 1, 500, 100);
  auto chained = env.wrap(data)
                     .select([](int x) { return x + 3; })
                     .select([](int x) { return x * 2; });
  auto composed =
      env.wrap(data).select([](int x) { return (x + 3) * 2; });
  EXPECT_EQ(chained.data_unsafe(), composed.data_unsafe());
}

TEST_P(QueryableLaws, DistinctIsIdempotent) {
  Env env(GetParam());
  const auto data = random_data(GetParam() + 2, 500, 20);
  auto once = env.wrap(data).distinct();
  auto twice = once.distinct();
  EXPECT_EQ(once.data_unsafe(), twice.data_unsafe());
}

TEST_P(QueryableLaws, GroupByPartitionsTheRecords) {
  Env env(GetParam());
  const auto data = random_data(GetParam() + 3, 500, 13);
  auto grouped = env.wrap(data).group_by([](int x) { return x % 7; });
  std::size_t total = 0;
  std::set<int> keys;
  for (const auto& g : grouped.data_unsafe()) {
    total += g.items.size();
    EXPECT_TRUE(keys.insert(g.key).second) << "duplicate group key";
    for (int x : g.items) EXPECT_EQ(x % 7, g.key);
  }
  EXPECT_EQ(total, data.size());
}

TEST_P(QueryableLaws, PartitionCoversFilteredRecordsExactly) {
  Env env(GetParam());
  const auto data = random_data(GetParam() + 4, 500, 10);
  std::vector<int> keys = {0, 1, 2, 3};  // values 4..9 dropped
  auto parts = env.wrap(data).partition(keys, [](int x) { return x; });
  std::size_t in_parts = 0;
  for (int k : keys) in_parts += parts.at(k).size_unsafe();
  const auto expected = static_cast<std::size_t>(
      std::count_if(data.begin(), data.end(), [](int x) { return x < 4; }));
  EXPECT_EQ(in_parts, expected);
}

TEST_P(QueryableLaws, ConcatLengthIsSumOfInputs) {
  Env env(GetParam());
  const auto a = random_data(GetParam() + 5, 200, 50);
  const auto b = random_data(GetParam() + 6, 300, 50);
  auto joined = env.wrap(a).concat(env.wrap(b));
  EXPECT_EQ(joined.size_unsafe(), a.size() + b.size());
}

TEST_P(QueryableLaws, SetAlgebraIdentities) {
  Env env(GetParam());
  const auto a = random_data(GetParam() + 7, 300, 30);
  const auto b = random_data(GetParam() + 8, 300, 30);
  auto qa = env.wrap(a);
  auto qb = env.wrap(b);

  // |A union B| = |A distinct| + |B except A|.
  const auto union_size = qa.set_union(qb).size_unsafe();
  const auto a_distinct = qa.distinct().size_unsafe();
  const auto b_minus_a = qb.except(qa).size_unsafe();
  EXPECT_EQ(union_size, a_distinct + b_minus_a);

  // |A intersect B| + |A except B| = |A distinct|.
  EXPECT_EQ(qa.intersect(qb).size_unsafe() + qa.except(qb).size_unsafe(),
            a_distinct);
}

TEST_P(QueryableLaws, JoinOutputBoundedByEitherInput) {
  Env env(GetParam());
  const auto a = random_data(GetParam() + 9, 300, 40);
  const auto b = random_data(GetParam() + 10, 250, 40);
  auto joined = env.wrap(a).join(
      env.wrap(b), [](int x) { return x; }, [](int y) { return y; },
      [](int x, int) { return x; });
  EXPECT_LE(joined.size_unsafe(), std::min(a.size(), b.size()));
  // Every output value exists in both inputs.
  std::set<int> sa(a.begin(), a.end()), sb(b.begin(), b.end());
  for (int v : joined.data_unsafe()) {
    EXPECT_TRUE(sa.count(v) && sb.count(v));
  }
}

TEST_P(QueryableLaws, SelectManyLengthBoundedByFanout) {
  Env env(GetParam());
  const auto data = random_data(GetParam() + 11, 200, 6);
  const std::size_t fanout = 3;
  auto expanded = env.wrap(data).select_many(
      [](int x) { return std::vector<int>(static_cast<std::size_t>(x), x); },
      fanout);
  EXPECT_LE(expanded.size_unsafe(), data.size() * fanout);
  std::size_t expected = 0;
  for (int x : data) expected += std::min<std::size_t>(
      static_cast<std::size_t>(x), fanout);
  EXPECT_EQ(expanded.size_unsafe(), expected);
}

TEST_P(QueryableLaws, AggregationChargesStabilityTimesEps) {
  Env env(GetParam());
  std::mt19937_64 rng(GetParam() + 12);
  const auto data = random_data(GetParam() + 13, 100, 10);
  auto q = env.wrap(data);
  // Random chain of stability-affecting operations.
  double expected_stability = 1.0;
  auto current = q.select([](int x) { return x; });
  for (int step = 0; step < 4; ++step) {
    if (rng() % 2 == 0) {
      current = current.group_by([](int x) { return x % 3; })
                    .select_many(
                        [](const Group<int, int>& g) {
                          return std::vector<int>(g.items.begin(),
                                                  g.items.end());
                        },
                        2);
      expected_stability *= 4.0;  // 2 (group) * 2 (fanout)
    } else {
      current = current.where([](int) { return true; });
    }
  }
  const double before = env.budget->spent();
  current.noisy_count(0.01);
  EXPECT_NEAR(env.budget->spent() - before, expected_stability * 0.01,
              1e-12);
}

INSTANTIATE_TEST_SUITE_P(Seeds, QueryableLaws,
                         ::testing::Values(1u, 2u, 3u, 4u, 5u));

}  // namespace
}  // namespace dpnet::core
