// Latency-histogram concurrency: the lock-free observe path and the
// percentile/snapshot readers hammered simultaneously from executor
// workers.  Runs in the CI-required TSan label set (see
// .github/workflows/ci.yml) — the point is not just that counts come out
// exact, but that concurrent reads never tear into impossible values.
#include "core/metrics.hpp"

#include <gtest/gtest.h>

#include <functional>
#include <memory>
#include <tuple>
#include <vector>

#include "core/exec/executor.hpp"
#include "core/queryable.hpp"

namespace dpnet::core {
namespace {

TEST(HistogramPercentiles, InterpolatesWithinBuckets) {
  Histogram h({1.0, 10.0, 100.0});
  h.observe(0.5);
  h.observe(0.5);
  h.observe(5.0);
  h.observe(5.0);
  // Ranks land exactly on bucket edges / interiors:
  //   p50 -> target rank 2.0, filled by bucket (0, 1]   -> 1.0
  //   p95 -> target rank 3.8, 90% into bucket (1, 10]   -> 9.1
  EXPECT_DOUBLE_EQ(h.percentile(0.50), 1.0);
  EXPECT_DOUBLE_EQ(h.percentile(0.95), 9.1);
  // Out-of-range quantiles clamp instead of misindexing.
  EXPECT_DOUBLE_EQ(h.percentile(-1.0), h.percentile(0.0));
  EXPECT_DOUBLE_EQ(h.percentile(2.0), h.percentile(1.0));
}

TEST(HistogramPercentiles, EmptyAndOverflowEdges) {
  Histogram h({1.0, 10.0});
  EXPECT_DOUBLE_EQ(h.percentile(0.5), 0.0);  // empty: nothing to rank
  h.observe(1000.0);
  // Only the unbounded overflow bucket is populated; the histogram can
  // honestly report no more than its largest finite bound.
  EXPECT_DOUBLE_EQ(h.percentile(0.5), 10.0);
  EXPECT_DOUBLE_EQ(h.percentile(0.99), 10.0);
}

TEST(HistogramPercentiles, SnapshotIsMonotone) {
  Histogram h({0.01, 0.1, 1.0, 10.0});
  for (int i = 1; i <= 1000; ++i) h.observe(0.011 * i);
  const Histogram::Snapshot s = h.snapshot();
  EXPECT_EQ(s.count, 1000u);
  EXPECT_GT(s.sum, 0.0);
  EXPECT_LE(s.p50, s.p95);
  EXPECT_LE(s.p95, s.p99);
  EXPECT_LE(s.p99, 10.0 + 1e-12);
}

// Writers and percentile readers race on one histogram across executor
// workers.  Counts must be exact afterwards, and every concurrent read
// must be a value the bucket bounds could produce — a torn read would
// surface as a negative or out-of-range percentile (and as a TSan race).
TEST(HistogramConcurrency, ObserveAndPercentileRaceCleanly) {
  Histogram h({0.5, 1.0, 5.0, 25.0});
  constexpr int kWriters = 6;
  constexpr int kReaders = 4;
  constexpr int kObservationsPerWriter = 20000;

  std::vector<std::function<void()>> tasks;
  for (int w = 0; w < kWriters; ++w) {
    tasks.push_back([&h, w] {
      for (int i = 0; i < kObservationsPerWriter; ++i) {
        h.observe(0.1 * ((w + i) % 300));
      }
    });
  }
  for (int r = 0; r < kReaders; ++r) {
    tasks.push_back([&h] {
      for (int i = 0; i < 2000; ++i) {
        const double p = h.percentile(0.01 * (i % 100));
        ASSERT_GE(p, 0.0);
        ASSERT_LE(p, 25.0);
        const Histogram::Snapshot s = h.snapshot();
        ASSERT_LE(s.p50, s.p95);
        ASSERT_LE(s.p95, s.p99);
      }
    });
  }
  exec::Executor(exec::ExecPolicy{4}).run(std::move(tasks));

  EXPECT_EQ(h.count(),
            static_cast<std::uint64_t>(kWriters) * kObservationsPerWriter);
  const Histogram::Snapshot final_snap = h.snapshot();
  EXPECT_LE(final_snap.p50, final_snap.p95);
  EXPECT_LE(final_snap.p95, final_snap.p99);
}

// The real producer path: parallel aggregations feeding the built-in
// op.wall_ms.<kind> histograms through map_parts while another task
// snapshots them.  Exercises registration, the kill-switch check, and
// the observe itself under the executor.
TEST(HistogramConcurrency, OpWallMsFedFromExecutorWorkers) {
  const std::uint64_t before =
      builtin_metrics::op_wall_ms("noisy_count").count();

  std::vector<int> data(5000);
  for (int i = 0; i < 5000; ++i) data[static_cast<std::size_t>(i)] = i;
  Queryable<int> q(data, std::make_shared<RootBudget>(1e6),
                   std::make_shared<NoiseSource>(11));
  std::vector<int> keys{0, 1, 2, 3, 4, 5, 6, 7};
  auto parts = q.partition(keys, [](int v) { return v % 8; });

  std::ignore = exec::map_parts(
      exec::ExecPolicy{4}, keys, parts, [](int, const Queryable<int>& part) {
        double acc = 0.0;
        for (int i = 0; i < 25; ++i) acc += part.noisy_count(0.01);
        const Histogram::Snapshot s =
            builtin_metrics::op_wall_ms("noisy_count").snapshot();
        EXPECT_LE(s.p50, s.p99);
        return acc;
      });

  EXPECT_EQ(builtin_metrics::op_wall_ms("noisy_count").count(),
            before + 8u * 25u);
}

// The kill switch must stop recording without perturbing anything else —
// bench_micro_engine A/Bs it to assert the < 2% overhead bound.
TEST(HistogramConcurrency, KillSwitchStopsRecording) {
  ASSERT_TRUE(op_histograms_enabled());
  const std::uint64_t before =
      builtin_metrics::op_wall_ms("noisy_count").count();
  Queryable<int> q(std::vector<int>{1, 2, 3},
                   std::make_shared<RootBudget>(10.0),
                   std::make_shared<NoiseSource>(5));
  set_op_histograms_enabled(false);
  std::ignore = q.noisy_count(0.5);
  EXPECT_EQ(builtin_metrics::op_wall_ms("noisy_count").count(), before);
  set_op_histograms_enabled(true);
  std::ignore = q.noisy_count(0.5);
  EXPECT_EQ(builtin_metrics::op_wall_ms("noisy_count").count(), before + 1);
}

}  // namespace
}  // namespace dpnet::core
