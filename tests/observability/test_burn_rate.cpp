// Budget burn-rate forecasting (src/core/obs/burn.hpp): sliding-window
// ε-per-second rates, time-to-exhaustion projections, the per-analyst
// budget.burn_rate.<label> / budget.eta_s.<label> gauges fed through
// AuditingBudget, and the journal-witnessed "budget.alert" threshold
// crossing with hysteresis.
#include <gtest/gtest.h>

#include <cmath>
#include <limits>
#include <memory>

#include "core/audit.hpp"
#include "core/budget.hpp"
#include "core/metrics.hpp"
#include "core/obs/burn.hpp"
#include "core/obs/journal.hpp"

namespace dpnet::core {
namespace {

TEST(BurnRate, RateIsWindowedEpsPerSecond) {
  obs::BurnTracker tracker;
  tracker.set_window_us(10'000'000);  // 10 s window
  tracker.on_charge("burn.rate", 0.5, 1.5);
  tracker.on_charge("burn.rate", 0.5, 1.0);
  const auto st = tracker.stats("burn.rate");
  // 1.0 eps over a 10 s window = 0.1 eps/s.
  EXPECT_DOUBLE_EQ(st.rate, 0.1);
  ASSERT_TRUE(st.has_eta);
  EXPECT_DOUBLE_EQ(st.eta_s, 10.0);  // 1.0 remaining / 0.1 eps per s
}

TEST(BurnRate, UnknownLabelAndInfiniteRemainingHaveNoForecast) {
  obs::BurnTracker tracker;
  EXPECT_FALSE(tracker.stats("burn.never-seen").has_eta);
  EXPECT_DOUBLE_EQ(tracker.stats("burn.never-seen").rate, 0.0);
  tracker.on_charge("burn.uncapped", 0.25,
                    std::numeric_limits<double>::infinity());
  const auto st = tracker.stats("burn.uncapped");
  EXPECT_GT(st.rate, 0.0);
  EXPECT_FALSE(st.has_eta);  // no cap, no exhaustion forecast
}

// AuditingBudget feeds the global tracker on every labeled charge, and
// the gauges export the forecast.
TEST(BurnRate, AuditedChargesFeedGauges) {
  auto audit =
      std::make_shared<AuditingBudget>(std::make_shared<RootBudget>(2.0));
  const ScopedAuditLabel label(*audit, "burn.gauges");
  audit->charge(0.5);
  const auto st = obs::BurnTracker::global().stats("burn.gauges");
  EXPECT_GT(st.rate, 0.0);
  ASSERT_TRUE(st.has_eta);
  EXPECT_DOUBLE_EQ(builtin_metrics::budget_burn_rate("burn.gauges").value(),
                   st.rate);
  EXPECT_GT(builtin_metrics::budget_eta_s("burn.gauges").value(), 0.0);
  // ETA derives from the post-charge remaining: 1.5 left at 0.5 eps per
  // window-second pace.
  const double expected_eta = 1.5 / st.rate;
  EXPECT_NEAR(builtin_metrics::budget_eta_s("burn.gauges").value(),
              expected_eta, expected_eta * 1e-9);
}

// An armed threshold fires exactly one journal-witnessed budget.alert at
// the first crossing; hovering below the threshold does not re-fire
// (hysteresis re-arms only after the ETA recovers past 2x).
TEST(BurnRate, AlertFiresOnceAndIsJournalWitnessed) {
  obs::set_journal_armed(true);
  obs::BurnTracker tracker;
  tracker.set_alert_eta_s(1e9);  // any finite forecast crosses immediately
  const std::uint64_t before = obs::EventJournal::global().appended();
  tracker.on_charge("burn.alert", 0.5, 0.5);
  EXPECT_EQ(obs::EventJournal::global().appended(), before + 1);
  const auto events = obs::EventJournal::global().events();
  const auto& e = events.back();
  EXPECT_EQ(obs::event_kind_name(e.kind), std::string("budget.alert"));
  EXPECT_EQ(e.label, "burn.alert");
  EXPECT_DOUBLE_EQ(e.eps, 0.5);  // remaining at the crossing
  // Still below threshold: latched, no second alert.
  tracker.on_charge("burn.alert", 0.25, 0.25);
  EXPECT_EQ(obs::EventJournal::global().appended(), before + 1);
}

// The verifier tallies alert events, so a flushed journal carrying
// alerts still round-trips through `dpnet_cli audit verify`.
TEST(BurnRate, VerifierTalliesAlertEvents) {
  obs::EventJournal journal(16);
  journal.append(obs::EventKind::kCharge, "va", 1, 0.5, "laplace");
  journal.append(obs::EventKind::kBudgetAlert, "va", 0, 0.25,
                 "eta below threshold");
  const obs::JournalVerification v =
      obs::verify_journal_text(journal.to_jsonl(/*canonical=*/false));
  ASSERT_TRUE(v.ok) << v.error;
  EXPECT_EQ(v.events, 2u);
  EXPECT_EQ(v.charges, 1u);
  EXPECT_EQ(v.alerts, 1u);
  EXPECT_DOUBLE_EQ(v.charged_eps, 0.5);  // alerts never consume epsilon
}

// A disarmed threshold (the default) never fires, keeping canonical
// journals byte-identical for engine runs outside serve.
TEST(BurnRate, DisarmedThresholdNeverAlerts) {
  obs::set_journal_armed(true);
  obs::BurnTracker tracker;
  const std::uint64_t before = obs::EventJournal::global().appended();
  tracker.on_charge("burn.noalert", 1.0, 0.001);
  EXPECT_EQ(obs::EventJournal::global().appended(), before);
}

}  // namespace
}  // namespace dpnet::core
