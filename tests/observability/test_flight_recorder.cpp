// The flight recorder: the bounded in-memory ring of ops moments that a
// faulted or killed server leaves behind as a dpnet.flight.v1 black box
// (src/core/obs/recorder.hpp, docs/observability.md).  Unlike the event
// journal it is not hash-chained and never replayed — it is diagnostic
// context, so these tests pin the ring semantics (bounded, oldest-out,
// faithful counters), the dump format, the kill switch, and the mirror
// from journal events into ring moments.
#include <gtest/gtest.h>

#include <cstdio>
#include <fstream>
#include <memory>
#include <sstream>
#include <string>

#include "core/audit.hpp"
#include "core/budget.hpp"
#include "core/json.hpp"
#include "core/obs/journal.hpp"
#include "core/obs/recorder.hpp"

namespace dpnet::core {
namespace {

TEST(FlightRecorder, BoundedRingDropsOldestAndCountsFaithfully) {
  obs::FlightRecorder recorder(4);
  for (int i = 0; i < 6; ++i) {
    recorder.record("probe", "label", static_cast<double>(i), "");
  }
  EXPECT_EQ(recorder.recorded(), 6u);
  EXPECT_EQ(recorder.dropped(), 2u);
  const auto moments = recorder.moments();
  ASSERT_EQ(moments.size(), 4u);
  // Oldest two were overwritten; survivors keep their original seq.
  EXPECT_EQ(moments.front().seq, 2u);
  EXPECT_EQ(moments.back().seq, 5u);
  for (std::size_t i = 1; i < moments.size(); ++i) {
    EXPECT_LT(moments[i - 1].seq, moments[i].seq);
  }
}

TEST(FlightRecorder, ToJsonlHeaderMatchesDumpedMoments) {
  obs::FlightRecorder recorder(8);
  recorder.record("span", "", 1.5, "noisy_count");
  recorder.record("charge", "alice", 0.25, "");
  const std::string doc = recorder.to_jsonl();
  std::istringstream in(doc);
  std::string line;
  ASSERT_TRUE(std::getline(in, line));
  const JsonValue header = parse_json(line);
  EXPECT_EQ(header.at("schema").string, "dpnet.flight.v1");
  EXPECT_DOUBLE_EQ(header.at("moments").number, 2.0);
  EXPECT_DOUBLE_EQ(header.at("dropped").number, 0.0);
  std::size_t records = 0;
  while (std::getline(in, line)) {
    if (line.empty()) continue;
    const JsonValue m = parse_json(line);
    EXPECT_TRUE(m.at("kind").is_string());
    EXPECT_TRUE(m.at("seq").is_number());
    EXPECT_TRUE(m.at("value").is_number());
    ++records;
  }
  EXPECT_EQ(records, 2u);
}

TEST(FlightRecorder, DumpToFileWritesCompleteDocument) {
  const char* path = "test_flight_dump_tmp.jsonl";
  obs::FlightRecorder recorder(8);
  recorder.record("abort", "bob", 1.0, "deadline");
  recorder.dump_to_file(path);
  std::ifstream in(path, std::ios::binary);
  ASSERT_TRUE(in.good());
  std::ostringstream buf;
  buf << in.rdbuf();
  EXPECT_EQ(buf.str(), recorder.to_jsonl());
  std::remove(path);
}

TEST(FlightRecorder, ReserveGrowsBoundWithoutLosingOrder) {
  obs::FlightRecorder recorder(3);
  for (int i = 0; i < 5; ++i) {
    recorder.record("probe", "", static_cast<double>(i), "");
  }
  recorder.reserve(8);
  recorder.record("probe", "", 5.0, "");
  const auto moments = recorder.moments();
  ASSERT_EQ(moments.size(), 4u);
  for (std::size_t i = 1; i < moments.size(); ++i) {
    EXPECT_LT(moments[i - 1].seq, moments[i].seq);
  }
  EXPECT_EQ(moments.back().seq, 5u);
}

// The construction-time kill switch: disarmed, record_moment is one
// relaxed atomic load and the global ring does not move.
TEST(FlightRecorder, KillSwitchSuppressesGlobalMoments) {
  obs::set_recorder_armed(false);
  const std::uint64_t before = obs::FlightRecorder::global().recorded();
  obs::record_moment("probe", "killswitch", 1.0, "");
  EXPECT_EQ(obs::FlightRecorder::global().recorded(), before);
  obs::set_recorder_armed(true);
  obs::record_moment("probe", "killswitch", 2.0, "");
  EXPECT_EQ(obs::FlightRecorder::global().recorded(), before + 1);
}

// Every journal event mirrors one flight moment (same kind name, label,
// eps as value), so the black box always contains the accounting tail
// that the journal witnessed — the reconciliation the chaos drill
// checks after kill -9.
TEST(FlightRecorder, JournalEventsMirrorIntoRing) {
  obs::set_journal_armed(true);
  obs::set_recorder_armed(true);
  const std::uint64_t before = obs::FlightRecorder::global().recorded();
  auto audit =
      std::make_shared<AuditingBudget>(std::make_shared<RootBudget>(1.0));
  const ScopedAuditLabel label(*audit, "flight.mirror");
  audit->charge(0.25);
  ASSERT_EQ(obs::FlightRecorder::global().recorded(), before + 1);
  const auto moments = obs::FlightRecorder::global().moments();
  const auto& m = moments.back();
  EXPECT_EQ(m.kind, "charge");
  EXPECT_EQ(m.label, "flight.mirror");
  EXPECT_DOUBLE_EQ(m.value, 0.25);
}

// Disarming the journal silences the mirror too: moments for journal
// events ride the journal's own emission gate.
TEST(FlightRecorder, JournalKillSwitchSilencesMirror) {
  obs::set_journal_armed(false);
  obs::set_recorder_armed(true);
  const std::uint64_t before = obs::FlightRecorder::global().recorded();
  auto audit =
      std::make_shared<AuditingBudget>(std::make_shared<RootBudget>(1.0));
  const ScopedAuditLabel label(*audit, "flight.silenced");
  audit->charge(0.25);
  EXPECT_EQ(obs::FlightRecorder::global().recorded(), before);
  obs::set_journal_armed(true);
}

}  // namespace
}  // namespace dpnet::core
