// The structured ops log (src/core/obs/log.hpp): dpnet.log.v1 JSONL
// with a schema header, severity filtering, per-kind rate limiting that
// degrades by summarizing (a "suppressed" count on the next emitted
// line, never blocking), and the construction-time kill switch.
#include <gtest/gtest.h>

#include <cstdio>
#include <fstream>
#include <sstream>
#include <string>
#include <vector>

#include "core/errors.hpp"
#include "core/json.hpp"
#include "core/obs/log.hpp"

namespace dpnet::core {
namespace {

std::vector<std::string> read_lines(const std::string& path) {
  std::ifstream in(path, std::ios::binary);
  std::vector<std::string> lines;
  for (std::string line; std::getline(in, line);) {
    if (!line.empty()) lines.push_back(line);
  }
  return lines;
}

TEST(OpsLog, FileSinkWritesSchemaHeaderAndEntries) {
  const char* path = "test_ops_log_header_tmp.jsonl";
  obs::OpsLog log;
  log.open_file(path);
  log.log(obs::LogLevel::kInfo, "serve.started", "", 0.0, "stdin");
  log.log(obs::LogLevel::kWarn, "serve.shed", "alice", 0.5, "overloaded");
  log.close();
  const auto lines = read_lines(path);
  ASSERT_EQ(lines.size(), 3u);
  EXPECT_EQ(parse_json(lines[0]).at("schema").string, "dpnet.log.v1");
  const JsonValue first = parse_json(lines[1]);
  EXPECT_DOUBLE_EQ(first.at("seq").number, 0.0);
  EXPECT_EQ(first.at("level").string, "info");
  EXPECT_EQ(first.at("kind").string, "serve.started");
  const JsonValue second = parse_json(lines[2]);
  EXPECT_DOUBLE_EQ(second.at("seq").number, 1.0);
  EXPECT_EQ(second.at("label").string, "alice");
  EXPECT_DOUBLE_EQ(second.at("eps").number, 0.5);
  EXPECT_EQ(second.at("detail").string, "overloaded");
  std::remove(path);
}

TEST(OpsLog, MinLevelFiltersBelowThreshold) {
  const char* path = "test_ops_log_level_tmp.jsonl";
  obs::OpsLog log;
  log.open_file(path);
  log.set_min_level(obs::LogLevel::kWarn);
  log.log(obs::LogLevel::kDebug, "serve.admit", "a", 0.0, "");
  log.log(obs::LogLevel::kInfo, "serve.started", "", 0.0, "");
  log.log(obs::LogLevel::kError, "serve.error", "", 0.0, "journal-flush");
  log.close();
  const auto lines = read_lines(path);
  ASSERT_EQ(lines.size(), 2u);  // header + the error line
  EXPECT_EQ(parse_json(lines[1]).at("level").string, "error");
  EXPECT_EQ(log.emitted(), 1u);
  std::remove(path);
}

// Rate limiting is per kind and degrades by summarizing: over-limit
// lines of one kind are dropped and counted, and the next emitted line
// of that kind carries the count.  Other kinds are unaffected.
TEST(OpsLog, RateLimitSuppressesAndSummarizesPerKind) {
  const char* path = "test_ops_log_rate_tmp.jsonl";
  obs::OpsLog log;
  log.open_file(path);
  log.set_min_level(obs::LogLevel::kDebug);
  log.set_rate_limit(2);
  for (int i = 0; i < 5; ++i) {
    log.log(obs::LogLevel::kDebug, "rl.flood", "", 0.0, "");
  }
  log.log(obs::LogLevel::kDebug, "rl.other", "", 0.0, "");
  EXPECT_EQ(log.emitted(), 3u);  // 2 flood + 1 other
  EXPECT_EQ(log.suppressed(), 3u);
  // Raising the limit lets the next flood line through, carrying the
  // summary of what was dropped.
  log.set_rate_limit(0);
  log.log(obs::LogLevel::kDebug, "rl.flood", "", 0.0, "");
  log.close();
  const auto lines = read_lines(path);
  ASSERT_EQ(lines.size(), 5u);  // header + 2 flood + other + final flood
  bool found_summary = false;
  for (std::size_t i = 1; i < lines.size(); ++i) {
    const JsonValue rec = parse_json(lines[i]);
    if (const JsonValue* s = rec.find("suppressed"); s != nullptr) {
      EXPECT_EQ(rec.at("kind").string, "rl.flood");
      EXPECT_DOUBLE_EQ(s->number, 3.0);
      found_summary = true;
    }
  }
  EXPECT_TRUE(found_summary);
  std::remove(path);
}

// Rate limit 0 disables limiting entirely.
TEST(OpsLog, ZeroRateLimitIsUnlimited) {
  const char* path = "test_ops_log_unlimited_tmp.jsonl";
  obs::OpsLog log;
  log.open_file(path);
  log.set_min_level(obs::LogLevel::kDebug);
  log.set_rate_limit(0);
  for (int i = 0; i < 600; ++i) {
    log.log(obs::LogLevel::kDebug, "unltd", "", 0.0, "");
  }
  log.close();
  EXPECT_EQ(log.emitted(), 600u);
  EXPECT_EQ(log.suppressed(), 0u);
  std::remove(path);
}

// With no sink attached, lines go nowhere (engine-embedded callers stay
// silent by default) — and the kill switch silences even an attached
// global sink with one relaxed load per call site.
TEST(OpsLog, NoSinkDropsAndKillSwitchSilencesGlobal) {
  obs::OpsLog detached;
  detached.log(obs::LogLevel::kError, "nowhere", "", 0.0, "");
  EXPECT_EQ(detached.emitted(), 0u);

  const char* path = "test_ops_log_kill_tmp.jsonl";
  obs::OpsLog::global().open_file(path);
  obs::set_ops_log_armed(false);
  obs::log_event(obs::LogLevel::kError, "killswitch", "", 0.0, "");
  obs::set_ops_log_armed(true);
  obs::log_event(obs::LogLevel::kError, "killswitch", "", 0.0, "armed");
  obs::OpsLog::global().close();
  const auto lines = read_lines(path);
  ASSERT_EQ(lines.size(), 2u);  // header + the armed line only
  EXPECT_EQ(parse_json(lines[1]).at("detail").string, "armed");
  std::remove(path);
}

TEST(OpsLog, OpenFileFailureThrowsSanitizedError) {
  obs::OpsLog log;
  EXPECT_THROW(log.open_file("/nonexistent-dir/ops.log"), DpError);
}

}  // namespace
}  // namespace dpnet::core
