// Per-analyst budget gauges and the event journal's ops-surface
// plumbing: AuditingBudget feeds budget.spent.<label> /
// budget.remaining.<label> / budget.refusals.<label> on the global
// MetricsRegistry (docs/observability.md), and every charge/refusal is
// witnessed by the global EventJournal unless the journal kill switch is
// off.  Tests here use per-case unique labels and delta-based
// assertions: the global registry outlives individual cases when the
// whole binary runs in one process.
#include <gtest/gtest.h>

#include <memory>
#include <string>

#include "core/audit.hpp"
#include "core/budget.hpp"
#include "core/metrics.hpp"
#include "core/obs/journal.hpp"

namespace dpnet::core {
namespace {

// A labeled charge lands on all three of: the accountant, the spent
// gauge, and (finitely-capped inner => finite headroom) the remaining
// gauge.
TEST(BudgetGauges, LabeledChargesFeedPerAnalystGauges) {
  auto audit =
      std::make_shared<AuditingBudget>(std::make_shared<RootBudget>(2.0));
  const ScopedAuditLabel label(*audit, "gauge.alice");
  audit->charge(0.5);
  EXPECT_DOUBLE_EQ(builtin_metrics::budget_spent("gauge.alice").value(), 0.5);
  EXPECT_DOUBLE_EQ(builtin_metrics::budget_remaining("gauge.alice").value(),
                   1.5);
  audit->charge(0.25);
  EXPECT_DOUBLE_EQ(builtin_metrics::budget_spent("gauge.alice").value(),
                   0.75);
  EXPECT_DOUBLE_EQ(builtin_metrics::budget_remaining("gauge.alice").value(),
                   1.25);
}

// Two analysts on one accountant: ScopedAuditLabel routes each charge to
// its own gauge series; the shared accountant sums both.
TEST(BudgetGauges, LabelsSeparateAnalystSeries) {
  auto audit =
      std::make_shared<AuditingBudget>(std::make_shared<RootBudget>(2.0));
  {
    const ScopedAuditLabel label(*audit, "gauge.bob");
    audit->charge(0.5);
  }
  {
    const ScopedAuditLabel label(*audit, "gauge.carol");
    audit->charge(0.25);
  }
  EXPECT_DOUBLE_EQ(builtin_metrics::budget_spent("gauge.bob").value(), 0.5);
  EXPECT_DOUBLE_EQ(builtin_metrics::budget_spent("gauge.carol").value(),
                   0.25);
  EXPECT_DOUBLE_EQ(audit->spent(), 0.75);
}

// Refusals never move the spent gauge or the ledger — they count on the
// per-analyst refusal counter instead, via both the throwing charge()
// path and the boolean try_charge() path.
TEST(BudgetGauges, RefusalsCountWithoutTouchingSpent) {
  auto audit =
      std::make_shared<AuditingBudget>(std::make_shared<RootBudget>(1.0));
  const ScopedAuditLabel label(*audit, "gauge.dave");
  audit->charge(0.75);
  EXPECT_THROW(audit->charge(0.5), BudgetExhaustedError);
  EXPECT_FALSE(audit->try_charge(0.5));
  EXPECT_EQ(builtin_metrics::budget_refusals("gauge.dave").value(), 2u);
  EXPECT_DOUBLE_EQ(builtin_metrics::budget_spent("gauge.dave").value(), 0.75);
  EXPECT_EQ(audit->entries().size(), 1u);
  EXPECT_DOUBLE_EQ(audit->spent(), 0.75);
}

// An empty audit label maps to the "unlabeled" series so the metric
// names stay well-formed.
TEST(BudgetGauges, EmptyLabelMapsToUnlabeledSeries) {
  EXPECT_EQ(&builtin_metrics::budget_spent(""),
            &builtin_metrics::budget_spent("unlabeled"));
  EXPECT_EQ(&builtin_metrics::budget_refusals(""),
            &builtin_metrics::budget_refusals("unlabeled"));
  auto audit =
      std::make_shared<AuditingBudget>(std::make_shared<RootBudget>(1.0));
  const double before = builtin_metrics::budget_spent("unlabeled").value();
  audit->charge(0.125);
  EXPECT_DOUBLE_EQ(builtin_metrics::budget_spent("unlabeled").value(),
                   before + 0.125);
}

// An accountant with no cap of its own reports remaining() == +infinity;
// the remaining gauge must never be fed an "inf" sample (it would not
// survive JSON export), so it stays at its default.
TEST(BudgetGauges, RemainingGaugeSkippedForUnboundedAccountants) {
  class UnboundedBudget final : public PrivacyBudget {
   public:
    [[nodiscard]] bool can_charge(double) const override { return true; }
    void charge(double eps) override { spent_ += eps; }
    [[nodiscard]] bool try_charge(double eps) override {
      spent_ += eps;
      return true;
    }
    [[nodiscard]] double spent() const override { return spent_; }

   private:
    double spent_ = 0.0;
  };
  auto audit =
      std::make_shared<AuditingBudget>(std::make_shared<UnboundedBudget>());
  const ScopedAuditLabel label(*audit, "gauge.unbounded");
  audit->charge(0.5);
  EXPECT_DOUBLE_EQ(builtin_metrics::budget_spent("gauge.unbounded").value(),
                   0.5);
  EXPECT_DOUBLE_EQ(
      builtin_metrics::budget_remaining("gauge.unbounded").value(), 0.0);
}

// The per-analyst series ride the existing exports: JSON by their
// dotted names, Prometheus as one family per position with the analyst
// as a proper label value (docs/observability.md).
TEST(BudgetGauges, PerAnalystSeriesAppearInExports) {
  auto audit =
      std::make_shared<AuditingBudget>(std::make_shared<RootBudget>(1.0));
  const ScopedAuditLabel label(*audit, "promanalyst");
  audit->charge(0.25);
  const std::string json = MetricsRegistry::global().to_json();
  EXPECT_NE(json.find("budget.spent.promanalyst"), std::string::npos);
  EXPECT_NE(json.find("budget.remaining.promanalyst"), std::string::npos);
  const std::string prom = MetricsRegistry::global().to_prometheus();
  EXPECT_NE(prom.find("dpnet_budget_spent{analyst=\"promanalyst\"}"),
            std::string::npos);
  EXPECT_NE(prom.find("dpnet_budget_remaining{analyst=\"promanalyst\"}"),
            std::string::npos);
  // One TYPE declaration per family, not one per analyst.
  const std::string type_line = "# TYPE dpnet_budget_spent gauge";
  const std::size_t first = prom.find(type_line);
  ASSERT_NE(first, std::string::npos);
  EXPECT_EQ(prom.find(type_line, first + 1), std::string::npos);
}

// The journal kill switch: disarmed, a charge and a refusal leave the
// global journal untouched (the emission sites are one relaxed load);
// re-armed, the next charge is witnessed again.
TEST(BudgetGauges, JournalKillSwitchSuppressesEmission) {
  auto audit =
      std::make_shared<AuditingBudget>(std::make_shared<RootBudget>(1.0));
  obs::set_journal_armed(false);
  const std::uint64_t before = obs::EventJournal::global().appended();
  audit->charge(0.25);
  EXPECT_THROW(audit->charge(1.0), BudgetExhaustedError);
  EXPECT_EQ(obs::EventJournal::global().appended(), before);
  obs::set_journal_armed(true);
  audit->charge(0.25);
  EXPECT_EQ(obs::EventJournal::global().appended(), before + 1);
}

// The bounded ring degrades by forgetting the oldest events — never by
// blocking or growing: appended/dropped count faithfully and the flush
// header carries the drop count to the offline verifier.
TEST(BudgetGauges, BoundedRingDropsOldestAndReportsCount) {
  obs::EventJournal journal(4);
  for (std::uint64_t i = 0; i < 6; ++i) {
    journal.append(obs::EventKind::kCharge, "ring", i + 1, 0.125, "laplace");
  }
  EXPECT_EQ(journal.appended(), 6u);
  EXPECT_EQ(journal.dropped(), 2u);
  const auto events = journal.events();
  ASSERT_EQ(events.size(), 4u);
  EXPECT_EQ(events.front().seq, 2u);
  EXPECT_EQ(events.front().node_id, 3u);
  EXPECT_EQ(events.back().seq, 5u);
  const obs::JournalVerification v =
      obs::verify_journal_text(journal.to_jsonl(/*canonical=*/false));
  ASSERT_TRUE(v.ok) << v.error;
  EXPECT_EQ(v.events, 4u);
  EXPECT_EQ(v.dropped, 2u);
}

// Both flush orders round-trip through the verifier with the same
// tallies: canonical (renumbered seq, no timestamps) for artifacts,
// arrival (original seq, ts_us) for `audit tail`.
TEST(BudgetGauges, BothFlushOrdersRoundTripThroughVerifier) {
  obs::EventJournal journal(64);
  journal.append(obs::EventKind::kCharge, "rt", 7, 0.5, "laplace");
  journal.append(obs::EventKind::kRefusal, "rt", 3, 0.75, "");
  journal.append(obs::EventKind::kAbort, "", 0, 0.0, "deadline");
  journal.append(obs::EventKind::kTaskBegin, "", 11, 0.0, "");
  journal.append(obs::EventKind::kTaskEnd, "", 11, 0.0, "ok");
  journal.append(obs::EventKind::kFault, "", 7, 0.0, "core.release.charge");
  journal.append(obs::EventKind::kQuarantine, "", 0, 0.0, "net.trace_io");
  for (const bool canonical : {true, false}) {
    const obs::JournalVerification v =
        obs::verify_journal_text(journal.to_jsonl(canonical));
    ASSERT_TRUE(v.ok) << v.error << " canonical=" << canonical;
    EXPECT_EQ(v.events, 7u);
    EXPECT_EQ(v.charges, 1u);
    EXPECT_EQ(v.refusals, 1u);
    EXPECT_EQ(v.aborts, 1u);
    EXPECT_EQ(v.tasks, 1u);
    EXPECT_EQ(v.faults, 1u);
    EXPECT_EQ(v.quarantined, 1u);
    EXPECT_DOUBLE_EQ(v.charged_eps, 0.5);
    EXPECT_DOUBLE_EQ(v.refused_eps, 0.75);
  }
}

}  // namespace
}  // namespace dpnet::core
