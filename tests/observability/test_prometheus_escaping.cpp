// Prometheus exposition hardening (src/core/metrics.cpp): analyst names
// are attacker-chosen wire input and end up as label values in
// `metrics --prometheus`, so backslashes, quotes, and newlines must be
// escaped per the text exposition format 0.0.4 — a hostile name must
// never break out of its label and forge new series or HELP/TYPE lines.
// Also pins the registered-but-untouched suppression for serve.* series.
#include <gtest/gtest.h>

#include <string>

#include "core/metrics.hpp"

namespace dpnet::core {
namespace {

TEST(PrometheusEscaping, HostileAnalystLabelValuesAreEscaped) {
  MetricsRegistry registry;
  const std::string hostile = "evil\\name\"quoted\nnextline";
  registry.gauge("budget.spent." + hostile).set(0.5);
  const std::string prom = registry.to_prometheus();
  // The escaped label value: backslash -> \\, quote -> \", newline -> \n.
  EXPECT_NE(
      prom.find(
          "dpnet_budget_spent{analyst=\"evil\\\\name\\\"quoted\\nnextline\"}"),
      std::string::npos);
  // No raw newline inside any label value: every '\n' in the exposition
  // must end a complete sample or comment line, so a scraper never sees
  // a forged line injected through the analyst name.
  std::size_t start = 0;
  while (start < prom.size()) {
    std::size_t end = prom.find('\n', start);
    if (end == std::string::npos) end = prom.size();
    const std::string line = prom.substr(start, end - start);
    if (!line.empty() && line[0] != '#') {
      EXPECT_NE(line.find(' '), std::string::npos)
          << "sample line without value: " << line;
    }
    start = end + 1;
  }
}

TEST(PrometheusEscaping, AnalystFamiliesShareOneTypeDeclaration) {
  MetricsRegistry registry;
  registry.gauge("budget.spent.alice").set(0.25);
  registry.gauge("budget.spent.bob").set(0.5);
  registry.gauge("budget.eta_s.alice").set(120.0);
  const std::string prom = registry.to_prometheus();
  const std::string type_line = "# TYPE dpnet_budget_spent gauge";
  const std::size_t first = prom.find(type_line);
  ASSERT_NE(first, std::string::npos);
  EXPECT_EQ(prom.find(type_line, first + 1), std::string::npos);
  EXPECT_NE(prom.find("dpnet_budget_spent{analyst=\"alice\"} 0.25"),
            std::string::npos);
  EXPECT_NE(prom.find("dpnet_budget_spent{analyst=\"bob\"} 0.5"),
            std::string::npos);
  EXPECT_NE(prom.find("# TYPE dpnet_budget_eta_s gauge"), std::string::npos);
}

// serve.* series are registered eagerly (so the JSON snapshot lists the
// full ops vocabulary) but suppressed from the Prometheus exposition
// until first touched: engine-only runs scrape clean, a real server's
// series appear the moment they move — including an explicit set(0).
TEST(PrometheusEscaping, UntouchedServeSeriesSuppressedUntilTouched) {
  MetricsRegistry registry;
  registry.gauge("serve.queue.depth");
  registry.counter("serve.requests.shed");
  registry.gauge("other.series");
  const std::string before = registry.to_prometheus();
  EXPECT_EQ(before.find("dpnet_serve_queue_depth"), std::string::npos);
  EXPECT_EQ(before.find("dpnet_serve_requests_shed"), std::string::npos);
  // Non-serve series are never suppressed, touched or not.
  EXPECT_NE(before.find("dpnet_other_series"), std::string::npos);
  // JSON keeps the full registry regardless.
  EXPECT_NE(registry.to_json().find("serve.queue.depth"), std::string::npos);

  registry.gauge("serve.queue.depth").set(0.0);  // an explicit zero counts
  registry.counter("serve.requests.shed").increment();
  const std::string after = registry.to_prometheus();
  EXPECT_NE(after.find("dpnet_serve_queue_depth 0"), std::string::npos);
  EXPECT_NE(after.find("dpnet_serve_requests_shed 1"), std::string::npos);
}

// reset() returns a series to the untouched state, so a fresh scrape
// after test plumbing resets does not resurrect stale serve series.
TEST(PrometheusEscaping, ResetClearsTouchedState) {
  MetricsRegistry registry;
  registry.gauge("serve.queue.depth").set(3.0);
  EXPECT_NE(registry.to_prometheus().find("dpnet_serve_queue_depth"),
            std::string::npos);
  registry.reset();
  EXPECT_EQ(registry.to_prometheus().find("dpnet_serve_queue_depth"),
            std::string::npos);
}

}  // namespace
}  // namespace dpnet::core
