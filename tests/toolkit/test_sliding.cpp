#include "toolkit/sliding.hpp"

#include <gtest/gtest.h>

#include <random>

#include "stats/metrics.hpp"

namespace dpnet::toolkit {
namespace {

struct Env {
  std::shared_ptr<core::RootBudget> budget;
  std::shared_ptr<core::NoiseSource> noise;

  explicit Env(double total = 1e12, std::uint64_t seed = 22)
      : budget(std::make_shared<core::RootBudget>(total)),
        noise(std::make_shared<core::NoiseSource>(seed)) {}

  core::Queryable<double> wrap(std::vector<double> data) const {
    return {std::move(data), budget, noise};
  }
};

SlidingWindowSpec spec(double t0, double t1, double window, double step) {
  SlidingWindowSpec s;
  s.t_start = t0;
  s.t_end = t1;
  s.window = window;
  s.step = step;
  return s;
}

std::vector<double> random_times(int n, double t_end, std::uint64_t seed) {
  std::mt19937_64 rng(seed);
  std::uniform_real_distribution<double> dist(0.0, t_end);
  std::vector<double> out(static_cast<std::size_t>(n));
  for (auto& t : out) t = dist(rng);
  return out;
}

TEST(ExactSlidingCounts, HandComputedWindows) {
  const std::vector<double> times = {0.5, 1.5, 2.5, 2.6, 3.5};
  const auto counts = exact_sliding_counts(times, spec(0, 4, 2, 1));
  // Windows: [0,2)=2, [1,3)=3, [2,4)=3.
  ASSERT_EQ(counts.counts.size(), 3u);
  EXPECT_DOUBLE_EQ(counts.counts[0], 2.0);
  EXPECT_DOUBLE_EQ(counts.counts[1], 3.0);
  EXPECT_DOUBLE_EQ(counts.counts[2], 3.0);
  EXPECT_DOUBLE_EQ(counts.window_starts[1], 1.0);
}

TEST(ExactSlidingCounts, IgnoresOutOfRangeEvents) {
  const std::vector<double> times = {-1.0, 0.5, 99.0};
  const auto counts = exact_sliding_counts(times, spec(0, 4, 2, 1));
  EXPECT_DOUBLE_EQ(counts.counts[0], 1.0);
}

TEST(SlidingCounts, MatchesExactAtHighEps) {
  Env env;
  const auto times = random_times(5000, 100.0, 4);
  const auto exact = exact_sliding_counts(times, spec(0, 100, 10, 2));
  const auto dp = sliding_counts(env.wrap(times), spec(0, 100, 10, 2), 1e7);
  ASSERT_EQ(dp.counts.size(), exact.counts.size());
  for (std::size_t i = 0; i < exact.counts.size(); ++i) {
    EXPECT_NEAR(dp.counts[i], exact.counts[i], 0.5);
  }
}

TEST(SlidingCounts, BucketedCostsOneEpsTotal) {
  Env env;
  const auto times = random_times(500, 50.0, 5);
  sliding_counts(env.wrap(times), spec(0, 50, 5, 1), 0.4);
  EXPECT_NEAR(env.budget->spent(), 0.4, 1e-9);
}

TEST(SlidingCounts, NaiveAlsoCostsOneEpsTotalButSplitsIt) {
  Env env;
  const auto times = random_times(500, 50.0, 6);
  sliding_counts_naive(env.wrap(times), spec(0, 50, 5, 1), 0.4);
  EXPECT_NEAR(env.budget->spent(), 0.4, 1e-9);
}

TEST(SlidingCounts, BucketedBeatsNaiveAtEqualCost) {
  const auto times = random_times(20000, 200.0, 7);
  const auto s = spec(0, 200, 20, 2);  // 91 windows
  const auto exact = exact_sliding_counts(times, s);
  double err_bucketed = 0.0, err_naive = 0.0;
  for (std::uint64_t seed = 0; seed < 4; ++seed) {
    Env e1(1e12, 30 + seed), e2(1e12, 40 + seed);
    err_bucketed += stats::rmse(
        sliding_counts(e1.wrap(times), s, 1.0).counts, exact.counts);
    err_naive += stats::rmse(
        sliding_counts_naive(e2.wrap(times), s, 1.0).counts, exact.counts);
  }
  EXPECT_LT(err_bucketed * 5.0, err_naive);
}

TEST(SlidingCounts, RejectsBadSpecs) {
  Env env;
  auto q = env.wrap({1.0});
  EXPECT_THROW(sliding_counts(q, spec(0, 10, 0, 1), 1.0),
               std::invalid_argument);
  EXPECT_THROW(sliding_counts(q, spec(0, 10, 3, 2), 1.0),
               std::invalid_argument);  // window not multiple of step
  EXPECT_THROW(sliding_counts(q, spec(10, 0, 2, 1), 1.0),
               std::invalid_argument);
  EXPECT_THROW(sliding_counts(q, spec(0, 1, 2, 2), 1.0),
               std::invalid_argument);  // range shorter than one window
}

TEST(SlidingCounts, WindowEqualsStepDegeneratesToBuckets) {
  Env env;
  const std::vector<double> times = {0.5, 1.5, 1.6};
  const auto dp = sliding_counts(env.wrap(times), spec(0, 2, 1, 1), 1e7);
  ASSERT_EQ(dp.counts.size(), 2u);
  EXPECT_NEAR(dp.counts[0], 1.0, 0.1);
  EXPECT_NEAR(dp.counts[1], 2.0, 0.1);
}

}  // namespace
}  // namespace dpnet::toolkit
