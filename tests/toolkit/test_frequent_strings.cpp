#include "toolkit/frequent_strings.hpp"

#include <gtest/gtest.h>

#include <string>
#include <vector>

namespace dpnet::toolkit {
namespace {

struct Env {
  std::shared_ptr<core::RootBudget> budget;
  std::shared_ptr<core::NoiseSource> noise;

  explicit Env(double total = 1e12, std::uint64_t seed = 8)
      : budget(std::make_shared<core::RootBudget>(total)),
        noise(std::make_shared<core::NoiseSource>(seed)) {}

  core::Queryable<std::string> wrap(std::vector<std::string> data) const {
    return {std::move(data), budget, noise};
  }
};

std::vector<std::string> corpus() {
  std::vector<std::string> data;
  for (int i = 0; i < 500; ++i) data.push_back("AAAA");
  for (int i = 0; i < 300; ++i) data.push_back("ABCD");
  for (int i = 0; i < 150; ++i) data.push_back("ZZZZ");
  for (int i = 0; i < 3; ++i) data.push_back("RARE");
  return data;
}

TEST(FrequentStrings, FindsFrequentStringsInOrder) {
  Env env;
  FrequentStringOptions opt;
  opt.length = 4;
  opt.eps_per_level = 1e6;  // effectively exact
  opt.threshold = 50.0;
  const auto found = frequent_strings(env.wrap(corpus()), opt);
  ASSERT_EQ(found.size(), 3u);
  EXPECT_EQ(found[0].value, "AAAA");
  EXPECT_EQ(found[1].value, "ABCD");
  EXPECT_EQ(found[2].value, "ZZZZ");
  EXPECT_NEAR(found[0].estimated_count, 500.0, 1.0);
  EXPECT_NEAR(found[1].estimated_count, 300.0, 1.0);
}

TEST(FrequentStrings, RareStringsStayHidden) {
  Env env;
  FrequentStringOptions opt;
  opt.length = 4;
  opt.eps_per_level = 1e6;
  opt.threshold = 50.0;
  const auto found = frequent_strings(env.wrap(corpus()), opt);
  for (const auto& f : found) {
    EXPECT_NE(f.value, "RARE");
  }
}

TEST(FrequentStrings, SharedPrefixesAreSeparated) {
  Env env;
  std::vector<std::string> data;
  for (int i = 0; i < 200; ++i) data.push_back("ABX");
  for (int i = 0; i < 200; ++i) data.push_back("ABY");
  FrequentStringOptions opt;
  opt.length = 3;
  opt.eps_per_level = 1e6;
  opt.threshold = 100.0;
  const auto found = frequent_strings(env.wrap(std::move(data)), opt);
  ASSERT_EQ(found.size(), 2u);
}

TEST(FrequentStrings, ShortRecordsAreIgnored) {
  Env env;
  std::vector<std::string> data;
  for (int i = 0; i < 200; ++i) data.push_back("AB");  // too short
  for (int i = 0; i < 200; ++i) data.push_back("XYZ");
  FrequentStringOptions opt;
  opt.length = 3;
  opt.eps_per_level = 1e6;
  opt.threshold = 100.0;
  const auto found = frequent_strings(env.wrap(std::move(data)), opt);
  ASSERT_EQ(found.size(), 1u);
  EXPECT_EQ(found[0].value, "XYZ");
}

TEST(FrequentStrings, LongerRecordsParticipateViaPrefix) {
  Env env;
  std::vector<std::string> data;
  for (int i = 0; i < 200; ++i) data.push_back("PREFIX-" + std::to_string(i));
  FrequentStringOptions opt;
  opt.length = 6;
  opt.eps_per_level = 1e6;
  opt.threshold = 100.0;
  const auto found = frequent_strings(env.wrap(std::move(data)), opt);
  ASSERT_EQ(found.size(), 1u);
  EXPECT_EQ(found[0].value, "PREFIX");
}

TEST(FrequentStrings, PrivacyCostIsLengthTimesLevelEps) {
  Env env;
  FrequentStringOptions opt;
  opt.length = 4;
  opt.eps_per_level = 0.05;
  opt.threshold = 50.0;
  frequent_strings(env.wrap(corpus()), opt);
  EXPECT_NEAR(env.budget->spent(), 4 * 0.05, 1e-9);
}

TEST(FrequentStrings, HandlesBinaryBytes) {
  Env env;
  std::vector<std::string> data;
  const std::string binary("\x00\xff\x80", 3);
  for (int i = 0; i < 150; ++i) data.push_back(binary);
  FrequentStringOptions opt;
  opt.length = 3;
  opt.eps_per_level = 1e6;
  opt.threshold = 100.0;
  const auto found = frequent_strings(env.wrap(std::move(data)), opt);
  ASSERT_EQ(found.size(), 1u);
  EXPECT_EQ(found[0].value, binary);
}

TEST(FrequentStrings, RejectsZeroLength) {
  Env env;
  FrequentStringOptions opt;
  opt.length = 0;
  EXPECT_THROW(frequent_strings(env.wrap({"x"}), opt),
               std::invalid_argument);
}

TEST(FrequentStrings, EmptyDataYieldsNothingAtModestThreshold) {
  Env env;
  FrequentStringOptions opt;
  opt.length = 2;
  opt.eps_per_level = 1.0;
  opt.threshold = 50.0;
  EXPECT_TRUE(frequent_strings(env.wrap({}), opt).empty());
}

TEST(FrequentStrings, NoiseCanMissBorderlineStringsAtStrongPrivacy) {
  // At eps 0.01 per level, counts near the threshold flip in and out —
  // run many seeds and check the dominant string always survives while
  // the borderline one is sometimes lost (the paper's recall-vs-eps).
  int dominant_found = 0, borderline_found = 0;
  const int trials = 12;
  for (int t = 0; t < trials; ++t) {
    Env env(1e12, static_cast<std::uint64_t>(t) + 100);
    std::vector<std::string> data;
    for (int i = 0; i < 5000; ++i) data.push_back("BIG!");
    for (int i = 0; i < 55; ++i) data.push_back("TINY");
    FrequentStringOptions opt;
    opt.length = 4;
    opt.eps_per_level = 0.01;
    opt.threshold = 50.0;
    const auto found = frequent_strings(env.wrap(std::move(data)), opt);
    for (const auto& f : found) {
      if (f.value == "BIG!") ++dominant_found;
      if (f.value == "TINY") ++borderline_found;
    }
  }
  EXPECT_EQ(dominant_found, trials);
  EXPECT_LT(borderline_found, trials);
}

TEST(ThresholdForConfidence, ControlsNoiseBornSurvivors) {
  // At eps=0.1/level and 256 bins, the derived threshold should keep
  // false positives per level near the requested rate.  Empirically: count
  // how often Laplace(1/eps) noise on an empty bin clears the threshold.
  const double eps = 0.1;
  const double rate = 0.5;  // half a false positive per level
  const double t = threshold_for_confidence(eps, rate, 256);
  core::NoiseSource noise(90);
  const int trials = 200000;
  int cleared = 0;
  for (int i = 0; i < trials; ++i) {
    if (noise.laplace(1.0 / eps) > t) ++cleared;
  }
  const double per_level =
      256.0 * static_cast<double>(cleared) / static_cast<double>(trials);
  EXPECT_NEAR(per_level, rate, 0.15 * rate);
}

TEST(ThresholdForConfidence, TightensWithMoreBinsAndLowerRates) {
  const double base = threshold_for_confidence(0.1, 1.0, 256);
  EXPECT_GT(threshold_for_confidence(0.1, 1.0, 4096), base);
  EXPECT_GT(threshold_for_confidence(0.1, 0.01, 256), base);
  EXPECT_LT(threshold_for_confidence(1.0, 1.0, 256), base);
}

TEST(ThresholdForConfidence, RejectsDegenerateInputs) {
  EXPECT_THROW(threshold_for_confidence(0.0, 0.5, 256),
               std::invalid_argument);
  EXPECT_THROW(threshold_for_confidence(0.1, 0.0, 256),
               std::invalid_argument);
  EXPECT_THROW(threshold_for_confidence(0.1, 0.5, 0),
               std::invalid_argument);
}

TEST(ToHex, RendersUppercaseHex) {
  EXPECT_EQ(to_hex(std::string("\x2d\x28\x16\xfe", 4)), "2D2816FE");
  EXPECT_EQ(to_hex(""), "");
  EXPECT_EQ(to_hex(std::string("\x00", 1)), "00");
}

}  // namespace
}  // namespace dpnet::toolkit
