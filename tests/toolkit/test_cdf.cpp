#include "toolkit/cdf.hpp"

#include <gtest/gtest.h>

#include <cmath>
#include <numeric>
#include <random>

#include "stats/metrics.hpp"

namespace dpnet::toolkit {
namespace {

constexpr double kExactEps = 1e7;

struct Env {
  std::shared_ptr<core::RootBudget> budget;
  std::shared_ptr<core::NoiseSource> noise;

  explicit Env(double total = 1e12, std::uint64_t seed = 3)
      : budget(std::make_shared<core::RootBudget>(total)),
        noise(std::make_shared<core::NoiseSource>(seed)) {}

  core::Queryable<std::int64_t> wrap(std::vector<std::int64_t> data) const {
    return {std::move(data), budget, noise};
  }
};

std::vector<std::int64_t> ramp_values(int n, std::int64_t max) {
  // Uniform-ish ramp over [0, max).
  std::vector<std::int64_t> v(static_cast<std::size_t>(n));
  for (int i = 0; i < n; ++i) v[static_cast<std::size_t>(i)] = i % max;
  return v;
}

TEST(MakeBoundaries, CoversTheRangeInclusive) {
  const auto b = make_boundaries(0, 100, 25);
  EXPECT_EQ(b, (std::vector<std::int64_t>{0, 25, 50, 75, 100}));
  EXPECT_THROW(make_boundaries(0, 10, 0), std::invalid_argument);
  EXPECT_THROW(make_boundaries(10, 0, 5), std::invalid_argument);
}

TEST(ExactCdf, CountsRecordsAtOrBelowEachBoundary) {
  const std::vector<std::int64_t> values = {1, 5, 5, 9, 20};
  const std::vector<std::int64_t> bounds = {4, 9, 50};
  const auto cdf = exact_cdf(values, bounds);
  EXPECT_EQ(cdf.values, (std::vector<double>{1.0, 4.0, 5.0}));
}

TEST(ExactCdf, RejectsUnsortedOrDuplicateBoundaries) {
  const std::vector<std::int64_t> values = {1};
  EXPECT_THROW(exact_cdf(values, std::vector<std::int64_t>{5, 4}),
               std::invalid_argument);
  EXPECT_THROW(exact_cdf(values, std::vector<std::int64_t>{4, 4}),
               std::invalid_argument);
  EXPECT_THROW(exact_cdf(values, std::vector<std::int64_t>{}),
               std::invalid_argument);
}

// All three estimators agree with the exact CDF when epsilon is enormous.
class CdfMethodAgreement
    : public ::testing::TestWithParam<
          CdfEstimate (*)(const core::Queryable<std::int64_t>&,
                          std::span<const std::int64_t>, double)> {};

TEST_P(CdfMethodAgreement, MatchesExactCdfAtHighEps) {
  Env env;
  const auto values = ramp_values(5000, 200);
  const auto bounds = make_boundaries(0, 199, 13);
  const auto exact = exact_cdf(values, bounds);
  const auto estimate = GetParam()(env.wrap(values), bounds, kExactEps);
  ASSERT_EQ(estimate.values.size(), exact.values.size());
  for (std::size_t i = 0; i < exact.values.size(); ++i) {
    EXPECT_NEAR(estimate.values[i], exact.values[i], 0.5) << "index " << i;
  }
}

INSTANTIATE_TEST_SUITE_P(
    AllMethods, CdfMethodAgreement,
    ::testing::Values(
        +[](const core::Queryable<std::int64_t>& q,
            std::span<const std::int64_t> b, double eps) {
          return cdf_prefix_counts(q, b, eps);
        },
        +[](const core::Queryable<std::int64_t>& q,
            std::span<const std::int64_t> b, double eps) {
          return cdf_partition(q, b, eps);
        },
        &cdf_recursive));

TEST(CdfPrefixCounts, TotalPrivacyCostIsEpsTotal) {
  Env env;
  auto q = env.wrap(ramp_values(100, 50));
  const auto bounds = make_boundaries(0, 49, 5);
  cdf_prefix_counts(q, bounds, 0.8);
  EXPECT_NEAR(env.budget->spent(), 0.8, 1e-9);
}

TEST(CdfPartition, TotalPrivacyCostIsEpsTotal) {
  Env env;
  auto q = env.wrap(ramp_values(100, 50));
  const auto bounds = make_boundaries(0, 49, 5);
  cdf_partition(q, bounds, 0.8);
  EXPECT_NEAR(env.budget->spent(), 0.8, 1e-9);
}

TEST(CdfRecursive, TotalPrivacyCostIsEpsTotal) {
  Env env;
  auto q = env.wrap(ramp_values(100, 50));
  const auto bounds = make_boundaries(0, 49, 5);
  cdf_recursive(q, bounds, 0.8);
  EXPECT_NEAR(env.budget->spent(), 0.8, 1e-9);
}

TEST(CdfErrorScaling, PartitionBeatsPrefixCountsAtEqualCost) {
  // The paper's Fig 1 headline: at the same total privacy cost, cdf1's
  // error dwarfs cdf2's and cdf3's.
  const auto values = ramp_values(20000, 250);
  const auto bounds = make_boundaries(0, 249, 1);  // 250 buckets
  const auto exact = exact_cdf(values, bounds);
  const double eps = 1.0;

  double err1 = 0.0, err2 = 0.0, err3 = 0.0;
  for (std::uint64_t seed = 0; seed < 5; ++seed) {
    Env e1(1e12, seed + 10), e2(1e12, seed + 20), e3(1e12, seed + 30);
    err1 += stats::rmse(cdf_prefix_counts(e1.wrap(values), bounds, eps).values,
                        exact.values);
    err2 += stats::rmse(cdf_partition(e2.wrap(values), bounds, eps).values,
                        exact.values);
    err3 += stats::rmse(cdf_recursive(e3.wrap(values), bounds, eps).values,
                        exact.values);
  }
  EXPECT_GT(err1, 5.0 * err2);
  EXPECT_GT(err1, 5.0 * err3);
}

TEST(CdfPartition, ValuesBeyondLastBoundaryAreExcluded) {
  Env env;
  std::vector<std::int64_t> values = {1, 2, 3, 1000};
  const std::vector<std::int64_t> bounds = {5, 10};
  const auto est = cdf_partition(env.wrap(values), bounds, kExactEps);
  EXPECT_NEAR(est.values.back(), 3.0, 0.1);
}

TEST(CdfRecursive, HandlesNonPowerOfTwoBucketCounts) {
  Env env;
  const auto values = ramp_values(3000, 100);
  const auto bounds = make_boundaries(0, 99, 9);  // 12 boundaries
  const auto exact = exact_cdf(values, bounds);
  const auto est = cdf_recursive(env.wrap(values), bounds, kExactEps);
  for (std::size_t i = 0; i < exact.values.size(); ++i) {
    EXPECT_NEAR(est.values[i], exact.values[i], 0.5);
  }
}

TEST(CdfRecursive, SingleBoundaryDegeneratesToOneCount) {
  Env env;
  const std::vector<std::int64_t> bounds = {10};
  const auto est =
      cdf_recursive(env.wrap({1, 2, 3, 50}), bounds, kExactEps);
  ASSERT_EQ(est.values.size(), 1u);
  EXPECT_NEAR(est.values[0], 3.0, 0.1);
}

TEST(CdfEstimates, NoisyCdfNeedNotBeMonotoneButIsotonicFixIs) {
  Env env(1e12, 77);
  const auto values = ramp_values(500, 100);
  const auto bounds = make_boundaries(0, 99, 2);
  const auto est = cdf_partition(env.wrap(values), bounds, 0.5);
  const auto smoothed = isotonic_fit(est.values);
  for (std::size_t i = 1; i < smoothed.size(); ++i) {
    EXPECT_GE(smoothed[i], smoothed[i - 1] - 1e-9);
  }
}

}  // namespace
}  // namespace dpnet::toolkit
