#include "toolkit/itemsets.hpp"

#include <gtest/gtest.h>

#include <vector>

namespace dpnet::toolkit {
namespace {

struct Env {
  std::shared_ptr<core::RootBudget> budget;
  std::shared_ptr<core::NoiseSource> noise;

  explicit Env(double total = 1e12, std::uint64_t seed = 9)
      : budget(std::make_shared<core::RootBudget>(total)),
        noise(std::make_shared<core::NoiseSource>(seed)) {}

  core::Queryable<std::vector<int>> wrap(
      std::vector<std::vector<int>> data) const {
    return {std::move(data), budget, noise};
  }
};

// Port-set style corpus: pairs (22,80) and (443,80) dominate.
std::vector<std::vector<int>> port_corpus() {
  std::vector<std::vector<int>> data;
  for (int i = 0; i < 200; ++i) data.push_back({22, 80});
  for (int i = 0; i < 160; ++i) data.push_back({80, 443});
  for (int i = 0; i < 60; ++i) data.push_back({25});
  for (int i = 0; i < 5; ++i) data.push_back({9999});
  return data;
}

const std::vector<int> kUniverse = {22, 25, 80, 443, 9999};

TEST(ExactItemsets, CountsSupportCorrectly) {
  const auto results =
      exact_frequent_itemsets(port_corpus(), kUniverse, 2, 50.0);
  // Singletons above 50: 22 (200), 25 (60), 80 (360), 443 (160);
  // pairs: {22,80} (200), {80,443} (160).
  std::size_t pairs = 0;
  for (const auto& r : results) {
    if (r.items.size() == 2) ++pairs;
    if (r.items == std::vector<int>{22, 80}) {
      EXPECT_DOUBLE_EQ(r.estimated_count, 200.0);
    }
    if (r.items == std::vector<int>{80}) {
      EXPECT_DOUBLE_EQ(r.estimated_count, 360.0);
    }
  }
  EXPECT_EQ(pairs, 2u);
}

TEST(FrequentItemsets, FindsTheDominantPairs) {
  Env env;
  ItemsetOptions opt;
  opt.max_size = 2;
  opt.eps_per_level = 1e6;
  opt.threshold = 50.0;
  const auto results = frequent_itemsets(env.wrap(port_corpus()), kUniverse,
                                         opt);
  std::vector<std::vector<int>> pairs;
  for (const auto& r : results) {
    if (r.items.size() == 2) pairs.push_back(r.items);
  }
  ASSERT_EQ(pairs.size(), 2u);
  EXPECT_EQ(pairs[0], (std::vector<int>{22, 80}));
  EXPECT_EQ(pairs[1], (std::vector<int>{80, 443}));
}

TEST(FrequentItemsets, RareItemsExcluded) {
  Env env;
  ItemsetOptions opt;
  opt.max_size = 1;
  opt.eps_per_level = 1e6;
  opt.threshold = 50.0;
  const auto results =
      frequent_itemsets(env.wrap(port_corpus()), kUniverse, opt);
  for (const auto& r : results) {
    EXPECT_NE(r.items, std::vector<int>{9999});
  }
}

TEST(FrequentItemsets, PartitionedCountsAreUnderestimates) {
  // A record supporting two candidates backs only one of them, so the
  // private count of a pair never exceeds its exact support (modulo tiny
  // noise at huge epsilon).
  Env env;
  ItemsetOptions opt;
  opt.max_size = 2;
  opt.eps_per_level = 1e6;
  opt.threshold = 20.0;
  const auto noisy =
      frequent_itemsets(env.wrap(port_corpus()), kUniverse, opt);
  const auto exact =
      exact_frequent_itemsets(port_corpus(), kUniverse, 2, 20.0);
  for (const auto& n : noisy) {
    for (const auto& e : exact) {
      if (n.items == e.items) {
        EXPECT_LE(n.estimated_count, e.estimated_count + 1.0);
      }
    }
  }
}

TEST(FrequentItemsets, PrivacyCostIsLevelsTimesEps) {
  Env env;
  ItemsetOptions opt;
  opt.max_size = 2;
  opt.eps_per_level = 0.07;
  opt.threshold = 50.0;
  frequent_itemsets(env.wrap(port_corpus()), kUniverse, opt);
  EXPECT_NEAR(env.budget->spent(), 2 * 0.07, 1e-9);
}

TEST(FrequentItemsets, TripletsEmergeWhenRequested) {
  Env env;
  std::vector<std::vector<int>> data;
  for (int i = 0; i < 300; ++i) data.push_back({1, 2, 3});
  ItemsetOptions opt;
  opt.max_size = 3;
  opt.eps_per_level = 1e6;
  opt.threshold = 50.0;
  const auto results =
      frequent_itemsets(env.wrap(std::move(data)), {1, 2, 3}, opt);
  bool found_triplet = false;
  for (const auto& r : results) {
    if (r.items == std::vector<int>{1, 2, 3}) found_triplet = true;
  }
  EXPECT_TRUE(found_triplet);
}

TEST(FrequentItemsets, RejectsNonPositiveMaxSize) {
  Env env;
  ItemsetOptions opt;
  opt.max_size = 0;
  EXPECT_THROW(frequent_itemsets(env.wrap({}), kUniverse, opt),
               std::invalid_argument);
}

TEST(FrequentItemsets, EmptyUniverseYieldsNothing) {
  Env env;
  ItemsetOptions opt;
  opt.eps_per_level = 1.0;
  EXPECT_TRUE(frequent_itemsets(env.wrap(port_corpus()), {}, opt).empty());
}

TEST(FrequentItemsets, HighThresholdFocusesSupport) {
  // The paper's counter-intuitive observation: with many overlapping
  // candidates, a higher threshold can make a pair *detectable* because
  // records stop being spread across weak candidates.  We verify at least
  // that raising the threshold never creates spurious pairs.
  Env env;
  ItemsetOptions strict;
  strict.max_size = 2;
  strict.eps_per_level = 1e6;
  strict.threshold = 150.0;
  const auto results =
      frequent_itemsets(env.wrap(port_corpus()), kUniverse, strict);
  for (const auto& r : results) {
    EXPECT_GT(r.estimated_count, 150.0);
  }
}

}  // namespace
}  // namespace dpnet::toolkit
