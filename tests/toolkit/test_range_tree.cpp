#include "toolkit/range_tree.hpp"

#include <gtest/gtest.h>

#include <cmath>
#include <random>

namespace dpnet::toolkit {
namespace {

core::Queryable<std::int64_t> wrap(const std::vector<std::int64_t>& data,
                                   std::uint64_t seed = 51) {
  return {data, std::make_shared<core::RootBudget>(1e12),
          std::make_shared<core::NoiseSource>(seed)};
}

std::vector<std::int64_t> random_values(int n, std::int64_t domain,
                                        std::uint64_t seed) {
  std::mt19937_64 rng(seed);
  std::uniform_int_distribution<std::int64_t> dist(0, domain - 1);
  std::vector<std::int64_t> out(static_cast<std::size_t>(n));
  for (auto& v : out) v = dist(rng);
  return out;
}

TEST(DpRangeTree, ArbitraryRangesMatchExactAtHighEps) {
  const auto values = random_values(5000, 256, 3);
  DpRangeTree tree(wrap(values), 256, 1e8);
  std::mt19937_64 rng(4);
  for (int trial = 0; trial < 100; ++trial) {
    const auto lo = static_cast<std::int64_t>(rng() % 255);
    const auto hi =
        lo + 1 + static_cast<std::int64_t>(rng() % (256 - lo));
    EXPECT_NEAR(tree.range_count(lo, hi), exact_range_count(values, lo, hi),
                1.0)
        << "[" << lo << "," << hi << ")";
  }
}

TEST(DpRangeTree, WholeBuildCostsOneEps) {
  auto budget = std::make_shared<core::RootBudget>(1.0);
  core::Queryable<std::int64_t> q(random_values(500, 64, 5), budget,
                                  std::make_shared<core::NoiseSource>(6));
  DpRangeTree tree(q, 64, 0.5);
  EXPECT_NEAR(budget->spent(), 0.5, 1e-9);
  // Queries afterwards are free.
  static_cast<void>(tree.range_count(3, 40));
  static_cast<void>(tree.range_count(0, 64));
  EXPECT_NEAR(budget->spent(), 0.5, 1e-9);
}

TEST(DpRangeTree, RepeatedQueriesAreDeterministic) {
  const auto values = random_values(1000, 128, 7);
  DpRangeTree tree(wrap(values), 128, 1.0);
  EXPECT_DOUBLE_EQ(tree.range_count(10, 90), tree.range_count(10, 90));
}

TEST(DpRangeTree, DecompositionIsLogarithmic) {
  const auto values = random_values(100, 1024, 8);
  DpRangeTree tree(wrap(values), 1024, 1.0);
  EXPECT_EQ(tree.levels(), 11);
  std::mt19937_64 rng(9);
  for (int trial = 0; trial < 200; ++trial) {
    const auto lo = static_cast<std::int64_t>(rng() % 1023);
    const auto hi =
        lo + 1 + static_cast<std::int64_t>(rng() % (1024 - lo));
    EXPECT_LE(tree.decomposition_size(lo, hi),
              2u * static_cast<std::size_t>(tree.levels() - 1) + 1);
  }
  // Aligned full-domain query is a single node (the root).
  EXPECT_EQ(tree.decomposition_size(0, 1024), 1u);
  // A leaf is a single node too.
  EXPECT_EQ(tree.decomposition_size(17, 18), 1u);
}

TEST(DpRangeTree, PadsNonPowerOfTwoDomains) {
  const auto values = random_values(500, 100, 10);
  DpRangeTree tree(wrap(values), 100, 1e8);
  EXPECT_EQ(tree.domain_size(), 128);
  EXPECT_NEAR(tree.range_count(0, 100), 500.0, 1.0);
}

TEST(DpRangeTree, OutOfDomainValuesAreDropped) {
  std::vector<std::int64_t> values = {5, 6, 7, -3, 999};
  DpRangeTree tree(wrap(values), 16, 1e8);
  EXPECT_NEAR(tree.range_count(0, 16), 3.0, 0.5);
}

TEST(DpRangeTree, RejectsBadRangesAndDomains) {
  const auto values = random_values(10, 16, 11);
  DpRangeTree tree(wrap(values), 16, 1.0);
  EXPECT_THROW(static_cast<void>(tree.range_count(-1, 4)),
               core::InvalidQueryError);
  EXPECT_THROW(static_cast<void>(tree.range_count(4, 4)),
               core::InvalidQueryError);
  EXPECT_THROW(static_cast<void>(tree.range_count(0, 17)),
               core::InvalidQueryError);
  EXPECT_THROW(DpRangeTree(wrap(values), 0, 1.0), core::InvalidQueryError);
}

TEST(DpRangeTree, BeatsPerQueryCountingForManyQueries) {
  // 100 ad-hoc range queries at a shared total budget of 1.0: per-query
  // Where+Count runs each at eps/100; the tree pays once and reuses.
  const auto values = random_values(50000, 256, 12);
  std::mt19937_64 rng(13);
  std::vector<std::pair<std::int64_t, std::int64_t>> queries;
  for (int i = 0; i < 100; ++i) {
    const auto lo = static_cast<std::int64_t>(rng() % 200);
    queries.emplace_back(lo, lo + 40);
  }

  DpRangeTree tree(wrap(values, 100), 256, 1.0);
  auto q = wrap(values, 200);
  double tree_err = 0.0, naive_err = 0.0;
  for (const auto& [lo, hi] : queries) {
    const double exact = exact_range_count(values, lo, hi);
    tree_err += std::abs(tree.range_count(lo, hi) - exact);
    const double naive =
        q.where([lo, hi](std::int64_t v) { return v >= lo && v < hi; })
            .noisy_count(1.0 / 100.0);
    naive_err += std::abs(naive - exact);
  }
  EXPECT_LT(tree_err * 2.0, naive_err);
}

}  // namespace
}  // namespace dpnet::toolkit
