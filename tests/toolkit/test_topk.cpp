#include "toolkit/topk.hpp"

#include <gtest/gtest.h>

#include <vector>

namespace dpnet::toolkit {
namespace {

struct Env {
  std::shared_ptr<core::RootBudget> budget;
  std::shared_ptr<core::NoiseSource> noise;

  explicit Env(double total = 1e12, std::uint64_t seed = 24)
      : budget(std::make_shared<core::RootBudget>(total)),
        noise(std::make_shared<core::NoiseSource>(seed)) {}

  core::Queryable<int> wrap(std::vector<int> data) const {
    return {std::move(data), budget, noise};
  }
};

/// Candidate i appears (10 - i) * 50 times for i in [0, 5).
std::vector<int> skewed_data() {
  std::vector<int> data;
  for (int i = 0; i < 5; ++i) {
    for (int n = 0; n < (10 - i) * 50; ++n) data.push_back(i);
  }
  return data;
}

int identity(int x) { return x; }

TEST(TopKPeeling, FindsTrueTopKInOrderAtHighEps) {
  Env env;
  const auto result =
      top_k_peeling(env.wrap(skewed_data()), 5, identity, 3, 1e6);
  EXPECT_EQ(result.indices, (std::vector<std::size_t>{0, 1, 2}));
}

TEST(TopKPeeling, NeverRepeatsACandidate) {
  Env env(1e12, 77);
  const auto result =
      top_k_peeling(env.wrap(skewed_data()), 5, identity, 5, 0.5);
  std::vector<bool> seen(5, false);
  for (std::size_t i : result.indices) {
    EXPECT_FALSE(seen[i]);
    seen[i] = true;
  }
}

TEST(TopKPeeling, TotalCostIsEps) {
  Env env;
  top_k_peeling(env.wrap(skewed_data()), 5, identity, 3, 0.3);
  EXPECT_NEAR(env.budget->spent(), 0.3, 1e-9);
}

TEST(TopKNoisyCounts, ReleasesCountsAndRanksThem) {
  Env env;
  const auto result =
      top_k_noisy_counts(env.wrap(skewed_data()), 5, identity, 2, 1e6);
  EXPECT_EQ(result.indices, (std::vector<std::size_t>{0, 1}));
  EXPECT_NEAR(result.scores[0], 500.0, 1.0);
  EXPECT_NEAR(result.scores[1], 450.0, 1.0);
}

TEST(TopKNoisyCounts, TotalCostIsEpsViaPartition) {
  Env env;
  top_k_noisy_counts(env.wrap(skewed_data()), 5, identity, 2, 0.25);
  EXPECT_NEAR(env.budget->spent(), 0.25, 1e-9);
}

TEST(TopK, RejectsDegenerateK) {
  Env env;
  auto q = env.wrap(skewed_data());
  EXPECT_THROW(top_k_peeling(q, 5, identity, 0, 1.0),
               core::InvalidQueryError);
  EXPECT_THROW(top_k_peeling(q, 5, identity, 6, 1.0),
               core::InvalidQueryError);
  EXPECT_THROW(top_k_noisy_counts(q, 5, identity, 6, 1.0),
               core::InvalidQueryError);
}

TEST(TopK, OutOfUniverseRecordsAreDropped) {
  Env env;
  std::vector<int> data = skewed_data();
  for (int n = 0; n < 10000; ++n) data.push_back(99);  // unlisted
  const auto result =
      top_k_noisy_counts(env.wrap(std::move(data)), 5, identity, 1, 1e6);
  EXPECT_EQ(result.indices[0], 0u);
  EXPECT_NEAR(result.scores[0], 500.0, 1.0);
}

TEST(TopKPeeling, NoisySelectionDegradesGracefully) {
  // At modest eps the top-1 (clear margin) is still found reliably even
  // when lower ranks shuffle.
  int top_correct = 0;
  const int trials = 10;
  for (int t = 0; t < trials; ++t) {
    Env env(1e12, 100 + static_cast<std::uint64_t>(t));
    const auto result =
        top_k_peeling(env.wrap(skewed_data()), 5, identity, 3, 1.0);
    if (result.indices[0] == 0) ++top_correct;
  }
  EXPECT_GE(top_correct, 8);
}

}  // namespace
}  // namespace dpnet::toolkit
