#include <gtest/gtest.h>

#include <random>
#include <vector>

#include "toolkit/cdf.hpp"

namespace dpnet::toolkit {
namespace {

TEST(IsotonicFit, LeavesMonotoneInputUnchanged) {
  const std::vector<double> v = {1.0, 2.0, 2.0, 5.0};
  EXPECT_EQ(isotonic_fit(v), v);
}

TEST(IsotonicFit, AveragesAdjacentViolators) {
  const std::vector<double> v = {3.0, 1.0};
  EXPECT_EQ(isotonic_fit(v), (std::vector<double>{2.0, 2.0}));
}

TEST(IsotonicFit, HandlesCascadingMerges) {
  const std::vector<double> v = {4.0, 3.0, 2.0, 1.0};
  EXPECT_EQ(isotonic_fit(v), (std::vector<double>{2.5, 2.5, 2.5, 2.5}));
}

TEST(IsotonicFit, ClassicTextbookExample) {
  const std::vector<double> v = {1.0, 3.0, 2.0, 4.0};
  EXPECT_EQ(isotonic_fit(v), (std::vector<double>{1.0, 2.5, 2.5, 4.0}));
}

TEST(IsotonicFit, EmptyInput) {
  EXPECT_TRUE(isotonic_fit(std::vector<double>{}).empty());
}

TEST(IsotonicFit, OutputIsAlwaysNonDecreasing) {
  std::mt19937_64 rng(5);
  std::uniform_real_distribution<double> dist(-10.0, 10.0);
  for (int trial = 0; trial < 50; ++trial) {
    std::vector<double> v(100);
    for (auto& x : v) x = dist(rng);
    const auto fit = isotonic_fit(v);
    ASSERT_EQ(fit.size(), v.size());
    for (std::size_t i = 1; i < fit.size(); ++i) {
      EXPECT_GE(fit[i], fit[i - 1] - 1e-12);
    }
  }
}

TEST(IsotonicFit, PreservesTotalMass) {
  // PAVA's block means preserve the sum of the input.
  std::mt19937_64 rng(6);
  std::uniform_real_distribution<double> dist(0.0, 5.0);
  std::vector<double> v(64);
  for (auto& x : v) x = dist(rng);
  double before = 0.0, after = 0.0;
  for (double x : v) before += x;
  for (double x : isotonic_fit(v)) after += x;
  EXPECT_NEAR(before, after, 1e-9);
}

TEST(IsotonicFit, NeverIncreasesSquaredErrorVersusMonotoneTruth) {
  // Smoothing a noisy version of a monotone signal moves it closer to the
  // signal (projection onto a convex set).
  std::mt19937_64 rng(7);
  std::normal_distribution<double> noise(0.0, 1.0);
  std::vector<double> truth(50), noisy(50);
  for (int i = 0; i < 50; ++i) {
    truth[static_cast<std::size_t>(i)] = i * 0.5;
    noisy[static_cast<std::size_t>(i)] =
        truth[static_cast<std::size_t>(i)] + noise(rng);
  }
  const auto fit = isotonic_fit(noisy);
  double err_noisy = 0.0, err_fit = 0.0;
  for (std::size_t i = 0; i < truth.size(); ++i) {
    err_noisy += (noisy[i] - truth[i]) * (noisy[i] - truth[i]);
    err_fit += (fit[i] - truth[i]) * (fit[i] - truth[i]);
  }
  EXPECT_LE(err_fit, err_noisy + 1e-9);
}

}  // namespace
}  // namespace dpnet::toolkit
