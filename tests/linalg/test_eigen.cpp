#include "linalg/eigen.hpp"

#include <gtest/gtest.h>

#include <cmath>
#include <random>

namespace dpnet::linalg {
namespace {

TEST(JacobiEigen, DiagonalMatrixReturnsSortedDiagonal) {
  Matrix m(3, 3);
  m(0, 0) = 1.0;
  m(1, 1) = 5.0;
  m(2, 2) = 3.0;
  const EigenResult r = jacobi_eigen(m);
  ASSERT_EQ(r.values.size(), 3u);
  EXPECT_DOUBLE_EQ(r.values[0], 5.0);
  EXPECT_DOUBLE_EQ(r.values[1], 3.0);
  EXPECT_DOUBLE_EQ(r.values[2], 1.0);
}

TEST(JacobiEigen, TwoByTwoKnownDecomposition) {
  // [[2,1],[1,2]] has eigenvalues 3 and 1.
  Matrix m(2, 2);
  m(0, 0) = 2;
  m(0, 1) = 1;
  m(1, 0) = 1;
  m(1, 1) = 2;
  const EigenResult r = jacobi_eigen(m);
  EXPECT_NEAR(r.values[0], 3.0, 1e-10);
  EXPECT_NEAR(r.values[1], 1.0, 1e-10);
  // Eigenvector of 3 is (1,1)/sqrt(2) up to sign.
  EXPECT_NEAR(std::abs(r.vectors(0, 0)), std::sqrt(0.5), 1e-8);
  EXPECT_NEAR(std::abs(r.vectors(1, 0)), std::sqrt(0.5), 1e-8);
}

TEST(JacobiEigen, ReconstructsTheMatrix) {
  std::mt19937_64 rng(17);
  std::uniform_real_distribution<double> dist(-1.0, 1.0);
  const std::size_t n = 12;
  Matrix m(n, n);
  for (std::size_t i = 0; i < n; ++i) {
    for (std::size_t j = i; j < n; ++j) {
      m(i, j) = dist(rng);
      m(j, i) = m(i, j);
    }
  }
  const EigenResult r = jacobi_eigen(m);
  // Reconstruct V diag(L) V^T and compare.
  for (std::size_t i = 0; i < n; ++i) {
    for (std::size_t j = 0; j < n; ++j) {
      double sum = 0.0;
      for (std::size_t k = 0; k < n; ++k) {
        sum += r.vectors(i, k) * r.values[k] * r.vectors(j, k);
      }
      EXPECT_NEAR(sum, m(i, j), 1e-8);
    }
  }
}

TEST(JacobiEigen, EigenvectorsAreOrthonormal) {
  std::mt19937_64 rng(23);
  std::uniform_real_distribution<double> dist(-2.0, 2.0);
  const std::size_t n = 8;
  Matrix m(n, n);
  for (std::size_t i = 0; i < n; ++i) {
    for (std::size_t j = i; j < n; ++j) {
      m(i, j) = dist(rng);
      m(j, i) = m(i, j);
    }
  }
  const EigenResult r = jacobi_eigen(m);
  for (std::size_t a = 0; a < n; ++a) {
    for (std::size_t b = 0; b < n; ++b) {
      double d = 0.0;
      for (std::size_t i = 0; i < n; ++i) {
        d += r.vectors(i, a) * r.vectors(i, b);
      }
      EXPECT_NEAR(d, a == b ? 1.0 : 0.0, 1e-8);
    }
  }
}

TEST(JacobiEigen, TraceIsPreserved) {
  std::mt19937_64 rng(31);
  std::uniform_real_distribution<double> dist(-3.0, 3.0);
  const std::size_t n = 20;
  Matrix m(n, n);
  double trace = 0.0;
  for (std::size_t i = 0; i < n; ++i) {
    for (std::size_t j = i; j < n; ++j) {
      m(i, j) = dist(rng);
      m(j, i) = m(i, j);
    }
    trace += m(i, i);
  }
  const EigenResult r = jacobi_eigen(m);
  double eig_sum = 0.0;
  for (double v : r.values) eig_sum += v;
  EXPECT_NEAR(eig_sum, trace, 1e-8);
}

TEST(JacobiEigen, RejectsNonSquare) {
  EXPECT_THROW(jacobi_eigen(Matrix(2, 3)), std::invalid_argument);
}

TEST(JacobiEigen, HandlesOneByOne) {
  Matrix m(1, 1);
  m(0, 0) = 4.2;
  const EigenResult r = jacobi_eigen(m);
  EXPECT_DOUBLE_EQ(r.values[0], 4.2);
  EXPECT_DOUBLE_EQ(std::abs(r.vectors(0, 0)), 1.0);
}

}  // namespace
}  // namespace dpnet::linalg
