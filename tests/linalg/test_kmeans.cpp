#include "linalg/kmeans.hpp"

#include <gtest/gtest.h>

#include <random>

namespace dpnet::linalg {
namespace {

/// Three well-separated 2D blobs.
Matrix blobs(std::size_t per_cluster, std::uint64_t seed = 5) {
  std::mt19937_64 rng(seed);
  std::normal_distribution<double> jitter(0.0, 0.3);
  const double centers[3][2] = {{0.0, 0.0}, {10.0, 0.0}, {0.0, 10.0}};
  Matrix points(3 * per_cluster, 2);
  for (std::size_t c = 0; c < 3; ++c) {
    for (std::size_t i = 0; i < per_cluster; ++i) {
      const std::size_t p = c * per_cluster + i;
      points(p, 0) = centers[c][0] + jitter(rng);
      points(p, 1) = centers[c][1] + jitter(rng);
    }
  }
  return points;
}

TEST(NearestCenter, PicksClosest) {
  Matrix centers(2, 2);
  centers(0, 0) = 0.0;
  centers(0, 1) = 0.0;
  centers(1, 0) = 10.0;
  centers(1, 1) = 10.0;
  const std::vector<double> p = {9.0, 9.0};
  EXPECT_EQ(nearest_center(p, centers), 1u);
}

TEST(Kmeans, RecoversWellSeparatedBlobs) {
  const Matrix points = blobs(100);
  const KmeansResult r =
      kmeans(points, random_centers(3, 2, -2.0, 12.0, 42), 20);
  // Each blob maps to a single cluster.
  for (std::size_t c = 0; c < 3; ++c) {
    const int first = r.assignment[c * 100];
    for (std::size_t i = 1; i < 100; ++i) {
      EXPECT_EQ(r.assignment[c * 100 + i], first);
    }
  }
  EXPECT_LT(r.objective_trace.back(), 1.0);
}

TEST(Kmeans, ObjectiveIsNonIncreasing) {
  const Matrix points = blobs(50);
  const KmeansResult r =
      kmeans(points, random_centers(3, 2, -2.0, 12.0, 7), 15);
  for (std::size_t i = 1; i < r.objective_trace.size(); ++i) {
    EXPECT_LE(r.objective_trace[i], r.objective_trace[i - 1] + 1e-9);
  }
}

TEST(Kmeans, EmptyClustersKeepTheirCenters) {
  Matrix points(4, 1);
  points(0, 0) = 0.0;
  points(1, 0) = 0.1;
  points(2, 0) = 0.2;
  points(3, 0) = 0.3;
  Matrix init(2, 1);
  init(0, 0) = 0.15;
  init(1, 0) = 100.0;  // captures nothing
  const KmeansResult r = kmeans(points, init, 5);
  EXPECT_DOUBLE_EQ(r.centers(1, 0), 100.0);
}

TEST(Kmeans, RejectsDimensionMismatch) {
  EXPECT_THROW(kmeans(Matrix(4, 2), Matrix(2, 3), 3), std::invalid_argument);
}

TEST(ClusteringObjective, ZeroWhenCentersCoverAllPoints) {
  Matrix points(2, 1);
  points(0, 0) = 1.0;
  points(1, 0) = 5.0;
  Matrix centers(2, 1);
  centers(0, 0) = 1.0;
  centers(1, 0) = 5.0;
  EXPECT_DOUBLE_EQ(clustering_objective(points, centers), 0.0);
}

TEST(ClusteringObjective, AveragesPointToNearestCenterDistance) {
  Matrix points(2, 1);
  points(0, 0) = 0.0;
  points(1, 0) = 4.0;
  Matrix centers(1, 1);
  centers(0, 0) = 1.0;
  EXPECT_DOUBLE_EQ(clustering_objective(points, centers), 2.0);  // (1+3)/2
}

TEST(RandomCenters, DeterministicPerSeedAndInRange) {
  const Matrix a = random_centers(4, 3, -1.0, 1.0, 11);
  const Matrix b = random_centers(4, 3, -1.0, 1.0, 11);
  EXPECT_EQ(a, b);
  for (std::size_t c = 0; c < 4; ++c) {
    for (std::size_t d = 0; d < 3; ++d) {
      EXPECT_GE(a(c, d), -1.0);
      EXPECT_LT(a(c, d), 1.0);
    }
  }
}

}  // namespace
}  // namespace dpnet::linalg
