#include "linalg/gmm.hpp"

#include <gtest/gtest.h>

#include <random>

namespace dpnet::linalg {
namespace {

Matrix two_blobs(std::size_t per_cluster, std::uint64_t seed = 6) {
  std::mt19937_64 rng(seed);
  std::normal_distribution<double> a(0.0, 0.5);
  std::normal_distribution<double> b(8.0, 0.5);
  Matrix points(2 * per_cluster, 1);
  for (std::size_t i = 0; i < per_cluster; ++i) {
    points(i, 0) = a(rng);
    points(per_cluster + i, 0) = b(rng);
  }
  return points;
}

TEST(GaussianEm, RecoversTwoComponentMeans) {
  const Matrix points = two_blobs(300);
  Matrix init(2, 1);
  init(0, 0) = -1.0;
  init(1, 0) = 9.0;
  const GmmResult model = gaussian_em(points, init, 30);
  const double m0 = std::min(model.means(0, 0), model.means(1, 0));
  const double m1 = std::max(model.means(0, 0), model.means(1, 0));
  EXPECT_NEAR(m0, 0.0, 0.2);
  EXPECT_NEAR(m1, 8.0, 0.2);
  EXPECT_NEAR(model.weights[0], 0.5, 0.05);
}

TEST(GaussianEm, LogLikelihoodIsNonDecreasing) {
  const Matrix points = two_blobs(100);
  Matrix init(2, 1);
  init(0, 0) = 2.0;
  init(1, 0) = 5.0;
  const GmmResult model = gaussian_em(points, init, 20);
  for (std::size_t i = 1; i < model.log_likelihood_trace.size(); ++i) {
    EXPECT_GE(model.log_likelihood_trace[i],
              model.log_likelihood_trace[i - 1] - 1e-6);
  }
}

TEST(GaussianEm, VarianceFloorPreventsCollapse) {
  Matrix points(10, 1);  // all identical points
  for (std::size_t i = 0; i < 10; ++i) points(i, 0) = 3.0;
  Matrix init(1, 1);
  init(0, 0) = 3.0;
  const GmmResult model = gaussian_em(points, init, 10, 1e-3);
  EXPECT_GE(model.variances(0, 0), 1e-3);
}

TEST(GaussianEm, HardAssignmentSeparatesBlobs) {
  const Matrix points = two_blobs(100);
  Matrix init(2, 1);
  init(0, 0) = -1.0;
  init(1, 0) = 9.0;
  const GmmResult model = gaussian_em(points, init, 20);
  const auto assign = gmm_assign(points, model);
  // Points within a blob agree with each other.
  for (std::size_t i = 1; i < 100; ++i) {
    EXPECT_EQ(assign[i], assign[0]);
    EXPECT_EQ(assign[100 + i], assign[100]);
  }
  EXPECT_NE(assign[0], assign[100]);
}

TEST(GaussianEm, RejectsBadInputs) {
  EXPECT_THROW(gaussian_em(Matrix(4, 2), Matrix(2, 3), 5),
               std::invalid_argument);
  EXPECT_THROW(gaussian_em(Matrix(0, 2), Matrix(2, 2), 5),
               std::invalid_argument);
}

TEST(GaussianEm, FitsAnisotropicDiagonalVariances) {
  std::mt19937_64 rng(9);
  std::normal_distribution<double> narrow(0.0, 0.2);
  std::normal_distribution<double> wide(0.0, 3.0);
  Matrix points(400, 2);
  for (std::size_t i = 0; i < 400; ++i) {
    points(i, 0) = narrow(rng);
    points(i, 1) = wide(rng);
  }
  Matrix init(1, 2);
  const GmmResult model = gaussian_em(points, init, 15);
  EXPECT_LT(model.variances(0, 0), model.variances(0, 1) / 10.0);
}

}  // namespace
}  // namespace dpnet::linalg
