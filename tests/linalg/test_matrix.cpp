#include "linalg/matrix.hpp"

#include <gtest/gtest.h>

namespace dpnet::linalg {
namespace {

TEST(Matrix, ConstructsWithFill) {
  Matrix m(2, 3, 1.5);
  EXPECT_EQ(m.rows(), 2u);
  EXPECT_EQ(m.cols(), 3u);
  EXPECT_DOUBLE_EQ(m(1, 2), 1.5);
}

TEST(Matrix, ElementAccessReadsAndWrites) {
  Matrix m(2, 2);
  m(0, 1) = 7.0;
  EXPECT_DOUBLE_EQ(m(0, 1), 7.0);
  EXPECT_DOUBLE_EQ(m(1, 0), 0.0);
}

TEST(Matrix, RowSpansAliasStorage) {
  Matrix m(2, 3);
  auto row = m.row(1);
  row[2] = 9.0;
  EXPECT_DOUBLE_EQ(m(1, 2), 9.0);
}

TEST(Matrix, TransposeSwapsIndices) {
  Matrix m(2, 3);
  m(0, 1) = 4.0;
  m(1, 2) = 5.0;
  const Matrix t = m.transposed();
  EXPECT_EQ(t.rows(), 3u);
  EXPECT_EQ(t.cols(), 2u);
  EXPECT_DOUBLE_EQ(t(1, 0), 4.0);
  EXPECT_DOUBLE_EQ(t(2, 1), 5.0);
}

TEST(Matrix, MultiplyMatchesHandComputation) {
  Matrix a(2, 2);
  a(0, 0) = 1;
  a(0, 1) = 2;
  a(1, 0) = 3;
  a(1, 1) = 4;
  Matrix b(2, 2);
  b(0, 0) = 5;
  b(0, 1) = 6;
  b(1, 0) = 7;
  b(1, 1) = 8;
  const Matrix c = a.multiply(b);
  EXPECT_DOUBLE_EQ(c(0, 0), 19);
  EXPECT_DOUBLE_EQ(c(0, 1), 22);
  EXPECT_DOUBLE_EQ(c(1, 0), 43);
  EXPECT_DOUBLE_EQ(c(1, 1), 50);
}

TEST(Matrix, MultiplyRejectsDimensionMismatch) {
  Matrix a(2, 3);
  Matrix b(2, 3);
  EXPECT_THROW(a.multiply(b), std::invalid_argument);
}

TEST(Matrix, CenterRowsZeroesEachRowMean) {
  Matrix m(2, 3);
  m(0, 0) = 1;
  m(0, 1) = 2;
  m(0, 2) = 3;
  m(1, 0) = 10;
  m(1, 1) = 10;
  m(1, 2) = 10;
  m.center_rows();
  EXPECT_DOUBLE_EQ(m(0, 0), -1.0);
  EXPECT_DOUBLE_EQ(m(0, 2), 1.0);
  EXPECT_DOUBLE_EQ(m(1, 1), 0.0);
}

TEST(VectorOps, DistancesAndDotProducts) {
  const std::vector<double> a = {0.0, 3.0};
  const std::vector<double> b = {4.0, 0.0};
  EXPECT_DOUBLE_EQ(squared_distance(a, b), 25.0);
  EXPECT_DOUBLE_EQ(euclidean_distance(a, b), 5.0);
  EXPECT_DOUBLE_EQ(dot(a, b), 0.0);
  EXPECT_DOUBLE_EQ(norm(a), 3.0);
}

TEST(VectorOps, RejectLengthMismatch) {
  const std::vector<double> a = {1.0};
  const std::vector<double> b = {1.0, 2.0};
  EXPECT_THROW(squared_distance(a, b), std::invalid_argument);
  EXPECT_THROW(dot(a, b), std::invalid_argument);
}

}  // namespace
}  // namespace dpnet::linalg
