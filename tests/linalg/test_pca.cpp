#include "linalg/pca.hpp"

#include <gtest/gtest.h>

#include <cmath>
#include <random>

namespace dpnet::linalg {
namespace {

/// Low-rank data: observations are combinations of two basis patterns
/// across 6 variables, plus one spiked column.
Matrix low_rank_data(std::size_t vars, std::size_t obs, std::size_t spike_at,
                     double spike) {
  std::mt19937_64 rng(3);
  std::uniform_real_distribution<double> coeff(-1.0, 1.0);
  std::vector<double> basis1(vars), basis2(vars);
  for (std::size_t v = 0; v < vars; ++v) {
    basis1[v] = std::sin(0.7 * static_cast<double>(v) + 0.3);
    basis2[v] = std::cos(1.3 * static_cast<double>(v));
  }
  Matrix data(vars, obs);
  for (std::size_t t = 0; t < obs; ++t) {
    const double a = coeff(rng);
    const double b = coeff(rng);
    for (std::size_t v = 0; v < vars; ++v) {
      data(v, t) = 10.0 + a * basis1[v] + b * basis2[v];
    }
  }
  for (std::size_t v = 0; v < vars; ++v) data(v, spike_at) += spike;
  return data;
}

TEST(Pca, ExplainedVarianceIsDescending) {
  const Matrix data = low_rank_data(6, 200, 50, 0.0);
  const PcaSubspace s = fit_pca(data, 3);
  for (std::size_t i = 1; i < s.explained_variance.size(); ++i) {
    EXPECT_GE(s.explained_variance[i - 1], s.explained_variance[i] - 1e-12);
  }
}

TEST(Pca, ComponentsAreOrthonormal) {
  const Matrix data = low_rank_data(6, 200, 50, 0.0);
  const PcaSubspace s = fit_pca(data, 3);
  for (std::size_t a = 0; a < 3; ++a) {
    for (std::size_t b = 0; b < 3; ++b) {
      double d = 0.0;
      for (std::size_t v = 0; v < 6; ++v) {
        d += s.components(v, a) * s.components(v, b);
      }
      EXPECT_NEAR(d, a == b ? 1.0 : 0.0, 1e-8);
    }
  }
}

TEST(Pca, RankTwoDataIsFullyExplainedByTwoComponents) {
  const Matrix data = low_rank_data(6, 300, 10, 0.0);
  const PcaSubspace s = fit_pca(data, 2);
  const auto norms = residual_norms(data, s);
  for (double n : norms) {
    EXPECT_NEAR(n, 0.0, 1e-6);
  }
}

TEST(Pca, ResidualNormSpikesAtTheAnomaly) {
  // The spike must stay smaller than the basis variance: an anomaly big
  // enough to dominate the covariance would be absorbed into the fitted
  // subspace instead of standing out in the residual.
  const std::size_t spike_at = 123;
  const Matrix data = low_rank_data(6, 300, spike_at, 6.0);
  const PcaSubspace s = fit_pca(data, 2);
  const auto norms = residual_norms(data, s);
  std::size_t argmax = 0;
  for (std::size_t t = 1; t < norms.size(); ++t) {
    if (norms[t] > norms[argmax]) argmax = t;
  }
  EXPECT_EQ(argmax, spike_at);
  double other_mean = 0.0;
  for (std::size_t t = 0; t < norms.size(); ++t) {
    if (t != spike_at) other_mean += norms[t];
  }
  other_mean /= static_cast<double>(norms.size() - 1);
  EXPECT_GT(norms[spike_at], 10.0 * (other_mean + 1e-9));
}

TEST(Pca, RejectsBadComponentCounts) {
  const Matrix data = low_rank_data(6, 50, 10, 0.0);
  EXPECT_THROW(fit_pca(data, 0), std::invalid_argument);
  EXPECT_THROW(fit_pca(data, 7), std::invalid_argument);
}

TEST(Pca, ResidualRejectsDimensionMismatch) {
  const Matrix data = low_rank_data(6, 50, 10, 0.0);
  const PcaSubspace s = fit_pca(data, 2);
  EXPECT_THROW(residual_norms(Matrix(5, 50), s), std::invalid_argument);
}

}  // namespace
}  // namespace dpnet::linalg
