// Lint fixture (never compiled): known-bad R11 — materialization code
// outside src/core/exec/ is covered too; this row loop never checkpoints.
namespace dpnet::core {

std::vector<Row> materialize_rows(const Plan& plan) {
  std::vector<Row> rows;
  for (const auto& part : plan.parts()) {
    for (const auto& row : part.rows()) {
      rows.push_back(row);
    }
  }
  return rows;
}

}  // namespace dpnet::core
