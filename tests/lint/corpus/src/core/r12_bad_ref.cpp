// Lint fixture (never compiled): known-bad R12 — a NoiseSource captured
// by reference into a map_parts lambda: draws become schedule-dependent.
namespace dpnet::core {

void run_parts(Executor& exec, Parts& parts, NoiseSource& noise) {
  exec.map_parts(parts, [&noise](Part& part) {
    part.value += noise.laplace(part.scale);
  });
}

}  // namespace dpnet::core
