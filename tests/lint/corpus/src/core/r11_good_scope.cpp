// Lint fixture (never compiled): known-good R11 — a non-materialization
// function outside src/core/exec/ is out of the rule's scope even with a
// large uncheckpointed loop.
namespace dpnet::core {

double sum_squares(const std::vector<double>& xs) {
  double acc = 0.0;
  for (std::size_t i = 0; i < xs.size(); ++i) {
    const double x = xs[i];
    acc += x * x + x * 2.0 + offset(i, xs.size(), acc);
  }
  return acc;
}

}  // namespace dpnet::core
