// Lint fixture (never compiled): known-good R12 — lambdas that capture
// ordinary values next to an in-scope NoiseSource are fine, including a
// default capture whose body never touches the source.
namespace dpnet::core {

void run_parts(Executor& exec, Parts& parts, NoiseSource& noise,
               double eps, const Keys& keys) {
  exec.map_parts(parts, [eps, keys](Part& part) {
    part.value = part.total * eps + keys.weight(part.index);
  });
  exec.submit([&] {
    parts.finalize(eps);
  });
}

}  // namespace dpnet::core
