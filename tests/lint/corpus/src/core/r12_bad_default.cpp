// Lint fixture (never compiled): known-bad R12 — a default by-reference
// capture whose body draws from a NoiseSource.
namespace dpnet::core {

void submit_draw(Pool& pool, NoiseSource& noise, double scale,
                 double& out) {
  pool.submit([&] {
    out = noise.laplace(scale);
  });
}

}  // namespace dpnet::core
