// Lint fixture (never compiled): known-bad R12 — capturing a NoiseSource
// by value copies the generator state; every part re-draws the same
// stream.
namespace dpnet::core {

void run_parts(Executor& exec, Parts& parts, NoiseSource noise) {
  exec.map_parts(parts, [noise](Part& part) {
    part.value += noise.laplace(part.scale);
  });
}

}  // namespace dpnet::core
