// Lint fixture (never compiled): known-bad R11 — the loop's helper is in
// the index and known NOT to checkpoint, so the loop is uncovered.
namespace dpnet::core::exec {

void handle_one(Task& task) {
  task.result = run_task(task.input, task.context, task.policy);
}

void drain_all(std::vector<Task>& tasks) {
  for (auto& task : tasks) {
    handle_one(task);
    publish(task.result, task.index, task.generation);
  }
}

}  // namespace dpnet::core::exec
