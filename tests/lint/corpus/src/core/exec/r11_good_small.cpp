// Lint fixture (never compiled): known-good R11 — a tiny bookkeeping loop
// (a join sweep) is not row-scaled work and needs no checkpoint.
namespace dpnet::core::exec {

void join_all(std::vector<Worker>& workers) {
  for (auto& worker : workers) {
    worker.join();
  }
}

}  // namespace dpnet::core::exec
