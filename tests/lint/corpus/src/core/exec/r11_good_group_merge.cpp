// Lint fixture (never compiled): known-good R11 — the two-phase grouping
// merge checkpoints per migrated key, so a cancelled query stops between
// partitions instead of draining every worker table first.
namespace dpnet::core::exec {

void merge_partition(std::vector<WorkerTable>& workers, GroupIndex& index,
                     std::vector<MergedGroup>& out) {
  for (auto& worker : workers) {
    for (std::uint32_t slot = 0; slot < worker.size(); ++slot) {
      guard_checkpoint("exec.group_merge");
      const auto [g, inserted] =
          index.acquire_hashed(worker.steal_key(slot), worker.hash_at(slot));
      if (inserted) {
        out.push_back(make_group(worker, slot, g));
      } else {
        append_items(out[g], worker.items(slot));
      }
    }
  }
}

}  // namespace dpnet::core::exec
