// Lint fixture (never compiled): known-bad R11 — a grouping merge loop
// that walks every worker table slot with no guard checkpoint, so
// deadline and cancellation guards cannot fire until the merge finishes.
namespace dpnet::core::exec {

void merge_partition(std::vector<WorkerTable>& workers, GroupIndex& index,
                     std::vector<MergedGroup>& out) {
  for (auto& worker : workers) {
    for (std::uint32_t slot = 0; slot < worker.size(); ++slot) {
      const auto [g, inserted] =
          index.acquire_hashed(worker.steal_key(slot), worker.hash_at(slot));
      if (inserted) {
        out.push_back(make_group(worker, slot, g));
      } else {
        append_items(out[g], worker.items(slot));
      }
    }
  }
}

}  // namespace dpnet::core::exec
