// Lint fixture (never compiled): known-good R11 — the loop checkpoints
// directly, so deadline/cancellation guards fire mid-query.
namespace dpnet::core::exec {

void run_tasks(std::vector<Task>& tasks, QueryGuard& guard) {
  for (auto& task : tasks) {
    guard.checkpoint("exec.task");
    task.result = run_task(task.input, task.context, task.policy);
    publish(task.result, task.index, task.generation);
  }
}

}  // namespace dpnet::core::exec
