// Lint fixture (never compiled): known-good R11 — the loop's helper
// checkpoints, resolved one call level deep through the function index.
namespace dpnet::core::exec {

void drain_one(Task& task, QueryGuard& guard) {
  guard.checkpoint("exec.drain");
  task.result = run_task(task.input, task.context, task.policy);
}

void drain_all(std::vector<Task>& tasks, QueryGuard& guard) {
  for (auto& task : tasks) {
    drain_one(task, guard);
    publish(task.result, task.index, task.generation);
  }
}

}  // namespace dpnet::core::exec
