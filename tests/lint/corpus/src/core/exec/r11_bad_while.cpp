// Lint fixture (never compiled): known-bad R11 — a while loop draining a
// queue with no guard checkpoint.
namespace dpnet::core::exec {

void pump(Queue& queue) {
  while (!queue.empty()) {
    auto task = queue.pop();
    task.result = run_task(task.input, task.context, task.policy);
    publish(task.result, task.index, task.generation);
  }
}

}  // namespace dpnet::core::exec
