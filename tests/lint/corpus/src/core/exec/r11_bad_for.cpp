// Lint fixture (never compiled): known-bad R11 — a row-scaled executor
// loop with no guard checkpoint.
namespace dpnet::core::exec {

void drain_queue(std::vector<Task>& tasks) {
  for (std::size_t i = 0; i < tasks.size(); ++i) {
    auto& task = tasks[i];
    task.result = run_task(task.input, task.context, task.policy);
    publish(task.result, task.index, task.generation);
  }
}

}  // namespace dpnet::core::exec
