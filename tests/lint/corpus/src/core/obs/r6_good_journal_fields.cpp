// R6 corpus: a journal serializer that sticks to the approved field set
// (the dpnet.events.v1 record shape) — no findings expected.
#include <string>

#include "core/json.hpp"

namespace dpnet::core::obs {

std::string good_record(double eps) {
  JsonWriter w;
  w.begin_object();
  w.key("seq").value(std::int64_t{1});
  w.key("kind").value("charge");
  w.key("label").value("analyst-a");
  w.key("node_id").value(std::int64_t{7});
  w.key("eps").value(eps);
  w.key("detail").value("laplace");
  w.key("chain").value("0123456789abcdef");
  w.end_object();
  return w.str();
}

}  // namespace dpnet::core::obs
