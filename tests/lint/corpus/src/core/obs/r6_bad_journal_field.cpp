// R6 corpus: a journal serializer that sneaks an unapproved field into
// the telemetry stream.  src/core/obs/ is telemetry-classified, so the
// literal passed to key() must be on the approved list — "payload_hex"
// is not (it smells like record contents), and the lint must flag it.
#include <string>

#include "core/json.hpp"

namespace dpnet::core::obs {

std::string bad_record(double eps) {
  JsonWriter w;
  w.begin_object();
  w.key("seq").value(std::int64_t{1});
  w.key("eps").value(eps);
  w.key("payload_hex").value("deadbeef");
  w.end_object();
  return w.str();
}

}  // namespace dpnet::core::obs
