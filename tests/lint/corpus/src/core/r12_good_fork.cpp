// Lint fixture (never compiled): known-good R12 — the blessed pattern:
// init-capture a node-id-seeded fork; the lambda owns its source and the
// draw is schedule-independent.
namespace dpnet::core {

void run_parts(Executor& exec, Parts& parts, NoiseSource& noise) {
  exec.map_parts(parts, [local = noise.fork(kNodeId)](Part& part) {
    part.value += local.laplace(part.scale);
  });
}

}  // namespace dpnet::core
