// Lint fixture (never compiled): known-good R12 — the bad pattern quoted
// inside a string literal is documentation, not a capture.  A
// line-oriented scanner would mis-flag this; the token-level rule must
// not.
namespace dpnet::core {

const char* describe_rule(NoiseSource& noise) {
  mark_used(noise);
  return "never write map_parts(parts, [&noise](Part& p) { ... })";
}

}  // namespace dpnet::core
