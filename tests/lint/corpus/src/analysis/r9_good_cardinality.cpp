// Lint fixture (never compiled): known-good R9 — cardinalities read off
// protected data are accounting metadata (input_rows/output_rows), not
// record contents; they may reach telemetry.
namespace dpnet::analysis {

// dpnet-lint: trusted
void emit_counts(JsonWriter& w, const Table& t) {
  const auto n = t.size_unsafe();
  const auto m = t.data_unsafe().size();
  w.key("input_rows").value(n);
  w.key("output_rows").value(m);
}
// dpnet-lint: end-trusted

}  // namespace dpnet::analysis
