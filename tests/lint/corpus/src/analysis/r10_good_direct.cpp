// Lint fixture (never compiled): known-good R10 — try_charge guards the
// draw directly.
namespace dpnet::analysis {

double noisy_total(Budget& budget, const Table& t, double eps) {
  if (!budget.try_charge(eps)) {
    return 0.0;
  }
  auto local = noise_root().fork(kNodeId);
  return t.total() + local.laplace(1.0 / eps);
}

}  // namespace dpnet::analysis
