// Lint fixture (never compiled): known-bad R10 — the charge exists but
// comes after the draw; charge-before-release is an ordering invariant
// (an aborted release must charge nothing, charged eps is never refunded).
namespace dpnet::analysis {

double noisy_then_charge(Budget& budget, const Table& t, double eps) {
  auto local = noise_root().fork(kNodeId);
  const double out = t.total() + local.laplace(1.0 / eps);
  budget.try_charge(eps);
  return out;
}

}  // namespace dpnet::analysis
