// Lint fixture (never compiled): known-bad R9 — taint propagates through a
// local assignment into a trace detail sink.
namespace dpnet::analysis {

// dpnet-lint: trusted
void leak_detail(Span& span, const Table& t) {
  auto rows = t.data_unsafe();
  span.set_detail(rows[0].src_ip);
}
// dpnet-lint: end-trusted

}  // namespace dpnet::analysis
