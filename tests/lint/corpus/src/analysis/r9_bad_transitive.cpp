// Lint fixture (never compiled): known-bad R9 — taint survives two
// assignment hops and reaches an exception constructor's message.
namespace dpnet::analysis {

// dpnet-lint: trusted
void throw_with_payload(const Table& t) {
  auto rows = t.data_unsafe();
  auto first = rows;
  throw InvalidRecordError(first.front());
}
// dpnet-lint: end-trusted

}  // namespace dpnet::analysis
