// Lint fixture (never compiled): known-bad R9 — a raw *_unsafe() result
// flows straight into a telemetry value.  The trusted region silences R1;
// the taint rule must still fire.
namespace dpnet::analysis {

void emit_rows(JsonWriter& w, const Table& t) {
  // dpnet-lint: trusted
  w.key("value").value(t.data_unsafe()[0]);
  // dpnet-lint: end-trusted
}

}  // namespace dpnet::analysis
