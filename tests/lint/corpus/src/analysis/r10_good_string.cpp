// Lint fixture (never compiled): known-good R10 — a release-call name
// inside a string literal is documentation, not a draw.  A line-oriented
// scanner would mis-flag this; the token-level rule must not.
namespace dpnet::analysis {

const char* describe_invariant() {
  return "call laplace(scale) only after try_charge(eps) succeeds";
}

}  // namespace dpnet::analysis
