// Lint fixture (never compiled): known-good R10 — the charge happens one
// call level down, resolved through the function index.
namespace dpnet::analysis {

void charge_release(Budget& budget, double eps) {
  budget.charge(eps);
}

double noisy_via_helper(Budget& budget, const Table& t, double eps) {
  charge_release(budget, eps);
  auto local = noise_root().fork(kNodeId);
  return t.total() + local.laplace(1.0 / eps);
}

}  // namespace dpnet::analysis
