// Lint fixture (never compiled): known-good R10 — a function handed a
// NoiseSource draws on its caller's behalf; the caller owns the charge
// (the mechanism-primitive pattern).
namespace dpnet::analysis {

double add_noise(double v, double scale, NoiseSource& noise) {
  return v + noise.laplace(scale);
}

}  // namespace dpnet::analysis
