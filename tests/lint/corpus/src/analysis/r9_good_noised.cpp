// Lint fixture (never compiled): known-good R9 — a tainted aggregate that
// has been noised is a differentially-private release and may be
// serialized.
namespace dpnet::analysis {

double release_sum(JsonWriter& w, const Table& t, NoiseSource& local,
                   double scale) {
  // dpnet-lint: trusted
  double sum = t.sum_unsafe();
  // dpnet-lint: end-trusted
  const double noisy = sum + local.laplace(scale);
  w.key("value").value(noisy);
  return noisy;
}

}  // namespace dpnet::analysis
