// Lint fixture (never compiled): known-bad R10 — a noise draw with no
// budget charge anywhere before it.
namespace dpnet::analysis {

double noisy_total(const Table& t, double eps) {
  auto local = noise_root().fork(kNodeId);
  return t.total() + local.laplace(1.0 / eps);
}

}  // namespace dpnet::analysis
