// Lint fixture (never compiled): known-bad R10 — the only call before the
// draw is a helper the index knows does not charge.
namespace dpnet::analysis {

void log_attempt(Trace& trace) {
  trace.note();
}

double noisy_after_helper(Trace& trace, const Table& t, double eps) {
  log_attempt(trace);
  auto local = noise_root().fork(kNodeId);
  return t.total() + local.laplace(1.0 / eps);
}

}  // namespace dpnet::analysis
