// Lint fixture (never compiled): known-good R9 — the accessor name inside
// a string literal is documentation, not dataflow.  A line-oriented
// scanner would mis-flag this; the token-level rule must not.
namespace dpnet::analysis {

void document_rule(JsonWriter& w) {
  w.key("detail").value("data_unsafe() results never reach telemetry");
}

}  // namespace dpnet::analysis
