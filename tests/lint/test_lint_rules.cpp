// Fixture-driven tests for the dpnet-lint rule engine: one positive and one
// negative case per rule R1-R5, plus suppression-comment behavior.  The
// fixtures are tiny in-memory sources; the path passed to analyze_source
// decides which trusted-directory exemptions apply.
#include "dpnet_lint/lint.hpp"

#include <gtest/gtest.h>

#include <algorithm>
#include <string>

namespace dpnet::lint {
namespace {

int count_rule(const std::vector<Finding>& findings, const std::string& r) {
  return static_cast<int>(std::count_if(
      findings.begin(), findings.end(),
      [&r](const Finding& f) { return f.rule == r; }));
}

// ---------------------------------------------------------------------- R1

TEST(RuleUnsafe, FlagsUnsafeCallInAnalystCode) {
  const auto f = analyze_source(
      "src/analysis/foo.cpp",
      "void peek(const Q& q) { auto n = q.size_unsafe(); }\n");
  ASSERT_EQ(f.size(), 1u);
  EXPECT_EQ(f[0].rule, "R1");
  EXPECT_EQ(f[0].line, 1);
  EXPECT_EQ(f[0].file, "src/analysis/foo.cpp");
}

TEST(RuleUnsafe, TrustedDirectoriesAreExempt) {
  const std::string code =
      "void peek(const Q& q) { auto n = q.data_unsafe(); }\n";
  EXPECT_TRUE(analyze_source("tests/core/t.cpp", code).empty());
  EXPECT_TRUE(analyze_source("bench/b.cpp", code).empty());
  EXPECT_TRUE(analyze_source("src/tracegen/g.cpp", code).empty());
}

TEST(RuleUnsafe, TrustedRegionSuppressesUntilEndMarker) {
  const std::string code =
      "// dpnet-lint: trusted\n"
      "auto a = q.size_unsafe();\n"
      "// dpnet-lint: end-trusted\n"
      "auto b = q.size_unsafe();\n";
  const auto f = analyze_source("src/core/x.cpp", code);
  ASSERT_EQ(f.size(), 1u);
  EXPECT_EQ(f[0].line, 4);
}

TEST(RuleUnsafe, TrustedRegionRunsToEndOfFileWhenUnterminated) {
  const std::string code =
      "// dpnet-lint: trusted\n"
      "auto a = q.size_unsafe();\n"
      "auto b = q.data_unsafe();\n";
  EXPECT_TRUE(analyze_source("src/core/x.cpp", code).empty());
}

TEST(RuleUnsafe, MentionInCommentOrStringIsIgnored) {
  const std::string code =
      "// calls size_unsafe() internally\n"
      "const char* s = \"data_unsafe()\";\n";
  EXPECT_TRUE(analyze_source("src/core/x.cpp", code).empty());
}

// ---------------------------------------------------------------------- R2

TEST(RuleRandomness, FlagsRawEngineOutsideNoise) {
  const auto f = analyze_source("src/toolkit/s.cpp",
                                "std::mt19937_64 rng(7);\n"
                                "int r = rand();\n");
  EXPECT_EQ(count_rule(f, "R2"), 2);
}

TEST(RuleRandomness, NoiseSourceFilesAndHarnessesAreExempt) {
  const std::string code = "std::mt19937_64 rng_;\n";
  EXPECT_TRUE(analyze_source("src/core/noise.hpp", code).empty());
  EXPECT_TRUE(analyze_source("src/core/noise.cpp", code).empty());
  EXPECT_TRUE(analyze_source("tests/core/t.cpp", code).empty());
  EXPECT_TRUE(analyze_source("bench/b.cpp", code).empty());
}

TEST(RuleRandomness, RandomDeviceIsFlaggedEverywhereInSrc) {
  const auto f =
      analyze_source("src/net/x.cpp", "std::random_device rd;\n");
  EXPECT_EQ(count_rule(f, "R2"), 1);
}

// ---------------------------------------------------------------------- R3

TEST(RuleNodiscard, FlagsAggregationWithoutNodiscard) {
  const auto f = analyze_source("src/core/q.hpp",
                                "class Q {\n"
                                " public:\n"
                                "  double noisy_count(double eps) const;\n"
                                "};\n");
  ASSERT_EQ(count_rule(f, "R3"), 1);
  EXPECT_EQ(f[0].line, 3);
}

TEST(RuleNodiscard, FlagsQueryableReturnWithoutNodiscard) {
  const auto f = analyze_source(
      "src/core/q.hpp",
      "template <typename T>\nQueryable<T> wrap(std::vector<T> v);\n");
  EXPECT_EQ(count_rule(f, "R3"), 1);
}

TEST(RuleNodiscard, AcceptsAnnotatedDeclarations) {
  const auto f = analyze_source(
      "src/core/q.hpp",
      "class Q {\n"
      " public:\n"
      "  [[nodiscard]] double noisy_count(double eps) const;\n"
      "  template <typename P>\n"
      "  [[nodiscard]] Queryable<int> where(P pred) const;\n"
      "};\n");
  EXPECT_TRUE(f.empty());
}

TEST(RuleNodiscard, IgnoresCallsConstructorsAndNonHeaders) {
  // Calls (return/member/argument position) and constructors are not
  // declarations; .cpp files carry definitions, not the public contract.
  EXPECT_TRUE(analyze_source("src/core/q.hpp",
                             "double f(const Q& q) {\n"
                             "  return q.noisy_count(1.0);\n"
                             "}\n"
                             "class Queryable {\n"
                             " public:\n"
                             "  explicit Queryable(int n);\n"
                             "};\n")
                  .empty());
  EXPECT_TRUE(
      analyze_source("src/core/q.cpp", "double noisy_count(double e);\n")
          .empty());
}

// ---------------------------------------------------------------------- R4

TEST(RuleOwnership, FlagsRawNewDeleteMalloc) {
  const auto f = analyze_source("src/net/x.cpp",
                                "int* p = new int(3);\n"
                                "delete p;\n"
                                "void* q = malloc(16);\n");
  EXPECT_EQ(count_rule(f, "R4"), 3);
}

TEST(RuleOwnership, AllowsDeletedFunctionsAndOperatorOverloads) {
  const auto f = analyze_source("src/net/x.hpp",
                                "struct S {\n"
                                "  S(const S&) = delete;\n"
                                "  S& operator=(const S&) = delete;\n"
                                "  void operator delete(void*);\n"
                                "  void operator new(unsigned long);\n"
                                "};\n");
  EXPECT_TRUE(f.empty());
}

TEST(RuleOwnership, AppliesToTestsAndBenchesToo) {
  EXPECT_EQ(count_rule(analyze_source("tests/core/t.cpp",
                                      "auto* p = new double[4];\n"),
                       "R4"),
            1);
}

// ---------------------------------------------------------------------- R5

TEST(RuleEpsilon, FlagsHardCodedEpsilonInSrc) {
  const auto f = analyze_source("src/analysis/a.hpp",
                                "struct Opt { double eps = 0.1; };\n");
  ASSERT_EQ(count_rule(f, "R5"), 1);
  EXPECT_EQ(f[0].rule, "R5");
}

TEST(RuleEpsilon, AllowsZeroSentinelsNonLiteralsAndNonSrc) {
  EXPECT_TRUE(analyze_source("src/analysis/a.hpp",
                             "struct Opt { double eps = 0.0; };\n"
                             "void f(Opt o) { double e = o.eps; }\n")
                  .empty());
  // Analyst-side code (tests, benches, examples) chooses its own accuracy.
  EXPECT_TRUE(
      analyze_source("tests/analysis/t.cpp", "double eps = 0.5;\n").empty());
  EXPECT_TRUE(
      analyze_source("examples/e.cpp", "double eps_count = 2.0;\n").empty());
}

TEST(RuleEpsilon, MatchesPrefixedAndSuffixedNames) {
  const auto f = analyze_source("src/toolkit/t.hpp",
                                "double eps_per_level = 0.25;\n"
                                "double total_eps{1.5};\n");
  EXPECT_EQ(count_rule(f, "R5"), 2);
}

// -------------------------------------------------------------- suppression

TEST(Suppression, TrailingCommentSuppressesNamedRuleOnLine) {
  const auto f = analyze_source(
      "src/net/x.cpp",
      "int* p = new int(3);  // dpnet-lint: suppress(R4)\n");
  EXPECT_TRUE(f.empty());
}

TEST(Suppression, StandaloneCommentCoversNextLine) {
  const auto f = analyze_source("src/net/x.cpp",
                                "// dpnet-lint: suppress(R4)\n"
                                "int* p = new int(3);\n");
  EXPECT_TRUE(f.empty());
}

TEST(Suppression, ListedRulesOnlyOtherRulesStillFire) {
  const auto f = analyze_source(
      "src/net/x.cpp",
      "double eps = 0.3; auto n = q.size_unsafe();  "
      "// dpnet-lint: suppress(R5)\n");
  EXPECT_EQ(count_rule(f, "R5"), 0);
  EXPECT_EQ(count_rule(f, "R1"), 1);
}

TEST(Suppression, CommaSeparatedRuleList) {
  const auto f = analyze_source(
      "src/net/x.cpp",
      "// dpnet-lint: suppress(R4, R5)\n"
      "double eps = 0.3; int* p = new int(1);\n");
  EXPECT_TRUE(f.empty());
}

// ---------------------------------------------------------------------- R6

TEST(RuleTelemetry, FlagsUnapprovedFieldInTelemetryFile) {
  const auto f = analyze_source(
      "src/core/trace.cpp",
      "void f(JsonWriter& w) { w.key(\"payload\").value(1.0); }\n");
  ASSERT_EQ(count_rule(f, "R6"), 1);
  EXPECT_EQ(f[0].line, 1);
}

TEST(RuleTelemetry, ApprovedFieldsPass) {
  const auto f = analyze_source(
      "src/core/metrics.cpp",
      "void f(JsonWriter& w) {\n"
      "  w.key(\"counters\").value(1.0);\n"
      "  w.key(\"eps_charged\").value(2.0);\n"
      "}\n");
  EXPECT_EQ(count_rule(f, "R6"), 0);
}

TEST(RuleTelemetry, NonTelemetryFilesAreExempt) {
  const auto f = analyze_source(
      "src/toolkit/export.cpp",
      "void f(JsonWriter& w) { w.key(\"anything\"); }\n");
  EXPECT_EQ(count_rule(f, "R6"), 0);
}

TEST(RuleTelemetry, DynamicKeysAndOtherLiteralsAreIgnored) {
  const auto f = analyze_source(
      "src/core/audit.hpp",
      "void f(JsonWriter& w, const std::string& label) {\n"
      "  w.key(label);\n"
      "  w.value(\"not a key position\");\n"
      "  throw InvalidQueryError(\"free-form message\");\n"
      "}\n");
  EXPECT_EQ(count_rule(f, "R6"), 0);
}

TEST(RuleTelemetry, SuppressionCommentApplies) {
  const auto f = analyze_source(
      "bench/common.hpp",
      "void f(JsonWriter& w) {\n"
      "  w.key(\"experimental\");  // dpnet-lint: suppress(R6)\n"
      "}\n");
  EXPECT_EQ(count_rule(f, "R6"), 0);
}

// ----------------------------------------------------------------------- R7

TEST(RuleThreads, FlagsThreadCreationOutsideExecutor) {
  const auto f = analyze_source(
      "src/toolkit/fast.cpp",
      "void fan_out() {\n"
      "  std::thread worker([] {});\n"
      "  std::jthread other([] {});\n"
      "  auto fut = std::async([] { return 1; });\n"
      "  worker.join();\n"
      "}\n");
  EXPECT_EQ(count_rule(f, "R7"), 3);
}

TEST(RuleThreads, ExecutorDirectoryMayCreateThreads) {
  const std::string code =
      "void spawn() { std::thread worker([] {}); worker.join(); }\n";
  EXPECT_TRUE(analyze_source("src/core/exec/thread_pool.cpp", code).empty());
  EXPECT_TRUE(analyze_source("src/core/exec/executor.cpp", code).empty());
}

TEST(RuleThreads, QualifiedStaticsAreQueriesNotCreation) {
  const auto f = analyze_source(
      "src/core/queryable.hpp",
      "std::size_t n = std::thread::hardware_concurrency();\n"
      "std::thread::id who;\n");
  EXPECT_EQ(count_rule(f, "R7"), 0);
}

TEST(RuleThreads, UnqualifiedAndOtherNamespacesAreIgnored) {
  const auto f = analyze_source(
      "src/net/x.cpp",
      "my::thread t;\n"
      "int thread = 0;\n"
      "boost::async(op);\n");
  EXPECT_EQ(count_rule(f, "R7"), 0);
}

TEST(RuleThreads, SuppressionCommentApplies) {
  const auto f = analyze_source(
      "tests/core/test_x.cpp",
      "TEST(T, Race) {\n"
      "  std::thread t([] {});  // dpnet-lint: suppress(R7)\n"
      "  t.join();\n"
      "}\n");
  EXPECT_EQ(count_rule(f, "R7"), 0);
}

// ----------------------------------------------------------------------- R8

TEST(RuleExceptionText, FlagsWhatCallInsideSrc) {
  const auto f = analyze_source(
      "src/core/engine.cpp",
      "void f() {\n"
      "  try { g(); } catch (const std::exception& e) {\n"
      "    log(e.what());\n"
      "  }\n"
      "}\n");
  ASSERT_EQ(count_rule(f, "R8"), 1);
  EXPECT_EQ(f[0].line, 3);
}

TEST(RuleExceptionText, TrustedCodeOutsideSrcMayPrintWhat) {
  const std::string code =
      "void f() {\n"
      "  try { g(); } catch (const std::exception& e) {\n"
      "    std::fprintf(stderr, \"error: %s\\n\", e.what());\n"
      "  }\n"
      "}\n";
  EXPECT_TRUE(analyze_source("tools/dpnet_cli.cpp", code).empty());
  EXPECT_TRUE(analyze_source("tests/core/t.cpp", code).empty());
  EXPECT_TRUE(analyze_source("bench/b.cpp", code).empty());
  EXPECT_TRUE(analyze_source("examples/e.cpp", code).empty());
}

TEST(RuleExceptionText, MentionInCommentOrStringIsIgnored) {
  const std::string code =
      "// discards the original what() text at the boundary\n"
      "const char* doc = \"never log what()\";\n"
      "int whatever(int x);\n";
  EXPECT_TRUE(analyze_source("src/core/errors.hpp", code).empty());
}

TEST(RuleExceptionText, SuppressionCommentApplies) {
  const auto f = analyze_source(
      "src/core/x.cpp",
      "auto s = e.what();  // dpnet-lint: suppress(R8)\n");
  EXPECT_EQ(count_rule(f, "R8"), 0);
}

// ------------------------------------------------------------------- misc

TEST(Lint, WantsOnlyCxxSourcesUnderScannedRoots) {
  EXPECT_TRUE(wants_file("src/core/queryable.hpp"));
  EXPECT_TRUE(wants_file("tools/dpnet_cli.cpp"));
  EXPECT_FALSE(wants_file("docs/static_analysis.md"));
  EXPECT_FALSE(wants_file("build/generated.cpp"));
  EXPECT_FALSE(wants_file("src/core/README"));
}

TEST(Lint, FormatIsFileLineRuleMessage) {
  const Finding f{"src/a.cpp", 12, "R1", "boom", ""};
  EXPECT_EQ(format(f), "src/a.cpp:12: [R1] boom");
}

TEST(Lint, CorpusIsExcludedFromRepoScans) {
  EXPECT_FALSE(wants_file("tests/lint/corpus/src/core/r12_bad_ref.cpp"));
  EXPECT_TRUE(wants_file("tests/lint/test_lint_rules.cpp"));
}

}  // namespace
}  // namespace dpnet::lint
