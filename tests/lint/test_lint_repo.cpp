// Whole-repo scanning: the cross-file function index, the incremental
// cache (content hash + charge-graph digest), parallel determinism, the
// SARIF exporter, and the docs/rule-table consistency gate.
#include <algorithm>
#include <fstream>
#include <set>
#include <sstream>
#include <string>
#include <vector>

#include <gtest/gtest.h>

#include "core/json.hpp"
#include "dpnet_lint/lint.hpp"

namespace dpnet::lint {
namespace {

int count_rule(const std::vector<Finding>& findings, const std::string& r) {
  return static_cast<int>(std::count_if(
      findings.begin(), findings.end(),
      [&r](const Finding& f) { return f.rule == r; }));
}

const char* kChargeHelper =
    "void charge_gate(Budget& budget, double eps) {\n"
    "  budget.charge(eps);\n"
    "}\n";

const char* kReleaseUser =
    "double noisy_q(Budget& budget, const Table& t, double eps) {\n"
    "  charge_gate(budget, eps);\n"
    "  auto local = noise_root().fork(kNodeId);\n"
    "  return t.total() + local.laplace(1.0 / eps);\n"
    "}\n";

std::vector<FileInput> cross_file_inputs() {
  return {{"src/analysis/helper_charge.cpp", kChargeHelper},
          {"src/analysis/release_user.cpp", kReleaseUser}};
}

// ------------------------------------------------------- cross-file index

TEST(LintRepo, ChargeGraphResolvesAcrossFiles) {
  // Alone, the helper is unknown and the release is flagged...
  EXPECT_EQ(count_rule(analyze_source("src/analysis/release_user.cpp",
                                      kReleaseUser),
                       "R10"),
            1);
  // ...with the repo-wide index, charge_gate is known to charge.
  const RepoReport report = analyze_repo(cross_file_inputs(), {});
  EXPECT_EQ(count_rule(report.findings, "R10"), 0);
  EXPECT_EQ(report.files, 2u);
  EXPECT_EQ(report.analyzed, 2u);
  EXPECT_EQ(report.cache_hits, 0u);
}

// ------------------------------------------------------------------ cache

TEST(LintRepo, WarmCacheReusesFindings) {
  const std::string cache = testing::TempDir() + "lint_cache_warm.json";
  std::remove(cache.c_str());
  RepoOptions options;
  options.cache_path = cache;
  const auto inputs = cross_file_inputs();

  const RepoReport cold = analyze_repo(inputs, options);
  EXPECT_EQ(cold.analyzed, 2u);
  EXPECT_EQ(cold.cache_hits, 0u);

  const RepoReport warm = analyze_repo(inputs, options);
  EXPECT_EQ(warm.analyzed, 0u);
  EXPECT_EQ(warm.cache_hits, 2u);
  ASSERT_EQ(warm.findings.size(), cold.findings.size());
  for (std::size_t i = 0; i < warm.findings.size(); ++i) {
    EXPECT_EQ(warm.findings[i].file, cold.findings[i].file);
    EXPECT_EQ(warm.findings[i].line, cold.findings[i].line);
    EXPECT_EQ(warm.findings[i].rule, cold.findings[i].rule);
    EXPECT_EQ(warm.findings[i].fingerprint, cold.findings[i].fingerprint);
  }
}

TEST(LintRepo, ContentChangeReanalyzesOnlyThatFile) {
  const std::string cache = testing::TempDir() + "lint_cache_content.json";
  std::remove(cache.c_str());
  RepoOptions options;
  options.cache_path = cache;
  auto inputs = cross_file_inputs();
  (void)analyze_repo(inputs, options);

  // A comment-only edit: facts (and so the graph digest) are unchanged,
  // so the untouched file's findings stay cached.
  inputs[1].content = std::string("// touched\n") + kReleaseUser;
  const RepoReport report = analyze_repo(inputs, options);
  EXPECT_EQ(report.analyzed, 1u);
  EXPECT_EQ(report.cache_hits, 1u);
}

TEST(LintRepo, GraphChangeInvalidatesEveryFilesFindings) {
  const std::string cache = testing::TempDir() + "lint_cache_graph.json";
  std::remove(cache.c_str());
  RepoOptions options;
  options.cache_path = cache;
  auto inputs = cross_file_inputs();
  const RepoReport before = analyze_repo(inputs, options);
  EXPECT_EQ(count_rule(before.findings, "R10"), 0);

  // The helper stops charging: the graph digest changes, every cached
  // finding set is stale, and the release site must now be flagged even
  // though release_user.cpp itself never changed.
  inputs[0].content =
      "void charge_gate(Budget& budget, double eps) {\n"
      "  budget.note(eps);\n"
      "}\n";
  const RepoReport after = analyze_repo(inputs, options);
  EXPECT_EQ(after.analyzed, 2u);
  EXPECT_EQ(after.cache_hits, 0u);
  EXPECT_EQ(count_rule(after.findings, "R10"), 1);
}

// ------------------------------------------------------------ determinism

TEST(LintRepo, ReportIsIdenticalAtAnyJobCount) {
  std::vector<FileInput> inputs = cross_file_inputs();
  inputs.push_back({"src/core/x.cpp",
                    "void f(int* a) {\n  delete a;\n  delete a;\n}\n"});
  RepoOptions serial;
  serial.jobs = 1;
  RepoOptions wide;
  wide.jobs = 8;
  const RepoReport a = analyze_repo(inputs, serial);
  const RepoReport b = analyze_repo(inputs, wide);
  ASSERT_EQ(a.findings.size(), b.findings.size());
  for (std::size_t i = 0; i < a.findings.size(); ++i) {
    EXPECT_EQ(format(a.findings[i]), format(b.findings[i]));
    EXPECT_EQ(a.findings[i].fingerprint, b.findings[i].fingerprint);
  }
}

// ------------------------------------------------------------------ SARIF

std::vector<Finding> golden_findings() {
  return {{"src/core/a.cpp", 3, "R1",
           "first \"quoted\" message with a \\ backslash", "00112233aabbccdd"},
          {"src/core/b.cpp", 7, "R10", "second message", "fedcba9876543210"}};
}

TEST(LintSarif, MatchesCheckedInGolden) {
  const std::string path =
      std::string(DPNET_SOURCE_DIR) + "/tests/lint/golden.sarif";
  std::ifstream in(path, std::ios::binary);
  ASSERT_TRUE(in.good()) << "missing golden: " << path;
  std::ostringstream buf;
  buf << in.rdbuf();
  EXPECT_EQ(to_sarif(golden_findings()), buf.str());
}

TEST(LintSarif, StructureIsValidSarif210) {
  const auto report = analyze_repo(cross_file_inputs(), {});
  const core::JsonValue doc = core::parse_json(to_sarif(report.findings));
  EXPECT_EQ(doc.at("version").string, "2.1.0");
  ASSERT_EQ(doc.at("runs").array.size(), 1u);
  const core::JsonValue& run = doc.at("runs").array[0];
  const core::JsonValue& driver = run.at("tool").at("driver");
  EXPECT_EQ(driver.at("name").string, "dpnet-lint");
  EXPECT_EQ(driver.at("rules").array.size(), rule_table().size());
  EXPECT_EQ(run.at("results").array.size(), report.findings.size());
}

TEST(LintSarif, ResultsCarryRuleIdLocationAndFingerprint) {
  const core::JsonValue doc = core::parse_json(to_sarif(golden_findings()));
  const core::JsonValue& results = doc.at("runs").array[0].at("results");
  ASSERT_EQ(results.array.size(), 2u);
  const core::JsonValue& first = results.array[0];
  EXPECT_EQ(first.at("ruleId").string, "R1");
  const core::JsonValue& loc =
      first.at("locations").array[0].at("physicalLocation");
  EXPECT_EQ(loc.at("artifactLocation").at("uri").string, "src/core/a.cpp");
  EXPECT_EQ(loc.at("region").at("startLine").number, 3.0);
  EXPECT_EQ(first.at("partialFingerprints")
                .at("dpnetLintFingerprint/v1")
                .string,
            "00112233aabbccdd");
  // Rule metadata indexes back into the driver rules array.
  const core::JsonValue& rules =
      doc.at("runs").array[0].at("tool").at("driver").at("rules");
  const auto index =
      static_cast<std::size_t>(first.at("ruleIndex").number);
  ASSERT_LT(index, rules.array.size());
  EXPECT_EQ(rules.array[index].at("id").string, "R1");
}

// ----------------------------------------------------- docs consistency

TEST(LintDocs, RuleTableMatchesStaticAnalysisDoc) {
  const std::string path =
      std::string(DPNET_SOURCE_DIR) + "/docs/static_analysis.md";
  std::ifstream in(path);
  ASSERT_TRUE(in.good()) << "missing " << path;
  std::set<std::string> documented;
  std::string line;
  while (std::getline(in, line)) {
    // Rule-table rows look like `| R9 | ... |`.
    if (line.rfind("| R", 0) != 0) continue;
    std::size_t end = 3;
    while (end < line.size() && std::isdigit(line[end]) != 0) ++end;
    if (end == 3) continue;
    documented.insert(line.substr(2, end - 2));
  }
  std::set<std::string> registered;
  for (const RuleMeta& rule : rule_table()) {
    registered.insert(std::string(rule.id));
  }
  EXPECT_EQ(documented, registered)
      << "docs/static_analysis.md rule table must list exactly the "
         "registered rules";
}

}  // namespace
}  // namespace dpnet::lint
