// Fixture tests for the path-sensitive rules (R6 on telemetry files and
// the semantic rules R9–R12), driven by the on-disk corpus under
// tests/lint/corpus/ (which mirrors repo paths; the corpus is excluded
// from repo scans precisely because it deliberately violates the rules).
#include <algorithm>
#include <fstream>
#include <sstream>
#include <string>
#include <vector>

#include <gtest/gtest.h>

#include "dpnet_lint/lint.hpp"

namespace dpnet::lint {
namespace {

int count_rule(const std::vector<Finding>& findings, const std::string& r) {
  return static_cast<int>(std::count_if(
      findings.begin(), findings.end(),
      [&r](const Finding& f) { return f.rule == r; }));
}

/// Loads tests/lint/corpus/<rel> and analyzes it as if it lived at <rel>.
std::vector<Finding> analyze_corpus(const std::string& rel) {
  const std::string path =
      std::string(DPNET_SOURCE_DIR) + "/tests/lint/corpus/" + rel;
  std::ifstream in(path, std::ios::binary);
  EXPECT_TRUE(in.good()) << "missing corpus file: " << path;
  std::ostringstream buf;
  buf << in.rdbuf();
  return analyze_source(rel, buf.str());
}

// ------------------------------------------------------------------- R6

// The event journal's serializer lives in telemetry-classified
// src/core/obs/: any field not on the approved list (a would-be record
// contents leak) must be flagged, and the dpnet.events.v1 record shape
// itself must pass clean.
TEST(LintSemantic, R6FlagsUnapprovedJournalField) {
  EXPECT_EQ(
      count_rule(analyze_corpus("src/core/obs/r6_bad_journal_field.cpp"),
                 "R6"),
      1);
}

TEST(LintSemantic, R6AllowsApprovedJournalFields) {
  EXPECT_EQ(
      count_rule(analyze_corpus("src/core/obs/r6_good_journal_fields.cpp"),
                 "R6"),
      0);
}

// ------------------------------------------------------------------- R9

TEST(LintSemantic, R9FlagsDirectUnsafeFlowIntoTelemetry) {
  EXPECT_EQ(count_rule(analyze_corpus("src/analysis/r9_bad_direct.cpp"),
                       "R9"),
            1);
}

TEST(LintSemantic, R9FlagsAssignedTaint) {
  EXPECT_EQ(count_rule(analyze_corpus("src/analysis/r9_bad_assign.cpp"),
                       "R9"),
            1);
}

TEST(LintSemantic, R9FlagsTransitiveTaintIntoException) {
  EXPECT_EQ(
      count_rule(analyze_corpus("src/analysis/r9_bad_transitive.cpp"), "R9"),
      1);
}

TEST(LintSemantic, R9AllowsCardinalities) {
  EXPECT_EQ(
      count_rule(analyze_corpus("src/analysis/r9_good_cardinality.cpp"),
                 "R9"),
      0);
}

TEST(LintSemantic, R9AllowsNoisedValues) {
  EXPECT_EQ(count_rule(analyze_corpus("src/analysis/r9_good_noised.cpp"),
                       "R9"),
            0);
}

TEST(LintSemantic, R9IgnoresAccessorNamesInsideStringLiterals) {
  const auto findings = analyze_corpus("src/analysis/r9_good_string.cpp");
  EXPECT_EQ(count_rule(findings, "R9"), 0);
  EXPECT_EQ(count_rule(findings, "R1"), 0);
}

// ------------------------------------------------------------------- R10

TEST(LintSemantic, R10FlagsUnchargedRelease) {
  EXPECT_EQ(
      count_rule(analyze_corpus("src/analysis/r10_bad_nocharge.cpp"), "R10"),
      1);
}

TEST(LintSemantic, R10FlagsChargeAfterRelease) {
  EXPECT_EQ(
      count_rule(analyze_corpus("src/analysis/r10_bad_order.cpp"), "R10"),
      1);
}

TEST(LintSemantic, R10KnowsNonChargingHelpers) {
  EXPECT_EQ(
      count_rule(analyze_corpus("src/analysis/r10_bad_helper.cpp"), "R10"),
      1);
}

TEST(LintSemantic, R10AllowsDirectCharge) {
  EXPECT_EQ(
      count_rule(analyze_corpus("src/analysis/r10_good_direct.cpp"), "R10"),
      0);
}

TEST(LintSemantic, R10ResolvesChargingHelperThroughIndex) {
  EXPECT_EQ(
      count_rule(analyze_corpus("src/analysis/r10_good_helper.cpp"), "R10"),
      0);
}

TEST(LintSemantic, R10ExemptsNoiseSourceParameters) {
  EXPECT_EQ(
      count_rule(analyze_corpus("src/analysis/r10_good_param.cpp"), "R10"),
      0);
}

TEST(LintSemantic, R10IgnoresReleaseNamesInsideStringLiterals) {
  EXPECT_EQ(
      count_rule(analyze_corpus("src/analysis/r10_good_string.cpp"), "R10"),
      0);
}

// ------------------------------------------------------------------- R11

TEST(LintSemantic, R11FlagsUncheckpointedForLoop) {
  EXPECT_EQ(
      count_rule(analyze_corpus("src/core/exec/r11_bad_for.cpp"), "R11"), 1);
}

TEST(LintSemantic, R11FlagsUncheckpointedWhileLoop) {
  EXPECT_EQ(
      count_rule(analyze_corpus("src/core/exec/r11_bad_while.cpp"), "R11"),
      1);
}

TEST(LintSemantic, R11KnowsNonCheckpointingHelpers) {
  EXPECT_EQ(
      count_rule(analyze_corpus("src/core/exec/r11_bad_helper.cpp"), "R11"),
      1);
}

TEST(LintSemantic, R11CoversMaterializationOutsideExec) {
  EXPECT_EQ(
      count_rule(analyze_corpus("src/core/r11_bad_materialize.cpp"), "R11"),
      1);
}

TEST(LintSemantic, R11AllowsDirectCheckpoint) {
  EXPECT_EQ(
      count_rule(analyze_corpus("src/core/exec/r11_good_checkpoint.cpp"),
                 "R11"),
      0);
}

TEST(LintSemantic, R11ResolvesCheckpointingHelperThroughIndex) {
  EXPECT_EQ(
      count_rule(analyze_corpus("src/core/exec/r11_good_helper.cpp"), "R11"),
      0);
}

TEST(LintSemantic, R11SkipsTrivialBookkeepingLoops) {
  EXPECT_EQ(
      count_rule(analyze_corpus("src/core/exec/r11_good_small.cpp"), "R11"),
      0);
}

TEST(LintSemantic, R11ScopedToExecAndMaterialization) {
  EXPECT_EQ(
      count_rule(analyze_corpus("src/core/r11_good_scope.cpp"), "R11"), 0);
}

TEST(LintSemantic, R11FlagsUncheckpointedGroupMergeLoop) {
  // Both the per-worker loop and the per-slot loop it nests lack a
  // checkpoint, so each earns its own finding.
  EXPECT_EQ(count_rule(analyze_corpus("src/core/exec/r11_bad_group_merge.cpp"),
                       "R11"),
            2);
}

TEST(LintSemantic, R11AllowsPerKeyCheckpointInGroupMerge) {
  EXPECT_EQ(
      count_rule(analyze_corpus("src/core/exec/r11_good_group_merge.cpp"),
                 "R11"),
      0);
}

// ------------------------------------------------------------------- R12

TEST(LintSemantic, R12FlagsByRefNoiseCapture) {
  EXPECT_EQ(count_rule(analyze_corpus("src/core/r12_bad_ref.cpp"), "R12"),
            1);
}

TEST(LintSemantic, R12FlagsDefaultCaptureReferencingNoise) {
  EXPECT_EQ(
      count_rule(analyze_corpus("src/core/r12_bad_default.cpp"), "R12"), 1);
}

TEST(LintSemantic, R12FlagsByValueNoiseCapture) {
  EXPECT_EQ(count_rule(analyze_corpus("src/core/r12_bad_value.cpp"), "R12"),
            1);
}

TEST(LintSemantic, R12AllowsInitCapturedFork) {
  EXPECT_EQ(count_rule(analyze_corpus("src/core/r12_good_fork.cpp"), "R12"),
            0);
}

TEST(LintSemantic, R12AllowsOrdinaryCaptures) {
  EXPECT_EQ(count_rule(analyze_corpus("src/core/r12_good_plain.cpp"), "R12"),
            0);
}

TEST(LintSemantic, R12IgnoresCapturesInsideStringLiterals) {
  EXPECT_EQ(
      count_rule(analyze_corpus("src/core/r12_good_string.cpp"), "R12"), 0);
}

// ------------------------------------------- suppression + fingerprints

TEST(LintSemantic, SuppressionAppliesToSemanticRules) {
  const auto findings = analyze_source(
      "src/analysis/x.cpp",
      "double noisy_total(const Table& t, double eps) {\n"
      "  auto local = noise_root().fork(kNodeId);\n"
      "  // dpnet-lint: suppress(R10)\n"
      "  return t.total() + local.laplace(1.0 / eps);\n"
      "}\n");
  EXPECT_EQ(count_rule(findings, "R10"), 0);
}

TEST(LintSemantic, FingerprintSurvivesLineShifts) {
  const std::string body =
      "double noisy_total(const Table& t, double eps) {\n"
      "  auto local = noise_root().fork(kNodeId);\n"
      "  return t.total() + local.laplace(1.0 / eps);\n"
      "}\n";
  const auto a = analyze_source("src/analysis/x.cpp", body);
  const auto b =
      analyze_source("src/analysis/x.cpp", "\n\n// moved down\n\n" + body);
  ASSERT_EQ(count_rule(a, "R10"), 1);
  ASSERT_EQ(count_rule(b, "R10"), 1);
  EXPECT_NE(a[0].line, b[0].line);
  EXPECT_EQ(a[0].fingerprint, b[0].fingerprint);
  EXPECT_EQ(a[0].fingerprint.size(), 16u);
}

TEST(LintSemantic, IdenticalLinesGetDistinctFingerprints) {
  const auto findings = analyze_source(
      "src/core/x.cpp",
      "void f(int* a) {\n"
      "  delete a;\n"
      "  delete a;\n"
      "}\n");
  ASSERT_EQ(count_rule(findings, "R4"), 2);
  // The two lines are token-identical; the occurrence ordinal must still
  // give them distinct identities.
  EXPECT_NE(findings[0].fingerprint, findings[1].fingerprint);
}

}  // namespace
}  // namespace dpnet::lint
