// Suppression-directive edge cases: end-of-file comments, standalone
// suppress coverage, and unterminated trusted regions.
#include <algorithm>
#include <string>
#include <vector>

#include <gtest/gtest.h>

#include "dpnet_lint/lint.hpp"

namespace dpnet::lint {
namespace {

int count_rule(const std::vector<Finding>& findings, const std::string& r) {
  return static_cast<int>(std::count_if(
      findings.begin(), findings.end(),
      [&r](const Finding& f) { return f.rule == r; }));
}

TEST(LintSuppressEdge, SuppressOnLastLineWithoutTrailingNewline) {
  const auto findings = analyze_source(
      "src/core/x.cpp",
      "void f(int* a) { delete a; }  // dpnet-lint: suppress(R4)");
  EXPECT_EQ(count_rule(findings, "R4"), 0);
}

TEST(LintSuppressEdge, StandaloneSuppressCoversTheNextLine) {
  const auto findings = analyze_source(
      "src/core/x.cpp",
      "void f(int* a) {\n"
      "  // dpnet-lint: suppress(R4)\n"
      "  delete a;\n"
      "}\n");
  EXPECT_EQ(count_rule(findings, "R4"), 0);
}

TEST(LintSuppressEdge, StandaloneSuppressDoesNotCrossABlankLine) {
  const auto findings = analyze_source(
      "src/core/x.cpp",
      "void f(int* a) {\n"
      "  // dpnet-lint: suppress(R4)\n"
      "\n"
      "  delete a;\n"
      "}\n");
  EXPECT_EQ(count_rule(findings, "R4"), 1);
}

TEST(LintSuppressEdge, SuppressListHandlesSpacesAndMultipleRules) {
  const auto findings = analyze_source(
      "src/core/x.cpp",
      "void f(int* a) {\n"
      "  // dpnet-lint: suppress( R4 , R8 )\n"
      "  delete a;\n"
      "}\n");
  EXPECT_EQ(count_rule(findings, "R4"), 0);
}

TEST(LintSuppressEdge, UnterminatedTrustedRegionRunsToEndOfFile) {
  const auto findings = analyze_source(
      "src/analysis/x.cpp",
      "int before(const Table& t) {\n"
      "  return t.rows_unsafe();\n"  // outside the region: flagged
      "}\n"
      "// dpnet-lint: trusted\n"
      "int after(const Table& t) {\n"
      "  return t.rows_unsafe();\n"
      "}\n"
      "int later(const Table& t) {\n"
      "  return t.rows_unsafe();\n"
      "}\n");
  EXPECT_EQ(count_rule(findings, "R1"), 1);
}

TEST(LintSuppressEdge, TrustedRegionEndsWhereMarked) {
  const auto findings = analyze_source(
      "src/analysis/x.cpp",
      "// dpnet-lint: trusted\n"
      "int inside(const Table& t) { return t.rows_unsafe(); }\n"
      "// dpnet-lint: end-trusted\n"
      "int outside(const Table& t) { return t.rows_unsafe(); }\n");
  EXPECT_EQ(count_rule(findings, "R1"), 1);
}

}  // namespace
}  // namespace dpnet::lint
