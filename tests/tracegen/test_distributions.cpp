#include "tracegen/distributions.hpp"

#include <gtest/gtest.h>

#include <cmath>
#include <map>

namespace dpnet::tracegen {
namespace {

TEST(ZipfSampler, RejectsEmptyDomain) {
  EXPECT_THROW(ZipfSampler(0, 1.0), std::invalid_argument);
}

TEST(ZipfSampler, PmfSumsToOne) {
  ZipfSampler zipf(100, 1.2);
  double total = 0.0;
  for (std::size_t k = 0; k < 100; ++k) total += zipf.pmf(k);
  EXPECT_NEAR(total, 1.0, 1e-12);
  EXPECT_DOUBLE_EQ(zipf.pmf(100), 0.0);
}

TEST(ZipfSampler, EmpiricalFrequenciesMatchPmf) {
  ZipfSampler zipf(10, 1.0);
  core::NoiseSource rng(1);
  std::map<std::size_t, int> counts;
  const int n = 100000;
  for (int i = 0; i < n; ++i) ++counts[zipf(rng)];
  for (std::size_t k = 0; k < 10; ++k) {
    EXPECT_NEAR(static_cast<double>(counts[k]) / n, zipf.pmf(k),
                0.01 + 0.1 * zipf.pmf(k));
  }
}

TEST(ZipfSampler, RankZeroIsMostFrequent) {
  ZipfSampler zipf(50, 1.5);
  for (std::size_t k = 1; k < 50; ++k) {
    EXPECT_GT(zipf.pmf(0), zipf.pmf(k));
  }
}

TEST(WeightedSampler, RespectsWeights) {
  WeightedSampler sampler({1.0, 3.0});
  core::NoiseSource rng(2);
  int second = 0;
  const int n = 100000;
  for (int i = 0; i < n; ++i) {
    if (sampler(rng) == 1) ++second;
  }
  EXPECT_NEAR(static_cast<double>(second) / n, 0.75, 0.01);
}

TEST(WeightedSampler, RejectsDegenerateWeights) {
  EXPECT_THROW(WeightedSampler({}), std::invalid_argument);
  EXPECT_THROW(WeightedSampler({0.0, 0.0}), std::invalid_argument);
  EXPECT_THROW(WeightedSampler({1.0, -1.0}), std::invalid_argument);
}

TEST(WeightedSampler, ZeroWeightNeverSampled) {
  WeightedSampler sampler({0.0, 1.0, 0.0});
  core::NoiseSource rng(3);
  for (int i = 0; i < 1000; ++i) {
    EXPECT_EQ(sampler(rng), 1u);
  }
}

TEST(Lognormal, MedianIsApproximatelyRight) {
  core::NoiseSource rng(4);
  std::vector<double> samples;
  for (int i = 0; i < 50000; ++i) samples.push_back(lognormal(rng, 5.0, 0.5));
  std::sort(samples.begin(), samples.end());
  EXPECT_NEAR(samples[samples.size() / 2], 5.0, 0.15);
}

TEST(Exponential, MeanMatches) {
  core::NoiseSource rng(5);
  double sum = 0.0;
  const int n = 100000;
  for (int i = 0; i < n; ++i) sum += exponential(rng, 2.5);
  EXPECT_NEAR(sum / n, 2.5, 0.05);
}

TEST(UniformHelpers, StayInBounds) {
  core::NoiseSource rng(6);
  for (int i = 0; i < 1000; ++i) {
    const auto v = uniform_int(rng, -5, 5);
    EXPECT_GE(v, -5);
    EXPECT_LE(v, 5);
    const double r = uniform_real(rng, 1.0, 2.0);
    EXPECT_GE(r, 1.0);
    EXPECT_LT(r, 2.0);
  }
}

TEST(Coin, ProbabilityRespected) {
  core::NoiseSource rng(7);
  int heads = 0;
  const int n = 100000;
  for (int i = 0; i < n; ++i) {
    if (coin(rng, 0.3)) ++heads;
  }
  EXPECT_NEAR(static_cast<double>(heads) / n, 0.3, 0.01);
}

}  // namespace
}  // namespace dpnet::tracegen
