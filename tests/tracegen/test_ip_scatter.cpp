#include "tracegen/ip_scatter.hpp"

#include <gtest/gtest.h>

#include <cmath>
#include <unordered_map>
#include <unordered_set>

namespace dpnet::tracegen {
namespace {

TEST(IpScatter, GeneratesExpectedVolumeOfRecords) {
  const ScatterConfig cfg = ScatterConfig::small();
  IpScatterGenerator gen(cfg);
  const auto records = gen.generate();
  const double expected = cfg.ips * cfg.monitors * (1.0 - cfg.missing_prob);
  EXPECT_NEAR(static_cast<double>(records.size()), expected, 0.05 * expected);
}

TEST(IpScatter, HopsStayNearTheAssignedClusterCenter) {
  const ScatterConfig cfg = ScatterConfig::small();
  IpScatterGenerator gen(cfg);
  const auto records = gen.generate();
  const auto& centers = gen.centers();
  const auto& assignment = gen.assignment();
  for (const auto& r : records) {
    const auto ip_index = r.ip & 0x00ffffffu;
    const int cluster = assignment[ip_index];
    const double center =
        centers[static_cast<std::size_t>(cluster)]
               [static_cast<std::size_t>(r.monitor)];
    EXPECT_LE(std::abs(static_cast<double>(r.hops) - center), 1.0);
  }
}

TEST(IpScatter, EveryClusterIsPopulated) {
  const ScatterConfig cfg = ScatterConfig::small();
  IpScatterGenerator gen(cfg);
  gen.generate();
  std::unordered_set<int> used(gen.assignment().begin(),
                               gen.assignment().end());
  EXPECT_EQ(static_cast<int>(used.size()), cfg.clusters);
}

TEST(IpScatter, MonitorsInRange) {
  const ScatterConfig cfg = ScatterConfig::small();
  IpScatterGenerator gen(cfg);
  for (const auto& r : gen.generate()) {
    EXPECT_GE(r.monitor, 0);
    EXPECT_LT(r.monitor, cfg.monitors);
  }
}

TEST(IpScatter, DeterministicUnderSeed) {
  IpScatterGenerator a(ScatterConfig::small());
  IpScatterGenerator b(ScatterConfig::small());
  EXPECT_EQ(a.generate(), b.generate());
}

TEST(IpScatter, CentersSeparatedEnoughToCluster) {
  const ScatterConfig cfg = ScatterConfig::small();
  IpScatterGenerator gen(cfg);
  gen.generate();
  const auto& centers = gen.centers();
  // No two centers are identical in every coordinate.
  for (std::size_t i = 0; i < centers.size(); ++i) {
    for (std::size_t j = i + 1; j < centers.size(); ++j) {
      EXPECT_NE(centers[i], centers[j]);
    }
  }
}

TEST(IpScatter, RejectsDegenerateConfigs) {
  ScatterConfig cfg;
  cfg.monitors = 0;
  EXPECT_THROW(IpScatterGenerator{cfg}, std::invalid_argument);
  cfg = ScatterConfig{};
  cfg.hop_min = 30;
  cfg.hop_max = 30;
  EXPECT_THROW(IpScatterGenerator{cfg}, std::invalid_argument);
}

}  // namespace
}  // namespace dpnet::tracegen
