// Validates that the synthetic Hotspot trace actually implants the ground
// truth every experiment relies on.
#include "tracegen/hotspot.hpp"

#include <gtest/gtest.h>

#include <algorithm>
#include <memory>
#include <unordered_map>
#include <unordered_set>

#include "net/tcp.hpp"

namespace dpnet::tracegen {
namespace {

using net::FlowKey;
using net::Packet;

class HotspotTraceTest : public ::testing::Test {
 protected:
  static void SetUpTestSuite() {
    gen_ = std::make_unique<HotspotGenerator>(HotspotConfig::small());
    trace_ = std::make_unique<std::vector<Packet>>(gen_->generate());
  }
  static void TearDownTestSuite() {
    trace_.reset();
    gen_.reset();
  }

  static std::unique_ptr<HotspotGenerator> gen_;
  static std::unique_ptr<std::vector<Packet>> trace_;
};

std::unique_ptr<HotspotGenerator> HotspotTraceTest::gen_;
std::unique_ptr<std::vector<Packet>> HotspotTraceTest::trace_;

TEST_F(HotspotTraceTest, TraceIsTimeSorted) {
  EXPECT_TRUE(std::is_sorted(trace_->begin(), trace_->end(),
                             [](const Packet& a, const Packet& b) {
                               return a.timestamp < b.timestamp;
                             }));
}

TEST_F(HotspotTraceTest, DeterministicUnderSameSeed) {
  HotspotGenerator again(HotspotConfig::small());
  const auto other = again.generate();
  ASSERT_EQ(other.size(), trace_->size());
  EXPECT_EQ(other.front(), trace_->front());
  EXPECT_EQ(other.back(), trace_->back());
}

TEST_F(HotspotTraceTest, DifferentSeedChangesTheTrace) {
  HotspotConfig cfg = HotspotConfig::small();
  cfg.seed = 777;
  HotspotGenerator other_gen(cfg);
  const auto other = other_gen.generate();
  EXPECT_NE(other.size(), 0u);
  EXPECT_TRUE(other.size() != trace_->size() ||
              !(other.front() == trace_->front()));
}

TEST_F(HotspotTraceTest, WebHeavyHostCountMatchesSection23Example) {
  // Exactly web_heavy_hosts() distinct hosts send > 1024 bytes to port 80.
  std::unordered_map<std::uint32_t, std::uint64_t> bytes_to_80;
  for (const Packet& p : *trace_) {
    if (p.dst_port == 80 && p.protocol == net::kProtoTcp) {
      bytes_to_80[p.src_ip.value] += p.length;
    }
  }
  int heavy = 0;
  for (const auto& [ip, bytes] : bytes_to_80) {
    if (bytes > 1024) ++heavy;
  }
  EXPECT_EQ(heavy, gen_->web_heavy_hosts());
}

TEST_F(HotspotTraceTest, PacketSizesShowTheTwoModes) {
  std::size_t at_40 = 0, at_1492 = 0;
  for (const Packet& p : *trace_) {
    if (p.length == 40) ++at_40;
    if (p.length == 1492) ++at_1492;
  }
  EXPECT_GT(at_40, trace_->size() / 20);
  EXPECT_GT(at_1492, trace_->size() / 20);
}

TEST_F(HotspotTraceTest, HandshakesYieldRttSamples) {
  const auto rtts = net::handshake_rtts(*trace_);
  EXPECT_GT(rtts.size(), 100u);
  for (const auto& s : rtts) {
    EXPECT_GT(s.rtt_s, 0.0);
    EXPECT_LT(s.rtt_s, 1.0);
  }
}

TEST_F(HotspotTraceTest, RetransmissionsExistWithBoundedDelays) {
  const auto diffs = net::retransmit_time_diffs_ms(*trace_);
  EXPECT_GT(diffs.size(), 20u);
  for (double d : diffs) {
    EXPECT_GT(d, 0.0);
    EXPECT_LT(d, 400.0);
  }
}

TEST_F(HotspotTraceTest, WormsHavePromisedDispersionAndCounts) {
  const auto& worms = gen_->worms();
  ASSERT_EQ(static_cast<int>(worms.size()),
            gen_->config().num_worms);
  std::unordered_map<std::string, std::size_t> payload_counts;
  for (const Packet& p : *trace_) ++payload_counts[p.payload];
  for (const auto& w : worms) {
    EXPECT_GE(w.distinct_srcs,
              static_cast<std::size_t>(
                  std::min(gen_->config().worm_dispersion_min,
                           static_cast<int>(w.count))));
    EXPECT_GE(w.distinct_dsts,
              static_cast<std::size_t>(
                  std::min(gen_->config().worm_dispersion_min,
                           static_cast<int>(w.count))));
    EXPECT_EQ(payload_counts.at(w.payload), w.count);
  }
}

TEST_F(HotspotTraceTest, WormPayloadsAreDistinctFromVocabulary) {
  std::unordered_set<std::string> vocab(gen_->vocabulary().begin(),
                                        gen_->vocabulary().end());
  for (const auto& w : gen_->worms()) {
    EXPECT_FALSE(vocab.count(w.payload));
  }
}

TEST_F(HotspotTraceTest, VocabularyStringsHaveBoundedDestinationDispersion) {
  // Vocabulary payloads must stay below the worm dst-dispersion threshold,
  // so the noise-free worm set is exactly the implanted worms.
  std::unordered_map<std::string, std::unordered_set<std::uint32_t>> dsts;
  for (const Packet& p : *trace_) {
    if (!p.payload.empty()) dsts[p.payload].insert(p.dst_ip.value);
  }
  for (const auto& v : gen_->vocabulary()) {
    const auto it = dsts.find(v);
    if (it == dsts.end()) continue;
    EXPECT_LT(static_cast<int>(it->second.size()),
              gen_->config().worm_dispersion_min);
  }
}

TEST_F(HotspotTraceTest, DominantVocabularyStringIsMostFrequent) {
  std::unordered_map<std::string, std::size_t> counts;
  for (const Packet& p : *trace_) {
    if (!p.payload.empty()) ++counts[p.payload];
  }
  const std::size_t top = counts[gen_->vocabulary().front()];
  for (std::size_t i = 1; i < gen_->vocabulary().size(); ++i) {
    EXPECT_GT(top, counts[gen_->vocabulary()[i]]);
  }
}

TEST_F(HotspotTraceTest, StonePairsActivateInLockstep) {
  const double t_idle = gen_->config().t_idle;
  const double delta = gen_->config().delta;
  const auto activations = net::extract_activations(*trace_, t_idle);
  std::unordered_map<FlowKey, std::vector<double>> times;
  for (const auto& a : activations) times[a.flow].push_back(a.time);

  ASSERT_EQ(static_cast<int>(gen_->stone_pairs().size()),
            gen_->config().stone_pairs);
  for (const auto& pair : gen_->stone_pairs()) {
    const auto& ta = times.at(pair.first);
    const auto& tb = times.at(pair.second);
    // Activation counts land in the configured band.
    EXPECT_GE(static_cast<int>(ta.size()), gen_->config().activations_min);
    EXPECT_LE(static_cast<int>(ta.size()), gen_->config().activations_max);
    // Most of the second flow's activations follow the first within delta.
    std::size_t matched = 0;
    std::size_t j = 0;
    for (double t : tb) {
      while (j < ta.size() && ta[j] < t - delta) ++j;
      if (j < ta.size() && std::abs(ta[j] - t) <= delta) ++matched;
    }
    EXPECT_GT(static_cast<double>(matched) / static_cast<double>(tb.size()),
              0.6);
  }
}

TEST_F(HotspotTraceTest, UdpTrafficPresent) {
  std::size_t udp = 0;
  for (const Packet& p : *trace_) {
    if (p.protocol == net::kProtoUdp) ++udp;
  }
  EXPECT_GT(udp, 0u);
}

TEST_F(HotspotTraceTest, TimestampsWithinConfiguredDuration) {
  for (const Packet& p : *trace_) {
    EXPECT_GE(p.timestamp, 0.0);
    EXPECT_LT(p.timestamp, gen_->config().duration_s + 2.0);
  }
}

TEST(HotspotGenerator, RejectsDegenerateConfig) {
  HotspotConfig cfg;
  cfg.num_hosts = 3;
  EXPECT_THROW(HotspotGenerator{cfg}, std::invalid_argument);
}

}  // namespace
}  // namespace dpnet::tracegen
