#include "tracegen/isp_traffic.hpp"

#include <gtest/gtest.h>

#include <vector>

namespace dpnet::tracegen {
namespace {

TEST(IspTraffic, RecordCountsMatchGroundTruthMatrix) {
  IspTrafficGenerator gen(IspConfig::small());
  const auto records = gen.generate();
  const auto& counts = gen.true_counts();

  std::vector<std::vector<double>> observed(
      counts.size(), std::vector<double>(counts.front().size(), 0.0));
  for (const auto& r : records) {
    observed[static_cast<std::size_t>(r.link)]
            [static_cast<std::size_t>(r.window)] += 1.0;
  }
  EXPECT_EQ(observed, counts);
}

TEST(IspTraffic, AnomaliesStickOutOfTheirLinkBaseline) {
  const IspConfig cfg = IspConfig::small();
  IspTrafficGenerator gen(cfg);
  gen.generate();
  const auto& counts = gen.true_counts();
  for (const IspAnomaly& a : cfg.anomalies) {
    for (int l = a.first_link; l < a.first_link + a.num_links; ++l) {
      const auto& row = counts[static_cast<std::size_t>(l)];
      double mean = 0.0;
      for (double v : row) mean += v;
      mean /= static_cast<double>(row.size());
      EXPECT_GT(row[static_cast<std::size_t>(a.window)], 2.0 * mean);
    }
  }
}

TEST(IspTraffic, DeterministicUnderSeed) {
  IspTrafficGenerator a(IspConfig::small());
  IspTrafficGenerator b(IspConfig::small());
  EXPECT_EQ(a.generate(), b.generate());
}

TEST(IspTraffic, DifferentSeedsDiffer) {
  IspConfig cfg = IspConfig::small();
  IspTrafficGenerator a(cfg);
  cfg.seed = 1234;
  IspTrafficGenerator b(cfg);
  EXPECT_NE(a.generate(), b.generate());
}

TEST(IspTraffic, RecordsStayOnTheGrid) {
  const IspConfig cfg = IspConfig::small();
  IspTrafficGenerator gen(cfg);
  for (const auto& r : gen.generate()) {
    EXPECT_GE(r.link, 0);
    EXPECT_LT(r.link, cfg.links);
    EXPECT_GE(r.window, 0);
    EXPECT_LT(r.window, cfg.windows);
  }
}

TEST(IspTraffic, RejectsAnomalyOutsideGrid) {
  IspConfig cfg = IspConfig::small();
  cfg.anomalies = {{cfg.windows + 5, 0, 1, 2.0}};
  EXPECT_THROW(IspTrafficGenerator{cfg}, std::invalid_argument);
  cfg.anomalies = {{0, cfg.links - 1, 5, 2.0}};
  EXPECT_THROW(IspTrafficGenerator{cfg}, std::invalid_argument);
}

TEST(IspTraffic, RejectsEmptyGrid) {
  IspConfig cfg;
  cfg.links = 0;
  EXPECT_THROW(IspTrafficGenerator{cfg}, std::invalid_argument);
}

TEST(IspTraffic, DiurnalPatternVariesWithinEachDay) {
  IspConfig cfg = IspConfig::small();
  cfg.anomalies.clear();
  IspTrafficGenerator gen(cfg);
  gen.generate();
  const auto& counts = gen.true_counts();
  // Within one day (96 windows) the min and max load of a link differ
  // noticeably thanks to the diurnal factor.
  const auto& row = counts[0];
  double lo = row[0], hi = row[0];
  for (int w = 0; w < 96 && w < cfg.windows; ++w) {
    lo = std::min(lo, row[static_cast<std::size_t>(w)]);
    hi = std::max(hi, row[static_cast<std::size_t>(w)]);
  }
  EXPECT_GT(hi, 1.5 * std::max(1.0, lo));
}

}  // namespace
}  // namespace dpnet::tracegen
