// Parameterized sweep: the Hotspot generator's implanted invariants must
// hold across seeds and config scales, not just the default fixture.
#include <gtest/gtest.h>

#include <unordered_map>
#include <unordered_set>

#include "net/tcp.hpp"
#include "tracegen/hotspot.hpp"

namespace dpnet::tracegen {
namespace {

using net::Packet;

struct SweepCase {
  std::uint64_t seed;
  int num_hosts;
  int stone_pairs;
};

class HotspotSweep : public ::testing::TestWithParam<SweepCase> {
 protected:
  static HotspotConfig config_for(const SweepCase& c) {
    HotspotConfig cfg = HotspotConfig::small();
    cfg.seed = c.seed;
    cfg.num_hosts = c.num_hosts;
    cfg.stone_pairs = c.stone_pairs;
    return cfg;
  }
};

TEST_P(HotspotSweep, WebHeavyCountIsExactAtEveryScale) {
  const HotspotConfig cfg = config_for(GetParam());
  HotspotGenerator gen(cfg);
  const auto trace = gen.generate();
  std::unordered_map<std::uint32_t, std::uint64_t> bytes_to_80;
  for (const Packet& p : trace) {
    if (p.dst_port == 80 && p.protocol == net::kProtoTcp) {
      bytes_to_80[p.src_ip.value] += p.length;
    }
  }
  int heavy = 0;
  for (const auto& [ip, bytes] : bytes_to_80) {
    if (bytes > 1024) ++heavy;
  }
  EXPECT_EQ(heavy, gen.web_heavy_hosts());
  // The fixed 30% fraction scales with the host count.
  EXPECT_NEAR(gen.web_heavy_hosts(), cfg.num_hosts * 0.3,
              cfg.num_hosts * 0.02 + 2.0);
}

TEST_P(HotspotSweep, WormTruthMatchesTraceContents) {
  HotspotGenerator gen(config_for(GetParam()));
  const auto trace = gen.generate();
  std::unordered_map<std::string, std::unordered_set<std::uint32_t>> srcs;
  std::unordered_map<std::string, std::size_t> counts;
  for (const Packet& p : trace) {
    if (p.payload.empty()) continue;
    ++counts[p.payload];
    srcs[p.payload].insert(p.src_ip.value);
  }
  for (const auto& w : gen.worms()) {
    EXPECT_EQ(counts.at(w.payload), w.count);
    EXPECT_EQ(srcs.at(w.payload).size(), w.distinct_srcs);
  }
}

TEST_P(HotspotSweep, StonePairActivationCountsStayInBand) {
  const HotspotConfig cfg = config_for(GetParam());
  HotspotGenerator gen(cfg);
  const auto trace = gen.generate();
  std::unordered_map<net::FlowKey, std::size_t> counts;
  for (const auto& a : net::extract_activations(trace, cfg.t_idle)) {
    ++counts[a.flow];
  }
  for (const auto& pair : gen.stone_pairs()) {
    for (const auto& flow : {pair.first, pair.second}) {
      const auto n = counts.at(flow);
      EXPECT_GE(n, static_cast<std::size_t>(cfg.activations_min));
      EXPECT_LE(n, static_cast<std::size_t>(cfg.activations_max));
    }
  }
}

TEST_P(HotspotSweep, TraceIsSortedAndInDuration) {
  const HotspotConfig cfg = config_for(GetParam());
  HotspotGenerator gen(cfg);
  const auto trace = gen.generate();
  ASSERT_FALSE(trace.empty());
  double last = -1.0;
  for (const Packet& p : trace) {
    EXPECT_GE(p.timestamp, last);
    last = p.timestamp;
    EXPECT_LT(p.timestamp, cfg.duration_s + 2.0);
  }
}

INSTANTIATE_TEST_SUITE_P(
    Cases, HotspotSweep,
    ::testing::Values(SweepCase{1, 80, 4}, SweepCase{2, 80, 4},
                      SweepCase{3, 160, 2}, SweepCase{4, 240, 6},
                      SweepCase{5, 120, 8}));

TEST(HotspotConference, PresetKeepsTheCoreInvariants) {
  const HotspotConfig cfg = HotspotConfig::conference();
  HotspotGenerator gen(cfg);
  const auto trace = gen.generate();
  EXPECT_GT(trace.size(), 50000u);

  // The §2.3 invariant scales: 30% of 600 hosts are web-heavy.
  std::unordered_map<std::uint32_t, std::uint64_t> bytes_to_80;
  for (const Packet& p : trace) {
    if (p.dst_port == 80 && p.protocol == net::kProtoTcp) {
      bytes_to_80[p.src_ip.value] += p.length;
    }
  }
  int heavy = 0;
  for (const auto& [ip, bytes] : bytes_to_80) {
    if (bytes > 1024) ++heavy;
  }
  EXPECT_EQ(heavy, gen.web_heavy_hosts());
  EXPECT_EQ(gen.web_heavy_hosts(), 180);

  // Wireless flavor: retransmissions are plentiful.
  EXPECT_GT(net::retransmit_time_diffs_ms(trace).size(), 1000u);
  // And the interactive population exists for rule mining.
  EXPECT_EQ(static_cast<int>(gen.stone_pairs().size()), cfg.stone_pairs);
}

}  // namespace
}  // namespace dpnet::tracegen
