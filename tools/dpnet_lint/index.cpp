#include "dpnet_lint/index.hpp"

#include <algorithm>

namespace dpnet::lint {

namespace {

const std::unordered_set<std::string>& excluded_names() {
  // Keywords (and keyword-like names) that look like `name (` but never
  // open a function definition.
  static const std::unordered_set<std::string> kExcluded = {
      "if",        "for",        "while",    "switch",   "catch",
      "return",    "sizeof",     "alignof",  "alignas",  "decltype",
      "constexpr", "consteval",  "constinit", "noexcept", "static_assert",
      "new",       "delete",     "throw",    "co_await", "co_return",
      "co_yield",  "requires",   "assert",   "typeid",   "else",
      "do",        "defined"};
  return kExcluded;
}

bool charge_primitive(const std::string& name) {
  return name == "charge" || name == "try_charge" || name == "charge_all" ||
         name == "raise_to" || name == "try_raise_to";
}

bool checkpoint_primitive(const std::string& name) {
  return name == "checkpoint" || name == "guard_checkpoint" ||
         name == "charge_rows" || name == "guard_charge_rows";
}

/// Qualifier-ish identifiers allowed between a definition's ')' and its
/// body '{'.
bool post_param_specifier(const std::string& t) {
  return t == "const" || t == "noexcept" || t == "override" || t == "final" ||
         t == "mutable" || t == "volatile" || t == "try" || t == "requires";
}

/// Given the token index of a candidate ')' close, walks forward looking
/// for the definition's body '{'.  Returns npos when the shape turns out
/// to be a call, declaration, or `= default/delete` instead.
std::size_t find_body_open(const std::vector<Token>& toks, std::size_t close,
                           bool* in_init_list) {
  int parens = 0;
  int braces = 0;
  int angles = 0;  // template-argument depth in a trailing return type
  bool in_init = false;
  // A definition's interlude between ')' and '{' is short; anything long
  // is an expression we misidentified.
  const std::size_t limit = std::min(toks.size(), close + 1 + 96);
  for (std::size_t k = close + 1; k < limit; ++k) {
    const Token& t = toks[k];
    if (t.kind == Kind::Punct) {
      if (t.text == "(") {
        ++parens;
        continue;
      }
      if (t.text == ")") {
        if (--parens < 0) return static_cast<std::size_t>(-1);
        continue;
      }
      if (parens > 0) continue;
      if (t.text == "<") {
        ++angles;
        continue;
      }
      if (t.text == ">") {
        if (angles > 0) --angles;
        continue;
      }
      if (angles > 0) continue;  // inside template arguments: anything goes
      if (t.text == "{") {
        if (braces == 0 && in_init && k > 0 &&
            toks[k - 1].kind == Kind::Ident) {
          // `: member_{...}` brace-init inside an initializer list.
          ++braces;
          continue;
        }
        if (braces == 0) {
          *in_init_list = in_init;
          return k;  // the body
        }
        ++braces;
        continue;
      }
      if (t.text == "}") {
        if (--braces < 0) return static_cast<std::size_t>(-1);
        continue;
      }
      if (t.text == ":") {
        if (next_is(toks, k, ":") || (k > 0 && toks[k - 1].text == ":")) {
          continue;  // `::` qualification inside a trailing return type
        }
        in_init = true;
        continue;
      }
      if (t.text == ";" || t.text == "=" || t.text == "]" || t.text == "." ||
          t.text == "?") {
        return static_cast<std::size_t>(-1);  // declaration / expression
      }
      if (t.text == "," && !in_init) {
        return static_cast<std::size_t>(-1);  // argument position
      }
      // -> & * < > , (init list) and friends: keep walking.
      continue;
    }
    if (braces > 0 || parens > 0 || angles > 0) continue;
    if (t.kind == Kind::Ident && !in_init && !post_param_specifier(t.text) &&
        !prev_is(toks, k, ">") && !prev_is(toks, k, ":") &&
        !prev_is(toks, k, "-")) {
      // A bare identifier right after the ')' that is neither a specifier
      // nor part of a trailing return type: expression territory.
      return static_cast<std::size_t>(-1);
    }
  }
  return static_cast<std::size_t>(-1);
}

}  // namespace

FileClass classify(std::string_view path) {
  FileClass c;
  c.in_src = path.starts_with("src/");
  c.is_header = path.ends_with(".hpp") || path.ends_with(".h") ||
                path.ends_with(".hh");
  const bool in_tests = path.starts_with("tests/");
  const bool in_bench = path.starts_with("bench/");
  c.allow_unsafe =
      in_tests || in_bench || path.starts_with("src/tracegen/");
  c.is_noise = path == "src/core/noise.hpp" || path == "src/core/noise.cpp";
  c.harness = in_tests || in_bench;
  c.telemetry = path == "src/core/trace.hpp" || path == "src/core/trace.cpp" ||
                path == "src/core/metrics.hpp" ||
                path == "src/core/metrics.cpp" ||
                path == "src/core/audit.hpp" ||
                path == "src/core/streaming.hpp" ||
                path.starts_with("src/core/obs/") ||
                path.starts_with("src/serve/") ||
                path == "bench/common.hpp" || path == "tools/dpnet_cli.cpp";
  c.in_exec = path.starts_with("src/core/exec/");
  return c;
}

std::vector<FunctionDef> scan_functions(const std::vector<Token>& toks) {
  std::vector<FunctionDef> fns;
  for (std::size_t i = 0; i + 1 < toks.size(); ++i) {
    if (!is_call(toks, i)) continue;
    if (excluded_names().count(toks[i].text) > 0) continue;
    // Member access and unary-operator positions are expressions.
    if (prev_is(toks, i, ".") ||
        (prev_is(toks, i, ">") && i >= 2 && toks[i - 2].text == "-")) {
      continue;
    }
    const std::size_t close = matching_close(toks, i + 1, "(", ")");
    if (close == static_cast<std::size_t>(-1)) continue;
    bool in_init = false;
    const std::size_t body = find_body_open(toks, close, &in_init);
    if (body == static_cast<std::size_t>(-1)) continue;
    const std::size_t body_end = matching_close(toks, body, "{", "}");
    if (body_end == static_cast<std::size_t>(-1)) continue;

    FunctionDef fn;
    fn.name = toks[i].text;
    fn.line = toks[i].line;
    fn.params_begin = i + 1;
    fn.params_end = close;
    fn.body_begin = body;
    fn.body_end = body_end;
    for (std::size_t k = fn.params_begin; k < fn.params_end; ++k) {
      if (toks[k].kind == Kind::Ident && toks[k].text == "NoiseSource") {
        fn.takes_noise_source = true;
        break;
      }
    }
    for (std::size_t k = body + 1; k < body_end; ++k) {
      if (!is_call(toks, k)) continue;
      if (charge_primitive(toks[k].text)) fn.charges_directly = true;
      if (checkpoint_primitive(toks[k].text)) fn.checkpoints_directly = true;
    }
    fns.push_back(std::move(fn));
    // Continue from inside the params so member functions defined inside
    // this body (local classes) are still discovered.
  }
  return fns;
}

const FunctionDef* enclosing_function(const std::vector<FunctionDef>& fns,
                                      std::size_t i) {
  const FunctionDef* best = nullptr;
  for (const FunctionDef& fn : fns) {
    if (i <= fn.body_begin || i >= fn.body_end) continue;
    if (best == nullptr ||
        fn.body_end - fn.body_begin < best->body_end - best->body_begin) {
      best = &fn;
    }
  }
  return best;
}

std::vector<FunctionFact> collect_facts(const std::vector<FunctionDef>& fns) {
  std::vector<FunctionFact> facts;
  facts.reserve(fns.size());
  for (const FunctionDef& fn : fns) {
    facts.push_back({fn.name, fn.charges_directly, fn.checkpoints_directly});
  }
  return facts;
}

void ChargeGraph::add(const FunctionFact& fact) {
  if (fact.charges) charging_.insert(fact.name);
  if (fact.checkpoints) checkpointing_.insert(fact.name);
}

std::uint64_t ChargeGraph::digest() const {
  // Order-independent: names are hashed individually and combined with a
  // commutative fold, so file iteration order cannot shift the digest.
  std::uint64_t d = kFnvOffset;
  for (const std::string& n : charging_) d += fnv1a(n, 0x11);
  for (const std::string& n : checkpointing_) d += fnv1a(n, 0x22);
  return d;
}

std::string to_hex(std::uint64_t v) {
  constexpr char kHex[] = "0123456789abcdef";
  std::string out(16, '0');
  for (int k = 15; k >= 0; --k) {
    out[static_cast<std::size_t>(k)] = kHex[v & 0xF];
    v >>= 4;
  }
  return out;
}

}  // namespace dpnet::lint
