#include "dpnet_lint/lint.hpp"

#include <algorithm>
#include <cstdlib>
#include <unordered_map>
#include <unordered_set>

#include "dpnet_lint/index.hpp"
#include "dpnet_lint/tokenizer.hpp"

namespace dpnet::lint {

namespace {

bool starts_with(std::string_view s, std::string_view prefix) {
  return s.substr(0, prefix.size()) == prefix;
}

bool ends_with(std::string_view s, std::string_view suffix) {
  return s.size() >= suffix.size() &&
         s.substr(s.size() - suffix.size()) == suffix;
}

/// True for names that denote privacy parameters: eps, epsilon, eps_*,
/// epsilon_*, *_eps, *_epsilon.
bool epsilon_name(std::string_view name) {
  return name == "eps" || name == "epsilon" || starts_with(name, "eps_") ||
         starts_with(name, "epsilon_") || ends_with(name, "_eps") ||
         ends_with(name, "_epsilon");
}

bool zero_literal(const std::string& text) {
  return std::strtod(text.c_str(), nullptr) == 0.0;
}

// Declaration-specifier keywords that may legitimately precede a
// constructor name; a candidate whose whole prefix is specifiers is a
// constructor, not a value-returning method.
bool specifier(const std::string& t) {
  return t == "explicit" || t == "inline" || t == "constexpr" ||
         t == "static" || t == "friend" || t == "virtual" || t == "typename";
}

// ---------------------------------------------------------------------------
// Rules
// ---------------------------------------------------------------------------

class Analysis {
 public:
  Analysis(std::string_view rel_path, const TokenizedFile& file,
           const std::vector<FunctionDef>& functions, const ChargeGraph& graph)
      : path_(rel_path),
        cls_(classify(rel_path)),
        file_(file),
        toks_(file.tokens),
        supp_(file.supp),
        functions_(functions),
        graph_(graph) {}

  std::vector<Finding> run() {
    rule_unsafe_calls();
    rule_raw_randomness();
    rule_nodiscard();
    rule_raw_ownership();
    rule_epsilon_literals();
    rule_telemetry_fields();
    rule_thread_creation();
    rule_exception_text();
    SemanticInput in;
    in.path = path_;
    in.cls = cls_;
    in.file = &file_;
    in.functions = &functions_;
    in.graph = &graph_;
    for (RawFinding& raw : run_semantic_rules(in)) {
      report(raw.rule, raw.line, std::move(raw.message));
    }
    std::sort(findings_.begin(), findings_.end(),
              [](const Finding& a, const Finding& b) {
                return a.line != b.line ? a.line < b.line : a.rule < b.rule;
              });
    fingerprint_all();
    return std::move(findings_);
  }

 private:
  void report(const std::string& rule, int line, std::string message) {
    if (supp_.suppressed(rule, line)) return;
    findings_.push_back(
        {std::string(path_), line, rule, std::move(message), {}});
  }

  /// Stable identity for each finding: hashes the rule, the file path, and
  /// the token text of the finding's line — so the fingerprint survives
  /// edits elsewhere in the file that only shift line numbers.  Identical
  /// (rule, line-content) pairs get an occurrence ordinal so SARIF baselines
  /// can track them individually.
  void fingerprint_all() {
    std::unordered_map<std::uint64_t, int> seen;
    for (Finding& f : findings_) {
      std::uint64_t h = fnv1a(f.rule);
      h = fnv1a(f.file, h);
      for (const Token& t : toks_) {
        if (t.line != f.line) continue;
        h = fnv1a(t.text, h);
        h = fnv1a("|", h);
      }
      const int ordinal = seen[h]++;
      h = fnv1a(std::to_string(ordinal), h);
      f.fingerprint = to_hex(h);
    }
  }

  /// R1: *_unsafe() confined to trusted code.
  void rule_unsafe_calls() {
    if (cls_.allow_unsafe) return;
    for (std::size_t i = 0; i < toks_.size(); ++i) {
      const Token& t = toks_[i];
      if (t.kind != Kind::Ident || !ends_with(t.text, "_unsafe")) continue;
      if (!next_is(toks_, i, "(")) continue;
      if (supp_.trusted_line(t.line)) continue;
      report("R1", t.line,
             t.text + "() bypasses the privacy curtain; only tests/, "
                      "bench/, src/tracegen/, and '// dpnet-lint: trusted' "
                      "regions may use *_unsafe accessors");
    }
  }

  /// R2: all randomness flows through core::NoiseSource.
  void rule_raw_randomness() {
    if (cls_.is_noise || cls_.harness) return;
    static const std::unordered_set<std::string> kEngines = {
        "random_device", "mt19937",       "mt19937_64",
        "minstd_rand",   "minstd_rand0",  "default_random_engine",
        "ranlux24",      "ranlux48",      "ranlux24_base",
        "ranlux48_base", "knuth_b"};
    static const std::unordered_set<std::string> kCalls = {
        "rand", "srand", "rand_r", "drand48", "lrand48", "srand48"};
    for (std::size_t i = 0; i < toks_.size(); ++i) {
      const Token& t = toks_[i];
      if (t.kind != Kind::Ident) continue;
      const bool engine = kEngines.count(t.text) > 0;
      const bool call = kCalls.count(t.text) > 0 && next_is(toks_, i, "(");
      if (!engine && !call) continue;
      if (supp_.trusted_line(t.line)) continue;
      report("R2", t.line,
             t.text + " used directly; route randomness through "
                      "core::NoiseSource (src/core/noise.hpp) so draws are "
                      "seedable and auditable");
    }
  }

  /// R3: public aggregation / Queryable-returning declarations in src/
  /// headers must be [[nodiscard]].
  void rule_nodiscard() {
    if (!cls_.in_src || !cls_.is_header) return;
    std::size_t stmt_start = 0;
    for (std::size_t i = 0; i < toks_.size(); ++i) {
      const Token& t = toks_[i];
      if (t.kind == Kind::Punct &&
          (t.text == ";" || t.text == "{" || t.text == "}")) {
        stmt_start = i + 1;
        continue;
      }
      // Access labels reset the statement without ending a declaration.
      if (t.kind == Kind::Ident &&
          (t.text == "public" || t.text == "private" ||
           t.text == "protected") &&
          next_is(toks_, i, ":") && !next_is(toks_, i + 1, ":")) {
        stmt_start = i + 2;
        ++i;
        continue;
      }
      if (t.kind != Kind::Ident || !next_is(toks_, i, "(")) continue;

      const bool agg_name = starts_with(t.text, "noisy_") ||
                            ends_with(t.text, "_mechanism") ||
                            t.text == "exponential_quantile" ||
                            t.text == "exponential_median";
      bool queryable_return = false;
      bool has_nodiscard = false;
      bool is_expr = false;
      bool only_specifiers = true;
      if (i == stmt_start) is_expr = true;  // no return type: expression
      for (std::size_t k = stmt_start; k < i; ++k) {
        const std::string& p = toks_[k].text;
        if (p == "Queryable") queryable_return = true;
        if (p == "nodiscard") has_nodiscard = true;
        if (p == "return" || p == "throw" || p == "=" || p == "co_return") {
          is_expr = true;
        }
        if (toks_[k].kind == Kind::Ident && !specifier(p)) {
          only_specifiers = false;
        }
      }
      if (!agg_name && !queryable_return) continue;
      // Member / qualified / argument-position uses are calls, not decls.
      if (prev_is(toks_, i, ".") || prev_is(toks_, i, "(") ||
          prev_is(toks_, i, ",") || prev_is(toks_, i, ":") ||
          (prev_is(toks_, i, ">") && i >= 2 && toks_[i - 2].text == "-")) {
        continue;
      }
      if (is_expr || only_specifiers || has_nodiscard) continue;
      report("R3", t.line,
             t.text + " returns analyst-visible information; declare it "
                      "[[nodiscard]] so a discarded result (which still "
                      "charges the budget) is a compile-time warning");
    }
  }

  /// R4: no raw owning new/delete/malloc.
  void rule_raw_ownership() {
    static const std::unordered_set<std::string> kAlloc = {
        "malloc", "calloc", "realloc", "free", "strdup"};
    for (std::size_t i = 0; i < toks_.size(); ++i) {
      const Token& t = toks_[i];
      if (t.kind != Kind::Ident) continue;
      if (t.text == "new" || t.text == "delete") {
        if (prev_is(toks_, i, "operator")) continue;
        if (t.text == "delete" && prev_is(toks_, i, "=")) continue;
        report("R4", t.line,
               "raw '" + t.text + "' — use value semantics or "
                                  "std::make_unique/std::make_shared "
                                  "(C++ Core Guidelines R.11)");
      } else if (kAlloc.count(t.text) > 0 && next_is(toks_, i, "(") &&
                 !prev_is(toks_, i, ".") &&
                 !(prev_is(toks_, i, ">") && i >= 2 &&
                   toks_[i - 2].text == "-")) {
        report("R4", t.line,
               t.text + "() allocates untracked memory; use RAII "
                        "containers or smart pointers");
      }
    }
  }

  /// R5: epsilon values in library code come from the caller's budget
  /// policy, never from a hard-coded literal (zero sentinels are fine).
  void rule_epsilon_literals() {
    if (!cls_.in_src) return;
    for (std::size_t i = 0; i + 2 < toks_.size(); ++i) {
      const Token& t = toks_[i];
      if (t.kind != Kind::Ident || !epsilon_name(t.text)) continue;
      const Token& op = toks_[i + 1];
      if (op.kind != Kind::Punct || (op.text != "=" && op.text != "{")) {
        continue;
      }
      std::size_t v = i + 2;
      if (toks_[v].kind == Kind::Punct && toks_[v].text == "-" &&
          v + 1 < toks_.size()) {
        ++v;
      }
      if (toks_[v].kind != Kind::Number || zero_literal(toks_[v].text)) {
        continue;
      }
      report("R5", t.line,
             "hard-coded epsilon '" + toks_[v].text + "' for '" + t.text +
                 "'; accuracy levels must be chosen by the analyst against "
                 "a PrivacyBudget, not baked into src/");
    }
  }

  /// R6: telemetry serializes only approved fields.  In the files that
  /// build JSON telemetry (traces, metrics, ledgers, bench reports), every
  /// string literal passed to a JsonWriter key() must come from the
  /// approved-field list in docs/observability.md — so a change that would
  /// leak a new field (worst case, record payloads) into the telemetry
  /// stream fails the lint until the field is reviewed and listed here.
  void rule_telemetry_fields() {
    if (!cls_.telemetry) return;
    static const std::unordered_set<std::string> kApprovedFields = {
        // query trace (src/core/trace.cpp)
        "spans", "op", "detail", "stability", "input_rows", "output_rows",
        "eps_requested", "eps_charged", "mechanism", "wall_ms", "children",
        // timeline stamps + Chrome trace_event export (src/core/trace.cpp):
        // microsecond begin/duration, worker lane, and the trace_event
        // envelope — all scheduling metadata, never record contents
        "ts_us", "dur_us", "worker", "traceEvents", "cat", "ph", "ts",
        "dur", "pid", "tid", "args", "displayTimeUnit",
        // metrics snapshot (src/core/metrics.cpp)
        "counters", "gauges", "histograms", "count", "sum", "buckets",
        "upper_bound", "p50", "p95", "p99",
        // audit ledger (src/core/audit.hpp)
        "spent", "entries", "eps", "label", "totals_by_label", "node_id",
        // bench report (bench/common.hpp) and CLI trace output
        "schema", "name", "title", "reproduces", "results", "section", "key",
        "value", "paper", "measured", "trace", "audit", "metrics", "query",
        "threads", "speedup_vs_1thread",
        // robustness counters (docs/robustness.md) — accounting metadata
        "queries.aborted", "deadline.exceeded", "records.quarantined",
        "faults.injected",
        // privacy event journal (src/core/obs/journal.cpp): event kinds,
        // causal keys, and the hash chain — accounting metadata only
        // (label/node_id/eps shared with the ledger above)
        "events", "dropped", "chain", "seq", "kind",
        // resource telemetry (bench/common.hpp, src/core/trace.cpp)
        "peak_rss_kb", "records_per_sec",
        // query-server wire protocol (src/serve/protocol.cpp): frame
        // ids, the analyst principal, sanitized taxonomy error names,
        // and budget positions — accounting metadata only
        "id", "status", "analyst", "error", "retryable", "remaining",
        // query-server ops metrics (src/serve/, docs/robustness.md)
        "serve.sessions.active", "serve.queue.depth",
        "serve.requests.rejected", "serve.requests.shed",
        // flight recorder (src/core/obs/recorder.cpp): ring header plus
        // moment records — kinds, causal labels, and counter values only
        "moments",
        // structured ops log (src/core/obs/log.cpp): severity plus the
        // per-kind rate-limit suppression count
        "level", "suppressed",
        // live ops snapshot (src/serve/server.cpp, dpnet.ops.v1): queue
        // and budget positions, burn-rate forecasts, latency summary —
        // accounting metadata only, rendered by `dpnet_cli top`
        "uptime_ms", "frames", "sessions", "queue_depth", "in_flight",
        "dataset", "analysts", "burn_rate", "eta_s", "queued", "latency"};
    for (const StringLit& lit : file_.strings) {
      if (lit.token_slot < 2) continue;
      const Token& open = toks_[lit.token_slot - 1];
      const Token& callee = toks_[lit.token_slot - 2];
      if (open.kind != Kind::Punct || open.text != "(") continue;
      if (callee.kind != Kind::Ident || callee.text != "key") continue;
      if (kApprovedFields.count(lit.text) > 0) continue;
      report("R6", lit.line,
             "telemetry field '" + lit.text +
                 "' is not on the approved list; telemetry may only "
                 "serialize accounting metadata, never record contents "
                 "(docs/observability.md)");
    }
  }

  /// R7: threads are created only by the executor.  Ad-hoc std::thread /
  /// std::jthread / std::async use elsewhere would run releases outside
  /// the scheduler that guarantees deterministic noise, merged traces, and
  /// synchronized budget charges — so parallelism is confined to
  /// src/core/exec/ (plus explicitly suppressed harness code).
  void rule_thread_creation() {
    if (cls_.in_exec) return;
    static const std::unordered_set<std::string> kThreadNames = {
        "thread", "jthread", "async"};
    for (std::size_t i = 3; i < toks_.size(); ++i) {
      const Token& t = toks_[i];
      if (t.kind != Kind::Ident || kThreadNames.count(t.text) == 0) continue;
      if (!(prev_is(toks_, i, ":") && toks_[i - 2].text == ":" &&
            toks_[i - 3].text == "std")) {
        continue;
      }
      // Qualified statics (std::thread::hardware_concurrency(), ::id, ...)
      // query thread facilities without creating threads.
      if (next_is(toks_, i, ":") && i + 2 < toks_.size() &&
          toks_[i + 2].text == ":") {
        continue;
      }
      report("R7", t.line,
             "std::" + t.text +
                 " outside src/core/exec/; all parallelism flows through "
                 "core::exec so noise determinism, trace merging, and "
                 "budget synchronization are enforced in one place");
    }
  }

  /// R8: exception text stays behind the privacy boundary.  An analyst
  /// exception's what() can interpolate record contents, so engine code
  /// in src/ never reads it — core::contain_analyst deliberately discards
  /// it and rethrows a sanitized AnalystCodeError carrying only the
  /// operator name and plan-node id.  Only trusted code (tests/, bench/,
  /// tools/, examples/) may print what(); this rule makes that boundary
  /// mechanical (docs/robustness.md).
  void rule_exception_text() {
    if (!cls_.in_src) return;
    for (std::size_t i = 0; i < toks_.size(); ++i) {
      const Token& t = toks_[i];
      if (t.kind != Kind::Ident || t.text != "what") continue;
      if (!next_is(toks_, i, "(")) continue;
      if (supp_.trusted_line(t.line)) continue;
      report("R8", t.line,
             "what() read inside src/; exception text may interpolate "
             "record contents — throw a sanitized error from "
             "core/errors.hpp (node id + operator name only) and leave "
             "printing what() to trusted code outside src/");
    }
  }

  std::string_view path_;
  FileClass cls_;
  const TokenizedFile& file_;
  const std::vector<Token>& toks_;
  const Suppressions& supp_;
  const std::vector<FunctionDef>& functions_;
  const ChargeGraph& graph_;
  std::vector<Finding> findings_;
};

}  // namespace

const std::vector<RuleMeta>& rule_table() {
  static const std::vector<RuleMeta> kRules = {
      {"R1",
       "*_unsafe() accessors only in trusted code (tests/, bench/, "
       "src/tracegen/, trusted regions)"},
      {"R2", "randomness flows through core::NoiseSource, never raw "
             "engines or rand()"},
      {"R3", "analyst-visible declarations in src/ headers carry "
             "[[nodiscard]]"},
      {"R4", "no raw owning new/delete/malloc — RAII and value semantics"},
      {"R5", "no hard-coded epsilon literals in src/"},
      {"R6", "telemetry serializes approved accounting fields only"},
      {"R7", "thread creation confined to src/core/exec/"},
      {"R8", "exception what() never read inside src/"},
      {"R9", "no *_unsafe-derived value reaches a telemetry or exception "
             "sink (taint dataflow)"},
      {"R10", "every noise release is preceded by a budget charge "
              "(charge-before-release)"},
      {"R11", "row-scaled loops in executor/materialization code contain "
              "a guard checkpoint"},
      {"R12", "no NoiseSource captured into lambdas handed to "
              "map_parts/submit"},
  };
  return kRules;
}

bool wants_file(std::string_view rel_path) {
  if (!(ends_with(rel_path, ".cpp") || ends_with(rel_path, ".cc") ||
        ends_with(rel_path, ".hpp") || ends_with(rel_path, ".h") ||
        ends_with(rel_path, ".hh"))) {
    return false;
  }
  // The fixture corpus deliberately violates the rules; the repo gate
  // must not scan it.
  if (starts_with(rel_path, "tests/lint/corpus/")) return false;
  return starts_with(rel_path, "src/") || starts_with(rel_path, "tests/") ||
         starts_with(rel_path, "bench/") ||
         starts_with(rel_path, "examples/") ||
         starts_with(rel_path, "tools/");
}

std::vector<Finding> analyze_file(std::string_view rel_path,
                                  const TokenizedFile& file,
                                  const std::vector<FunctionDef>& functions,
                                  const ChargeGraph& graph) {
  return Analysis(rel_path, file, functions, graph).run();
}

std::vector<Finding> analyze_source(std::string_view rel_path,
                                    std::string_view content) {
  const TokenizedFile file = tokenize(content);
  const std::vector<FunctionDef> functions = scan_functions(file.tokens);
  ChargeGraph graph;
  for (const FunctionFact& fact : collect_facts(functions)) graph.add(fact);
  return analyze_file(rel_path, file, functions, graph);
}

std::string format(const Finding& f) {
  return f.file + ":" + std::to_string(f.line) + ": [" + f.rule + "] " +
         f.message;
}

}  // namespace dpnet::lint
