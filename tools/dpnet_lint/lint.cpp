#include "dpnet_lint/lint.hpp"

#include <algorithm>
#include <cctype>
#include <cstdlib>
#include <unordered_map>
#include <unordered_set>

namespace dpnet::lint {

namespace {

// ---------------------------------------------------------------------------
// Path classification
// ---------------------------------------------------------------------------

bool starts_with(std::string_view s, std::string_view prefix) {
  return s.substr(0, prefix.size()) == prefix;
}

bool ends_with(std::string_view s, std::string_view suffix) {
  return s.size() >= suffix.size() &&
         s.substr(s.size() - suffix.size()) == suffix;
}

struct FileClass {
  bool in_src = false;       // src/**
  bool is_header = false;    // *.hpp / *.h / *.hh
  bool allow_unsafe = false; // tests/, bench/, src/tracegen/  (R1)
  bool is_noise = false;     // src/core/noise.{hpp,cpp}       (R2)
  bool harness = false;      // tests/, bench/: own seeding OK (R2)
  bool telemetry = false;    // files that serialize telemetry (R6)
};

FileClass classify(std::string_view path) {
  FileClass c;
  c.in_src = starts_with(path, "src/");
  c.is_header = ends_with(path, ".hpp") || ends_with(path, ".h") ||
                ends_with(path, ".hh");
  const bool in_tests = starts_with(path, "tests/");
  const bool in_bench = starts_with(path, "bench/");
  c.allow_unsafe =
      in_tests || in_bench || starts_with(path, "src/tracegen/");
  c.is_noise = path == "src/core/noise.hpp" || path == "src/core/noise.cpp";
  c.harness = in_tests || in_bench;
  c.telemetry = path == "src/core/trace.hpp" || path == "src/core/trace.cpp" ||
                path == "src/core/metrics.hpp" ||
                path == "src/core/metrics.cpp" ||
                path == "src/core/audit.hpp" ||
                path == "src/core/streaming.hpp" ||
                path == "bench/common.hpp" || path == "tools/dpnet_cli.cpp";
  return c;
}

// ---------------------------------------------------------------------------
// Tokenizer
// ---------------------------------------------------------------------------

enum class Kind { Ident, Number, Punct };

struct Token {
  Kind kind;
  std::string text;
  int line;
};

/// String literals are not tokens (the rules reason about code structure),
/// but R6 needs them: each literal is recorded alongside the index of the
/// next token slot, so a rule can inspect the tokens just before it.
struct StringLit {
  std::string text;        // contents, escapes left as written
  int line;
  std::size_t token_slot;  // == tokens.size() at the time it was lexed
};

/// Per-line suppression state harvested from comments while lexing.
struct Suppressions {
  // line -> rules suppressed on that line ("*" = trusted region, R1+R2).
  std::unordered_map<int, std::unordered_set<std::string>> by_line;
  std::vector<std::pair<int, int>> trusted;  // [begin, end] line ranges

  [[nodiscard]] bool trusted_line(int line) const {
    return std::any_of(trusted.begin(), trusted.end(), [line](auto r) {
      return line >= r.first && line <= r.second;
    });
  }

  [[nodiscard]] bool suppressed(const std::string& rule, int line) const {
    auto it = by_line.find(line);
    return it != by_line.end() && it->second.count(rule) > 0;
  }
};

bool ident_start(char c) {
  return std::isalpha(static_cast<unsigned char>(c)) || c == '_';
}
bool ident_char(char c) {
  return std::isalnum(static_cast<unsigned char>(c)) || c == '_';
}

struct Lexer {
  explicit Lexer(std::string_view source) : src(source) {}

  std::string_view src;
  std::size_t i = 0;
  int line = 1;
  int last_token_line = 0;  // to detect comments standing alone on a line
  std::vector<Token> tokens;
  std::vector<StringLit> strings;
  Suppressions supp;
  int open_trusted = -1;  // line where an unterminated trusted region began

  char peek(std::size_t ahead = 0) const {
    return i + ahead < src.size() ? src[i + ahead] : '\0';
  }
  void bump() {
    if (src[i] == '\n') ++line;
    ++i;
  }

  void handle_directive(std::string_view comment, int comment_line,
                        bool alone) {
    const auto pos = comment.find("dpnet-lint:");
    if (pos == std::string_view::npos) return;
    std::string_view rest = comment.substr(pos + 11);
    while (!rest.empty() && rest.front() == ' ') rest.remove_prefix(1);
    if (starts_with(rest, "end-trusted")) {
      if (open_trusted >= 0) {
        supp.trusted.emplace_back(open_trusted, comment_line);
        open_trusted = -1;
      }
    } else if (starts_with(rest, "trusted")) {
      if (open_trusted < 0) open_trusted = comment_line;
    } else if (starts_with(rest, "suppress(")) {
      std::string_view list = rest.substr(9);
      const auto close = list.find(')');
      if (close == std::string_view::npos) return;
      list = list.substr(0, close);
      std::size_t start = 0;
      while (start <= list.size()) {
        auto comma = list.find(',', start);
        if (comma == std::string_view::npos) comma = list.size();
        std::string rule;
        for (char c : list.substr(start, comma - start)) {
          if (!std::isspace(static_cast<unsigned char>(c))) rule.push_back(c);
        }
        if (!rule.empty()) {
          supp.by_line[comment_line].insert(rule);
          if (alone) supp.by_line[comment_line + 1].insert(rule);
        }
        start = comma + 1;
      }
    }
  }

  void skip_line_comment() {
    const int start_line = line;
    const bool alone = last_token_line != start_line;
    std::size_t begin = i;
    while (i < src.size() && src[i] != '\n') ++i;
    handle_directive(src.substr(begin, i - begin), start_line, alone);
  }

  void skip_block_comment() {
    const int start_line = line;
    const bool alone = last_token_line != start_line;
    std::size_t begin = i;
    bump();  // '/'
    bump();  // '*'
    while (i < src.size() && !(peek() == '*' && peek(1) == '/')) bump();
    if (i < src.size()) {
      bump();
      bump();
    }
    handle_directive(src.substr(begin, i - begin), start_line, alone);
  }

  void skip_string() {
    const int start_line = line;
    bump();  // opening quote
    const std::size_t begin = i;
    while (i < src.size() && peek() != '"') {
      if (peek() == '\\' && i + 1 < src.size()) bump();
      bump();
    }
    strings.push_back({std::string(src.substr(begin, i - begin)), start_line,
                       tokens.size()});
    if (i < src.size()) bump();
  }

  void skip_raw_string() {
    // R"delim( ... )delim"
    bump();  // R already consumed by caller; this is '"'
    std::string delim;
    while (i < src.size() && peek() != '(') {
      delim.push_back(peek());
      bump();
    }
    const std::string close = ")" + delim + "\"";
    while (i < src.size() && src.substr(i, close.size()) != close) bump();
    for (std::size_t k = 0; k < close.size() && i < src.size(); ++k) bump();
  }

  void skip_char_literal() {
    bump();  // opening '
    while (i < src.size() && peek() != '\'') {
      if (peek() == '\\' && i + 1 < src.size()) bump();
      bump();
    }
    if (i < src.size()) bump();
  }

  void skip_preprocessor() {
    // Skip to end of line, honoring backslash continuations and comments.
    while (i < src.size()) {
      if (peek() == '\\' && peek(1) == '\n') {
        bump();
        bump();
        continue;
      }
      if (peek() == '/' && peek(1) == '/') {
        skip_line_comment();
        return;
      }
      if (peek() == '/' && peek(1) == '*') {
        skip_block_comment();
        continue;
      }
      if (peek() == '\n') return;
      bump();
    }
  }

  void lex_number() {
    const int start_line = line;
    std::size_t begin = i;
    while (i < src.size()) {
      const char c = peek();
      if (ident_char(c) || c == '.' || c == '\'') {
        bump();
      } else if ((c == '+' || c == '-') && i > begin) {
        const char prev = src[i - 1];
        if (prev == 'e' || prev == 'E' || prev == 'p' || prev == 'P') {
          bump();
        } else {
          break;
        }
      } else {
        break;
      }
    }
    tokens.push_back(
        {Kind::Number, std::string(src.substr(begin, i - begin)), start_line});
    last_token_line = start_line;
  }

  void run() {
    bool at_line_start = true;
    while (i < src.size()) {
      const char c = peek();
      if (c == '\n') {
        bump();
        at_line_start = true;
        continue;
      }
      if (std::isspace(static_cast<unsigned char>(c))) {
        bump();
        continue;
      }
      if (c == '#' && at_line_start) {
        skip_preprocessor();
        continue;
      }
      at_line_start = false;
      if (c == '/' && peek(1) == '/') {
        skip_line_comment();
        continue;
      }
      if (c == '/' && peek(1) == '*') {
        skip_block_comment();
        continue;
      }
      if (c == '"') {
        skip_string();
        continue;
      }
      if (c == '\'') {
        skip_char_literal();
        continue;
      }
      if (c == 'R' && peek(1) == '"') {
        bump();  // 'R'
        skip_raw_string();
        continue;
      }
      if (ident_start(c)) {
        const int start_line = line;
        std::size_t begin = i;
        while (i < src.size() && ident_char(peek())) bump();
        tokens.push_back({Kind::Ident,
                          std::string(src.substr(begin, i - begin)),
                          start_line});
        last_token_line = start_line;
        continue;
      }
      if (std::isdigit(static_cast<unsigned char>(c))) {
        lex_number();
        continue;
      }
      tokens.push_back({Kind::Punct, std::string(1, c), line});
      last_token_line = line;
      bump();
    }
    if (open_trusted >= 0) {
      supp.trusted.emplace_back(open_trusted, line);  // to end of file
    }
  }
};

// ---------------------------------------------------------------------------
// Rule helpers
// ---------------------------------------------------------------------------

const Token* tok_at(const std::vector<Token>& toks, std::size_t idx) {
  return idx < toks.size() ? &toks[idx] : nullptr;
}

bool next_is(const std::vector<Token>& toks, std::size_t i,
             std::string_view text) {
  const Token* t = tok_at(toks, i + 1);
  return t != nullptr && t->text == text;
}

bool prev_is(const std::vector<Token>& toks, std::size_t i,
             std::string_view text) {
  return i > 0 && toks[i - 1].text == text;
}

/// True for names that denote privacy parameters: eps, epsilon, eps_*,
/// epsilon_*, *_eps, *_epsilon.
bool epsilon_name(std::string_view name) {
  return name == "eps" || name == "epsilon" || starts_with(name, "eps_") ||
         starts_with(name, "epsilon_") || ends_with(name, "_eps") ||
         ends_with(name, "_epsilon");
}

bool zero_literal(const std::string& text) {
  return std::strtod(text.c_str(), nullptr) == 0.0;
}

// Declaration-specifier keywords that may legitimately precede a
// constructor name; a candidate whose whole prefix is specifiers is a
// constructor, not a value-returning method.
bool specifier(const std::string& t) {
  return t == "explicit" || t == "inline" || t == "constexpr" ||
         t == "static" || t == "friend" || t == "virtual" || t == "typename";
}

// ---------------------------------------------------------------------------
// Rules
// ---------------------------------------------------------------------------

class Analysis {
 public:
  Analysis(std::string_view rel_path, std::string_view content)
      : path_(rel_path), cls_(classify(rel_path)) {
    Lexer lexer(content);
    lexer.run();
    toks_ = std::move(lexer.tokens);
    strings_ = std::move(lexer.strings);
    supp_ = std::move(lexer.supp);
  }

  std::vector<Finding> run() {
    rule_unsafe_calls();
    rule_raw_randomness();
    rule_nodiscard();
    rule_raw_ownership();
    rule_epsilon_literals();
    rule_telemetry_fields();
    rule_thread_creation();
    rule_exception_text();
    std::sort(findings_.begin(), findings_.end(),
              [](const Finding& a, const Finding& b) {
                return a.line != b.line ? a.line < b.line : a.rule < b.rule;
              });
    return std::move(findings_);
  }

 private:
  void report(const std::string& rule, int line, std::string message) {
    if (supp_.suppressed(rule, line)) return;
    findings_.push_back({std::string(path_), line, rule, std::move(message)});
  }

  /// R1: *_unsafe() confined to trusted code.
  void rule_unsafe_calls() {
    if (cls_.allow_unsafe) return;
    for (std::size_t i = 0; i < toks_.size(); ++i) {
      const Token& t = toks_[i];
      if (t.kind != Kind::Ident || !ends_with(t.text, "_unsafe")) continue;
      if (!next_is(toks_, i, "(")) continue;
      if (supp_.trusted_line(t.line)) continue;
      report("R1", t.line,
             t.text + "() bypasses the privacy curtain; only tests/, "
                      "bench/, src/tracegen/, and '// dpnet-lint: trusted' "
                      "regions may use *_unsafe accessors");
    }
  }

  /// R2: all randomness flows through core::NoiseSource.
  void rule_raw_randomness() {
    if (cls_.is_noise || cls_.harness) return;
    static const std::unordered_set<std::string> kEngines = {
        "random_device", "mt19937",       "mt19937_64",
        "minstd_rand",   "minstd_rand0",  "default_random_engine",
        "ranlux24",      "ranlux48",      "ranlux24_base",
        "ranlux48_base", "knuth_b"};
    static const std::unordered_set<std::string> kCalls = {
        "rand", "srand", "rand_r", "drand48", "lrand48", "srand48"};
    for (std::size_t i = 0; i < toks_.size(); ++i) {
      const Token& t = toks_[i];
      if (t.kind != Kind::Ident) continue;
      const bool engine = kEngines.count(t.text) > 0;
      const bool call = kCalls.count(t.text) > 0 && next_is(toks_, i, "(");
      if (!engine && !call) continue;
      if (supp_.trusted_line(t.line)) continue;
      report("R2", t.line,
             t.text + " used directly; route randomness through "
                      "core::NoiseSource (src/core/noise.hpp) so draws are "
                      "seedable and auditable");
    }
  }

  /// R3: public aggregation / Queryable-returning declarations in src/
  /// headers must be [[nodiscard]].
  void rule_nodiscard() {
    if (!cls_.in_src || !cls_.is_header) return;
    std::size_t stmt_start = 0;
    for (std::size_t i = 0; i < toks_.size(); ++i) {
      const Token& t = toks_[i];
      if (t.kind == Kind::Punct &&
          (t.text == ";" || t.text == "{" || t.text == "}")) {
        stmt_start = i + 1;
        continue;
      }
      // Access labels reset the statement without ending a declaration.
      if (t.kind == Kind::Ident &&
          (t.text == "public" || t.text == "private" ||
           t.text == "protected") &&
          next_is(toks_, i, ":") && !next_is(toks_, i + 1, ":")) {
        stmt_start = i + 2;
        ++i;
        continue;
      }
      if (t.kind != Kind::Ident || !next_is(toks_, i, "(")) continue;

      const bool agg_name = starts_with(t.text, "noisy_") ||
                            ends_with(t.text, "_mechanism") ||
                            t.text == "exponential_quantile" ||
                            t.text == "exponential_median";
      bool queryable_return = false;
      bool has_nodiscard = false;
      bool is_call = false;
      bool only_specifiers = true;
      if (i == stmt_start) is_call = true;  // no return type: expression
      for (std::size_t k = stmt_start; k < i; ++k) {
        const std::string& p = toks_[k].text;
        if (p == "Queryable") queryable_return = true;
        if (p == "nodiscard") has_nodiscard = true;
        if (p == "return" || p == "throw" || p == "=" || p == "co_return") {
          is_call = true;
        }
        if (toks_[k].kind == Kind::Ident && !specifier(p)) {
          only_specifiers = false;
        }
      }
      if (!agg_name && !queryable_return) continue;
      // Member / qualified / argument-position uses are calls, not decls.
      if (prev_is(toks_, i, ".") || prev_is(toks_, i, "(") ||
          prev_is(toks_, i, ",") || prev_is(toks_, i, ":") ||
          (prev_is(toks_, i, ">") && i >= 2 && toks_[i - 2].text == "-")) {
        continue;
      }
      if (is_call || only_specifiers || has_nodiscard) continue;
      report("R3", t.line,
             t.text + " returns analyst-visible information; declare it "
                      "[[nodiscard]] so a discarded result (which still "
                      "charges the budget) is a compile-time warning");
    }
  }

  /// R4: no raw owning new/delete/malloc.
  void rule_raw_ownership() {
    static const std::unordered_set<std::string> kAlloc = {
        "malloc", "calloc", "realloc", "free", "strdup"};
    for (std::size_t i = 0; i < toks_.size(); ++i) {
      const Token& t = toks_[i];
      if (t.kind != Kind::Ident) continue;
      if (t.text == "new" || t.text == "delete") {
        if (prev_is(toks_, i, "operator")) continue;
        if (t.text == "delete" && prev_is(toks_, i, "=")) continue;
        report("R4", t.line,
               "raw '" + t.text + "' — use value semantics or "
                                  "std::make_unique/std::make_shared "
                                  "(C++ Core Guidelines R.11)");
      } else if (kAlloc.count(t.text) > 0 && next_is(toks_, i, "(") &&
                 !prev_is(toks_, i, ".") &&
                 !(prev_is(toks_, i, ">") && i >= 2 &&
                   toks_[i - 2].text == "-")) {
        report("R4", t.line,
               t.text + "() allocates untracked memory; use RAII "
                        "containers or smart pointers");
      }
    }
  }

  /// R5: epsilon values in library code come from the caller's budget
  /// policy, never from a hard-coded literal (zero sentinels are fine).
  void rule_epsilon_literals() {
    if (!cls_.in_src) return;
    for (std::size_t i = 0; i + 2 < toks_.size(); ++i) {
      const Token& t = toks_[i];
      if (t.kind != Kind::Ident || !epsilon_name(t.text)) continue;
      const Token& op = toks_[i + 1];
      if (op.kind != Kind::Punct || (op.text != "=" && op.text != "{")) {
        continue;
      }
      std::size_t v = i + 2;
      if (toks_[v].kind == Kind::Punct && toks_[v].text == "-" &&
          v + 1 < toks_.size()) {
        ++v;
      }
      if (toks_[v].kind != Kind::Number || zero_literal(toks_[v].text)) {
        continue;
      }
      report("R5", t.line,
             "hard-coded epsilon '" + toks_[v].text + "' for '" + t.text +
                 "'; accuracy levels must be chosen by the analyst against "
                 "a PrivacyBudget, not baked into src/");
    }
  }

  /// R6: telemetry serializes only approved fields.  In the files that
  /// build JSON telemetry (traces, metrics, ledgers, bench reports), every
  /// string literal passed to a JsonWriter key() must come from the
  /// approved-field list in docs/observability.md — so a change that would
  /// leak a new field (worst case, record payloads) into the telemetry
  /// stream fails the lint until the field is reviewed and listed here.
  void rule_telemetry_fields() {
    if (!cls_.telemetry) return;
    static const std::unordered_set<std::string> kApprovedFields = {
        // query trace (src/core/trace.cpp)
        "spans", "op", "detail", "stability", "input_rows", "output_rows",
        "eps_requested", "eps_charged", "mechanism", "wall_ms", "children",
        // timeline stamps + Chrome trace_event export (src/core/trace.cpp):
        // microsecond begin/duration, worker lane, and the trace_event
        // envelope — all scheduling metadata, never record contents
        "ts_us", "dur_us", "worker", "traceEvents", "cat", "ph", "ts",
        "dur", "pid", "tid", "args", "displayTimeUnit",
        // metrics snapshot (src/core/metrics.cpp)
        "counters", "gauges", "histograms", "count", "sum", "buckets",
        "upper_bound", "p50", "p95", "p99",
        // audit ledger (src/core/audit.hpp)
        "spent", "entries", "eps", "label", "totals_by_label", "node_id",
        // bench report (bench/common.hpp) and CLI trace output
        "schema", "name", "title", "reproduces", "results", "section", "key",
        "value", "paper", "measured", "trace", "audit", "metrics", "query",
        "threads", "speedup_vs_1thread",
        // robustness counters (docs/robustness.md) — accounting metadata
        "queries.aborted", "deadline.exceeded", "records.quarantined",
        "faults.injected"};
    for (const StringLit& lit : strings_) {
      if (lit.token_slot < 2) continue;
      const Token& open = toks_[lit.token_slot - 1];
      const Token& callee = toks_[lit.token_slot - 2];
      if (open.kind != Kind::Punct || open.text != "(") continue;
      if (callee.kind != Kind::Ident || callee.text != "key") continue;
      if (kApprovedFields.count(lit.text) > 0) continue;
      report("R6", lit.line,
             "telemetry field '" + lit.text +
                 "' is not on the approved list; telemetry may only "
                 "serialize accounting metadata, never record contents "
                 "(docs/observability.md)");
    }
  }

  /// R7: threads are created only by the executor.  Ad-hoc std::thread /
  /// std::jthread / std::async use elsewhere would run releases outside
  /// the scheduler that guarantees deterministic noise, merged traces, and
  /// synchronized budget charges — so parallelism is confined to
  /// src/core/exec/ (plus explicitly suppressed harness code).
  void rule_thread_creation() {
    if (starts_with(path_, "src/core/exec/")) return;
    static const std::unordered_set<std::string> kThreadNames = {
        "thread", "jthread", "async"};
    for (std::size_t i = 3; i < toks_.size(); ++i) {
      const Token& t = toks_[i];
      if (t.kind != Kind::Ident || kThreadNames.count(t.text) == 0) continue;
      if (!(prev_is(toks_, i, ":") && toks_[i - 2].text == ":" &&
            toks_[i - 3].text == "std")) {
        continue;
      }
      // Qualified statics (std::thread::hardware_concurrency(), ::id, ...)
      // query thread facilities without creating threads.
      if (next_is(toks_, i, ":") && i + 2 < toks_.size() &&
          toks_[i + 2].text == ":") {
        continue;
      }
      report("R7", t.line,
             "std::" + t.text +
                 " outside src/core/exec/; all parallelism flows through "
                 "core::exec so noise determinism, trace merging, and "
                 "budget synchronization are enforced in one place");
    }
  }

  /// R8: exception text stays behind the privacy boundary.  An analyst
  /// exception's what() can interpolate record contents, so engine code
  /// in src/ never reads it — core::contain_analyst deliberately discards
  /// it and rethrows a sanitized AnalystCodeError carrying only the
  /// operator name and plan-node id.  Only trusted code (tests/, bench/,
  /// tools/, examples/) may print what(); this rule makes that boundary
  /// mechanical (docs/robustness.md).
  void rule_exception_text() {
    if (!cls_.in_src) return;
    for (std::size_t i = 0; i < toks_.size(); ++i) {
      const Token& t = toks_[i];
      if (t.kind != Kind::Ident || t.text != "what") continue;
      if (!next_is(toks_, i, "(")) continue;
      if (supp_.trusted_line(t.line)) continue;
      report("R8", t.line,
             "what() read inside src/; exception text may interpolate "
             "record contents — throw a sanitized error from "
             "core/errors.hpp (node id + operator name only) and leave "
             "printing what() to trusted code outside src/");
    }
  }

  std::string_view path_;
  FileClass cls_;
  std::vector<Token> toks_;
  std::vector<StringLit> strings_;
  Suppressions supp_;
  std::vector<Finding> findings_;
};

}  // namespace

bool wants_file(std::string_view rel_path) {
  if (!(ends_with(rel_path, ".cpp") || ends_with(rel_path, ".cc") ||
        ends_with(rel_path, ".hpp") || ends_with(rel_path, ".h") ||
        ends_with(rel_path, ".hh"))) {
    return false;
  }
  return starts_with(rel_path, "src/") || starts_with(rel_path, "tests/") ||
         starts_with(rel_path, "bench/") ||
         starts_with(rel_path, "examples/") ||
         starts_with(rel_path, "tools/");
}

std::vector<Finding> analyze_source(std::string_view rel_path,
                                    std::string_view content) {
  return Analysis(rel_path, content).run();
}

std::string format(const Finding& f) {
  return f.file + ":" + std::to_string(f.line) + ": [" + f.rule + "] " +
         f.message;
}

}  // namespace dpnet::lint
