// Whole-repo scanning for dpnet-lint: builds the repo-wide charge graph
// across every input file, then runs the full rule set per file — in
// parallel, with a content-hash incremental cache.
//
// Cache soundness: a cached entry's *function facts* are reusable whenever
// the file's content hash matches (facts are a pure function of the file).
// Its *findings* are reusable only when, additionally, the repo-wide
// charge-graph digest matches the one the findings were computed under —
// R10/R11 consult the graph, so a change to any file that adds or removes
// a charging/checkpointing function invalidates every file's findings
// while still reusing all the per-file facts.
#include <algorithm>
#include <atomic>
#include <cstdint>
#include <fstream>
#include <iterator>
#include <sstream>
#include <thread>
#include <unordered_map>
#include <vector>

#include "core/json.hpp"
#include "dpnet_lint/index.hpp"
#include "dpnet_lint/lint.hpp"

namespace dpnet::lint {

namespace {

constexpr std::string_view kCacheSchema = "dpnet.lintcache.v1";

struct CachedFile {
  std::string hash;
  std::vector<FunctionFact> facts;
  std::vector<Finding> findings;
};

struct Cache {
  std::string graph_digest;
  std::unordered_map<std::string, CachedFile> files;
};

Cache load_cache(const std::string& path) {
  Cache cache;
  if (path.empty()) return cache;
  std::ifstream in(path);
  if (!in) return cache;
  std::stringstream buf;
  buf << in.rdbuf();
  core::JsonValue doc;
  try {
    doc = core::parse_json(buf.str());
  } catch (const core::JsonParseError&) {
    return cache;  // stale or corrupt cache: start cold
  }
  const core::JsonValue* schema = doc.find("schema");
  if (schema == nullptr || schema->string != kCacheSchema) return cache;
  if (const core::JsonValue* d = doc.find("graph_digest")) {
    cache.graph_digest = d->string;
  }
  const core::JsonValue* files = doc.find("files");
  if (files == nullptr || !files->is_object()) return cache;
  for (const auto& [file_path, entry] : files->object) {
    CachedFile cf;
    if (const core::JsonValue* h = entry.find("hash")) cf.hash = h->string;
    if (const core::JsonValue* facts = entry.find("facts")) {
      for (const core::JsonValue& f : facts->array) {
        FunctionFact fact;
        if (const core::JsonValue* v = f.find("name")) fact.name = v->string;
        if (const core::JsonValue* v = f.find("charges")) {
          fact.charges = v->boolean;
        }
        if (const core::JsonValue* v = f.find("checkpoints")) {
          fact.checkpoints = v->boolean;
        }
        cf.facts.push_back(std::move(fact));
      }
    }
    if (const core::JsonValue* findings = entry.find("findings")) {
      for (const core::JsonValue& f : findings->array) {
        Finding finding;
        finding.file = file_path;
        if (const core::JsonValue* v = f.find("line")) {
          finding.line = static_cast<int>(v->number);
        }
        if (const core::JsonValue* v = f.find("rule")) {
          finding.rule = v->string;
        }
        if (const core::JsonValue* v = f.find("message")) {
          finding.message = v->string;
        }
        if (const core::JsonValue* v = f.find("fingerprint")) {
          finding.fingerprint = v->string;
        }
        cf.findings.push_back(std::move(finding));
      }
    }
    cache.files.emplace(file_path, std::move(cf));
  }
  return cache;
}

void save_cache(const std::string& path, const std::string& graph_digest,
                const std::vector<std::string>& hashes,
                const std::vector<std::vector<FunctionFact>>& facts,
                const std::vector<std::vector<Finding>>& findings,
                const std::vector<FileInput>& files) {
  if (path.empty()) return;
  core::JsonWriter w;
  w.begin_object();
  w.key("schema").value(kCacheSchema);
  w.key("graph_digest").value(graph_digest);
  w.key("files").begin_object();
  for (std::size_t i = 0; i < files.size(); ++i) {
    w.key(files[i].path).begin_object();
    w.key("hash").value(hashes[i]);
    w.key("facts").begin_array();
    for (const FunctionFact& fact : facts[i]) {
      w.begin_object();
      w.key("name").value(fact.name);
      w.key("charges").value(fact.charges);
      w.key("checkpoints").value(fact.checkpoints);
      w.end_object();
    }
    w.end_array();
    w.key("findings").begin_array();
    for (const Finding& f : findings[i]) {
      w.begin_object();
      w.key("line").value(static_cast<std::int64_t>(f.line));
      w.key("rule").value(f.rule);
      w.key("message").value(f.message);
      w.key("fingerprint").value(f.fingerprint);
      w.end_object();
    }
    w.end_array();
    w.end_object();
  }
  w.end_object();  // files
  w.end_object();
  std::ofstream out(path, std::ios::trunc);
  out << w.str();
}

/// Runs `work(i)` for i in [0, n) across `jobs` workers.  The lint driver
/// is tool-side trusted code scanning independent files; R7 confines
/// thread creation to the engine's executor, not to this tool.
template <typename Fn>
void for_each_parallel(std::size_t jobs, std::size_t n, Fn work) {
  if (jobs <= 1 || n <= 1) {
    for (std::size_t i = 0; i < n; ++i) work(i);
    return;
  }
  std::atomic<std::size_t> next{0};
  // Tool-side scan workers: the executor-only rule guards engine
  // determinism inside src/, not the linter binary scanning it.
  // dpnet-lint: suppress(R7)
  std::vector<std::thread> workers;
  const std::size_t count = std::min(jobs, n);
  for (std::size_t w = 0; w < count; ++w) {
    workers.emplace_back([&] {
      for (std::size_t i = next.fetch_add(1); i < n; i = next.fetch_add(1)) {
        work(i);
      }
    });
  }
  for (auto& worker : workers) worker.join();
}

}  // namespace

RepoReport analyze_repo(const std::vector<FileInput>& files,
                        const RepoOptions& options) {
  const std::size_t n = files.size();
  std::size_t jobs = options.jobs != 0
                         ? options.jobs
                         : std::thread::hardware_concurrency();
  if (jobs == 0) jobs = 1;

  const Cache cache = load_cache(options.cache_path);

  // Pass 1 — hash every file; tokenize and scan the ones whose facts are
  // not cached.  Facts depend only on the file's own content.
  std::vector<std::string> hashes(n);
  std::vector<std::vector<FunctionFact>> facts(n);
  std::vector<TokenizedFile> tokenized(n);
  std::vector<std::vector<FunctionDef>> functions(n);
  std::vector<char> have_tokens(n, 0);
  std::vector<char> hash_hit(n, 0);
  for_each_parallel(jobs, n, [&](std::size_t i) {
    hashes[i] = to_hex(fnv1a(files[i].content));
    const auto it = cache.files.find(files[i].path);
    if (it != cache.files.end() && it->second.hash == hashes[i]) {
      hash_hit[i] = 1;
      facts[i] = it->second.facts;
      return;
    }
    tokenized[i] = tokenize(files[i].content);
    functions[i] = scan_functions(tokenized[i].tokens);
    facts[i] = collect_facts(functions[i]);
    have_tokens[i] = 1;
  });

  // Pass 2 — merge every file's facts into the repo-wide charge graph.
  ChargeGraph graph;
  for (const auto& file_facts : facts) {
    for (const FunctionFact& fact : file_facts) graph.add(fact);
  }
  const std::string digest = to_hex(graph.digest());
  const bool graph_unchanged = digest == cache.graph_digest;

  // Pass 3 — findings: reuse cached ones when both the content hash and
  // the graph digest match; otherwise (re)analyze under the merged graph.
  std::vector<std::vector<Finding>> findings(n);
  std::atomic<std::size_t> cache_hits{0};
  std::atomic<std::size_t> analyzed{0};
  for_each_parallel(jobs, n, [&](std::size_t i) {
    if (hash_hit[i] != 0 && graph_unchanged) {
      findings[i] = cache.files.at(files[i].path).findings;
      cache_hits.fetch_add(1);
      return;
    }
    if (have_tokens[i] == 0) {
      tokenized[i] = tokenize(files[i].content);
      functions[i] = scan_functions(tokenized[i].tokens);
      have_tokens[i] = 1;
    }
    findings[i] =
        analyze_file(files[i].path, tokenized[i], functions[i], graph);
    analyzed.fetch_add(1);
  });

  save_cache(options.cache_path, digest, hashes, facts, findings, files);

  RepoReport report;
  report.files = n;
  report.cache_hits = cache_hits.load();
  report.analyzed = analyzed.load();
  for (std::vector<Finding>& file_findings : findings) {
    report.findings.insert(report.findings.end(),
                           std::make_move_iterator(file_findings.begin()),
                           std::make_move_iterator(file_findings.end()));
  }
  std::sort(report.findings.begin(), report.findings.end(),
            [](const Finding& a, const Finding& b) {
              if (a.file != b.file) return a.file < b.file;
              return a.line != b.line ? a.line < b.line : a.rule < b.rule;
            });
  return report;
}

}  // namespace dpnet::lint
