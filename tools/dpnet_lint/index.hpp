// Per-file symbol table and repo-wide function/call index for dpnet-lint.
//
// scan_functions() recovers function definitions from the token stream —
// name, parameter-list and body token ranges, plus the three facts the
// semantic rules consult:
//
//   * charges_directly      — the body calls a budget-charge primitive
//                             (try_charge / charge / charge_all /
//                             raise_to / try_raise_to)
//   * checkpoints_directly  — the body calls a guard checkpoint
//                             (checkpoint / guard_checkpoint /
//                             charge_rows / guard_charge_rows)
//   * takes_noise_source    — a parameter is a NoiseSource (randomness is
//                             caller-supplied, so the *caller* owns the
//                             charge-before-release obligation)
//
// A ChargeGraph merges those facts across every scanned file into the
// name -> fact maps rule R10/R11 use for their one-call-level-deep
// domination checks ("release() charges, so calling release() before the
// draw counts").  The graph's digest() keys the incremental cache: a
// cached file's findings are reusable only while the repo-wide fact maps
// it was analyzed under are unchanged.
#pragma once

#include <cstdint>
#include <string>
#include <string_view>
#include <unordered_set>
#include <vector>

#include "dpnet_lint/lint.hpp"
#include "dpnet_lint/tokenizer.hpp"

namespace dpnet::lint {

// ---------------------------------------------------------------------------
// Path classification (which rules apply where)
// ---------------------------------------------------------------------------

struct FileClass {
  bool in_src = false;       // src/**
  bool is_header = false;    // *.hpp / *.h / *.hh
  bool allow_unsafe = false; // tests/, bench/, src/tracegen/  (R1)
  bool is_noise = false;     // src/core/noise.{hpp,cpp}       (R2, R10)
  bool harness = false;      // tests/, bench/: own seeding OK (R2)
  bool telemetry = false;    // files that serialize telemetry (R6)
  bool in_exec = false;      // src/core/exec/**               (R7, R11)
};

[[nodiscard]] FileClass classify(std::string_view path);

// ---------------------------------------------------------------------------
// Function scanner
// ---------------------------------------------------------------------------

struct FunctionDef {
  std::string name;  // unqualified (last component before the '(')
  int line = 0;      // line of the name token
  std::size_t params_begin = 0;  // token index of '('
  std::size_t params_end = 0;    // token index of matching ')'
  std::size_t body_begin = 0;    // token index of '{'
  std::size_t body_end = 0;      // token index of matching '}'
  bool charges_directly = false;
  bool checkpoints_directly = false;
  bool takes_noise_source = false;
};

/// Heuristic definition scanner: an identifier followed by a balanced
/// parameter list and a body brace, tolerating cv/ref qualifiers,
/// noexcept, trailing return types, and constructor initializer lists.
/// Lambdas are deliberately not functions of their own — their tokens
/// belong to the enclosing definition, which is the granularity the
/// intra-procedural rules want.
[[nodiscard]] std::vector<FunctionDef> scan_functions(
    const std::vector<Token>& toks);

/// The innermost scanned definition whose body contains token index `i`
/// (local classes nest), or nullptr.
[[nodiscard]] const FunctionDef* enclosing_function(
    const std::vector<FunctionDef>& fns, std::size_t i);

// ---------------------------------------------------------------------------
// Repo-wide charge/checkpoint index
// ---------------------------------------------------------------------------

/// One function's contribution to the repo-wide index; serialized into
/// the incremental cache so unchanged files rebuild the graph without
/// re-tokenizing.
struct FunctionFact {
  std::string name;
  bool charges = false;
  bool checkpoints = false;
};

[[nodiscard]] std::vector<FunctionFact> collect_facts(
    const std::vector<FunctionDef>& fns);

class ChargeGraph {
 public:
  void add(const FunctionFact& fact);

  /// True when some definition named `callee` charges the budget
  /// directly.  Name-level resolution (no overload or class scoping) —
  /// deliberately coarse, like every lint-level index.
  [[nodiscard]] bool charges(const std::string& callee) const {
    return charging_.count(callee) > 0;
  }

  [[nodiscard]] bool checkpoints(const std::string& callee) const {
    return checkpointing_.count(callee) > 0;
  }

  /// Stable digest of the fact maps; cached findings are valid only for
  /// an identical digest.
  [[nodiscard]] std::uint64_t digest() const;

 private:
  std::unordered_set<std::string> charging_;
  std::unordered_set<std::string> checkpointing_;
};

// ---------------------------------------------------------------------------
// Semantic rules (R9–R12) — implemented in rules_semantic.cpp
// ---------------------------------------------------------------------------

/// A finding before suppression filtering and fingerprinting (both applied
/// centrally by the Analysis driver in lint.cpp).
struct RawFinding {
  const char* rule;  // "R9".."R12"
  int line = 0;
  std::string message;
};

struct SemanticInput {
  std::string_view path;
  FileClass cls;
  const TokenizedFile* file = nullptr;
  const std::vector<FunctionDef>* functions = nullptr;
  const ChargeGraph* graph = nullptr;
};

[[nodiscard]] std::vector<RawFinding> run_semantic_rules(
    const SemanticInput& in);

/// Full rule set over one already-tokenized file with an externally built
/// (possibly repo-wide) charge graph — the entry point analyze_repo() uses;
/// analyze_source() wraps it with a single-file graph.  Defined in lint.cpp.
[[nodiscard]] std::vector<Finding> analyze_file(
    std::string_view rel_path, const TokenizedFile& file,
    const std::vector<FunctionDef>& functions, const ChargeGraph& graph);

// ---------------------------------------------------------------------------
// Shared hashing (fingerprints, cache keys)
// ---------------------------------------------------------------------------

inline constexpr std::uint64_t kFnvOffset = 0xcbf29ce484222325ULL;
inline constexpr std::uint64_t kFnvPrime = 0x100000001b3ULL;

[[nodiscard]] inline std::uint64_t fnv1a(std::string_view data,
                                         std::uint64_t seed = kFnvOffset) {
  std::uint64_t h = seed;
  for (unsigned char c : data) {
    h ^= c;
    h *= kFnvPrime;
  }
  return h;
}

[[nodiscard]] std::string to_hex(std::uint64_t v);

}  // namespace dpnet::lint
