// Token stream for dpnet-lint.
//
// The lexer understands exactly as much C++ as the rules need: it strips
// line/block comments, string literals (including raw strings), character
// literals, and preprocessor lines, and hands back an identifier/number/
// punctuation token stream annotated with 1-based line numbers.  Because
// every rule reasons over this stream, a banned name inside a comment or
// string literal can never trip a rule — the false-positive class the
// original line-oriented scanner had to special-case away.
//
// Two side channels ride along:
//
//   * String literals are recorded separately (contents + the token slot
//     they would have occupied) for the rules that inspect them (R6's
//     telemetry-field allowlist).
//   * `// dpnet-lint:` directives are harvested from comments while
//     lexing into a Suppressions table (trusted regions and per-line
//     suppress(...) entries — see docs/static_analysis.md).
#pragma once

#include <string>
#include <string_view>
#include <unordered_map>
#include <unordered_set>
#include <utility>
#include <vector>

namespace dpnet::lint {

enum class Kind { Ident, Number, Punct };

struct Token {
  Kind kind;
  std::string text;
  int line;
};

/// String literals are not tokens (the rules reason about code structure),
/// but some rules need them: each literal is recorded alongside the index
/// of the next token slot, so a rule can inspect the tokens just before it.
struct StringLit {
  std::string text;        // contents, escapes left as written
  int line;
  std::size_t token_slot;  // == tokens.size() at the time it was lexed
};

/// Per-line suppression state harvested from comments while lexing.
struct Suppressions {
  // line -> rules suppressed on that line.
  std::unordered_map<int, std::unordered_set<std::string>> by_line;
  std::vector<std::pair<int, int>> trusted;  // [begin, end] line ranges

  [[nodiscard]] bool trusted_line(int line) const;
  [[nodiscard]] bool suppressed(const std::string& rule, int line) const;
};

/// One lexed translation unit.
struct TokenizedFile {
  std::vector<Token> tokens;
  std::vector<StringLit> strings;
  Suppressions supp;
};

/// Lexes `source` into tokens, string literals, and suppression state.
[[nodiscard]] TokenizedFile tokenize(std::string_view source);

// --------------------------------------------------------------------------
// Token-stream helpers shared by the rule implementations.
// --------------------------------------------------------------------------

[[nodiscard]] inline const Token* tok_at(const std::vector<Token>& toks,
                                         std::size_t idx) {
  return idx < toks.size() ? &toks[idx] : nullptr;
}

[[nodiscard]] inline bool next_is(const std::vector<Token>& toks,
                                  std::size_t i, std::string_view text) {
  const Token* t = tok_at(toks, i + 1);
  return t != nullptr && t->text == text;
}

[[nodiscard]] inline bool prev_is(const std::vector<Token>& toks,
                                  std::size_t i, std::string_view text) {
  return i > 0 && toks[i - 1].text == text;
}

/// True when token `i` is an identifier immediately followed by '(' — the
/// shape every call-site rule keys on.
[[nodiscard]] inline bool is_call(const std::vector<Token>& toks,
                                  std::size_t i) {
  return toks[i].kind == Kind::Ident && next_is(toks, i, "(");
}

/// Index of the punctuation token that closes the `open`/`close` pair
/// opened at `open_idx` (which must point at an `open` token); npos when
/// the stream ends first.
[[nodiscard]] std::size_t matching_close(const std::vector<Token>& toks,
                                         std::size_t open_idx,
                                         std::string_view open,
                                         std::string_view close);

}  // namespace dpnet::lint
