#include "dpnet_lint/tokenizer.hpp"

#include <algorithm>
#include <cctype>

namespace dpnet::lint {

namespace {

bool ident_start(char c) {
  return std::isalpha(static_cast<unsigned char>(c)) || c == '_';
}
bool ident_char(char c) {
  return std::isalnum(static_cast<unsigned char>(c)) || c == '_';
}

struct Lexer {
  explicit Lexer(std::string_view source) : src(source) {}

  std::string_view src;
  std::size_t i = 0;
  int line = 1;
  int last_token_line = 0;  // to detect comments standing alone on a line
  TokenizedFile out;
  int open_trusted = -1;  // line where an unterminated trusted region began

  char peek(std::size_t ahead = 0) const {
    return i + ahead < src.size() ? src[i + ahead] : '\0';
  }
  void bump() {
    if (src[i] == '\n') ++line;
    ++i;
  }

  void handle_directive(std::string_view comment, int comment_line,
                        bool alone) {
    const auto pos = comment.find("dpnet-lint:");
    if (pos == std::string_view::npos) return;
    std::string_view rest = comment.substr(pos + 11);
    while (!rest.empty() && rest.front() == ' ') rest.remove_prefix(1);
    if (rest.starts_with("end-trusted")) {
      if (open_trusted >= 0) {
        out.supp.trusted.emplace_back(open_trusted, comment_line);
        open_trusted = -1;
      }
    } else if (rest.starts_with("trusted")) {
      if (open_trusted < 0) open_trusted = comment_line;
    } else if (rest.starts_with("suppress(")) {
      std::string_view list = rest.substr(9);
      const auto close = list.find(')');
      if (close == std::string_view::npos) return;
      list = list.substr(0, close);
      std::size_t start = 0;
      while (start <= list.size()) {
        auto comma = list.find(',', start);
        if (comma == std::string_view::npos) comma = list.size();
        std::string rule;
        for (char c : list.substr(start, comma - start)) {
          if (!std::isspace(static_cast<unsigned char>(c))) rule.push_back(c);
        }
        if (!rule.empty()) {
          out.supp.by_line[comment_line].insert(rule);
          if (alone) out.supp.by_line[comment_line + 1].insert(rule);
        }
        start = comma + 1;
      }
    }
  }

  void skip_line_comment() {
    const int start_line = line;
    const bool alone = last_token_line != start_line;
    std::size_t begin = i;
    while (i < src.size() && src[i] != '\n') ++i;
    handle_directive(src.substr(begin, i - begin), start_line, alone);
  }

  void skip_block_comment() {
    const int start_line = line;
    const bool alone = last_token_line != start_line;
    std::size_t begin = i;
    bump();  // '/'
    bump();  // '*'
    while (i < src.size() && !(peek() == '*' && peek(1) == '/')) bump();
    if (i < src.size()) {
      bump();
      bump();
    }
    handle_directive(src.substr(begin, i - begin), start_line, alone);
  }

  void skip_string() {
    const int start_line = line;
    bump();  // opening quote
    const std::size_t begin = i;
    while (i < src.size() && peek() != '"') {
      if (peek() == '\\' && i + 1 < src.size()) bump();
      bump();
    }
    out.strings.push_back({std::string(src.substr(begin, i - begin)),
                           start_line, out.tokens.size()});
    if (i < src.size()) bump();
  }

  void skip_raw_string() {
    // R"delim( ... )delim"
    bump();  // R already consumed by caller; this is '"'
    std::string delim;
    while (i < src.size() && peek() != '(') {
      delim.push_back(peek());
      bump();
    }
    const std::string close = ")" + delim + "\"";
    while (i < src.size() && src.substr(i, close.size()) != close) bump();
    for (std::size_t k = 0; k < close.size() && i < src.size(); ++k) bump();
  }

  void skip_char_literal() {
    bump();  // opening '
    while (i < src.size() && peek() != '\'') {
      if (peek() == '\\' && i + 1 < src.size()) bump();
      bump();
    }
    if (i < src.size()) bump();
  }

  void skip_preprocessor() {
    // Skip to end of line, honoring backslash continuations and comments.
    while (i < src.size()) {
      if (peek() == '\\' && peek(1) == '\n') {
        bump();
        bump();
        continue;
      }
      if (peek() == '/' && peek(1) == '/') {
        skip_line_comment();
        return;
      }
      if (peek() == '/' && peek(1) == '*') {
        skip_block_comment();
        continue;
      }
      if (peek() == '\n') return;
      bump();
    }
  }

  void lex_number() {
    const int start_line = line;
    std::size_t begin = i;
    while (i < src.size()) {
      const char c = peek();
      if (ident_char(c) || c == '.' || c == '\'') {
        bump();
      } else if ((c == '+' || c == '-') && i > begin) {
        const char prev = src[i - 1];
        if (prev == 'e' || prev == 'E' || prev == 'p' || prev == 'P') {
          bump();
        } else {
          break;
        }
      } else {
        break;
      }
    }
    out.tokens.push_back(
        {Kind::Number, std::string(src.substr(begin, i - begin)), start_line});
    last_token_line = start_line;
  }

  void run() {
    bool at_line_start = true;
    while (i < src.size()) {
      const char c = peek();
      if (c == '\n') {
        bump();
        at_line_start = true;
        continue;
      }
      if (std::isspace(static_cast<unsigned char>(c))) {
        bump();
        continue;
      }
      if (c == '#' && at_line_start) {
        skip_preprocessor();
        continue;
      }
      at_line_start = false;
      if (c == '/' && peek(1) == '/') {
        skip_line_comment();
        continue;
      }
      if (c == '/' && peek(1) == '*') {
        skip_block_comment();
        continue;
      }
      if (c == '"') {
        skip_string();
        continue;
      }
      if (c == '\'') {
        skip_char_literal();
        continue;
      }
      if (c == 'R' && peek(1) == '"') {
        bump();  // 'R'
        skip_raw_string();
        continue;
      }
      if (ident_start(c)) {
        const int start_line = line;
        std::size_t begin = i;
        while (i < src.size() && ident_char(peek())) bump();
        out.tokens.push_back({Kind::Ident,
                              std::string(src.substr(begin, i - begin)),
                              start_line});
        last_token_line = start_line;
        continue;
      }
      if (std::isdigit(static_cast<unsigned char>(c))) {
        lex_number();
        continue;
      }
      out.tokens.push_back({Kind::Punct, std::string(1, c), line});
      last_token_line = line;
      bump();
    }
    if (open_trusted >= 0) {
      out.supp.trusted.emplace_back(open_trusted, line);  // to end of file
    }
  }
};

}  // namespace

bool Suppressions::trusted_line(int line) const {
  return std::any_of(trusted.begin(), trusted.end(), [line](auto r) {
    return line >= r.first && line <= r.second;
  });
}

bool Suppressions::suppressed(const std::string& rule, int line) const {
  auto it = by_line.find(line);
  return it != by_line.end() && it->second.count(rule) > 0;
}

TokenizedFile tokenize(std::string_view source) {
  Lexer lexer(source);
  lexer.run();
  return std::move(lexer.out);
}

std::size_t matching_close(const std::vector<Token>& toks,
                           std::size_t open_idx, std::string_view open,
                           std::string_view close) {
  int depth = 0;
  for (std::size_t k = open_idx; k < toks.size(); ++k) {
    if (toks[k].kind != Kind::Punct) continue;
    if (toks[k].text == open) {
      ++depth;
    } else if (toks[k].text == close) {
      if (--depth == 0) return k;
    }
  }
  return static_cast<std::size_t>(-1);
}

}  // namespace dpnet::lint
