// dpnet-lint CLI: walks a dpnet source tree and reports privacy-invariant
// violations.  Exit status is nonzero iff findings exist, so the binary
// doubles as the `dpnet_lint_repo` CTest test and a CI gate.
//
// Usage: dpnet_lint [options] [repo_root]      (default root: cwd)
//   --sarif <out.sarif>   also write findings as SARIF 2.1.0
//   --cache <file>        incremental cache (content-hash + graph digest)
//   --jobs N              scan worker threads (default: hardware)

#include <algorithm>
#include <cstdlib>
#include <filesystem>
#include <fstream>
#include <iostream>
#include <sstream>
#include <string>
#include <vector>

#include "dpnet_lint/lint.hpp"

namespace fs = std::filesystem;

namespace {

std::string slurp(const fs::path& p) {
  std::ifstream in(p, std::ios::binary);
  std::ostringstream out;
  out << in.rdbuf();
  return std::move(out).str();
}

}  // namespace

int main(int argc, char** argv) {
  std::string sarif_path;
  dpnet::lint::RepoOptions options;
  fs::path root = fs::current_path();
  for (int a = 1; a < argc; ++a) {
    const std::string arg = argv[a];
    if (arg == "--sarif" && a + 1 < argc) {
      sarif_path = argv[++a];
    } else if (arg == "--cache" && a + 1 < argc) {
      options.cache_path = argv[++a];
    } else if (arg == "--jobs" && a + 1 < argc) {
      options.jobs = static_cast<std::size_t>(std::atol(argv[++a]));
    } else if (!arg.empty() && arg.front() == '-') {
      std::cerr << "dpnet_lint: unknown option: " << arg << "\n";
      return 2;
    } else {
      root = fs::path(arg);
    }
  }
  if (!fs::is_directory(root)) {
    std::cerr << "dpnet_lint: not a directory: " << root << "\n";
    return 2;
  }

  std::vector<dpnet::lint::FileInput> files;
  for (const char* top : {"src", "tests", "bench", "examples", "tools"}) {
    const fs::path dir = root / top;
    if (!fs::is_directory(dir)) continue;
    for (const auto& entry : fs::recursive_directory_iterator(dir)) {
      if (!entry.is_regular_file()) continue;
      std::string rel =
          fs::relative(entry.path(), root).generic_string();
      if (dpnet::lint::wants_file(rel)) {
        files.push_back({std::move(rel), slurp(entry.path())});
      }
    }
  }
  std::sort(files.begin(), files.end(),
            [](const auto& a, const auto& b) { return a.path < b.path; });

  const dpnet::lint::RepoReport report =
      dpnet::lint::analyze_repo(files, options);
  for (const auto& f : report.findings) {
    std::cout << dpnet::lint::format(f) << "\n";
  }
  if (!sarif_path.empty()) {
    std::ofstream out(sarif_path, std::ios::trunc);
    out << dpnet::lint::to_sarif(report.findings);
    if (!out) {
      std::cerr << "dpnet_lint: cannot write " << sarif_path << "\n";
      return 2;
    }
  }

  if (!report.findings.empty()) {
    std::cerr << "dpnet-lint: " << report.findings.size()
              << " finding(s) in " << report.files << " files\n";
    return 1;
  }
  std::cout << "dpnet-lint: OK (" << report.files << " files clean, "
            << report.cache_hits << " cached)\n";
  return 0;
}
