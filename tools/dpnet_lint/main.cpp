// dpnet-lint CLI: walks a dpnet source tree and reports privacy-invariant
// violations.  Exit status is nonzero iff findings exist, so the binary
// doubles as the `dpnet_lint_repo` CTest test and a CI gate.
//
// Usage: dpnet_lint [repo_root]      (default: current directory)

#include <algorithm>
#include <filesystem>
#include <fstream>
#include <iostream>
#include <sstream>
#include <string>
#include <vector>

#include "dpnet_lint/lint.hpp"

namespace fs = std::filesystem;

namespace {

std::string slurp(const fs::path& p) {
  std::ifstream in(p, std::ios::binary);
  std::ostringstream out;
  out << in.rdbuf();
  return std::move(out).str();
}

}  // namespace

int main(int argc, char** argv) {
  const fs::path root = argc > 1 ? fs::path(argv[1]) : fs::current_path();
  if (!fs::is_directory(root)) {
    std::cerr << "dpnet_lint: not a directory: " << root << "\n";
    return 2;
  }

  std::vector<std::string> files;
  for (const char* top : {"src", "tests", "bench", "examples", "tools"}) {
    const fs::path dir = root / top;
    if (!fs::is_directory(dir)) continue;
    for (const auto& entry : fs::recursive_directory_iterator(dir)) {
      if (!entry.is_regular_file()) continue;
      std::string rel =
          fs::relative(entry.path(), root).generic_string();
      if (dpnet::lint::wants_file(rel)) files.push_back(std::move(rel));
    }
  }
  std::sort(files.begin(), files.end());

  std::size_t findings = 0;
  for (const std::string& rel : files) {
    for (const auto& f :
         dpnet::lint::analyze_source(rel, slurp(root / rel))) {
      std::cout << dpnet::lint::format(f) << "\n";
      ++findings;
    }
  }

  if (findings > 0) {
    std::cerr << "dpnet-lint: " << findings << " finding(s) in "
              << files.size() << " files\n";
    return 1;
  }
  std::cout << "dpnet-lint: OK (" << files.size() << " files clean)\n";
  return 0;
}
