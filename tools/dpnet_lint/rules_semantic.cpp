// Semantic rules R9–R12: token-level dataflow over the per-file function
// table and the repo-wide charge/checkpoint index (see index.hpp and
// docs/static_analysis.md).
//
// These are lint-level analyses, deliberately coarse: name-level call
// resolution, statement-granular taint, one-call-level domination.  They
// are tuned so the invariant violations the engine cares about are caught
// while idiomatic engine code stays quiet; genuine exceptions carry a
// reviewed `// dpnet-lint: suppress(Rn)` with a rationale.
#include <cstddef>
#include <string>
#include <string_view>
#include <unordered_set>
#include <vector>

#include "dpnet_lint/index.hpp"
#include "dpnet_lint/tokenizer.hpp"

namespace dpnet::lint {

namespace {

constexpr std::size_t kNpos = static_cast<std::size_t>(-1);

bool ends_with(std::string_view s, std::string_view suffix) {
  return s.size() >= suffix.size() &&
         s.substr(s.size() - suffix.size()) == suffix;
}

bool charge_primitive(const std::string& name) {
  return name == "charge" || name == "try_charge" || name == "charge_all" ||
         name == "raise_to" || name == "try_raise_to";
}

bool checkpoint_primitive(const std::string& name) {
  return name == "checkpoint" || name == "guard_checkpoint" ||
         name == "charge_rows" || name == "guard_charge_rows";
}

/// A call that consumes privacy budget by adding calibrated noise — the
/// "release" side of the charge-before-release invariant.
bool release_call(const std::string& name) {
  return name == "laplace" || name == "two_sided_geometric" ||
         name == "gumbel" || name == "gaussian" ||
         name == "exponential_quantile" || name == "exponential_median" ||
         ends_with(name, "_mechanism");
}

/// Member names whose result is a cardinality, not record contents.
/// Counts are accounting metadata (they appear in traces as input_rows /
/// output_rows), so reading them off protected data does not taint.
bool cardinality_member(const std::string& name) {
  return name == "size" || name == "empty" || name == "count" ||
         name == "length" || name == "rows" || name == "capacity";
}

/// True when the *_unsafe accessor itself yields a cardinality (row
/// counts), not record contents.
bool cardinality_source(std::string_view name) {
  return name.find("size") != std::string_view::npos ||
         name.find("count") != std::string_view::npos ||
         name.find("rows") != std::string_view::npos;
}

/// Telemetry / serialization / exception-construction entry points a
/// tainted value must never reach.
bool sink_call(const std::string& name) {
  static const std::unordered_set<std::string> kSinks = {
      "key",        "value",   "raw",     "str",     "set_detail",
      "set_mechanism", "add_field", "counter", "gauge", "observe"};
  return kSinks.count(name) > 0 || ends_with(name, "Error");
}

/// True when the identifier at `i` is consumed only for its cardinality:
/// `x.size()`, `x->empty()`, or `x.size_unsafe()` style member reads.
bool cardinality_use(const std::vector<Token>& toks, std::size_t i) {
  std::size_t m = i + 1;
  if (m < toks.size() && toks[m].text == "-" && m + 1 < toks.size() &&
      toks[m + 1].text == ">") {
    m += 2;
  } else if (m < toks.size() && toks[m].text == ".") {
    m += 1;
  } else {
    return false;
  }
  return m < toks.size() && toks[m].kind == Kind::Ident &&
         (cardinality_member(toks[m].text) ||
          cardinality_source(toks[m].text));
}

/// Does the token range [begin, end) carry taint?  Sources: a non-
/// cardinality *_unsafe() call, or a use of an already-tainted variable.
/// A release call in the range sanitizes it — noise has been added, the
/// expression is a differentially-private output.
bool range_tainted(const std::vector<Token>& toks, std::size_t begin,
                   std::size_t end,
                   const std::unordered_set<std::string>& tainted) {
  for (std::size_t k = begin; k < end; ++k) {
    if (k < toks.size() && is_call(toks, k) && release_call(toks[k].text)) {
      return false;
    }
  }
  for (std::size_t k = begin; k < end && k < toks.size(); ++k) {
    const Token& t = toks[k];
    if (t.kind != Kind::Ident) continue;
    if (ends_with(t.text, "_unsafe") && next_is(toks, k, "(")) {
      if (cardinality_source(t.text)) continue;
      const std::size_t close = matching_close(toks, k + 1, "(", ")");
      if (close != kNpos && cardinality_use(toks, close)) continue;
      return true;
    }
    if (tainted.count(t.text) > 0 && !cardinality_use(toks, k)) return true;
  }
  return false;
}

struct Chunk {
  std::size_t begin;  // token range within the statement, exclusive of
  std::size_t end;    // the ; { } delimiters
};

/// Linear statement segmentation of a body range: chunks between ; { }
/// tokens at any nesting depth.  Coarse but exactly the granularity the
/// assignment-based taint propagation wants.
std::vector<Chunk> split_statements(const std::vector<Token>& toks,
                                    std::size_t begin, std::size_t end) {
  std::vector<Chunk> chunks;
  std::size_t start = begin;
  for (std::size_t k = begin; k < end; ++k) {
    if (toks[k].kind == Kind::Punct &&
        (toks[k].text == ";" || toks[k].text == "{" || toks[k].text == "}")) {
      if (k > start) chunks.push_back({start, k});
      start = k + 1;
    }
  }
  if (end > start) chunks.push_back({start, end});
  return chunks;
}

/// The assignment target of a statement chunk: the identifier written by
/// the first top-level `=` (or compound `op=`), or the loop variable of a
/// range-for header.  Returns the token index of the target identifier and
/// sets `*rhs_begin` to the first token of the assigned expression; kNpos
/// when the chunk assigns nothing.
std::size_t assignment_target(const std::vector<Token>& toks,
                              const Chunk& c, std::size_t* rhs_begin) {
  // Range-for header: `for ( decl : expr`
  if (toks[c.begin].kind == Kind::Ident && toks[c.begin].text == "for" &&
      next_is(toks, c.begin, "(")) {
    for (std::size_t k = c.begin + 2; k < c.end; ++k) {
      if (toks[k].kind == Kind::Punct && toks[k].text == ":" &&
          !next_is(toks, k, ":") && !prev_is(toks, k, ":") && k > c.begin &&
          toks[k - 1].kind == Kind::Ident) {
        *rhs_begin = k + 1;
        return k - 1;
      }
    }
    return kNpos;
  }
  int depth = 0;
  for (std::size_t k = c.begin; k < c.end; ++k) {
    const Token& t = toks[k];
    if (t.kind != Kind::Punct) continue;
    if (t.text == "(" || t.text == "[") ++depth;
    if (t.text == ")" || t.text == "]") --depth;
    if (depth != 0 || t.text != "=") continue;
    if (next_is(toks, k, "=")) continue;  // ==
    if (k == c.begin) return kNpos;
    const std::string& prev = toks[k - 1].text;
    if (prev == "=" || prev == "!" || prev == "<" || prev == ">") {
      continue;  // comparison / shift-assign noise
    }
    std::size_t target = k - 1;
    if (toks[target].kind == Kind::Punct &&
        (prev == "+" || prev == "-" || prev == "*" || prev == "/" ||
         prev == "%" || prev == "&" || prev == "|" || prev == "^")) {
      if (target == c.begin) return kNpos;
      --target;  // compound assignment `x += ...`
    }
    if (toks[target].kind != Kind::Ident) return kNpos;
    *rhs_begin = k + 1;
    return target;
  }
  return kNpos;
}

/// The `{` opening a lambda body, given the index of the capture list's
/// closing `]`; kNpos when no body brace is found nearby.
std::size_t lambda_body_open(const std::vector<Token>& toks,
                             std::size_t capture_close) {
  std::size_t k = capture_close + 1;
  if (k < toks.size() && toks[k].text == "(") {
    k = matching_close(toks, k, "(", ")");
    if (k == kNpos) return kNpos;
    ++k;
  }
  const std::size_t limit = std::min(toks.size(), k + 24);
  for (; k < limit; ++k) {
    if (toks[k].kind == Kind::Punct) {
      if (toks[k].text == "{") return k;
      if (toks[k].text == ";" || toks[k].text == ")") return kNpos;
    }
  }
  return kNpos;
}

// ---------------------------------------------------------------------------
// R9: *_unsafe-derived values must not reach telemetry / exception sinks
// ---------------------------------------------------------------------------

void rule_taint(const SemanticInput& in, std::vector<RawFinding>& out) {
  if (!in.cls.in_src || in.cls.allow_unsafe) return;  // tracegen is trusted
  const std::vector<Token>& toks = in.file->tokens;
  for (const FunctionDef& fn : *in.functions) {
    const auto chunks =
        split_statements(toks, fn.body_begin + 1, fn.body_end);
    std::unordered_set<std::string> tainted;
    // Bounded fixpoint: taint flows forward through assignments; a few
    // passes cover the re-assignments a single body realistically has.
    for (int pass = 0; pass < 8; ++pass) {
      bool changed = false;
      for (const Chunk& c : chunks) {
        std::size_t rhs = kNpos;
        const std::size_t target = assignment_target(toks, c, &rhs);
        if (target == kNpos || rhs == kNpos) continue;
        if (tainted.count(toks[target].text) > 0) continue;
        if (range_tainted(toks, rhs, c.end, tainted)) {
          tainted.insert(toks[target].text);
          changed = true;
        }
      }
      if (!changed) break;
    }
    for (std::size_t k = fn.body_begin + 1; k < fn.body_end; ++k) {
      if (!is_call(toks, k) || !sink_call(toks[k].text)) continue;
      const std::size_t close = matching_close(toks, k + 1, "(", ")");
      if (close == kNpos) continue;
      if (range_tainted(toks, k + 2, close, tainted)) {
        out.push_back(
            {"R9", toks[k].line,
             "value derived from a *_unsafe() accessor reaches '" +
                 toks[k].text +
                 "()'; telemetry and exception text carry accounting "
                 "metadata only, never record contents — noise the value "
                 "first or drop the field (docs/observability.md)"});
      }
    }
  }
}

// ---------------------------------------------------------------------------
// R10: charge-before-release
// ---------------------------------------------------------------------------

void rule_charge_before_release(const SemanticInput& in,
                                std::vector<RawFinding>& out) {
  if (!in.cls.in_src || in.cls.is_noise || in.cls.allow_unsafe) return;
  const std::vector<Token>& toks = in.file->tokens;
  for (const FunctionDef& fn : *in.functions) {
    // A function handed a NoiseSource draws on its caller's behalf; the
    // caller owns the charge (the mechanism primitives are the canonical
    // case — see docs/privacy_accounting.md).
    if (fn.takes_noise_source) continue;
    for (std::size_t k = fn.body_begin + 1; k < fn.body_end; ++k) {
      if (!is_call(toks, k) || !release_call(toks[k].text)) continue;
      bool charged = false;
      for (std::size_t j = fn.body_begin + 1; j < k; ++j) {
        if (!is_call(toks, j)) continue;
        if (charge_primitive(toks[j].text) ||
            in.graph->charges(toks[j].text)) {
          charged = true;
          break;
        }
      }
      if (!charged) {
        out.push_back(
            {"R10", toks[k].line,
             "release '" + toks[k].text +
                 "()' is not preceded by a budget charge in '" + fn.name +
                 "'; charge-before-release is the accounting invariant — "
                 "call try_charge/charge (or a charging helper like "
                 "release()) before drawing noise "
                 "(docs/privacy_accounting.md)"});
      }
    }
  }
}

// ---------------------------------------------------------------------------
// R11: loops in executor / materialization code contain a guard checkpoint
// ---------------------------------------------------------------------------

void rule_checkpoint_coverage(const SemanticInput& in,
                              std::vector<RawFinding>& out) {
  if (!in.cls.in_src) return;
  const std::vector<Token>& toks = in.file->tokens;
  // Loops below this many body tokens are bookkeeping (join loops, small
  // fixed sweeps), not row-scaled work.
  constexpr std::size_t kTrivialBody = 16;
  for (const FunctionDef& fn : *in.functions) {
    const bool covered =
        in.cls.in_exec ||
        fn.name.find("materialize") != std::string::npos;
    if (!covered) continue;
    for (std::size_t k = fn.body_begin + 1; k < fn.body_end; ++k) {
      const Token& t = toks[k];
      if (t.kind != Kind::Ident) continue;
      std::size_t body_open = kNpos;
      if ((t.text == "for" || t.text == "while") && next_is(toks, k, "(")) {
        const std::size_t close = matching_close(toks, k + 1, "(", ")");
        if (close == kNpos || !next_is(toks, close, "{")) continue;
        body_open = close + 1;
      } else if (t.text == "do" && next_is(toks, k, "{")) {
        body_open = k + 1;
      } else {
        continue;
      }
      const std::size_t body_close =
          matching_close(toks, body_open, "{", "}");
      if (body_close == kNpos) continue;
      if (body_close - body_open - 1 < kTrivialBody) continue;
      bool has_checkpoint = false;
      for (std::size_t j = body_open + 1; j < body_close; ++j) {
        if (is_call(toks, j) && (checkpoint_primitive(toks[j].text) ||
                                 in.graph->checkpoints(toks[j].text))) {
          has_checkpoint = true;
          break;
        }
      }
      if (!has_checkpoint) {
        out.push_back(
            {"R11", t.line,
             "loop in '" + fn.name +
                 "' has no guard checkpoint; row-scaled loops in executor "
                 "and materialization code must call checkpoint()/"
                 "charge_rows() (or a helper that does) so deadline and "
                 "cancellation guards fire mid-query "
                 "(docs/robustness.md)"});
      }
    }
  }
}

// ---------------------------------------------------------------------------
// R12: no NoiseSource captured into lambdas handed to the executor
// ---------------------------------------------------------------------------

void rule_noise_capture(const SemanticInput& in,
                        std::vector<RawFinding>& out) {
  if (!in.cls.in_src) return;
  const std::vector<Token>& toks = in.file->tokens;

  // Names bound to a NoiseSource in this file: declared with the type
  // (`NoiseSource& noise`, `const NoiseSource local`) or assigned from a
  // fork (`auto local = noise.fork(id)`).
  std::unordered_set<std::string> noise_vars;
  for (std::size_t k = 0; k + 1 < toks.size(); ++k) {
    if (toks[k].kind != Kind::Ident || toks[k].text != "NoiseSource") {
      continue;
    }
    std::size_t m = k + 1;
    while (m < toks.size() &&
           ((toks[m].kind == Kind::Punct &&
             (toks[m].text == "&" || toks[m].text == "*")) ||
            (toks[m].kind == Kind::Ident && toks[m].text == "const"))) {
      ++m;
    }
    if (m < toks.size() && toks[m].kind == Kind::Ident &&
        !next_is(toks, m, ":")) {
      noise_vars.insert(toks[m].text);
    }
  }
  const auto chunks = split_statements(toks, 0, toks.size());
  for (const Chunk& c : chunks) {
    std::size_t rhs = kNpos;
    const std::size_t target = assignment_target(toks, c, &rhs);
    if (target == kNpos || rhs == kNpos) continue;
    for (std::size_t k = rhs; k < c.end; ++k) {
      if (toks[k].kind == Kind::Ident && toks[k].text == "fork" &&
          next_is(toks, k, "(")) {
        noise_vars.insert(toks[target].text);
        break;
      }
    }
  }
  if (noise_vars.empty()) return;

  for (std::size_t k = 0; k + 1 < toks.size(); ++k) {
    if (!is_call(toks, k)) continue;
    if (toks[k].text != "map_parts" && toks[k].text != "submit") continue;
    const std::size_t close = matching_close(toks, k + 1, "(", ")");
    if (close == kNpos) continue;
    for (std::size_t j = k + 2; j < close; ++j) {
      if (toks[j].kind != Kind::Punct || toks[j].text != "[") continue;
      if (!prev_is(toks, j, "(") && !prev_is(toks, j, ",")) continue;
      const std::size_t cap_close = matching_close(toks, j, "[", "]");
      if (cap_close == kNpos || cap_close > close) continue;
      bool default_capture = false;
      std::string captured;
      // Walk capture entries (top-level comma separated).  An init-capture
      // (`local = noise.fork(id)`) is the blessed pattern: the initializer
      // runs at enqueue time on the submitting thread and the lambda owns
      // a per-part fork — skip those entries entirely.
      std::size_t entry = j + 1;
      int depth = 0;
      for (std::size_t m = j + 1; m <= cap_close; ++m) {
        const Token& t = toks[m];
        if (t.kind == Kind::Punct) {
          if (t.text == "(" || t.text == "[" || t.text == "{") ++depth;
          if (t.text == ")" || t.text == "]" || t.text == "}") --depth;
        }
        const bool boundary =
            m == cap_close ||
            (t.kind == Kind::Punct && t.text == "," && depth == 0);
        if (!boundary) continue;
        const std::size_t b = entry;
        const std::size_t e = m;
        entry = m + 1;
        if (e <= b) continue;
        const std::size_t len = e - b;
        if (len == 1 && toks[b].kind == Kind::Punct &&
            (toks[b].text == "&" || toks[b].text == "=")) {
          default_capture = true;  // [&] / [=]
          continue;
        }
        bool init_capture = false;
        for (std::size_t x = b; x < e; ++x) {
          if (toks[x].kind == Kind::Punct && toks[x].text == "=") {
            init_capture = true;
            break;
          }
        }
        if (init_capture) continue;
        // `&var` (by reference) or bare `var` (by value — a copied
        // generator re-draws the same stream): both break fork discipline.
        std::size_t name = b;
        if (toks[name].kind == Kind::Punct && toks[name].text == "&") ++name;
        if (name < e && toks[name].kind == Kind::Ident &&
            noise_vars.count(toks[name].text) > 0) {
          captured = toks[name].text;
        }
      }
      if (captured.empty() && default_capture) {
        const std::size_t body_open = lambda_body_open(toks, cap_close);
        if (body_open != kNpos) {
          const std::size_t body_close =
              matching_close(toks, body_open, "{", "}");
          for (std::size_t m = body_open + 1;
               body_close != kNpos && m < body_close; ++m) {
            if (toks[m].kind == Kind::Ident &&
                noise_vars.count(toks[m].text) > 0) {
              captured = toks[m].text;
              break;
            }
          }
        }
      }
      if (!captured.empty()) {
        out.push_back(
            {"R12", toks[j].line,
             "NoiseSource '" + captured + "' captured into a lambda "
                 "handed to '" + toks[k].text +
                 "'; per-part draws must come from node-id-seeded forks "
                 "(fork an owned source inside the lambda or init-capture "
                 "a fork) so noise is schedule-independent "
                 "(docs/architecture.md)"});
      }
      j = cap_close;
    }
  }
}

}  // namespace

std::vector<RawFinding> run_semantic_rules(const SemanticInput& in) {
  std::vector<RawFinding> out;
  rule_taint(in, out);
  rule_charge_before_release(in, out);
  rule_checkpoint_coverage(in, out);
  rule_noise_capture(in, out);
  return out;
}

}  // namespace dpnet::lint
