// dpnet-lint: privacy-invariant static analysis for the dpnet source tree.
//
// The engine enforces the repo conventions that keep untrusted analyst code
// on the right side of the privacy curtain (see docs/static_analysis.md):
//
//   R1  *_unsafe() accessors only in trusted code (tests/, bench/,
//       src/tracegen/, or a `// dpnet-lint: trusted` region).
//   R2  no direct <random> engines / rand() outside src/core/noise.* —
//       randomness flows through core::NoiseSource.
//   R3  public aggregation and Queryable-returning declarations in src/
//       headers carry [[nodiscard]].
//   R4  no raw owning new/delete/malloc anywhere.
//   R5  no hard-coded positive epsilon literals in src/ — accuracy levels
//       are supplied by the caller's budget policy.
//   R6  telemetry files (core trace/metrics/audit serializers, the bench
//       report, the CLI) may only pass approved field names to JsonWriter
//       key() — telemetry carries accounting metadata, never record
//       contents (see docs/observability.md for the field list).
//   R7  no std::thread / std::jthread / std::async creation outside
//       src/core/exec/ — parallelism flows through the executor.
//   R8  no what() reads inside src/ — exception text stays behind the
//       privacy boundary (core/errors.hpp carries sanitized errors).
//
// Semantic rules (token-level dataflow over the per-file symbol table and
// the repo-wide function index — docs/static_analysis.md):
//
//   R9  taint: a value derived (transitively, through assignments) from a
//       *_unsafe() result may not reach a telemetry/JSON/metrics/
//       exception-message sink.
//   R10 charge-before-release: a release site (NoiseSource mechanism draw
//       or *_mechanism call) must be preceded in its function by a budget
//       charge — directly or via a function the index knows charges —
//       unless the function takes the NoiseSource as a parameter (then
//       the caller owns the obligation).
//   R11 checkpoint coverage: non-trivial loops in src/core/exec/ and
//       materialization code contain a guard checkpoint (directly or via
//       a function the index knows checkpoints).
//   R12 noise-fork discipline: no NoiseSource captured into a lambda
//       handed to map_parts/submit — per-release forks only, so draws
//       stay schedule-independent.
//
// Suppression syntax:
//   // dpnet-lint: trusted          start of a trusted region (R1, R2)
//   // dpnet-lint: end-trusted      end of a trusted region
//   // dpnet-lint: suppress(R4)     suppress listed rules on this line (or
//                                   the next line when the comment stands
//                                   alone); comma-separate multiple rules.
#pragma once

#include <cstddef>
#include <string>
#include <string_view>
#include <vector>

namespace dpnet::lint {

struct Finding {
  std::string file;         // repo-relative path, forward slashes
  int line = 0;             // 1-based
  std::string rule;         // "R1".."R12"
  std::string message;      // human-readable diagnostic
  std::string fingerprint;  // stable 16-hex-digit identity: hashes the
                            // rule, file, and the finding line's token
                            // text (plus an occurrence ordinal), so it
                            // survives unrelated edits that move lines
};

/// Registered rule metadata — the single source of truth the SARIF
/// driver section and the docs-consistency test both read.
struct RuleMeta {
  std::string_view id;       // "R1".."R12"
  std::string_view summary;  // one-line description
};

[[nodiscard]] const std::vector<RuleMeta>& rule_table();

/// True if `rel_path` is a C++ source the linter should scan.  The lint
/// fixture corpus under tests/lint/corpus/ is excluded: it exists to
/// exercise the rules and deliberately violates them.
[[nodiscard]] bool wants_file(std::string_view rel_path);

/// Runs every rule over one file's contents.  `rel_path` must be
/// repo-relative with forward slashes ("src/core/noise.cpp"); the path
/// decides which rules apply and which trusted directories are exempt.
/// The function/call index is built from this file alone — repo-wide
/// resolution needs analyze_repo().
[[nodiscard]] std::vector<Finding> analyze_source(std::string_view rel_path,
                                                  std::string_view content);

// ---------------------------------------------------------------------------
// Whole-repo scanning (parallel, incrementally cached)
// ---------------------------------------------------------------------------

struct FileInput {
  std::string path;     // repo-relative, forward slashes
  std::string content;
};

struct RepoOptions {
  /// Worker threads for the scan; 0 = hardware concurrency.
  std::size_t jobs = 0;
  /// Path of the incremental cache file; empty disables caching.  The
  /// cache keys on (content hash, repo-wide charge-graph digest) and
  /// stores per-file findings plus the function facts needed to rebuild
  /// the index without re-tokenizing unchanged files.
  std::string cache_path;
};

struct RepoReport {
  std::vector<Finding> findings;  // sorted by (file, line, rule)
  std::size_t files = 0;          // files scanned
  std::size_t cache_hits = 0;     // files whose findings came from cache
  std::size_t analyzed = 0;       // files analyzed from scratch
};

/// Scans every input with the full rule set, building the repo-wide
/// function/call index across all of them first.  Deterministic: the
/// report is identical at any job count and on cold or warm cache.
[[nodiscard]] RepoReport analyze_repo(const std::vector<FileInput>& files,
                                      const RepoOptions& options = {});

/// "file:line: [rule] message" — the diagnostic format the CLI prints.
[[nodiscard]] std::string format(const Finding& finding);

/// Serializes findings as a SARIF 2.1.0 document (GitHub code-scanning
/// compatible): one run, driver "dpnet-lint", rule metadata from
/// rule_table(), one result per finding with a partialFingerprints entry
/// carrying the stable fingerprint.
[[nodiscard]] std::string to_sarif(const std::vector<Finding>& findings);

}  // namespace dpnet::lint
