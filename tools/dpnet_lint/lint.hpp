// dpnet-lint: privacy-invariant static analysis for the dpnet source tree.
//
// The engine enforces the repo conventions that keep untrusted analyst code
// on the right side of the privacy curtain (see docs/static_analysis.md):
//
//   R1  *_unsafe() accessors only in trusted code (tests/, bench/,
//       src/tracegen/, or a `// dpnet-lint: trusted` region).
//   R2  no direct <random> engines / rand() outside src/core/noise.* —
//       randomness flows through core::NoiseSource.
//   R3  public aggregation and Queryable-returning declarations in src/
//       headers carry [[nodiscard]].
//   R4  no raw owning new/delete/malloc anywhere.
//   R5  no hard-coded positive epsilon literals in src/ — accuracy levels
//       are supplied by the caller's budget policy.
//   R6  telemetry files (core trace/metrics/audit serializers, the bench
//       report, the CLI) may only pass approved field names to JsonWriter
//       key() — telemetry carries accounting metadata, never record
//       contents (see docs/observability.md for the field list).
//
// Suppression syntax:
//   // dpnet-lint: trusted          start of a trusted region (R1, R2)
//   // dpnet-lint: end-trusted      end of a trusted region
//   // dpnet-lint: suppress(R4)     suppress listed rules on this line (or
//                                   the next line when the comment stands
//                                   alone); comma-separate multiple rules.
#pragma once

#include <string>
#include <string_view>
#include <vector>

namespace dpnet::lint {

struct Finding {
  std::string file;     // repo-relative path, forward slashes
  int line = 0;         // 1-based
  std::string rule;     // "R1".."R6"
  std::string message;  // human-readable diagnostic
};

/// True if `rel_path` is a C++ source the linter should scan.
[[nodiscard]] bool wants_file(std::string_view rel_path);

/// Runs every rule over one file's contents.  `rel_path` must be
/// repo-relative with forward slashes ("src/core/noise.cpp"); the path
/// decides which rules apply and which trusted directories are exempt.
[[nodiscard]] std::vector<Finding> analyze_source(std::string_view rel_path,
                                                  std::string_view content);

/// "file:line: [rule] message" — the diagnostic format the CLI prints.
[[nodiscard]] std::string format(const Finding& finding);

}  // namespace dpnet::lint
