// SARIF 2.1.0 export for dpnet-lint findings.
//
// The document targets GitHub code scanning: one run, driver "dpnet-lint",
// rule metadata from rule_table(), one result per finding.  Each result
// carries the finding's stable fingerprint under partialFingerprints so
// baselining survives unrelated edits that shift line numbers.
#include <cstdint>
#include <unordered_map>

#include "core/json.hpp"
#include "dpnet_lint/index.hpp"
#include "dpnet_lint/lint.hpp"

namespace dpnet::lint {

std::string to_sarif(const std::vector<Finding>& findings) {
  std::unordered_map<std::string_view, std::uint64_t> rule_index;
  core::JsonWriter w;
  w.begin_object();
  w.key("$schema").value(
      "https://raw.githubusercontent.com/oasis-tcs/sarif-spec/master/"
      "Schemata/sarif-schema-2.1.0.json");
  w.key("version").value("2.1.0");
  w.key("runs").begin_array();
  w.begin_object();

  w.key("tool").begin_object();
  w.key("driver").begin_object();
  w.key("name").value("dpnet-lint");
  w.key("informationUri").value("docs/static_analysis.md");
  w.key("rules").begin_array();
  for (const RuleMeta& rule : rule_table()) {
    rule_index.emplace(rule.id, rule_index.size());
    w.begin_object();
    w.key("id").value(rule.id);
    w.key("shortDescription").begin_object();
    w.key("text").value(rule.summary);
    w.end_object();
    w.key("defaultConfiguration").begin_object();
    w.key("level").value("error");
    w.end_object();
    w.end_object();
  }
  w.end_array();  // rules
  w.end_object();  // driver
  w.end_object();  // tool

  w.key("results").begin_array();
  for (const Finding& f : findings) {
    w.begin_object();
    w.key("ruleId").value(f.rule);
    const auto it = rule_index.find(f.rule);
    if (it != rule_index.end()) {
      w.key("ruleIndex").value(it->second);
    }
    w.key("level").value("error");
    w.key("message").begin_object();
    w.key("text").value(f.message);
    w.end_object();
    w.key("locations").begin_array();
    w.begin_object();
    w.key("physicalLocation").begin_object();
    w.key("artifactLocation").begin_object();
    w.key("uri").value(f.file);
    w.key("uriBaseId").value("SRCROOT");
    w.end_object();
    w.key("region").begin_object();
    w.key("startLine").value(static_cast<std::int64_t>(f.line));
    w.end_object();
    w.end_object();  // physicalLocation
    w.end_object();
    w.end_array();  // locations
    w.key("partialFingerprints").begin_object();
    w.key("dpnetLintFingerprint/v1").value(f.fingerprint);
    w.end_object();
    w.end_object();
  }
  w.end_array();  // results

  w.end_object();  // run
  w.end_array();   // runs
  w.end_object();
  return w.str();
}

}  // namespace dpnet::lint
