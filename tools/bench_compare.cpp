// Regression gate for the BENCH_*.json artifacts: diffs a fresh bench
// run against the checked-in baselines under bench/baselines/.
//
//   bench_compare [--time-threshold F] --baseline-dir DIR <report.json>...
//   bench_compare --update-baselines   --baseline-dir DIR <report.json>...
//
// Row-matching is by (section, key).  Three comparison regimes:
//
//   * performance rows (key mentions wall/ms/overhead: lower is better;
//     speedup/throughput: higher is better) are compared against a
//     relative threshold (--time-threshold, default 0.15) — wall time is
//     machine-dependent, so the gate only trips on real regressions;
//   * every other numeric row is exact (1e-9 relative): the engine's
//     determinism contract makes noisy results byte-stable for a fixed
//     seed, so any drift is a behavior change, not jitter;
//   * the accounting cross-checks (trace eps_charged sum, audit ledger
//     spend, executor thread count) are exact — privacy spend must never
//     move silently.
//
// A report with no baseline fails loudly and points at the refresh
// workflow (EXPERIMENTS.md): rerun with --update-baselines and commit.
// Exit 0 iff every report passes; each failure prints one line.
#include <cmath>
#include <cstdio>
#include <cstring>
#include <fstream>
#include <sstream>
#include <string>
#include <vector>

#include "core/json.hpp"

namespace {

using dpnet::core::JsonValue;

int failures = 0;
const char* current_file = "";

void fail(const std::string& why) {
  std::fprintf(stderr, "%s: %s\n", current_file, why.c_str());
  ++failures;
}

bool contains(const std::string& s, const char* needle) {
  return s.find(needle) != std::string::npos;
}

enum class Regime { kLowerBetter, kHigherBetter, kExact };

/// Picks the comparison regime from the row key.  Anything that smells
/// like a duration or an overhead is machine-dependent and lower-better;
/// speedups/throughputs are machine-dependent and higher-better; the
/// rest is covered by the determinism contract and compared exactly.
Regime regime_for(const std::string& key) {
  if (contains(key, "speedup") || contains(key, "throughput")) {
    return Regime::kHigherBetter;
  }
  if (contains(key, "wall") || contains(key, "_ms") ||
      contains(key, " ms") || contains(key, "overhead") ||
      contains(key, " s)") || contains(key, "seconds")) {
    return Regime::kLowerBetter;
  }
  return Regime::kExact;
}

struct NumericRow {
  std::string section;
  std::string key;
  double value = 0.0;
};

std::vector<NumericRow> numeric_rows(const JsonValue& doc) {
  std::vector<NumericRow> rows;
  const JsonValue* results = doc.find("results");
  if (results == nullptr || !results->is_array()) return rows;
  for (const JsonValue& row : results->array) {
    if (!row.is_object()) continue;
    const JsonValue* section = row.find("section");
    const JsonValue* key = row.find("key");
    const JsonValue* value = row.find("value");
    if (section == nullptr || key == nullptr || value == nullptr) continue;
    if (!section->is_string() || !key->is_string() || !value->is_number()) {
      continue;  // text rows and paper/measured comparisons are not gated
    }
    rows.push_back({section->string, key->string, value->number});
  }
  return rows;
}

const NumericRow* find_row(const std::vector<NumericRow>& rows,
                           const NumericRow& like) {
  for (const NumericRow& r : rows) {
    if (r.section == like.section && r.key == like.key) return &r;
  }
  return nullptr;
}

/// Sum of eps_charged over the report's trace spans (0 when untraced).
double trace_eps_sum(const JsonValue& span) {
  double total = 0.0;
  const JsonValue* charged = span.find("eps_charged");
  if (charged != nullptr && charged->is_number()) total = charged->number;
  const JsonValue* children = span.find("children");
  if (children != nullptr && children->is_array()) {
    for (const JsonValue& child : children->array) {
      total += trace_eps_sum(child);
    }
  }
  return total;
}

double doc_trace_eps(const JsonValue& doc) {
  const JsonValue* trace = doc.find("trace");
  if (trace == nullptr || trace->is_null()) return 0.0;
  const JsonValue* spans = trace->find("spans");
  if (spans == nullptr || !spans->is_array()) return 0.0;
  double total = 0.0;
  for (const JsonValue& span : spans->array) total += trace_eps_sum(span);
  return total;
}

double doc_audit_spent(const JsonValue& doc) {
  const JsonValue* audit = doc.find("audit");
  if (audit == nullptr || audit->is_null()) return 0.0;
  const JsonValue* spent = audit->find("spent");
  return (spent != nullptr && spent->is_number()) ? spent->number : 0.0;
}

bool exact_match(double baseline, double current) {
  return std::abs(current - baseline) <=
         1e-9 * std::max(1.0, std::abs(baseline));
}

void compare_reports(const JsonValue& baseline, const JsonValue& current,
                     double time_threshold) {
  const std::vector<NumericRow> base_rows = numeric_rows(baseline);
  const std::vector<NumericRow> cur_rows = numeric_rows(current);

  for (const NumericRow& base : base_rows) {
    const NumericRow* cur = find_row(cur_rows, base);
    if (cur == nullptr) {
      fail("metric disappeared: [" + base.section + "] " + base.key);
      continue;
    }
    char line[512];
    // Percentage rows (the < 2% overhead promises) sit near zero, where a
    // multiplicative band is meaningless — a 0.1% -> 0.4% wobble is noise,
    // not a 4x regression.  They get absolute slack up to the promised
    // bound instead; the promise itself is bench_schema_check's gate.
    const double slack = contains(base.key, "pct") ? 2.0 : 1e-9;
    switch (regime_for(base.key)) {
      case Regime::kLowerBetter:
        if (cur->value > base.value * (1.0 + time_threshold) &&
            cur->value - base.value > slack) {
          std::snprintf(line, sizeof line,
                        "regression: [%s] %s rose %.6g -> %.6g "
                        "(limit +%.0f%%)",
                        base.section.c_str(), base.key.c_str(), base.value,
                        cur->value, time_threshold * 100.0);
          fail(line);
        }
        break;
      case Regime::kHigherBetter:
        if (cur->value < base.value * (1.0 - time_threshold)) {
          std::snprintf(line, sizeof line,
                        "regression: [%s] %s fell %.6g -> %.6g "
                        "(limit -%.0f%%)",
                        base.section.c_str(), base.key.c_str(), base.value,
                        cur->value, time_threshold * 100.0);
          fail(line);
        }
        break;
      case Regime::kExact:
        if (!exact_match(base.value, cur->value)) {
          std::snprintf(line, sizeof line,
                        "result drift: [%s] %s changed %.17g -> %.17g "
                        "(deterministic row, exact match required)",
                        base.section.c_str(), base.key.c_str(), base.value,
                        cur->value);
          fail(line);
        }
        break;
    }
  }

  // Accounting cross-checks: privacy spend recorded by the trace and the
  // audit ledger is exact by construction — never threshold it.
  if (!exact_match(doc_trace_eps(baseline), doc_trace_eps(current))) {
    fail("trace eps_charged sum drifted from baseline");
  }
  if (!exact_match(doc_audit_spent(baseline), doc_audit_spent(current))) {
    fail("audit ledger spend drifted from baseline");
  }
  const JsonValue* base_threads = baseline.find("threads");
  const JsonValue* cur_threads = current.find("threads");
  if (base_threads != nullptr && base_threads->is_number()) {
    if (cur_threads == nullptr || !cur_threads->is_number() ||
        !exact_match(base_threads->number, cur_threads->number)) {
      fail("executor thread count changed from baseline");
    }
  }

  // Resource telemetry is machine-dependent, so it gets the same
  // thresholded treatment as wall time (skipped when the baseline
  // predates the fields): peak RSS may not grow past the threshold,
  // throughput may not fall past it.
  const JsonValue* base_rss = baseline.find("peak_rss_kb");
  const JsonValue* cur_rss = current.find("peak_rss_kb");
  if (base_rss != nullptr && base_rss->is_number() && base_rss->number > 0.0) {
    if (cur_rss == nullptr || !cur_rss->is_number()) {
      fail("'peak_rss_kb' disappeared from the report");
    } else if (cur_rss->number > base_rss->number * (1.0 + time_threshold)) {
      char line[256];
      std::snprintf(line, sizeof line,
                    "regression: peak_rss_kb rose %.6g -> %.6g (limit +%.0f%%)",
                    base_rss->number, cur_rss->number, time_threshold * 100.0);
      fail(line);
    }
  }
  const JsonValue* base_rps = baseline.find("records_per_sec");
  const JsonValue* cur_rps = current.find("records_per_sec");
  if (base_rps != nullptr && base_rps->is_number() && base_rps->number > 0.0) {
    if (cur_rps == nullptr || !cur_rps->is_number()) {
      fail("'records_per_sec' disappeared from the report");
    } else if (cur_rps->number < base_rps->number * (1.0 - time_threshold)) {
      char line[256];
      std::snprintf(line, sizeof line,
                    "regression: records_per_sec fell %.6g -> %.6g "
                    "(limit -%.0f%%)",
                    base_rps->number, cur_rps->number, time_threshold * 100.0);
      fail(line);
    }
  }
}

std::string basename_of(const std::string& path) {
  const std::size_t slash = path.find_last_of('/');
  return slash == std::string::npos ? path : path.substr(slash + 1);
}

bool read_file(const std::string& path, std::string& out) {
  std::ifstream in(path);
  if (!in) return false;
  std::ostringstream buf;
  buf << in.rdbuf();
  out = buf.str();
  return true;
}

int update_baselines(const std::string& baseline_dir,
                     const std::vector<std::string>& reports) {
  for (const std::string& report : reports) {
    std::string doc;
    if (!read_file(report, doc)) {
      std::fprintf(stderr, "%s: cannot open\n", report.c_str());
      return 1;
    }
    const std::string dest = baseline_dir + "/" + basename_of(report);
    std::ofstream out(dest);
    if (!out) {
      std::fprintf(stderr, "%s: cannot write\n", dest.c_str());
      return 1;
    }
    out << doc;
    std::printf("bench_compare: baseline updated: %s\n", dest.c_str());
  }
  return 0;
}

[[noreturn]] void usage() {
  std::fprintf(stderr,
               "usage: bench_compare [--time-threshold F] "
               "--baseline-dir DIR <report.json>...\n"
               "       bench_compare --update-baselines "
               "--baseline-dir DIR <report.json>...\n");
  std::exit(2);
}

}  // namespace

int main(int argc, char** argv) {
  std::string baseline_dir;
  double time_threshold = 0.15;
  bool update = false;
  std::vector<std::string> reports;

  for (int i = 1; i < argc; ++i) {
    const std::string arg = argv[i];
    if (arg == "--baseline-dir") {
      if (++i >= argc) usage();
      baseline_dir = argv[i];
    } else if (arg == "--time-threshold") {
      if (++i >= argc) usage();
      char* end = nullptr;
      time_threshold = std::strtod(argv[i], &end);
      if (end == argv[i] || *end != '\0' || !(time_threshold >= 0.0)) {
        std::fprintf(stderr,
                     "error: --time-threshold expects a fraction >= 0\n");
        return 2;
      }
    } else if (arg == "--update-baselines") {
      update = true;
    } else if (arg.size() >= 2 && arg[0] == '-' && arg[1] == '-') {
      std::fprintf(stderr, "error: unknown flag %s\n", arg.c_str());
      return 2;
    } else {
      reports.push_back(arg);
    }
  }
  if (baseline_dir.empty() || reports.empty()) usage();

  if (update) return update_baselines(baseline_dir, reports);

  for (const std::string& report : reports) {
    current_file = report.c_str();
    std::string cur_doc;
    if (!read_file(report, cur_doc)) {
      fail("cannot open");
      continue;
    }
    const std::string base_path = baseline_dir + "/" + basename_of(report);
    std::string base_doc;
    if (!read_file(base_path, base_doc)) {
      fail("no baseline at " + base_path +
           " — run with --update-baselines and commit the result "
           "(see EXPERIMENTS.md)");
      continue;
    }
    try {
      compare_reports(dpnet::core::parse_json(base_doc),
                      dpnet::core::parse_json(cur_doc), time_threshold);
    } catch (const std::exception& e) {
      fail(e.what());
    }
  }
  if (failures == 0) {
    std::printf("bench_compare: %zu report(s) match baselines\n",
                reports.size());
  }
  return failures == 0 ? 0 : 1;
}
