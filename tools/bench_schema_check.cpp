// Validates dpnet's machine-readable observability artifacts
// (see docs/observability.md):
//
//   bench_schema_check <artifact>...
//
// Each file is dispatched on the schema named by its first line:
//
//   dpnet.bench.v1   bench reports (BENCH_*.json)
//   dpnet.flight.v1  flight-recorder dumps (`serve --flight`)
//   dpnet.log.v1     structured ops logs (`serve --ops-log`)
//   dpnet.ops.v1     live ops snapshots (`serve --ops-snapshot`)
//
// Beyond shape checking, it verifies the accounting invariants that make
// the artifacts trustworthy: when a bench report carries both a query
// trace and an audit ledger, the spans' eps_charged must sum to the
// ledger's spend, and every "* overhead pct" result must stay under 2%;
// flight/log sequence numbers must be strictly increasing; snapshot
// percentiles must be monotone.  Exit status 0 iff every file passes;
// each failure prints one line.
#include <cmath>
#include <cstdio>
#include <fstream>
#include <sstream>
#include <string>
#include <vector>

#include "core/json.hpp"

namespace {

using dpnet::core::JsonValue;

int failures = 0;
const char* current_file = "";

void fail(const std::string& why) {
  std::fprintf(stderr, "%s: %s\n", current_file, why.c_str());
  ++failures;
}

bool require_string(const JsonValue& doc, const char* field) {
  const JsonValue* v = doc.find(field);
  if (v == nullptr || !v->is_string()) {
    fail(std::string("missing or non-string field '") + field + "'");
    return false;
  }
  return true;
}

/// Sum of eps_charged over a span subtree; checks span shape as it goes.
double check_span(const JsonValue& span) {
  if (!span.is_object()) {
    fail("trace span is not an object");
    return 0.0;
  }
  for (const char* field : {"op", "stability", "input_rows", "output_rows",
                            "eps_requested", "eps_charged", "wall_ms",
                            "children"}) {
    if (span.find(field) == nullptr) {
      fail(std::string("trace span missing '") + field + "'");
      return 0.0;
    }
  }
  if (!span.at("op").is_string() || !span.at("eps_charged").is_number() ||
      !span.at("children").is_array()) {
    fail("trace span has mistyped fields");
    return 0.0;
  }
  // Timeline stamps (ts_us/dur_us relative to the trace epoch, worker
  // lane index) are optional — pre-timeline artifacts lack them — but
  // when present they must be numeric, and -1 is the only legal negative
  // (the "not stamped" sentinel).
  for (const char* field : {"ts_us", "dur_us", "worker"}) {
    const JsonValue* v = span.find(field);
    if (v == nullptr) continue;
    if (!v->is_number()) {
      fail(std::string("trace span '") + field + "' is not numeric");
      return 0.0;
    }
    if (v->number < -1.0) {
      fail(std::string("trace span '") + field + "' below -1 sentinel");
      return 0.0;
    }
  }
  // Derived throughput (optional: only spans that recorded output rows
  // and measurable wall time carry it) must be strictly positive —
  // records_per_sec omits the field rather than emitting 0.
  if (const JsonValue* rps = span.find("records_per_sec"); rps != nullptr) {
    if (!rps->is_number() || !(rps->number > 0.0)) {
      fail("trace span 'records_per_sec' is not a positive number");
      return 0.0;
    }
  }
  double total = span.at("eps_charged").number;
  for (const JsonValue& child : span.at("children").array) {
    total += check_span(child);
  }
  return total;
}

void check_results(const JsonValue& results) {
  for (const JsonValue& row : results.array) {
    if (!row.is_object() || row.find("section") == nullptr ||
        row.find("key") == nullptr) {
      fail("result row missing section/key");
      continue;
    }
    const bool comparison =
        row.find("paper") != nullptr && row.find("measured") != nullptr;
    const JsonValue* value = row.find("value");
    if (!comparison && value == nullptr) {
      fail("result row '" + row.at("key").string +
           "' has neither value nor paper/measured");
      continue;
    }
    // Every always-on telemetry layer carries the same promise:
    // recording must cost under 2% (docs/observability.md).
    const std::string& key = row.at("key").string;
    if (key == "tracing disabled overhead pct" ||
        key == "op histogram overhead pct" ||
        key == "journal armed overhead pct" ||
        key == "flight recorder overhead pct" ||
        key == "ops log overhead pct" ||
        key == "ops snapshot overhead pct") {
      if (value == nullptr || !value->is_number()) {
        fail("overhead result is not numeric");
      } else if (!(value->number < 2.0)) {
        fail(key + " " + std::to_string(value->number) +
             "% exceeds the 2% bound");
      }
    }
  }
}

void check_report(const JsonValue& doc) {
  if (!doc.is_object()) {
    fail("document is not an object");
    return;
  }
  const JsonValue* schema = doc.find("schema");
  if (schema == nullptr || !schema->is_string() ||
      schema->string != "dpnet.bench.v1") {
    fail("schema is not \"dpnet.bench.v1\"");
    return;
  }
  require_string(doc, "name");
  require_string(doc, "title");
  require_string(doc, "reproduces");

  const JsonValue* results = doc.find("results");
  if (results == nullptr || !results->is_array()) {
    fail("missing or non-array 'results'");
  } else {
    check_results(*results);
  }

  const JsonValue* metrics = doc.find("metrics");
  if (metrics == nullptr || !metrics->is_object()) {
    fail("missing or non-object 'metrics'");
  } else {
    for (const char* field : {"counters", "gauges", "histograms"}) {
      const JsonValue* m = metrics->find(field);
      if (m == nullptr || !m->is_object()) {
        fail(std::string("metrics missing object '") + field + "'");
      }
    }
    // Percentile blocks (optional: pre-percentile artifacts lack them).
    // When present all three must be numeric and ordered — a p99 below
    // p50 means the snapshot was torn or the interpolation regressed.
    const JsonValue* hists = metrics->find("histograms");
    if (hists != nullptr && hists->is_object()) {
      for (const auto& [name, h] : hists->object) {
        if (!h.is_object()) continue;
        const JsonValue* p50 = h.find("p50");
        const JsonValue* p95 = h.find("p95");
        const JsonValue* p99 = h.find("p99");
        const int present =
            (p50 != nullptr) + (p95 != nullptr) + (p99 != nullptr);
        if (present == 0) continue;
        if (present != 3 || !p50->is_number() || !p95->is_number() ||
            !p99->is_number()) {
          fail("histogram '" + name + "' has a partial/mistyped "
               "percentile block (need numeric p50/p95/p99)");
          continue;
        }
        if (!(p50->number <= p95->number && p95->number <= p99->number)) {
          fail("histogram '" + name + "' percentiles not monotone");
        }
      }
    }
  }

  // Optional parallelism metadata: benches that ran under an ExecPolicy
  // record the thread count and the measured speedup over their own
  // single-thread run.  Either both appear or neither does.
  const JsonValue* threads = doc.find("threads");
  const JsonValue* speedup = doc.find("speedup_vs_1thread");
  if ((threads == nullptr) != (speedup == nullptr)) {
    fail("'threads' and 'speedup_vs_1thread' must appear together");
  }
  if (threads != nullptr &&
      (!threads->is_number() || threads->number < 1.0)) {
    fail("'threads' must be a number >= 1");
  }
  if (speedup != nullptr &&
      (!speedup->is_number() || !(speedup->number > 0.0))) {
    fail("'speedup_vs_1thread' must be a number > 0");
  }

  // Resource telemetry: peak_rss_kb is always written by current benches
  // (tolerated as absent for pre-telemetry artifacts); records_per_sec is
  // optional.  Both must be non-negative numbers when present.
  if (const JsonValue* rss = doc.find("peak_rss_kb"); rss != nullptr) {
    if (!rss->is_number() || rss->number < 0.0) {
      fail("'peak_rss_kb' must be a non-negative number");
    }
  }
  if (const JsonValue* rps = doc.find("records_per_sec"); rps != nullptr) {
    if (!rps->is_number() || !(rps->number > 0.0)) {
      fail("'records_per_sec' must be a number > 0");
    }
  }

  const JsonValue* trace = doc.find("trace");
  const JsonValue* audit = doc.find("audit");
  if (trace == nullptr || audit == nullptr) {
    fail("missing 'trace' or 'audit' (use null when not recorded)");
    return;
  }

  double trace_eps = 0.0;
  if (!trace->is_null()) {
    const JsonValue* spans = trace->find("spans");
    if (spans == nullptr || !spans->is_array()) {
      fail("trace missing 'spans' array");
      return;
    }
    for (const JsonValue& span : spans->array) {
      trace_eps += check_span(span);
    }
  }

  if (!audit->is_null()) {
    const JsonValue* spent = audit->find("spent");
    const JsonValue* entries = audit->find("entries");
    const JsonValue* totals = audit->find("totals_by_label");
    if (spent == nullptr || !spent->is_number() || entries == nullptr ||
        !entries->is_array() || totals == nullptr || !totals->is_object()) {
      fail("audit ledger missing spent/entries/totals_by_label");
      return;
    }
    double entry_sum = 0.0;
    for (const JsonValue& e : entries->array) {
      if (!e.is_object() || e.find("eps") == nullptr ||
          !e.at("eps").is_number() || e.find("label") == nullptr) {
        fail("audit entry missing eps/label");
        return;
      }
      entry_sum += e.at("eps").number;
    }
    double label_sum = 0.0;
    for (const auto& [label, total] : totals->object) {
      if (!total.is_number()) {
        fail("non-numeric total for label '" + label + "'");
        return;
      }
      label_sum += total.number;
    }
    // The per-entry and per-label views are two groupings of one ledger.
    if (std::abs(entry_sum - label_sum) > 1e-9 * std::max(1.0, entry_sum)) {
      fail("audit entries and totals_by_label disagree");
    }
    // The load-bearing invariant: what the trace says was charged is what
    // the ledger says was spent (charge-then-record ordering guarantees
    // the two never drift; see src/core/audit.hpp).
    if (!trace->is_null() && trace_eps != entry_sum) {
      fail("trace eps_charged sum " + std::to_string(trace_eps) +
           " != audit ledger sum " + std::to_string(entry_sum));
    }
  }
}

/// Shared field-shape checks for the JSONL artifacts: `field` must be a
/// number (non-negative unless `allow_negative`).
bool require_number(const JsonValue& obj, const char* field,
                    std::size_t line_no, bool allow_negative = false) {
  const JsonValue* v = obj.find(field);
  if (v == nullptr || !v->is_number() ||
      (!allow_negative && v->number < 0.0)) {
    fail("line " + std::to_string(line_no) + ": missing or invalid '" +
         field + "'");
    return false;
  }
  return true;
}

bool require_text(const JsonValue& obj, const char* field,
                  std::size_t line_no) {
  const JsonValue* v = obj.find(field);
  if (v == nullptr || !v->is_string()) {
    fail("line " + std::to_string(line_no) + ": missing or non-string '" +
         field + "'");
    return false;
  }
  return true;
}

/// dpnet.flight.v1: a header naming the dumped moment count, then one
/// moment per line with strictly increasing sequence numbers.
void check_flight(const JsonValue& header,
                  const std::vector<JsonValue>& records) {
  const JsonValue* moments = header.find("moments");
  if (moments == nullptr || !moments->is_number() ||
      moments->number != static_cast<double>(records.size())) {
    fail("flight header 'moments' does not match the dumped line count");
  }
  if (const JsonValue* d = header.find("dropped");
      d == nullptr || !d->is_number() || d->number < 0.0) {
    fail("flight header missing non-negative 'dropped'");
  }
  double prev_seq = -1.0;
  for (std::size_t i = 0; i < records.size(); ++i) {
    const JsonValue& m = records[i];
    const std::size_t line_no = i + 2;
    if (!m.is_object()) {
      fail("line " + std::to_string(line_no) + ": moment is not an object");
      continue;
    }
    if (!require_number(m, "seq", line_no) ||
        !require_number(m, "ts_us", line_no, /*allow_negative=*/true) ||
        !require_number(m, "value", line_no, /*allow_negative=*/true) ||
        !require_text(m, "kind", line_no) ||
        !require_text(m, "label", line_no) ||
        !require_text(m, "detail", line_no)) {
      continue;
    }
    if (m.at("kind").string.empty()) {
      fail("line " + std::to_string(line_no) + ": empty 'kind'");
    }
    if (m.at("seq").number <= prev_seq) {
      fail("line " + std::to_string(line_no) +
           ": 'seq' not strictly increasing");
    }
    prev_seq = m.at("seq").number;
  }
}

/// dpnet.log.v1: schema header, then one leveled line per entry.
void check_log(const std::vector<JsonValue>& records) {
  double prev_seq = -1.0;
  for (std::size_t i = 0; i < records.size(); ++i) {
    const JsonValue& rec = records[i];
    const std::size_t line_no = i + 2;
    if (!rec.is_object()) {
      fail("line " + std::to_string(line_no) + ": entry is not an object");
      continue;
    }
    if (!require_number(rec, "seq", line_no) ||
        !require_number(rec, "ts_us", line_no, /*allow_negative=*/true) ||
        !require_number(rec, "eps", line_no) ||
        !require_text(rec, "level", line_no) ||
        !require_text(rec, "kind", line_no) ||
        !require_text(rec, "label", line_no) ||
        !require_text(rec, "detail", line_no)) {
      continue;
    }
    const std::string& level = rec.at("level").string;
    if (level != "debug" && level != "info" && level != "warn" &&
        level != "error") {
      fail("line " + std::to_string(line_no) + ": unknown level '" + level +
           "'");
    }
    if (rec.at("kind").string.empty()) {
      fail("line " + std::to_string(line_no) + ": empty 'kind'");
    }
    if (const JsonValue* s = rec.find("suppressed");
        s != nullptr && (!s->is_number() || !(s->number > 0.0))) {
      fail("line " + std::to_string(line_no) +
           ": 'suppressed' must be a positive count when present");
    }
    if (rec.at("seq").number <= prev_seq) {
      fail("line " + std::to_string(line_no) +
           ": 'seq' not strictly increasing");
    }
    prev_seq = rec.at("seq").number;
  }
}

/// dpnet.ops.v1: one object — the live serve snapshot `dpnet_cli top`
/// renders.  remaining/eta_s use -1 as the "uncapped / no forecast"
/// sentinel, the only legal negative.
void check_ops(const JsonValue& doc) {
  for (const char* field :
       {"ts_us", "uptime_ms", "frames", "sessions", "queue_depth",
        "in_flight", "peak_rss_kb", "records_per_sec"}) {
    require_number(doc, field, 1);
  }
  const JsonValue* dataset = doc.find("dataset");
  if (dataset == nullptr || !dataset->is_object()) {
    fail("missing or non-object 'dataset'");
  } else {
    require_number(*dataset, "spent", 1);
    require_number(*dataset, "remaining", 1, /*allow_negative=*/true);
  }
  const JsonValue* analysts = doc.find("analysts");
  if (analysts == nullptr || !analysts->is_array()) {
    fail("missing or non-array 'analysts'");
  } else {
    for (const JsonValue& a : analysts->array) {
      if (!a.is_object()) {
        fail("analyst row is not an object");
        continue;
      }
      require_text(a, "analyst", 1);
      require_number(a, "spent", 1);
      require_number(a, "burn_rate", 1);
      require_number(a, "queued", 1);
      for (const char* sentinel_ok : {"remaining", "eta_s"}) {
        const JsonValue* v = a.find(sentinel_ok);
        if (v == nullptr || !v->is_number() ||
            (v->number < 0.0 && v->number != -1.0)) {
          fail(std::string("analyst '") + sentinel_ok +
               "' must be non-negative or the -1 sentinel");
        }
      }
    }
  }
  const JsonValue* latency = doc.find("latency");
  if (latency == nullptr || !latency->is_object()) {
    fail("missing or non-object 'latency'");
  } else if (require_number(*latency, "count", 1) &&
             require_number(*latency, "p50", 1) &&
             require_number(*latency, "p95", 1) &&
             require_number(*latency, "p99", 1)) {
    if (!(latency->at("p50").number <= latency->at("p95").number &&
          latency->at("p95").number <= latency->at("p99").number)) {
      fail("latency percentiles not monotone");
    }
  }
}

/// Splits a JSONL artifact into parsed non-empty lines.
std::vector<JsonValue> parse_lines(const std::string& text,
                                   bool* parse_ok) {
  std::vector<JsonValue> out;
  std::istringstream in(text);
  std::size_t line_no = 0;
  *parse_ok = true;
  for (std::string line; std::getline(in, line);) {
    ++line_no;
    if (line.empty()) continue;
    try {
      out.push_back(dpnet::core::parse_json(line));
    } catch (const std::exception& e) {
      fail("line " + std::to_string(line_no) + ": " + e.what());
      *parse_ok = false;
    }
  }
  return out;
}

void check_artifact(const std::string& text) {
  // Dispatch on the first line's schema: bench reports and ops snapshots
  // are single-document files, flight dumps and ops logs are JSONL.
  const std::size_t eol = text.find('\n');
  const std::string first =
      eol == std::string::npos ? text : text.substr(0, eol);
  std::string schema;
  try {
    const JsonValue head = dpnet::core::parse_json(first);
    const JsonValue* s = head.find("schema");
    if (s != nullptr && s->is_string()) schema = s->string;
  } catch (const std::exception&) {
    // Fall through: a first line that is not standalone JSON can only
    // belong to a (pretty-printed) bench report.
  }

  if (schema == "dpnet.flight.v1" || schema == "dpnet.log.v1") {
    bool parse_ok = false;
    std::vector<JsonValue> lines = parse_lines(text, &parse_ok);
    if (!parse_ok || lines.empty()) return;
    std::vector<JsonValue> records(
        std::make_move_iterator(lines.begin() + 1),
        std::make_move_iterator(lines.end()));
    if (schema == "dpnet.flight.v1") {
      check_flight(lines.front(), records);
    } else {
      check_log(records);
    }
    return;
  }
  if (schema == "dpnet.ops.v1") {
    check_ops(dpnet::core::parse_json(text));
    return;
  }
  check_report(dpnet::core::parse_json(text));
}

}  // namespace

int main(int argc, char** argv) {
  if (argc < 2) {
    std::fprintf(stderr, "usage: bench_schema_check <artifact>...\n");
    return 2;
  }
  for (int i = 1; i < argc; ++i) {
    current_file = argv[i];
    std::ifstream in(argv[i]);
    if (!in) {
      fail("cannot open");
      continue;
    }
    std::ostringstream buf;
    buf << in.rdbuf();
    try {
      check_artifact(buf.str());
    } catch (const std::exception& e) {
      fail(e.what());
    }
  }
  if (failures == 0) {
    std::printf("bench_schema_check: %d file(s) ok\n", argc - 1);
  }
  return failures == 0 ? 0 : 1;
}
