// dpnet command-line tool: generate, convert, sanitize, and privately
// analyze packet traces from the shell.
//
// Subcommands are described by one table (kSubcommands); the global usage
// text and every per-subcommand `--help` page are generated from it, so
// adding a command means adding one table row plus a handler.
//
// Formats are chosen by extension: .pcap (standard capture) or .dpnt
// (dpnet's native container, keeps exact timestamps and lengths).
#include <algorithm>
#include <chrono>
#include <csignal>
#include <cstdio>
#include <cstring>
#include <fstream>
#include <iostream>
#include <memory>
#include <mutex>
#include <sstream>
#include <string>
#include <thread>
#include <vector>

#include "core/obs/log.hpp"
#include "dpnet.hpp"

namespace {

using namespace dpnet;
using net::Packet;

[[noreturn]] void usage();
[[noreturn]] void usage_for(const std::string& name);

bool ends_with(const std::string& s, const std::string& suffix) {
  return s.size() >= suffix.size() &&
         s.compare(s.size() - suffix.size(), suffix.size(), suffix) == 0;
}

std::vector<Packet> load(const std::string& path) {
  if (ends_with(path, ".pcap")) {
    auto result = net::read_pcap_file(path);
    if (result.skipped > 0) {
      std::fprintf(stderr, "note: skipped %zu non-IPv4/TCP/UDP frames\n",
                   result.skipped);
    }
    return std::move(result.packets);
  }
  if (ends_with(path, ".dpnt")) return net::read_trace_file(path);
  std::fprintf(stderr, "error: unknown input format for %s\n", path.c_str());
  std::exit(2);
}

void save(const std::string& path, const std::vector<Packet>& trace) {
  if (ends_with(path, ".pcap")) {
    net::write_pcap_file(path, trace);
  } else if (ends_with(path, ".dpnt")) {
    net::write_trace_file(path, trace);
  } else {
    std::fprintf(stderr, "error: unknown output format for %s\n",
                 path.c_str());
    std::exit(2);
  }
}

/// Value of `--flag V` in args, or fallback.
std::string flag_value(const std::vector<std::string>& args,
                       const std::string& flag, const std::string& fallback) {
  for (std::size_t i = 0; i + 1 < args.size(); ++i) {
    if (args[i] == flag) return args[i + 1];
  }
  return fallback;
}

/// Shared validation behind every numeric flag: `parse` is one of the
/// std::sto* family, the whole text must be consumed, and any failure
/// becomes one uniform `error: <flag> expects <kind>, got '<text>'`
/// line with exit 2 — the same contract for every subcommand.
template <typename Parse>
auto numeric_flag(const std::vector<std::string>& args,
                  const std::string& flag, const std::string& fallback,
                  const char* kind, Parse parse) {
  const std::string text = flag_value(args, flag, fallback);
  try {
    std::size_t used = 0;
    const auto value = parse(text, &used);
    if (used != text.size()) throw std::invalid_argument(text);
    return value;
  } catch (const std::exception&) {
    std::fprintf(stderr, "error: %s expects %s, got '%s'\n", flag.c_str(),
                 kind, text.c_str());
    std::exit(2);
  }
}

std::uint64_t u64_flag(const std::vector<std::string>& args,
                       const std::string& flag, const std::string& fallback) {
  return numeric_flag(args, flag, fallback, "an unsigned integer",
                      [](const std::string& s, std::size_t* used) {
                        // stoull accepts a leading '-' and wraps; an
                        // unsigned flag must reject it instead.
                        if (s.find('-') != std::string::npos) {
                          throw std::invalid_argument(s);
                        }
                        return std::stoull(s, used);
                      });
}

double double_flag(const std::vector<std::string>& args,
                   const std::string& flag, const std::string& fallback) {
  return numeric_flag(args, flag, fallback, "a number",
                      [](const std::string& s, std::size_t* used) {
                        return std::stod(s, used);
                      });
}

bool has_flag(const std::vector<std::string>& args, const std::string& flag) {
  for (const auto& a : args) {
    if (a == flag) return true;
  }
  return false;
}

bool contains(const std::vector<std::string>& set, const std::string& s) {
  return std::find(set.begin(), set.end(), s) != set.end();
}

/// Rejects any `--flag` not in the allowed sets with a one-line
/// diagnostic and exit 2, so a typo like `--prometheous` can't silently
/// fall through to the default output mode.
void check_flags(const std::string& command,
                 const std::vector<std::string>& args,
                 const std::vector<std::string>& value_flags,
                 const std::vector<std::string>& bool_flags) {
  for (std::size_t i = 0; i < args.size(); ++i) {
    const std::string& a = args[i];
    if (a.size() < 2 || a[0] != '-' || a[1] != '-') continue;
    if (contains(value_flags, a)) {
      if (i + 1 >= args.size()) {
        std::fprintf(stderr, "error: %s expects a value\n", a.c_str());
        std::exit(2);
      }
      ++i;  // skip the value
      continue;
    }
    if (contains(bool_flags, a)) continue;
    std::fprintf(stderr, "error: unknown flag %s for `%s`\n", a.c_str(),
                 command.c_str());
    usage_for(command);
  }
}

int cmd_gen(const std::vector<std::string>& args) {
  if (args.empty()) usage_for("gen");
  tracegen::HotspotConfig cfg = has_flag(args, "--full")
                                    ? tracegen::HotspotConfig{}
                                    : tracegen::HotspotConfig::small();
  cfg.seed = u64_flag(args, "--seed", "42");
  tracegen::HotspotGenerator gen(cfg);
  const auto trace = gen.generate();
  save(args[0], trace);
  std::printf("wrote %zu packets to %s (web-heavy hosts: %d)\n",
              trace.size(), args[0].c_str(), gen.web_heavy_hosts());
  return 0;
}

int cmd_convert(const std::vector<std::string>& args) {
  if (args.size() < 2) usage_for("convert");
  const auto trace = load(args[0]);
  save(args[1], trace);
  std::printf("converted %zu packets: %s -> %s\n", trace.size(),
              args[0].c_str(), args[1].c_str());
  return 0;
}

int cmd_stats(const std::vector<std::string>& args) {
  if (args.empty()) usage_for("stats");
  const auto trace = load(args[0]);
  const auto flows = net::compute_flow_stats(trace);
  std::uint64_t bytes = 0;
  std::size_t tcp = 0, udp = 0, with_payload = 0;
  double t_min = trace.empty() ? 0 : trace.front().timestamp;
  double t_max = t_min;
  for (const Packet& p : trace) {
    bytes += p.length;
    if (p.protocol == net::kProtoTcp) ++tcp;
    if (p.protocol == net::kProtoUdp) ++udp;
    if (!p.payload.empty()) ++with_payload;
    t_min = std::min(t_min, p.timestamp);
    t_max = std::max(t_max, p.timestamp);
  }
  std::printf("packets:       %zu (tcp %zu, udp %zu, payloads %zu)\n",
              trace.size(), tcp, udp, with_payload);
  std::printf("bytes:         %llu\n",
              static_cast<unsigned long long>(bytes));
  std::printf("flows:         %zu\n", flows.size());
  std::printf("duration:      %.3f s\n", t_max - t_min);
  std::printf("rtt samples:   %zu\n", net::handshake_rtts(trace).size());
  std::printf("retransmits:   %zu\n",
              net::retransmit_time_diffs_ms(trace).size());
  return 0;
}

int cmd_anonymize(const std::vector<std::string>& args) {
  if (args.size() < 2) usage_for("anonymize");
  net::AnonymizeOptions opt;
  opt.key = u64_flag(args, "--key", "1537228672809129301");
  opt.strip_payloads = !has_flag(args, "--keep-payloads");
  const auto trace = load(args[0]);
  save(args[1], net::anonymize_trace(trace, opt));
  std::printf("anonymized %zu packets (payloads %s) -> %s\n", trace.size(),
              opt.strip_payloads ? "stripped" : "kept", args[1].c_str());
  return 0;
}

void print_cdf(const toolkit::CdfEstimate& cdf, const char* unit) {
  std::printf("%12s %14s\n", unit, "count<=x");
  const std::size_t stride = std::max<std::size_t>(
      1, cdf.boundaries.size() / 20);
  for (std::size_t i = 0; i < cdf.boundaries.size(); i += stride) {
    std::printf("%12lld %14.1f\n",
                static_cast<long long>(cdf.boundaries[i]), cdf.values[i]);
  }
}

/// Runs one named analysis query against the protected view; returns false
/// when `query` is not recognized.  Shared by `analyze` and `trace`.
/// `threads` applies to the partitioned queries (service-mix): the parts
/// fan out through the executor, so a `trace --chrome --threads 4` run
/// renders real per-worker lanes.  threads == 1 is the sequential path.
/// `quiet` suppresses the human-readable answers so machine-readable
/// modes (`trace --json`) keep stdout a pure document.
bool run_analysis_query(core::Queryable<Packet>& packets,
                        const std::string& query, double eps,
                        std::size_t threads = 1, bool quiet = false) {
  if (query == "count") {
    const double count = packets.noisy_count(eps);
    if (!quiet) std::printf("noisy packet count: %.1f\n", count);
  } else if (query == "length-cdf") {
    const auto cdf = analysis::dp_packet_length_cdf(packets, eps, 50);
    if (!quiet) print_cdf(cdf, "bytes");
  } else if (query == "port-cdf") {
    const auto cdf = analysis::dp_port_cdf(packets, eps, 2048);
    if (!quiet) print_cdf(cdf, "port");
  } else if (query == "rtt-cdf") {
    const auto cdf = analysis::dp_rtt_cdf(packets, eps, 20);
    if (!quiet) print_cdf(cdf, "ms");
  } else if (query == "loss-cdf") {
    const auto cdf = analysis::dp_loss_cdf(packets, eps, 50);
    if (!quiet) print_cdf(cdf, "permille");
  } else if (query == "service-mix") {
    const auto clf = net::PacketClassifier::service_mix();
    std::vector<int> keys(clf.labels().size());
    for (std::size_t i = 0; i < keys.size(); ++i) {
      keys[i] = static_cast<int>(i);
    }
    auto parts = packets.partition(keys, [&clf](const Packet& p) {
      return clf.classify_index(p);
    });
    const core::exec::ExecPolicy policy(threads);
    const std::vector<double> counts = core::exec::map_parts(
        policy, keys, parts, [eps](int, const core::Queryable<Packet>& part) {
          return part.noisy_count(eps);
        });
    if (!quiet) {
      for (std::size_t c = 0; c < clf.labels().size(); ++c) {
        std::printf("%-14s %14.1f\n", clf.labels()[c].c_str(), counts[c]);
      }
    }
  } else {
    return false;
  }
  return true;
}

int cmd_analyze(const std::vector<std::string>& args) {
  if (args.size() < 2) usage_for("analyze");
  const double eps = double_flag(args, "--eps", "1.0");
  const double budget_total = double_flag(args, "--budget", "10");
  const auto trace = load(args[0]);
  const std::string query = args[1];

  auto audit = std::make_shared<core::AuditingBudget>(
      std::make_shared<core::RootBudget>(budget_total));
  core::Queryable<Packet> packets(
      trace, audit,
      std::make_shared<core::NoiseSource>(
          u64_flag(args, "--seed", "1")));
  core::ScopedAuditLabel label(*audit, query);

  if (!run_analysis_query(packets, query, eps)) usage_for("analyze");
  std::printf("privacy spent: %.4f of %.4f\n", audit->spent(), budget_total);
  return 0;
}

int cmd_trace(const std::vector<std::string>& args) {
  if (args.size() < 2) usage_for("trace");
  check_flags("trace", args, {"--eps", "--budget", "--seed", "--threads",
                              "--chrome", "--journal"},
              {"--json"});
  const double eps = double_flag(args, "--eps", "1.0");
  const double budget_total = double_flag(args, "--budget", "10");
  const bool want_json = has_flag(args, "--json");
  const auto threads =
      static_cast<std::size_t>(u64_flag(args, "--threads", "1"));
  const std::string chrome_out = flag_value(args, "--chrome", "");
  const std::string journal_out = flag_value(args, "--journal", "");
  // Start the journal from a clean slate so the flushed artifact covers
  // this query only, not whatever an earlier in-process run emitted.
  if (!journal_out.empty()) core::obs::EventJournal::global().clear();
  const auto trace = load(args[0]);
  const std::string query = args[1];

  auto audit = std::make_shared<core::AuditingBudget>(
      std::make_shared<core::RootBudget>(budget_total));
  core::Queryable<Packet> packets(
      trace, audit,
      std::make_shared<core::NoiseSource>(
          u64_flag(args, "--seed", "1")));

  core::QueryTrace query_trace;
  {
    core::TraceSession session(query_trace);
    core::ScopedAuditLabel label(*audit, query);
    if (!run_analysis_query(packets, query, eps, threads, want_json)) {
      usage_for("trace");
    }
  }

  if (!chrome_out.empty()) {
    std::FILE* f = std::fopen(chrome_out.c_str(), "w");
    if (f == nullptr) {
      std::fprintf(stderr, "error: cannot write %s\n", chrome_out.c_str());
      return 1;
    }
    const std::string chrome = query_trace.to_chrome_json();
    std::fwrite(chrome.data(), 1, chrome.size(), f);
    std::fputc('\n', f);
    std::fclose(f);
    if (!want_json) {
      std::printf("wrote Chrome trace to %s (open in Perfetto or "
                  "chrome://tracing)\n",
                  chrome_out.c_str());
    }
  }

  if (!journal_out.empty()) {
    core::obs::EventJournal::global().flush_to_file(journal_out);
    if (!want_json) {
      std::printf("wrote event journal to %s (verify with "
                  "`dpnet_cli audit verify`)\n",
                  journal_out.c_str());
    }
  }

  if (want_json) {
    core::JsonWriter w;
    w.begin_object();
    w.key("query").value(query);
    w.key("trace").raw(query_trace.to_json());
    w.key("audit").raw(audit->to_json());
    w.end_object();
    std::printf("%s\n", w.str().c_str());
    return 0;
  }

  std::printf("\n--- query trace ---\n%s", query_trace.pretty().c_str());
  std::printf("\n--- epsilon by operator ---\n");
  for (const auto& [op, charged] : query_trace.eps_by_op()) {
    if (charged > 0.0) std::printf("%-24s %10.4f\n", op.c_str(), charged);
  }
  std::printf("trace total: %.4f\n", query_trace.total_eps_charged());
  std::printf("privacy spent: %.4f of %.4f\n", audit->spent(), budget_total);
  return 0;
}

/// Writes `text` (plus a trailing newline) to `path`; one sanitized
/// diagnostic and a false return on failure.
bool write_text_file(const std::string& path, const std::string& text) {
  std::FILE* f = std::fopen(path.c_str(), "w");
  if (f == nullptr) {
    std::fprintf(stderr, "error: cannot write %s\n", path.c_str());
    return false;
  }
  std::fwrite(text.data(), 1, text.size(), f);
  std::fputc('\n', f);
  std::fclose(f);
  return true;
}

/// SIGTERM sets a flag and interrupts the blocking stdin read (the
/// handler is installed without SA_RESTART), so the serve loop falls
/// through to its normal shutdown path: drain, final journal flush,
/// final ops snapshot, flight-recorder dump.
volatile std::sig_atomic_t g_stop_requested = 0;

extern "C" void handle_stop_signal(int) { g_stop_requested = 1; }

/// Parses `--log-level` into an OpsLog level; exit 2 on anything else.
core::obs::LogLevel log_level_flag(const std::vector<std::string>& args) {
  const std::string text = flag_value(args, "--log-level", "info");
  if (text == "debug") return core::obs::LogLevel::kDebug;
  if (text == "info") return core::obs::LogLevel::kInfo;
  if (text == "warn") return core::obs::LogLevel::kWarn;
  if (text == "error") return core::obs::LogLevel::kError;
  std::fprintf(stderr,
               "error: --log-level expects debug|info|warn|error, got '%s'\n",
               text.c_str());
  std::exit(2);
}

int cmd_serve(const std::vector<std::string>& args) {
  if (args.empty()) usage_for("serve");
  check_flags("serve", args,
              {"--budget", "--cap", "--threads", "--queue",
               "--analyst-queue", "--deadline-ms", "--max-rows", "--seed",
               "--max-sessions", "--journal", "--journal-capacity",
               "--ledger", "--trace-out", "--flight", "--ops-snapshot",
               "--ops-snapshot-interval-ms", "--burn-alert-eta-s",
               "--ops-log", "--log-level"},
              {});
  serve::ServerConfig cfg;
  cfg.dataset_budget = double_flag(args, "--budget", "8");
  cfg.analyst_cap = double_flag(args, "--cap", "1");
  cfg.threads = static_cast<std::size_t>(u64_flag(args, "--threads", "4"));
  cfg.queue_capacity =
      static_cast<std::size_t>(u64_flag(args, "--queue", "64"));
  cfg.analyst_queue_capacity =
      static_cast<std::size_t>(u64_flag(args, "--analyst-queue", "8"));
  cfg.default_deadline_ms = u64_flag(args, "--deadline-ms", "2000");
  cfg.max_total_rows = u64_flag(args, "--max-rows", "0");
  cfg.seed = u64_flag(args, "--seed", "42");
  cfg.max_sessions =
      static_cast<std::size_t>(u64_flag(args, "--max-sessions", "16"));
  cfg.journal_path = flag_value(args, "--journal", "");
  cfg.journal_capacity = static_cast<std::size_t>(
      u64_flag(args, "--journal-capacity", "262144"));
  cfg.flight_path = flag_value(args, "--flight", "");
  cfg.ops_snapshot_path = flag_value(args, "--ops-snapshot", "");
  cfg.ops_snapshot_interval_ms =
      u64_flag(args, "--ops-snapshot-interval-ms", "1000");
  cfg.burn_alert_eta_s = double_flag(args, "--burn-alert-eta-s", "0");
  const std::string ledger_out = flag_value(args, "--ledger", "");
  const std::string trace_out = flag_value(args, "--trace-out", "");

  // The structured ops log replaces the old ad-hoc stderr narration:
  // one dpnet.log.v1 line per lifecycle transition and (at debug level)
  // per admission decision.  Default sink is stderr; --ops-log owns a
  // file with the schema header, for the CI artifact trail.
  core::obs::OpsLog& ops_log = core::obs::OpsLog::global();
  ops_log.set_min_level(log_level_flag(args));
  if (const std::string log_out = flag_value(args, "--ops-log", "");
      !log_out.empty()) {
    ops_log.open_file(log_out);
  } else {
    ops_log.use_stderr();
  }

  // Construction verifies and replays an existing journal file (crash
  // recovery); a tampered or overspent journal throws DpError, which
  // main() turns into `error: ...` and exit 1 — the server refuses to
  // start rather than refund budget.
  serve::QueryServer server(load(args[0]), cfg);
  for (const serve::RecoveredBudget& r : server.recovered()) {
    core::obs::log_event(core::obs::LogLevel::kInfo, "serve.recovered",
                         r.analyst, r.eps, "journal replay");
  }

  // A SIGTERM interrupts the getline below (no SA_RESTART) and runs the
  // same orderly shutdown as EOF — drain, flush, snapshot, flight dump.
  struct sigaction sa = {};
  sa.sa_handler = &handle_stop_signal;
  sigemptyset(&sa.sa_mask);
  sa.sa_flags = 0;
  sigaction(SIGTERM, &sa, nullptr);

  core::obs::log_event(core::obs::LogLevel::kInfo, "serve.started", {}, 0.0,
                       "stdin");

  // Responses from pool workers interleave on stdout; one line each.
  std::mutex out_mutex;
  const serve::QueryServer::ResponseSink sink =
      [&out_mutex](const std::string& line) {
        const std::lock_guard<std::mutex> lock(out_mutex);
        std::fwrite(line.data(), 1, line.size(), stdout);
        std::fputc('\n', stdout);
        std::fflush(stdout);
      };

  std::string line;
  std::size_t frames = 0;
  while (g_stop_requested == 0 && std::getline(std::cin, line)) {
    if (line.empty()) continue;
    server.submit_frame(line, sink);
    ++frames;
  }
  server.drain();
  server.flush_journal();
  if (!ledger_out.empty() && !write_text_file(ledger_out,
                                              server.ledger_json())) {
    return 1;
  }
  if (!trace_out.empty() && !write_text_file(trace_out,
                                             server.trace_json())) {
    return 1;
  }
  std::ostringstream summary;
  summary << "frames=" << frames << " sessions=" << server.sessions();
  if (g_stop_requested != 0) summary << " sigterm";
  core::obs::log_event(core::obs::LogLevel::kInfo, "serve.stopped", {},
                       server.dataset_spent(), summary.str());
  return 0;
}

int cmd_metrics(const std::vector<std::string>& args) {
  if (args.empty()) usage_for("metrics");
  check_flags("metrics", args, {"--eps", "--seed"},
              {"--json", "--prometheus"});
  const double eps = double_flag(args, "--eps", "1.0");
  const bool want_json = has_flag(args, "--json");
  const bool want_prometheus = has_flag(args, "--prometheus");
  if (want_json && want_prometheus) {
    std::fprintf(stderr,
                 "error: --json and --prometheus are mutually exclusive\n");
    return 2;
  }
  const auto trace = load(args[0]);

  auto audit = std::make_shared<core::AuditingBudget>(
      std::make_shared<core::RootBudget>(1e6));
  core::Queryable<Packet> packets(
      trace, audit,
      std::make_shared<core::NoiseSource>(
          u64_flag(args, "--seed", "1")));
  // A small representative workload so the snapshot has something to
  // show.  The machine-readable modes keep stdout pure (JSON document /
  // Prometheus exposition only), so the workload runs silently there.
  const bool machine_readable = want_json || want_prometheus;
  const double noisy_count = packets.noisy_count(eps);
  const auto length_cdf = analysis::dp_packet_length_cdf(packets, eps, 50);
  if (!machine_readable) {
    std::printf("noisy packet count: %.1f\n", noisy_count);
    print_cdf(length_cdf, "bytes");
  }

  // Touch the robustness counters so the snapshot lists them even at
  // zero — operators grep for these names (docs/observability.md).
  core::builtin_metrics::queries_aborted();
  core::builtin_metrics::deadline_exceeded();
  core::builtin_metrics::records_quarantined();
  core::builtin_metrics::faults_injected();
  core::builtin_metrics::serve_sessions_active();
  core::builtin_metrics::serve_queue_depth();
  core::builtin_metrics::serve_requests_rejected();
  core::builtin_metrics::serve_requests_shed();
  core::builtin_metrics::journal_events_dropped();

  if (want_json) {
    std::printf("%s\n", core::MetricsRegistry::global().to_json().c_str());
  } else if (want_prometheus) {
    std::printf("%s",
                core::MetricsRegistry::global().to_prometheus().c_str());
  } else {
    std::printf("\n--- metrics ---\n%s",
                core::MetricsRegistry::global().pretty().c_str());
  }
  return 0;
}

/// Sum of eps over a ledger document's entries.  Accepts both a bare
/// AuditingBudget::to_json() document and the composite `trace --json`
/// output (where the ledger sits under "audit").
double ledger_eps_sum(const core::JsonValue& doc) {
  const core::JsonValue* ledger = doc.find("audit");
  if (ledger == nullptr) ledger = &doc;
  const core::JsonValue* entries = ledger->find("entries");
  if (entries == nullptr || !entries->is_array()) {
    throw core::InvalidQueryError(
        "ledger document has no 'entries' array (expected "
        "AuditingBudget::to_json() or `trace --json` output)");
  }
  double sum = 0.0;
  for (const core::JsonValue& e : entries->array) {
    const core::JsonValue* eps = e.find("eps");
    if (eps == nullptr || !eps->is_number()) {
      throw core::InvalidQueryError("ledger entry missing numeric 'eps'");
    }
    sum += eps->number;
  }
  return sum;
}

double span_eps_sum(const core::JsonValue& span) {
  double total = 0.0;
  const core::JsonValue* charged = span.find("eps_charged");
  if (charged != nullptr && charged->is_number()) total = charged->number;
  const core::JsonValue* children = span.find("children");
  if (children != nullptr && children->is_array()) {
    for (const core::JsonValue& child : children->array) {
      total += span_eps_sum(child);
    }
  }
  return total;
}

/// Sum of eps_charged over a trace document's spans.  Accepts both a
/// bare QueryTrace::to_json() document and `trace --json` output.
double trace_eps_sum(const core::JsonValue& doc) {
  const core::JsonValue* trace = doc.find("trace");
  if (trace == nullptr) trace = &doc;
  const core::JsonValue* spans = trace->find("spans");
  if (spans == nullptr || !spans->is_array()) {
    throw core::InvalidQueryError(
        "trace document has no 'spans' array (expected "
        "QueryTrace::to_json() or `trace --json` output)");
  }
  double total = 0.0;
  for (const core::JsonValue& span : spans->array) {
    total += span_eps_sum(span);
  }
  return total;
}

core::JsonValue parse_json_file(const std::string& path) {
  std::ifstream in(path, std::ios::binary);
  if (!in) throw core::InvalidQueryError("cannot open " + path);
  std::ostringstream buf;
  buf << in.rdbuf();
  return core::parse_json(buf.str());
}

int cmd_audit(const std::vector<std::string>& args) {
  if (args.size() < 2) usage_for("audit");
  const std::string mode = args[0];
  const std::string path = args[1];

  if (mode == "verify") {
    check_flags("audit", args, {"--audit", "--trace"}, {});
    const core::obs::JournalVerification v =
        core::obs::verify_journal_file(path);
    if (!v.ok) {
      std::fprintf(stderr, "error: %s: %s\n", path.c_str(), v.error.c_str());
      return 1;
    }
    // Offline reconciliation: the journal's charge events, the audit
    // ledger, and the query trace are three independent accounts of the
    // same session; for partition-free sessions all three epsilon sums
    // are exactly equal (docs/observability.md).
    bool reconciled_ledger = false;
    bool reconciled_trace = false;
    if (const std::string ledger = flag_value(args, "--audit", "");
        !ledger.empty()) {
      const double ledger_eps = ledger_eps_sum(parse_json_file(ledger));
      if (ledger_eps != v.charged_eps) {
        std::fprintf(stderr,
                     "error: journal charged eps %.17g != ledger eps %.17g "
                     "(%s)\n",
                     v.charged_eps, ledger_eps, ledger.c_str());
        return 1;
      }
      reconciled_ledger = true;
    }
    if (const std::string trace = flag_value(args, "--trace", "");
        !trace.empty()) {
      const double trace_eps = trace_eps_sum(parse_json_file(trace));
      if (trace_eps != v.charged_eps) {
        std::fprintf(stderr,
                     "error: journal charged eps %.17g != trace eps %.17g "
                     "(%s)\n",
                     v.charged_eps, trace_eps, trace.c_str());
        return 1;
      }
      reconciled_trace = true;
    }
    std::printf("journal ok: %zu event(s), %llu dropped by the ring\n",
                v.events, static_cast<unsigned long long>(v.dropped));
    std::printf("  charges     %8llu  (eps %.6g)\n",
                static_cast<unsigned long long>(v.charges), v.charged_eps);
    std::printf("  refusals    %8llu  (eps %.6g, never consumed)\n",
                static_cast<unsigned long long>(v.refusals), v.refused_eps);
    std::printf("  aborts      %8llu\n",
                static_cast<unsigned long long>(v.aborts));
    std::printf("  tasks       %8llu\n",
                static_cast<unsigned long long>(v.tasks));
    std::printf("  faults      %8llu\n",
                static_cast<unsigned long long>(v.faults));
    std::printf("  quarantined %8llu\n",
                static_cast<unsigned long long>(v.quarantined));
    if (reconciled_ledger || reconciled_trace) {
      std::printf("reconciled: journal eps%s%s (exact)\n",
                  reconciled_ledger ? " == ledger eps" : "",
                  reconciled_trace ? " == trace eps" : "");
    }
    return 0;
  }

  if (mode == "tail") {
    check_flags("audit", args, {"--last"}, {"--json"});
    const auto last = static_cast<std::size_t>(
        u64_flag(args, "--last", "10"));
    const bool want_json = has_flag(args, "--json");
    std::ifstream in(path, std::ios::binary);
    if (!in) {
      std::fprintf(stderr, "error: cannot open %s\n", path.c_str());
      return 1;
    }
    std::vector<std::string> lines;
    for (std::string line; std::getline(in, line);) {
      if (!line.empty()) lines.push_back(std::move(line));
    }
    if (lines.empty()) {
      std::fprintf(stderr, "error: %s is empty\n", path.c_str());
      return 1;
    }
    // Skip the header line; show the most recent `last` records.
    const std::size_t records = lines.size() - 1;
    const std::size_t first = 1 + (records > last ? records - last : 0);
    for (std::size_t i = first; i < lines.size(); ++i) {
      if (want_json) {
        std::printf("%s\n", lines[i].c_str());
        continue;
      }
      const core::JsonValue rec = core::parse_json(lines[i]);
      const auto num = [&rec](const char* field) {
        const core::JsonValue* f = rec.find(field);
        return (f != nullptr && f->is_number()) ? f->number : 0.0;
      };
      const auto text = [&rec](const char* field) {
        const core::JsonValue* f = rec.find(field);
        return (f != nullptr && f->is_string()) ? f->string : std::string();
      };
      std::printf("%8.0f %-10s %-20s node=%016llx eps=%-10.4g %s\n",
                  num("seq"), text("kind").c_str(),
                  (text("label").empty() ? "-" : text("label")).c_str(),
                  static_cast<unsigned long long>(num("node_id")),
                  num("eps"), text("detail").c_str());
    }
    return 0;
  }

  usage_for("audit");
}

/// Renders one dpnet.ops.v1 snapshot as a human-readable board.
void render_ops_snapshot(const core::JsonValue& doc,
                         const std::string& path) {
  const auto num = [](const core::JsonValue& obj, const char* field,
                      double fallback = 0.0) {
    const core::JsonValue* f = obj.find(field);
    return (f != nullptr && f->is_number()) ? f->number : fallback;
  };
  const auto fmt_or_dash = [](double v, char* buf, std::size_t n) {
    if (v < 0) {
      std::snprintf(buf, n, "-");
    } else {
      std::snprintf(buf, n, "%.4g", v);
    }
    return buf;
  };

  std::printf("dpnet top — %s\n", path.c_str());
  std::printf("uptime %.1f s   frames %.0f   sessions %.0f   queue %.0f   "
              "in-flight %.0f\n",
              num(doc, "uptime_ms") / 1000.0, num(doc, "frames"),
              num(doc, "sessions"), num(doc, "queue_depth"),
              num(doc, "in_flight"));
  if (const core::JsonValue* dataset = doc.find("dataset");
      dataset != nullptr) {
    std::printf("dataset eps: spent %.6g, remaining %.6g\n",
                num(*dataset, "spent"), num(*dataset, "remaining"));
  }
  if (const core::JsonValue* latency = doc.find("latency");
      latency != nullptr) {
    std::printf("latency ms (n=%.0f): p50 %.3g  p95 %.3g  p99 %.3g\n",
                num(*latency, "count"), num(*latency, "p50"),
                num(*latency, "p95"), num(*latency, "p99"));
  }
  std::printf("peak rss %.0f kb   throughput %.4g records/s\n",
              num(doc, "peak_rss_kb"), num(doc, "records_per_sec"));

  const core::JsonValue* analysts = doc.find("analysts");
  if (analysts == nullptr || !analysts->is_array() ||
      analysts->array.empty()) {
    std::printf("(no analyst sessions)\n");
    return;
  }
  std::printf("%-16s %10s %10s %12s %10s %7s\n", "analyst", "spent",
              "remaining", "burn eps/s", "eta s", "queued");
  for (const core::JsonValue& a : analysts->array) {
    const core::JsonValue* name = a.find("analyst");
    char remaining[32], eta[32];
    std::printf("%-16s %10.4g %10s %12.4g %10s %7.0f\n",
                (name != nullptr && name->is_string()) ? name->string.c_str()
                                                       : "?",
                num(a, "spent"),
                fmt_or_dash(num(a, "remaining", -1.0), remaining,
                            sizeof remaining),
                num(a, "burn_rate"),
                fmt_or_dash(num(a, "eta_s", -1.0), eta, sizeof eta),
                num(a, "queued"));
  }
}

int cmd_top(const std::vector<std::string>& args) {
  if (args.empty()) usage_for("top");
  check_flags("top", args, {"--interval-ms", "--count"},
              {"--json", "--watch"});
  const std::string path = args[0];
  const bool want_json = has_flag(args, "--json");
  const bool watch = has_flag(args, "--watch");
  const std::uint64_t interval_ms = u64_flag(args, "--interval-ms", "1000");
  // --count bounds a --watch loop (0 = until interrupted); one-shot mode
  // renders exactly once regardless.
  const std::uint64_t count = u64_flag(args, "--count", "0");

  std::uint64_t shown = 0;
  for (;;) {
    std::ifstream in(path, std::ios::binary);
    if (!in) {
      std::fprintf(stderr, "error: cannot open %s\n", path.c_str());
      return 1;
    }
    std::ostringstream buf;
    buf << in.rdbuf();
    const std::string text = buf.str();
    // Parse before printing anything: --json output is only ever a
    // document the in-tree parser accepted, so it round-trips.
    const core::JsonValue doc = core::parse_json(text);
    const core::JsonValue* schema = doc.find("schema");
    if (schema == nullptr || !schema->is_string() ||
        schema->string != "dpnet.ops.v1") {
      std::fprintf(stderr, "error: %s is not a dpnet.ops.v1 snapshot\n",
                   path.c_str());
      return 1;
    }
    if (watch && !want_json && shown > 0) std::printf("\x1b[2J\x1b[H");
    if (want_json) {
      std::printf("%s\n", text.c_str());
    } else {
      render_ops_snapshot(doc, path);
    }
    std::fflush(stdout);
    ++shown;
    if (!watch) break;
    if (count != 0 && shown >= count) break;
    std::this_thread::sleep_for(std::chrono::milliseconds(interval_ms));
  }
  return 0;
}

using Handler = int (*)(const std::vector<std::string>&);

struct Subcommand {
  const char* name;
  const char* synopsis;  // arguments, shown after the command name
  const char* summary;   // one line for the global usage listing
  const char* flags;     // flag detail for the per-command help ("" if none)
  Handler handler;
};

constexpr Subcommand kSubcommands[] = {
    {"gen", "<out.{pcap,dpnt}> [--seed N] [--full]",
     "generate a synthetic hotspot packet trace",
     "  --seed N   generator seed (default 42)\n"
     "  --full     full-size configuration (default: small)\n",
     &cmd_gen},
    {"convert", "<in> <out>",
     "convert between .pcap and .dpnt containers", "", &cmd_convert},
    {"stats", "<in>",
     "exact trace statistics (trusted side, no privacy)", "", &cmd_stats},
    {"anonymize", "<in> <out> [--key N] [--keep-payloads]",
     "prefix-preserving IP anonymization",
     "  --key N           anonymization key\n"
     "  --keep-payloads   keep packet payloads (default: strip)\n",
     &cmd_anonymize},
    {"analyze", "<in> <query> [--eps E] [--budget B] [--seed N]",
     "run a differentially-private analysis",
     "  query: count | length-cdf | port-cdf | rtt-cdf | loss-cdf |\n"
     "         service-mix\n"
     "  --eps E      epsilon per query (default 1.0)\n"
     "  --budget B   total privacy budget (default 10)\n"
     "  --seed N     noise seed (default 1)\n",
     &cmd_analyze},
    {"trace",
     "<in> <query> [--eps E] [--budget B] [--seed N] [--threads T]\n"
     "                   [--json] [--chrome OUT.json] [--journal OUT.jsonl]",
     "run an analysis and show its query-plan trace",
     "  query: as for `analyze`\n"
     "  --json        print the trace and audit ledger as one JSON document\n"
     "  --chrome OUT  also write a Chrome trace_event timeline (open in\n"
     "                Perfetto or chrome://tracing; workers get own lanes)\n"
     "  --journal OUT also flush the privacy event journal (hash-chained\n"
     "                dpnet.events.v1 JSONL; check with `audit verify`)\n"
     "  --threads T   executor threads for partitioned queries (default 1)\n"
     "  --eps E       epsilon per query (default 1.0)\n"
     "  --budget B    total privacy budget (default 10)\n"
     "  --seed N      noise seed (default 1)\n",
     &cmd_trace},
    {"audit",
     "verify <journal.jsonl> [--audit LEDGER.json] [--trace TRACE.json]\n"
     "                   | tail <journal.jsonl> [--last N] [--json]",
     "verify or tail a flushed privacy event journal",
     "  verify: replay the hash chain and schema of a dpnet.events.v1\n"
     "          journal (e.g. from `trace --journal`); with --audit /\n"
     "          --trace, also reconcile the journal's charged epsilon sum\n"
     "          against the audit ledger / query trace (exact match;\n"
     "          accepts `trace --json` documents too)\n"
     "  tail:   print the most recent journal events\n"
     "  --last N      events to show (default 10)\n"
     "  --json        print raw journal lines instead of columns\n",
     &cmd_audit},
    {"serve",
     "<in> [--budget B] [--cap C] [--threads T] [--queue N]\n"
     "                   [--analyst-queue N] [--deadline-ms D] [--max-rows N]\n"
     "                   [--seed N] [--max-sessions N] [--journal PATH]\n"
     "                   [--journal-capacity N] [--ledger OUT.json]\n"
     "                   [--trace-out OUT.json] [--flight PATH]\n"
     "                   [--ops-snapshot PATH] [--ops-snapshot-interval-ms N]\n"
     "                   [--burn-alert-eta-s S] [--ops-log PATH]\n"
     "                   [--log-level L]",
     "serve mediated queries over line-delimited JSON on stdin",
     "  requests:  {\"id\":1,\"analyst\":\"alice\",\"query\":\"count\","
     "\"eps\":0.125}\n"
     "  queries:   count | count-tcp | count-udp | count-port (\"port\" "
     "field)\n"
     "  --budget B        shared dataset budget (default 8)\n"
     "  --cap C           per-analyst budget cap (default 1)\n"
     "  --threads T       worker threads (default 4)\n"
     "  --queue N         server-wide admission queue; above it requests\n"
     "                    are shed as \"overloaded\" (default 64)\n"
     "  --analyst-queue N per-analyst queue; above it requests get\n"
     "                    \"backpressure\" (default 8)\n"
     "  --deadline-ms D   default per-request deadline (default 2000)\n"
     "  --max-rows N      per-request work quota in rows (default off)\n"
     "  --seed N          noise seed base (default 42)\n"
     "  --max-sessions N  distinct analyst principals (default 16)\n"
     "  --journal PATH    durable event journal: flushed before every\n"
     "                    response; verified and replayed at startup for\n"
     "                    crash-safe budget recovery\n"
     "  --journal-capacity N  event-journal ring bound (default 262144);\n"
     "                    when the ring lacks headroom, dispatch answers\n"
     "                    \"journal-full\" rather than drop events\n"
     "  --ledger OUT      write the merged audit ledger at shutdown\n"
     "  --trace-out OUT   write the server query trace at shutdown\n"
     "  --flight PATH     flight-recorder black box: a dpnet.flight.v1\n"
     "                    dump refreshed with every journal flush, on\n"
     "                    fault, and at shutdown (kill -9 safe)\n"
     "  --ops-snapshot PATH  live dpnet.ops.v1 state file for\n"
     "                    `dpnet_cli top` (atomic replace, never torn)\n"
     "  --ops-snapshot-interval-ms N  snapshot cadence (default 1000)\n"
     "  --burn-alert-eta-s S  journal a budget.alert when an analyst's\n"
     "                    projected time-to-exhaustion drops below S\n"
     "                    seconds (default off)\n"
     "  --ops-log PATH    structured dpnet.log.v1 ops log (default:\n"
     "                    JSON lines on stderr)\n"
     "  --log-level L     debug|info|warn|error (default info; debug\n"
     "                    logs every admission decision)\n",
     &cmd_serve},
    {"top",
     "<snapshot.json> [--json] [--watch] [--interval-ms N] [--count N]",
     "render a serve ops snapshot (budgets, burn rates, queues)",
     "  reads the dpnet.ops.v1 file that `serve --ops-snapshot` keeps\n"
     "  current: queue depth, in-flight requests, per-analyst budgets\n"
     "  with burn-rate forecasts, latency percentiles, peak RSS\n"
     "  --json            print the raw snapshot document (validated)\n"
     "  --watch           re-render every interval until interrupted\n"
     "  --interval-ms N   refresh cadence under --watch (default 1000)\n"
     "  --count N         stop --watch after N renders (default: run on)\n",
     &cmd_top},
    {"metrics", "<in> [--eps E] [--seed N] [--json | --prometheus]",
     "run a sample workload and dump the metrics registry",
     "  --json        print the snapshot as JSON\n"
     "  --prometheus  print the snapshot in Prometheus text exposition\n"
     "                format (scrape-ready)\n"
     "  --eps E       epsilon per query (default 1.0)\n"
     "  --seed N      noise seed (default 1)\n",
     &cmd_metrics},
};

const Subcommand* find_subcommand(const std::string& name) {
  for (const Subcommand& sc : kSubcommands) {
    if (name == sc.name) return &sc;
  }
  return nullptr;
}

void print_help_for(std::FILE* out, const Subcommand& sc) {
  std::fprintf(out, "usage: dpnet_cli %s %s\n", sc.name, sc.synopsis);
  std::fprintf(out, "  %s\n", sc.summary);
  if (sc.flags[0] != '\0') std::fprintf(out, "%s", sc.flags);
}

void print_usage(std::FILE* out) {
  std::fprintf(out, "usage: dpnet_cli <command> [args]\n\ncommands:\n");
  for (const Subcommand& sc : kSubcommands) {
    std::fprintf(out, "  %-10s %s\n", sc.name, sc.summary);
  }
  std::fprintf(out,
               "\nrun `dpnet_cli help <command>` or "
               "`dpnet_cli <command> --help` for details\n");
}

[[noreturn]] void usage() {
  print_usage(stderr);
  std::exit(2);
}

[[noreturn]] void usage_for(const std::string& name) {
  const Subcommand* sc = find_subcommand(name);
  if (sc != nullptr) {
    print_help_for(stderr, *sc);
  } else {
    print_usage(stderr);
  }
  std::exit(2);
}

}  // namespace

int main(int argc, char** argv) {
  if (argc < 2) usage();
  const std::string command = argv[1];
  std::vector<std::string> args(argv + 2, argv + argc);

  if (command == "--help" || command == "-h") {
    print_usage(stdout);
    return 0;
  }
  if (command == "help") {
    if (args.empty()) {
      print_usage(stdout);
      return 0;
    }
    const Subcommand* sc = find_subcommand(args[0]);
    if (sc == nullptr) usage();
    print_help_for(stdout, *sc);
    return 0;
  }

  const Subcommand* sc = find_subcommand(command);
  if (sc == nullptr) usage();
  if (has_flag(args, "--help") || has_flag(args, "-h")) {
    print_help_for(stdout, *sc);
    return 0;
  }
  // Every failure becomes one sanitized line on stderr and a nonzero
  // exit.  Engine errors (TraceIoError, DpError) carry index/operator
  // diagnostics only — never record contents or analyst exception text —
  // so printing what() here stays inside the privacy boundary.
  try {
    return sc->handler(args);
  } catch (const net::TraceIoError& e) {
    std::fprintf(stderr, "error: %s\n", e.what());
    return 1;
  } catch (const core::DpError& e) {
    std::fprintf(stderr, "error: %s\n", e.what());
    return 1;
  } catch (const std::exception& e) {
    std::fprintf(stderr, "error: %s\n", e.what());
    return 1;
  } catch (...) {
    std::fprintf(stderr, "error: unexpected internal failure\n");
    return 1;
  }
}
