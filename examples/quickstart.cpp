// Quickstart: the paper's §2.3 example, end to end.
//
// A data owner wraps a packet trace in a protected Queryable with a total
// privacy budget; an analyst then counts the distinct hosts that sent more
// than 1024 bytes to port 80, spending a slice of that budget.  Everything
// the analyst learns passes through a noisy aggregation.
//
//   $ ./quickstart
#include <cstdio>
#include <memory>

#include "core/queryable.hpp"
#include "net/packet.hpp"
#include "tracegen/hotspot.hpp"

using namespace dpnet;
using core::Group;
using net::Ipv4;
using net::Packet;

int main() {
  // --- data owner side -----------------------------------------------
  // In production this would be a real capture; here we synthesize the
  // Hotspot-style trace the paper used.
  tracegen::HotspotGenerator generator(tracegen::HotspotConfig::small());
  const std::vector<Packet> trace = generator.generate();
  std::printf("trace: %zu packets\n", trace.size());

  const double total_budget = 1.0;  // the trace's lifetime epsilon
  auto budget = std::make_shared<core::RootBudget>(total_budget);
  auto noise = std::make_shared<core::NoiseSource>(/*seed=*/2026);
  core::Queryable<Packet> packets(trace, budget, noise);

  // --- analyst side ----------------------------------------------------
  // packets.Where(pkt => pkt.dstPort == 80)
  //        .GroupBy(pkt => pkt.srcIP)
  //        .Where(grp => grp.Sum(pkt => pkt.len) > 1024)
  //        .Count(epsilon_query);
  const double epsilon_query = 0.1;
  const double heavy_hosts =
      packets
          .where([](const Packet& p) { return p.dst_port == 80; })
          .group_by([](const Packet& p) { return p.src_ip; })
          .where([](const Group<Ipv4, Packet>& grp) {
            long bytes = 0;
            for (const Packet& p : grp.items) bytes += p.length;
            return bytes > 1024;
          })
          .noisy_count(epsilon_query);

  std::printf("hosts sending >1024 B to port 80 (noisy): %.1f\n",
              heavy_hosts);
  std::printf("true answer (generator ground truth):     %d\n",
              generator.web_heavy_hosts());
  std::printf("privacy spent: %.2f of %.2f\n", budget->spent(),
              total_budget);

  // The analyst can keep querying until the budget runs out...
  const double udp_count = packets
                               .where([](const Packet& p) {
                                 return p.protocol == net::kProtoUdp;
                               })
                               .noisy_count(0.1);
  std::printf("UDP packets (noisy): %.1f, privacy spent: %.2f\n", udp_count,
              budget->spent());

  // ...after which further aggregations are refused.
  try {
    packets.noisy_count(10.0);
  } catch (const core::BudgetExhaustedError& e) {
    std::printf("over-budget query refused: %s\n", e.what());
  }
  return 0;
}
