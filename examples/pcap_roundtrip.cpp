// Real-capture interoperability: export a synthetic trace as a standard
// pcap file, load it back the way a data owner would load a real capture,
// and run a private analysis on the loaded packets.
//
//   $ ./pcap_roundtrip
#include <cstdio>
#include <filesystem>

#include "dpnet.hpp"

using namespace dpnet;

int main() {
  const std::string path =
      (std::filesystem::temp_directory_path() / "hotspot_demo.pcap").string();

  // Export: any tool that speaks pcap (tcpdump, wireshark, ...) can now
  // inspect the synthetic trace.
  {
    tracegen::HotspotGenerator generator(tracegen::HotspotConfig::small());
    const auto trace = generator.generate();
    net::write_pcap_file(path, trace);
    std::printf("wrote %zu packets to %s\n", trace.size(), path.c_str());
  }

  // Import: the data-owner side of a mediated-analysis deployment.
  const auto loaded = net::read_pcap_file(path);
  std::printf("loaded %zu packets (%zu non-IPv4/TCP/UDP frames skipped)\n",
              loaded.packets.size(), loaded.skipped);

  core::Queryable<net::Packet> packets(
      loaded.packets, std::make_shared<core::RootBudget>(1.0),
      std::make_shared<core::NoiseSource>(23));

  const auto cdf = analysis::dp_packet_length_cdf(packets, 0.5, 100);
  std::printf("\npacket-length CDF from the loaded capture (eps=0.5):\n");
  for (std::size_t i = 0; i < cdf.boundaries.size(); i += 3) {
    std::printf("  <= %4lld B: %.0f packets\n",
                static_cast<long long>(cdf.boundaries[i]), cdf.values[i]);
  }

  std::filesystem::remove(path);
  return 0;
}
