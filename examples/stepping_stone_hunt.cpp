// Stepping-stone hunting (§5.2.2): find pairs of interactive flows whose
// idle-to-active transitions are correlated, without ever seeing the
// packets.  Also runs the faithful non-private detector for comparison.
//
//   $ ./stepping_stone_hunt
#include <cstdio>
#include <unordered_map>

#include "analysis/stepping_stones.hpp"
#include "core/queryable.hpp"
#include "net/tcp.hpp"
#include "tracegen/hotspot.hpp"

using namespace dpnet;
using net::FlowKey;

int main() {
  tracegen::HotspotConfig cfg = tracegen::HotspotConfig::small();
  cfg.stone_pairs = 4;
  cfg.noise_interactive_flows = 10;
  tracegen::HotspotGenerator generator(cfg);
  const auto trace = generator.generate();
  std::printf("trace: %zu packets, %d implanted stone pairs\n", trace.size(),
              cfg.stone_pairs);

  // Analysis scope: interactive flows with enough activations (determined
  // on the trusted side, as the paper did).
  std::unordered_map<FlowKey, std::size_t> counts;
  for (const auto& a : net::extract_activations(trace, cfg.t_idle)) {
    ++counts[a.flow];
  }
  std::vector<FlowKey> candidates;
  for (const auto& [flow, n] : counts) {
    if (n >= static_cast<std::size_t>(cfg.activations_min) / 2) {
      candidates.push_back(flow);
    }
  }
  std::printf("candidate interactive flows: %zu\n", candidates.size());

  core::Queryable<net::Packet> packets(
      trace, std::make_shared<core::RootBudget>(100.0),
      std::make_shared<core::NoiseSource>(13));

  analysis::SteppingStoneOptions opt;
  opt.t_idle = cfg.t_idle;
  opt.delta = cfg.delta;
  opt.eps_itemset = 2.0;
  opt.eps_eval = 2.0;
  opt.itemset_threshold = 15.0;
  opt.top_k = 8;

  std::printf("\nprivate detector (top pairs by noisy correlation):\n");
  for (const auto& s : analysis::dp_stepping_stones(packets, candidates,
                                                    opt)) {
    std::printf("  %-34s <-> %-34s corr %.2f\n", s.a.to_string().c_str(),
                s.b.to_string().c_str(), s.noisy_correlation);
  }

  std::printf("\nfaithful non-private detector (top 8):\n");
  const auto exact =
      analysis::exact_stepping_stones(trace, candidates, cfg.t_idle,
                                      cfg.delta);
  for (std::size_t i = 0; i < exact.size() && i < 8; ++i) {
    std::printf("  %-34s <-> %-34s corr %.2f\n",
                exact[i].a.to_string().c_str(),
                exact[i].b.to_string().c_str(), exact[i].correlation);
  }
  return 0;
}
