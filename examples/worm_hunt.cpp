// Worm hunting over a protected trace (§5.1.2 of the paper).
//
// Shows the two-stage pattern: (1) aggregate behind the privacy curtain —
// how many payload groups have worm-like dispersion? — and (2) spell out
// the actual payloads with the frequent-string search, then privately
// measure each candidate's source/destination dispersion.
//
//   $ ./worm_hunt
#include <cstdio>

#include "analysis/worm.hpp"
#include "core/queryable.hpp"
#include "toolkit/frequent_strings.hpp"
#include "tracegen/hotspot.hpp"

using namespace dpnet;

int main() {
  tracegen::HotspotConfig cfg = tracegen::HotspotConfig::small();
  tracegen::HotspotGenerator generator(cfg);
  const auto trace = generator.generate();
  std::printf("trace: %zu packets, %d implanted worm payloads\n",
              trace.size(), cfg.num_worms);

  core::Queryable<net::Packet> packets(
      trace, std::make_shared<core::RootBudget>(50.0),
      std::make_shared<core::NoiseSource>(7));

  analysis::WormOptions opt;
  opt.payload_len = 8;
  opt.src_threshold = cfg.worm_dispersion_min - 1;
  opt.dst_threshold = cfg.worm_dispersion_min - 1;
  opt.eps_group_count = 0.5;
  opt.eps_per_string_level = 1.0;
  opt.string_threshold = 25.0;
  opt.eps_dispersion = 0.5;

  const auto result = analysis::dp_worm_fingerprint(packets, opt);
  std::printf("suspicious payload groups (noisy count): %.1f\n",
              result.noisy_group_count);

  std::printf("\n%-18s %10s %10s %10s  %s\n", "payload (hex)", "count",
              "srcs", "dsts", "verdict");
  for (const auto& c : result.candidates) {
    std::printf("%-18s %10.0f %10.1f %10.1f  %s\n",
                toolkit::to_hex(c.payload).c_str(), c.noisy_count,
                c.noisy_distinct_srcs, c.noisy_distinct_dsts,
                c.flagged ? "WORM-LIKE" : "benign");
  }

  // Compare against the trusted-side ground truth.
  const auto exact = analysis::exact_worm_payloads(
      trace, 8, opt.src_threshold, opt.dst_threshold);
  std::size_t hits = 0;
  for (const auto& c : result.candidates) {
    if (c.flagged &&
        std::find(exact.begin(), exact.end(), c.payload) != exact.end()) {
      ++hits;
    }
  }
  std::printf("\nrecall: %zu of %zu true worm payloads flagged\n", hits,
              exact.size());
  return 0;
}
