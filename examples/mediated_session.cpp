// A full mediated-trace-analysis session (§1, §7): the data owner captures
// a trace to disk, loads it behind a BudgetLedger, and serves two analysts
// with individually capped budgets drawing on one dataset-wide budget.
//
//   $ ./mediated_session
#include <cstdio>
#include <filesystem>

#include "analysis/flow_stats.hpp"
#include "analysis/packet_dist.hpp"
#include "core/queryable.hpp"
#include "net/trace_io.hpp"
#include "tracegen/hotspot.hpp"

using namespace dpnet;
using net::Packet;

int main() {
  // --- capture: the owner stores the raw trace ------------------------
  const std::string path =
      (std::filesystem::temp_directory_path() / "hotspot.dpnt").string();
  {
    tracegen::HotspotGenerator generator(tracegen::HotspotConfig::small());
    const auto trace = generator.generate();
    net::write_trace_file(path, trace);
    std::printf("captured %zu packets to %s\n", trace.size(), path.c_str());
  }

  // --- serving: load once, budget per analyst -------------------------
  const auto trace = net::read_trace_file(path);
  core::BudgetLedger ledger(/*dataset_total=*/2.0);
  auto noise_alice = std::make_shared<core::NoiseSource>(101);
  auto noise_bob = std::make_shared<core::NoiseSource>(202);

  core::Queryable<Packet> alice(trace, ledger.analyst("alice", 1.0),
                                noise_alice);
  core::Queryable<Packet> bob(trace, ledger.analyst("bob", 0.5), noise_bob);

  // Alice studies packet sizes.
  const auto size_cdf = analysis::dp_packet_length_cdf(alice, 0.5, 100);
  std::printf("\nalice: packet-length CDF (16 buckets), final count %.0f\n",
              size_cdf.values.back());

  // Bob studies handshake RTTs (his join costs 2x the epsilon).
  const auto rtt_cdf = analysis::dp_rtt_cdf(bob, 0.2, 50);
  std::printf("bob:   RTT CDF measured, final count %.0f\n",
              rtt_cdf.values.back());

  std::printf("\ndataset budget: %.2f spent of 2.0 (alice %.2f, bob %.2f)\n",
              ledger.dataset_spent(), 0.5, 0.4);

  // Bob tries to overspend his personal cap.
  try {
    analysis::dp_rtt_cdf(bob, 0.2, 50);
  } catch (const core::BudgetExhaustedError& e) {
    std::printf("bob's second query refused: %s\n", e.what());
  }

  std::filesystem::remove(path);
  return 0;
}
