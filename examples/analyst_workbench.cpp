// An analyst's interactive workbench session: budget with an audit trail,
// a range tree for ad-hoc exploration, quantiles, and a top-k — the
// "extract sufficient aggregates in a privacy-efficient manner" workflow
// the paper's conclusion describes.
//
//   $ ./analyst_workbench
#include <cstdio>

#include "dpnet.hpp"

using namespace dpnet;
using net::Packet;

int main() {
  tracegen::HotspotGenerator generator(tracegen::HotspotConfig::small());
  const auto trace = generator.generate();

  auto audit = std::make_shared<core::AuditingBudget>(
      std::make_shared<core::RootBudget>(3.0));
  core::Queryable<Packet> packets(
      trace, audit, std::make_shared<core::NoiseSource>(77));
  std::printf("protected trace: %zu packets, lifetime budget 3.0\n",
              trace.size());

  // 1. Build a range tree over packet lengths once...
  {
    core::ScopedAuditLabel scope(*audit, "length-range-tree");
    toolkit::DpRangeTree tree(
        packets.select([](const Packet& p) {
          return static_cast<std::int64_t>(p.length);
        }),
        2048, 0.5);
    // ...then explore for free.
    std::printf("\nad-hoc range exploration (no further budget):\n");
    std::printf("  tiny packets  [0,64):     %.0f\n", tree.range_count(0, 64));
    std::printf("  mid packets   [64,1024):  %.0f\n",
                tree.range_count(64, 1024));
    std::printf("  near-MTU      [1400,1536):%.0f\n",
                tree.range_count(1400, 1536));
    std::printf("  odd slice     [300,555):  %.0f\n",
                tree.range_count(300, 555));
  }

  // 2. Order statistics of flow sizes.
  {
    core::ScopedAuditLabel scope(*audit, "flow-size-quantiles");
    auto flow_sizes =
        packets.group_by([](const Packet& p) { return net::flow_of(p); })
            .select([](const core::Group<net::FlowKey, Packet>& g) {
              return static_cast<double>(g.items.size());
            });
    std::printf("\nflow-size quantiles (packets per flow):\n");
    for (double q : {0.5, 0.9, 0.99}) {
      std::printf("  p%.0f: %.0f\n", q * 100,
                  flow_sizes.noisy_quantile(0.25, q,
                                            [](double v) { return v; }));
    }
  }

  // 3. Top destination ports without publishing every count.
  {
    core::ScopedAuditLabel scope(*audit, "top-ports");
    const std::vector<int> universe = {22, 25, 53, 80, 139, 143,
                                       443, 445, 993, 8080};
    const auto top = toolkit::top_k_peeling(
        packets, universe.size(),
        [&universe](const Packet& p) {
          for (std::size_t i = 0; i < universe.size(); ++i) {
            if (p.dst_port == universe[i]) return static_cast<int>(i);
          }
          return -1;
        },
        3, 0.5);
    std::printf("\ntop destination ports (ranking only released):");
    for (std::size_t i : top.indices) std::printf(" %d", universe[i]);
    std::printf("\n");
  }

  // 4. The data owner reads the books.
  std::printf("\naudit trail (%zu charges, %.2f spent):\n",
              audit->entries().size(), audit->spent());
  for (const auto& [label, total] : audit->totals_by_label()) {
    std::printf("  %-24s %.4f\n", label.c_str(), total);
  }
  return 0;
}
