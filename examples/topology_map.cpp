// Passive topology mapping (§5.3.2): cluster IP addresses by their
// hop-count vectors to a set of monitors using differentially-private
// k-means, and compare against the non-private run from the same random
// initialization.
//
//   $ ./topology_map
#include <cstdio>

#include "analysis/topology.hpp"
#include "core/queryable.hpp"
#include "tracegen/ip_scatter.hpp"

using namespace dpnet;

int main() {
  tracegen::ScatterConfig cfg = tracegen::ScatterConfig::small();
  tracegen::IpScatterGenerator generator(cfg);
  const auto records = generator.generate();
  std::printf("IPscatter: %zu records, %d monitors, %d true clusters\n",
              records.size(), cfg.monitors, cfg.clusters);

  auto budget = std::make_shared<core::RootBudget>(12.0);
  core::Queryable<net::ScatterRecord> protected_records(
      records, budget, std::make_shared<core::NoiseSource>(5));

  analysis::TopologyOptions opt;
  opt.monitors = cfg.monitors;
  opt.clusters = cfg.clusters;
  opt.iterations = 8;
  opt.eps_per_iteration = 1.0;
  opt.eps_averages = 1.0;

  // Trusted-side vectors are used only to chart the objective.
  const auto points = analysis::exact_hop_vectors(records, cfg.monitors);
  const auto dp = analysis::dp_topology_clustering(protected_records, opt,
                                                   points);
  const auto exact = analysis::exact_topology_clustering(points, opt);

  std::printf("\niteration  private-objective  noise-free-objective\n");
  for (std::size_t i = 0; i < dp.objective_trace.size(); ++i) {
    std::printf("%9zu  %17.3f  %20.3f\n", i + 1, dp.objective_trace[i],
                exact.objective_trace[i]);
  }
  std::printf("\nprivacy spent: %.2f (averages 1.0 + 8 iterations x 1.0)\n",
              budget->spent());

  std::printf("\nfirst private cluster center (hops to each monitor):\n ");
  for (std::size_t m = 0; m < dp.centers.cols(); ++m) {
    std::printf(" %.1f", dp.centers(0, m));
  }
  std::printf("\n");
  return 0;
}
