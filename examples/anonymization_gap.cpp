// Anonymization vs differential privacy (paper §1 and §6).
//
// Runs the same two analyses against (a) a prefix-preservingly anonymized,
// payload-stripped release — today's sharing practice — and (b) the
// protected raw trace through the DP engine.  The sanitized release
// answers topology-style questions exactly but cannot answer the payload
// question at all, and its structure famously invites re-identification;
// the DP route answers both, with noise, under a provable guarantee.
//
//   $ ./anonymization_gap
#include <cstdio>

#include "analysis/worm.hpp"
#include "core/queryable.hpp"
#include "net/anonymize.hpp"
#include "tracegen/hotspot.hpp"

using namespace dpnet;
using net::Packet;

int main() {
  tracegen::HotspotConfig cfg = tracegen::HotspotConfig::small();
  tracegen::HotspotGenerator generator(cfg);
  const auto trace = generator.generate();

  // --- route 1: sanitized release --------------------------------------
  const auto released = net::anonymize_trace(trace);
  std::printf("released trace: %zu packets, payloads stripped\n",
              released.size());

  std::size_t with_payload = 0;
  for (const Packet& p : released) {
    if (!p.payload.empty()) ++with_payload;
  }
  std::printf("payload-dependent analyses possible on release: %s\n",
              with_payload == 0 ? "none (payloads removed)" : "some");

  // Structure is intact — which is both the utility and the weakness:
  std::printf("subnet structure preserved: 10.0.0.1 and 10.0.0.2 share a "
              "%d-bit prefix after anonymization\n",
              net::common_prefix_len(
                  net::anonymize_ip(net::Ipv4(10, 0, 0, 1), 0x5bd1e995u),
                  net::anonymize_ip(net::Ipv4(10, 0, 0, 2), 0x5bd1e995u)));

  // --- route 2: mediated differentially-private analysis ---------------
  core::Queryable<Packet> packets(
      trace, std::make_shared<core::RootBudget>(20.0),
      std::make_shared<core::NoiseSource>(17));

  analysis::WormOptions opt;
  opt.payload_len = 8;
  opt.src_threshold = cfg.worm_dispersion_min - 1;
  opt.dst_threshold = cfg.worm_dispersion_min - 1;
  opt.eps_group_count = 1.0;
  opt.eps_per_string_level = 1.0;
  opt.string_threshold = 25.0;
  opt.eps_dispersion = 1.0;
  const auto result = analysis::dp_worm_fingerprint(packets, opt);
  std::size_t flagged = 0;
  for (const auto& c : result.candidates) {
    if (c.flagged) ++flagged;
  }
  std::printf(
      "\nDP route (needs raw payloads the release destroyed):\n"
      "  suspicious payload groups (noisy): %.1f\n"
      "  worm-like payloads spelled out and flagged: %zu\n",
      result.noisy_group_count, flagged);

  std::printf(
      "\ntakeaway: the sanitized release trades away payload analyses\n"
      "up front and still leaks structure; the DP route keeps the analyses\n"
      "and bounds the leak by the budget.\n");
  return 0;
}
