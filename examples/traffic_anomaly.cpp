// ISP-wide traffic anomaly detection (§5.3.1): measure the link x time
// load matrix privately (one epsilon total, thanks to nested Partitions),
// then run the Lakhina et al. PCA subspace method on the released matrix.
//
//   $ ./traffic_anomaly
#include <cstdio>

#include "analysis/anomaly.hpp"
#include "core/queryable.hpp"
#include "tracegen/isp_traffic.hpp"

using namespace dpnet;

int main() {
  tracegen::IspConfig cfg = tracegen::IspConfig::small();
  tracegen::IspTrafficGenerator generator(cfg);
  const auto records = generator.generate();
  std::printf("IspTraffic: %d links x %d windows, %zu packet records\n",
              cfg.links, cfg.windows, records.size());

  auto budget = std::make_shared<core::RootBudget>(1.0);
  core::Queryable<net::LinkPacket> protected_records(
      records, budget, std::make_shared<core::NoiseSource>(3));

  analysis::AnomalyOptions opt;
  opt.links = cfg.links;
  opt.windows = cfg.windows;
  opt.eps = 0.1;  // the whole matrix costs just this

  const auto matrix = analysis::dp_link_time_matrix(protected_records, opt);
  std::printf("matrix measured; privacy spent: %.2f of 1.0\n",
              budget->spent());

  // The released matrix is post-privacy data: the PCA below is ordinary
  // computation, free of charge.
  const auto norms = analysis::anomaly_norms(matrix, opt);
  double mean = 0.0;
  for (double n : norms) mean += n;
  mean /= static_cast<double>(norms.size());

  std::printf("\nwindows whose residual norm exceeds 3x the mean:\n");
  for (std::size_t w = 0; w < norms.size(); ++w) {
    if (norms[w] > 3.0 * mean) {
      std::printf("  window %3zu: norm %.0f (%.1fx mean)\n", w, norms[w],
                  norms[w] / mean);
    }
  }
  std::printf("\nimplanted anomalies were at windows:");
  for (const auto& a : cfg.anomalies) std::printf(" %d", a.window);
  std::printf("\n");
  return 0;
}
