# Empty dependencies file for bench_ablation_string_threshold.
# This may be replaced when dependencies are built.
