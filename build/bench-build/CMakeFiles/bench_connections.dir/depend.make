# Empty dependencies file for bench_connections.
# This may be replaced when dependencies are built.
