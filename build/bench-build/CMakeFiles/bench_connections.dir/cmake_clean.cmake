file(REMOVE_RECURSE
  "../bench/bench_connections"
  "../bench/bench_connections.pdb"
  "CMakeFiles/bench_connections.dir/bench_connections.cpp.o"
  "CMakeFiles/bench_connections.dir/bench_connections.cpp.o.d"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_connections.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
