file(REMOVE_RECURSE
  "../bench/bench_table4_frequent_strings"
  "../bench/bench_table4_frequent_strings.pdb"
  "CMakeFiles/bench_table4_frequent_strings.dir/bench_table4_frequent_strings.cpp.o"
  "CMakeFiles/bench_table4_frequent_strings.dir/bench_table4_frequent_strings.cpp.o.d"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_table4_frequent_strings.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
