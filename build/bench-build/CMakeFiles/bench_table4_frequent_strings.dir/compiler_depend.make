# Empty compiler generated dependencies file for bench_table4_frequent_strings.
# This may be replaced when dependencies are built.
