file(REMOVE_RECURSE
  "../bench/bench_table5_stepping_stones"
  "../bench/bench_table5_stepping_stones.pdb"
  "CMakeFiles/bench_table5_stepping_stones.dir/bench_table5_stepping_stones.cpp.o"
  "CMakeFiles/bench_table5_stepping_stones.dir/bench_table5_stepping_stones.cpp.o.d"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_table5_stepping_stones.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
