# Empty compiler generated dependencies file for bench_table5_stepping_stones.
# This may be replaced when dependencies are built.
