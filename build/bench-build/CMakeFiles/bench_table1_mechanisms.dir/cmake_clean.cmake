file(REMOVE_RECURSE
  "../bench/bench_table1_mechanisms"
  "../bench/bench_table1_mechanisms.pdb"
  "CMakeFiles/bench_table1_mechanisms.dir/bench_table1_mechanisms.cpp.o"
  "CMakeFiles/bench_table1_mechanisms.dir/bench_table1_mechanisms.cpp.o.d"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_table1_mechanisms.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
