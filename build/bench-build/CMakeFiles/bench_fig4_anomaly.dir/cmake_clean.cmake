file(REMOVE_RECURSE
  "../bench/bench_fig4_anomaly"
  "../bench/bench_fig4_anomaly.pdb"
  "CMakeFiles/bench_fig4_anomaly.dir/bench_fig4_anomaly.cpp.o"
  "CMakeFiles/bench_fig4_anomaly.dir/bench_fig4_anomaly.cpp.o.d"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_fig4_anomaly.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
