file(REMOVE_RECURSE
  "../bench/bench_scan_detection"
  "../bench/bench_scan_detection.pdb"
  "CMakeFiles/bench_scan_detection.dir/bench_scan_detection.cpp.o"
  "CMakeFiles/bench_scan_detection.dir/bench_scan_detection.cpp.o.d"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_scan_detection.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
