# Empty compiler generated dependencies file for bench_fig2_packet_port_cdf.
# This may be replaced when dependencies are built.
