# Empty dependencies file for bench_second_dataset.
# This may be replaced when dependencies are built.
