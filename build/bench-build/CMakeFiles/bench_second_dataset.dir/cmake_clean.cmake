file(REMOVE_RECURSE
  "../bench/bench_second_dataset"
  "../bench/bench_second_dataset.pdb"
  "CMakeFiles/bench_second_dataset.dir/bench_second_dataset.cpp.o"
  "CMakeFiles/bench_second_dataset.dir/bench_second_dataset.cpp.o.d"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_second_dataset.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
