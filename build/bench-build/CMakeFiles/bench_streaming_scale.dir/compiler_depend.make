# Empty compiler generated dependencies file for bench_streaming_scale.
# This may be replaced when dependencies are built.
