file(REMOVE_RECURSE
  "../bench/bench_streaming_scale"
  "../bench/bench_streaming_scale.pdb"
  "CMakeFiles/bench_streaming_scale.dir/bench_streaming_scale.cpp.o"
  "CMakeFiles/bench_streaming_scale.dir/bench_streaming_scale.cpp.o.d"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_streaming_scale.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
