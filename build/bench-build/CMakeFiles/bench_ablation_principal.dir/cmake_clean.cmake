file(REMOVE_RECURSE
  "../bench/bench_ablation_principal"
  "../bench/bench_ablation_principal.pdb"
  "CMakeFiles/bench_ablation_principal.dir/bench_ablation_principal.cpp.o"
  "CMakeFiles/bench_ablation_principal.dir/bench_ablation_principal.cpp.o.d"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_ablation_principal.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
