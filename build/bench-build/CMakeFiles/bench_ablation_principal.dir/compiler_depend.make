# Empty compiler generated dependencies file for bench_ablation_principal.
# This may be replaced when dependencies are built.
