file(REMOVE_RECURSE
  "../bench/bench_worm_fingerprint"
  "../bench/bench_worm_fingerprint.pdb"
  "CMakeFiles/bench_worm_fingerprint.dir/bench_worm_fingerprint.cpp.o"
  "CMakeFiles/bench_worm_fingerprint.dir/bench_worm_fingerprint.cpp.o.d"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_worm_fingerprint.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
