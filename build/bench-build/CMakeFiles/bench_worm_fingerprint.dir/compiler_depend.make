# Empty compiler generated dependencies file for bench_worm_fingerprint.
# This may be replaced when dependencies are built.
