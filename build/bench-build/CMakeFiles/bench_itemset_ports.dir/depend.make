# Empty dependencies file for bench_itemset_ports.
# This may be replaced when dependencies are built.
