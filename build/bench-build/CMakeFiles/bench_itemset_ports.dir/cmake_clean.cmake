file(REMOVE_RECURSE
  "../bench/bench_itemset_ports"
  "../bench/bench_itemset_ports.pdb"
  "CMakeFiles/bench_itemset_ports.dir/bench_itemset_ports.cpp.o"
  "CMakeFiles/bench_itemset_ports.dir/bench_itemset_ports.cpp.o.d"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_itemset_ports.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
