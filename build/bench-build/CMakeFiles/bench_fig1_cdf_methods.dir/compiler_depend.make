# Empty compiler generated dependencies file for bench_fig1_cdf_methods.
# This may be replaced when dependencies are built.
