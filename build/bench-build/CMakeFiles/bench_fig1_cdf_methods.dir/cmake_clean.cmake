file(REMOVE_RECURSE
  "../bench/bench_fig1_cdf_methods"
  "../bench/bench_fig1_cdf_methods.pdb"
  "CMakeFiles/bench_fig1_cdf_methods.dir/bench_fig1_cdf_methods.cpp.o"
  "CMakeFiles/bench_fig1_cdf_methods.dir/bench_fig1_cdf_methods.cpp.o.d"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_fig1_cdf_methods.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
