# Empty dependencies file for bench_rule_mining.
# This may be replaced when dependencies are built.
