file(REMOVE_RECURSE
  "../bench/bench_rule_mining"
  "../bench/bench_rule_mining.pdb"
  "CMakeFiles/bench_rule_mining.dir/bench_rule_mining.cpp.o"
  "CMakeFiles/bench_rule_mining.dir/bench_rule_mining.cpp.o.d"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_rule_mining.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
