# Empty dependencies file for bench_ablation_sliding.
# This may be replaced when dependencies are built.
