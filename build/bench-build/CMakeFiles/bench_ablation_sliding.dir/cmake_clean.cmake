file(REMOVE_RECURSE
  "../bench/bench_ablation_sliding"
  "../bench/bench_ablation_sliding.pdb"
  "CMakeFiles/bench_ablation_sliding.dir/bench_ablation_sliding.cpp.o"
  "CMakeFiles/bench_ablation_sliding.dir/bench_ablation_sliding.cpp.o.d"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_ablation_sliding.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
