# Empty dependencies file for bench_quickstart_count.
# This may be replaced when dependencies are built.
