file(REMOVE_RECURSE
  "../bench/bench_quickstart_count"
  "../bench/bench_quickstart_count.pdb"
  "CMakeFiles/bench_quickstart_count.dir/bench_quickstart_count.cpp.o"
  "CMakeFiles/bench_quickstart_count.dir/bench_quickstart_count.cpp.o.d"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_quickstart_count.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
