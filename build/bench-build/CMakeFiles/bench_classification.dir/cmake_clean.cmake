file(REMOVE_RECURSE
  "../bench/bench_classification"
  "../bench/bench_classification.pdb"
  "CMakeFiles/bench_classification.dir/bench_classification.cpp.o"
  "CMakeFiles/bench_classification.dir/bench_classification.cpp.o.d"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_classification.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
