file(REMOVE_RECURSE
  "CMakeFiles/dpnet_stats.dir/metrics.cpp.o"
  "CMakeFiles/dpnet_stats.dir/metrics.cpp.o.d"
  "libdpnet_stats.a"
  "libdpnet_stats.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/dpnet_stats.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
