# Empty dependencies file for dpnet_stats.
# This may be replaced when dependencies are built.
