file(REMOVE_RECURSE
  "libdpnet_stats.a"
)
