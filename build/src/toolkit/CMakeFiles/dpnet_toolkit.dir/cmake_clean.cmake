file(REMOVE_RECURSE
  "CMakeFiles/dpnet_toolkit.dir/cdf.cpp.o"
  "CMakeFiles/dpnet_toolkit.dir/cdf.cpp.o.d"
  "CMakeFiles/dpnet_toolkit.dir/frequent_strings.cpp.o"
  "CMakeFiles/dpnet_toolkit.dir/frequent_strings.cpp.o.d"
  "CMakeFiles/dpnet_toolkit.dir/itemsets.cpp.o"
  "CMakeFiles/dpnet_toolkit.dir/itemsets.cpp.o.d"
  "CMakeFiles/dpnet_toolkit.dir/range_tree.cpp.o"
  "CMakeFiles/dpnet_toolkit.dir/range_tree.cpp.o.d"
  "CMakeFiles/dpnet_toolkit.dir/sliding.cpp.o"
  "CMakeFiles/dpnet_toolkit.dir/sliding.cpp.o.d"
  "libdpnet_toolkit.a"
  "libdpnet_toolkit.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/dpnet_toolkit.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
