
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/toolkit/cdf.cpp" "src/toolkit/CMakeFiles/dpnet_toolkit.dir/cdf.cpp.o" "gcc" "src/toolkit/CMakeFiles/dpnet_toolkit.dir/cdf.cpp.o.d"
  "/root/repo/src/toolkit/frequent_strings.cpp" "src/toolkit/CMakeFiles/dpnet_toolkit.dir/frequent_strings.cpp.o" "gcc" "src/toolkit/CMakeFiles/dpnet_toolkit.dir/frequent_strings.cpp.o.d"
  "/root/repo/src/toolkit/itemsets.cpp" "src/toolkit/CMakeFiles/dpnet_toolkit.dir/itemsets.cpp.o" "gcc" "src/toolkit/CMakeFiles/dpnet_toolkit.dir/itemsets.cpp.o.d"
  "/root/repo/src/toolkit/range_tree.cpp" "src/toolkit/CMakeFiles/dpnet_toolkit.dir/range_tree.cpp.o" "gcc" "src/toolkit/CMakeFiles/dpnet_toolkit.dir/range_tree.cpp.o.d"
  "/root/repo/src/toolkit/sliding.cpp" "src/toolkit/CMakeFiles/dpnet_toolkit.dir/sliding.cpp.o" "gcc" "src/toolkit/CMakeFiles/dpnet_toolkit.dir/sliding.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/core/CMakeFiles/dpnet_core.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
