# Empty dependencies file for dpnet_toolkit.
# This may be replaced when dependencies are built.
