file(REMOVE_RECURSE
  "libdpnet_toolkit.a"
)
