file(REMOVE_RECURSE
  "CMakeFiles/dpnet_analysis.dir/anomaly.cpp.o"
  "CMakeFiles/dpnet_analysis.dir/anomaly.cpp.o.d"
  "CMakeFiles/dpnet_analysis.dir/flow_stats.cpp.o"
  "CMakeFiles/dpnet_analysis.dir/flow_stats.cpp.o.d"
  "CMakeFiles/dpnet_analysis.dir/packet_dist.cpp.o"
  "CMakeFiles/dpnet_analysis.dir/packet_dist.cpp.o.d"
  "CMakeFiles/dpnet_analysis.dir/principal.cpp.o"
  "CMakeFiles/dpnet_analysis.dir/principal.cpp.o.d"
  "CMakeFiles/dpnet_analysis.dir/rules.cpp.o"
  "CMakeFiles/dpnet_analysis.dir/rules.cpp.o.d"
  "CMakeFiles/dpnet_analysis.dir/scan_detection.cpp.o"
  "CMakeFiles/dpnet_analysis.dir/scan_detection.cpp.o.d"
  "CMakeFiles/dpnet_analysis.dir/stepping_stones.cpp.o"
  "CMakeFiles/dpnet_analysis.dir/stepping_stones.cpp.o.d"
  "CMakeFiles/dpnet_analysis.dir/topology.cpp.o"
  "CMakeFiles/dpnet_analysis.dir/topology.cpp.o.d"
  "CMakeFiles/dpnet_analysis.dir/worm.cpp.o"
  "CMakeFiles/dpnet_analysis.dir/worm.cpp.o.d"
  "libdpnet_analysis.a"
  "libdpnet_analysis.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/dpnet_analysis.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
