file(REMOVE_RECURSE
  "libdpnet_analysis.a"
)
