# Empty dependencies file for dpnet_analysis.
# This may be replaced when dependencies are built.
