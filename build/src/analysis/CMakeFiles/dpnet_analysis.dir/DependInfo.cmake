
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/analysis/anomaly.cpp" "src/analysis/CMakeFiles/dpnet_analysis.dir/anomaly.cpp.o" "gcc" "src/analysis/CMakeFiles/dpnet_analysis.dir/anomaly.cpp.o.d"
  "/root/repo/src/analysis/flow_stats.cpp" "src/analysis/CMakeFiles/dpnet_analysis.dir/flow_stats.cpp.o" "gcc" "src/analysis/CMakeFiles/dpnet_analysis.dir/flow_stats.cpp.o.d"
  "/root/repo/src/analysis/packet_dist.cpp" "src/analysis/CMakeFiles/dpnet_analysis.dir/packet_dist.cpp.o" "gcc" "src/analysis/CMakeFiles/dpnet_analysis.dir/packet_dist.cpp.o.d"
  "/root/repo/src/analysis/principal.cpp" "src/analysis/CMakeFiles/dpnet_analysis.dir/principal.cpp.o" "gcc" "src/analysis/CMakeFiles/dpnet_analysis.dir/principal.cpp.o.d"
  "/root/repo/src/analysis/rules.cpp" "src/analysis/CMakeFiles/dpnet_analysis.dir/rules.cpp.o" "gcc" "src/analysis/CMakeFiles/dpnet_analysis.dir/rules.cpp.o.d"
  "/root/repo/src/analysis/scan_detection.cpp" "src/analysis/CMakeFiles/dpnet_analysis.dir/scan_detection.cpp.o" "gcc" "src/analysis/CMakeFiles/dpnet_analysis.dir/scan_detection.cpp.o.d"
  "/root/repo/src/analysis/stepping_stones.cpp" "src/analysis/CMakeFiles/dpnet_analysis.dir/stepping_stones.cpp.o" "gcc" "src/analysis/CMakeFiles/dpnet_analysis.dir/stepping_stones.cpp.o.d"
  "/root/repo/src/analysis/topology.cpp" "src/analysis/CMakeFiles/dpnet_analysis.dir/topology.cpp.o" "gcc" "src/analysis/CMakeFiles/dpnet_analysis.dir/topology.cpp.o.d"
  "/root/repo/src/analysis/worm.cpp" "src/analysis/CMakeFiles/dpnet_analysis.dir/worm.cpp.o" "gcc" "src/analysis/CMakeFiles/dpnet_analysis.dir/worm.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/core/CMakeFiles/dpnet_core.dir/DependInfo.cmake"
  "/root/repo/build/src/net/CMakeFiles/dpnet_net.dir/DependInfo.cmake"
  "/root/repo/build/src/toolkit/CMakeFiles/dpnet_toolkit.dir/DependInfo.cmake"
  "/root/repo/build/src/linalg/CMakeFiles/dpnet_linalg.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
