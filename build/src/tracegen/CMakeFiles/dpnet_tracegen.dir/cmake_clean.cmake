file(REMOVE_RECURSE
  "CMakeFiles/dpnet_tracegen.dir/distributions.cpp.o"
  "CMakeFiles/dpnet_tracegen.dir/distributions.cpp.o.d"
  "CMakeFiles/dpnet_tracegen.dir/hotspot.cpp.o"
  "CMakeFiles/dpnet_tracegen.dir/hotspot.cpp.o.d"
  "CMakeFiles/dpnet_tracegen.dir/ip_scatter.cpp.o"
  "CMakeFiles/dpnet_tracegen.dir/ip_scatter.cpp.o.d"
  "CMakeFiles/dpnet_tracegen.dir/isp_traffic.cpp.o"
  "CMakeFiles/dpnet_tracegen.dir/isp_traffic.cpp.o.d"
  "libdpnet_tracegen.a"
  "libdpnet_tracegen.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/dpnet_tracegen.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
