# Empty dependencies file for dpnet_tracegen.
# This may be replaced when dependencies are built.
