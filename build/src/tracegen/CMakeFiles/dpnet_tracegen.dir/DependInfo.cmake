
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/tracegen/distributions.cpp" "src/tracegen/CMakeFiles/dpnet_tracegen.dir/distributions.cpp.o" "gcc" "src/tracegen/CMakeFiles/dpnet_tracegen.dir/distributions.cpp.o.d"
  "/root/repo/src/tracegen/hotspot.cpp" "src/tracegen/CMakeFiles/dpnet_tracegen.dir/hotspot.cpp.o" "gcc" "src/tracegen/CMakeFiles/dpnet_tracegen.dir/hotspot.cpp.o.d"
  "/root/repo/src/tracegen/ip_scatter.cpp" "src/tracegen/CMakeFiles/dpnet_tracegen.dir/ip_scatter.cpp.o" "gcc" "src/tracegen/CMakeFiles/dpnet_tracegen.dir/ip_scatter.cpp.o.d"
  "/root/repo/src/tracegen/isp_traffic.cpp" "src/tracegen/CMakeFiles/dpnet_tracegen.dir/isp_traffic.cpp.o" "gcc" "src/tracegen/CMakeFiles/dpnet_tracegen.dir/isp_traffic.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/net/CMakeFiles/dpnet_net.dir/DependInfo.cmake"
  "/root/repo/build/src/core/CMakeFiles/dpnet_core.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
