file(REMOVE_RECURSE
  "libdpnet_tracegen.a"
)
