
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/net/anonymize.cpp" "src/net/CMakeFiles/dpnet_net.dir/anonymize.cpp.o" "gcc" "src/net/CMakeFiles/dpnet_net.dir/anonymize.cpp.o.d"
  "/root/repo/src/net/classifier.cpp" "src/net/CMakeFiles/dpnet_net.dir/classifier.cpp.o" "gcc" "src/net/CMakeFiles/dpnet_net.dir/classifier.cpp.o.d"
  "/root/repo/src/net/flow.cpp" "src/net/CMakeFiles/dpnet_net.dir/flow.cpp.o" "gcc" "src/net/CMakeFiles/dpnet_net.dir/flow.cpp.o.d"
  "/root/repo/src/net/ip.cpp" "src/net/CMakeFiles/dpnet_net.dir/ip.cpp.o" "gcc" "src/net/CMakeFiles/dpnet_net.dir/ip.cpp.o.d"
  "/root/repo/src/net/packet.cpp" "src/net/CMakeFiles/dpnet_net.dir/packet.cpp.o" "gcc" "src/net/CMakeFiles/dpnet_net.dir/packet.cpp.o.d"
  "/root/repo/src/net/pcap.cpp" "src/net/CMakeFiles/dpnet_net.dir/pcap.cpp.o" "gcc" "src/net/CMakeFiles/dpnet_net.dir/pcap.cpp.o.d"
  "/root/repo/src/net/tcp.cpp" "src/net/CMakeFiles/dpnet_net.dir/tcp.cpp.o" "gcc" "src/net/CMakeFiles/dpnet_net.dir/tcp.cpp.o.d"
  "/root/repo/src/net/trace_io.cpp" "src/net/CMakeFiles/dpnet_net.dir/trace_io.cpp.o" "gcc" "src/net/CMakeFiles/dpnet_net.dir/trace_io.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/core/CMakeFiles/dpnet_core.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
