# Empty dependencies file for dpnet_net.
# This may be replaced when dependencies are built.
