file(REMOVE_RECURSE
  "libdpnet_net.a"
)
