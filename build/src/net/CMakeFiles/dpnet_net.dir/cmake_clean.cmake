file(REMOVE_RECURSE
  "CMakeFiles/dpnet_net.dir/anonymize.cpp.o"
  "CMakeFiles/dpnet_net.dir/anonymize.cpp.o.d"
  "CMakeFiles/dpnet_net.dir/classifier.cpp.o"
  "CMakeFiles/dpnet_net.dir/classifier.cpp.o.d"
  "CMakeFiles/dpnet_net.dir/flow.cpp.o"
  "CMakeFiles/dpnet_net.dir/flow.cpp.o.d"
  "CMakeFiles/dpnet_net.dir/ip.cpp.o"
  "CMakeFiles/dpnet_net.dir/ip.cpp.o.d"
  "CMakeFiles/dpnet_net.dir/packet.cpp.o"
  "CMakeFiles/dpnet_net.dir/packet.cpp.o.d"
  "CMakeFiles/dpnet_net.dir/pcap.cpp.o"
  "CMakeFiles/dpnet_net.dir/pcap.cpp.o.d"
  "CMakeFiles/dpnet_net.dir/tcp.cpp.o"
  "CMakeFiles/dpnet_net.dir/tcp.cpp.o.d"
  "CMakeFiles/dpnet_net.dir/trace_io.cpp.o"
  "CMakeFiles/dpnet_net.dir/trace_io.cpp.o.d"
  "libdpnet_net.a"
  "libdpnet_net.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/dpnet_net.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
