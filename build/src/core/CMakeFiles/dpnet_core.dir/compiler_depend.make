# Empty compiler generated dependencies file for dpnet_core.
# This may be replaced when dependencies are built.
