file(REMOVE_RECURSE
  "CMakeFiles/dpnet_core.dir/budget.cpp.o"
  "CMakeFiles/dpnet_core.dir/budget.cpp.o.d"
  "CMakeFiles/dpnet_core.dir/mechanisms.cpp.o"
  "CMakeFiles/dpnet_core.dir/mechanisms.cpp.o.d"
  "CMakeFiles/dpnet_core.dir/noise.cpp.o"
  "CMakeFiles/dpnet_core.dir/noise.cpp.o.d"
  "libdpnet_core.a"
  "libdpnet_core.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/dpnet_core.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
