file(REMOVE_RECURSE
  "libdpnet_core.a"
)
