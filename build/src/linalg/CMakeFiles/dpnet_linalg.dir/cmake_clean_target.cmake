file(REMOVE_RECURSE
  "libdpnet_linalg.a"
)
