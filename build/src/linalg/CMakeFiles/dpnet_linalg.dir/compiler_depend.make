# Empty compiler generated dependencies file for dpnet_linalg.
# This may be replaced when dependencies are built.
