file(REMOVE_RECURSE
  "CMakeFiles/dpnet_linalg.dir/eigen.cpp.o"
  "CMakeFiles/dpnet_linalg.dir/eigen.cpp.o.d"
  "CMakeFiles/dpnet_linalg.dir/gmm.cpp.o"
  "CMakeFiles/dpnet_linalg.dir/gmm.cpp.o.d"
  "CMakeFiles/dpnet_linalg.dir/kmeans.cpp.o"
  "CMakeFiles/dpnet_linalg.dir/kmeans.cpp.o.d"
  "CMakeFiles/dpnet_linalg.dir/matrix.cpp.o"
  "CMakeFiles/dpnet_linalg.dir/matrix.cpp.o.d"
  "CMakeFiles/dpnet_linalg.dir/pca.cpp.o"
  "CMakeFiles/dpnet_linalg.dir/pca.cpp.o.d"
  "libdpnet_linalg.a"
  "libdpnet_linalg.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/dpnet_linalg.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
