file(REMOVE_RECURSE
  "CMakeFiles/traffic_anomaly.dir/traffic_anomaly.cpp.o"
  "CMakeFiles/traffic_anomaly.dir/traffic_anomaly.cpp.o.d"
  "traffic_anomaly"
  "traffic_anomaly.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/traffic_anomaly.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
