# Empty dependencies file for traffic_anomaly.
# This may be replaced when dependencies are built.
