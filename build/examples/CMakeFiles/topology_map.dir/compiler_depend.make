# Empty compiler generated dependencies file for topology_map.
# This may be replaced when dependencies are built.
