file(REMOVE_RECURSE
  "CMakeFiles/topology_map.dir/topology_map.cpp.o"
  "CMakeFiles/topology_map.dir/topology_map.cpp.o.d"
  "topology_map"
  "topology_map.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/topology_map.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
