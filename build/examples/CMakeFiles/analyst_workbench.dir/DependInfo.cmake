
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/examples/analyst_workbench.cpp" "examples/CMakeFiles/analyst_workbench.dir/analyst_workbench.cpp.o" "gcc" "examples/CMakeFiles/analyst_workbench.dir/analyst_workbench.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/analysis/CMakeFiles/dpnet_analysis.dir/DependInfo.cmake"
  "/root/repo/build/src/toolkit/CMakeFiles/dpnet_toolkit.dir/DependInfo.cmake"
  "/root/repo/build/src/tracegen/CMakeFiles/dpnet_tracegen.dir/DependInfo.cmake"
  "/root/repo/build/src/linalg/CMakeFiles/dpnet_linalg.dir/DependInfo.cmake"
  "/root/repo/build/src/net/CMakeFiles/dpnet_net.dir/DependInfo.cmake"
  "/root/repo/build/src/stats/CMakeFiles/dpnet_stats.dir/DependInfo.cmake"
  "/root/repo/build/src/core/CMakeFiles/dpnet_core.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
