# Empty dependencies file for analyst_workbench.
# This may be replaced when dependencies are built.
