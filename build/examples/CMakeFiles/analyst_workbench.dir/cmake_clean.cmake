file(REMOVE_RECURSE
  "CMakeFiles/analyst_workbench.dir/analyst_workbench.cpp.o"
  "CMakeFiles/analyst_workbench.dir/analyst_workbench.cpp.o.d"
  "analyst_workbench"
  "analyst_workbench.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/analyst_workbench.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
