# Empty compiler generated dependencies file for mediated_session.
# This may be replaced when dependencies are built.
