file(REMOVE_RECURSE
  "CMakeFiles/mediated_session.dir/mediated_session.cpp.o"
  "CMakeFiles/mediated_session.dir/mediated_session.cpp.o.d"
  "mediated_session"
  "mediated_session.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/mediated_session.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
