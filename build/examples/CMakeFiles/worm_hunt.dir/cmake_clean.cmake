file(REMOVE_RECURSE
  "CMakeFiles/worm_hunt.dir/worm_hunt.cpp.o"
  "CMakeFiles/worm_hunt.dir/worm_hunt.cpp.o.d"
  "worm_hunt"
  "worm_hunt.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/worm_hunt.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
