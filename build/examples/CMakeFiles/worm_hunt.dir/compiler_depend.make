# Empty compiler generated dependencies file for worm_hunt.
# This may be replaced when dependencies are built.
