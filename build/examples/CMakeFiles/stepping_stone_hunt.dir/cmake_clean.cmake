file(REMOVE_RECURSE
  "CMakeFiles/stepping_stone_hunt.dir/stepping_stone_hunt.cpp.o"
  "CMakeFiles/stepping_stone_hunt.dir/stepping_stone_hunt.cpp.o.d"
  "stepping_stone_hunt"
  "stepping_stone_hunt.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/stepping_stone_hunt.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
