# Empty dependencies file for stepping_stone_hunt.
# This may be replaced when dependencies are built.
