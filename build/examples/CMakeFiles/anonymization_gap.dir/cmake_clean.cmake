file(REMOVE_RECURSE
  "CMakeFiles/anonymization_gap.dir/anonymization_gap.cpp.o"
  "CMakeFiles/anonymization_gap.dir/anonymization_gap.cpp.o.d"
  "anonymization_gap"
  "anonymization_gap.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/anonymization_gap.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
