# Empty compiler generated dependencies file for anonymization_gap.
# This may be replaced when dependencies are built.
