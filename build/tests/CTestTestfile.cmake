# CMake generated Testfile for 
# Source directory: /root/repo/tests
# Build directory: /root/repo/build/tests
# 
# This file includes the relevant testing commands required for 
# testing this directory and lists subdirectories to be tested as well.
include("/root/repo/build/tests/core_tests[1]_include.cmake")
include("/root/repo/build/tests/net_tests[1]_include.cmake")
include("/root/repo/build/tests/stats_tests[1]_include.cmake")
include("/root/repo/build/tests/tracegen_tests[1]_include.cmake")
include("/root/repo/build/tests/toolkit_tests[1]_include.cmake")
include("/root/repo/build/tests/linalg_tests[1]_include.cmake")
include("/root/repo/build/tests/analysis_tests[1]_include.cmake")
include("/root/repo/build/tests/property_tests[1]_include.cmake")
include("/root/repo/build/tests/integration_tests[1]_include.cmake")
add_test(cli_smoke "sh" "/root/repo/tests/cli/test_cli.sh" "/root/repo/build/tools/dpnet_cli")
set_tests_properties(cli_smoke PROPERTIES  _BACKTRACE_TRIPLES "/root/repo/tests/CMakeLists.txt;82;add_test;/root/repo/tests/CMakeLists.txt;0;")
