file(REMOVE_RECURSE
  "CMakeFiles/linalg_tests.dir/linalg/test_eigen.cpp.o"
  "CMakeFiles/linalg_tests.dir/linalg/test_eigen.cpp.o.d"
  "CMakeFiles/linalg_tests.dir/linalg/test_gmm.cpp.o"
  "CMakeFiles/linalg_tests.dir/linalg/test_gmm.cpp.o.d"
  "CMakeFiles/linalg_tests.dir/linalg/test_kmeans.cpp.o"
  "CMakeFiles/linalg_tests.dir/linalg/test_kmeans.cpp.o.d"
  "CMakeFiles/linalg_tests.dir/linalg/test_matrix.cpp.o"
  "CMakeFiles/linalg_tests.dir/linalg/test_matrix.cpp.o.d"
  "CMakeFiles/linalg_tests.dir/linalg/test_pca.cpp.o"
  "CMakeFiles/linalg_tests.dir/linalg/test_pca.cpp.o.d"
  "linalg_tests"
  "linalg_tests.pdb"
  "linalg_tests[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/linalg_tests.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
