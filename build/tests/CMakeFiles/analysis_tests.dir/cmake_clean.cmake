file(REMOVE_RECURSE
  "CMakeFiles/analysis_tests.dir/analysis/test_anomaly.cpp.o"
  "CMakeFiles/analysis_tests.dir/analysis/test_anomaly.cpp.o.d"
  "CMakeFiles/analysis_tests.dir/analysis/test_eps_ordering.cpp.o"
  "CMakeFiles/analysis_tests.dir/analysis/test_eps_ordering.cpp.o.d"
  "CMakeFiles/analysis_tests.dir/analysis/test_flow_stats.cpp.o"
  "CMakeFiles/analysis_tests.dir/analysis/test_flow_stats.cpp.o.d"
  "CMakeFiles/analysis_tests.dir/analysis/test_packet_dist.cpp.o"
  "CMakeFiles/analysis_tests.dir/analysis/test_packet_dist.cpp.o.d"
  "CMakeFiles/analysis_tests.dir/analysis/test_principal.cpp.o"
  "CMakeFiles/analysis_tests.dir/analysis/test_principal.cpp.o.d"
  "CMakeFiles/analysis_tests.dir/analysis/test_rules.cpp.o"
  "CMakeFiles/analysis_tests.dir/analysis/test_rules.cpp.o.d"
  "CMakeFiles/analysis_tests.dir/analysis/test_scan_detection.cpp.o"
  "CMakeFiles/analysis_tests.dir/analysis/test_scan_detection.cpp.o.d"
  "CMakeFiles/analysis_tests.dir/analysis/test_stepping_stones.cpp.o"
  "CMakeFiles/analysis_tests.dir/analysis/test_stepping_stones.cpp.o.d"
  "CMakeFiles/analysis_tests.dir/analysis/test_topology.cpp.o"
  "CMakeFiles/analysis_tests.dir/analysis/test_topology.cpp.o.d"
  "CMakeFiles/analysis_tests.dir/analysis/test_worm.cpp.o"
  "CMakeFiles/analysis_tests.dir/analysis/test_worm.cpp.o.d"
  "analysis_tests"
  "analysis_tests.pdb"
  "analysis_tests[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/analysis_tests.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
