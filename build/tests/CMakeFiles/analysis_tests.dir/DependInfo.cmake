
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/tests/analysis/test_anomaly.cpp" "tests/CMakeFiles/analysis_tests.dir/analysis/test_anomaly.cpp.o" "gcc" "tests/CMakeFiles/analysis_tests.dir/analysis/test_anomaly.cpp.o.d"
  "/root/repo/tests/analysis/test_eps_ordering.cpp" "tests/CMakeFiles/analysis_tests.dir/analysis/test_eps_ordering.cpp.o" "gcc" "tests/CMakeFiles/analysis_tests.dir/analysis/test_eps_ordering.cpp.o.d"
  "/root/repo/tests/analysis/test_flow_stats.cpp" "tests/CMakeFiles/analysis_tests.dir/analysis/test_flow_stats.cpp.o" "gcc" "tests/CMakeFiles/analysis_tests.dir/analysis/test_flow_stats.cpp.o.d"
  "/root/repo/tests/analysis/test_packet_dist.cpp" "tests/CMakeFiles/analysis_tests.dir/analysis/test_packet_dist.cpp.o" "gcc" "tests/CMakeFiles/analysis_tests.dir/analysis/test_packet_dist.cpp.o.d"
  "/root/repo/tests/analysis/test_principal.cpp" "tests/CMakeFiles/analysis_tests.dir/analysis/test_principal.cpp.o" "gcc" "tests/CMakeFiles/analysis_tests.dir/analysis/test_principal.cpp.o.d"
  "/root/repo/tests/analysis/test_rules.cpp" "tests/CMakeFiles/analysis_tests.dir/analysis/test_rules.cpp.o" "gcc" "tests/CMakeFiles/analysis_tests.dir/analysis/test_rules.cpp.o.d"
  "/root/repo/tests/analysis/test_scan_detection.cpp" "tests/CMakeFiles/analysis_tests.dir/analysis/test_scan_detection.cpp.o" "gcc" "tests/CMakeFiles/analysis_tests.dir/analysis/test_scan_detection.cpp.o.d"
  "/root/repo/tests/analysis/test_stepping_stones.cpp" "tests/CMakeFiles/analysis_tests.dir/analysis/test_stepping_stones.cpp.o" "gcc" "tests/CMakeFiles/analysis_tests.dir/analysis/test_stepping_stones.cpp.o.d"
  "/root/repo/tests/analysis/test_topology.cpp" "tests/CMakeFiles/analysis_tests.dir/analysis/test_topology.cpp.o" "gcc" "tests/CMakeFiles/analysis_tests.dir/analysis/test_topology.cpp.o.d"
  "/root/repo/tests/analysis/test_worm.cpp" "tests/CMakeFiles/analysis_tests.dir/analysis/test_worm.cpp.o" "gcc" "tests/CMakeFiles/analysis_tests.dir/analysis/test_worm.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/analysis/CMakeFiles/dpnet_analysis.dir/DependInfo.cmake"
  "/root/repo/build/src/toolkit/CMakeFiles/dpnet_toolkit.dir/DependInfo.cmake"
  "/root/repo/build/src/tracegen/CMakeFiles/dpnet_tracegen.dir/DependInfo.cmake"
  "/root/repo/build/src/linalg/CMakeFiles/dpnet_linalg.dir/DependInfo.cmake"
  "/root/repo/build/src/net/CMakeFiles/dpnet_net.dir/DependInfo.cmake"
  "/root/repo/build/src/stats/CMakeFiles/dpnet_stats.dir/DependInfo.cmake"
  "/root/repo/build/src/core/CMakeFiles/dpnet_core.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
