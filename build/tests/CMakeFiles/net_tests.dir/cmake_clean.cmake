file(REMOVE_RECURSE
  "CMakeFiles/net_tests.dir/net/test_anonymize.cpp.o"
  "CMakeFiles/net_tests.dir/net/test_anonymize.cpp.o.d"
  "CMakeFiles/net_tests.dir/net/test_classifier.cpp.o"
  "CMakeFiles/net_tests.dir/net/test_classifier.cpp.o.d"
  "CMakeFiles/net_tests.dir/net/test_flow.cpp.o"
  "CMakeFiles/net_tests.dir/net/test_flow.cpp.o.d"
  "CMakeFiles/net_tests.dir/net/test_ip.cpp.o"
  "CMakeFiles/net_tests.dir/net/test_ip.cpp.o.d"
  "CMakeFiles/net_tests.dir/net/test_packet.cpp.o"
  "CMakeFiles/net_tests.dir/net/test_packet.cpp.o.d"
  "CMakeFiles/net_tests.dir/net/test_pcap.cpp.o"
  "CMakeFiles/net_tests.dir/net/test_pcap.cpp.o.d"
  "CMakeFiles/net_tests.dir/net/test_tcp.cpp.o"
  "CMakeFiles/net_tests.dir/net/test_tcp.cpp.o.d"
  "CMakeFiles/net_tests.dir/net/test_trace_io.cpp.o"
  "CMakeFiles/net_tests.dir/net/test_trace_io.cpp.o.d"
  "net_tests"
  "net_tests.pdb"
  "net_tests[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/net_tests.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
