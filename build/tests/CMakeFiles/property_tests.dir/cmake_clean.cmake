file(REMOVE_RECURSE
  "CMakeFiles/property_tests.dir/property/test_accuracy_scaling.cpp.o"
  "CMakeFiles/property_tests.dir/property/test_accuracy_scaling.cpp.o.d"
  "CMakeFiles/property_tests.dir/property/test_analysis_equivalence.cpp.o"
  "CMakeFiles/property_tests.dir/property/test_analysis_equivalence.cpp.o.d"
  "CMakeFiles/property_tests.dir/property/test_dp_guarantee.cpp.o"
  "CMakeFiles/property_tests.dir/property/test_dp_guarantee.cpp.o.d"
  "CMakeFiles/property_tests.dir/property/test_format_fuzz.cpp.o"
  "CMakeFiles/property_tests.dir/property/test_format_fuzz.cpp.o.d"
  "CMakeFiles/property_tests.dir/property/test_queryable_laws.cpp.o"
  "CMakeFiles/property_tests.dir/property/test_queryable_laws.cpp.o.d"
  "property_tests"
  "property_tests.pdb"
  "property_tests[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/property_tests.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
