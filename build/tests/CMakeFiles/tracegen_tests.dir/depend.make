# Empty dependencies file for tracegen_tests.
# This may be replaced when dependencies are built.
