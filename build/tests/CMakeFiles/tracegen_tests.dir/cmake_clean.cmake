file(REMOVE_RECURSE
  "CMakeFiles/tracegen_tests.dir/tracegen/test_distributions.cpp.o"
  "CMakeFiles/tracegen_tests.dir/tracegen/test_distributions.cpp.o.d"
  "CMakeFiles/tracegen_tests.dir/tracegen/test_hotspot.cpp.o"
  "CMakeFiles/tracegen_tests.dir/tracegen/test_hotspot.cpp.o.d"
  "CMakeFiles/tracegen_tests.dir/tracegen/test_hotspot_sweep.cpp.o"
  "CMakeFiles/tracegen_tests.dir/tracegen/test_hotspot_sweep.cpp.o.d"
  "CMakeFiles/tracegen_tests.dir/tracegen/test_ip_scatter.cpp.o"
  "CMakeFiles/tracegen_tests.dir/tracegen/test_ip_scatter.cpp.o.d"
  "CMakeFiles/tracegen_tests.dir/tracegen/test_isp_traffic.cpp.o"
  "CMakeFiles/tracegen_tests.dir/tracegen/test_isp_traffic.cpp.o.d"
  "tracegen_tests"
  "tracegen_tests.pdb"
  "tracegen_tests[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/tracegen_tests.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
