file(REMOVE_RECURSE
  "CMakeFiles/toolkit_tests.dir/toolkit/test_cdf.cpp.o"
  "CMakeFiles/toolkit_tests.dir/toolkit/test_cdf.cpp.o.d"
  "CMakeFiles/toolkit_tests.dir/toolkit/test_frequent_strings.cpp.o"
  "CMakeFiles/toolkit_tests.dir/toolkit/test_frequent_strings.cpp.o.d"
  "CMakeFiles/toolkit_tests.dir/toolkit/test_isotonic.cpp.o"
  "CMakeFiles/toolkit_tests.dir/toolkit/test_isotonic.cpp.o.d"
  "CMakeFiles/toolkit_tests.dir/toolkit/test_itemsets.cpp.o"
  "CMakeFiles/toolkit_tests.dir/toolkit/test_itemsets.cpp.o.d"
  "CMakeFiles/toolkit_tests.dir/toolkit/test_range_tree.cpp.o"
  "CMakeFiles/toolkit_tests.dir/toolkit/test_range_tree.cpp.o.d"
  "CMakeFiles/toolkit_tests.dir/toolkit/test_sliding.cpp.o"
  "CMakeFiles/toolkit_tests.dir/toolkit/test_sliding.cpp.o.d"
  "CMakeFiles/toolkit_tests.dir/toolkit/test_topk.cpp.o"
  "CMakeFiles/toolkit_tests.dir/toolkit/test_topk.cpp.o.d"
  "toolkit_tests"
  "toolkit_tests.pdb"
  "toolkit_tests[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/toolkit_tests.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
