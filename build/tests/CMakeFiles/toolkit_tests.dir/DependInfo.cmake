
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/tests/toolkit/test_cdf.cpp" "tests/CMakeFiles/toolkit_tests.dir/toolkit/test_cdf.cpp.o" "gcc" "tests/CMakeFiles/toolkit_tests.dir/toolkit/test_cdf.cpp.o.d"
  "/root/repo/tests/toolkit/test_frequent_strings.cpp" "tests/CMakeFiles/toolkit_tests.dir/toolkit/test_frequent_strings.cpp.o" "gcc" "tests/CMakeFiles/toolkit_tests.dir/toolkit/test_frequent_strings.cpp.o.d"
  "/root/repo/tests/toolkit/test_isotonic.cpp" "tests/CMakeFiles/toolkit_tests.dir/toolkit/test_isotonic.cpp.o" "gcc" "tests/CMakeFiles/toolkit_tests.dir/toolkit/test_isotonic.cpp.o.d"
  "/root/repo/tests/toolkit/test_itemsets.cpp" "tests/CMakeFiles/toolkit_tests.dir/toolkit/test_itemsets.cpp.o" "gcc" "tests/CMakeFiles/toolkit_tests.dir/toolkit/test_itemsets.cpp.o.d"
  "/root/repo/tests/toolkit/test_range_tree.cpp" "tests/CMakeFiles/toolkit_tests.dir/toolkit/test_range_tree.cpp.o" "gcc" "tests/CMakeFiles/toolkit_tests.dir/toolkit/test_range_tree.cpp.o.d"
  "/root/repo/tests/toolkit/test_sliding.cpp" "tests/CMakeFiles/toolkit_tests.dir/toolkit/test_sliding.cpp.o" "gcc" "tests/CMakeFiles/toolkit_tests.dir/toolkit/test_sliding.cpp.o.d"
  "/root/repo/tests/toolkit/test_topk.cpp" "tests/CMakeFiles/toolkit_tests.dir/toolkit/test_topk.cpp.o" "gcc" "tests/CMakeFiles/toolkit_tests.dir/toolkit/test_topk.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/analysis/CMakeFiles/dpnet_analysis.dir/DependInfo.cmake"
  "/root/repo/build/src/toolkit/CMakeFiles/dpnet_toolkit.dir/DependInfo.cmake"
  "/root/repo/build/src/tracegen/CMakeFiles/dpnet_tracegen.dir/DependInfo.cmake"
  "/root/repo/build/src/linalg/CMakeFiles/dpnet_linalg.dir/DependInfo.cmake"
  "/root/repo/build/src/net/CMakeFiles/dpnet_net.dir/DependInfo.cmake"
  "/root/repo/build/src/stats/CMakeFiles/dpnet_stats.dir/DependInfo.cmake"
  "/root/repo/build/src/core/CMakeFiles/dpnet_core.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
