file(REMOVE_RECURSE
  "CMakeFiles/core_tests.dir/core/test_audit.cpp.o"
  "CMakeFiles/core_tests.dir/core/test_audit.cpp.o.d"
  "CMakeFiles/core_tests.dir/core/test_budget.cpp.o"
  "CMakeFiles/core_tests.dir/core/test_budget.cpp.o.d"
  "CMakeFiles/core_tests.dir/core/test_concurrency.cpp.o"
  "CMakeFiles/core_tests.dir/core/test_concurrency.cpp.o.d"
  "CMakeFiles/core_tests.dir/core/test_mechanisms.cpp.o"
  "CMakeFiles/core_tests.dir/core/test_mechanisms.cpp.o.d"
  "CMakeFiles/core_tests.dir/core/test_noise.cpp.o"
  "CMakeFiles/core_tests.dir/core/test_noise.cpp.o.d"
  "CMakeFiles/core_tests.dir/core/test_partition.cpp.o"
  "CMakeFiles/core_tests.dir/core/test_partition.cpp.o.d"
  "CMakeFiles/core_tests.dir/core/test_queryable.cpp.o"
  "CMakeFiles/core_tests.dir/core/test_queryable.cpp.o.d"
  "CMakeFiles/core_tests.dir/core/test_streaming.cpp.o"
  "CMakeFiles/core_tests.dir/core/test_streaming.cpp.o.d"
  "core_tests"
  "core_tests.pdb"
  "core_tests[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/core_tests.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
