file(REMOVE_RECURSE
  "CMakeFiles/dpnet_cli.dir/dpnet_cli.cpp.o"
  "CMakeFiles/dpnet_cli.dir/dpnet_cli.cpp.o.d"
  "dpnet_cli"
  "dpnet_cli.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/dpnet_cli.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
