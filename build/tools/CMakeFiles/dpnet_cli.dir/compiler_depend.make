# Empty compiler generated dependencies file for dpnet_cli.
# This may be replaced when dependencies are built.
