// IPv4 address value type.
#pragma once

#include <compare>
#include <cstdint>
#include <functional>
#include <string>

namespace dpnet::net {

/// An IPv4 address stored in host byte order.
struct Ipv4 {
  std::uint32_t value = 0;

  constexpr Ipv4() = default;
  constexpr explicit Ipv4(std::uint32_t v) : value(v) {}
  /// Builds a.b.c.d.
  constexpr Ipv4(std::uint8_t a, std::uint8_t b, std::uint8_t c,
                 std::uint8_t d)
      : value((std::uint32_t{a} << 24) | (std::uint32_t{b} << 16) |
              (std::uint32_t{c} << 8) | std::uint32_t{d}) {}

  auto operator<=>(const Ipv4&) const = default;

  /// Dotted-quad rendering.
  [[nodiscard]] std::string to_string() const;

  /// Parses dotted-quad; throws std::invalid_argument on malformed input.
  static Ipv4 from_string(const std::string& text);

  /// True if this address is in `prefix`/`prefix_len`.
  [[nodiscard]] bool in_subnet(Ipv4 prefix, int prefix_len) const;
};

}  // namespace dpnet::net

namespace std {
template <>
struct hash<dpnet::net::Ipv4> {
  std::size_t operator()(const dpnet::net::Ipv4& ip) const {
    return std::hash<std::uint32_t>{}(ip.value);
  }
};
}  // namespace std
