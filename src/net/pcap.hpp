// Minimal libpcap-format support: read and write classic pcap capture
// files (magic 0xa1b2c3d4, microsecond timestamps, LINKTYPE_ETHERNET),
// parsing Ethernet/IPv4/TCP/UDP headers into dpnet Packet records — so
// real captures can be loaded straight into the privacy engine, and the
// synthetic traces can be exported for inspection with standard tools.
//
// Scope: IPv4 over Ethernet II, TCP/UDP transports.  Other link or
// network types are skipped on read (counted, not fatal) and unsupported
// on write.
#pragma once

#include <cstdint>
#include <iosfwd>
#include <span>
#include <stdexcept>
#include <string>
#include <vector>

#include "net/packet.hpp"

namespace dpnet::net {

class PcapError : public std::runtime_error {
 public:
  explicit PcapError(const std::string& what) : std::runtime_error(what) {}
};

struct PcapReadResult {
  std::vector<Packet> packets;
  std::size_t skipped = 0;  // frames that were not Ethernet/IPv4 TCP|UDP
};

/// Reads a classic pcap stream.  Handles both byte orders (0xa1b2c3d4 and
/// the byte-swapped magic).  Throws PcapError on malformed containers.
PcapReadResult read_pcap(std::istream& in);
PcapReadResult read_pcap_file(const std::string& path);

/// Writes packets as a classic pcap capture (Ethernet II framing with
/// synthetic MAC addresses, native byte order, microsecond timestamps).
/// Payload bytes are emitted after the TCP/UDP header; `length` is
/// recorded as the original (on-wire) length.
void write_pcap(std::ostream& out, std::span<const Packet> packets);
void write_pcap_file(const std::string& path, std::span<const Packet> packets);

}  // namespace dpnet::net
