#include "net/pcap.hpp"

#include <algorithm>
#include <cstring>
#include <fstream>
#include <istream>
#include <ostream>

namespace dpnet::net {

namespace {

constexpr std::uint32_t kPcapMagic = 0xa1b2c3d4;
constexpr std::uint32_t kPcapMagicSwapped = 0xd4c3b2a1;
constexpr std::uint32_t kLinkTypeEthernet = 1;
constexpr std::size_t kEthernetHeader = 14;
constexpr std::uint16_t kEtherTypeIpv4 = 0x0800;

std::uint32_t swap32(std::uint32_t v) {
  return ((v & 0xff) << 24) | ((v & 0xff00) << 8) | ((v >> 8) & 0xff00) |
         (v >> 24);
}
std::uint16_t swap16(std::uint16_t v) {
  return static_cast<std::uint16_t>((v << 8) | (v >> 8));
}

/// Big-endian field access into a raw frame buffer.
std::uint16_t be16(const unsigned char* p) {
  return static_cast<std::uint16_t>((p[0] << 8) | p[1]);
}
std::uint32_t be32(const unsigned char* p) {
  return (static_cast<std::uint32_t>(p[0]) << 24) |
         (static_cast<std::uint32_t>(p[1]) << 16) |
         (static_cast<std::uint32_t>(p[2]) << 8) |
         static_cast<std::uint32_t>(p[3]);
}
void put_be16(std::string& out, std::uint16_t v) {
  out.push_back(static_cast<char>(v >> 8));
  out.push_back(static_cast<char>(v & 0xff));
}
void put_be32(std::string& out, std::uint32_t v) {
  out.push_back(static_cast<char>(v >> 24));
  out.push_back(static_cast<char>((v >> 16) & 0xff));
  out.push_back(static_cast<char>((v >> 8) & 0xff));
  out.push_back(static_cast<char>(v & 0xff));
}

template <typename T>
void put_host(std::ostream& out, T v) {
  out.write(reinterpret_cast<const char*>(&v), sizeof(v));
}

template <typename T>
bool take_host(std::istream& in, T& v) {
  return static_cast<bool>(
      in.read(reinterpret_cast<char*>(&v), sizeof(v)));
}

/// Parses one captured Ethernet frame into a Packet; returns false if the
/// frame is not IPv4 TCP/UDP or is truncated short of its headers.
bool parse_frame(const unsigned char* frame, std::size_t len, double ts,
                 std::uint32_t orig_len, Packet& out) {
  if (len < kEthernetHeader + 20) return false;
  if (be16(frame + 12) != kEtherTypeIpv4) return false;
  const unsigned char* ip = frame + kEthernetHeader;
  if ((ip[0] >> 4) != 4) return false;
  const std::size_t ihl = static_cast<std::size_t>(ip[0] & 0x0f) * 4;
  if (ihl < 20 || len < kEthernetHeader + ihl) return false;

  Packet p;
  p.timestamp = ts;
  p.protocol = ip[9];
  p.src_ip = Ipv4(be32(ip + 12));
  p.dst_ip = Ipv4(be32(ip + 16));
  p.length = static_cast<std::uint16_t>(
      std::min<std::uint32_t>(orig_len, 0xffff));

  const unsigned char* transport = ip + ihl;
  const std::size_t remaining = len - kEthernetHeader - ihl;
  if (p.protocol == kProtoTcp) {
    if (remaining < 20) return false;
    p.src_port = be16(transport);
    p.dst_port = be16(transport + 2);
    p.seq = be32(transport + 4);
    p.ack_no = be32(transport + 8);
    const std::size_t data_offset =
        static_cast<std::size_t>(transport[12] >> 4) * 4;
    if (data_offset < 20 || remaining < data_offset) return false;
    p.flags = TcpFlags::from_byte(transport[13]);
    p.payload.assign(
        reinterpret_cast<const char*>(transport + data_offset),
        remaining - data_offset);
  } else if (p.protocol == kProtoUdp) {
    if (remaining < 8) return false;
    p.src_port = be16(transport);
    p.dst_port = be16(transport + 2);
    p.payload.assign(reinterpret_cast<const char*>(transport + 8),
                     remaining - 8);
  } else {
    return false;
  }
  out = std::move(p);
  return true;
}

}  // namespace

PcapReadResult read_pcap(std::istream& in) {
  std::uint32_t magic = 0;
  if (!take_host(in, magic)) throw PcapError("empty pcap stream");
  bool swapped = false;
  if (magic == kPcapMagicSwapped) {
    swapped = true;
  } else if (magic != kPcapMagic) {
    throw PcapError("bad pcap magic");
  }
  auto fix32 = [swapped](std::uint32_t v) { return swapped ? swap32(v) : v; };
  auto fix16 = [swapped](std::uint16_t v) { return swapped ? swap16(v) : v; };

  std::uint16_t version_major = 0, version_minor = 0;
  std::uint32_t thiszone = 0, sigfigs = 0, snaplen = 0, network = 0;
  if (!take_host(in, version_major) || !take_host(in, version_minor) ||
      !take_host(in, thiszone) || !take_host(in, sigfigs) ||
      !take_host(in, snaplen) || !take_host(in, network)) {
    throw PcapError("truncated pcap global header");
  }
  if (fix16(version_major) != 2) {
    throw PcapError("unsupported pcap version");
  }
  if (fix32(network) != kLinkTypeEthernet) {
    throw PcapError("unsupported pcap link type (want Ethernet)");
  }

  PcapReadResult result;
  std::vector<unsigned char> frame;
  for (;;) {
    std::uint32_t ts_sec = 0, ts_usec = 0, incl_len = 0, orig_len = 0;
    if (!take_host(in, ts_sec)) break;  // clean end of stream
    if (!take_host(in, ts_usec) || !take_host(in, incl_len) ||
        !take_host(in, orig_len)) {
      throw PcapError("truncated pcap record header");
    }
    const std::uint32_t len = fix32(incl_len);
    if (len > 256 * 1024) throw PcapError("implausible pcap record length");
    frame.resize(len);
    if (len > 0 && !in.read(reinterpret_cast<char*>(frame.data()), len)) {
      throw PcapError("truncated pcap record body");
    }
    const double ts = static_cast<double>(fix32(ts_sec)) +
                      static_cast<double>(fix32(ts_usec)) * 1e-6;
    Packet p;
    if (parse_frame(frame.data(), frame.size(), ts, fix32(orig_len), p)) {
      result.packets.push_back(std::move(p));
    } else {
      ++result.skipped;
    }
  }
  return result;
}

PcapReadResult read_pcap_file(const std::string& path) {
  std::ifstream in(path, std::ios::binary);
  if (!in) throw PcapError("cannot open for reading: " + path);
  return read_pcap(in);
}

void write_pcap(std::ostream& out, std::span<const Packet> packets) {
  put_host(out, kPcapMagic);
  put_host(out, std::uint16_t{2});
  put_host(out, std::uint16_t{4});
  put_host(out, std::int32_t{0});      // thiszone
  put_host(out, std::uint32_t{0});     // sigfigs
  put_host(out, std::uint32_t{65535}); // snaplen
  put_host(out, kLinkTypeEthernet);

  for (const Packet& p : packets) {
    std::string frame;
    // Ethernet II with synthetic MACs derived from the addresses.
    for (int i = 0; i < 2; ++i) {
      const std::uint32_t ip = i == 0 ? p.dst_ip.value : p.src_ip.value;
      frame.push_back(0x02);
      frame.push_back(0x00);
      put_be32(frame, ip);
    }
    put_be16(frame, kEtherTypeIpv4);

    const bool tcp = p.protocol == kProtoTcp;
    const std::size_t transport_len =
        (tcp ? 20 : 8) + p.payload.size();
    // IPv4 header, 20 bytes, no options.
    frame.push_back(0x45);
    frame.push_back(0x00);
    put_be16(frame, static_cast<std::uint16_t>(20 + transport_len));
    put_be16(frame, 0);                 // identification
    put_be16(frame, 0x4000);            // don't fragment
    frame.push_back(64);                // ttl
    frame.push_back(static_cast<char>(p.protocol));
    put_be16(frame, 0);                 // header checksum (unverified)
    put_be32(frame, p.src_ip.value);
    put_be32(frame, p.dst_ip.value);

    if (tcp) {
      put_be16(frame, p.src_port);
      put_be16(frame, p.dst_port);
      put_be32(frame, p.seq);
      put_be32(frame, p.ack_no);
      frame.push_back(0x50);  // data offset 5 words
      frame.push_back(static_cast<char>(p.flags.to_byte()));
      put_be16(frame, 65535);  // window
      put_be16(frame, 0);      // checksum
      put_be16(frame, 0);      // urgent pointer
    } else {
      put_be16(frame, p.src_port);
      put_be16(frame, p.dst_port);
      put_be16(frame, static_cast<std::uint16_t>(8 + p.payload.size()));
      put_be16(frame, 0);  // checksum
    }
    frame.append(p.payload);

    const auto ts_sec = static_cast<std::uint32_t>(p.timestamp);
    const auto ts_usec = static_cast<std::uint32_t>(
        (p.timestamp - static_cast<double>(ts_sec)) * 1e6);
    put_host(out, ts_sec);
    put_host(out, ts_usec);
    put_host(out, static_cast<std::uint32_t>(frame.size()));
    put_host(out, std::max<std::uint32_t>(
                      p.length, static_cast<std::uint32_t>(frame.size())));
    out.write(frame.data(), static_cast<std::streamsize>(frame.size()));
  }
  if (!out) throw PcapError("pcap write failed");
}

void write_pcap_file(const std::string& path,
                     std::span<const Packet> packets) {
  std::ofstream out(path, std::ios::binary);
  if (!out) throw PcapError("cannot open for writing: " + path);
  write_pcap(out, packets);
}

}  // namespace dpnet::net
