#include "net/tcp.hpp"

#include <algorithm>
#include <unordered_set>

#include "core/hash.hpp"

namespace dpnet::net {

std::vector<RttSample> handshake_rtts(std::span<const Packet> trace) {
  // Key: (server-side flow key, expected ack number) -> SYN timestamp.
  struct PendingSyn {
    double time;
    bool matched;
  };
  std::unordered_map<FlowKey, std::unordered_map<std::uint32_t, PendingSyn>>
      pending;
  std::vector<RttSample> out;
  for (const Packet& p : trace) {
    if (p.protocol != kProtoTcp) continue;
    if (p.flags.syn && !p.flags.ack) {
      pending[flow_of(p)].insert_or_assign(p.seq + 1,
                                           PendingSyn{p.timestamp, false});
    } else if (p.flags.syn && p.flags.ack) {
      // A SYN-ACK travels on the reversed flow of the SYN.
      auto flow_it = pending.find(flow_of(p).reversed());
      if (flow_it == pending.end()) continue;
      auto syn_it = flow_it->second.find(p.ack_no);
      if (syn_it == flow_it->second.end() || syn_it->second.matched) continue;
      syn_it->second.matched = true;
      out.push_back(RttSample{flow_of(p).reversed(),
                              p.timestamp - syn_it->second.time});
    }
  }
  return out;
}

std::vector<double> retransmit_time_diffs_ms(std::span<const Packet> trace) {
  // Per (flow, seq): timestamp of the most recent packet with that seq.
  std::unordered_map<FlowKey, std::unordered_map<std::uint32_t, double>>
      last_seen;
  std::vector<double> diffs;
  for (const Packet& p : trace) {
    if (p.protocol != kProtoTcp) continue;
    if (p.flags.syn || p.length <= 40) continue;  // data packets only
    auto& per_flow = last_seen[flow_of(p)];
    auto it = per_flow.find(p.seq);
    if (it != per_flow.end()) {
      diffs.push_back((p.timestamp - it->second) * 1000.0);
    }
    per_flow[p.seq] = p.timestamp;
  }
  return diffs;
}

double flow_loss_rate(std::span<const Packet> flow_packets) {
  if (flow_packets.empty()) return 0.0;
  std::unordered_set<std::uint32_t> distinct;
  for (const Packet& p : flow_packets) distinct.insert(p.seq);
  return 1.0 - static_cast<double>(distinct.size()) /
                   static_cast<double>(flow_packets.size());
}

std::size_t out_of_order_count(std::span<const Packet> flow_packets) {
  std::size_t count = 0;
  bool have_max = false;
  std::uint32_t max_seq = 0;
  std::unordered_set<std::uint32_t> seen;
  for (const Packet& p : flow_packets) {
    const bool retransmission = !seen.insert(p.seq).second;
    if (have_max && p.seq < max_seq && !retransmission) ++count;
    if (!have_max || p.seq > max_seq) {
      max_seq = p.seq;
      have_max = true;
    }
  }
  return count;
}

std::vector<Activation> extract_activations(std::span<const Packet> trace,
                                            double t_idle) {
  std::unordered_map<FlowKey, double> last_time;
  std::vector<Activation> out;
  for (const Packet& p : trace) {
    const FlowKey key = flow_of(p);
    auto it = last_time.find(key);
    if (it == last_time.end() || p.timestamp - it->second > t_idle) {
      out.push_back(Activation{key, p.timestamp});
    }
    last_time[key] = p.timestamp;
  }
  return out;
}

std::unordered_map<FlowKey, std::vector<Packet>> group_flows(
    std::span<const Packet> trace) {
  std::unordered_map<FlowKey, std::vector<Packet>> flows;
  for (const Packet& p : trace) flows[flow_of(p)].push_back(p);
  return flows;
}

}  // namespace dpnet::net
