#include "net/trace_io.hpp"

#include <algorithm>

#include <fstream>
#include <istream>
#include <limits>
#include <ostream>

namespace dpnet::net {

namespace {

template <typename T>
void put(std::ostream& out, T value) {
  static_assert(std::is_trivially_copyable_v<T>);
  out.write(reinterpret_cast<const char*>(&value), sizeof(value));
}

template <typename T>
T take(std::istream& in) {
  static_assert(std::is_trivially_copyable_v<T>);
  T value{};
  if (!in.read(reinterpret_cast<char*>(&value), sizeof(value))) {
    throw TraceIoError("truncated trace container");
  }
  return value;
}

void put_packet(std::ostream& out, const Packet& p) {
  put(out, p.timestamp);
  put(out, p.src_ip.value);
  put(out, p.dst_ip.value);
  put(out, p.src_port);
  put(out, p.dst_port);
  put(out, p.protocol);
  put(out, p.flags.to_byte());
  put(out, p.seq);
  put(out, p.ack_no);
  put(out, p.length);
  if (p.payload.size() > std::numeric_limits<std::uint32_t>::max()) {
    throw TraceIoError("payload too large to serialize");
  }
  put(out, static_cast<std::uint32_t>(p.payload.size()));
  out.write(p.payload.data(),
            static_cast<std::streamsize>(p.payload.size()));
}

Packet take_packet(std::istream& in) {
  Packet p;
  p.timestamp = take<double>(in);
  p.src_ip = Ipv4(take<std::uint32_t>(in));
  p.dst_ip = Ipv4(take<std::uint32_t>(in));
  p.src_port = take<std::uint16_t>(in);
  p.dst_port = take<std::uint16_t>(in);
  p.protocol = take<std::uint8_t>(in);
  p.flags = TcpFlags::from_byte(take<std::uint8_t>(in));
  p.seq = take<std::uint32_t>(in);
  p.ack_no = take<std::uint32_t>(in);
  p.length = take<std::uint16_t>(in);
  const auto payload_len = take<std::uint32_t>(in);
  if (payload_len > 64u * 1024 * 1024) {
    throw TraceIoError("implausible payload length (corrupt container?)");
  }
  p.payload.resize(payload_len);
  if (payload_len > 0 &&
      !in.read(p.payload.data(), static_cast<std::streamsize>(payload_len))) {
    throw TraceIoError("truncated packet payload");
  }
  return p;
}

}  // namespace

void write_trace(std::ostream& out, std::span<const Packet> trace) {
  TraceWriter writer(out);
  for (const Packet& p : trace) writer.write(p);
  writer.finish();
}

std::vector<Packet> read_trace(std::istream& in) {
  TraceReader reader(in);
  std::vector<Packet> out;
  // A corrupted count must not drive a giant up-front allocation; the
  // vector grows naturally past this if the records are really there.
  out.reserve(static_cast<std::size_t>(
      std::min<std::uint64_t>(reader.total(), 1u << 20)));
  Packet p;
  while (reader.next(p)) out.push_back(p);
  return out;
}

void write_trace_file(const std::string& path,
                      std::span<const Packet> trace) {
  std::ofstream out(path, std::ios::binary);
  if (!out) throw TraceIoError("cannot open for writing: " + path);
  write_trace(out, trace);
  if (!out) throw TraceIoError("write failed: " + path);
}

std::vector<Packet> read_trace_file(const std::string& path) {
  std::ifstream in(path, std::ios::binary);
  if (!in) throw TraceIoError("cannot open for reading: " + path);
  return read_trace(in);
}

TraceWriter::TraceWriter(std::ostream& out) : out_(out) {
  put(out_, kTraceMagic);
  put(out_, kTraceVersion);
  count_pos_ = out_.tellp();
  put(out_, std::uint64_t{0});  // patched by finish()
}

TraceWriter::~TraceWriter() {
  if (!finished_) {
    try {
      finish();
    } catch (...) {
      // Destructors must not throw; an explicit finish() reports errors.
    }
  }
}

void TraceWriter::write(const Packet& p) {
  if (finished_) throw TraceIoError("write after finish");
  put_packet(out_, p);
  ++count_;
}

void TraceWriter::finish() {
  if (finished_) return;
  finished_ = true;
  const std::streampos end = out_.tellp();
  out_.seekp(count_pos_);
  put(out_, count_);
  out_.seekp(end);
  if (!out_) throw TraceIoError("trace writer stream failure");
}

TraceReader::TraceReader(std::istream& in) : in_(in) {
  if (take<std::uint32_t>(in_) != kTraceMagic) {
    throw TraceIoError("bad trace magic");
  }
  const auto version = take<std::uint16_t>(in_);
  if (version != kTraceVersion) {
    throw TraceIoError("unsupported trace version " +
                       std::to_string(version));
  }
  total_ = take<std::uint64_t>(in_);
}

bool TraceReader::next(Packet& p) {
  if (read_ >= total_) return false;
  p = take_packet(in_);
  ++read_;
  return true;
}

}  // namespace dpnet::net
