#include "net/trace_io.hpp"

#include <algorithm>
#include <array>
#include <fstream>
#include <istream>
#include <limits>
#include <ostream>
#include <sstream>
#include <string_view>
#include <thread>

#include "core/failpoint.hpp"
#include "core/metrics.hpp"
#include "core/obs/journal.hpp"

namespace dpnet::net {

namespace {

// Fixed part of a serialized packet (everything but the payload bytes).
constexpr std::uint32_t kPacketFixedBytes = 36;
constexpr std::uint32_t kMaxPayloadBytes = 64u * 1024 * 1024;
constexpr std::uint32_t kMaxBodyBytes = kPacketFixedBytes + kMaxPayloadBytes;

template <typename T>
void put(std::ostream& out, T value) {
  static_assert(std::is_trivially_copyable_v<T>);
  out.write(reinterpret_cast<const char*>(&value), sizeof(value));
}

template <typename T>
T take(std::istream& in) {
  static_assert(std::is_trivially_copyable_v<T>);
  T value{};
  if (!in.read(reinterpret_cast<char*>(&value), sizeof(value))) {
    if (in.bad()) throw TransientIoError("trace stream I/O failure");
    throw TraceIoError("truncated trace container");
  }
  return value;
}

/// IEEE CRC-32 (reflected polynomial 0xEDB88320), table-driven.
std::uint32_t crc32(std::string_view bytes) {
  static const std::array<std::uint32_t, 256> table = [] {
    std::array<std::uint32_t, 256> t{};
    for (std::uint32_t i = 0; i < 256; ++i) {
      std::uint32_t c = i;
      for (int k = 0; k < 8; ++k) {
        c = (c & 1u) != 0 ? 0xEDB88320u ^ (c >> 1) : c >> 1;
      }
      t[i] = c;
    }
    return t;
  }();
  std::uint32_t crc = 0xFFFFFFFFu;
  for (const char ch : bytes) {
    crc = table[(crc ^ static_cast<unsigned char>(ch)) & 0xFFu] ^ (crc >> 8);
  }
  return crc ^ 0xFFFFFFFFu;
}

void put_packet(std::ostream& out, const Packet& p) {
  put(out, p.timestamp);
  put(out, p.src_ip.value);
  put(out, p.dst_ip.value);
  put(out, p.src_port);
  put(out, p.dst_port);
  put(out, p.protocol);
  put(out, p.flags.to_byte());
  put(out, p.seq);
  put(out, p.ack_no);
  put(out, p.length);
  if (p.payload.size() > kMaxPayloadBytes) {
    throw TraceIoError("payload too large to serialize");
  }
  put(out, static_cast<std::uint32_t>(p.payload.size()));
  out.write(p.payload.data(),
            static_cast<std::streamsize>(p.payload.size()));
}

Packet take_packet(std::istream& in) {
  Packet p;
  p.timestamp = take<double>(in);
  p.src_ip = Ipv4(take<std::uint32_t>(in));
  p.dst_ip = Ipv4(take<std::uint32_t>(in));
  p.src_port = take<std::uint16_t>(in);
  p.dst_port = take<std::uint16_t>(in);
  p.protocol = take<std::uint8_t>(in);
  p.flags = TcpFlags::from_byte(take<std::uint8_t>(in));
  p.seq = take<std::uint32_t>(in);
  p.ack_no = take<std::uint32_t>(in);
  p.length = take<std::uint16_t>(in);
  const auto payload_len = take<std::uint32_t>(in);
  if (payload_len > kMaxPayloadBytes) {
    throw TraceIoError("implausible payload length (corrupt container?)");
  }
  p.payload.resize(payload_len);
  if (payload_len > 0 &&
      !in.read(p.payload.data(), static_cast<std::streamsize>(payload_len))) {
    if (in.bad()) throw TransientIoError("trace stream I/O failure");
    throw TraceIoError("truncated packet payload");
  }
  return p;
}

/// Reads `n` bytes or throws with the record index; distinguishes stream
/// failure (transient) from running out of bytes (format).
void read_exact(std::istream& in, char* dst, std::streamsize n,
                const char* what, std::uint64_t index) {
  if (!in.read(dst, n)) {
    if (in.bad()) throw TransientIoError("trace stream I/O failure");
    throw TraceFormatError(what, index);
  }
}

/// Parses one v2 frame.  Every failure mode is a bounded, indexed
/// TraceFormatError (or TransientIoError for stream-level faults) — no
/// input byte pattern may crash the reader or read out of bounds.
Packet take_frame(std::istream& in, std::uint64_t index) {
  std::uint16_t marker = 0;
  read_exact(in, reinterpret_cast<char*>(&marker), sizeof(marker),
             "truncated record frame", index);
  if (marker != kRecordMarker) {
    throw TraceFormatError("bad record marker", index);
  }
  std::uint32_t body_len = 0;
  read_exact(in, reinterpret_cast<char*>(&body_len), sizeof(body_len),
             "truncated record frame", index);
  if (body_len < kPacketFixedBytes || body_len > kMaxBodyBytes) {
    throw TraceFormatError("implausible record length", index);
  }
  std::string body(body_len, '\0');
  read_exact(in, body.data(), static_cast<std::streamsize>(body_len),
             "truncated record body", index);
  std::uint32_t crc = 0;
  read_exact(in, reinterpret_cast<char*>(&crc), sizeof(crc),
             "truncated record checksum", index);
  if (crc != crc32(body)) {
    throw TraceFormatError("record checksum mismatch", index);
  }
  std::istringstream body_in(std::move(body));
  try {
    return take_packet(body_in);
  } catch (const TransientIoError&) {
    throw;
  } catch (const TraceIoError&) {
    // Checksum passed but the body doesn't parse as a packet: the record
    // was written malformed.  Index only — never the bytes themselves.
    throw TraceFormatError("malformed record body", index);
  }
}

}  // namespace

void write_trace(std::ostream& out, std::span<const Packet> trace) {
  TraceWriter writer(out);
  for (const Packet& p : trace) writer.write(p);
  writer.finish();
}

std::vector<Packet> read_trace(std::istream& in,
                               const TraceReadOptions& options) {
  TraceReader reader(in, options);
  std::vector<Packet> out;
  // A corrupted count must not drive a giant up-front allocation; the
  // vector grows naturally past this if the records are really there.
  out.reserve(static_cast<std::size_t>(
      std::min<std::uint64_t>(reader.total(), 1u << 20)));
  Packet p;
  while (reader.next(p)) out.push_back(p);
  return out;
}

void write_trace_file(const std::string& path,
                      std::span<const Packet> trace) {
  std::ofstream out(path, std::ios::binary);
  if (!out) throw TraceIoError("cannot open for writing: " + path);
  write_trace(out, trace);
  if (!out) throw TraceIoError("write failed: " + path);
}

std::vector<Packet> read_trace_file(const std::string& path,
                                    const TraceReadOptions& options) {
  for (int attempt = 0;; ++attempt) {
    try {
      std::ifstream in(path, std::ios::binary);
      if (!in) throw TransientIoError("cannot open for reading: " + path);
      return read_trace(in, options);
    } catch (const TransientIoError&) {
      if (attempt >= options.max_retries) throw;
      // Deterministic doubling backoff, no jitter: retry k waits
      // retry_backoff * 2^k, so failure handling replays identically.
      std::this_thread::sleep_for(options.retry_backoff * (1LL << attempt));
    }
  }
}

TraceWriter::TraceWriter(std::ostream& out) : out_(out) {
  put(out_, kTraceMagic);
  put(out_, kTraceVersion);
  count_pos_ = out_.tellp();
  put(out_, std::uint64_t{0});  // patched by finish()
}

TraceWriter::~TraceWriter() {
  if (!finished_) {
    try {
      finish();
    } catch (...) {
      // Destructors must not throw; an explicit finish() reports errors.
    }
  }
}

void TraceWriter::write(const Packet& p) {
  if (finished_) throw TraceIoError("write after finish");
  std::ostringstream body_out;
  put_packet(body_out, p);
  const std::string body = std::move(body_out).str();
  put(out_, kRecordMarker);
  put(out_, static_cast<std::uint32_t>(body.size()));
  out_.write(body.data(), static_cast<std::streamsize>(body.size()));
  put(out_, crc32(body));
  ++count_;
}

void TraceWriter::finish() {
  if (finished_) return;
  finished_ = true;
  const std::streampos end = out_.tellp();
  out_.seekp(count_pos_);
  put(out_, count_);
  out_.seekp(end);
  if (!out_) throw TraceIoError("trace writer stream failure");
}

TraceReader::TraceReader(std::istream& in, TraceReadOptions options)
    : in_(in), options_(options) {
  core::failpoint::hit("net.trace_io.read");
  try {
    if (take<std::uint32_t>(in_) != kTraceMagic) {
      throw TraceFormatError("bad trace magic (not a DPNT container)",
                             TraceFormatError::kHeader);
    }
    version_ = take<std::uint16_t>(in_);
    if (version_ != kTraceVersion && version_ != kTraceVersionLegacy) {
      throw TraceFormatError(
          "unsupported trace version " + std::to_string(version_),
          TraceFormatError::kHeader);
    }
    total_ = take<std::uint64_t>(in_);
  } catch (const TraceFormatError&) {
    throw;
  } catch (const TransientIoError&) {
    throw;
  } catch (const TraceIoError&) {
    throw TraceFormatError("truncated trace header",
                           TraceFormatError::kHeader);
  }
}

bool TraceReader::next(Packet& p) {
  while (consumed_ < total_) {
    const std::uint64_t index = consumed_;
    const std::streampos frame_start = in_.tellg();
    try {
      if (version_ == kTraceVersionLegacy) {
        try {
          p = take_packet(in_);
        } catch (const TransientIoError&) {
          throw;
        } catch (const TraceFormatError&) {
          throw;
        } catch (const TraceIoError&) {
          throw TraceFormatError("truncated or malformed record", index);
        }
      } else {
        p = take_frame(in_, index);
      }
      ++consumed_;
      core::builtin_metrics::bytes_processed().increment(kPacketFixedBytes +
                                                         p.payload.size());
      return true;
    } catch (const TransientIoError&) {
      throw;
    } catch (const TraceFormatError&) {
      // Legacy containers carry no frame markers, so there is nothing to
      // resync on — degraded mode is v2-only.
      if (!options_.quarantine || version_ == kTraceVersionLegacy) throw;
      ++consumed_;
      ++quarantined_;
      core::builtin_metrics::records_quarantined().increment();
      core::obs::emit_quarantine("net.trace_io");
      if (quarantined_ > options_.max_quarantined) {
        throw TraceFormatError("quarantine limit exceeded; container too "
                               "corrupt to degrade gracefully",
                               index);
      }
      if (!resync(frame_start)) {
        // Truncated tail: nothing left to scan.  Terminal — remaining()
        // drops to zero so callers see a clean (if short) end of trace.
        total_ = consumed_;
        return false;
      }
    }
  }
  return false;
}

bool TraceReader::resync(std::streampos frame_start) {
  // Re-scan from one byte past the bad frame's start for the next marker
  // (native byte order, matching put<std::uint16_t>).  A payload byte
  // pair can alias the marker; the checksum then rejects the false frame
  // and we land back here, one quarantine count further along.
  in_.clear();
  in_.seekg(frame_start + std::streamoff(1));
  if (!in_) {
    in_.clear();
    return false;
  }
  constexpr int lo = kRecordMarker & 0xFF;
  constexpr int hi = (kRecordMarker >> 8) & 0xFF;
  int prev = -1;
  int c = 0;
  while ((c = in_.get()) != std::char_traits<char>::eof()) {
    if (prev == lo && c == hi) {
      in_.seekg(-2, std::ios::cur);
      return true;
    }
    prev = c;
  }
  if (in_.bad()) throw TransientIoError("trace stream I/O failure");
  in_.clear();
  return false;
}

}  // namespace dpnet::net
