// Record types for the IspTraffic and IPscatter datasets.
#pragma once

#include <cstdint>
#include <functional>

#include "core/hash.hpp"

namespace dpnet::net {

/// One de-aggregated IspTraffic record: a 1500-byte packet observed on
/// `link` during 15-minute window `window` (the paper reconstructs
/// fine-grained records from per-link volume aggregates exactly this way).
struct LinkPacket {
  std::int32_t link = 0;
  std::int32_t window = 0;

  bool operator==(const LinkPacket&) const = default;
};

/// One IPscatter record: IP address `ip` observed `hops` TTL-hops away from
/// `monitor`.
struct ScatterRecord {
  std::int32_t monitor = 0;
  std::uint32_t ip = 0;
  std::int32_t hops = 0;

  bool operator==(const ScatterRecord&) const = default;
};

}  // namespace dpnet::net

namespace std {
template <>
struct hash<dpnet::net::LinkPacket> {
  std::size_t operator()(const dpnet::net::LinkPacket& r) const {
    std::size_t seed = std::hash<std::int32_t>{}(r.link);
    dpnet::core::hash_combine(seed, std::hash<std::int32_t>{}(r.window));
    return seed;
  }
};

template <>
struct hash<dpnet::net::ScatterRecord> {
  std::size_t operator()(const dpnet::net::ScatterRecord& r) const {
    std::size_t seed = std::hash<std::int32_t>{}(r.monitor);
    dpnet::core::hash_combine(seed, std::hash<std::uint32_t>{}(r.ip));
    dpnet::core::hash_combine(seed, std::hash<std::int32_t>{}(r.hops));
    return seed;
  }
};
}  // namespace std
