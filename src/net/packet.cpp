#include "net/packet.hpp"

#include <sstream>
#include <tuple>

namespace dpnet::net {

std::uint8_t TcpFlags::to_byte() const {
  std::uint8_t b = 0;
  if (syn) b |= 0x02;
  if (ack) b |= 0x10;
  if (fin) b |= 0x01;
  if (rst) b |= 0x04;
  if (psh) b |= 0x08;
  return b;
}

TcpFlags TcpFlags::from_byte(std::uint8_t b) {
  TcpFlags f;
  f.fin = b & 0x01;
  f.syn = b & 0x02;
  f.rst = b & 0x04;
  f.psh = b & 0x08;
  f.ack = b & 0x10;
  return f;
}

FlowKey FlowKey::canonical() const {
  const auto forward = std::tie(src_ip, src_port, dst_ip, dst_port);
  const auto backward = std::tie(dst_ip, dst_port, src_ip, src_port);
  return backward < forward ? reversed() : *this;
}

std::string FlowKey::to_string() const {
  std::ostringstream os;
  os << src_ip.to_string() << ':' << src_port << "->" << dst_ip.to_string()
     << ':' << dst_port << '/' << static_cast<int>(protocol);
  return os.str();
}

FlowKey flow_of(const Packet& p) {
  return FlowKey{p.src_ip, p.dst_ip, p.src_port, p.dst_port, p.protocol};
}

}  // namespace dpnet::net
