#include "net/classifier.hpp"

#include <algorithm>
#include <stdexcept>
#include <unordered_map>

namespace dpnet::net {

namespace {

bool rule_matches(const ClassifierRule& r, const Packet& p) {
  if (r.protocol && p.protocol != *r.protocol) return false;
  if (p.dst_port < r.dst_port_lo || p.dst_port > r.dst_port_hi) return false;
  if (p.length < r.min_length) return false;
  if (r.src_prefix && !p.src_ip.in_subnet(*r.src_prefix, r.src_prefix_len)) {
    return false;
  }
  if (r.dst_prefix && !p.dst_ip.in_subnet(*r.dst_prefix, r.dst_prefix_len)) {
    return false;
  }
  return true;
}

}  // namespace

PacketClassifier::PacketClassifier(std::vector<ClassifierRule> rules,
                                   std::string default_label)
    : rules_(std::move(rules)) {
  for (const ClassifierRule& r : rules_) {
    if (r.label.empty()) {
      throw std::invalid_argument("classifier rule needs a label");
    }
    if (r.dst_port_lo > r.dst_port_hi) {
      throw std::invalid_argument("classifier rule has inverted port range");
    }
  }
  std::stable_sort(rules_.begin(), rules_.end(),
                   [](const ClassifierRule& a, const ClassifierRule& b) {
                     return a.priority < b.priority;
                   });
  std::unordered_map<std::string, int> seen;
  for (const ClassifierRule& r : rules_) {
    auto [it, inserted] =
        seen.emplace(r.label, static_cast<int>(labels_.size()));
    if (inserted) labels_.push_back(r.label);
    rule_label_index_.push_back(it->second);
  }
  default_index_ = static_cast<int>(labels_.size());
  labels_.push_back(std::move(default_label));
}

const std::string& PacketClassifier::classify(const Packet& p) const {
  return labels_[static_cast<std::size_t>(classify_index(p))];
}

int PacketClassifier::classify_index(const Packet& p) const {
  for (std::size_t i = 0; i < rules_.size(); ++i) {
    if (rule_matches(rules_[i], p)) return rule_label_index_[i];
  }
  return default_index_;
}

PacketClassifier PacketClassifier::service_mix() {
  std::vector<ClassifierRule> rules;
  auto port_rule = [](std::string label, int priority, std::uint16_t lo,
                      std::uint16_t hi,
                      std::optional<std::uint8_t> proto = kProtoTcp) {
    ClassifierRule r;
    r.label = std::move(label);
    r.priority = priority;
    r.dst_port_lo = lo;
    r.dst_port_hi = hi;
    r.protocol = proto;
    return r;
  };
  rules.push_back(port_rule("web", 10, 80, 80));
  rules.push_back(port_rule("web", 10, 8080, 8080));
  rules.push_back(port_rule("tls", 11, 443, 443));
  rules.push_back(port_rule("mail", 12, 25, 25));
  rules.push_back(port_rule("mail", 12, 110, 110));
  rules.push_back(port_rule("mail", 12, 143, 143));
  rules.push_back(port_rule("mail", 12, 993, 993));
  rules.push_back(port_rule("ssh", 13, 22, 22));
  rules.push_back(port_rule("dns", 14, 53, 53, kProtoUdp));
  rules.push_back(port_rule("smb", 15, 139, 139));
  rules.push_back(port_rule("smb", 15, 445, 445));
  ClassifierRule interactive = port_rule("interactive", 16, 23, 23);
  interactive.min_length = 0;
  rules.push_back(interactive);
  return PacketClassifier(std::move(rules));
}

}  // namespace dpnet::net
