// Binary packet-trace serialization.
//
// A small versioned container format ("DPNT") so generated traces can be
// written once and shared between benches, plus streaming read/write for
// traces larger than memory.
#pragma once

#include <cstdint>
#include <iosfwd>
#include <span>
#include <stdexcept>
#include <string>
#include <vector>

#include "net/packet.hpp"

namespace dpnet::net {

inline constexpr std::uint32_t kTraceMagic = 0x44504e54;  // "DPNT"
inline constexpr std::uint16_t kTraceVersion = 1;

/// Raised on malformed trace containers.
class TraceIoError : public std::runtime_error {
 public:
  explicit TraceIoError(const std::string& what) : std::runtime_error(what) {}
};

/// Writes `trace` to `out` in DPNT format.
void write_trace(std::ostream& out, std::span<const Packet> trace);

/// Reads a DPNT container; throws TraceIoError on corruption.
std::vector<Packet> read_trace(std::istream& in);

/// Convenience file wrappers.
void write_trace_file(const std::string& path, std::span<const Packet> trace);
std::vector<Packet> read_trace_file(const std::string& path);

/// Incremental writer for traces produced in chunks.
class TraceWriter {
 public:
  explicit TraceWriter(std::ostream& out);
  ~TraceWriter();

  TraceWriter(const TraceWriter&) = delete;
  TraceWriter& operator=(const TraceWriter&) = delete;

  void write(const Packet& p);
  /// Patches the header with the final record count.  Called by the
  /// destructor if not invoked explicitly; explicit calls surface errors.
  void finish();

 private:
  std::ostream& out_;
  std::uint64_t count_ = 0;
  std::streampos count_pos_;
  bool finished_ = false;
};

/// Incremental reader.
class TraceReader {
 public:
  explicit TraceReader(std::istream& in);

  /// Reads the next packet into `p`; returns false at end of trace.
  bool next(Packet& p);

  [[nodiscard]] std::uint64_t total() const { return total_; }
  [[nodiscard]] std::uint64_t remaining() const { return total_ - read_; }

 private:
  std::istream& in_;
  std::uint64_t total_ = 0;
  std::uint64_t read_ = 0;
};

}  // namespace dpnet::net
