// Binary packet-trace serialization.
//
// A small versioned container format ("DPNT") so generated traces can be
// written once and shared between benches, plus streaming read/write for
// traces larger than memory.
//
// Version 2 frames every record as
//
//   [u16 marker][u32 body_len][body bytes][u32 crc32(body)]
//
// so a reader can (a) detect bit-flips via the checksum, (b) detect
// truncation mid-record, and (c) in the opt-in degraded mode, *resync*
// past a corrupt record by scanning forward for the next marker instead
// of giving up on the whole file.  Version 1 containers (no framing) are
// still readable, strict-mode only.
//
// Failure taxonomy (docs/robustness.md):
//   TraceFormatError  — the bytes are wrong (bad magic, bad checksum,
//                       truncation, implausible lengths).  Retrying will
//                       not help; carries the offending record index.
//   TransientIoError  — the I/O layer failed (stream badbit, open
//                       failure).  read_trace_file retries these with
//                       deterministic bounded backoff.
// Both derive from TraceIoError, so existing catch sites see no change.
// Error text names offsets, indices, and sizes only — never record
// contents (the lint R8 sanitization boundary applies here too).
#pragma once

#include <chrono>
#include <cstdint>
#include <iosfwd>
#include <limits>
#include <span>
#include <stdexcept>
#include <string>
#include <vector>

#include "net/packet.hpp"

namespace dpnet::net {

inline constexpr std::uint32_t kTraceMagic = 0x44504e54;  // "DPNT"
inline constexpr std::uint16_t kTraceVersion = 2;
inline constexpr std::uint16_t kTraceVersionLegacy = 1;
/// Per-record frame marker (v2).  Chosen to be asymmetric so a reversed
/// or shifted stream cannot alias it.
inline constexpr std::uint16_t kRecordMarker = 0xA55A;

/// Raised on malformed trace containers.
class TraceIoError : public std::runtime_error {
 public:
  explicit TraceIoError(const std::string& what) : std::runtime_error(what) {}
};

/// The container's bytes are malformed (corruption, truncation, or not a
/// DPNT file at all).  Deterministic: retrying the read cannot succeed.
class TraceFormatError : public TraceIoError {
 public:
  /// record_index for errors in the container header (before any record).
  static constexpr std::uint64_t kHeader =
      std::numeric_limits<std::uint64_t>::max();

  TraceFormatError(const std::string& what, std::uint64_t record_index)
      : TraceIoError(record_index == kHeader
                         ? what
                         : what + " (record " + std::to_string(record_index) +
                               ")"),
        record_index_(record_index) {}

  [[nodiscard]] std::uint64_t record_index() const { return record_index_; }

 private:
  std::uint64_t record_index_;
};

/// The underlying stream failed (disk error, racing writer, injected
/// fault).  Retryable; read_trace_file does so when asked.
class TransientIoError : public TraceIoError {
 public:
  explicit TransientIoError(const std::string& what) : TraceIoError(what) {}
};

/// Read-side robustness knobs.  Defaults preserve the historical strict
/// behavior: any malformed byte aborts the read with a TraceFormatError.
struct TraceReadOptions {
  /// Degraded mode: skip corrupt v2 records (resyncing on the frame
  /// marker) instead of failing, counting each skip in `quarantined()`
  /// and the records.quarantined metric.  Ignored for v1 containers,
  /// which carry no markers to resync on.  Requires a seekable stream.
  bool quarantine = false;
  /// Abort with TraceFormatError anyway once this many records have been
  /// quarantined — a bound on how degraded a "degraded" read may get.
  std::size_t max_quarantined = 1024;
  /// read_trace_file retries TransientIoError this many times (on top of
  /// the first attempt) before giving up.
  int max_retries = 0;
  /// Backoff before retry k (0-based) is retry_backoff << k: a fixed,
  /// jitter-free doubling schedule so failure handling is as
  /// deterministic as the rest of the engine.
  std::chrono::milliseconds retry_backoff{1};
};

/// Writes `trace` to `out` in DPNT v2 format.
void write_trace(std::ostream& out, std::span<const Packet> trace);

/// Reads a DPNT container; throws TraceFormatError on corruption (unless
/// quarantining) and TransientIoError on stream failure.
std::vector<Packet> read_trace(std::istream& in,
                               const TraceReadOptions& options = {});

/// Convenience file wrappers.
void write_trace_file(const std::string& path, std::span<const Packet> trace);
std::vector<Packet> read_trace_file(const std::string& path,
                                    const TraceReadOptions& options = {});

/// Incremental writer for traces produced in chunks.
class TraceWriter {
 public:
  explicit TraceWriter(std::ostream& out);
  ~TraceWriter();

  TraceWriter(const TraceWriter&) = delete;
  TraceWriter& operator=(const TraceWriter&) = delete;

  void write(const Packet& p);
  /// Patches the header with the final record count.  Called by the
  /// destructor if not invoked explicitly; explicit calls surface errors.
  void finish();

 private:
  std::ostream& out_;
  std::uint64_t count_ = 0;
  std::streampos count_pos_;
  bool finished_ = false;
};

/// Incremental reader for v1 and v2 containers.
class TraceReader {
 public:
  explicit TraceReader(std::istream& in, TraceReadOptions options = {});

  /// Reads the next packet into `p`; returns false at end of trace.  In
  /// quarantine mode a corrupt record is skipped (counted, never
  /// surfaced) and the next intact one is returned instead.
  bool next(Packet& p);

  [[nodiscard]] std::uint64_t total() const { return total_; }
  [[nodiscard]] std::uint64_t remaining() const { return total_ - consumed_; }
  /// Records skipped so far in quarantine mode.
  [[nodiscard]] std::uint64_t quarantined() const { return quarantined_; }
  [[nodiscard]] std::uint16_t version() const { return version_; }

 private:
  [[nodiscard]] bool resync(std::streampos frame_start);

  std::istream& in_;
  TraceReadOptions options_;
  std::uint16_t version_ = 0;
  std::uint64_t total_ = 0;
  std::uint64_t consumed_ = 0;  // intact + quarantined
  std::uint64_t quarantined_ = 0;
};

}  // namespace dpnet::net
