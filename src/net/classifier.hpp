// Rule-based packet classification (Gupta & McKeown style priority rule
// lists) — the packet-level analysis family §5.1.3 points at: "various
// classification algorithms can also be implemented in the differentially
// private manner".  The classifier itself runs inside transformations
// (arbitrary logic is allowed there); only its aggregate outputs are
// released with noise.
#pragma once

#include <cstdint>
#include <optional>
#include <span>
#include <string>
#include <vector>

#include "net/packet.hpp"

namespace dpnet::net {

/// One classification rule: all fields must match; unset fields match
/// anything.  Lower `priority` values win.
struct ClassifierRule {
  std::string label;
  int priority = 0;
  std::optional<Ipv4> src_prefix;
  int src_prefix_len = 0;
  std::optional<Ipv4> dst_prefix;
  int dst_prefix_len = 0;
  std::uint16_t dst_port_lo = 0;
  std::uint16_t dst_port_hi = 65535;
  std::optional<std::uint8_t> protocol;
  std::uint16_t min_length = 0;
};

class PacketClassifier {
 public:
  /// Rules are evaluated best-priority-first; `default_label` is returned
  /// when nothing matches.  Throws std::invalid_argument on rules with
  /// empty labels or inverted port ranges.
  PacketClassifier(std::vector<ClassifierRule> rules,
                   std::string default_label = "other");

  /// The label of the highest-priority matching rule.
  [[nodiscard]] const std::string& classify(const Packet& p) const;

  /// Index (into labels()) of the matched class — handy as a Partition key.
  [[nodiscard]] int classify_index(const Packet& p) const;

  /// All labels this classifier can produce; the default label is last.
  [[nodiscard]] const std::vector<std::string>& labels() const {
    return labels_;
  }

  /// A ready-made service-mix classifier (web/tls/mail/ssh/dns/smb/
  /// interactive/other) used by the examples and benches.
  static PacketClassifier service_mix();

 private:
  std::vector<ClassifierRule> rules_;  // sorted by priority
  std::vector<std::string> labels_;
  std::vector<int> rule_label_index_;
  int default_index_;
};

}  // namespace dpnet::net
