// TCP-semantics helpers: handshake matching, retransmission and reordering
// detection, idle-to-active transition extraction.
//
// These run on the *trusted* side (ground-truth baselines, generator
// validation, experiment evaluation).  The differentially-private versions
// of the same computations are expressed over Queryable in src/analysis.
#pragma once

#include <span>
#include <unordered_map>
#include <vector>

#include "net/packet.hpp"

namespace dpnet::net {

/// A matched SYN / SYN-ACK pair.
struct RttSample {
  FlowKey flow;      // the client's 5-tuple
  double rtt_s = 0;  // SYN-ACK timestamp minus SYN timestamp
};

/// Matches each TCP SYN with the first subsequent SYN-ACK whose ack number
/// equals the SYN's sequence number plus one (Swing's RTT estimator).
std::vector<RttSample> handshake_rtts(std::span<const Packet> trace);

/// Time differences (milliseconds) between a data packet and its
/// retransmission: for each flow, a packet whose sequence number was
/// already seen is a retransmission; the diff is measured to the most
/// recent packet with that sequence number.  This is the Figure 1 dataset.
std::vector<double> retransmit_time_diffs_ms(std::span<const Packet> trace);

/// Downstream loss rate of one flow's packets per Swing:
/// 1 - distinct_sequence_numbers / total_packets.  Returns 0 for empty.
double flow_loss_rate(std::span<const Packet> flow_packets);

/// Number of out-of-order arrivals (sequence number below the running
/// maximum, excluding exact retransmissions) — Swing's upstream-loss proxy.
std::size_t out_of_order_count(std::span<const Packet> flow_packets);

/// An idle-to-active transition of a flow: the first packet after at least
/// `t_idle` seconds of silence (the flow's first packet also counts).
struct Activation {
  FlowKey flow;
  double time = 0.0;

  bool operator==(const Activation&) const = default;
};

/// Exact activation extraction (the non-private reference that the paper's
/// bucketed approximation is compared against).
std::vector<Activation> extract_activations(std::span<const Packet> trace,
                                            double t_idle);

/// Groups a trace by 5-tuple, preserving packet order within each flow.
std::unordered_map<FlowKey, std::vector<Packet>> group_flows(
    std::span<const Packet> trace);

}  // namespace dpnet::net
