#include "net/ip.hpp"

#include <cstdio>
#include <stdexcept>

namespace dpnet::net {

std::string Ipv4::to_string() const {
  char buf[16];
  std::snprintf(buf, sizeof(buf), "%u.%u.%u.%u", (value >> 24) & 0xff,
                (value >> 16) & 0xff, (value >> 8) & 0xff, value & 0xff);
  return buf;
}

Ipv4 Ipv4::from_string(const std::string& text) {
  unsigned a = 0, b = 0, c = 0, d = 0;
  char trailing = 0;
  const int matched =
      std::sscanf(text.c_str(), "%u.%u.%u.%u%c", &a, &b, &c, &d, &trailing);
  if (matched != 4 || a > 255 || b > 255 || c > 255 || d > 255) {
    throw std::invalid_argument("malformed IPv4 address: " + text);
  }
  return Ipv4(static_cast<std::uint8_t>(a), static_cast<std::uint8_t>(b),
              static_cast<std::uint8_t>(c), static_cast<std::uint8_t>(d));
}

bool Ipv4::in_subnet(Ipv4 prefix, int prefix_len) const {
  if (prefix_len < 0 || prefix_len > 32) {
    throw std::invalid_argument("prefix length must be in [0,32]");
  }
  if (prefix_len == 0) return true;
  const std::uint32_t mask = ~std::uint32_t{0} << (32 - prefix_len);
  return (value & mask) == (prefix.value & mask);
}

}  // namespace dpnet::net
