// Flow-level bookkeeping: per-flow statistics and connection splitting.
#pragma once

#include <cstdint>
#include <span>
#include <unordered_map>
#include <vector>

#include "net/packet.hpp"

namespace dpnet::net {

/// Aggregate statistics of one 5-tuple flow.
struct FlowStats {
  FlowKey key;
  std::size_t packets = 0;
  std::uint64_t bytes = 0;
  double first_time = 0.0;
  double last_time = 0.0;
  double loss_rate = 0.0;        // Swing downstream-loss estimate
  std::size_t out_of_order = 0;  // Swing upstream-loss proxy
  std::size_t connections = 0;   // number of TCP connections in the flow

  [[nodiscard]] double duration() const { return last_time - first_time; }
};

/// Computes FlowStats for every flow in the trace.
std::vector<FlowStats> compute_flow_stats(std::span<const Packet> trace);

/// A packet tagged with the connection it belongs to.  The paper notes that
/// isolating TCP connections inside a 5-tuple flow was not expressible in
/// PINQ and suggests the data owner pre-process the trace to add a
/// connection id — this is that pre-processing step.
struct ConnPacket {
  Packet packet;
  std::uint32_t connection_id = 0;  // unique across the whole trace
};

/// Splits flows into connections: within a flow, each client SYN (without
/// ACK) starts a new connection; packets before the first SYN belong to
/// connection 0 of that flow.  Returns packets in original trace order.
std::vector<ConnPacket> assign_connection_ids(std::span<const Packet> trace);

/// Packets-per-connection counts (the Swing statistic that needed the
/// pre-processing above).
std::vector<std::size_t> packets_per_connection(
    std::span<const ConnPacket> tagged);

}  // namespace dpnet::net
