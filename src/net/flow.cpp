#include "net/flow.hpp"

#include <algorithm>
#include <limits>
#include <map>

#include "net/tcp.hpp"

namespace dpnet::net {

std::vector<FlowStats> compute_flow_stats(std::span<const Packet> trace) {
  auto flows = group_flows(trace);
  std::vector<FlowStats> out;
  out.reserve(flows.size());
  for (auto& [key, packets] : flows) {
    FlowStats s;
    s.key = key;
    s.packets = packets.size();
    s.first_time = std::numeric_limits<double>::infinity();
    s.last_time = -std::numeric_limits<double>::infinity();
    for (const Packet& p : packets) {
      s.bytes += p.length;
      s.first_time = std::min(s.first_time, p.timestamp);
      s.last_time = std::max(s.last_time, p.timestamp);
    }
    s.loss_rate = flow_loss_rate(packets);
    s.out_of_order = out_of_order_count(packets);
    std::size_t syns = 0;
    for (const Packet& p : packets) {
      if (p.flags.syn && !p.flags.ack) ++syns;
    }
    s.connections = std::max<std::size_t>(syns, 1);
    out.push_back(s);
  }
  return out;
}

std::vector<ConnPacket> assign_connection_ids(std::span<const Packet> trace) {
  std::unordered_map<FlowKey, std::uint32_t> current;
  std::uint32_t next_id = 1;
  std::vector<ConnPacket> out;
  out.reserve(trace.size());
  for (const Packet& p : trace) {
    const FlowKey key = flow_of(p).canonical();
    auto it = current.find(key);
    const bool starts_connection = p.flags.syn && !p.flags.ack;
    if (it == current.end()) {
      current[key] = next_id++;
    } else if (starts_connection) {
      it->second = next_id++;
    }
    out.push_back(ConnPacket{p, current[key]});
  }
  return out;
}

std::vector<std::size_t> packets_per_connection(
    std::span<const ConnPacket> tagged) {
  std::map<std::uint32_t, std::size_t> counts;
  for (const ConnPacket& cp : tagged) ++counts[cp.connection_id];
  std::vector<std::size_t> out;
  out.reserve(counts.size());
  for (const auto& [id, n] : counts) out.push_back(n);
  return out;
}

}  // namespace dpnet::net
