#include "net/anonymize.hpp"

namespace dpnet::net {

namespace {

/// Keyed 64-bit mixer (splitmix64 finalizer) used as the per-prefix PRF.
std::uint64_t mix(std::uint64_t x) {
  x += 0x9e3779b97f4a7c15ULL;
  x = (x ^ (x >> 30)) * 0xbf58476d1ce4e5b9ULL;
  x = (x ^ (x >> 27)) * 0x94d049bb133111ebULL;
  return x ^ (x >> 31);
}

}  // namespace

Ipv4 anonymize_ip(Ipv4 address, std::uint64_t key) {
  std::uint32_t out = 0;
  std::uint32_t prefix = 0;  // the original leading bits seen so far
  for (int bit = 31; bit >= 0; --bit) {
    const std::uint32_t original_bit = (address.value >> bit) & 1u;
    // The flip decision depends only on the key and the preceding
    // original prefix, which is exactly what preserves prefixes.
    const std::uint64_t prf =
        mix(key ^ (static_cast<std::uint64_t>(prefix) << 6) ^
            static_cast<std::uint64_t>(31 - bit));
    const std::uint32_t flip = static_cast<std::uint32_t>(prf & 1u);
    out = (out << 1) | (original_bit ^ flip);
    prefix = (prefix << 1) | original_bit;
  }
  return Ipv4(out);
}

int common_prefix_len(Ipv4 a, Ipv4 b) {
  const std::uint32_t diff = a.value ^ b.value;
  if (diff == 0) return 32;
  int len = 0;
  for (int bit = 31; bit >= 0 && ((diff >> bit) & 1u) == 0; --bit) ++len;
  return len;
}

std::vector<Packet> anonymize_trace(std::span<const Packet> trace,
                                    const AnonymizeOptions& options) {
  std::vector<Packet> out;
  out.reserve(trace.size());
  double t0 = trace.empty() ? 0.0 : trace.front().timestamp;
  for (const Packet& p : trace) t0 = std::min(t0, p.timestamp);
  for (const Packet& p : trace) {
    Packet q = p;
    q.src_ip = anonymize_ip(p.src_ip, options.key);
    q.dst_ip = anonymize_ip(p.dst_ip, options.key);
    if (options.strip_payloads) q.payload.clear();
    if (options.zero_timestamps) q.timestamp = p.timestamp - t0;
    out.push_back(std::move(q));
  }
  return out;
}

}  // namespace dpnet::net
