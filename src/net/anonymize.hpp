// Prefix-preserving trace anonymization — the community's status-quo
// sharing mechanism that the paper contrasts with differential privacy
// (§1, §6).  Implements the Xu et al. / TCPdpriv construction: two
// addresses sharing a k-bit prefix map to addresses sharing a k-bit
// prefix, with each deeper bit decided by a keyed pseudorandom function of
// the preceding prefix.
//
// Included as a baseline, not an endorsement: the paper's §6 catalogues
// the attacks that defeat exactly this kind of sanitization.  (The PRF
// here is a mixing hash keyed by `key` — structurally faithful, not
// cryptographically hardened.)
#pragma once

#include <cstdint>
#include <span>
#include <vector>

#include "net/packet.hpp"

namespace dpnet::net {

/// Prefix-preserving IPv4 anonymization under `key`.  Deterministic: the
/// same (address, key) always maps to the same output, and
/// common_prefix_len(a, b) == common_prefix_len(f(a), f(b)).
Ipv4 anonymize_ip(Ipv4 address, std::uint64_t key);

/// Length of the common leading-bit prefix of two addresses.
int common_prefix_len(Ipv4 a, Ipv4 b);

struct AnonymizeOptions {
  std::uint64_t key = 0x5bd1e995u;
  bool strip_payloads = true;   // released traces rarely keep payloads
  bool zero_timestamps = false; // coarse re-basing to the trace start
};

/// Sanitizes a whole trace: both endpoint addresses are anonymized
/// prefix-preservingly and (by default) payloads are removed — the
/// "heavily sanitized" release format the paper describes.
std::vector<Packet> anonymize_trace(std::span<const Packet> trace,
                                    const AnonymizeOptions& options = {});

}  // namespace dpnet::net
