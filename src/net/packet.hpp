// Packet and flow record types — the records the privacy engine protects.
#pragma once

#include <cstdint>
#include <functional>
#include <string>

#include "core/hash.hpp"
#include "net/ip.hpp"

namespace dpnet::net {

/// TCP header flags (only the ones the analyses use).
struct TcpFlags {
  bool syn = false;
  bool ack = false;
  bool fin = false;
  bool rst = false;
  bool psh = false;

  bool operator==(const TcpFlags&) const = default;

  [[nodiscard]] std::uint8_t to_byte() const;
  static TcpFlags from_byte(std::uint8_t b);
};

inline constexpr std::uint8_t kProtoTcp = 6;
inline constexpr std::uint8_t kProtoUdp = 17;

/// One captured packet.  Mirrors the paper's Packet type: timestamps,
/// unaltered addresses and ports, TCP header fields, and the raw payload —
/// precisely the sensitive fields differential privacy must protect.
struct Packet {
  double timestamp = 0.0;  // seconds since trace start
  Ipv4 src_ip;
  Ipv4 dst_ip;
  std::uint16_t src_port = 0;
  std::uint16_t dst_port = 0;
  std::uint8_t protocol = kProtoTcp;
  TcpFlags flags;
  std::uint32_t seq = 0;
  std::uint32_t ack_no = 0;
  std::uint16_t length = 0;  // total on-wire bytes
  std::string payload;       // may be empty

  bool operator==(const Packet&) const = default;
};

/// The standard 5-tuple flow key.
struct FlowKey {
  Ipv4 src_ip;
  Ipv4 dst_ip;
  std::uint16_t src_port = 0;
  std::uint16_t dst_port = 0;
  std::uint8_t protocol = kProtoTcp;

  bool operator==(const FlowKey&) const = default;

  /// The key of the reverse direction.
  [[nodiscard]] FlowKey reversed() const {
    return FlowKey{dst_ip, src_ip, dst_port, src_port, protocol};
  }

  /// Direction-insensitive key: the lexicographically smaller of the two
  /// directions, so both halves of a conversation share one key.
  [[nodiscard]] FlowKey canonical() const;

  [[nodiscard]] std::string to_string() const;
};

[[nodiscard]] FlowKey flow_of(const Packet& p);

}  // namespace dpnet::net

namespace std {
template <>
struct hash<dpnet::net::FlowKey> {
  std::size_t operator()(const dpnet::net::FlowKey& k) const {
    std::size_t seed = std::hash<dpnet::net::Ipv4>{}(k.src_ip);
    dpnet::core::hash_combine(seed, std::hash<dpnet::net::Ipv4>{}(k.dst_ip));
    dpnet::core::hash_combine(seed, k.src_port);
    dpnet::core::hash_combine(seed, k.dst_port);
    dpnet::core::hash_combine(seed, k.protocol);
    return seed;
  }
};
}  // namespace std
