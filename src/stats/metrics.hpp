// Error metrics and summary statistics used across benches and tests.
#pragma once

#include <cstddef>
#include <span>
#include <vector>

namespace dpnet::stats {

/// The paper's relative RMSE:  sqrt( (1/n) * sum_i (1 - vp[i]/vnf[i])^2 ).
/// Indices where the noise-free value is zero are skipped (the ratio is
/// undefined there); if every index is skipped the result is 0.
double relative_rmse(std::span<const double> private_values,
                     std::span<const double> noise_free_values);

/// Plain root-mean-squared difference.
double rmse(std::span<const double> a, std::span<const double> b);

/// Mean absolute error.
double mean_abs_error(std::span<const double> a, std::span<const double> b);

/// Maximum absolute error.
double max_abs_error(std::span<const double> a, std::span<const double> b);

struct Summary {
  double mean = 0.0;
  double stddev = 0.0;  // population standard deviation
  double min = 0.0;
  double max = 0.0;
  std::size_t count = 0;
};

/// Mean / stddev / extrema of a sample.
Summary summarize(std::span<const double> values);

/// Empirical quantile (linear interpolation, q in [0,1]).
double quantile(std::vector<double> values, double q);

}  // namespace dpnet::stats
