#include "stats/metrics.hpp"

#include <algorithm>
#include <cmath>
#include <limits>
#include <stdexcept>

namespace dpnet::stats {

namespace {

void require_same_size(std::span<const double> a, std::span<const double> b) {
  if (a.size() != b.size()) {
    throw std::invalid_argument("metric inputs must have equal length");
  }
}

}  // namespace

double relative_rmse(std::span<const double> private_values,
                     std::span<const double> noise_free_values) {
  require_same_size(private_values, noise_free_values);
  double sum_sq = 0.0;
  std::size_t used = 0;
  for (std::size_t i = 0; i < private_values.size(); ++i) {
    if (noise_free_values[i] == 0.0) continue;
    const double r = 1.0 - private_values[i] / noise_free_values[i];
    sum_sq += r * r;
    ++used;
  }
  if (used == 0) return 0.0;
  return std::sqrt(sum_sq / static_cast<double>(used));
}

double rmse(std::span<const double> a, std::span<const double> b) {
  require_same_size(a, b);
  if (a.empty()) return 0.0;
  double sum_sq = 0.0;
  for (std::size_t i = 0; i < a.size(); ++i) {
    const double d = a[i] - b[i];
    sum_sq += d * d;
  }
  return std::sqrt(sum_sq / static_cast<double>(a.size()));
}

double mean_abs_error(std::span<const double> a, std::span<const double> b) {
  require_same_size(a, b);
  if (a.empty()) return 0.0;
  double sum = 0.0;
  for (std::size_t i = 0; i < a.size(); ++i) sum += std::abs(a[i] - b[i]);
  return sum / static_cast<double>(a.size());
}

double max_abs_error(std::span<const double> a, std::span<const double> b) {
  require_same_size(a, b);
  double worst = 0.0;
  for (std::size_t i = 0; i < a.size(); ++i) {
    worst = std::max(worst, std::abs(a[i] - b[i]));
  }
  return worst;
}

Summary summarize(std::span<const double> values) {
  Summary s;
  s.count = values.size();
  if (values.empty()) return s;
  s.min = std::numeric_limits<double>::infinity();
  s.max = -std::numeric_limits<double>::infinity();
  double sum = 0.0;
  for (double v : values) {
    sum += v;
    s.min = std::min(s.min, v);
    s.max = std::max(s.max, v);
  }
  s.mean = sum / static_cast<double>(values.size());
  double sq = 0.0;
  for (double v : values) sq += (v - s.mean) * (v - s.mean);
  s.stddev = std::sqrt(sq / static_cast<double>(values.size()));
  return s;
}

double quantile(std::vector<double> values, double q) {
  if (values.empty()) throw std::invalid_argument("quantile of empty sample");
  if (q < 0.0 || q > 1.0) throw std::invalid_argument("q must be in [0,1]");
  std::sort(values.begin(), values.end());
  const double pos = q * static_cast<double>(values.size() - 1);
  const auto lo = static_cast<std::size_t>(pos);
  const std::size_t hi = std::min(lo + 1, values.size() - 1);
  const double frac = pos - static_cast<double>(lo);
  return values[lo] * (1.0 - frac) + values[hi] * frac;
}

}  // namespace dpnet::stats
