// Privacy-efficient sliding-window counts (paper §5.2.2 / §7).
//
// Sliding windows are "easy otherwise but can have a high privacy cost":
// measuring each of W overlapping windows as its own Where+Count splits the
// budget W ways.  The toolkit's formulation buckets time once at the
// window *step* via Partition (one epsilon total), releases the per-bucket
// counts, and reconstructs every sliding window as free post-processing —
// the same bucketing idea the stepping-stone analysis uses.
#pragma once

#include <cstdint>
#include <vector>

#include "core/exec/policy.hpp"
#include "core/queryable.hpp"

namespace dpnet::toolkit {

struct SlidingWindowSpec {
  double t_start = 0.0;
  double t_end = 0.0;
  double window = 0.0;  // window width (seconds)
  double step = 0.0;    // slide amount; must divide window
};

struct SlidingCounts {
  std::vector<double> window_starts;
  std::vector<double> counts;
};

/// Bucketed sliding counts: total privacy cost is `eps` regardless of the
/// number of windows; per-window error stddev ~ sqrt(window/step) * the
/// single-count noise.  The per-bucket counts are independent partition
/// branches; `policy` may fan them out across executor threads.
SlidingCounts sliding_counts(const core::Queryable<double>& times,
                             const SlidingWindowSpec& spec, double eps,
                             core::exec::ExecPolicy policy = {});

/// The naive formulation for comparison: one Where+Count per window, each
/// at eps / num_windows so the total cost is also `eps`.  Per-window error
/// stddev ~ num_windows * the single-count noise.
SlidingCounts sliding_counts_naive(const core::Queryable<double>& times,
                                   const SlidingWindowSpec& spec, double eps);

/// Noise-free reference.
SlidingCounts exact_sliding_counts(const std::vector<double>& times,
                                   const SlidingWindowSpec& spec);

}  // namespace dpnet::toolkit
