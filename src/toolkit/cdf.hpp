// Differentially-private CDF estimation (§4.1 of the paper).
//
// Arbitrary-resolution empirical CDFs are impossible under differential
// privacy, so the toolkit offers three bucketed approximations that trade
// error scaling for structure, all normalized to the same *total* privacy
// cost `eps_total` so they are directly comparable (Fig 1):
//
//   cdf_prefix_counts (cdf1): one Where+Count per bucket boundary.
//       Per-point error stddev ~ |buckets| / eps_total.
//   cdf_partition     (cdf2): Partition by bucket, running sum of counts.
//       Accumulated error stddev ~ sqrt(|buckets|) / eps_total.
//   cdf_recursive     (cdf3): recursive multi-resolution measurement.
//       Per-point error stddev ~ log(|buckets|)^{3/2} / eps_total.
//
// All three take values pre-discretized to std::int64_t (e.g. milliseconds,
// bytes) and ascending bucket boundaries; cdf(x_i) estimates the number of
// records with value <= boundaries[i].
#pragma once

#include <cstdint>
#include <span>
#include <vector>

#include "core/exec/policy.hpp"
#include "core/queryable.hpp"

namespace dpnet::toolkit {

struct CdfEstimate {
  std::vector<std::int64_t> boundaries;
  std::vector<double> values;  // estimated counts of records <= boundary
};

/// cdf1: direct prefix counts, one aggregation per boundary; each runs at
/// eps_total / |boundaries| so the whole query costs eps_total.  The
/// per-boundary counts are independent, so `policy` may run them across
/// executor threads (results are byte-identical either way).
CdfEstimate cdf_prefix_counts(const core::Queryable<std::int64_t>& data,
                              std::span<const std::int64_t> boundaries,
                              double eps_total,
                              core::exec::ExecPolicy policy = {});

/// cdf2: Partition into buckets and accumulate counts.  The Partition
/// max-cost rule makes the whole query cost eps_total regardless of the
/// number of buckets.  Per-bucket counts are independent partition
/// branches, so `policy` may fan them out across executor threads.
CdfEstimate cdf_partition(const core::Queryable<std::int64_t>& data,
                          std::span<const std::int64_t> boundaries,
                          double eps_total,
                          core::exec::ExecPolicy policy = {});

/// cdf3: recursive multi-resolution counts; each output aggregates at most
/// ceil(log2 |boundaries|) + 1 measurements.  Costs eps_total in total.
CdfEstimate cdf_recursive(const core::Queryable<std::int64_t>& data,
                          std::span<const std::int64_t> boundaries,
                          double eps_total);

/// The noise-free reference CDF (trusted side only).
CdfEstimate exact_cdf(std::span<const std::int64_t> values,
                      std::span<const std::int64_t> boundaries);

/// Equally-spaced boundaries [lo, lo+step, ..., >= hi].
std::vector<std::int64_t> make_boundaries(std::int64_t lo, std::int64_t hi,
                                          std::int64_t step);

/// Pool-adjacent-violators isotonic regression: the non-decreasing curve
/// minimizing squared distance from `values` (noisy CDFs are not
/// monotone; §4.1 notes this smoothing is optional and non-reversible).
std::vector<double> isotonic_fit(std::span<const double> values);

}  // namespace dpnet::toolkit
