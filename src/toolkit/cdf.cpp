#include "toolkit/cdf.hpp"

#include <algorithm>
#include <bit>
#include <cmath>
#include <stdexcept>

#include "core/exec/executor.hpp"

namespace dpnet::toolkit {

namespace {

void require_boundaries(std::span<const std::int64_t> boundaries) {
  if (boundaries.empty()) {
    throw std::invalid_argument("cdf requires at least one boundary");
  }
  if (!std::is_sorted(boundaries.begin(), boundaries.end()) ||
      std::adjacent_find(boundaries.begin(), boundaries.end()) !=
          boundaries.end()) {
    throw std::invalid_argument("cdf boundaries must be strictly ascending");
  }
}

/// Index of the first boundary >= v, or boundaries.size() if beyond range.
std::size_t bucket_of(std::int64_t v,
                      std::span<const std::int64_t> boundaries) {
  const auto it = std::lower_bound(boundaries.begin(), boundaries.end(), v);
  return static_cast<std::size_t>(it - boundaries.begin());
}

}  // namespace

CdfEstimate cdf_prefix_counts(const core::Queryable<std::int64_t>& data,
                              std::span<const std::int64_t> boundaries,
                              double eps_total,
                              core::exec::ExecPolicy policy) {
  require_boundaries(boundaries);
  const double eps_query = eps_total / static_cast<double>(boundaries.size());
  CdfEstimate out;
  out.boundaries.assign(boundaries.begin(), boundaries.end());
  // Each boundary's where+count is an independent sub-query; build the
  // derived queryables up front (sequentially, so plan-node ids are
  // deterministic) and release the counts under the policy.
  std::vector<core::Queryable<std::int64_t>> prefixes;
  prefixes.reserve(boundaries.size());
  for (std::int64_t b : boundaries) {
    prefixes.push_back(data.where([b](std::int64_t v) { return v <= b; }));
  }
  std::vector<std::size_t> keys(boundaries.size());
  for (std::size_t i = 0; i < keys.size(); ++i) keys[i] = i;
  out.values = core::exec::map_parts(
      policy, keys, prefixes,
      [eps_query](std::size_t, const core::Queryable<std::int64_t>& q) {
        return q.noisy_count(eps_query);
      });
  return out;
}

CdfEstimate cdf_partition(const core::Queryable<std::int64_t>& data,
                          std::span<const std::int64_t> boundaries,
                          double eps_total,
                          core::exec::ExecPolicy policy) {
  require_boundaries(boundaries);
  std::vector<std::size_t> keys(boundaries.size());
  for (std::size_t i = 0; i < keys.size(); ++i) keys[i] = i;
  auto parts = data.partition(
      keys, [boundaries](std::int64_t v) { return bucket_of(v, boundaries); });

  const std::vector<double> counts = core::exec::map_parts(
      policy, keys, parts,
      [eps_total](std::size_t, const core::Queryable<std::int64_t>& part) {
        return part.noisy_count(eps_total);
      });

  CdfEstimate out;
  out.boundaries.assign(boundaries.begin(), boundaries.end());
  out.values.reserve(boundaries.size());
  double tally = 0.0;
  for (double count : counts) {
    tally += count;
    out.values.push_back(tally);
  }
  return out;
}

namespace {

/// Recursive multi-resolution measurement over bucket indices [0, size):
/// emits one estimated cumulative count per index, relative to the start
/// of this sub-range.  `size` is a power of two.
void cdf3_recurse(const core::Queryable<std::int64_t>& data, double eps,
                  std::int64_t size, std::vector<double>& out) {
  if (size == 1) {
    out.push_back(data.noisy_count(eps));
    return;
  }
  const std::int64_t half = size / 2;
  auto parts = data.partition(std::vector<int>{0, 1},
                              [half](std::int64_t v) {
                                return v < half ? 0 : 1;
                              });
  // Counts for [0, half) come from the recursion on the lower part.
  cdf3_recurse(parts.at(0), eps, half, out);
  // One cumulative count anchors the upper half...
  const double lower_total = parts.at(0).noisy_count(eps);
  // ...and the recursion on the (re-based) upper part fills it in.
  const std::size_t upper_start = out.size();
  auto rebased =
      parts.at(1).select([half](std::int64_t v) { return v - half; });
  cdf3_recurse(rebased, eps, half, out);
  for (std::size_t i = upper_start; i < out.size(); ++i) {
    out[i] += lower_total;
  }
}

}  // namespace

CdfEstimate cdf_recursive(const core::Queryable<std::int64_t>& data,
                          std::span<const std::int64_t> boundaries,
                          double eps_total) {
  require_boundaries(boundaries);
  const auto padded =
      std::bit_ceil(static_cast<std::uint64_t>(boundaries.size()));
  const int levels = std::countr_zero(padded) + 1;
  const double eps = eps_total / static_cast<double>(levels);

  // Work over bucket indices, padded up to a power of two; records beyond
  // the final boundary are dropped (they belong to no bucket) and the
  // padding buckets stay empty.
  auto indexed = data.where([boundaries](std::int64_t v) {
                       return v <= boundaries.back();
                     })
                     .select([boundaries](std::int64_t v) {
                       return static_cast<std::int64_t>(
                           bucket_of(v, boundaries));
                     });

  std::vector<double> cumulative;
  cumulative.reserve(padded);
  cdf3_recurse(indexed, eps, static_cast<std::int64_t>(padded), cumulative);

  CdfEstimate out;
  out.boundaries.assign(boundaries.begin(), boundaries.end());
  out.values.assign(cumulative.begin(),
                    cumulative.begin() +
                        static_cast<std::ptrdiff_t>(boundaries.size()));
  return out;
}

CdfEstimate exact_cdf(std::span<const std::int64_t> values,
                      std::span<const std::int64_t> boundaries) {
  require_boundaries(boundaries);
  std::vector<std::int64_t> sorted(values.begin(), values.end());
  std::sort(sorted.begin(), sorted.end());
  CdfEstimate out;
  out.boundaries.assign(boundaries.begin(), boundaries.end());
  out.values.reserve(boundaries.size());
  for (std::int64_t b : boundaries) {
    const auto it = std::upper_bound(sorted.begin(), sorted.end(), b);
    out.values.push_back(static_cast<double>(it - sorted.begin()));
  }
  return out;
}

std::vector<std::int64_t> make_boundaries(std::int64_t lo, std::int64_t hi,
                                          std::int64_t step) {
  if (step <= 0 || hi < lo) {
    throw std::invalid_argument("make_boundaries requires step > 0, hi >= lo");
  }
  std::vector<std::int64_t> out;
  for (std::int64_t b = lo; b < hi + step; b += step) out.push_back(b);
  return out;
}

std::vector<double> isotonic_fit(std::span<const double> values) {
  // Pool-adjacent-violators: maintain blocks of (mean, weight); merge while
  // the last two blocks violate monotonicity.
  struct Block {
    double mean;
    double weight;
  };
  std::vector<Block> blocks;
  blocks.reserve(values.size());
  for (double v : values) {
    blocks.push_back({v, 1.0});
    while (blocks.size() >= 2 &&
           blocks[blocks.size() - 2].mean > blocks.back().mean) {
      const Block b = blocks.back();
      blocks.pop_back();
      Block& a = blocks.back();
      a.mean = (a.mean * a.weight + b.mean * b.weight) / (a.weight + b.weight);
      a.weight += b.weight;
    }
  }
  std::vector<double> out;
  out.reserve(values.size());
  for (const Block& b : blocks) {
    for (int i = 0; i < static_cast<int>(b.weight); ++i) {
      out.push_back(b.mean);
    }
  }
  return out;
}

}  // namespace dpnet::toolkit
