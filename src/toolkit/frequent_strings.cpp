#include "toolkit/frequent_strings.hpp"

#include <algorithm>
#include <cmath>
#include <cstdint>
#include <stdexcept>

#include "core/exec/executor.hpp"
#include "core/grouping/table.hpp"

namespace dpnet::toolkit {

namespace {

std::vector<int> all_bytes() {
  std::vector<int> bytes(256);
  for (int b = 0; b < 256; ++b) bytes[static_cast<std::size_t>(b)] = b;
  return bytes;
}

}  // namespace

std::vector<FrequentString> frequent_strings(
    const core::Queryable<std::string>& data,
    const FrequentStringOptions& options) {
  if (options.length == 0) {
    throw std::invalid_argument("frequent_strings requires length >= 1");
  }
  if (!(options.eps_per_level > 0.0)) {
    throw std::invalid_argument(
        "frequent-string options require an explicit eps_per_level > 0");
  }
  const std::size_t len = options.length;
  auto fixed = data.where([len](const std::string& s) {
                     return s.size() >= len;
                   })
                   .select([len](const std::string& s) {
                     return s.substr(0, len);
                   });

  const std::vector<int> bytes = all_bytes();
  // The frontier of surviving prefixes, with their latest count estimates.
  std::vector<FrequentString> frontier = {{std::string{}, 0.0}};

  for (std::size_t pos = 0; pos < len; ++pos) {
    std::vector<std::string> prefixes;
    prefixes.reserve(frontier.size());
    for (const auto& f : frontier) prefixes.push_back(f.value);

    // Partition once by current prefix (cost shared via max-semantics)...
    auto by_prefix = fixed.partition(
        prefixes, [pos](const std::string& s) { return s.substr(0, pos); });

    // ...then each candidate's branch (a by-byte sub-partition plus 256
    // counts) is independent of its siblings, so the per-prefix work can
    // fan out across executor threads.  Each task only derives from its
    // own part, which keeps plan-node ids — and therefore the noise —
    // identical to the sequential schedule.
    const double eps_level = options.eps_per_level;
    const double threshold = options.threshold;
    auto survivors_by_prefix = core::exec::map_parts(
        options.exec, prefixes, by_prefix,
        [&bytes, pos, eps_level, threshold](
            const std::string& prefix,
            const core::Queryable<std::string>& part) {
          auto by_byte = part.partition(bytes, [pos](const std::string& s) {
            return static_cast<int>(static_cast<unsigned char>(s[pos]));
          });
          std::vector<FrequentString> survivors;
          for (int b : bytes) {
            const double count = by_byte.at(b).noisy_count(eps_level);
            if (count > threshold) {
              survivors.push_back(FrequentString{
                  prefix + static_cast<char>(static_cast<unsigned char>(b)),
                  count});
            }
          }
          return survivors;
        });

    std::vector<FrequentString> next;
    for (auto& survivors : survivors_by_prefix) {
      next.insert(next.end(), std::make_move_iterator(survivors.begin()),
                  std::make_move_iterator(survivors.end()));
    }
    if (next.size() > options.max_candidates) {
      std::partial_sort(next.begin(),
                        next.begin() + static_cast<std::ptrdiff_t>(
                                           options.max_candidates),
                        next.end(),
                        [](const FrequentString& a, const FrequentString& b) {
                          return a.estimated_count > b.estimated_count;
                        });
      next.resize(options.max_candidates);
    }
    frontier = std::move(next);
    if (frontier.empty()) break;
  }

  std::sort(frontier.begin(), frontier.end(),
            [](const FrequentString& a, const FrequentString& b) {
              return a.estimated_count > b.estimated_count;
            });
  return frontier;
}

double threshold_for_confidence(double eps_per_level,
                                double false_positive_rate,
                                std::size_t candidate_bins) {
  if (!(eps_per_level > 0.0) || !(false_positive_rate > 0.0) ||
      candidate_bins == 0) {
    throw std::invalid_argument(
        "confidence threshold needs positive eps, rate, and bins");
  }
  return std::log(static_cast<double>(candidate_bins) /
                  (2.0 * false_positive_rate)) /
         eps_per_level;
}

std::vector<FrequentString> exact_frequent_strings(
    const std::vector<std::string>& data, std::size_t length,
    double threshold) {
  // Key->count on the grouping engine's tag-byte table: the prefix gets
  // a dense slot on first sight, counts live in a flat vector.
  core::grouping::GroupTable<std::string> index;
  std::vector<std::size_t> counts;
  for (const std::string& s : data) {
    if (s.size() < length) continue;
    const auto [slot, inserted] = index.acquire(s.substr(0, length));
    if (inserted) counts.push_back(0);
    ++counts[slot];
  }
  std::vector<FrequentString> out;
  for (std::uint32_t slot = 0; slot < counts.size(); ++slot) {
    if (static_cast<double>(counts[slot]) > threshold) {
      out.push_back(FrequentString{index.key_at(slot),
                                   static_cast<double>(counts[slot])});
    }
  }
  std::sort(out.begin(), out.end(),
            [](const FrequentString& a, const FrequentString& b) {
              return a.estimated_count > b.estimated_count;
            });
  return out;
}

std::string to_hex(const std::string& bytes) {
  static const char* digits = "0123456789ABCDEF";
  std::string out;
  out.reserve(bytes.size() * 2);
  for (char c : bytes) {
    const auto b = static_cast<unsigned char>(c);
    out.push_back(digits[b >> 4]);
    out.push_back(digits[b & 0xf]);
  }
  return out;
}

}  // namespace dpnet::toolkit
