// Differentially-private frequent-(sub)string discovery (§4.2).
//
// Reveals strings that occur many times in the protected data by growing
// byte prefixes: partition records by the next byte of each surviving
// prefix, keep extensions whose noisy count clears the threshold, repeat.
// The privacy cost is eps_per_level per byte position (the partitions make
// each level's cost independent of the number of candidates), so a search
// to length B costs B * eps_per_level in total.
#pragma once

#include <cstdint>
#include <string>
#include <vector>

#include "core/exec/policy.hpp"
#include "core/queryable.hpp"

namespace dpnet::toolkit {

struct FrequentString {
  std::string value;
  double estimated_count = 0.0;
};

struct FrequentStringOptions {
  std::size_t length = 8;        // bytes to spell out
  double eps_per_level = 0.0;    // privacy cost per byte (0 rejects)
  double threshold = 50.0;       // keep prefixes with noisy count above this
  std::size_t max_candidates = 4096;  // safety valve on the frontier
  core::exec::ExecPolicy exec;   // per-prefix branches fan out when > 1
};

/// Finds strings of exactly `options.length` bytes whose occurrence count
/// (noisily) exceeds `options.threshold`.  Records shorter than `length`
/// are ignored; longer records participate through their prefix.
/// Results are sorted by estimated count, descending.
std::vector<FrequentString> frequent_strings(
    const core::Queryable<std::string>& data,
    const FrequentStringOptions& options);

/// The paper's §4.2 contract is a user-specified threshold *with a
/// user-specified confidence*: this helper converts a per-level false-
/// positive budget into the survival threshold that achieves it.  An
/// empty byte bin survives a level when its Laplace(1/eps) noise exceeds
/// the threshold, which happens with probability exp(-eps*t)/2; with
/// `candidate_bins` bins examined per level, a threshold of
///   t = ln(candidate_bins / (2 * false_positive_rate)) / eps
/// keeps the expected number of noise-born survivors per level below
/// `false_positive_rate`.
double threshold_for_confidence(double eps_per_level,
                                double false_positive_rate,
                                std::size_t candidate_bins);

/// Noise-free reference (trusted side only): exact counts of all
/// length-byte prefixes occurring more than `threshold` times.
std::vector<FrequentString> exact_frequent_strings(
    const std::vector<std::string>& data, std::size_t length,
    double threshold);

/// Renders a payload string as uppercase hex (Table 4 presentation).
std::string to_hex(const std::string& bytes);

}  // namespace dpnet::toolkit
