#include "toolkit/sliding.hpp"

#include <algorithm>
#include <cmath>
#include <stdexcept>

#include "core/exec/executor.hpp"

namespace dpnet::toolkit {

namespace {

struct Grid {
  std::int64_t buckets_per_window;
  std::int64_t num_buckets;
  std::int64_t num_windows;
};

Grid validate(const SlidingWindowSpec& spec) {
  if (spec.window <= 0.0 || spec.step <= 0.0 || spec.t_end <= spec.t_start) {
    throw std::invalid_argument("sliding window spec must be positive");
  }
  const double ratio = spec.window / spec.step;
  const auto buckets_per_window = static_cast<std::int64_t>(
      std::llround(ratio));
  if (std::abs(ratio - static_cast<double>(buckets_per_window)) > 1e-9 ||
      buckets_per_window < 1) {
    throw std::invalid_argument("window must be a multiple of step");
  }
  if (spec.t_end - spec.t_start < spec.window) {
    throw std::invalid_argument("range shorter than one window");
  }
  const auto num_buckets = static_cast<std::int64_t>(
      std::ceil((spec.t_end - spec.t_start) / spec.step));
  const std::int64_t num_windows = num_buckets - buckets_per_window + 1;
  return Grid{buckets_per_window, num_buckets, num_windows};
}

SlidingCounts assemble(const SlidingWindowSpec& spec, const Grid& grid,
                       const std::vector<double>& bucket_counts) {
  SlidingCounts out;
  double rolling = 0.0;
  for (std::int64_t b = 0; b < grid.buckets_per_window; ++b) {
    rolling += bucket_counts[static_cast<std::size_t>(b)];
  }
  for (std::int64_t w = 0; w < grid.num_windows; ++w) {
    out.window_starts.push_back(spec.t_start +
                                static_cast<double>(w) * spec.step);
    out.counts.push_back(rolling);
    if (w + 1 < grid.num_windows) {
      rolling -= bucket_counts[static_cast<std::size_t>(w)];
      rolling +=
          bucket_counts[static_cast<std::size_t>(w +
                                                 grid.buckets_per_window)];
    }
  }
  return out;
}

}  // namespace

SlidingCounts sliding_counts(const core::Queryable<double>& times,
                             const SlidingWindowSpec& spec, double eps,
                             core::exec::ExecPolicy policy) {
  const Grid grid = validate(spec);
  std::vector<std::int64_t> keys(static_cast<std::size_t>(grid.num_buckets));
  for (std::int64_t b = 0; b < grid.num_buckets; ++b) {
    keys[static_cast<std::size_t>(b)] = b;
  }
  const double t_start = spec.t_start;
  const double step = spec.step;
  auto parts = times.partition(keys, [t_start, step](double t) {
    return static_cast<std::int64_t>(std::floor((t - t_start) / step));
  });
  const std::vector<double> bucket_counts = core::exec::map_parts(
      policy, keys, parts,
      [eps](std::int64_t, const core::Queryable<double>& part) {
        return part.noisy_count(eps);
      });
  return assemble(spec, grid, bucket_counts);
}

SlidingCounts sliding_counts_naive(const core::Queryable<double>& times,
                                   const SlidingWindowSpec& spec,
                                   double eps) {
  const Grid grid = validate(spec);
  const double eps_each = eps / static_cast<double>(grid.num_windows);
  SlidingCounts out;
  for (std::int64_t w = 0; w < grid.num_windows; ++w) {
    const double lo = spec.t_start + static_cast<double>(w) * spec.step;
    const double hi = lo + spec.window;
    out.window_starts.push_back(lo);
    out.counts.push_back(
        times.where([lo, hi](double t) { return t >= lo && t < hi; })
            .noisy_count(eps_each));
  }
  return out;
}

SlidingCounts exact_sliding_counts(const std::vector<double>& times,
                                   const SlidingWindowSpec& spec) {
  const Grid grid = validate(spec);
  std::vector<double> bucket_counts(
      static_cast<std::size_t>(grid.num_buckets), 0.0);
  for (double t : times) {
    const auto b = static_cast<std::int64_t>(
        std::floor((t - spec.t_start) / spec.step));
    if (b >= 0 && b < grid.num_buckets) {
      bucket_counts[static_cast<std::size_t>(b)] += 1.0;
    }
  }
  return assemble(spec, grid, bucket_counts);
}

}  // namespace dpnet::toolkit
