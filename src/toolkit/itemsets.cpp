#include "toolkit/itemsets.hpp"

#include <algorithm>
#include <functional>
#include <numeric>
#include <stdexcept>

#include "core/exec/executor.hpp"
#include "core/hash.hpp"

namespace dpnet::toolkit {

namespace {

bool contains_all(const std::vector<int>& record,
                  const std::vector<int>& candidate) {
  return std::includes(record.begin(), record.end(), candidate.begin(),
                       candidate.end());
}

/// Apriori candidate generation: join frequent k-sets sharing their first
/// k-1 items; prune candidates with any infrequent k-subset.
std::vector<std::vector<int>> apriori_gen(
    const std::vector<std::vector<int>>& frequent) {
  std::vector<std::vector<int>> candidates;
  for (std::size_t i = 0; i < frequent.size(); ++i) {
    for (std::size_t j = i + 1; j < frequent.size(); ++j) {
      const auto& a = frequent[i];
      const auto& b = frequent[j];
      if (!std::equal(a.begin(), a.end() - 1, b.begin(), b.end() - 1)) {
        continue;
      }
      std::vector<int> merged = a;
      merged.push_back(b.back());
      std::sort(merged.begin(), merged.end());
      // Prune: every (k-1)-subset must be frequent.
      bool ok = true;
      for (std::size_t drop = 0; drop + 1 < merged.size() && ok; ++drop) {
        std::vector<int> subset = merged;
        subset.erase(subset.begin() + static_cast<std::ptrdiff_t>(drop));
        ok = std::binary_search(frequent.begin(), frequent.end(), subset);
      }
      if (ok) candidates.push_back(std::move(merged));
    }
  }
  std::sort(candidates.begin(), candidates.end());
  candidates.erase(std::unique(candidates.begin(), candidates.end()),
                   candidates.end());
  return candidates;
}

/// Index of the single candidate this record backs, or -1 if it supports
/// none.  Each record is assigned to one supported candidate chosen by a
/// content hash salted with the record's position in the pass: always
/// picking the first supported candidate would starve candidates that
/// co-occur with more popular ones, and a pure content hash would send
/// every copy of a popular record to the same candidate.  The salted
/// spread splits support evenly and is deterministic per run.
int pick_supported(const std::vector<int>& record,
                   const std::vector<std::vector<int>>& candidates,
                   std::size_t salt) {
  std::vector<int> supported;
  for (std::size_t c = 0; c < candidates.size(); ++c) {
    if (contains_all(record, candidates[c])) {
      supported.push_back(static_cast<int>(c));
    }
  }
  if (supported.empty()) return -1;
  std::size_t h = 0x9e3779b97f4a7c15ULL + salt;
  for (int item : record) {
    dpnet::core::hash_combine(h, std::hash<int>{}(item));
  }
  return supported[h % supported.size()];
}

}  // namespace

std::vector<FrequentItemset> frequent_itemsets(
    const core::Queryable<std::vector<int>>& data,
    const std::vector<int>& item_universe, const ItemsetOptions& options) {
  if (options.max_size < 1) {
    throw std::invalid_argument("itemset max_size must be >= 1");
  }
  if (!(options.eps_per_level > 0.0)) {
    throw std::invalid_argument(
        "itemset options require an explicit eps_per_level > 0");
  }

  std::vector<FrequentItemset> results;
  // Level-1 candidates: the item universe as singletons.
  std::vector<std::vector<int>> candidates;
  candidates.reserve(item_universe.size());
  for (int item : item_universe) candidates.push_back({item});

  std::vector<std::vector<int>> frequent_prev;
  for (int level = 1; level <= options.max_size && !candidates.empty();
       ++level) {
    if (candidates.size() > options.max_candidates) {
      candidates.resize(options.max_candidates);
    }
    std::vector<int> keys(candidates.size());
    for (std::size_t i = 0; i < keys.size(); ++i) {
      keys[i] = static_cast<int>(i);
    }
    const auto cands = candidates;  // captured by the key function
    auto salt = std::make_shared<std::size_t>(0);
    auto parts =
        data.partition(keys, [cands, salt](const std::vector<int>& rec) {
          return pick_supported(rec, cands, (*salt)++);
        });

    // Each candidate's count release touches only its own partition branch,
    // so the per-level counting fans out under the executor policy.
    const double eps_level = options.eps_per_level;
    const std::vector<double> counts = core::exec::map_parts(
        options.exec, keys, parts,
        [eps_level](int, const core::Queryable<std::vector<int>>& part) {
          return part.noisy_count(eps_level);
        });

    std::vector<std::pair<std::vector<int>, double>> surviving;
    for (std::size_t c = 0; c < candidates.size(); ++c) {
      if (counts[c] > options.threshold) {
        surviving.emplace_back(candidates[c], counts[c]);
      }
    }

    std::sort(surviving.begin(), surviving.end(),
              [](const auto& a, const auto& b) { return a.second > b.second; });
    frequent_prev.clear();
    for (const auto& [items, count] : surviving) {
      results.push_back(FrequentItemset{items, count});
      frequent_prev.push_back(items);
    }

    if (level < options.max_size) {
      std::sort(frequent_prev.begin(), frequent_prev.end());
      candidates = apriori_gen(frequent_prev);
    }
  }

  std::sort(results.begin(), results.end(),
            [](const FrequentItemset& a, const FrequentItemset& b) {
              if (a.items.size() != b.items.size()) {
                return a.items.size() < b.items.size();
              }
              return a.estimated_count > b.estimated_count;
            });
  return results;
}

std::vector<FrequentItemset> exact_frequent_itemsets(
    const std::vector<std::vector<int>>& data,
    const std::vector<int>& item_universe, int max_size, double threshold) {
  std::vector<FrequentItemset> results;
  std::vector<std::vector<int>> candidates;
  for (int item : item_universe) candidates.push_back({item});

  for (int level = 1; level <= max_size && !candidates.empty(); ++level) {
    // Candidates are known up front, so counts are a dense vector keyed
    // by candidate index — no per-support map node allocation (the
    // candidate list itself is the insertion log).
    std::vector<std::size_t> counts(candidates.size(), 0);
    for (const auto& record : data) {
      for (std::size_t c = 0; c < candidates.size(); ++c) {
        if (contains_all(record, candidates[c])) ++counts[c];
      }
    }
    // Emit in sorted-candidate order — the iteration order of the
    // std::map this replaced (level-1 candidates can arrive unsorted).
    std::vector<std::size_t> order(candidates.size());
    std::iota(order.begin(), order.end(), std::size_t{0});
    std::sort(order.begin(), order.end(),
              [&candidates](std::size_t a, std::size_t b) {
                return candidates[a] < candidates[b];
              });
    std::vector<std::vector<int>> frequent;
    for (std::size_t c : order) {
      if (counts[c] != 0 && static_cast<double>(counts[c]) > threshold) {
        results.push_back(FrequentItemset{candidates[c],
                                          static_cast<double>(counts[c])});
        frequent.push_back(candidates[c]);
      }
    }
    std::sort(frequent.begin(), frequent.end());
    if (level < max_size) candidates = apriori_gen(frequent);
  }

  std::sort(results.begin(), results.end(),
            [](const FrequentItemset& a, const FrequentItemset& b) {
              if (a.items.size() != b.items.size()) {
                return a.items.size() < b.items.size();
              }
              return a.estimated_count > b.estimated_count;
            });
  return results;
}

}  // namespace dpnet::toolkit
