#include "toolkit/range_tree.hpp"

#include <algorithm>
#include <stdexcept>

namespace dpnet::toolkit {

DpRangeTree::DpRangeTree(const core::Queryable<std::int64_t>& values,
                         std::int64_t domain_size, double eps) {
  if (domain_size <= 0) {
    throw core::InvalidQueryError("range tree needs a positive domain");
  }
  padded_ = static_cast<std::int64_t>(
      std::bit_ceil(static_cast<std::uint64_t>(domain_size)));
  levels_ = std::countr_zero(static_cast<std::uint64_t>(padded_)) + 1;
  const double eps_level = eps / static_cast<double>(levels_);

  auto in_domain = values.where(
      [d = domain_size](std::int64_t v) { return v >= 0 && v < d; });
  // The builder's per-node noise: stability of `values` times 1/eps_level
  // (reported for the error analysis; stability is usually 1).
  node_scale_ = in_domain.total_stability() / eps_level;

  counts_.resize(static_cast<std::size_t>(levels_));
  for (int level = 0; level < levels_; ++level) {
    const std::int64_t width = padded_ >> level;
    const auto buckets = static_cast<std::int64_t>(1) << level;
    std::vector<std::int64_t> keys(static_cast<std::size_t>(buckets));
    for (std::int64_t b = 0; b < buckets; ++b) {
      keys[static_cast<std::size_t>(b)] = b;
    }
    auto parts = in_domain.partition(
        keys, [width](std::int64_t v) { return v / width; });
    auto& row = counts_[static_cast<std::size_t>(level)];
    row.reserve(keys.size());
    for (std::int64_t b = 0; b < buckets; ++b) {
      row.push_back(parts.at(b).noisy_count(eps_level));
    }
  }
}

void DpRangeTree::decompose(
    std::int64_t lo, std::int64_t hi,
    std::vector<std::pair<int, std::int64_t>>& nodes) const {
  // Greedy canonical decomposition: take the largest aligned dyadic block
  // starting at lo that fits within [lo, hi).
  while (lo < hi) {
    std::int64_t width = padded_ >> (levels_ - 1);  // start at leaf width=1
    // Grow while alignment and fit allow.
    while (width * 2 <= hi - lo && lo % (width * 2) == 0 &&
           width * 2 <= padded_) {
      width *= 2;
    }
    // Shrink if the aligned block overshoots (can happen when lo is not
    // aligned to the fitting width).
    while (lo % width != 0 || lo + width > hi) width /= 2;
    const int level =
        levels_ - 1 -
        std::countr_zero(static_cast<std::uint64_t>(width));
    nodes.emplace_back(level, lo / width);
    lo += width;
  }
}

double DpRangeTree::range_count(std::int64_t lo, std::int64_t hi) const {
  if (lo < 0 || hi > padded_ || lo >= hi) {
    throw core::InvalidQueryError("range_count needs 0 <= lo < hi <= domain");
  }
  std::vector<std::pair<int, std::int64_t>> nodes;
  decompose(lo, hi, nodes);
  double total = 0.0;
  for (const auto& [level, index] : nodes) {
    total += counts_[static_cast<std::size_t>(level)]
                    [static_cast<std::size_t>(index)];
  }
  return total;
}

std::size_t DpRangeTree::decomposition_size(std::int64_t lo,
                                            std::int64_t hi) const {
  if (lo < 0 || hi > padded_ || lo >= hi) {
    throw core::InvalidQueryError("range needs 0 <= lo < hi <= domain");
  }
  std::vector<std::pair<int, std::int64_t>> nodes;
  decompose(lo, hi, nodes);
  return nodes.size();
}

double exact_range_count(const std::vector<std::int64_t>& values,
                         std::int64_t lo, std::int64_t hi) {
  return static_cast<double>(
      std::count_if(values.begin(), values.end(),
                    [lo, hi](std::int64_t v) { return v >= lo && v < hi; }));
}

}  // namespace dpnet::toolkit
