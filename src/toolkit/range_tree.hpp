// Differentially-private dyadic range tree.
//
// The paper's CDF3 measures counts at multiple resolutions so each CDF
// point aggregates only log-many measurements.  The same structure,
// materialized once, answers *arbitrary* interval counts as free
// post-processing: this class measures every dyadic node of the value
// domain (one epsilon in total — each level is a Partition, and levels
// split the budget), and then any [lo, hi) count decomposes into at most
// 2·log2(domain) released node counts.
//
// Use it when an analyst wants many ad-hoc range queries against one
// column without paying per query.
#pragma once

#include <bit>
#include <cstdint>
#include <vector>

#include "core/queryable.hpp"

namespace dpnet::toolkit {

class DpRangeTree {
 public:
  /// Measures the dyadic counts of `values` over the domain [0,
  /// domain_size); the domain is padded to a power of two and values
  /// outside it are dropped.  Total privacy cost: eps.
  DpRangeTree(const core::Queryable<std::int64_t>& values,
              std::int64_t domain_size, double eps);

  /// Noisy count of records with lo <= value < hi.  Pure post-processing
  /// of the released tree: costs nothing, and repeated queries return
  /// identical answers.  Throws InvalidQueryError on an empty or
  /// out-of-domain range.
  [[nodiscard]] double range_count(std::int64_t lo, std::int64_t hi) const;

  /// Number of dyadic nodes a range decomposes into (for error analysis:
  /// the answer's noise variance is nodes * per-node variance).
  [[nodiscard]] std::size_t decomposition_size(std::int64_t lo,
                                               std::int64_t hi) const;

  [[nodiscard]] std::int64_t domain_size() const { return padded_; }
  [[nodiscard]] int levels() const { return levels_; }
  /// Per-node Laplace scale used at build time.
  [[nodiscard]] double node_noise_scale() const { return node_scale_; }

 private:
  void decompose(std::int64_t lo, std::int64_t hi,
                 std::vector<std::pair<int, std::int64_t>>& nodes) const;

  std::int64_t padded_ = 0;
  int levels_ = 0;          // tree height; level 0 is the root
  double node_scale_ = 0.0;
  // counts_[level][index]: noisy count of values in
  // [index * (padded >> level), (index + 1) * (padded >> level)).
  std::vector<std::vector<double>> counts_;
};

/// Exact interval count over raw values (trusted side).
double exact_range_count(const std::vector<std::int64_t>& values,
                         std::int64_t lo, std::int64_t hi);

}  // namespace dpnet::toolkit
