// Differentially-private top-k selection over a known candidate universe.
//
// Two mechanisms, both useful when an analysis only needs to *identify*
// the heaviest candidates rather than read all their counts:
//   * peeling report-noisy-max — k rounds; each round draws fresh noisy
//     counts for the remaining candidates and takes the maximum.  Only the
//     selection order is released.
//   * noisy-counts ranking — one pass; every candidate's noisy count is
//     released and the k largest are taken.
// Both cost a total of eps thanks to Partition's max-cost accounting.
#pragma once

#include <algorithm>
#include <limits>
#include <utility>
#include <vector>

#include "core/queryable.hpp"

namespace dpnet::toolkit {

struct TopKResult {
  std::vector<std::size_t> indices;  // into the candidate universe
  /// For noisy-count ranking: the released noisy counts.  For peeling:
  /// only the selection rank (k down to 1) — the per-round noisy counts
  /// are used internally for the argmax and not published.
  std::vector<double> scores;
};

/// Peeling report-noisy-max: returns k candidate indices, most-likely
/// heaviest first.  `index_of` maps a record to its candidate index (or
/// -1 / out-of-range to drop it).  Total privacy cost: eps — each
/// candidate's part pays at most k * (eps / k).
template <typename T, typename IndexF>
TopKResult top_k_peeling(const core::Queryable<T>& data,
                         std::size_t universe_size, IndexF index_of,
                         std::size_t k, double eps) {
  if (k == 0 || k > universe_size) {
    throw core::InvalidQueryError("top_k requires 0 < k <= universe");
  }
  const double eps_round = eps / static_cast<double>(k);
  std::vector<int> keys(universe_size);
  for (std::size_t i = 0; i < universe_size; ++i) {
    keys[i] = static_cast<int>(i);
  }
  auto parts = data.partition(keys, index_of);

  TopKResult result;
  std::vector<bool> taken(universe_size, false);
  for (std::size_t round = 0; round < k; ++round) {
    std::size_t best = universe_size;
    double best_score = -std::numeric_limits<double>::infinity();
    for (std::size_t i = 0; i < universe_size; ++i) {
      if (taken[i]) continue;
      const double noisy =
          parts.at(static_cast<int>(i)).noisy_count(eps_round);
      if (noisy > best_score) {
        best_score = noisy;
        best = i;
      }
    }
    taken[best] = true;
    result.indices.push_back(best);
    result.scores.push_back(static_cast<double>(k - round));
  }
  return result;
}

/// Noisy-count ranking via one Partition: releases every candidate's noisy
/// count and returns the k largest.  Total privacy cost: eps.
template <typename T, typename IndexF>
TopKResult top_k_noisy_counts(const core::Queryable<T>& data,
                              std::size_t universe_size, IndexF index_of,
                              std::size_t k, double eps) {
  if (k == 0 || k > universe_size) {
    throw core::InvalidQueryError("top_k requires 0 < k <= universe");
  }
  std::vector<int> keys(universe_size);
  for (std::size_t i = 0; i < universe_size; ++i) {
    keys[i] = static_cast<int>(i);
  }
  auto parts = data.partition(keys, index_of);
  std::vector<std::pair<double, std::size_t>> ranked;
  ranked.reserve(universe_size);
  for (std::size_t i = 0; i < universe_size; ++i) {
    ranked.emplace_back(parts.at(static_cast<int>(i)).noisy_count(eps), i);
  }
  std::sort(ranked.begin(), ranked.end(),
            [](const auto& a, const auto& b) { return a.first > b.first; });
  TopKResult result;
  for (std::size_t i = 0; i < k; ++i) {
    result.indices.push_back(ranked[i].second);
    result.scores.push_back(ranked[i].first);
  }
  return result;
}

}  // namespace dpnet::toolkit
