// Differentially-private frequent itemset mining (§4.3).
//
// Apriori-style level-wise search adapted for privacy: at each level the
// records (item sets) are *partitioned* among the candidate itemsets — a
// record backs a single (hash-chosen) candidate it contains — so one
// Partition pays for all candidate counts.  The paper's
// counter-intuitive insight applies: aggressively high thresholds focus
// the records' support instead of spreading counts too thin.
#pragma once

#include <vector>

#include "core/exec/policy.hpp"
#include "core/queryable.hpp"

namespace dpnet::toolkit {

struct FrequentItemset {
  std::vector<int> items;  // sorted ascending
  double estimated_count = 0.0;
};

struct ItemsetOptions {
  int max_size = 2;            // largest itemset to mine
  double eps_per_level = 0.0;  // privacy cost per apriori level (0 rejects)
  double threshold = 20.0;     // keep candidates with noisy count above this
  std::size_t max_candidates = 2048;
  core::exec::ExecPolicy exec;  // per-candidate counts fan out when > 1
};

/// Mines itemsets of size 1..max_size from records that are themselves
/// sets of items (sorted, duplicate-free std::vector<int>).
/// `item_universe` bounds the level-1 candidates (e.g. well-known ports).
/// Total privacy cost: max_size * eps_per_level.
/// Results are sorted by (size, estimated count desc).
std::vector<FrequentItemset> frequent_itemsets(
    const core::Queryable<std::vector<int>>& data,
    const std::vector<int>& item_universe, const ItemsetOptions& options);

/// Noise-free reference (trusted side): exact support counts — note that
/// exact apriori lets one record support *many* candidates, unlike the
/// private version, so private counts are under-estimates by design.
std::vector<FrequentItemset> exact_frequent_itemsets(
    const std::vector<std::vector<int>>& data,
    const std::vector<int>& item_universe, int max_size, double threshold);

}  // namespace dpnet::toolkit
