#include "core/metrics.hpp"

#include <algorithm>
#include <cstdarg>
#include <cstdio>
#include <optional>

#include "core/errors.hpp"
#include "core/json.hpp"

namespace dpnet::core {

namespace {

/// Prometheus metric name: `dpnet_` prefix, every character outside
/// [a-zA-Z0-9_] (dots in our names) mapped to '_'.
std::string prometheus_name(const std::string& name) {
  std::string out = "dpnet_";
  for (const char c : name) {
    const bool ok = (c >= 'a' && c <= 'z') || (c >= 'A' && c <= 'Z') ||
                    (c >= '0' && c <= '9') || c == '_';
    out += ok ? c : '_';
  }
  return out;
}

void append_line(std::string& out, const char* fmt, ...)
    __attribute__((format(printf, 2, 3)));

void append_line(std::string& out, const char* fmt, ...) {
  char line[256];
  va_list ap;
  va_start(ap, fmt);
  std::vsnprintf(line, sizeof line, fmt, ap);
  va_end(ap);
  out += line;
}

/// Prometheus label-value escaping per text exposition format 0.0.4:
/// backslash, double-quote, and line-feed must be escaped; everything
/// else passes through verbatim.  Analyst labels are analyst-chosen
/// strings, so hostile values must never break the line discipline.
std::string prometheus_label_escape(std::string_view value) {
  std::string out;
  out.reserve(value.size());
  for (const char c : value) {
    switch (c) {
      case '\\': out += "\\\\"; break;
      case '"': out += "\\\""; break;
      case '\n': out += "\\n"; break;
      default: out += c; break;
    }
  }
  return out;
}

/// Splits a per-analyst series name ("budget.spent.<label>") into its
/// family and the analyst label, so the exposition can render the family
/// once with the analyst as a label value instead of minting one mangled
/// metric name per analyst.
struct AnalystSeries {
  std::string_view family;  // "budget.spent"
  std::string_view label;   // analyst label, verbatim
};
std::optional<AnalystSeries> split_analyst_series(const std::string& name) {
  static constexpr std::string_view kFamilies[] = {
      "budget.spent.",     "budget.remaining.", "budget.refusals.",
      "budget.burn_rate.", "budget.eta_s.",
  };
  for (const std::string_view prefix : kFamilies) {
    if (name.size() > prefix.size() &&
        std::string_view(name).substr(0, prefix.size()) == prefix) {
      return AnalystSeries{prefix.substr(0, prefix.size() - 1),
                           std::string_view(name).substr(prefix.size())};
    }
  }
  return std::nullopt;
}

/// Emits "# TYPE" once per exposition family (labeled series share one
/// declaration), tracking the last family declared.
void declare_type(std::string& out, const std::string& pname,
                  const char* kind, std::string& last_declared) {
  if (pname == last_declared) return;
  append_line(out, "# TYPE %s %s\n", pname.c_str(), kind);
  last_declared = pname;
}

/// Never-touched `serve.*` series are registered by accessor plumbing in
/// every process but only move when a query server actually runs;
/// suppressing them keeps scrapes of non-server processes clean.
bool suppress_in_prometheus(const std::string& name, bool touched) {
  return !touched && name.rfind("serve.", 0) == 0;
}

}  // namespace

double Histogram::percentile(double q) const {
  q = std::clamp(q, 0.0, 1.0);
  // Read the buckets once and rank against that same view, so a
  // concurrent observe() can never push the target rank past the counts
  // being walked.
  std::vector<std::uint64_t> counts(buckets_.size());
  std::uint64_t total = 0;
  for (std::size_t i = 0; i < buckets_.size(); ++i) {
    counts[i] = buckets_[i].load(std::memory_order_relaxed);
    total += counts[i];
  }
  if (total == 0) return 0.0;
  const double target = q * static_cast<double>(total);
  double cumulative = 0.0;
  for (std::size_t i = 0; i < counts.size(); ++i) {
    if (counts[i] == 0) continue;
    const double next = cumulative + static_cast<double>(counts[i]);
    if (next >= target) {
      // The overflow bucket has no upper edge: report its lower bound.
      if (i >= bounds_.size()) return bounds_.empty() ? 0.0 : bounds_.back();
      const double upper = bounds_[i];
      const double lower = i == 0 ? std::min(0.0, upper) : bounds_[i - 1];
      const double frac =
          (target - cumulative) / static_cast<double>(counts[i]);
      return lower + (upper - lower) * std::clamp(frac, 0.0, 1.0);
    }
    cumulative = next;
  }
  return bounds_.empty() ? 0.0 : bounds_.back();
}

Histogram::Snapshot Histogram::snapshot() const {
  Snapshot s;
  s.count = count();
  s.sum = sum();
  s.p50 = percentile(0.50);
  s.p95 = percentile(0.95);
  s.p99 = percentile(0.99);
  return s;
}

MetricsRegistry& MetricsRegistry::global() {
  static MetricsRegistry registry;
  return registry;
}

Counter& MetricsRegistry::counter(std::string_view name) {
  const std::lock_guard<std::mutex> lock(mutex_);
  auto& slot = counters_[std::string(name)];
  if (!slot) slot = std::make_unique<Counter>();
  return *slot;
}

Gauge& MetricsRegistry::gauge(std::string_view name) {
  const std::lock_guard<std::mutex> lock(mutex_);
  auto& slot = gauges_[std::string(name)];
  if (!slot) slot = std::make_unique<Gauge>();
  return *slot;
}

Histogram& MetricsRegistry::histogram(std::string_view name,
                                      std::vector<double> bounds) {
  const std::lock_guard<std::mutex> lock(mutex_);
  auto& slot = histograms_[std::string(name)];
  if (!slot) {
    slot = std::make_unique<Histogram>(std::move(bounds));
  } else if (slot->bounds() != bounds) {
    throw InvalidQueryError("histogram '" + std::string(name) +
                            "' re-registered with different bounds");
  }
  return *slot;
}

void MetricsRegistry::reset() {
  const std::lock_guard<std::mutex> lock(mutex_);
  for (auto& [name, c] : counters_) c->reset();
  for (auto& [name, g] : gauges_) g->reset();
  for (auto& [name, h] : histograms_) h->reset();
}

std::string MetricsRegistry::to_json() const {
  const std::lock_guard<std::mutex> lock(mutex_);
  JsonWriter w;
  w.begin_object();
  w.key("counters").begin_object();
  for (const auto& [name, c] : counters_) w.key(name).value(c->value());
  w.end_object();
  w.key("gauges").begin_object();
  for (const auto& [name, g] : gauges_) w.key(name).value(g->value());
  w.end_object();
  w.key("histograms").begin_object();
  for (const auto& [name, h] : histograms_) {
    const Histogram::Snapshot snap = h->snapshot();
    w.key(name).begin_object();
    w.key("count").value(h->count());
    w.key("sum").value(h->sum());
    w.key("p50").value(snap.p50);
    w.key("p95").value(snap.p95);
    w.key("p99").value(snap.p99);
    w.key("buckets").begin_array();
    for (std::size_t i = 0; i <= h->bounds().size(); ++i) {
      w.begin_object();
      w.key("upper_bound");
      if (i < h->bounds().size()) {
        w.value(h->bounds()[i]);
      } else {
        w.null();  // overflow bucket
      }
      w.key("count").value(h->bucket(i));
      w.end_object();
    }
    w.end_array();
    w.end_object();
  }
  w.end_object();
  w.end_object();
  return w.str();
}

std::string MetricsRegistry::to_prometheus() const {
  const std::lock_guard<std::mutex> lock(mutex_);
  std::string out;
  std::string last_declared;
  for (const auto& [name, c] : counters_) {
    if (suppress_in_prometheus(name, c->touched())) continue;
    if (const auto split = split_analyst_series(name)) {
      const std::string pname = prometheus_name(std::string(split->family));
      declare_type(out, pname, "counter", last_declared);
      out += pname + "{analyst=\"" + prometheus_label_escape(split->label) +
             "\"} ";
      append_line(out, "%llu\n", static_cast<unsigned long long>(c->value()));
      continue;
    }
    const std::string pname = prometheus_name(name);
    declare_type(out, pname, "counter", last_declared);
    append_line(out, "%s %llu\n", pname.c_str(),
                static_cast<unsigned long long>(c->value()));
  }
  for (const auto& [name, g] : gauges_) {
    if (suppress_in_prometheus(name, g->touched())) continue;
    if (const auto split = split_analyst_series(name)) {
      const std::string pname = prometheus_name(std::string(split->family));
      declare_type(out, pname, "gauge", last_declared);
      out += pname + "{analyst=\"" + prometheus_label_escape(split->label) +
             "\"} ";
      append_line(out, "%.17g\n", g->value());
      continue;
    }
    const std::string pname = prometheus_name(name);
    declare_type(out, pname, "gauge", last_declared);
    append_line(out, "%s %.17g\n", pname.c_str(), g->value());
  }
  for (const auto& [name, h] : histograms_) {
    const std::string pname = prometheus_name(name);
    append_line(out, "# TYPE %s histogram\n", pname.c_str());
    std::uint64_t cumulative = 0;
    for (std::size_t i = 0; i < h->bounds().size(); ++i) {
      cumulative += h->bucket(i);
      append_line(out, "%s_bucket{le=\"%.17g\"} %llu\n", pname.c_str(),
                  h->bounds()[i],
                  static_cast<unsigned long long>(cumulative));
    }
    cumulative += h->bucket(h->bounds().size());
    append_line(out, "%s_bucket{le=\"+Inf\"} %llu\n", pname.c_str(),
                static_cast<unsigned long long>(cumulative));
    append_line(out, "%s_sum %.17g\n", pname.c_str(), h->sum());
    append_line(out, "%s_count %llu\n", pname.c_str(),
                static_cast<unsigned long long>(h->count()));
  }
  return out;
}

std::string MetricsRegistry::pretty() const {
  const std::lock_guard<std::mutex> lock(mutex_);
  std::string out;
  char line[160];
  for (const auto& [name, c] : counters_) {
    std::snprintf(line, sizeof line, "%-32s %20llu\n", name.c_str(),
                  static_cast<unsigned long long>(c->value()));
    out += line;
  }
  for (const auto& [name, g] : gauges_) {
    std::snprintf(line, sizeof line, "%-32s %20.6g\n", name.c_str(),
                  g->value());
    out += line;
  }
  for (const auto& [name, h] : histograms_) {
    std::snprintf(line, sizeof line, "%-32s count=%llu sum=%.6g\n",
                  name.c_str(), static_cast<unsigned long long>(h->count()),
                  h->sum());
    out += line;
  }
  return out;
}

namespace builtin_metrics {

Counter& queries_executed() {
  static Counter& c = MetricsRegistry::global().counter("queries.executed");
  return c;
}

Counter& refused_charges() {
  static Counter& c = MetricsRegistry::global().counter("budget.refused");
  return c;
}

Counter& noise_draws() {
  static Counter& c = MetricsRegistry::global().counter("noise.draws");
  return c;
}

Counter& queries_aborted() {
  static Counter& c = MetricsRegistry::global().counter("queries.aborted");
  return c;
}

Counter& deadline_exceeded() {
  static Counter& c = MetricsRegistry::global().counter("deadline.exceeded");
  return c;
}

Counter& records_quarantined() {
  static Counter& c =
      MetricsRegistry::global().counter("records.quarantined");
  return c;
}

Counter& faults_injected() {
  static Counter& c = MetricsRegistry::global().counter("faults.injected");
  return c;
}

Counter& bytes_processed() {
  static Counter& c = MetricsRegistry::global().counter("bytes.processed");
  return c;
}

Gauge& serve_sessions_active() {
  static Gauge& g = MetricsRegistry::global().gauge("serve.sessions.active");
  return g;
}

Gauge& serve_queue_depth() {
  static Gauge& g = MetricsRegistry::global().gauge("serve.queue.depth");
  return g;
}

Counter& serve_requests_rejected() {
  static Counter& c =
      MetricsRegistry::global().counter("serve.requests.rejected");
  return c;
}

Counter& serve_requests_shed() {
  static Counter& c =
      MetricsRegistry::global().counter("serve.requests.shed");
  return c;
}

Counter& journal_events_dropped() {
  static Counter& c =
      MetricsRegistry::global().counter("journal.events.dropped");
  return c;
}

Gauge& eps_charged(std::string_view mechanism) {
  return MetricsRegistry::global().gauge("eps.charged." +
                                         std::string(mechanism));
}

namespace {
std::string analyst_series(const char* prefix, std::string_view label) {
  std::string name(prefix);
  name += label.empty() ? std::string_view("unlabeled") : label;
  return name;
}
}  // namespace

Gauge& budget_spent(std::string_view label) {
  return MetricsRegistry::global().gauge(
      analyst_series("budget.spent.", label));
}

Gauge& budget_remaining(std::string_view label) {
  return MetricsRegistry::global().gauge(
      analyst_series("budget.remaining.", label));
}

Counter& budget_refusals(std::string_view label) {
  return MetricsRegistry::global().counter(
      analyst_series("budget.refusals.", label));
}

Gauge& budget_burn_rate(std::string_view label) {
  return MetricsRegistry::global().gauge(
      analyst_series("budget.burn_rate.", label));
}

Gauge& budget_eta_s(std::string_view label) {
  return MetricsRegistry::global().gauge(
      analyst_series("budget.eta_s.", label));
}

Histogram& query_wall_ms() {
  static Histogram& h = MetricsRegistry::global().histogram(
      "query.wall_ms", {0.01, 0.1, 1.0, 10.0, 100.0, 1000.0, 10000.0});
  return h;
}

Histogram& op_wall_ms(std::string_view kind) {
  return MetricsRegistry::global().histogram(
      "op.wall_ms." + std::string(kind),
      {0.01, 0.1, 1.0, 10.0, 100.0, 1000.0, 10000.0});
}

void observe_op_wall_ms(std::string_view kind, double ms) {
  if (!op_histograms_enabled()) return;
  op_wall_ms(kind).observe(ms);
}

}  // namespace builtin_metrics

}  // namespace dpnet::core
