#include "core/metrics.hpp"

#include <cstdio>

#include "core/errors.hpp"
#include "core/json.hpp"

namespace dpnet::core {

MetricsRegistry& MetricsRegistry::global() {
  static MetricsRegistry registry;
  return registry;
}

Counter& MetricsRegistry::counter(std::string_view name) {
  const std::lock_guard<std::mutex> lock(mutex_);
  auto& slot = counters_[std::string(name)];
  if (!slot) slot = std::make_unique<Counter>();
  return *slot;
}

Gauge& MetricsRegistry::gauge(std::string_view name) {
  const std::lock_guard<std::mutex> lock(mutex_);
  auto& slot = gauges_[std::string(name)];
  if (!slot) slot = std::make_unique<Gauge>();
  return *slot;
}

Histogram& MetricsRegistry::histogram(std::string_view name,
                                      std::vector<double> bounds) {
  const std::lock_guard<std::mutex> lock(mutex_);
  auto& slot = histograms_[std::string(name)];
  if (!slot) {
    slot = std::make_unique<Histogram>(std::move(bounds));
  } else if (slot->bounds() != bounds) {
    throw InvalidQueryError("histogram '" + std::string(name) +
                            "' re-registered with different bounds");
  }
  return *slot;
}

void MetricsRegistry::reset() {
  const std::lock_guard<std::mutex> lock(mutex_);
  for (auto& [name, c] : counters_) c->reset();
  for (auto& [name, g] : gauges_) g->reset();
  for (auto& [name, h] : histograms_) h->reset();
}

std::string MetricsRegistry::to_json() const {
  const std::lock_guard<std::mutex> lock(mutex_);
  JsonWriter w;
  w.begin_object();
  w.key("counters").begin_object();
  for (const auto& [name, c] : counters_) w.key(name).value(c->value());
  w.end_object();
  w.key("gauges").begin_object();
  for (const auto& [name, g] : gauges_) w.key(name).value(g->value());
  w.end_object();
  w.key("histograms").begin_object();
  for (const auto& [name, h] : histograms_) {
    w.key(name).begin_object();
    w.key("count").value(h->count());
    w.key("sum").value(h->sum());
    w.key("buckets").begin_array();
    for (std::size_t i = 0; i <= h->bounds().size(); ++i) {
      w.begin_object();
      w.key("upper_bound");
      if (i < h->bounds().size()) {
        w.value(h->bounds()[i]);
      } else {
        w.null();  // overflow bucket
      }
      w.key("count").value(h->bucket(i));
      w.end_object();
    }
    w.end_array();
    w.end_object();
  }
  w.end_object();
  w.end_object();
  return w.str();
}

std::string MetricsRegistry::pretty() const {
  const std::lock_guard<std::mutex> lock(mutex_);
  std::string out;
  char line[160];
  for (const auto& [name, c] : counters_) {
    std::snprintf(line, sizeof line, "%-32s %20llu\n", name.c_str(),
                  static_cast<unsigned long long>(c->value()));
    out += line;
  }
  for (const auto& [name, g] : gauges_) {
    std::snprintf(line, sizeof line, "%-32s %20.6g\n", name.c_str(),
                  g->value());
    out += line;
  }
  for (const auto& [name, h] : histograms_) {
    std::snprintf(line, sizeof line, "%-32s count=%llu sum=%.6g\n",
                  name.c_str(), static_cast<unsigned long long>(h->count()),
                  h->sum());
    out += line;
  }
  return out;
}

namespace builtin_metrics {

Counter& queries_executed() {
  static Counter& c = MetricsRegistry::global().counter("queries.executed");
  return c;
}

Counter& refused_charges() {
  static Counter& c = MetricsRegistry::global().counter("budget.refused");
  return c;
}

Counter& noise_draws() {
  static Counter& c = MetricsRegistry::global().counter("noise.draws");
  return c;
}

Counter& queries_aborted() {
  static Counter& c = MetricsRegistry::global().counter("queries.aborted");
  return c;
}

Counter& deadline_exceeded() {
  static Counter& c = MetricsRegistry::global().counter("deadline.exceeded");
  return c;
}

Counter& records_quarantined() {
  static Counter& c =
      MetricsRegistry::global().counter("records.quarantined");
  return c;
}

Counter& faults_injected() {
  static Counter& c = MetricsRegistry::global().counter("faults.injected");
  return c;
}

Gauge& eps_charged(std::string_view mechanism) {
  return MetricsRegistry::global().gauge("eps.charged." +
                                         std::string(mechanism));
}

Histogram& query_wall_ms() {
  static Histogram& h = MetricsRegistry::global().histogram(
      "query.wall_ms", {0.01, 0.1, 1.0, 10.0, 100.0, 1000.0, 10000.0});
  return h;
}

}  // namespace builtin_metrics

}  // namespace dpnet::core
