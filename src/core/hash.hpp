// Hash utilities for composite query keys.
#pragma once

#include <cstddef>
#include <cstdint>
#include <functional>
#include <tuple>
#include <utility>

namespace dpnet::core {

/// Boost-style hash combiner.
inline void hash_combine(std::size_t& seed, std::size_t value) {
  seed ^= value + 0x9e3779b97f4a7c15ULL + (seed << 6) + (seed >> 2);
}

/// splitmix64-style mixer for deriving plan-node ids and per-node noise
/// streams.  The full avalanche matters: ids seed NoiseSource forks, so
/// nearby inputs (parent id, small ordinals) must land far apart.
[[nodiscard]] constexpr std::uint64_t mix64(std::uint64_t a,
                                            std::uint64_t b) {
  std::uint64_t x = a + 0x9e3779b97f4a7c15ULL + b;
  x ^= x >> 30;
  x *= 0xbf58476d1ce4e5b9ULL;
  x ^= x >> 27;
  x *= 0x94d049bb133111ebULL;
  x ^= x >> 31;
  return x;
}

/// Hash of any tuple/pair of hashable elements.
template <typename... Ts>
std::size_t hash_tuple(const std::tuple<Ts...>& t) {
  std::size_t seed = 0;
  std::apply(
      [&seed](const Ts&... elems) {
        (hash_combine(seed, std::hash<Ts>{}(elems)), ...);
      },
      t);
  return seed;
}

template <typename A, typename B>
std::size_t hash_pair(const std::pair<A, B>& p) {
  std::size_t seed = std::hash<A>{}(p.first);
  hash_combine(seed, std::hash<B>{}(p.second));
  return seed;
}

}  // namespace dpnet::core

// Transparent std::hash specializations so pairs/tuples can key GroupBy
// and Partition without boilerplate at call sites.
namespace std {

template <typename A, typename B>
struct hash<std::pair<A, B>> {
  std::size_t operator()(const std::pair<A, B>& p) const {
    return dpnet::core::hash_pair(p);
  }
};

template <typename... Ts>
struct hash<std::tuple<Ts...>> {
  std::size_t operator()(const std::tuple<Ts...>& t) const {
    return dpnet::core::hash_tuple(t);
  }
};

}  // namespace std
