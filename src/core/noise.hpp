// Randomness source for all differentially-private mechanisms.
//
// Every bit of randomness used by the engine flows through a NoiseSource so
// that experiments are reproducible under a fixed seed.  (The privacy
// guarantee itself of course requires a cryptographically unpredictable
// seed in production; seeding is the data owner's deployment concern.)
#pragma once

#include <cstdint>
#include <mutex>
#include <random>

namespace dpnet::core {

/// Thread-safe: draws serialize on an internal mutex, so one NoiseSource
/// may back queryables used from several analyst threads.
class NoiseSource {
 public:
  /// Constructs a deterministic noise source from `seed`.
  explicit NoiseSource(std::uint64_t seed = 0x9e3779b97f4a7c15ULL);

  /// Uniform draw in [0, 1).
  double uniform();

  /// Uniform draw in [lo, hi).
  double uniform(double lo, double hi);

  /// Zero-mean Laplace draw with scale parameter `scale` (b).
  /// Standard deviation is sqrt(2) * scale.
  double laplace(double scale);

  /// Two-sided geometric ("discrete Laplace") draw with
  /// P(k) proportional to exp(-epsilon * |k|).  The integer analogue of
  /// Laplace noise; used by the geometric mechanism for counts.
  std::int64_t two_sided_geometric(double epsilon);

  /// Standard Gumbel draw; used for Gumbel-max sampling in the
  /// exponential mechanism.
  double gumbel();

  /// Standard normal draw (used by trace generators, not by mechanisms).
  double gaussian(double mean, double stddev);

  /// Uniform integer in [0, n).  n must be positive.
  std::uint64_t next_index(std::uint64_t n);

  /// Draws a raw 64-bit value for seeding derived noise streams (each
  /// Queryable root draws one; plan nodes fork per-release sources from
  /// it — see docs/architecture.md).  Not a mechanism draw: it never
  /// leaves the trusted side.
  [[nodiscard]] std::uint64_t stream_base();

  /// Access to the underlying engine for composing with <random>.
  /// NOT thread-safe; callers who use the raw engine own the locking.
  std::mt19937_64& engine() { return rng_; }

 private:
  std::uint64_t raw();  // locked draw from the engine

  std::mutex mutex_;
  std::mt19937_64 rng_;
};

}  // namespace dpnet::core
