// Group record produced by Queryable::group_by.
#pragma once

#include <vector>

namespace dpnet::core {

/// One group of a GroupBy: the key plus every record that mapped to it,
/// in first-occurrence order.  A Group is a single logical record of the
/// grouped queryable — transformations may look inside it arbitrarily
/// (the "privacy curtain" is only lifted at aggregation time).
template <typename K, typename V>
struct Group {
  K key{};
  std::vector<V> items;

  [[nodiscard]] std::size_t size() const { return items.size(); }
};

}  // namespace dpnet::core
