// Fault-injection registry for chaos testing the trusted runtime.
//
// A failpoint is a named hook compiled into an engine code path
// (plan-node materialization, executor task dispatch, the release/charge
// path, trace ingestion).  Disarmed — the default — a hit is a single
// relaxed atomic load, the same zero-cost-when-off discipline as the
// trace kill switch (core/trace.hpp).  Armed, the registry dispatches to
// a per-name callback, which may throw, cancel a guard, sleep, or flip
// stream state; each fired callback counts on the faults.injected
// metric.
//
// Arming is test-side plumbing:
//
//   failpoint::ScopedFailpoint fp("plan.materialize", [](auto detail) {
//     if (detail == "group_by") throw std::runtime_error("injected");
//   });
//
// or environment-driven for CLI/ops experiments:
//
//   DPNET_FAILPOINTS="plan.materialize=throw;net.trace_io.read=throw"
//
// where the only builtin env action is `throw` (throws a
// std::runtime_error naming the failpoint — which the containment layer
// then sanitizes, exactly like a misbehaving analyst UDF).
//
// Failpoint names compiled into the engine:
//
//   plan.materialize       before a plan node's compute (detail: op name)
//   exec.worker_task       before an executor task runs
//   core.release.charge    before an aggregation charges the budget
//                          (detail: mechanism)
//   net.trace_io.read      when a trace read opens a container; rearms
//                          per retry attempt, driving the bounded-retry
//                          path in net::read_trace_file
//   serve.accept           when the query server opens an analyst
//                          session (detail: analyst name)
//   serve.dispatch         before a dispatched request executes, after
//                          dequeue (detail: analyst name)
//   serve.session.write    before a response frame is handed to the
//                          session transport (detail: analyst name)
//   obs.journal.flush      in EventJournal::flush_to_file, after the
//                          temp file is durable and before it is
//                          renamed over the journal path (detail: path)
//   obs.flight.dump        in FlightRecorder::dump_to_file, after the
//                          temp file is durable and before it is
//                          renamed over the dump path (detail: path)
//   obs.snapshot.publish   in OpsSnapshotWriter::maybe_write, after the
//                          temp file is durable and before it is
//                          renamed over the snapshot path (detail: path)
#pragma once

#include <atomic>
#include <functional>
#include <string>
#include <string_view>

namespace dpnet::core::failpoint {

using Action = std::function<void(std::string_view detail)>;

namespace detail {

// Set iff at least one failpoint is armed; the only cost when disarmed.
inline std::atomic<bool> any_armed{false};

void dispatch(std::string_view name, std::string_view detail);

}  // namespace detail

/// Arms `name` with `action`; replaces any previous action for the name.
void arm(const std::string& name, Action action);

/// Disarms `name` (no-op if not armed).
void disarm(const std::string& name);

/// Disarms everything, including env-armed failpoints.
void disarm_all();

/// Number of times any armed failpoint has fired since process start.
[[nodiscard]] std::uint64_t fired_count();

/// Engine-side hook.  Disarmed cost: one relaxed atomic load.
inline void hit(std::string_view name, std::string_view detail = {}) {
  if (detail::any_armed.load(std::memory_order_relaxed)) {
    detail::dispatch(name, detail);
  }
}

/// RAII arm/disarm for tests.
class ScopedFailpoint {
 public:
  ScopedFailpoint(std::string name, Action action) : name_(std::move(name)) {
    arm(name_, std::move(action));
  }
  ~ScopedFailpoint() { disarm(name_); }

  ScopedFailpoint(const ScopedFailpoint&) = delete;
  ScopedFailpoint& operator=(const ScopedFailpoint&) = delete;

 private:
  std::string name_;
};

}  // namespace dpnet::core::failpoint
