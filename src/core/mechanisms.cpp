#include "core/mechanisms.hpp"

#include <algorithm>
#include <cmath>
#include <stdexcept>

#include "core/errors.hpp"

namespace dpnet::core {

namespace {

void require_positive_eps(double epsilon) {
  if (!(epsilon > 0.0)) {
    throw InvalidEpsilonError("mechanism epsilon must be > 0");
  }
}

}  // namespace

double laplace_mechanism(double true_value, double sensitivity,
                         double epsilon, NoiseSource& noise) {
  require_positive_eps(epsilon);
  if (sensitivity < 0.0) {
    throw std::invalid_argument("sensitivity must be non-negative");
  }
  if (sensitivity == 0.0) return true_value;
  return true_value + noise.laplace(sensitivity / epsilon);
}

std::int64_t geometric_mechanism(std::int64_t true_value, double sensitivity,
                                 double epsilon, NoiseSource& noise) {
  require_positive_eps(epsilon);
  if (sensitivity <= 0.0) {
    throw std::invalid_argument("sensitivity must be positive");
  }
  return true_value + noise.two_sided_geometric(epsilon / sensitivity);
}

std::size_t exponential_mechanism(std::span<const double> scores,
                                  double epsilon, double score_sensitivity,
                                  NoiseSource& noise) {
  require_positive_eps(epsilon);
  if (scores.empty()) {
    throw std::invalid_argument("exponential mechanism requires candidates");
  }
  if (score_sensitivity <= 0.0) {
    throw std::invalid_argument("score sensitivity must be positive");
  }
  const double scale = epsilon / (2.0 * score_sensitivity);
  std::size_t best = 0;
  double best_key = -std::numeric_limits<double>::infinity();
  for (std::size_t i = 0; i < scores.size(); ++i) {
    const double key = scale * scores[i] + noise.gumbel();
    if (key > best_key) {
      best_key = key;
      best = i;
    }
  }
  return best;
}

double exponential_quantile(std::vector<double> values, double q,
                            double epsilon, NoiseSource& noise) {
  require_positive_eps(epsilon);
  if (q < 0.0 || q > 1.0) {
    throw std::invalid_argument("quantile q must be in [0, 1]");
  }
  if (values.empty()) return 0.0;
  std::sort(values.begin(), values.end());
  const double n = static_cast<double>(values.size());
  const double target = q * (n - 1.0);
  std::vector<double> scores(values.size());
  for (std::size_t i = 0; i < values.size(); ++i) {
    // Rank distance to the target rank; adding/removing one record shifts
    // every rank by at most one, so the utility sensitivity is 1.
    scores[i] = -std::abs(static_cast<double>(i) - target);
  }
  const std::size_t pick =
      exponential_mechanism(scores, epsilon, /*score_sensitivity=*/1.0, noise);
  return values[pick];
}

double exponential_median(std::vector<double> values, double epsilon,
                          NoiseSource& noise) {
  return exponential_quantile(std::move(values), 0.5, epsilon, noise);
}

double clamp_unit(double x) { return std::clamp(x, -1.0, 1.0); }

}  // namespace dpnet::core
