// QueryGuard: fault containment for mediated query execution.
//
// The paper's deployment model (§2, §6) has the data owner running
// untrusted analyst queries on trusted machines.  PINQ inherits runaway
// protection from the CLR; this from-scratch engine needs its own: a
// QueryGuard carries a wall-clock deadline, a cooperative cancellation
// flag, and row/work quotas, and the engine consults it at every
// operator boundary — plan-node materialization, executor task start,
// and (crucially) immediately *before* a release charges the budget.
//
// Abort semantics (docs/robustness.md):
//
//   * Aborts are cooperative and sticky: once tripped, every subsequent
//     checkpoint throws QueryAbortedError until the guard is discarded.
//     Granularity is one operator — an in-flight compute finishes its
//     batch, then the next checkpoint aborts (the "grace period" for a
//     parallel run is therefore one operator's compute per worker).
//   * The charge-before-release invariant is pinned: checkpoints run
//     before charge_all, so an aborted release charges nothing, and eps
//     charged by releases that completed earlier is never refunded.
//   * QueryAbortedError carries only the abort reason, a location
//     string, and the plan-node id — never record contents.
//
// The guard is engaged either by installing a GuardScope on the calling
// thread (analog of TraceSession) or by attaching it to an
// exec::ExecPolicy, which makes the executor install it on every worker.
// With no guard installed, the checkpoint is one thread-local pointer
// check per operator — the same zero-cost-when-off discipline as the
// tracing layer.
#pragma once

#include <atomic>
#include <chrono>
#include <cstdint>
#include <memory>
#include <optional>

#include "core/errors.hpp"
#include "core/metrics.hpp"
#include "core/obs/journal.hpp"

namespace dpnet::core {

class QueryGuard {
 public:
  struct Options {
    /// Wall-clock budget from guard construction; unset = no deadline.
    std::optional<std::chrono::steady_clock::duration> timeout = std::nullopt;
    /// Max rows any single operator may produce (0 = unlimited).
    std::uint64_t max_node_rows = 0;
    /// Max cumulative rows produced across all operators (0 = unlimited).
    std::uint64_t max_total_rows = 0;
  };

  QueryGuard() = default;
  explicit QueryGuard(Options options) : options_(options) {
    if (options_.timeout) {
      deadline_ = std::chrono::steady_clock::now() + *options_.timeout;
    }
  }

  QueryGuard(const QueryGuard&) = delete;
  QueryGuard& operator=(const QueryGuard&) = delete;

  /// Requests cooperative cancellation; the next checkpoint on any
  /// thread running under this guard aborts.  Safe from any thread.
  void cancel() { trip(AbortReason::kCancelled); }

  /// True once the guard has tripped for any reason.
  [[nodiscard]] bool aborted() const {
    return reason_.load(std::memory_order_acquire) != AbortReason::kNone;
  }

  [[nodiscard]] AbortReason reason() const {
    return reason_.load(std::memory_order_acquire);
  }

  /// Cumulative rows charged against the work quota so far.
  [[nodiscard]] std::uint64_t total_rows() const {
    return total_rows_.load(std::memory_order_relaxed);
  }

  /// Operator-boundary check: notices an expired deadline, then throws
  /// QueryAbortedError if the guard has tripped.  Called by the engine
  /// before plan-node computes, before executor tasks, and before any
  /// budget charge — never between a charge and its release, so an
  /// abort can never leave the ledger half-charged.
  void checkpoint(const char* where, std::uint64_t node_id = 0) {
    if (deadline_ &&
        reason_.load(std::memory_order_relaxed) == AbortReason::kNone &&
        std::chrono::steady_clock::now() >= *deadline_) {
      trip(AbortReason::kDeadline);
    }
    const AbortReason r = reason_.load(std::memory_order_acquire);
    if (r != AbortReason::kNone) {
      throw QueryAbortedError(r, where, node_id);
    }
  }

  /// Charges `produced` rows against the row/work quotas, then behaves
  /// like checkpoint().  Quota trips are sticky like every other abort.
  void charge_rows(std::uint64_t produced, const char* where,
                   std::uint64_t node_id = 0) {
    if (options_.max_node_rows != 0 && produced > options_.max_node_rows) {
      trip(AbortReason::kOutputQuota);
    }
    if (options_.max_total_rows != 0) {
      const std::uint64_t total =
          total_rows_.fetch_add(produced, std::memory_order_relaxed) +
          produced;
      if (total > options_.max_total_rows) trip(AbortReason::kWorkQuota);
    }
    checkpoint(where, node_id);
  }

 private:
  /// First trip wins and is counted once in the metrics; later trip
  /// attempts (e.g. deadline noticed on several workers) are no-ops.
  void trip(AbortReason r) {
    AbortReason expected = AbortReason::kNone;
    if (reason_.compare_exchange_strong(expected, r,
                                        std::memory_order_acq_rel)) {
      builtin_metrics::queries_aborted().increment();
      if (r == AbortReason::kDeadline) {
        builtin_metrics::deadline_exceeded().increment();
      }
      obs::emit_abort(abort_reason_name(r));
    }
  }

  Options options_;
  std::optional<std::chrono::steady_clock::time_point> deadline_;
  std::atomic<AbortReason> reason_{AbortReason::kNone};
  std::atomic<std::uint64_t> total_rows_{0};
};

namespace guard_detail {

inline thread_local QueryGuard* tls_guard = nullptr;

}  // namespace guard_detail

/// The QueryGuard governing this thread, or nullptr.
[[nodiscard]] inline QueryGuard* active_guard() {
  return guard_detail::tls_guard;
}

/// Installs `guard` as this thread's active guard for its lifetime;
/// restores the previous guard (scopes nest) on destruction.
class GuardScope {
 public:
  explicit GuardScope(QueryGuard& guard)
      : previous_(guard_detail::tls_guard) {
    guard_detail::tls_guard = &guard;
  }
  ~GuardScope() { guard_detail::tls_guard = previous_; }

  GuardScope(const GuardScope&) = delete;
  GuardScope& operator=(const GuardScope&) = delete;

 private:
  QueryGuard* previous_;
};

/// Checkpoint against the active guard, if any.  The disengaged path is
/// a single thread-local pointer check.
inline void guard_checkpoint(const char* where, std::uint64_t node_id = 0) {
  if (QueryGuard* g = active_guard()) g->checkpoint(where, node_id);
}

/// Row-quota charge against the active guard, if any.
inline void guard_charge_rows(std::uint64_t produced, const char* where,
                              std::uint64_t node_id = 0) {
  if (QueryGuard* g = active_guard()) {
    g->charge_rows(produced, where, node_id);
  }
}

}  // namespace dpnet::core
