// Queryable<T>: the declarative, privacy-accounted query surface.
//
// This is a from-scratch C++ analogue of PINQ's PINQueryable.  A Queryable
// wraps a protected record collection behind a "privacy curtain": the
// analyst composes transformations (Where/Select/GroupBy/Join/...) freely,
// but can only observe the data through noisy aggregations whose privacy
// cost is charged to an attached budget.
//
// Stability accounting (paper Table 1):
//   Where/Select/Distinct ................ stability x1
//   SelectMany(max_fanout=k) ............. stability xk
//   GroupBy .............................. stability x2
//   Join/Concat/Intersect ................ per-input stability preserved;
//                                          both inputs are charged
//   Partition ............................ parts share the source's cost
//                                          as a maximum, not a sum
//
// Execution architecture (docs/architecture.md): a Queryable is a thin
// fluent handle over a logical plan node (core/plan.hpp) plus the charge
// list and noise stream needed to release aggregates.  Transformations
// build plan nodes lazily; nothing is materialized until an aggregation
// or Partition forces it, and materializations are memoized so a shared
// sub-query is evaluated once — even when core::exec workers race to
// force it.
//
// Determinism: every aggregation draws its noise from a NoiseSource
// forked on (root noise stream, plan-node id, per-node release ordinal),
// so for a fixed seed the released values are byte-identical whether the
// plan runs sequentially or across an executor's threads, in any
// schedule.
//
// Observability: when a TraceSession is active on the executing thread,
// every operator and aggregation records a TraceSpan (core/trace.hpp) and
// the built-in metrics (core/metrics.hpp) count queries, charges, and
// refusals.  A memoized node contributes its operator span only on first
// materialization; later aggregations over the same node record just the
// release span.
#pragma once

#include <algorithm>
#include <chrono>
#include <cmath>
#include <cstdint>
#include <functional>
#include <memory>
#include <optional>
#include <string>
#include <type_traits>
#include <unordered_map>
#include <utility>
#include <vector>

#include "core/budget.hpp"
#include "core/errors.hpp"
#include "core/exec/group_aggregate.hpp"
#include "core/failpoint.hpp"
#include "core/group.hpp"
#include "core/grouping/builder.hpp"
#include "core/grouping/table.hpp"
#include "core/guard.hpp"
#include "core/hash.hpp"
#include "core/mechanisms.hpp"
#include "core/metrics.hpp"
#include "core/noise.hpp"
#include "core/plan.hpp"
#include "core/trace.hpp"

namespace dpnet::core {

namespace detail {

/// One (budget, stability) pair.  An aggregation at accuracy eps charges
/// stability * eps to the budget.
struct ChargeEntry {
  std::shared_ptr<PrivacyBudget> budget;
  double stability = 1.0;
};

using ChargeList = std::vector<ChargeEntry>;

inline ChargeList scale_charges(ChargeList charges, double factor) {
  for (auto& c : charges) c.stability *= factor;
  return charges;
}

/// Merges two charge lists, summing stabilities of entries that share a
/// budget object (two views of the same source compose additively).
inline ChargeList merge_charges(const ChargeList& a, const ChargeList& b) {
  ChargeList out = a;
  for (const auto& entry : b) {
    auto it = std::find_if(out.begin(), out.end(), [&](const ChargeEntry& e) {
      return e.budget == entry.budget;
    });
    if (it != out.end()) {
      it->stability += entry.stability;
    } else {
      out.push_back(entry);
    }
  }
  return out;
}

inline void check_epsilon(double eps) {
  if (!(eps > 0.0) || !std::isfinite(eps)) {
    throw InvalidEpsilonError("aggregation epsilon must be positive finite");
  }
}

[[noreturn]] inline void refuse_charge(double eps) {
  builtin_metrics::refused_charges().increment();
  throw BudgetExhaustedError(
      "privacy budget exhausted for aggregation at epsilon " +
      std::to_string(eps));
}

/// Commits an aggregation's charges.  The common single-accountant case
/// is one atomic try_charge, safe under any number of concurrent
/// releases.  Multi-accountant commits (join/concat pipelines; two
/// entries never alias the same budget because merge_charges sums them)
/// must be all-or-nothing across several budgets, so they serialize on a
/// process-wide mutex; a concurrent single-accountant commit on one of
/// the same budgets can still slip between the check and commit phases,
/// in which case the per-budget charge() re-checks under its own lock —
/// the budget itself can never overdraw.
inline void charge_all(const ChargeList& charges, double eps) {
  if (charges.size() == 1) {
    const auto& c = charges.front();
    if (!c.budget->try_charge(c.stability * eps)) refuse_charge(eps);
    return;
  }
  static std::mutex multi_mutex;
  const std::lock_guard<std::mutex> lock(multi_mutex);
  for (const auto& c : charges) {
    if (!c.budget->can_charge(c.stability * eps)) refuse_charge(eps);
  }
  for (const auto& c : charges) c.budget->charge(c.stability * eps);
}

/// Stringifies a partition key for trace annotations (numbers and strings
/// verbatim; opaque key types fall back to a placeholder suffixed with
/// the key's index in the analyst's key list, so distinct keys keep
/// distinct tags).  Partition keys are analyst-supplied public values, so
/// exposing them in telemetry leaks nothing about the protected records.
template <typename K>
std::string key_to_tag(const K& k, std::size_t index) {
  if constexpr (std::is_arithmetic_v<K>) {
    return std::to_string(k);
  } else if constexpr (std::is_convertible_v<const K&, std::string>) {
    return std::string(k);
  } else {
    return "?" + std::to_string(index);
  }
}

}  // namespace detail

template <typename T>
class Queryable {
 public:
  using value_type = T;

  /// Wraps `data` as a protected dataset governed by `budget`.
  Queryable(std::vector<T> data, std::shared_ptr<PrivacyBudget> budget,
            std::shared_ptr<NoiseSource> noise)
      : charges_{{std::move(budget), 1.0}}, noise_(std::move(noise)) {
    if (!charges_.front().budget) {
      throw InvalidQueryError("queryable requires a budget");
    }
    if (!noise_) throw InvalidQueryError("queryable requires a noise source");
    stream_ = noise_->stream_base();
    node_ = std::make_shared<plan::Node<T>>(mix64(plan::kRootSalt, stream_),
                                            "source", std::move(data));
  }

  // ---------------------------------------------------------------------
  // Transformations
  // ---------------------------------------------------------------------

  /// Keeps records satisfying `pred`.  No stability change.
  template <typename Pred>
  [[nodiscard]] Queryable<T> where(Pred pred) const {
    auto parent = node_;
    return derived<T>(
        "where", 1.0,
        [parent, pred]() {
          std::vector<T> out;
          for (const auto& x : parent->rows()) {
            if (pred(x)) out.push_back(x);
          }
          return out;
        },
        charges_);
  }

  /// Maps each record through `f`.  No stability change.
  template <typename F>
  [[nodiscard]] auto select(F f) const
      -> Queryable<std::decay_t<std::invoke_result_t<F, const T&>>> {
    using U = std::decay_t<std::invoke_result_t<F, const T&>>;
    auto parent = node_;
    return derived<U>(
        "select", 1.0,
        [parent, f]() {
          std::vector<U> out;
          out.reserve(parent->rows().size());
          for (const auto& x : parent->rows()) out.push_back(f(x));
          return out;
        },
        charges_);
  }

  /// Maps each record to up to `max_fanout` records (outputs beyond the
  /// bound are truncated).  Stability multiplies by `max_fanout`: each
  /// input record can influence that many outputs.
  template <typename F>
  [[nodiscard]] auto select_many(F f, std::size_t max_fanout) const {
    using Container = std::decay_t<std::invoke_result_t<F, const T&>>;
    using U = std::decay_t<typename Container::value_type>;
    if (max_fanout == 0) {
      throw InvalidQueryError("select_many requires max_fanout >= 1");
    }
    auto parent = node_;
    return derived<U>(
        "select_many", static_cast<double>(max_fanout),
        [parent, f, max_fanout]() {
          std::vector<U> out;
          for (const auto& x : parent->rows()) {
            Container produced = f(x);
            std::size_t taken = 0;
            for (auto& item : produced) {
              if (taken++ == max_fanout) break;
              out.push_back(std::move(item));
            }
          }
          return out;
        },
        detail::scale_charges(charges_, static_cast<double>(max_fanout)));
  }

  /// Removes duplicate records (first occurrence kept).  Requires
  /// std::hash<T> and operator==.  No stability change.
  [[nodiscard]] Queryable<T> distinct() const {
    auto parent = node_;
    return derived<T>(
        "distinct", 1.0,
        [parent]() {
          std::vector<T> out;
          grouping::GroupTable<T> seen;
          for (const auto& x : parent->rows()) {
            if (seen.acquire(x).second) out.push_back(x);
          }
          return out;
        },
        charges_);
  }

  /// Groups records by `key(record)`.  Each group becomes one logical
  /// record; stability doubles (one record's arrival can remove a group
  /// and add a different one).  Grouping runs on the cache-conscious
  /// grouping engine (core/grouping, docs/architecture.md).
  template <typename KeyF>
  [[nodiscard]] auto group_by(KeyF key) const {
    using K = std::decay_t<std::invoke_result_t<KeyF, const T&>>;
    auto parent = node_;
    return derived<Group<K, T>>(
        "group_by", 2.0,
        [parent, key]() {
          grouping::GroupBuilder<K, T> builder;
          builder.add_rows(parent->rows(), key);
          return builder.take();
        },
        detail::scale_charges(charges_, 2.0));
  }

  /// group_by under an executor policy: identical accounting, plan-node
  /// id, and output to the sequential overload — the radix-partitioned
  /// two-phase merge (core/exec/group_aggregate.hpp) reproduces the
  /// sequential insertion order exactly at any thread count.
  template <typename KeyF>
  [[nodiscard]] auto group_by(KeyF key, exec::ExecPolicy policy) const {
    using K = std::decay_t<std::invoke_result_t<KeyF, const T&>>;
    auto parent = node_;
    return derived<Group<K, T>>(
        "group_by", 2.0,
        [parent, key, policy]() {
          return exec::parallel_group_by(policy, parent->rows(), key);
        },
        detail::scale_charges(charges_, 2.0));
  }

  /// The "more flexible grouping transformation" the paper proposes as a
  /// PINQ extension (§5.2.1): groups records by `key` preserving order,
  /// and *within* each key starts a new group whenever
  /// `starts_new_span(record)` holds (the first record of a key always
  /// starts one).  This is exactly what splitting a 5-tuple flow into TCP
  /// connections at each SYN needs.  Stability triples: one record's
  /// arrival can join a group, or split one group into two (one group
  /// removed, two added).
  template <typename KeyF, typename BoundaryF>
  [[nodiscard]] auto group_by_spans(KeyF key, BoundaryF starts_new_span)
      const {
    using K = std::decay_t<std::invoke_result_t<KeyF, const T&>>;
    auto parent = node_;
    return derived<Group<K, T>>(
        "group_by_spans", 3.0,
        [parent, key, starts_new_span]() {
          // Same GroupBuilder as group_by; only the span rule differs.
          grouping::GroupBuilder<K, T> builder;
          for (const auto& x : parent->rows()) {
            builder.add_span(key(x), x, [&] { return starts_new_span(x); });
          }
          return builder.take();
        },
        detail::scale_charges(charges_, 3.0));
  }

  /// PINQ's bounded-sensitivity Join: both inputs are grouped by their join
  /// key and matching groups are zipped element-wise, so one input record
  /// influences at most one output record.  Both inputs' budgets are
  /// charged by subsequent aggregations.
  template <typename U, typename KF1, typename KF2, typename RF>
  [[nodiscard]] auto join(const Queryable<U>& other, KF1 outer_key,
                          KF2 inner_key, RF result) const {
    using K = std::decay_t<std::invoke_result_t<KF1, const T&>>;
    using K2 = std::decay_t<std::invoke_result_t<KF2, const U&>>;
    static_assert(std::is_same_v<K, K2>,
                  "join key selectors must produce the same key type");
    using R = std::decay_t<std::invoke_result_t<RF, const T&, const U&>>;
    auto left = node_;
    auto right = other.node_;
    return derived_sized<R>(
        "join", 1.0,
        [left, right]() {
          return left->rows().size() + right->rows().size();
        },
        [left, right, outer_key, inner_key, result]() {
          grouping::GroupTable<K> by_key;
          std::vector<std::vector<const U*>> matches;
          for (const auto& y : right->rows()) {
            const auto [slot, inserted] = by_key.acquire(inner_key(y));
            if (inserted) matches.emplace_back();
            matches[slot].push_back(&y);
          }
          std::vector<std::size_t> used(matches.size(), 0);
          std::vector<R> out;
          for (const auto& x : left->rows()) {
            const std::uint32_t slot = by_key.find(outer_key(x));
            if (slot == grouping::kNoSlot) continue;
            std::size_t& u = used[slot];
            if (u >= matches[slot].size()) continue;  // group exhausted
            out.push_back(result(x, *matches[slot][u]));
            ++u;
          }
          return out;
        },
        detail::merge_charges(charges_, other.charges_), other.node_);
  }

  /// Appends `other`.  Each input's stability is preserved; a record
  /// reaching the output through both inputs pays for both paths.
  [[nodiscard]] Queryable<T> concat(const Queryable<T>& other) const {
    auto left = node_;
    auto right = other.node_;
    return derived_sized<T>(
        "concat", 1.0,
        [left, right]() {
          return left->rows().size() + right->rows().size();
        },
        [left, right]() {
          std::vector<T> out = left->rows();
          const auto& r = right->rows();
          out.insert(out.end(), r.begin(), r.end());
          return out;
        },
        detail::merge_charges(charges_, other.charges_), other.node_);
  }

  /// Set union of the distinct records of both inputs (left-then-right
  /// first-occurrence order).  Like Concat, each input's stability is
  /// preserved and both are charged.
  [[nodiscard]] Queryable<T> set_union(const Queryable<T>& other) const {
    auto left = node_;
    auto right = other.node_;
    return derived_sized<T>(
        "set_union", 1.0,
        [left, right]() {
          return left->rows().size() + right->rows().size();
        },
        [left, right]() {
          grouping::GroupTable<T> emitted;
          std::vector<T> out;
          for (const auto& x : left->rows()) {
            if (emitted.acquire(x).second) out.push_back(x);
          }
          for (const auto& x : right->rows()) {
            if (emitted.acquire(x).second) out.push_back(x);
          }
          return out;
        },
        detail::merge_charges(charges_, other.charges_), other.node_);
  }

  /// Set difference: distinct records of this input absent from `other`.
  [[nodiscard]] Queryable<T> except(const Queryable<T>& other) const {
    auto left = node_;
    auto right = other.node_;
    return derived_sized<T>(
        "except", 1.0,
        [left, right]() {
          return left->rows().size() + right->rows().size();
        },
        [left, right]() {
          grouping::GroupTable<T> removed;
          for (const auto& y : right->rows()) removed.acquire(y);
          grouping::GroupTable<T> emitted;
          std::vector<T> out;
          for (const auto& x : left->rows()) {
            if (!removed.contains(x) && emitted.acquire(x).second) {
              out.push_back(x);
            }
          }
          return out;
        },
        detail::merge_charges(charges_, other.charges_), other.node_);
  }

  /// Set intersection of the distinct records of both inputs.
  [[nodiscard]] Queryable<T> intersect(const Queryable<T>& other) const {
    auto left = node_;
    auto right = other.node_;
    return derived_sized<T>(
        "intersect", 1.0,
        [left, right]() {
          return left->rows().size() + right->rows().size();
        },
        [left, right]() {
          grouping::GroupTable<T> in_right;
          for (const auto& y : right->rows()) in_right.acquire(y);
          grouping::GroupTable<T> emitted;
          std::vector<T> out;
          for (const auto& x : left->rows()) {
            if (in_right.contains(x) && emitted.acquire(x).second) {
              out.push_back(x);
            }
          }
          return out;
        },
        detail::merge_charges(charges_, other.charges_), other.node_);
  }

  /// Splits the dataset into one protected part per key in `keys`.
  /// Records whose key is not listed are dropped (PINQ semantics).  The
  /// cumulative privacy cost to this queryable is the *maximum* over the
  /// parts, not the sum — the paper's central cost-saving device.
  ///
  /// Parts are created in `keys` order, so their plan-node ids (and hence
  /// their noise streams and trace tags) do not depend on the key type's
  /// hash order.  Independent parts can be aggregated concurrently via
  /// core::exec.
  template <typename K, typename KeyF>
  [[nodiscard]] std::unordered_map<K, Queryable<T>> partition(
      const std::vector<K>& keys, KeyF key) const {
    grouping::GroupTable<K> key_index;
    key_index.reserve(keys.size());
    for (const auto& k : keys) {
      if (!key_index.acquire(k).second) {
        throw InvalidQueryError("partition keys must be distinct");
      }
    }
    // Partition is eager, so its span is recorded at call time; each
    // part's later aggregations carry a "partition[key]" annotation so the
    // trace shows the per-branch charges behind the max-cost rule.
    TraceScope scope("partition");
    // One PartitionGroup per upstream budget preserves max-cost semantics
    // against every accountant this queryable answers to.
    std::vector<std::shared_ptr<PartitionGroup>> groups;
    groups.reserve(charges_.size());
    for (const auto& c : charges_) {
      groups.push_back(std::make_shared<PartitionGroup>(c.budget));
    }
    guard_checkpoint("partition", node_->id());
    // key_index slot i corresponds to keys[i] (acquire order above), so
    // the buckets are a dense vector in `keys` order.
    std::vector<std::vector<T>> buckets(keys.size());
    contain_analyst("partition", node_->id(), [&] {
      for (const auto& x : node_->rows()) {
        const std::uint32_t slot = key_index.find(key(x));
        if (slot != grouping::kNoSlot) buckets[slot].push_back(x);
      }
    });
    scope.set_stability(total_stability());
    scope.set_rows(static_cast<std::int64_t>(node_->rows().size()),
                   static_cast<std::int64_t>(buckets.size()));
    std::unordered_map<K, Queryable<T>> parts;
    for (std::size_t i = 0; i < keys.size(); ++i) {
      const K& k = keys[i];
      detail::ChargeList part_charges;
      part_charges.reserve(charges_.size());
      for (std::size_t g = 0; g < charges_.size(); ++g) {
        part_charges.push_back(
            {std::make_shared<PartitionBudget>(groups[g]),
             charges_[g].stability});
      }
      auto part_node = std::make_shared<plan::Node<T>>(
          node_->next_child_id(), "partition_part", std::move(buckets[i]));
      parts.emplace(k, Queryable<T>(std::move(part_node),
                                    std::move(part_charges), noise_, stream_,
                                    "partition[" + detail::key_to_tag(k, i) +
                                        "]"));
    }
    return parts;
  }

  // ---------------------------------------------------------------------
  // Aggregations (the only way information crosses the privacy curtain)
  // ---------------------------------------------------------------------

  /// Noisy record count: true count + Laplace(stability / eps).
  [[nodiscard]] double noisy_count(double eps) const {
    detail::check_epsilon(eps);
    TraceScope scope("noisy_count");
    const auto start = std::chrono::steady_clock::now();
    const auto n = static_cast<double>(node_->rows().size());
    NoiseSource local(node_->next_release_seed(stream_));
    release(scope, "noisy_count", eps, "laplace", node_->rows().size(),
            start);
    return n + local.laplace(total_stability() / eps);
  }

  /// Integer-valued noisy count using the geometric mechanism.
  [[nodiscard]] std::int64_t noisy_count_geometric(double eps) const {
    detail::check_epsilon(eps);
    TraceScope scope("noisy_count_geometric");
    const auto start = std::chrono::steady_clock::now();
    const auto n = static_cast<std::int64_t>(node_->rows().size());
    NoiseSource local(node_->next_release_seed(stream_));
    release(scope, "noisy_count_geometric", eps, "geometric",
            node_->rows().size(), start);
    return geometric_mechanism(n, total_stability(), eps, local);
  }

  /// Noisy sum of `f(record)` with each term clamped to [-1, 1].
  template <typename F>
  [[nodiscard]] double noisy_sum(double eps, F f) const {
    detail::check_epsilon(eps);
    TraceScope scope("noisy_sum");
    const auto start = std::chrono::steady_clock::now();
    const double sum = contain_analyst("noisy_sum", node_->id(), [&] {
      double s = 0.0;
      for (const auto& x : node_->rows()) s += clamp_unit(f(x));
      return s;
    });
    NoiseSource local(node_->next_release_seed(stream_));
    release(scope, "noisy_sum", eps, "laplace", node_->rows().size(), start);
    return sum + local.laplace(total_stability() / eps);
  }

  /// Noisy sum of `f(record)` with each term clamped to [-magnitude,
  /// magnitude]; noise scales proportionally.  Convenience wrapper for
  /// bounded non-unit ranges (packet sizes, hop counts, ...).
  template <typename F>
  [[nodiscard]] double noisy_sum_scaled(double eps, F f,
                                        double magnitude) const {
    if (!(magnitude > 0.0)) {
      throw InvalidQueryError("noisy_sum_scaled requires magnitude > 0");
    }
    return magnitude *
           noisy_sum(eps, [&f, magnitude](const T& x) { return f(x) / magnitude; });
  }

  /// Noisy average of `f(record)` clamped to [-1, 1]; noise standard
  /// deviation is sqrt(8) / (eps * n) per Table 1.
  template <typename F>
  [[nodiscard]] double noisy_average(double eps, F f) const {
    detail::check_epsilon(eps);
    TraceScope scope("noisy_average");
    const auto start = std::chrono::steady_clock::now();
    const auto& data = node_->rows();
    const double n = std::max<double>(1.0, static_cast<double>(data.size()));
    const double sum = contain_analyst("noisy_average", node_->id(), [&] {
      double s = 0.0;
      for (const auto& x : data) s += clamp_unit(f(x));
      return s;
    });
    NoiseSource local(node_->next_release_seed(stream_));
    release(scope, "noisy_average", eps, "laplace", data.size(), start);
    return sum / n + local.laplace(2.0 * total_stability() / (eps * n));
  }

  /// Noisy average over [-magnitude, magnitude] values.
  template <typename F>
  [[nodiscard]] double noisy_average_scaled(double eps, F f,
                                            double magnitude) const {
    if (!(magnitude > 0.0)) {
      throw InvalidQueryError("noisy_average_scaled requires magnitude > 0");
    }
    return magnitude * noisy_average(
                           eps, [&f, magnitude](const T& x) { return f(x) / magnitude; });
  }

  /// Noisy median of `f(record)` via the exponential mechanism.  The
  /// result splits the input into sets whose sizes differ by roughly
  /// sqrt(2)/eps (Table 1).
  template <typename F>
  [[nodiscard]] double noisy_median(double eps, F f) const {
    return noisy_quantile(eps, 0.5, std::move(f));
  }

  /// Noisy q-quantile of `f(record)` (q in [0, 1]) via the exponential
  /// mechanism with rank-distance utility.
  template <typename F>
  [[nodiscard]] double noisy_quantile(double eps, double q, F f) const {
    detail::check_epsilon(eps);
    TraceScope scope("noisy_quantile");
    const auto start = std::chrono::steady_clock::now();
    std::vector<double> values =
        contain_analyst("noisy_quantile", node_->id(), [&] {
          std::vector<double> vs;
          vs.reserve(node_->rows().size());
          for (const auto& x : node_->rows()) vs.push_back(f(x));
          return vs;
        });
    NoiseSource local(node_->next_release_seed(stream_));
    release(scope, "noisy_quantile", eps, "exponential", values.size(),
            start);
    return exponential_quantile(std::move(values), q,
                                eps / total_stability(), local);
  }

  // ---------------------------------------------------------------------
  // Trusted-side accessors
  // ---------------------------------------------------------------------
  // These bypass the privacy curtain.  They exist for the data owner's
  // side only: ground-truth baselines, tests, and experiment evaluation.
  // Nothing in the analyst-facing pipeline may call them.

  // dpnet-lint: trusted
  [[nodiscard]] std::size_t size_unsafe() const {
    return node_->rows().size();
  }
  [[nodiscard]] const std::vector<T>& data_unsafe() const {
    return node_->rows();
  }
  // dpnet-lint: end-trusted

  /// Combined stability across all charge entries (used by tests to verify
  /// Table 1 accounting).
  [[nodiscard]] double total_stability() const {
    double s = 0.0;
    for (const auto& c : charges_) s += c.stability;
    return s;
  }

  /// Number of distinct budget accountants this queryable charges.
  [[nodiscard]] std::size_t budget_count() const { return charges_.size(); }

  /// The logical plan node behind this queryable.  Exposes ids, operator
  /// names, and DAG shape only — diagnostics and tests, never record
  /// contents.
  [[nodiscard]] const plan::NodeBase& plan_node() const { return *node_; }

 private:
  template <typename>
  friend class Queryable;

  Queryable(std::shared_ptr<plan::Node<T>> node, detail::ChargeList charges,
            std::shared_ptr<NoiseSource> noise, std::uint64_t stream,
            std::string trace_tag = {})
      : node_(std::move(node)),
        charges_(std::move(charges)),
        noise_(std::move(noise)),
        stream_(stream),
        trace_tag_(std::move(trace_tag)) {}

  /// Commits an aggregation: charges every accountant, updates the
  /// built-in metrics, and fills in the aggregation's trace span.  Throws
  /// BudgetExhaustedError (charging nothing) on refusal, leaving a span
  /// marked "refused" so the data owner sees the attempt.  The charge
  /// runs under a ScopedChargeNode annotation so an AuditingBudget can
  /// stamp its ledger entry with this plan node's id.
  ///
  /// Charge-before-release invariant (docs/robustness.md): the guard
  /// checkpoint and the "core.release.charge" failpoint both sit *before*
  /// charge_all, and nothing after the charge can throw an abort.  So an
  /// aborted release charges nothing (span marked "aborted"), and once
  /// charge_all commits the epsilon is never refunded — there is no
  /// window where the ledger is half-charged.
  void release(TraceScope& scope, const char* op, double eps,
               const char* mechanism, std::size_t input_rows,
               std::chrono::steady_clock::time_point start) const {
    const ScopedChargeNode charge_node(node_->id());
    try {
      guard_checkpoint("release", node_->id());
      failpoint::hit("core.release.charge", mechanism);
      detail::charge_all(charges_, eps);
    } catch (const BudgetExhaustedError&) {
      scope.set_detail(trace_tag_.empty() ? "refused"
                                          : trace_tag_ + ";refused");
      throw;
    } catch (const QueryAbortedError&) {
      scope.set_detail(trace_tag_.empty() ? "aborted"
                                          : trace_tag_ + ";aborted");
      throw;
    }
    const double charged = total_stability() * eps;
    builtin_metrics::queries_executed().increment();
    builtin_metrics::eps_charged(mechanism).add(charged);
    const double wall_ms = std::chrono::duration<double, std::milli>(
                               std::chrono::steady_clock::now() - start)
                               .count();
    builtin_metrics::query_wall_ms().observe(wall_ms);
    // Aggregations are releases, not plan materializations, so this is
    // their op.wall_ms.<kind> checkpoint (plan nodes record theirs in
    // plan::Node::rows()).
    builtin_metrics::observe_op_wall_ms(op, wall_ms);
    scope.set_mechanism(mechanism);
    scope.set_stability(total_stability());
    scope.set_eps(eps, charged);
    scope.set_rows(static_cast<std::int64_t>(input_rows), 1);
    if (!trace_tag_.empty()) scope.set_detail(trace_tag_);
  }

  template <typename U, typename ComputeF>
  [[nodiscard]] Queryable<U> derived(const char* op, double op_stability,
                                     ComputeF compute,
                                     detail::ChargeList charges) const {
    auto self = node_;
    return derived_sized<U>(
        op, op_stability, [self]() { return self->rows().size(); },
        std::move(compute), std::move(charges));
  }

  /// Builds the derived plan node.  The node id chains off this node's id
  /// and per-parent child ordinal (plan.hpp), and the node itself decides
  /// at materialization time whether to record an operator span.
  template <typename U, typename SizeF, typename ComputeF>
  [[nodiscard]] Queryable<U> derived_sized(
      const char* op, double op_stability, SizeF input_size, ComputeF compute,
      detail::ChargeList charges,
      std::shared_ptr<const plan::NodeBase> other_input = nullptr) const {
    std::vector<std::weak_ptr<const plan::NodeBase>> inputs;
    inputs.push_back(node_);
    if (other_input) inputs.push_back(std::move(other_input));
    auto derived_node = std::make_shared<plan::Node<U>>(
        node_->next_child_id(), op, op_stability,
        std::function<std::vector<U>()>(std::move(compute)),
        std::function<std::size_t()>(std::move(input_size)),
        std::move(inputs));
    return Queryable<U>(std::move(derived_node), std::move(charges), noise_,
                        stream_, trace_tag_);
  }

  std::shared_ptr<plan::Node<T>> node_;
  detail::ChargeList charges_;
  std::shared_ptr<NoiseSource> noise_;
  std::uint64_t stream_ = 0;  // root noise stream; node seeds fork off it
  std::string trace_tag_;     // "partition[key]" for partitioned parts
};

/// Convenience factory mirroring PINQ's `new PINQueryable<T>(trace, eps)`.
template <typename T>
[[nodiscard]] Queryable<T> make_queryable(std::vector<T> data,
                                          double total_epsilon,
                                          std::uint64_t seed = 1) {
  return Queryable<T>(std::move(data),
                      std::make_shared<RootBudget>(total_epsilon),
                      std::make_shared<NoiseSource>(seed));
}

}  // namespace dpnet::core
