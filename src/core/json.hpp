// Dependency-free JSON support for dpnet telemetry.
//
// JsonWriter is a small streaming writer (objects, arrays, scalars) with
// full string escaping; it backs every machine-readable artifact the
// engine emits (query traces, metrics snapshots, audit ledgers, bench
// reports).  JsonValue + parse_json is the matching minimal reader, used
// by the bench schema checker and the round-trip tests.  Neither side
// allocates anything beyond std::string/std::vector.
#pragma once

#include <cstdint>
#include <string>
#include <string_view>
#include <vector>

#include "core/errors.hpp"

namespace dpnet::core {

/// Thrown by parse_json on malformed input.
class JsonParseError : public DpError {
 public:
  explicit JsonParseError(const std::string& what) : DpError(what) {}
};

/// Streaming JSON writer.  Commas and colons are inserted automatically;
/// misuse (a key outside an object, unbalanced end_*) throws
/// InvalidQueryError rather than emitting malformed output.
class JsonWriter {
 public:
  JsonWriter& begin_object();
  JsonWriter& end_object();
  JsonWriter& begin_array();
  JsonWriter& end_array();

  /// Emits an object key; must be inside an object and followed by a value.
  JsonWriter& key(std::string_view k);

  JsonWriter& value(std::string_view v);
  JsonWriter& value(const char* v) { return value(std::string_view(v)); }
  JsonWriter& value(double v);
  JsonWriter& value(std::int64_t v);
  JsonWriter& value(std::uint64_t v);
  JsonWriter& value(bool v);
  JsonWriter& null();

  /// Splices a pre-serialized JSON document in value position (used to
  /// compose telemetry sub-documents: traces, ledgers, metric snapshots).
  /// The caller vouches that `json` is well-formed.
  JsonWriter& raw(std::string_view json);

  /// The document built so far.  Valid once every container is closed.
  [[nodiscard]] const std::string& str() const { return out_; }

  /// Escapes `s` per RFC 8259 (quotes, backslash, control characters);
  /// the result excludes the surrounding quotes.
  [[nodiscard]] static std::string escape(std::string_view s);

 private:
  enum class Frame : std::uint8_t { Object, Array };

  void before_value();

  std::string out_;
  std::vector<Frame> stack_;
  std::vector<bool> first_;   // parallel to stack_: no comma needed yet
  bool key_pending_ = false;  // a key was written, value must follow
};

/// Parsed JSON document (order-preserving objects).
struct JsonValue {
  enum class Type : std::uint8_t { Null, Bool, Number, String, Array, Object };

  Type type = Type::Null;
  bool boolean = false;
  double number = 0.0;
  std::string string;
  std::vector<JsonValue> array;
  std::vector<std::pair<std::string, JsonValue>> object;

  [[nodiscard]] bool is_null() const { return type == Type::Null; }
  [[nodiscard]] bool is_bool() const { return type == Type::Bool; }
  [[nodiscard]] bool is_number() const { return type == Type::Number; }
  [[nodiscard]] bool is_string() const { return type == Type::String; }
  [[nodiscard]] bool is_array() const { return type == Type::Array; }
  [[nodiscard]] bool is_object() const { return type == Type::Object; }

  /// Member lookup; nullptr when absent or not an object.
  [[nodiscard]] const JsonValue* find(std::string_view k) const;

  /// Member lookup; throws JsonParseError when absent.
  [[nodiscard]] const JsonValue& at(std::string_view k) const;
};

/// Parses one JSON document (throws JsonParseError on malformed input or
/// trailing garbage).
[[nodiscard]] JsonValue parse_json(std::string_view text);

}  // namespace dpnet::core
