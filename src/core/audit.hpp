// Audit trail for privacy charges.
//
// Data owners operating a mediated-analysis service need an account of
// *what* consumed the budget, not just how much is left (paper §7's
// policy discussion).  AuditingBudget decorates any PrivacyBudget and
// records every successful charge with a label; ScopedAuditLabel tags the
// charges made while it is alive.
#pragma once

#include <map>
#include <memory>
#include <string>
#include <utility>
#include <vector>

#include "core/budget.hpp"
#include "core/json.hpp"

namespace dpnet::core {

class AuditingBudget final : public PrivacyBudget {
 public:
  struct Entry {
    double eps = 0.0;
    std::string label;
  };

  explicit AuditingBudget(std::shared_ptr<PrivacyBudget> inner)
      : inner_(std::move(inner)) {
    if (!inner_) throw InvalidQueryError("auditing budget requires an inner");
  }

  [[nodiscard]] bool can_charge(double eps) const override {
    return inner_->can_charge(eps);
  }

  /// Exception-safety ordering: the inner charge runs FIRST and the ledger
  /// entry is appended only after it succeeds.  A throwing inner charge
  /// (refusal, exhausted parent) therefore leaves the ledger untouched —
  /// the books only ever record budget that was actually consumed.  This
  /// ordering is load-bearing for the telemetry layer (trace span ε sums
  /// are reconciled against the ledger) and is pinned by
  /// tests/core/test_audit.cpp.
  void charge(double eps) override {
    inner_->charge(eps);  // throws on refusal; refusals are not logged
    entries_.push_back(Entry{eps, label_});
  }

  [[nodiscard]] double spent() const override { return inner_->spent(); }

  /// Sets the label applied to subsequent charges (prefer the RAII
  /// ScopedAuditLabel below).
  void set_label(std::string label) { label_ = std::move(label); }
  [[nodiscard]] const std::string& label() const { return label_; }

  [[nodiscard]] const std::vector<Entry>& entries() const { return entries_; }

  /// Total charged per label.
  [[nodiscard]] std::map<std::string, double> totals_by_label() const {
    std::map<std::string, double> totals;
    for (const Entry& e : entries_) totals[e.label] += e.eps;
    return totals;
  }

  /// Discards the recorded entries (the inner budget's spend is of course
  /// untouched — the ledger is an account of it, not the source of truth).
  void clear() { entries_.clear(); }

  /// Serializes the ledger as JSON:
  /// {"spent": s, "entries": [{"eps": e, "label": l}...],
  ///  "totals_by_label": {...}}.
  [[nodiscard]] std::string to_json() const {
    JsonWriter w;
    w.begin_object();
    w.key("spent").value(spent());
    w.key("entries").begin_array();
    for (const Entry& e : entries_) {
      w.begin_object();
      w.key("eps").value(e.eps);
      w.key("label").value(e.label);
      w.end_object();
    }
    w.end_array();
    w.key("totals_by_label").begin_object();
    for (const auto& [label, total] : totals_by_label()) {
      w.key(label).value(total);
    }
    w.end_object();
    w.end_object();
    return w.str();
  }

 private:
  std::shared_ptr<PrivacyBudget> inner_;
  std::string label_;
  std::vector<Entry> entries_;
};

/// Tags every charge made during its lifetime; restores the previous
/// label on destruction (labels nest).
class ScopedAuditLabel {
 public:
  ScopedAuditLabel(AuditingBudget& budget, std::string label)
      : budget_(budget), previous_(budget.label()) {
    budget_.set_label(std::move(label));
  }
  ~ScopedAuditLabel() { budget_.set_label(previous_); }

  ScopedAuditLabel(const ScopedAuditLabel&) = delete;
  ScopedAuditLabel& operator=(const ScopedAuditLabel&) = delete;

 private:
  AuditingBudget& budget_;
  std::string previous_;
};

}  // namespace dpnet::core
