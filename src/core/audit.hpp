// Audit trail for privacy charges.
//
// Data owners operating a mediated-analysis service need an account of
// *what* consumed the budget, not just how much is left (paper §7's
// policy discussion).  AuditingBudget decorates any PrivacyBudget and
// records every successful charge with a label; ScopedAuditLabel tags the
// charges made while it is alive.
//
// Thread-safety: the ledger is internally synchronized, so charges may
// arrive from core::exec worker threads.  `entries()` keeps arrival order
// (deterministic under sequential execution, schedule-dependent under
// parallel execution); `canonical_entries()` re-sorts by the charging
// plan node's id, which is schedule-independent — parallel runs of the
// same pipeline always flush the same canonical ledger.  See
// docs/architecture.md.
#pragma once

#include <algorithm>
#include <cmath>
#include <cstdint>
#include <map>
#include <memory>
#include <mutex>
#include <string>
#include <utility>
#include <vector>

#include "core/budget.hpp"
#include "core/json.hpp"
#include "core/metrics.hpp"
#include "core/obs/burn.hpp"
#include "core/obs/journal.hpp"

namespace dpnet::core {

class AuditingBudget final : public PrivacyBudget {
 public:
  struct Entry {
    double eps = 0.0;
    std::string label;
    std::uint64_t node_id = 0;  // charging plan node (0: outside the plan)
  };

  explicit AuditingBudget(std::shared_ptr<PrivacyBudget> inner)
      : inner_(std::move(inner)) {
    if (!inner_) throw InvalidQueryError("auditing budget requires an inner");
  }

  [[nodiscard]] bool can_charge(double eps) const override {
    return inner_->can_charge(eps);
  }

  /// Exception-safety ordering: the inner charge runs FIRST and the ledger
  /// entry is appended only after it succeeds.  A throwing inner charge
  /// (refusal, exhausted parent) therefore leaves the ledger untouched —
  /// the books only ever record budget that was actually consumed.  This
  /// ordering is load-bearing for the telemetry layer (trace span ε sums
  /// are reconciled against the ledger) and is pinned by
  /// tests/core/test_audit.cpp.
  void charge(double eps) override {
    try {
      inner_->charge(eps);  // throws on refusal; refusals are not logged
    } catch (const BudgetExhaustedError&) {
      record_refusal(eps);
      throw;
    }
    record(eps);
  }

  [[nodiscard]] bool try_charge(double eps) override {
    if (!inner_->try_charge(eps)) {
      record_refusal(eps);
      return false;
    }
    record(eps);
    return true;
  }

  [[nodiscard]] double spent() const override { return inner_->spent(); }
  [[nodiscard]] double remaining() const override {
    return inner_->remaining();
  }

  /// Sets the label applied to subsequent charges (prefer the RAII
  /// ScopedAuditLabel below).
  void set_label(std::string label) {
    const std::lock_guard<std::mutex> lock(mutex_);
    label_ = std::move(label);
  }
  [[nodiscard]] std::string label() const {
    const std::lock_guard<std::mutex> lock(mutex_);
    return label_;
  }

  /// Entries in arrival order.  The reference is only stable while no
  /// other thread is charging; read it after workers have joined.
  [[nodiscard]] const std::vector<Entry>& entries() const {
    return entries_;
  }

  /// Entries in canonical flush order: stably sorted by charging node id,
  /// so two runs of the same pipeline agree regardless of how worker
  /// threads interleaved their charges.  (The stable sort keeps one
  /// node's repeated releases in their sequential per-node order.)
  [[nodiscard]] std::vector<Entry> canonical_entries() const {
    const std::lock_guard<std::mutex> lock(mutex_);
    std::vector<Entry> sorted = entries_;
    std::stable_sort(sorted.begin(), sorted.end(),
                     [](const Entry& a, const Entry& b) {
                       return a.node_id < b.node_id;
                     });
    return sorted;
  }

  /// Total charged per label.
  [[nodiscard]] std::map<std::string, double> totals_by_label() const {
    const std::lock_guard<std::mutex> lock(mutex_);
    std::map<std::string, double> totals;
    for (const Entry& e : entries_) totals[e.label] += e.eps;
    return totals;
  }

  /// Discards the recorded entries (the inner budget's spend is of course
  /// untouched — the ledger is an account of it, not the source of truth).
  void clear() {
    const std::lock_guard<std::mutex> lock(mutex_);
    entries_.clear();
  }

  /// Serializes the ledger as JSON:
  /// {"spent": s, "entries": [{"eps": e, "label": l, "node_id": n}...],
  ///  "totals_by_label": {...}}.  `canonical` switches the entries array
  /// from arrival order to the node-id flush order.
  [[nodiscard]] std::string to_json(bool canonical = false) const {
    const std::vector<Entry> snapshot =
        canonical ? canonical_entries() : [this] {
          const std::lock_guard<std::mutex> lock(mutex_);
          return entries_;
        }();
    JsonWriter w;
    w.begin_object();
    w.key("spent").value(spent());
    w.key("entries").begin_array();
    for (const Entry& e : snapshot) {
      w.begin_object();
      w.key("eps").value(e.eps);
      w.key("label").value(e.label);
      w.key("node_id").value(e.node_id);
      w.end_object();
    }
    w.end_array();
    w.key("totals_by_label").begin_object();
    for (const auto& [label, total] : totals_by_label()) {
      w.key(label).value(total);
    }
    w.end_object();
    w.end_object();
    return w.str();
  }

 private:
  void record(double eps) {
    const std::uint64_t node = ScopedChargeNode::current();
    std::string label;
    {
      const std::lock_guard<std::mutex> lock(mutex_);
      label = label_;
      entries_.push_back(Entry{eps, label, node});
    }
    // Ops surface, outside the ledger lock: the per-analyst gauges and
    // the event journal see every successful charge.  remaining() is
    // +infinity for uncapped accountants — the gauge is only fed while
    // it is finite (an "inf" sample would not survive JSON export).
    obs::emit_charge(label, node, eps);
    builtin_metrics::budget_spent(label).add(eps);
    const double left = inner_->remaining();
    if (std::isfinite(left)) {
      builtin_metrics::budget_remaining(label).set(left);
    }
    // Burn-rate forecasting (core/obs/burn.hpp): the sliding-window
    // tracker turns this charge stream into budget.burn_rate.<label> /
    // budget.eta_s.<label> gauges and, when a serve operator armed an
    // ETA threshold, budget.alert journal events.
    obs::BurnTracker::global().on_charge(label, eps, left);
  }

  // A refusal consumed nothing, so the ledger stays untouched (the
  // charge-before-release invariant); the journal and the per-analyst
  // refusal counter still witness the attempt.
  void record_refusal(double eps) {
    const std::uint64_t node = ScopedChargeNode::current();
    const std::string label = this->label();
    obs::emit_refusal(label, node, eps);
    builtin_metrics::budget_refusals(label).increment();
  }

  mutable std::mutex mutex_;
  std::shared_ptr<PrivacyBudget> inner_;
  std::string label_;
  std::vector<Entry> entries_;
};

/// Tags every charge made during its lifetime; restores the previous
/// label on destruction (labels nest).
class ScopedAuditLabel {
 public:
  ScopedAuditLabel(AuditingBudget& budget, std::string label)
      : budget_(budget), previous_(budget.label()) {
    budget_.set_label(std::move(label));
  }
  ~ScopedAuditLabel() { budget_.set_label(previous_); }

  ScopedAuditLabel(const ScopedAuditLabel&) = delete;
  ScopedAuditLabel& operator=(const ScopedAuditLabel&) = delete;

 private:
  AuditingBudget& budget_;
  std::string previous_;
};

}  // namespace dpnet::core
