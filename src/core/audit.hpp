// Audit trail for privacy charges.
//
// Data owners operating a mediated-analysis service need an account of
// *what* consumed the budget, not just how much is left (paper §7's
// policy discussion).  AuditingBudget decorates any PrivacyBudget and
// records every successful charge with a label; ScopedAuditLabel tags the
// charges made while it is alive.
#pragma once

#include <map>
#include <memory>
#include <string>
#include <utility>
#include <vector>

#include "core/budget.hpp"

namespace dpnet::core {

class AuditingBudget final : public PrivacyBudget {
 public:
  struct Entry {
    double eps = 0.0;
    std::string label;
  };

  explicit AuditingBudget(std::shared_ptr<PrivacyBudget> inner)
      : inner_(std::move(inner)) {
    if (!inner_) throw InvalidQueryError("auditing budget requires an inner");
  }

  [[nodiscard]] bool can_charge(double eps) const override {
    return inner_->can_charge(eps);
  }

  void charge(double eps) override {
    inner_->charge(eps);  // throws on refusal; refusals are not logged
    entries_.push_back(Entry{eps, label_});
  }

  [[nodiscard]] double spent() const override { return inner_->spent(); }

  /// Sets the label applied to subsequent charges (prefer the RAII
  /// ScopedAuditLabel below).
  void set_label(std::string label) { label_ = std::move(label); }
  [[nodiscard]] const std::string& label() const { return label_; }

  [[nodiscard]] const std::vector<Entry>& entries() const { return entries_; }

  /// Total charged per label.
  [[nodiscard]] std::map<std::string, double> totals_by_label() const {
    std::map<std::string, double> totals;
    for (const Entry& e : entries_) totals[e.label] += e.eps;
    return totals;
  }

 private:
  std::shared_ptr<PrivacyBudget> inner_;
  std::string label_;
  std::vector<Entry> entries_;
};

/// Tags every charge made during its lifetime; restores the previous
/// label on destruction (labels nest).
class ScopedAuditLabel {
 public:
  ScopedAuditLabel(AuditingBudget& budget, std::string label)
      : budget_(budget), previous_(budget.label()) {
    budget_.set_label(std::move(label));
  }
  ~ScopedAuditLabel() { budget_.set_label(previous_); }

  ScopedAuditLabel(const ScopedAuditLabel&) = delete;
  ScopedAuditLabel& operator=(const ScopedAuditLabel&) = delete;

 private:
  AuditingBudget& budget_;
  std::string previous_;
};

}  // namespace dpnet::core
